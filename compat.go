package approxobj

// This file is the legacy surface: the eight per-family constructors and
// types that predate the spec API. They are all thin wrappers — every one
// delegates to NewCounter/NewMaxRegister with the equivalent options, so
// old call sites keep compiling and get the same objects (pool, Bounds,
// registry compatibility included). New code should use the spec API; see
// the README migration table.
//
// Removal horizon: this surface is frozen as of PR 4 (the backend-plane
// refactor) — new object kinds (e.g. NewSnapshot) get no legacy
// wrappers — and the whole file is scheduled for deletion in PR 6, two
// PRs from now. Migrate call sites to the spec API before then; each
// wrapper's Deprecated note names its replacement.

// ExactCounter is a Counter with Exact() accuracy: always precise.
//
// Deprecated: use NewCounter with WithAccuracy(Exact()); the family is one
// type now.
type ExactCounter = Counter

// AdditiveCounter is a Counter with Additive(k) accuracy: reads err by at
// most ±k.
//
// Deprecated: use NewCounter with WithAccuracy(Additive(k)).
type AdditiveCounter = Counter

// ShardedCounter is a Counter with WithShards/WithBatch scaling.
//
// Deprecated: use NewCounter with WithShards(s) and WithBatch(b).
type ShardedCounter = Counter

// BoundedMaxRegister is a MaxRegister with a value bound (Algorithm 2).
//
// Deprecated: use NewMaxRegister with WithBound(m) and
// WithAccuracy(Multiplicative(k)).
type BoundedMaxRegister = MaxRegister

// ExactBoundedMaxRegister is a bounded MaxRegister with Exact() accuracy.
//
// Deprecated: use NewMaxRegister with WithBound(m).
type ExactBoundedMaxRegister = MaxRegister

// ExactMaxRegister is an unbounded MaxRegister with Exact() accuracy.
//
// Deprecated: use NewMaxRegister with the default Exact() accuracy.
type ExactMaxRegister = MaxRegister

// ShardOption configures counter sharding and batching.
//
// Deprecated: it is now the general Option type; Shards and Batch remain
// as aliases for WithShards and WithBatch.
type ShardOption = Option

// Shards sets the shard count S (default 1).
//
// Deprecated: use WithShards.
func Shards(s int) Option { return WithShards(s) }

// Batch sets the per-handle increment buffer B (default 1: unbuffered).
//
// Deprecated: use WithBatch.
func Batch(b int) Option { return WithBatch(b) }

// NewApproxCounter creates the paper's Algorithm 1 counter for n process
// slots with multiplicative accuracy k (the object NewCounter(n, k) built
// before the spec API took the NewCounter name).
//
// Deprecated: use NewCounter(WithProcs(n), WithAccuracy(Multiplicative(k))).
func NewApproxCounter(n int, k uint64) (*Counter, error) {
	return NewCounter(WithProcs(n), WithAccuracy(Multiplicative(k)))
}

// NewExactCounter creates an exact counter for n processes.
//
// Deprecated: use NewCounter(WithProcs(n)) — Exact() is the default
// accuracy.
func NewExactCounter(n int) (*ExactCounter, error) {
	return NewCounter(WithProcs(n))
}

// NewAdditiveCounter creates a k-additive-accurate counter for n
// processes.
//
// Deprecated: use NewCounter(WithProcs(n), WithAccuracy(Additive(k))).
func NewAdditiveCounter(n int, k uint64) (*AdditiveCounter, error) {
	return NewCounter(WithProcs(n), WithAccuracy(Additive(k)))
}

// NewShardedCounter creates a sharded approximate counter for n process
// slots with multiplicative accuracy k; each shard is an independent
// Algorithm 1 counter, so the precondition k >= sqrt(n) applies as for
// Multiplicative.
//
// Deprecated: use NewCounter(WithProcs(n),
// WithAccuracy(Multiplicative(k)), WithShards(s), WithBatch(b)).
func NewShardedCounter(n int, k uint64, opts ...Option) (*ShardedCounter, error) {
	all := append([]Option{WithProcs(n), WithAccuracy(Multiplicative(k))}, opts...)
	return NewCounter(all...)
}

// NewApproxMaxRegister creates an unbounded k-multiplicative-accurate max
// register (the object NewMaxRegister(n, k) built before the spec API
// took the NewMaxRegister name).
//
// Deprecated: use NewMaxRegister(WithProcs(n),
// WithAccuracy(Multiplicative(k))).
func NewApproxMaxRegister(n int, k uint64) (*MaxRegister, error) {
	return NewMaxRegister(WithProcs(n), WithAccuracy(Multiplicative(k)))
}

// NewBoundedMaxRegister creates a k-multiplicative-accurate max register
// for values in {0..m-1}, for n process slots.
//
// Deprecated: use NewMaxRegister(WithProcs(n),
// WithAccuracy(Multiplicative(k)), WithBound(m)).
func NewBoundedMaxRegister(n int, m, k uint64) (*BoundedMaxRegister, error) {
	return NewMaxRegister(WithProcs(n), WithAccuracy(Multiplicative(k)), WithBound(m))
}

// NewExactBoundedMaxRegister creates an exact max register for values in
// {0..m-1}, for n process slots.
//
// Deprecated: use NewMaxRegister(WithProcs(n), WithBound(m)).
func NewExactBoundedMaxRegister(n int, m uint64) (*ExactBoundedMaxRegister, error) {
	return NewMaxRegister(WithProcs(n), WithBound(m))
}

// NewExactMaxRegister creates an unbounded exact max register for n
// process slots.
//
// Deprecated: use NewMaxRegister(WithProcs(n)).
func NewExactMaxRegister(n int) (*ExactMaxRegister, error) {
	return NewMaxRegister(WithProcs(n))
}
