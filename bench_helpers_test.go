package approxobj_test

import (
	"testing"

	"approxobj/internal/prim"
	"approxobj/internal/sim"
)

// newSimForBench builds a one-process machine whose program loops on a
// register forever (for step-cost calibration).
func newSimForBench(b *testing.B) *sim.Machine {
	b.Helper()
	m := sim.NewMachine(1)
	reg := m.Factory().Reg()
	m.Spawn(0, func(p *prim.Proc) {
		for {
			reg.Read(p)
		}
	})
	return m
}
