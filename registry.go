package approxobj

import (
	"fmt"
	"sync"
)

// Registry is a set of named objects, in the style of a metrics registry:
// Counter and MaxRegister are get-or-create (a second registration of the
// same name with the same spec returns the existing object; a conflicting
// spec is an error), and Snapshot reads every object's current value,
// accuracy envelope, and cumulative steps in one call, for telemetry and
// export scenarios.
//
// Every registry-owned object reserves one process slot beyond
// WithProcs(n) for the registry's own snapshot reads, so Snapshot never
// competes with worker goroutines for pool slots (and cannot deadlock
// against workers holding handles for their lifetime). Spec validation
// accounts for the extra slot — e.g. a Multiplicative(k) counter
// registered with WithProcs(n) needs k >= sqrt(n+1).
//
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	order   []string
}

type regEntry struct {
	name    string
	spec    Spec
	counter *Counter     // exactly one of counter
	maxreg  *MaxRegister // and maxreg is non-nil
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// Counter returns the named counter, creating it from the options on
// first registration. Re-registering an existing name with an equivalent
// spec returns the existing counter; a different spec, or a name held by
// a max register, is an error.
func (r *Registry) Counter(name string, opts ...Option) (*Counter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, err := newSpec(KindCounter, append(opts[:len(opts):len(opts)], withSnapshotSlot()))
	if err != nil {
		return nil, err
	}
	if e, ok := r.entries[name]; ok {
		if e.counter == nil {
			return nil, fmt.Errorf("approxobj: registry name %q is a %s, not a counter", name, e.spec.kind)
		}
		if !e.spec.sameObject(spec) {
			return nil, fmt.Errorf("approxobj: registry name %q already registered as %s, conflicting with %s", name, e.spec, spec)
		}
		return e.counter, nil
	}
	c, err := newCounter(spec)
	if err != nil {
		return nil, err
	}
	r.add(&regEntry{name: name, spec: spec, counter: c})
	return c, nil
}

// MaxRegister returns the named max register, creating it from the
// options on first registration, with the same get-or-create semantics as
// Counter.
func (r *Registry) MaxRegister(name string, opts ...Option) (*MaxRegister, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, err := newSpec(KindMaxRegister, append(opts[:len(opts):len(opts)], withSnapshotSlot()))
	if err != nil {
		return nil, err
	}
	if e, ok := r.entries[name]; ok {
		if e.maxreg == nil {
			return nil, fmt.Errorf("approxobj: registry name %q is a %s, not a max register", name, e.spec.kind)
		}
		if !e.spec.sameObject(spec) {
			return nil, fmt.Errorf("approxobj: registry name %q already registered as %s, conflicting with %s", name, e.spec, spec)
		}
		return e.maxreg, nil
	}
	m, err := newMaxRegister(spec)
	if err != nil {
		return nil, err
	}
	r.add(&regEntry{name: name, spec: spec, maxreg: m})
	return m, nil
}

func (r *Registry) add(e *regEntry) {
	r.entries[e.name] = e
	r.order = append(r.order, e.name)
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// ObjectSnapshot is one object's state at snapshot time.
type ObjectSnapshot struct {
	// Name and Kind identify the object.
	Name string
	Kind Kind
	// Value is the object's current reading, taken through the registry's
	// reserved snapshot slot. It obeys Bounds against the true value
	// (mutations still parked in unreleased handles — batched increments,
	// elided max-register writes — fall under the Buffer term).
	Value uint64
	// Bounds is the object's accuracy envelope.
	Bounds Bounds
	// Steps is the cumulative shared-memory step count attributed to the
	// object: steps credited by released pooled handles plus the
	// registry's own snapshot reads. Steps of handles currently held (and
	// of manual Handle(i) handles) are not included.
	Steps uint64
}

// Snapshot reads every registered object — value, envelope, cumulative
// steps — in registration order. The snapshot is atomic with respect to
// registration and other snapshots (both serialize on the registry), but
// each value is an ordinary concurrent read: it lands inside the object's
// envelope relative to the operations linearized around it.
func (r *Registry) Snapshot() []ObjectSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ObjectSnapshot, 0, len(r.order))
	for _, name := range r.order {
		e := r.entries[name]
		s := ObjectSnapshot{Name: e.name, Kind: e.spec.kind}
		if e.counter != nil {
			c := e.counter
			s.Value = c.snap.Read()
			s.Bounds = c.Bounds()
			s.Steps = c.retired.Load() + c.snap.Steps()
		} else {
			m := e.maxreg
			s.Value = m.snap.Read()
			s.Bounds = m.Bounds()
			s.Steps = m.retired.Load() + m.snap.Steps()
		}
		out = append(out, s)
	}
	return out
}
