package approxobj

import (
	"fmt"
	"sync"
)

// Registry is a set of named objects, in the style of a metrics registry:
// the per-kind getters (Counter, MaxRegister, SnapshotObject) are
// get-or-create (a second registration of the same name with the same
// spec returns the existing object; a conflicting spec is an error), and
// Snapshot reads every object's current value, accuracy envelope, and
// cumulative steps in one call, for telemetry and export scenarios. The
// registry itself is kind-agnostic: it dispatches through the
// backend-plane table, so a newly registered kind needs only a typed
// getter.
//
// Every registry-owned object reserves one process slot beyond
// WithProcs(n) for the registry's own snapshot reads, so Snapshot never
// competes with worker goroutines for pool slots (and cannot deadlock
// against workers holding handles for their lifetime). Spec validation
// accounts for the extra slot — e.g. a Multiplicative(k) counter
// registered with WithProcs(n) needs k >= sqrt(n+1).
//
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	order   []string
}

type regEntry struct {
	name string
	spec Spec
	obj  instance

	// snapMu serializes reads of obj's reserved snapshot handle, which —
	// like every handle — is single-goroutine. Snapshot reads objects
	// OUTSIDE the registry lock (a slow multi-shard read must not block
	// registration or snapshots of other objects), so the exclusivity the
	// registry lock used to provide lives here, per object.
	snapMu sync.Mutex
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// getOrCreate is the kind-agnostic registration path: it validates the
// spec (with the reserved snapshot slot appended), resolves name
// collisions, and builds the object through the backend table.
func (r *Registry) getOrCreate(kind Kind, name string, opts []Option) (instance, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, err := newSpec(kind, append(opts[:len(opts):len(opts)], withSnapshotSlot()))
	if err != nil {
		return nil, err
	}
	if e, ok := r.entries[name]; ok {
		if e.spec.kind != kind {
			return nil, fmt.Errorf("approxobj: registry name %q is a %s, not a %s", name, e.spec.kind, kind)
		}
		if !e.spec.sameObject(spec) {
			return nil, fmt.Errorf("approxobj: registry name %q already registered as %s, conflicting with %s", name, e.spec, spec)
		}
		return e.obj, nil
	}
	obj, err := buildSpec(spec)
	if err != nil {
		return nil, err
	}
	r.entries[name] = &regEntry{name: name, spec: spec, obj: obj}
	r.order = append(r.order, name)
	return obj, nil
}

// Counter returns the named counter, creating it from the options on
// first registration. Re-registering an existing name with an equivalent
// spec returns the existing counter; a different spec, or a name held by
// another kind, is an error.
func (r *Registry) Counter(name string, opts ...Option) (*Counter, error) {
	obj, err := r.getOrCreate(KindCounter, name, opts)
	if err != nil {
		return nil, err
	}
	return obj.(*Counter), nil
}

// MaxRegister returns the named max register, creating it from the
// options on first registration, with the same get-or-create semantics as
// Counter.
func (r *Registry) MaxRegister(name string, opts ...Option) (*MaxRegister, error) {
	obj, err := r.getOrCreate(KindMaxRegister, name, opts)
	if err != nil {
		return nil, err
	}
	return obj.(*MaxRegister), nil
}

// SnapshotObject returns the named single-writer snapshot, creating it
// from the options on first registration, with the same get-or-create
// semantics as Counter. (The name avoids colliding with Snapshot, the
// registry-wide telemetry read.)
func (r *Registry) SnapshotObject(name string, opts ...Option) (*Snapshot, error) {
	obj, err := r.getOrCreate(KindSnapshot, name, opts)
	if err != nil {
		return nil, err
	}
	return obj.(*Snapshot), nil
}

// HistogramObject returns the named histogram, creating it from the
// options on first registration, with the same get-or-create semantics
// as Counter. The registry's Snapshot exports the histogram's
// observation count as its Value (with a rank-domain-only envelope, so
// the (Value, Bounds) pair stays self-consistent); query the
// distribution itself — Quantile, Rank, CDF — through the returned
// object's pooled handles.
func (r *Registry) HistogramObject(name string, opts ...Option) (*Histogram, error) {
	obj, err := r.getOrCreate(KindHistogram, name, opts)
	if err != nil {
		return nil, err
	}
	return obj.(*Histogram), nil
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// ObjectSnapshot is one object's state at snapshot time.
type ObjectSnapshot struct {
	// Name and Kind identify the object.
	Name string
	Kind Kind
	// Value is the object's current reading, taken through the registry's
	// reserved snapshot slot: the (approximate) count for counters, the
	// (approximate) maximum for max registers, the saturating sum of the
	// components for snapshots. It obeys Bounds against the true value
	// (mutations still parked in unreleased handles — batched increments,
	// elided writes — fall under the Buffer term).
	Value uint64
	// Bounds is the envelope that bounds Value. For counters and max
	// registers it is the object's own envelope; for snapshots — whose
	// per-object Bounds applies per component — the Buffer term is
	// widened to (B-1)·n, since every written component of the summed
	// Value can trail by B-1.
	Bounds Bounds
	// Steps is the cumulative shared-memory step count attributed to the
	// object: steps credited by released pooled handles plus the
	// registry's own snapshot reads. Steps of handles currently held (and
	// of manual Handle(i) handles) are not included.
	Steps uint64
	// Histogram carries the distribution detail of histogram objects (one
	// consistent bucket read, taken atomically with Value under the same
	// snapshot-handle lock), nil for every scalar kind. Exposition
	// formats (see package expose) render it as a cumulative bucket
	// series.
	Histogram *HistogramDetail
}

// HistogramBucket is one cumulative bucket of a HistogramDetail:
// CumulativeCount observations had values at most UpperBound. The last
// bucket of an unbounded layout saturates UpperBound at the maximum
// uint64 (rendered as +Inf by exposition formats).
type HistogramBucket struct {
	UpperBound      uint64
	CumulativeCount uint64
}

// HistogramDetail is the distribution detail the registry exports for
// histogram objects: cumulative counts at the upper boundary of each
// occupied bucket (unoccupied buckets are elided — they add no
// information to a cumulative series), plus the total observation count
// and the bucket-rounded observation sum. All values come from one
// consistent bucket read and obey the object's Bounds (the Buffer term
// in the rank domain, Mult in the value domain).
type HistogramDetail struct {
	Buckets []HistogramBucket
	Count   uint64
	Sum     uint64
	// Mult is the value-domain rounding factor k of the bucket layout
	// (1 for exact layouts). ObjectSnapshot.Bounds narrows Mult to 1 —
	// the exported Value is a count, which rounding never skews — so the
	// detail carries the factor that does apply to the bucket
	// boundaries.
	Mult uint64
}

// Snapshot reads every registered object — value, envelope, cumulative
// steps — in registration order. The entry list is captured atomically
// with respect to registration (so the result is a consistent roster),
// but the object reads happen OUTSIDE the registry lock: one slow
// multi-shard read does not block registration or other snapshots,
// which serialize only per object (on the object's reserved snapshot
// handle). Each value is an ordinary concurrent read: it lands inside
// the object's envelope relative to the operations linearized around
// it. Objects registered after the roster was captured are not
// included.
func (r *Registry) Snapshot() []ObjectSnapshot {
	r.mu.Lock()
	entries := make([]*regEntry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()

	out := make([]ObjectSnapshot, 0, len(entries))
	for _, e := range entries {
		e.snapMu.Lock()
		snap := ObjectSnapshot{
			Name:      e.name,
			Kind:      e.spec.kind,
			Value:     e.obj.snapshotValue(),
			Bounds:    e.obj.snapshotBounds(),
			Steps:     e.obj.StepsRetired() + e.obj.snapshotSteps(),
			Histogram: e.obj.snapshotDetail(),
		}
		e.snapMu.Unlock()
		out = append(out, snap)
	}
	return out
}

// Close stops the background resources of every registered object: the
// read-cache combiner goroutines of objects registered with
// WithReadCache, and the epoch rotators of objects registered with
// WithWindow. Close leaves no background goroutine running and is
// idempotent; the registry and its objects stay usable afterwards —
// Snapshot and handle reads return the last value (cached reads refresh
// inline; windowed objects freeze at their final ring, so their values
// stop aging out and Reset returns an error). Mutations through handles
// also remain safe — a frozen window still accepts writes into its
// final epochs, useful for draining in-flight workers during shutdown.
func (r *Registry) Close() {
	r.mu.Lock()
	entries := make([]*regEntry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.entries[name])
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.obj.Close()
	}
}
