package approxobj

import (
	"fmt"

	"approxobj/internal/satmath"
	"approxobj/internal/shard"
)

// This file is the third object family on the backend plane — the
// single-writer atomic snapshot — and the proof that a new kind is a
// registration, not a fork: the table row below plus the thin wrappers
// here are all it takes to get spec validation, pooled handles, registry
// membership, and the universal envelope.

// SnapshotHandle is one process's view of a shared single-writer
// snapshot: the exclusive writer of its own component and a scanner of
// all N components. A handle is not safe for concurrent use; acquire one
// per goroutine.
type SnapshotHandle interface {
	// Update sets this handle's component to v (last write wins).
	Update(v uint64)
	// Scan returns a coherent view of all N components, freshly
	// allocated. Each component obeys the object's Bounds against its
	// own true value.
	Scan() []uint64
	// ScanInto is Scan into a reused buffer: dst is grown (or allocated,
	// if nil) as needed and filled with the view, so steady-state
	// scanners reuse one buffer instead of allocating per scan. A nil
	// dst behaves like Scan.
	ScanInto(dst []uint64) []uint64
	// Component returns the index of the component this handle writes —
	// with pooled handles the slot is chosen by the pool, so writers
	// discover their component here.
	Component() int
	Steps() uint64
}

// BatchedSnapshotHandle is a SnapshotHandle whose component updates may
// be elided locally (see WithBatch); Flush publishes the pending elided
// value. Every snapshot handle implements it — Flush is a no-op when
// nothing is pending, and pooled handles flush automatically on release —
// so type assertions on it cannot fail for handles of this package's
// snapshots.
type BatchedSnapshotHandle interface {
	SnapshotHandle
	Flush()
}

// snapshotDescriptor registers the snapshot family in the backend-plane
// table: scans merge the shards per component (no envelope widening —
// every component lives in exactly one shard), and handles elide
// component updates inside the window above their last flushed value.
var snapshotDescriptor = &kindDescriptor{
	kind:   KindSnapshot,
	name:   "snapshot",
	plural: "snapshots",

	policy:   shard.SnapshotPolicyRow(),
	envelope: "exact per component (independent of S); Buffer = B-1, per component",
	scenario: "E15",

	staleTerm:    "Scan may trail each component by updates of the last maxStale",
	readScenario: "E17",

	windowTerm:     "Scan reads each component's high-water mark over the last d (max across epochs; untouched components expire to 0)",
	windowScenario: "E18",

	accuracies: map[accMode]func(s Spec) error{
		accExact: nil,
	},
	build: func(s Spec) (instance, error) { return newSnapshot(s) },
}

// snapshotShardOptions translates a snapshot spec into the sharded
// runtime's configuration; the one backend so far is the exact AADGMS
// snapshot, so only shards and batch (the component-elision window) pass
// through.
func snapshotShardOptions(s Spec) (k uint64, opts []shard.SnapshotOption) {
	opts = []shard.SnapshotOption{
		shard.SnapshotShards(s.shards),
		shard.SnapshotBatch(s.batch),
		shard.WithSnapshotBackend(shard.ExactSnapshotBackend()),
	}
	if s.readStale > 0 {
		opts = append(opts, shard.SnapshotReadCache(s.readStale))
	}
	if s.tel != nil {
		opts = append(opts, shard.SnapshotTelemetry(s.tel.sink))
	}
	return 1, opts
}

// Snapshot is the single-writer atomic snapshot family — the classic
// AADGMS construction, optionally sharded and with component elision —
// built by NewSnapshot from a spec. Process slot i is the single writer
// of component i (N slots = N components); any handle scans all
// components. Like the other families it runs on the unified sharded
// runtime and reports its accuracy envelope via Bounds, which applies
// per component.
type Snapshot struct {
	spec Spec
	s    *shard.Snapshot         // cumulative runtime, nil when windowed
	ws   *shard.WindowedSnapshot // windowed runtime, nil when cumulative

	slots slotPool[*pooledSnapshotHandle]

	snap    snapshotRT // registry snapshot handle (slot procs), else nil
	snapBuf []uint64   // snap's reused scan buffer (serialized by the registry's per-entry snapMu)
}

// snapshotRT is the runtime surface shared by the cumulative and
// windowed snapshot backends; *shard.SnapshotHandle and
// *shard.WSnapshotHandle both satisfy it.
type snapshotRT interface {
	Update(v uint64)
	Scan() []uint64
	ScanInto(dst []uint64) []uint64
	Component() int
	Steps() uint64
	Flush()
}

var _ instance = (*Snapshot)(nil)

// NewSnapshot builds the snapshot the options describe. Defaults: one
// process slot (= one component), Exact() accuracy, unsharded,
// unbuffered. WithShards(S) spreads component updates over S independent
// shards whose per-component merge widens nothing; WithBatch(B) elides
// updates within B-1 above a component's last flushed value (downward
// moves always write through), so scans may trail each component by at
// most B-1 and never overstate it.
func NewSnapshot(opts ...Option) (*Snapshot, error) {
	spec, err := newSpec(KindSnapshot, opts)
	if err != nil {
		return nil, err
	}
	return newSnapshot(spec)
}

func newSnapshot(spec Spec) (*Snapshot, error) {
	k, sopts := snapshotShardOptions(spec)
	s := &Snapshot{spec: spec}
	if spec.Windowed() {
		ws, err := shard.NewWindowedSnapshot(spec.totalProcs(), k, spec.windowDur, spec.windowEpochs, sopts...)
		if err != nil {
			return nil, err
		}
		s.ws = ws
	} else {
		ss, err := shard.NewSnapshot(spec.totalProcs(), k, sopts...)
		if err != nil {
			return nil, err
		}
		s.s = ss
	}
	s.slots.init(spec.procs, s.newPooledHandle)
	instrumentObject(spec, s.slots.free, s.BaseObjects)
	if spec.snapshotSlot {
		s.snap = s.runtimeHandle(spec.procs)
	}
	return s, nil
}

// runtimeHandle binds a slot on whichever runtime backs the snapshot.
func (s *Snapshot) runtimeHandle(i int) snapshotRT {
	if s.ws != nil {
		return s.ws.Handle(i)
	}
	return s.s.Handle(i)
}

// Spec returns the validated spec the snapshot was built from.
func (s *Snapshot) Spec() Spec { return s.spec }

// N returns the number of process slots (= components) available to
// callers.
func (s *Snapshot) N() int { return s.spec.procs }

// Components returns the number of caller-visible components (= N).
func (s *Snapshot) Components() int { return s.spec.procs }

// Accuracy returns the accuracy selection (always Exact for the current
// backend).
func (s *Snapshot) Accuracy() Accuracy { return s.spec.acc }

// Shards returns the shard count.
func (s *Snapshot) Shards() int { return s.spec.shards }

// Batch returns the per-handle component-elision window (1 means every
// component change is published immediately).
func (s *Snapshot) Batch() uint64 { return uint64(s.spec.batch) }

// Bounds returns the snapshot's per-component read envelope: each
// scanned component x_i may be any value with v_i - Buffer <= x_i <= v_i
// for its true value v_i, where Buffer = B-1 for WithBatch(B) (per
// component — components are disjoint across handles, so the headroom
// scales with neither N nor S). Unbatched snapshots report the zero
// envelope. With WithReadCache the Stale term carries the staleness
// window: each scanned component then obeys its envelope against some
// true value in the regularity window opened Stale before the scan
// began. With WithWindow(d, n) each scanned component is its high-water
// mark over the live window (max across epochs, so untouched components
// expire to 0) and the Window term carries the one-epoch truncation
// skew d/n; the per-component envelope does not widen (max-combine).
func (s *Snapshot) Bounds() Bounds {
	if s.ws != nil {
		return scaledBounds(s.ws.Bounds(), s.spec)
	}
	return scaledBounds(s.s.Bounds(), s.spec)
}

// BaseObjects returns the number of base objects (registers, TAS
// instances) the snapshot has allocated across its shards — and, for
// windowed snapshots, its live epoch ring: the snapshot's space cost
// in the paper's model.
func (s *Snapshot) BaseObjects() uint64 {
	if s.ws != nil {
		return s.ws.BaseObjects()
	}
	return s.s.BaseObjects()
}

// Close stops the snapshot's background goroutines — the read cache's
// combiner when WithReadCache is set, and the epoch rotator when
// WithWindow is set (the window freezes; see Counter.Close).
// Idempotent, and a no-op otherwise; handles stay usable afterwards
// (cached scans refresh inline).
func (s *Snapshot) Close() {
	if s.ws != nil {
		s.ws.Close()
		return
	}
	s.s.Close()
}

// Reset replaces the whole window with fresh epochs — every component
// restarts from zero. Only windowed snapshots (WithWindow) support it;
// it is an error otherwise, and after Close.
func (s *Snapshot) Reset() error {
	if s.ws == nil {
		return fmt.Errorf("approxobj: Reset needs a windowed snapshot (WithWindow); this one is cumulative")
	}
	return s.ws.Reset()
}

// Snapshot scans the components through a pooled handle and, when reset
// is true, resets the window afterwards (see Counter.Snapshot for the
// two-step, non-atomic contract).
func (s *Snapshot) Snapshot(reset bool) ([]uint64, error) {
	var out []uint64
	s.Do(func(h SnapshotHandle) { out = h.Scan() })
	if reset {
		return out, s.Reset()
	}
	return out, nil
}

// Handle binds process slot i (0 <= i < N) to the snapshot, for callers
// managing slot assignment themselves: the returned handle is the single
// writer of component i. Each concurrent goroutine must use its own
// slot; do not mix Handle(i) with Acquire/Do on the same slot range. The
// returned handle implements BatchedSnapshotHandle.
func (s *Snapshot) Handle(i int) SnapshotHandle {
	if i < 0 || i >= s.spec.procs {
		panic("approxobj: snapshot handle slot out of range")
	}
	return snapshotSlotHandle{h: s.runtimeHandle(i), n: s.spec.procs}
}

// snapshotSlotHandle adapts a runtime snapshot handle to the public
// interface, truncating scans to the caller-visible components (a
// registry-owned snapshot holds one extra, never-written slot for
// Registry.Snapshot reads).
type snapshotSlotHandle struct {
	h snapshotRT
	n int
}

var _ BatchedSnapshotHandle = snapshotSlotHandle{}

func (h snapshotSlotHandle) Update(v uint64) { h.h.Update(v) }
func (h snapshotSlotHandle) Scan() []uint64  { return h.h.Scan()[:h.n] }
func (h snapshotSlotHandle) Component() int  { return h.h.Component() }
func (h snapshotSlotHandle) Steps() uint64   { return h.h.Steps() }
func (h snapshotSlotHandle) Flush()          { h.h.Flush() }

func (h snapshotSlotHandle) ScanInto(dst []uint64) []uint64 {
	// The runtime scans all slots (including a registry-reserved one);
	// the caller sees the first n. dst grows to the runtime width once
	// and is reused from then on.
	return h.h.ScanInto(dst)[:h.n]
}

// snapshotValue sums the caller-visible components (saturating), the
// scalar the registry exports for this kind; see Registry.Snapshot.
func (s *Snapshot) snapshotValue() uint64 {
	s.snapBuf = s.snap.ScanInto(s.snapBuf)
	var sum uint64
	for _, v := range s.snapBuf[:s.spec.procs] {
		sum = satmath.Add(sum, v)
	}
	return sum
}

// snapshotBounds widens the per-component envelope to one that bounds
// the exported component SUM: every written component can trail by up to
// Buffer, so the sum can trail by Buffer per caller slot. This keeps the
// (Value, Bounds) pair in an ObjectSnapshot self-consistent for
// kind-agnostic telemetry consumers.
func (s *Snapshot) snapshotBounds() Bounds {
	b := s.Bounds()
	b.Buffer = satmath.Mul(b.Buffer, uint64(s.spec.procs))
	return b
}

func (s *Snapshot) snapshotSteps() uint64            { return s.snap.Steps() }
func (s *Snapshot) snapshotDetail() *HistogramDetail { return nil }
