package approxobj

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxobj/internal/planetest"
)

// This file is the conformance surface of the read-combiner tier
// (WithReadCache): the staleness-widened envelope property for every
// kind x shards x batch combination, convergence to the uncached value
// at quiescence, the never-refreshed-cache-on-empty-object edge case,
// and the combiner goroutine lifecycle (Close drains, reads survive).
//
// The Stale term is time-domain, so the checkers here widen the
// regularity window themselves instead of feeding Stale into
// ContainsRange: the lower end of the window (vmin) is sampled at least
// maxStale BEFORE the read begins. Any cached value served then comes
// from a combined read that started after the sample, so the ordinary
// envelope must hold against [that sample, operations started before
// the read returned].

const testStale = 5 * time.Millisecond

// staleWindowChecks runs fn repeatedly until done flips, each time
// sampling vmin, waiting out the staleness window, and then letting fn
// perform the read and the envelope check. Returns the check count.
func staleWindowChecks(done *atomic.Bool, fn func() bool) int {
	checks := 0
	for {
		last := done.Load()
		if !fn() {
			return checks + 1
		}
		checks++
		if last {
			return checks
		}
	}
}

// TestReadCacheEmptyObjects pins the never-refreshed-cache edge case:
// an object built with WithReadCache whose background combiner has not
// ticked yet (maxStale is an hour) must serve the EMPTY value on its
// first read — the inline refresh folds the zero state, it does not
// return garbage or block. This is the "Read() on a zero-observation
// histogram" bug sweep case, applied to every kind.
func TestReadCacheEmptyObjects(t *testing.T) {
	const stale = time.Hour // combiner ticks at maxStale/2: never during the test

	c, err := NewCounter(WithProcs(2), WithReadCache(stale))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if b := c.Bounds(); b.Stale != stale {
		t.Errorf("counter Bounds.Stale = %v, want %v", b.Stale, stale)
	} else if b.IsExact() {
		t.Error("cached counter Bounds.IsExact() = true, want false (Stale != 0)")
	}
	c.Do(func(h CounterHandle) {
		if x := h.Read(); x != 0 {
			t.Errorf("never-incremented cached counter Read() = %d, want 0", x)
		}
	})

	r, err := NewMaxRegister(WithProcs(2), WithReadCache(stale))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Do(func(h MaxRegisterHandle) {
		if x := h.Read(); x != 0 {
			t.Errorf("never-written cached max register Read() = %d, want 0", x)
		}
	})

	s, err := NewSnapshot(WithProcs(2), WithReadCache(stale))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Do(func(h SnapshotHandle) {
		for i, v := range h.Scan() {
			if v != 0 {
				t.Errorf("never-updated cached snapshot component %d = %d, want 0", i, v)
			}
		}
	})

	h, err := NewHistogram(WithProcs(2), WithAccuracy(Multiplicative(2)), WithBound(1<<20), WithReadCache(stale))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.Do(func(hh HistogramHandle) {
		if got := hh.Count(); got != 0 {
			t.Errorf("zero-observation cached histogram Count() = %d, want 0", got)
		}
		if got := hh.Sum(); got != 0 {
			t.Errorf("zero-observation cached histogram Sum() = %d, want 0", got)
		}
		if got := hh.Quantile(1.0); got != 0 {
			t.Errorf("zero-observation cached histogram Quantile(1.0) = %d, want 0", got)
		}
		if got := hh.Rank(12345); got != 0 {
			t.Errorf("zero-observation cached histogram Rank = %d, want 0", got)
		}
		if got := hh.CDF(12345); got != 0 {
			t.Errorf("zero-observation cached histogram CDF = %v, want 0", got)
		}
	})
}

// TestCachedCounterConformance is TestCounterConformance with
// WithReadCache on every spec combination: cached reads must satisfy
// the ordinary envelope against the staleness-widened regularity
// window, and at quiescence — once the cell has expired and the writers'
// buffers are flushed — the cached read converges to the uncached
// value (envelope with Buffer dropped; exactly, for the exact counter).
func TestCachedCounterConformance(t *testing.T) {
	const procs = 6
	const incers = procs - 1
	perG := 1_500
	if testing.Short() {
		perG = 300
	}
	for _, spec := range counterSpecs(procs) {
		t.Run(spec.name, func(t *testing.T) {
			c, err := NewCounter(append(spec.opts, WithReadCache(testStale))...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			bounds := c.Bounds()
			if bounds.Stale != testStale {
				t.Fatalf("Bounds.Stale = %v, want %v", bounds.Stale, testStale)
			}

			var started, completed atomic.Uint64
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(incers)
			for g := 0; g < incers; g++ {
				go func() {
					defer wg.Done()
					h, release := c.Acquire()
					defer release()
					for j := 0; j < perG; j++ {
						started.Add(1)
						h.Inc()
						completed.Add(1)
					}
				}()
			}

			var checks int
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				c.Do(func(h CounterHandle) {
					checks = staleWindowChecks(&done, func() bool {
						vmin := completed.Load()
						time.Sleep(testStale) // any cell served below is newer than vmin
						x := h.Read()
						vmax := started.Load()
						if !bounds.ContainsRange(vmin, vmax, x) {
							t.Errorf("cached read %d outside envelope %+v for any count in [%d, %d]", x, bounds, vmin, vmax)
							return false
						}
						return true
					})
				})
			}()

			wg.Wait()
			done.Store(true)
			readerWG.Wait()
			if checks == 0 {
				t.Fatal("reader performed no checks")
			}

			// Quiescence: handles released (buffers flushed), cell expired —
			// the next cached read refreshes inline over the flushed state.
			time.Sleep(2 * testStale)
			flushed := bounds
			flushed.Buffer = 0
			total := uint64(incers * perG)
			c.Do(func(h CounterHandle) {
				x := h.Read()
				if !flushed.Contains(total, x) {
					t.Errorf("quiescent cached read %d outside flushed envelope %+v of true count %d", x, flushed, total)
				}
				if flushed.Mult <= 1 && flushed.Add == 0 && x != total {
					t.Errorf("quiescent cached exact read %d did not converge to %d", x, total)
				}
			})
		})
	}
}

// TestCachedMaxRegisterConformance is the same property for the
// max-register family under WithReadCache.
func TestCachedMaxRegisterConformance(t *testing.T) {
	const procs = 5
	const writers = procs - 1
	perG := 1_500
	if testing.Short() {
		perG = 300
	}
	const bound = uint64(1) << 20
	for _, spec := range maxRegSpecs(procs, bound) {
		t.Run(spec.name, func(t *testing.T) {
			r, err := NewMaxRegister(append(spec.opts, WithReadCache(testStale))...)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			bounds := r.Bounds()

			atomicMax := func(a *atomic.Uint64, v uint64) {
				for {
					cur := a.Load()
					if v <= cur || a.CompareAndSwap(cur, v) {
						return
					}
				}
			}
			var startedMax, completedMax atomic.Uint64
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(writers)
			for g := 0; g < writers; g++ {
				id := g
				go func() {
					defer wg.Done()
					h, release := r.Acquire()
					defer release()
					for j := 1; j <= perG; j++ {
						v := uint64(j*writers + id)
						atomicMax(&startedMax, v)
						h.Write(v)
						atomicMax(&completedMax, v)
					}
				}()
			}

			var checks int
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				r.Do(func(h MaxRegisterHandle) {
					checks = staleWindowChecks(&done, func() bool {
						vmin := completedMax.Load()
						time.Sleep(testStale)
						x := h.Read()
						vmax := startedMax.Load()
						if !bounds.ContainsRange(vmin, vmax, x) {
							t.Errorf("cached read %d outside envelope %+v for any max in [%d, %d]", x, bounds, vmin, vmax)
							return false
						}
						return true
					})
				})
			}()

			wg.Wait()
			done.Store(true)
			readerWG.Wait()
			if checks == 0 {
				t.Fatal("reader performed no checks")
			}

			time.Sleep(2 * testStale)
			flushed := bounds
			flushed.Buffer = 0
			trueMax := uint64(perG*writers + writers - 1)
			r.Do(func(h MaxRegisterHandle) {
				if x := h.Read(); !flushed.Contains(trueMax, x) {
					t.Errorf("quiescent cached read %d outside flushed envelope %+v of true max %d", x, flushed, trueMax)
				}
			})
		})
	}
}

// TestCachedSnapshotConformance is the same property for the snapshot
// family under WithReadCache, per component and monotone workload.
func TestCachedSnapshotConformance(t *testing.T) {
	const procs = 5
	const writers = procs - 1
	perG := 1_500
	if testing.Short() {
		perG = 300
	}
	for _, spec := range snapshotSpecs(procs) {
		t.Run(spec.name, func(t *testing.T) {
			s, err := NewSnapshot(append(spec.opts, WithReadCache(testStale))...)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			bounds := s.Bounds()

			started := make([]atomic.Uint64, procs)
			completed := make([]atomic.Uint64, procs)
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(writers)
			for g := 0; g < writers; g++ {
				go func() {
					defer wg.Done()
					h, release := s.Acquire()
					defer release()
					c := h.Component()
					for j := 1; j <= perG; j++ {
						started[c].Store(uint64(j))
						h.Update(planetest.SeqValue(uint64(j), false))
						completed[c].Store(uint64(j))
					}
				}()
			}

			var checks int
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				s.Do(func(h SnapshotHandle) {
					reader := h.Component()
					checks = staleWindowChecks(&done, func() bool {
						a := make([]uint64, procs)
						for c := range a {
							a[c] = completed[c].Load()
						}
						time.Sleep(testStale)
						view := h.Scan()
						ok := true
						for c := 0; c < procs; c++ {
							if c == reader {
								continue
							}
							b := started[c].Load()
							vmin, vmax := planetest.Window(a[c], b, false)
							if !bounds.ContainsRange(vmin, vmax, view[c]) {
								t.Errorf("cached component %d read %d outside envelope %+v for any value in [%d, %d]", c, view[c], bounds, vmin, vmax)
								ok = false
							}
						}
						return ok
					})
				})
			}()

			wg.Wait()
			done.Store(true)
			readerWG.Wait()
			if checks == 0 {
				t.Fatal("reader performed no checks")
			}

			time.Sleep(2 * testStale)
			final := planetest.SeqValue(uint64(perG), false)
			s.Do(func(h SnapshotHandle) {
				wrote := 0
				for c, v := range h.Scan() {
					if v == 0 {
						continue
					}
					wrote++
					if v != final {
						t.Errorf("quiescent cached component %d = %d, want exactly %d", c, v, final)
					}
				}
				if wrote != writers {
					t.Errorf("quiescent cached scan shows %d written components, want %d", wrote, writers)
				}
			})
		})
	}
}

// TestCachedHistogramConformance is the same property for the histogram
// family under WithReadCache: every query folds the cached bucket cell,
// so Count is the conformance scalar (rank domain, staleness-widened
// window) and the quiescent checks assert exact convergence of the
// whole query engine to the flushed state.
func TestCachedHistogramConformance(t *testing.T) {
	const procs = 5
	const observers = procs - 1
	perG := 1_500
	if testing.Short() {
		perG = 300
	}
	const bound = uint64(1) << 12
	for _, spec := range histogramSpecs(procs, bound) {
		t.Run(spec.name, func(t *testing.T) {
			h, err := NewHistogram(append(spec.opts, WithReadCache(testStale))...)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			bounds := h.Bounds()
			countBounds := Bounds{Mult: 1, Buffer: bounds.Buffer}

			var started, completed atomic.Uint64
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(observers)
			for g := 0; g < observers; g++ {
				g := g
				go func() {
					defer wg.Done()
					hh, release := h.Acquire()
					defer release()
					for j := 0; j < perG; j++ {
						started.Add(1)
						hh.Observe(uint64(g*perG+j) % bound)
						completed.Add(1)
					}
				}()
			}

			var checks int
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				h.Do(func(hh HistogramHandle) {
					checks = staleWindowChecks(&done, func() bool {
						vmin := completed.Load()
						time.Sleep(testStale)
						c := hh.Count()
						vmax := started.Load()
						if !countBounds.ContainsRange(vmin, vmax, c) {
							t.Errorf("cached count %d outside envelope %+v for any total in [%d, %d]", c, countBounds, vmin, vmax)
							return false
						}
						if r := hh.Rank(bound); r > started.Load() {
							t.Errorf("cached Rank(bound) = %d exceeds observations started %d", r, started.Load())
							return false
						}
						return true
					})
				})
			}()

			wg.Wait()
			done.Store(true)
			readerWG.Wait()
			if checks == 0 {
				t.Fatal("reader performed no checks")
			}

			time.Sleep(2 * testStale)
			total := uint64(observers * perG)
			h.Do(func(hh HistogramHandle) {
				if c := hh.Count(); c != total {
					t.Errorf("quiescent cached count = %d, want exactly %d", c, total)
				}
				if cdf := hh.CDF(bound); cdf != 1 {
					t.Errorf("quiescent cached CDF(bound) = %v, want 1", cdf)
				}
			})
		})
	}
}

// TestReadCacheCombinerLifecycle is the goroutine-leak soak for the
// background combiner: churning cached objects of every kind —
// including registry-owned ones — and closing them must return the
// goroutine count to its baseline, Close must be idempotent, and
// cached reads must keep working after Close (inline refresh).
func TestReadCacheCombinerLifecycle(t *testing.T) {
	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	// Let unrelated goroutines (test runner warmup) settle first.
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for round := 0; round < rounds; round++ {
		const stale = 500 * time.Microsecond // fast ticker: lots of combiner activity

		c, err := NewCounter(WithProcs(2), WithAccuracy(Multiplicative(2)), WithShards(2), WithReadCache(stale))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewMaxRegister(WithProcs(2), WithBound(1<<16), WithReadCache(stale))
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSnapshot(WithProcs(2), WithBatch(4), WithReadCache(stale))
		if err != nil {
			t.Fatal(err)
		}
		hg, err := NewHistogram(WithProcs(2), WithAccuracy(Multiplicative(2)), WithBound(1<<16), WithReadCache(stale))
		if err != nil {
			t.Fatal(err)
		}
		reg := NewRegistry()
		rc, err := reg.Counter("hits", WithProcs(2), WithReadCache(stale))
		if err != nil {
			t.Fatal(err)
		}

		c.Do(func(h CounterHandle) { h.Inc(); h.Read() })
		r.Do(func(h MaxRegisterHandle) { h.Write(42); h.Read() })
		s.Do(func(h SnapshotHandle) { h.Update(7); h.Scan() })
		hg.Do(func(h HistogramHandle) { h.Observe(9); h.Count() })
		rc.Do(func(h CounterHandle) { h.Inc() })
		reg.Snapshot()
		time.Sleep(2 * stale) // let the combiners tick at least once

		c.Close()
		c.Close() // idempotent
		r.Close()
		s.Close()
		hg.Close()
		reg.Close()
		reg.Close() // idempotent

		// Reads still work after Close: the cache refreshes inline.
		c.Do(func(h CounterHandle) {
			if x := h.Read(); x == 0 {
				t.Error("post-Close cached read lost the increment")
			}
		})
		if got := reg.Snapshot(); len(got) != 1 || got[0].Value == 0 {
			t.Errorf("post-Close registry snapshot = %+v, want the surviving increment", got)
		}
	}

	// All combiners are closed (Close blocks on the goroutine's exit),
	// so the count must settle back; allow slack for runtime helpers.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
