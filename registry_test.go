package approxobj

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1, err := r.Counter("requests", WithProcs(4), WithAccuracy(Multiplicative(3)))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := r.Counter("requests", WithProcs(4), WithAccuracy(Multiplicative(3)))
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("re-registering the same spec did not return the existing counter")
	}
	if _, err := r.Counter("requests", WithProcs(8), WithAccuracy(Multiplicative(3))); err == nil {
		t.Error("conflicting spec for an existing name accepted")
	} else if !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("conflict error %q does not say so", err)
	}
	if _, err := r.MaxRegister("requests"); err == nil {
		t.Error("registering a max register under a counter's name accepted")
	}
	m1, err := r.MaxRegister("peak", WithBound(1024))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.MaxRegister("peak", WithBound(1024))
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("re-registering the same spec did not return the existing max register")
	}
	if _, err := r.Counter("peak"); err == nil {
		t.Error("registering a counter under a max register's name accepted")
	}
	if got := r.Names(); len(got) != 2 || got[0] != "requests" || got[1] != "peak" {
		t.Errorf("Names() = %v, want [requests peak] in registration order", got)
	}
	// Validation errors surface through the registry too, accounting for
	// the extra snapshot slot: k=2 fits 4 caller slots, not 4+1.
	if _, err := r.Counter("tight", WithProcs(4), WithAccuracy(Multiplicative(2))); err == nil {
		t.Error("k=2 with 4 caller slots + snapshot slot accepted (needs k >= sqrt(5))")
	} else if !strings.Contains(err.Error(), "snapshot slot") {
		t.Errorf("error %q does not mention the snapshot slot", err)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	reqs, err := r.Counter("requests", WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := r.Counter("requests-approx", WithProcs(2), WithAccuracy(Multiplicative(2)), WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	peak, err := r.MaxRegister("peak", WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}

	reqs.Do(func(h CounterHandle) {
		for i := 0; i < 100; i++ {
			h.Inc()
		}
	})
	approx.Do(func(h CounterHandle) {
		for i := 0; i < 100; i++ {
			h.Inc()
		}
	})
	peak.Do(func(h MaxRegisterHandle) { h.Write(77) })

	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("Snapshot returned %d entries, want 3", len(snaps))
	}
	byName := map[string]ObjectSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if s := byName["requests"]; s.Kind != KindCounter || s.Value != 100 || !s.Bounds.IsExact() {
		t.Errorf("requests snapshot = %+v, want exact value 100", s)
	}
	if s := byName["requests-approx"]; !s.Bounds.Contains(100, s.Value) {
		t.Errorf("requests-approx snapshot value %d outside its own bounds %+v for count 100", s.Value, s.Bounds)
	} else if s.Bounds.Mult != 2 || s.Bounds.Buffer != 3*2 {
		// Buffer counts caller slots only: the registry's snapshot slot
		// never buffers increments.
		t.Errorf("requests-approx bounds = %+v, want Mult 2 and Buffer (B-1)*n = 6", s.Bounds)
	}
	if s := byName["peak"]; s.Kind != KindMaxRegister || s.Value != 77 {
		t.Errorf("peak snapshot = %+v, want value 77", s)
	}
	for _, s := range snaps {
		if s.Steps == 0 {
			t.Errorf("%s snapshot reports zero cumulative steps", s.Name)
		}
	}
}

// TestRegistryHistogramObject pins the histogram getter's get-or-create
// semantics and the self-consistency of the exported (Value, Bounds)
// pair with the distribution queried through handles.
func TestRegistryHistogramObject(t *testing.T) {
	r := NewRegistry()
	h1, err := r.HistogramObject("lat", WithProcs(2), WithAccuracy(Multiplicative(2)), WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.HistogramObject("lat", WithProcs(2), WithAccuracy(Multiplicative(2)), WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("re-registering the same spec did not return the existing histogram")
	}
	if _, err := r.HistogramObject("lat", WithProcs(4), WithAccuracy(Multiplicative(2))); err == nil {
		t.Error("conflicting spec for an existing name accepted")
	}
	if _, err := r.Counter("lat"); err == nil {
		t.Error("registering a counter under a histogram's name accepted")
	}

	h1.Do(func(h HistogramHandle) {
		for j := 1; j <= 100; j++ {
			h.Observe(uint64(j))
		}
	})
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot returned %d entries, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Kind != KindHistogram {
		t.Fatalf("snapshot kind = %v, want histogram", s.Kind)
	}
	// The worker's handle was released (flushed), so the exported count is
	// exact — and its paired envelope must be rank-domain only (Mult 1,
	// Buffer over caller slots), so the pair stays self-consistent.
	if s.Value != 100 {
		t.Errorf("snapshot value = %d, want the exact observation count 100", s.Value)
	}
	if want := (Bounds{Mult: 1, Buffer: 3 * 2}); s.Bounds != want {
		t.Errorf("snapshot bounds = %+v, want %+v", s.Bounds, want)
	}
	// The distribution itself is self-consistent with the object's own
	// Bounds: the median of 1..100 rounds down by at most the Mult factor.
	h1.Do(func(h HistogramHandle) {
		p50 := h.Quantile(0.5)
		if k := h1.Bounds().Mult; p50 > 50 || p50*k <= 50 {
			t.Errorf("p50 = %d not within factor %d below the true median 50", p50, k)
		}
	})
}

// TestRegistrySnapshotConcurrent takes snapshots while workers hold every
// pool slot and hammer the objects: the reserved snapshot slot means
// Snapshot neither deadlocks nor races, and every observed value respects
// the object's envelope against the regularity window. Run with -race.
func TestRegistrySnapshotConcurrent(t *testing.T) {
	const workers = 4
	perG := 5_000
	if testing.Short() {
		perG = 500
	}
	r := NewRegistry()
	c, err := r.Counter("hits", WithProcs(workers), WithAccuracy(Multiplicative(3)), WithShards(2), WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	bounds := c.Bounds()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Snapshot() {
				// True count is somewhere in [0, workers*perG]; the value
				// must at least be inside the envelope of that range.
				if !s.Bounds.ContainsRange(0, uint64(workers*perG), s.Value) {
					t.Errorf("snapshot value %d outside envelope %+v for any count in [0, %d]", s.Value, s.Bounds, workers*perG)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(func(h CounterHandle) {
				for j := 0; j < perG; j++ {
					h.Inc()
				}
			})
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	// Workers released (flushed); a final snapshot sees the full count
	// within the flush-free envelope.
	final := r.Snapshot()[0]
	flushed := bounds
	flushed.Buffer = 0
	if !flushed.Contains(uint64(workers*perG), final.Value) {
		t.Errorf("final snapshot value %d outside flushed envelope %+v of true count %d", final.Value, flushed, workers*perG)
	}
}

// TestRegistrySnapshotRaceAllKinds takes registry snapshots while
// workers churn pooled handles (Acquire/Do/Release, including releases
// mid-run so slots change owners) on all four registered kinds at once.
// The reserved snapshot slot means Snapshot never contends for pool
// slots, and every polled value must respect the object's envelope
// against a conservative bound on the true value. Run with -race this is
// the cross-kind data-race check for the registry path of the backend
// plane.
func TestRegistrySnapshotRaceAllKinds(t *testing.T) {
	const workers = 3
	perG := 4_000
	if testing.Short() {
		perG = 400
	}
	const rounds = 4 // handle churn: each worker re-acquires this many times

	r := NewRegistry()
	c, err := r.Counter("hits", WithProcs(workers), WithAccuracy(Multiplicative(3)), WithShards(2), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.MaxRegister("peak", WithProcs(workers), WithAccuracy(Multiplicative(2)), WithBound(1<<30), WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.SnapshotObject("load", WithProcs(workers), WithShards(2), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	hg, err := r.HistogramObject("latency", WithProcs(workers), WithAccuracy(Multiplicative(2)), WithShards(2), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}

	// Conservative true-value ceilings for the concurrent envelope check.
	maxCount := uint64(workers * perG * rounds)
	maxWritten := uint64(perG)
	maxComponentSum := uint64(workers) * maxWritten
	maxObserved := uint64(workers * perG * rounds)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, os := range r.Snapshot() {
				var ceil uint64
				switch os.Name {
				case "hits":
					ceil = maxCount
				case "peak":
					ceil = maxWritten
				case "load":
					ceil = maxComponentSum
				case "latency":
					ceil = maxObserved
				}
				if !os.Bounds.ContainsRange(0, ceil, os.Value) {
					t.Errorf("%s snapshot value %d outside envelope %+v for any true value in [0, %d]", os.Name, os.Value, os.Bounds, ceil)
					return
				}
				if (os.Kind == KindSnapshot || os.Kind == KindHistogram) && os.Bounds.Mult != 1 {
					// Both kinds export a pure count as Value: the envelope
					// paired with it must not carry a value-domain factor.
					t.Errorf("%s kind reports Mult %d, want 1", os.Kind, os.Bounds.Mult)
					return
				}
			}
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				c.Do(func(h CounterHandle) {
					for j := 0; j < perG; j++ {
						h.Inc()
					}
				})
				m.Do(func(h MaxRegisterHandle) {
					for j := 1; j <= perG; j++ {
						h.Write(uint64(j))
						if j%9 == 0 {
							h.Read()
						}
					}
				})
				s.Do(func(h SnapshotHandle) {
					for j := 1; j <= perG; j++ {
						h.Update(uint64(j))
						if j%64 == 0 {
							h.Update(uint64(j) / 2) // downward move: always flushed
						}
						if j%500 == 0 {
							h.Scan()
						}
					}
					// The lease's last update is perG, whatever the loop's
					// dip cadence was: the final-sum check below relies on
					// every used slot ending at exactly perG.
					h.Update(uint64(perG))
				})
				hg.Do(func(h HistogramHandle) {
					for j := 1; j <= perG; j++ {
						h.Observe(uint64(j % 257))
						if j%300 == 0 {
							h.Quantile(0.95)
							h.Rank(64)
						}
					}
				})
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	// All handles released (flushed): the final snapshot obeys each
	// object's flush-free envelope against the exact final state.
	for _, os := range r.Snapshot() {
		flushed := os.Bounds
		flushed.Buffer = 0
		switch os.Name {
		case "hits":
			if !flushed.Contains(maxCount, os.Value) {
				t.Errorf("final count %d outside flushed envelope %+v of %d", os.Value, flushed, maxCount)
			}
		case "peak":
			if !flushed.Contains(maxWritten, os.Value) {
				t.Errorf("final peak %d outside flushed envelope %+v of %d", os.Value, flushed, maxWritten)
			}
		case "load":
			// Every slot the pool ever handed out ends with its component
			// at exactly perG (releases flush elided updates, and the last
			// update of every lease is perG); slots never used stay 0. The
			// sum is therefore a positive multiple of perG up to the slot
			// count.
			if os.Value == 0 || os.Value%uint64(perG) != 0 || os.Value > maxComponentSum {
				t.Errorf("final component sum = %d, want a positive multiple of %d up to %d", os.Value, perG, maxComponentSum)
			}
		case "latency":
			// All handles released (flushed): the exported observation
			// count is exact.
			if os.Value != maxObserved {
				t.Errorf("final observation count = %d, want exactly %d", os.Value, maxObserved)
			}
		}
		if os.Steps == 0 {
			t.Errorf("%s reports zero cumulative steps", os.Name)
		}
	}
}

// TestRegistrySnapshotWhileRegistering races Snapshot against ongoing
// registrations: the fixed roster of objects is mutated continuously
// while snapshotters poll. Before the PR 6 fix, Snapshot held the
// registry lock across every object's multi-shard read, so a slow read
// serialized all registration; now the roster is copied under the lock
// and the reads happen outside it, serializing only per object. Run
// with -race this is the data-race check for that split.
func TestRegistrySnapshotWhileRegistering(t *testing.T) {
	r := NewRegistry()
	// One long-lived object so snapshots always have something to read.
	if _, err := r.Counter("base", WithProcs(2), WithShards(2)); err != nil {
		t.Fatal(err)
	}

	regs := 60
	if testing.Short() {
		regs = 15
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, os := range r.Snapshot() {
					if os.Name == "" {
						t.Error("snapshot entry with empty name")
						return
					}
				}
			}
		}()
	}

	names := make(map[string]bool)
	for i := 0; i < regs; i++ {
		name := "obj-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		names[name] = true
		switch i % 3 {
		case 0:
			c, err := r.Counter(name, WithProcs(2), WithAccuracy(Multiplicative(3)))
			if err != nil {
				t.Fatal(err)
			}
			c.Do(func(h CounterHandle) { h.Inc() })
		case 1:
			m, err := r.MaxRegister(name, WithProcs(2), WithBound(1<<10))
			if err != nil {
				t.Fatal(err)
			}
			m.Do(func(h MaxRegisterHandle) { h.Write(uint64(i)) })
		default:
			if _, err := r.SnapshotObject(name, WithProcs(2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: a final snapshot sees the complete roster in order.
	final := r.Snapshot()
	if want := len(names) + 1; len(final) != want {
		t.Fatalf("final snapshot has %d entries, want %d", len(final), want)
	}
	if final[0].Name != "base" {
		t.Errorf("first snapshot entry = %q, want the first registration", final[0].Name)
	}
}

// TestRegistryCloseContract pins the post-Close contract end to end:
// Close stops every background goroutine (read-cache combiners and
// epoch rotators), is idempotent, and afterwards Snapshot and direct
// reads neither panic nor block — they keep returning the last value
// (windowed objects freeze, so nothing ages out after Close).
func TestRegistryCloseContract(t *testing.T) {
	before := goroutines()

	r := NewRegistry()
	c, err := r.Counter("reqs", WithProcs(2), WithShards(2), WithReadCache(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := r.Counter("reqs-window", WithProcs(2), WithWindow(time.Hour, 4), WithReadCache(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.MaxRegister("peak", WithProcs(2), WithWindow(time.Hour, 4))
	if err != nil {
		t.Fatal(err)
	}
	hg, err := r.HistogramObject("lat", WithProcs(2), WithAccuracy(Multiplicative(2)), WithWindow(time.Hour, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h CounterHandle) { h.Inc(); h.Inc() })
	wc.Do(func(h CounterHandle) { h.Inc(); h.Inc(); h.Inc() })
	m.Do(func(h MaxRegisterHandle) { h.Write(41) })
	hg.Do(func(h HistogramHandle) { h.Observe(7) })

	r.Close()
	r.Close() // idempotent

	// Reads after Close return the last value, for both the snapshot
	// path and direct handles; the frozen window does not age anything
	// out, even across what would have been many rotation periods.
	time.Sleep(3 * time.Millisecond) // let the cached cells lapse: reads refresh inline
	for round := 0; round < 2; round++ {
		snap := r.Snapshot()
		got := map[string]uint64{}
		for _, os := range snap {
			got[os.Name] = os.Value
		}
		want := map[string]uint64{"reqs": 2, "reqs-window": 3, "peak": 41, "lat": 1}
		for name, v := range want {
			if got[name] != v {
				t.Errorf("round %d: post-Close snapshot %q = %d, want last value %d", round, name, got[name], v)
			}
		}
	}
	wc.Do(func(h CounterHandle) {
		if v := h.Read(); v != 3 {
			t.Errorf("post-Close direct windowed read = %d, want 3", v)
		}
	})
	if err := wc.Reset(); err == nil {
		t.Error("Reset after Close succeeded, want frozen-window error")
	}

	// No goroutine leak: the combiners and rotators are gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if goroutines() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d goroutines before, %d after Close", before, goroutines())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func goroutines() int {
	runtime.GC()
	return runtime.NumGoroutine()
}
