package approxobj

import (
	"sync/atomic"

	"approxobj/internal/shard"
)

// This file implements the pooled side of handle management: every object
// owns a free list (internal/pool) of its process slots, and goroutines
// borrow exclusive handles from it instead of computing slot indices.
// Slot ownership transfers through the pool's channel, which also gives
// the happens-before edge that lets successive owners reuse a slot's
// cached handle (and its persistent per-process algorithm state) without
// extra synchronization. Counter and MaxRegister share the slot-ownership
// and step-accounting logic through the generic lease below.

// lease acquires slot from an object's handle cache: it builds the slot's
// handle on first use (safe without a lock — the pool hands each slot to
// one goroutine at a time, and releases happen-before the next acquire)
// and returns it with an idempotent release that retires the handle
// (flushing/step-crediting) and frees the slot. The idempotence guard is
// atomic, so a cleanup path racing the owner's deferred release cannot
// retire the handle twice or duplicate the slot in the free list.
func lease[H interface {
	comparable
	retire()
}](o interface {
	handleCache() []H
	newHandle(slot int) H
	releaseSlot(slot int)
}, slot int) (H, func()) {
	cache := o.handleCache()
	h := cache[slot]
	if isNil(h) {
		h = o.newHandle(slot)
		cache[slot] = h
	}
	var released atomic.Bool
	return h, func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		h.retire()
		o.releaseSlot(slot)
	}
}

func isNil[H comparable](h H) bool {
	var zero H
	return h == zero
}

// Acquire borrows an exclusive handle from the counter's slot pool,
// blocking until a slot is free. The returned release function flushes
// any batched increments, credits the handle's steps to the object's
// retired-step counter (see Registry snapshots), and returns the slot;
// it is idempotent. The handle must not be used after release. Steps()
// on a pooled handle is cumulative over every previous owner of its
// slot — cost individual operations as a before/after delta.
func (c *Counter) Acquire() (CounterHandle, func()) {
	return lease[*pooledCounterHandle](c, c.pool.Acquire())
}

// TryAcquire is Acquire without blocking: ok is false (and the handle and
// release are nil) when every slot is currently held.
func (c *Counter) TryAcquire() (h CounterHandle, release func(), ok bool) {
	slot, ok := c.pool.TryAcquire()
	if !ok {
		return nil, nil, false
	}
	h, release = lease[*pooledCounterHandle](c, slot)
	return h, release, true
}

// Do runs f with a pooled handle, releasing it (and flushing batched
// increments) when f returns. It blocks until a slot is free.
func (c *Counter) Do(f func(CounterHandle)) {
	h, release := c.Acquire()
	defer release()
	f(h)
}

// StepsRetired returns the cumulative shared-memory steps credited by
// released pooled handles. Steps of handles still held, or of manual
// Handle(i) handles, are not included (their counters are owned by the
// holding goroutine and cannot be read safely mid-flight).
func (c *Counter) StepsRetired() uint64 { return c.retired.Load() }

func (c *Counter) handleCache() []*pooledCounterHandle { return c.handles }
func (c *Counter) releaseSlot(slot int)                { c.pool.Release(slot) }
func (c *Counter) newHandle(slot int) *pooledCounterHandle {
	return &pooledCounterHandle{c: c, h: c.c.Handle(slot)}
}

// pooledCounterHandle wraps a slot's underlying handle with step
// accounting across acquisitions. It implements BatchedCounterHandle.
type pooledCounterHandle struct {
	c        *Counter
	h        *shard.Handle
	credited uint64 // steps already added to c.retired
}

func (h *pooledCounterHandle) Inc()          { h.h.Inc() }
func (h *pooledCounterHandle) Read() uint64  { return h.h.Read() }
func (h *pooledCounterHandle) Steps() uint64 { return h.h.Steps() }
func (h *pooledCounterHandle) Flush()        { h.h.Flush() }

func (h *pooledCounterHandle) retire() {
	h.h.Flush()
	s := h.h.Steps()
	h.c.retired.Add(s - h.credited)
	h.credited = s
}

// Acquire borrows an exclusive handle from the register's slot pool,
// blocking until a slot is free. The returned release function flushes
// any elided writes, credits the handle's steps to the object's
// retired-step counter (see Registry snapshots), and returns the slot;
// it is idempotent. The handle must not be used after release. Steps()
// on a pooled handle is cumulative over every previous owner of its slot
// — cost individual operations as a before/after delta.
func (r *MaxRegister) Acquire() (MaxRegisterHandle, func()) {
	return lease[*pooledMaxRegHandle](r, r.pool.Acquire())
}

// TryAcquire is Acquire without blocking: ok is false (and the handle and
// release are nil) when every slot is currently held.
func (r *MaxRegister) TryAcquire() (h MaxRegisterHandle, release func(), ok bool) {
	slot, ok := r.pool.TryAcquire()
	if !ok {
		return nil, nil, false
	}
	h, release = lease[*pooledMaxRegHandle](r, slot)
	return h, release, true
}

// Do runs f with a pooled handle, releasing it (and flushing elided
// writes) when f returns. It blocks until a slot is free.
func (r *MaxRegister) Do(f func(MaxRegisterHandle)) {
	h, release := r.Acquire()
	defer release()
	f(h)
}

// StepsRetired returns the cumulative shared-memory steps credited by
// released pooled handles (see Counter.StepsRetired).
func (r *MaxRegister) StepsRetired() uint64 { return r.retired.Load() }

func (r *MaxRegister) handleCache() []*pooledMaxRegHandle { return r.handles }
func (r *MaxRegister) releaseSlot(slot int)               { r.pool.Release(slot) }
func (r *MaxRegister) newHandle(slot int) *pooledMaxRegHandle {
	return &pooledMaxRegHandle{r: r, h: r.m.Handle(slot)}
}

// pooledMaxRegHandle wraps a slot's underlying handle with step
// accounting across acquisitions. It implements BatchedMaxRegisterHandle.
type pooledMaxRegHandle struct {
	r        *MaxRegister
	h        *shard.MaxRegHandle
	credited uint64 // steps already added to r.retired
}

func (h *pooledMaxRegHandle) Write(v uint64) { h.h.Write(v) }
func (h *pooledMaxRegHandle) Read() uint64   { return h.h.Read() }
func (h *pooledMaxRegHandle) Steps() uint64  { return h.h.Steps() }
func (h *pooledMaxRegHandle) Flush()         { h.h.Flush() }

func (h *pooledMaxRegHandle) retire() {
	h.h.Flush()
	s := h.h.Steps()
	h.r.retired.Add(s - h.credited)
	h.credited = s
}
