package approxobj

import (
	"sync/atomic"

	"approxobj/internal/pool"
)

// This file implements the pooled side of handle management: every object
// owns a free list (internal/pool) of its process slots, and goroutines
// borrow exclusive handles from it instead of computing slot indices.
// Slot ownership transfers through the pool's channel, which also gives
// the happens-before edge that lets successive owners reuse a slot's
// cached handle (and its persistent per-process algorithm state) without
// extra synchronization. All three families share the slot-ownership and
// step-accounting logic through the generic slotPool below; each family
// contributes only its typed Acquire/TryAcquire/Do wrappers and its
// pooled handle type.

// retirable is a pooled handle: retire flushes its buffered mutations
// and credits its steps-since-last-retire to the object's retired-step
// counter.
type retirable interface {
	comparable
	retire(credit *atomic.Uint64)
}

// slotPool is the pooled-handle plumbing every object family embeds: the
// slot free list, the per-slot handle cache, and retired-step
// accounting.
type slotPool[H retirable] struct {
	free    *pool.Pool
	handles []H              // lazily built, one per pool slot
	gens    []atomic.Uint64  // per-slot lease generation (see lease)
	mk      func(slot int) H // builds a slot's handle on first lease
	retired atomic.Uint64    // steps credited by released pooled handles
}

// init sizes the pool in place (slotPool embeds an atomic and must not
// be copied once in use) and binds the owning object's handle
// constructor, so the acquisition hot path allocates no closures.
func (p *slotPool[H]) init(slots int, mk func(slot int) H) {
	p.free = pool.New(slots)
	p.handles = make([]H, slots)
	p.gens = make([]atomic.Uint64, slots)
	p.mk = mk
}

// acquire borrows a slot (blocking) and leases its handle.
func (p *slotPool[H]) acquire() (H, func()) {
	return p.lease(p.free.Acquire())
}

// tryAcquire is acquire without blocking; ok is false when every slot is
// held.
func (p *slotPool[H]) tryAcquire() (h H, release func(), ok bool) {
	slot, ok := p.free.TryAcquire()
	if !ok {
		return h, nil, false
	}
	h, release = p.lease(slot)
	return h, release, true
}

// lease hands out slot's cached handle, building it on first use (safe
// without a lock — the pool hands each slot to one goroutine at a
// time, and releases happen-before the next acquire), and returns it
// with an idempotent release that retires the handle (flushing and
// step-crediting) and frees the slot.
//
// The idempotence guard is the slot's monotonic generation counter:
// each lease bumps it to g and release succeeds only by advancing g to
// g+1, so a cleanup path racing the owner's deferred release cannot
// retire the handle twice or duplicate the slot in the free list — and
// a stale closure surviving past a re-lease can never succeed either
// (the generation has moved past g for good). Sharing the guard with
// the slot keeps the acquisition hot path to one allocation (the
// release closure itself) instead of two.
func (p *slotPool[H]) lease(slot int) (H, func()) {
	h := p.handles[slot]
	if isNil(h) {
		h = p.mk(slot)
		p.handles[slot] = h
	}
	gen := &p.gens[slot]
	g := gen.Add(1)
	return h, func() {
		if !gen.CompareAndSwap(g, g+1) {
			return
		}
		h.retire(&p.retired)
		p.free.Release(slot)
	}
}

// stepsRetired returns the cumulative steps credited by released pooled
// handles.
func (p *slotPool[H]) stepsRetired() uint64 { return p.retired.Load() }

func isNil[H comparable](h H) bool {
	var zero H
	return h == zero
}

// creditSteps retires one pooled handle's step delta into the object's
// retired counter: handles survive across acquisitions, so only the
// steps since the last retire are added.
func creditSteps(credit *atomic.Uint64, steps uint64, credited *uint64) {
	credit.Add(steps - *credited)
	*credited = steps
}

// Acquire borrows an exclusive handle from the counter's slot pool,
// blocking until a slot is free. The returned release function flushes
// any batched increments, credits the handle's steps to the object's
// retired-step counter (see Registry snapshots), and returns the slot;
// it is idempotent. The handle must not be used after release. Steps()
// on a pooled handle is cumulative over every previous owner of its
// slot — cost individual operations as a before/after delta.
func (c *Counter) Acquire() (CounterHandle, func()) {
	return c.slots.acquire()
}

// TryAcquire is Acquire without blocking: ok is false (and the handle and
// release are nil) when every slot is currently held.
func (c *Counter) TryAcquire() (h CounterHandle, release func(), ok bool) {
	ph, release, ok := c.slots.tryAcquire()
	if !ok {
		return nil, nil, false
	}
	return ph, release, true
}

// Do runs f with a pooled handle, releasing it (and flushing batched
// increments) when f returns. It blocks until a slot is free.
func (c *Counter) Do(f func(CounterHandle)) {
	h, release := c.Acquire()
	defer release()
	f(h)
}

// StepsRetired returns the cumulative shared-memory steps credited by
// released pooled handles. Steps of handles still held, or of manual
// Handle(i) handles, are not included (their counters are owned by the
// holding goroutine and cannot be read safely mid-flight).
func (c *Counter) StepsRetired() uint64 { return c.slots.stepsRetired() }

func (c *Counter) newPooledHandle(slot int) *pooledCounterHandle {
	return &pooledCounterHandle{h: c.runtimeHandle(slot)}
}

// pooledCounterHandle wraps a slot's underlying handle with step
// accounting across acquisitions. It implements BatchedCounterHandle.
type pooledCounterHandle struct {
	h        counterRT
	credited uint64 // steps already added to the object's retired counter
}

func (h *pooledCounterHandle) Inc()          { h.h.Inc() }
func (h *pooledCounterHandle) Read() uint64  { return h.h.Read() }
func (h *pooledCounterHandle) Steps() uint64 { return h.h.Steps() }
func (h *pooledCounterHandle) Flush()        { h.h.Flush() }

func (h *pooledCounterHandle) retire(credit *atomic.Uint64) {
	h.h.Flush()
	creditSteps(credit, h.h.Steps(), &h.credited)
}

// Acquire borrows an exclusive handle from the register's slot pool,
// blocking until a slot is free. The returned release function flushes
// any elided writes, credits the handle's steps to the object's
// retired-step counter (see Registry snapshots), and returns the slot;
// it is idempotent. The handle must not be used after release. Steps()
// on a pooled handle is cumulative over every previous owner of its slot
// — cost individual operations as a before/after delta.
func (r *MaxRegister) Acquire() (MaxRegisterHandle, func()) {
	return r.slots.acquire()
}

// TryAcquire is Acquire without blocking: ok is false (and the handle and
// release are nil) when every slot is currently held.
func (r *MaxRegister) TryAcquire() (h MaxRegisterHandle, release func(), ok bool) {
	ph, release, ok := r.slots.tryAcquire()
	if !ok {
		return nil, nil, false
	}
	return ph, release, true
}

// Do runs f with a pooled handle, releasing it (and flushing elided
// writes) when f returns. It blocks until a slot is free.
func (r *MaxRegister) Do(f func(MaxRegisterHandle)) {
	h, release := r.Acquire()
	defer release()
	f(h)
}

// StepsRetired returns the cumulative shared-memory steps credited by
// released pooled handles (see Counter.StepsRetired).
func (r *MaxRegister) StepsRetired() uint64 { return r.slots.stepsRetired() }

func (r *MaxRegister) newPooledHandle(slot int) *pooledMaxRegHandle {
	return &pooledMaxRegHandle{h: r.runtimeHandle(slot)}
}

// pooledMaxRegHandle wraps a slot's underlying handle with step
// accounting across acquisitions. It implements BatchedMaxRegisterHandle.
type pooledMaxRegHandle struct {
	h        maxRegRT
	credited uint64 // steps already added to the object's retired counter
}

func (h *pooledMaxRegHandle) Write(v uint64) { h.h.Write(v) }
func (h *pooledMaxRegHandle) Read() uint64   { return h.h.Read() }
func (h *pooledMaxRegHandle) Steps() uint64  { return h.h.Steps() }
func (h *pooledMaxRegHandle) Flush()         { h.h.Flush() }

func (h *pooledMaxRegHandle) retire(credit *atomic.Uint64) {
	h.h.Flush()
	creditSteps(credit, h.h.Steps(), &h.credited)
}

// Acquire borrows an exclusive handle from the snapshot's slot pool,
// blocking until a slot is free: the handle is the single writer of the
// slot's component (discover which via Component). The returned release
// function flushes any elided component update, credits the handle's
// steps to the object's retired-step counter (see Registry snapshots),
// and returns the slot; it is idempotent. The handle must not be used
// after release. Steps() on a pooled handle is cumulative over every
// previous owner of its slot — cost individual operations as a
// before/after delta.
func (s *Snapshot) Acquire() (SnapshotHandle, func()) {
	return s.slots.acquire()
}

// TryAcquire is Acquire without blocking: ok is false (and the handle and
// release are nil) when every slot is currently held.
func (s *Snapshot) TryAcquire() (h SnapshotHandle, release func(), ok bool) {
	ph, release, ok := s.slots.tryAcquire()
	if !ok {
		return nil, nil, false
	}
	return ph, release, true
}

// Do runs f with a pooled handle, releasing it (and flushing any elided
// component update) when f returns. It blocks until a slot is free.
func (s *Snapshot) Do(f func(SnapshotHandle)) {
	h, release := s.Acquire()
	defer release()
	f(h)
}

// StepsRetired returns the cumulative shared-memory steps credited by
// released pooled handles (see Counter.StepsRetired).
func (s *Snapshot) StepsRetired() uint64 { return s.slots.stepsRetired() }

func (s *Snapshot) newPooledHandle(slot int) *pooledSnapshotHandle {
	return &pooledSnapshotHandle{h: s.runtimeHandle(slot), n: s.spec.procs}
}

// pooledSnapshotHandle wraps a slot's underlying handle with step
// accounting across acquisitions, truncating scans to the caller-visible
// components. It implements BatchedSnapshotHandle.
type pooledSnapshotHandle struct {
	h        snapshotRT
	n        int
	credited uint64 // steps already added to the object's retired counter
}

func (h *pooledSnapshotHandle) Update(v uint64) { h.h.Update(v) }
func (h *pooledSnapshotHandle) Scan() []uint64  { return h.h.Scan()[:h.n] }
func (h *pooledSnapshotHandle) ScanInto(dst []uint64) []uint64 {
	return h.h.ScanInto(dst)[:h.n]
}
func (h *pooledSnapshotHandle) Component() int { return h.h.Component() }
func (h *pooledSnapshotHandle) Steps() uint64  { return h.h.Steps() }
func (h *pooledSnapshotHandle) Flush()         { h.h.Flush() }

func (h *pooledSnapshotHandle) retire(credit *atomic.Uint64) {
	h.h.Flush()
	creditSteps(credit, h.h.Steps(), &h.credited)
}

// Acquire borrows an exclusive handle from the histogram's slot pool,
// blocking until a slot is free. The returned release function flushes
// any buffered observations, credits the handle's steps to the object's
// retired-step counter (see Registry snapshots), and returns the slot;
// it is idempotent. The handle must not be used after release. Steps()
// on a pooled handle is cumulative over every previous owner of its
// slot — cost individual operations as a before/after delta.
func (h *Histogram) Acquire() (HistogramHandle, func()) {
	return h.slots.acquire()
}

// TryAcquire is Acquire without blocking: ok is false (and the handle and
// release are nil) when every slot is currently held.
func (h *Histogram) TryAcquire() (hh HistogramHandle, release func(), ok bool) {
	ph, release, ok := h.slots.tryAcquire()
	if !ok {
		return nil, nil, false
	}
	return ph, release, true
}

// Do runs f with a pooled handle, releasing it (and flushing buffered
// observations) when f returns. It blocks until a slot is free.
func (h *Histogram) Do(f func(HistogramHandle)) {
	hh, release := h.Acquire()
	defer release()
	f(hh)
}

// StepsRetired returns the cumulative shared-memory steps credited by
// released pooled handles (see Counter.StepsRetired).
func (h *Histogram) StepsRetired() uint64 { return h.slots.stepsRetired() }

func (h *Histogram) newPooledHandle(slot int) *pooledHistogramHandle {
	return &pooledHistogramHandle{histSlotHandle: histSlotHandle{h: h.runtimeHandle(slot), bk: h.bk}}
}

// pooledHistogramHandle wraps a slot's underlying handle with step
// accounting across acquisitions. It implements BatchedHistogramHandle.
type pooledHistogramHandle struct {
	histSlotHandle
	credited uint64 // steps already added to the object's retired counter
}

func (h *pooledHistogramHandle) retire(credit *atomic.Uint64) {
	h.h.Flush()
	creditSteps(credit, h.h.Steps(), &h.credited)
}
