package approxobj

import (
	"fmt"

	"approxobj/internal/telemetry"
)

// This file is the public face of the self-instrumentation plane: a
// Telemetry domain objects opt into with WithTelemetry, a sampled trace
// hook, and Registry.SelfMetrics, which surfaces the runtime's internal
// event counts as ordinary registry objects — counted, enveloped, and
// exported exactly like user objects (the library instrumented by its
// own approximate objects).
//
// The accounting applies the repository's thesis to itself: the hottest
// per-operation events (buffer hits, elided writes) are batched in
// handle-local accumulators and published every telemetry.CounterBatch
// events, and that lag is not hidden — it is the Buffer term of those
// meters' own Bounds, rendered as _bound companion series by package
// expose like any user object's envelope. Everything else is counted
// exactly (striped atomic adds). Disabled instrumentation — no
// WithTelemetry — costs one predicted-not-taken branch on the hot
// paths and zero allocations (see TestTelemetryDisabledZeroCost).

// TraceEvent enumerates the sampled trace hook's event kinds: the
// coarse structural events of the runtime worth a callback, not the
// per-operation counts (those are meters; see Registry.SelfMetrics).
type TraceEvent int

const (
	// TraceFlush: a handle buffer published its pending state to the
	// shards; value is the flushed amount.
	TraceFlush TraceEvent = iota
	// TraceRefresh: a read-cache cell was re-combined; slot is -1 (the
	// cache is per plane, not per slot), value is the combined scalar
	// (or the vector length, for vector kinds).
	TraceRefresh
	// TraceRotation: a windowed object rotated an epoch out of its
	// ring; value is the new epoch sequence number.
	TraceRotation
	// TraceAcquire: a pool slot was leased; slot is the leased slot.
	TraceAcquire
)

// String names the trace event kind.
func (ev TraceEvent) String() string {
	switch ev {
	case TraceFlush:
		return "flush"
	case TraceRefresh:
		return "refresh"
	case TraceRotation:
		return "rotation"
	case TraceAcquire:
		return "acquire"
	}
	return "invalid"
}

// TraceFunc receives sampled trace events. It is called synchronously
// on the traced operation's goroutine, so implementations should be
// cheap and must not call back into the object being traced.
type TraceFunc func(ev TraceEvent, slot int, value uint64)

// Telemetry is one self-instrumentation domain: a shared event sink
// that every object built with WithTelemetry(t) reports into, read back
// out by Registry.SelfMetrics. Create one with NewTelemetry and share
// it across the objects whose runtime activity should aggregate into
// one set of approx_runtime_* meters (typically one per process, like a
// metrics registry). A Telemetry is safe for concurrent use once
// configured; the zero value is not usable.
type Telemetry struct {
	sink *telemetry.Sink
}

// TelemetryOption configures a Telemetry domain at construction.
type TelemetryOption func(*Telemetry)

// NewTelemetry creates an enabled, empty telemetry domain.
func NewTelemetry(opts ...TelemetryOption) *Telemetry {
	t := &Telemetry{sink: telemetry.New()}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// WithTraceHook installs a sampled trace hook on the domain: fn fires
// for roughly 1 in 2^sampleShift trace events (sampleShift 0 fires on
// every event), selected by an unbiased shared SplitMix64 draw, so the
// hook's cost on the hot paths is one atomic add per offered event
// regardless of the sample rate. Configuration only — the hook cannot
// be changed once objects are built on the domain.
func WithTraceHook(fn TraceFunc, sampleShift uint) TelemetryOption {
	return func(t *Telemetry) {
		if fn == nil {
			return
		}
		t.sink.SetTrace(func(ev telemetry.TraceEvent, slot int, value uint64) {
			fn(publicTraceEvent(ev), slot, value)
		}, sampleShift)
	}
}

// publicTraceEvent maps the internal trace enum to the public mirror.
func publicTraceEvent(ev telemetry.TraceEvent) TraceEvent {
	switch ev {
	case telemetry.TraceFlush:
		return TraceFlush
	case telemetry.TraceRefresh:
		return TraceRefresh
	case telemetry.TraceRotation:
		return TraceRotation
	default:
		return TraceAcquire
	}
}

// WithTelemetry attaches the object to telemetry domain t: its runtime
// layers (handle buffers, read cache, pool, window ring, base-object
// arenas) report events into t's sink, surfaced by
// Registry.SelfMetrics. Objects built without it are completely
// uninstrumented — the runtime's telemetry pointer stays nil and the
// hot paths pay a single never-taken branch.
func WithTelemetry(t *Telemetry) Option { return func(s *Spec) { s.tel = t } }

// instrumentObject wires the construction-time telemetry of one built
// object: its pool's acquisition events, its contribution to the
// resident-bytes gauge, and its slots' share of the lag accounting
// behind the batched meters' Buffer envelope. baseObjects is the
// object's BaseObjects method (called per scrape — resident bytes is a
// pull gauge, so windowed objects report their live ring, not a stale
// construction-time figure).
func instrumentObject(spec Spec, free interface {
	Instrument(*telemetry.Sink)
}, baseObjects func() uint64) {
	if spec.tel == nil {
		return
	}
	sink := spec.tel.sink
	free.Instrument(sink)
	// One lag unit per allocated slot: each slot's handle buffer owns at
	// most one unpublished BumpLocal accumulator per batched meter.
	sink.AddLagUnits(spec.totalProcs())
	// The paper's space measure is base objects; a register is an ID
	// word plus a value word, so 16 bytes each is the documented
	// estimate (padding and arena guards are deliberately excluded —
	// the meter tracks model cost, not allocator overhead).
	sink.RegisterResident(func() uint64 { return 16 * baseObjects() })
}

// selfMeter is one approx_runtime_* meter: a read-only registry
// instance whose value is a closure over the telemetry sink. Its spec
// has zero procs, which no user spec can have, so the registry's typed
// getters reject the name instead of handing out a meter as a user
// object.
type selfMeter struct {
	spec   Spec
	sink   *telemetry.Sink
	read   func() uint64
	bounds func() Bounds
}

var _ instance = (*selfMeter)(nil)

func (m *selfMeter) Spec() Spec                       { return m.spec }
func (m *selfMeter) Bounds() Bounds                   { return m.bounds() }
func (m *selfMeter) StepsRetired() uint64             { return 0 }
func (m *selfMeter) Close()                           {}
func (m *selfMeter) snapshotValue() uint64            { return m.read() }
func (m *selfMeter) snapshotBounds() Bounds           { return m.bounds() }
func (m *selfMeter) snapshotSteps() uint64            { return 0 }
func (m *selfMeter) snapshotDetail() *HistogramDetail { return nil }

// exactMeterBounds is the envelope of the exactly-counted meters.
func exactMeterBounds() Bounds { return Bounds{Mult: 1} }

// selfMetricNames lists the meter names SelfMetrics registers, in
// registration order (exported indirectly through Registry.Names).
var selfMetricNames = []string{
	"approx_runtime_flushes",
	"approx_runtime_buffer_hits",
	"approx_runtime_elided_writes",
	"approx_runtime_readcache_hits",
	"approx_runtime_readcache_misses",
	"approx_runtime_readcache_inline_refreshes",
	"approx_runtime_combiner_ticks",
	"approx_runtime_refresh_ns_peak",
	"approx_runtime_pool_acquires",
	"approx_runtime_pool_tryacquire_failures",
	"approx_runtime_window_rotations",
	"approx_runtime_rehomed_handles",
	"approx_runtime_arena_rows",
	"approx_runtime_resident_bytes",
}

// SelfMetrics registers the telemetry domain's runtime meters in the
// registry as ordinary objects, so Snapshot reads them and package
// expose renders them as approx_runtime_* series next to the user
// objects they describe. The meters are:
//
//	approx_runtime_flushes_total            handle buffers published to the shards
//	approx_runtime_buffer_hits_total        writes absorbed by handle-local buffers¹
//	approx_runtime_elided_writes_total      writes elided entirely by an elision policy¹
//	approx_runtime_readcache_hits_total     cached reads served from a fresh cell
//	approx_runtime_readcache_misses_total   cached reads that fell through to the refresh lock
//	approx_runtime_readcache_inline_refreshes_total  reads that re-combined the cell themselves
//	approx_runtime_combiner_ticks_total     background combiner refresh ticks
//	approx_runtime_refresh_ns_peak          read-cache refresh latency high-water mark (gauge, ns)
//	approx_runtime_pool_acquires_total      pool slots leased
//	approx_runtime_pool_tryacquire_failures_total  TryAcquire calls that found no free slot
//	approx_runtime_window_rotations_total   epochs rotated out of window rings
//	approx_runtime_rehomed_handles_total    windowed handles re-bound to a fresh epoch
//	approx_runtime_arena_rows_total         base-object arena rows allocated
//	approx_runtime_resident_bytes           base-object bytes of the live instrumented objects (gauge)
//
// ¹ Counted through batched handle-local accumulators (the same MVY
// trade the objects themselves make), so these two meters carry a
// nonzero Buffer envelope — at most telemetry.CounterBatch-1
// unpublished events per slot of each instrumented object — which
// expose renders as their _bound companion series. Every other meter
// is exact. Hits are derived (cached reads minus misses, saturating).
//
// SelfMetrics is idempotent for the same domain and an error when a
// meter name is already registered to anything else. The returned
// meters round-trip through Registry.Snapshot and Close like any
// object (Close is a no-op for them — the sink has no background
// resources).
func (r *Registry) SelfMetrics(t *Telemetry) error {
	if t == nil || t.sink == nil {
		return fmt.Errorf("approxobj: SelfMetrics needs a telemetry domain built by NewTelemetry")
	}
	sink := t.sink
	exact := func(read func() uint64) *selfMeter {
		return &selfMeter{spec: Spec{kind: KindCounter}, sink: sink, read: read, bounds: exactMeterBounds}
	}
	counted := func(ev telemetry.Event) *selfMeter {
		return exact(func() uint64 { return sink.Total(ev) })
	}
	lagged := func(ev telemetry.Event) *selfMeter {
		return &selfMeter{
			spec: Spec{kind: KindCounter},
			sink: sink,
			read: func() uint64 { return sink.Total(ev) },
			bounds: func() Bounds {
				return Bounds{Mult: 1, Buffer: sink.LagBound()}
			},
		}
	}
	gauge := func(kind Kind, read func() uint64) *selfMeter {
		return &selfMeter{spec: Spec{kind: kind}, sink: sink, read: read, bounds: exactMeterBounds}
	}
	meters := map[string]*selfMeter{
		"approx_runtime_flushes":       counted(telemetry.EvFlush),
		"approx_runtime_buffer_hits":   lagged(telemetry.EvBufferHit),
		"approx_runtime_elided_writes": lagged(telemetry.EvElidedWrite),
		"approx_runtime_readcache_hits": exact(func() uint64 {
			reads, misses := sink.Total(telemetry.EvCacheRead), sink.Total(telemetry.EvCacheMiss)
			if misses > reads {
				return 0
			}
			return reads - misses
		}),
		"approx_runtime_readcache_misses":           counted(telemetry.EvCacheMiss),
		"approx_runtime_readcache_inline_refreshes": counted(telemetry.EvInlineRefresh),
		"approx_runtime_combiner_ticks":             counted(telemetry.EvCombinerTick),
		"approx_runtime_refresh_ns_peak":            gauge(KindMaxRegister, sink.RefreshHighWaterNs),
		"approx_runtime_pool_acquires":              counted(telemetry.EvPoolAcquire),
		"approx_runtime_pool_tryacquire_failures":   counted(telemetry.EvPoolTryFail),
		"approx_runtime_window_rotations":           counted(telemetry.EvRotation),
		"approx_runtime_rehomed_handles":            counted(telemetry.EvRehome),
		"approx_runtime_arena_rows":                 counted(telemetry.EvArenaRow),
		"approx_runtime_resident_bytes":             gauge(KindSnapshot, sink.ResidentBytes),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Validate the whole batch before registering any of it, so a
	// partial failure does not leave half the meters behind.
	for _, name := range selfMetricNames {
		if e, ok := r.entries[name]; ok {
			m, isMeter := e.obj.(*selfMeter)
			if !isMeter {
				return fmt.Errorf("approxobj: SelfMetrics name %q already registered as %s", name, e.spec)
			}
			if m.sink != sink {
				return fmt.Errorf("approxobj: SelfMetrics name %q already bound to a different telemetry domain", name)
			}
		}
	}
	for _, name := range selfMetricNames {
		if _, ok := r.entries[name]; ok {
			continue
		}
		m := meters[name]
		r.entries[name] = &regEntry{name: name, spec: m.spec, obj: m}
		r.order = append(r.order, name)
	}
	return nil
}
