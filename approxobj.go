// Package approxobj implements deterministic approximate shared objects —
// k-multiplicative-accurate counters and max registers — together with the
// exact objects they are built from and compared against, reproducing
// "Upper and Lower Bounds for Deterministic Approximate Objects" (Hendler,
// Khattabi, Milani, Travers; ICDCS 2021).
//
// A k-multiplicative-accurate object allows reads to err by a
// multiplicative factor k: a counter read may return any x with
// v/k <= x <= v*k for the true count v, and similarly for the maximum value
// of a max register. Relaxing accuracy buys steep complexity improvements:
//
//   - Counter: wait-free linearizable with O(1) amortized steps per
//     operation for k >= sqrt(n) (n = number of processes), versus
//     Omega(n) worst-case / polylog amortized for exact counters.
//   - BoundedMaxRegister: worst-case O(min(log2 log_k m, n)) steps versus
//     Theta(log m) for the exact bounded register — an exponential
//     improvement, matching the paper's lower bound.
//
// # Process handles
//
// The algorithms come from the asynchronous shared-memory model with n
// named processes, each holding persistent local state (scan positions,
// unannounced counts). Callers therefore bind each concurrent goroutine to
// a distinct process slot via Handle(i); a handle must not be shared
// between goroutines. The objects themselves are safe for fully concurrent
// use through distinct handles and are wait-free: every operation finishes
// in a bounded number of its own steps regardless of other goroutines
// stalling or crashing.
//
// All implementations are instrumented: Handle steps are counted, which the
// benchmark harness (cmd/approxbench) uses to reproduce the paper's step
// complexity bounds.
package approxobj

import (
	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/maxreg"
	"approxobj/internal/prim"
	"approxobj/internal/shard"
)

// CounterHandle is one process's view of a shared counter. Inc adds one;
// Read returns the (possibly approximate) number of Incs linearized before
// it. A handle is not safe for concurrent use; create one per goroutine.
type CounterHandle interface {
	Inc()
	Read() uint64
	// Steps returns the number of shared-memory primitive operations this
	// handle's process has performed (for step-complexity measurements).
	Steps() uint64
}

// MaxRegisterHandle is one process's view of a shared max register.
type MaxRegisterHandle interface {
	// Write records v; Read returns (an approximation of) the maximum
	// value written by any handle so far.
	Write(v uint64)
	Read() uint64
	Steps() uint64
}

// Counter is the paper's Algorithm 1: a wait-free linearizable
// k-multiplicative-accurate unbounded counter with constant amortized step
// complexity for k >= sqrt(n).
type Counter struct {
	f *prim.Factory
	c *core.MultCounter
}

// NewCounter creates an approximate counter for n processes with accuracy
// k. The accuracy guarantee requires k >= sqrt(n) (and k >= 2); NewCounter
// returns an error otherwise.
func NewCounter(n int, k uint64) (*Counter, error) {
	f := prim.NewFactory(n)
	c, err := core.NewMultCounter(f, k)
	if err != nil {
		return nil, err
	}
	return &Counter{f: f, c: c}, nil
}

// N returns the number of process slots.
func (c *Counter) N() int { return c.c.N() }

// K returns the accuracy parameter.
func (c *Counter) K() uint64 { return c.c.K() }

// Handle binds process slot i (0 <= i < n) to the counter. Each concurrent
// goroutine must use its own slot.
func (c *Counter) Handle(i int) CounterHandle {
	return c.c.Handle(c.f.Proc(i))
}

// ExactCounter is the folklore wait-free exact counter (single-writer
// components summed by readers): O(1) increments, O(n) reads, always
// precise. It is the baseline the paper's introduction describes.
type ExactCounter struct {
	f *prim.Factory
	c *counter.Collect
}

// NewExactCounter creates an exact counter for n processes.
func NewExactCounter(n int) (*ExactCounter, error) {
	f := prim.NewFactory(n)
	c, err := counter.NewCollect(f)
	if err != nil {
		return nil, err
	}
	return &ExactCounter{f: f, c: c}, nil
}

// N returns the number of process slots.
func (c *ExactCounter) N() int { return c.f.N() }

// Handle binds process slot i to the counter.
func (c *ExactCounter) Handle(i int) CounterHandle {
	p := c.f.Proc(i)
	return &collectHandle{h: c.c.Handle(p), p: p}
}

type collectHandle struct {
	h *counter.CollectHandle
	p *prim.Proc
}

func (h *collectHandle) Inc()          { h.h.Inc() }
func (h *collectHandle) Read() uint64  { return h.h.Read() }
func (h *collectHandle) Steps() uint64 { return h.p.Steps() }

// AdditiveCounter is a k-additive-accurate counter (reads err by at most
// ±k), the alternative relaxation the paper contrasts with multiplicative
// accuracy: cheap batched increments, but reads still cost n steps —
// consistent with the Omega(min(n-1, log m - log k)) lower bound of Aspnes
// et al. for this object class.
type AdditiveCounter struct {
	f *prim.Factory
	c *counter.Additive
}

// NewAdditiveCounter creates a k-additive-accurate counter for n processes.
func NewAdditiveCounter(n int, k uint64) (*AdditiveCounter, error) {
	f := prim.NewFactory(n)
	c, err := counter.NewAdditive(f, k)
	if err != nil {
		return nil, err
	}
	return &AdditiveCounter{f: f, c: c}, nil
}

// N returns the number of process slots.
func (c *AdditiveCounter) N() int { return c.f.N() }

// K returns the additive accuracy parameter.
func (c *AdditiveCounter) K() uint64 { return c.c.K() }

// Handle binds process slot i to the counter.
func (c *AdditiveCounter) Handle(i int) CounterHandle {
	p := c.f.Proc(i)
	return &additiveHandle{h: c.c.Handle(p), p: p}
}

type additiveHandle struct {
	h *counter.AdditiveHandle
	p *prim.Proc
}

func (h *additiveHandle) Inc()          { h.h.Inc() }
func (h *additiveHandle) Read() uint64  { return h.h.Read() }
func (h *additiveHandle) Steps() uint64 { return h.p.Steps() }

// BatchedCounterHandle is a CounterHandle whose increments may be buffered
// locally; Flush publishes any buffered increments. Handles of a
// ShardedCounter created with Batch(B > 1) implement it.
type BatchedCounterHandle interface {
	CounterHandle
	Flush()
}

// ShardedCounter is the scaling runtime over the paper's counters: S
// independent shards (each a full k-accurate counter) summed by readers,
// with handle-affinity increment placement and optional per-handle
// increment batching. The sum of S k-multiplicative-accurate shards is
// still k-multiplicative-accurate (both envelope bounds are linear in the
// per-shard counts), so sharding buys increment parallelism without
// widening the relative error; batching additionally hides up to B-1
// increments per handle from readers, a bounded additive slack that
// Bounds reports. The combined Read is regular rather than linearizable:
// see internal/shard's package comment for the precise window.
type ShardedCounter struct {
	c *shard.Counter
}

// ShardOption configures a ShardedCounter (see Shards and Batch).
type ShardOption = shard.Option

// Bounds is the documented read envelope of a ShardedCounter: against a
// true count v, a Read may return any x with
//
//	(v - Buffer)/Mult - Add <= x <= Mult*v + Add.
//
// Contains and ContainsRange evaluate membership (the latter over the
// regularity window of a concurrent read). The alias makes the internal
// type nameable by importers.
type Bounds = shard.Bounds

// Shards sets the shard count S (default 1).
func Shards(s int) ShardOption { return shard.Shards(s) }

// Batch sets the per-handle increment buffer B (default 1: unbuffered).
func Batch(b int) ShardOption { return shard.Batch(b) }

// NewShardedCounter creates a sharded approximate counter for n process
// slots with accuracy k. Each shard is an independent Algorithm 1 counter
// over its own base objects, so the precondition k >= sqrt(n) applies as
// for NewCounter.
func NewShardedCounter(n int, k uint64, opts ...ShardOption) (*ShardedCounter, error) {
	c, err := shard.New(n, k, opts...)
	if err != nil {
		return nil, err
	}
	return &ShardedCounter{c: c}, nil
}

// N returns the number of process slots.
func (c *ShardedCounter) N() int { return c.c.N() }

// K returns the accuracy parameter.
func (c *ShardedCounter) K() uint64 { return c.c.K() }

// Shards returns the shard count.
func (c *ShardedCounter) Shards() int { return c.c.Shards() }

// Batch returns the per-handle buffer size (1 means unbuffered).
func (c *ShardedCounter) Batch() uint64 { return c.c.Batch() }

// Bounds returns the documented read envelope: a Read may return any x
// with (v-Buffer)/Mult - Add <= x <= Mult*v + Add for the true count v.
func (c *ShardedCounter) Bounds() Bounds { return c.c.Bounds() }

// Handle binds process slot i to the counter. The returned handle also
// implements BatchedCounterHandle.
func (c *ShardedCounter) Handle(i int) CounterHandle { return c.c.Handle(i) }

// BoundedMaxRegister is the paper's Algorithm 2: a wait-free linearizable
// k-multiplicative-accurate m-bounded max register with worst-case step
// complexity O(min(log2 log_k m, n)) — exponentially faster than exact.
type BoundedMaxRegister struct {
	f *prim.Factory
	r *core.KMultMaxReg
}

// NewBoundedMaxRegister creates a k-multiplicative-accurate max register
// for values in {0..m-1}, for n process slots. Requires m >= 2 and k >= 2.
func NewBoundedMaxRegister(n int, m, k uint64) (*BoundedMaxRegister, error) {
	f := prim.NewFactory(n)
	r, err := core.NewKMultMaxReg(f, m, k)
	if err != nil {
		return nil, err
	}
	return &BoundedMaxRegister{f: f, r: r}, nil
}

// Bound returns m. Values written must be < m.
func (r *BoundedMaxRegister) Bound() uint64 { return r.r.Bound() }

// K returns the accuracy parameter.
func (r *BoundedMaxRegister) K() uint64 { return r.r.K() }

// Handle binds process slot i to the register.
func (r *BoundedMaxRegister) Handle(i int) MaxRegisterHandle {
	p := r.f.Proc(i)
	return &maxRegHandle{w: func(v uint64) { r.r.Write(p, v) }, rd: func() uint64 { return r.r.Read(p) }, p: p}
}

// ExactBoundedMaxRegister is the exact m-bounded max register of Aspnes,
// Attiya and Censor-Hillel (the substrate of Algorithm 2), with Theta(log m)
// worst-case step complexity.
type ExactBoundedMaxRegister struct {
	f *prim.Factory
	r *maxreg.Bounded
}

// NewExactBoundedMaxRegister creates an exact max register for values in
// {0..m-1}, for n process slots.
func NewExactBoundedMaxRegister(n int, m uint64) (*ExactBoundedMaxRegister, error) {
	f := prim.NewFactory(n)
	r, err := maxreg.NewBounded(f, m)
	if err != nil {
		return nil, err
	}
	return &ExactBoundedMaxRegister{f: f, r: r}, nil
}

// Bound returns m.
func (r *ExactBoundedMaxRegister) Bound() uint64 { return r.r.Bound() }

// Handle binds process slot i to the register.
func (r *ExactBoundedMaxRegister) Handle(i int) MaxRegisterHandle {
	p := r.f.Proc(i)
	return &maxRegHandle{w: func(v uint64) { r.r.Write(p, v) }, rd: func() uint64 { return r.r.Read(p) }, p: p}
}

// MaxRegister is the unbounded k-multiplicative-accurate max register the
// paper sketches in Section I-B: Algorithm 2 plugged into an unbounded
// epoch construction, with sub-logarithmic step complexity in the value.
type MaxRegister struct {
	f *prim.Factory
	r *maxreg.Unbounded
}

// NewMaxRegister creates an unbounded approximate max register with
// accuracy k >= 2 for n process slots.
func NewMaxRegister(n int, k uint64) (*MaxRegister, error) {
	f := prim.NewFactory(n)
	r, err := core.NewKMultUnboundedMaxReg(f, k)
	if err != nil {
		return nil, err
	}
	return &MaxRegister{f: f, r: r}, nil
}

// Handle binds process slot i to the register.
func (r *MaxRegister) Handle(i int) MaxRegisterHandle {
	p := r.f.Proc(i)
	return &maxRegHandle{w: func(v uint64) { r.r.Write(p, v) }, rd: func() uint64 { return r.r.Read(p) }, p: p}
}

// ExactMaxRegister is the unbounded exact max register (epoch construction
// over exact bounded registers), with O(log v) step complexity.
type ExactMaxRegister struct {
	f *prim.Factory
	r *maxreg.Unbounded
}

// NewExactMaxRegister creates an unbounded exact max register for n
// process slots.
func NewExactMaxRegister(n int) (*ExactMaxRegister, error) {
	f := prim.NewFactory(n)
	r, err := maxreg.NewUnbounded(f, maxreg.ExactFactory)
	if err != nil {
		return nil, err
	}
	return &ExactMaxRegister{f: f, r: r}, nil
}

// Handle binds process slot i to the register.
func (r *ExactMaxRegister) Handle(i int) MaxRegisterHandle {
	p := r.f.Proc(i)
	return &maxRegHandle{w: func(v uint64) { r.r.Write(p, v) }, rd: func() uint64 { return r.r.Read(p) }, p: p}
}

type maxRegHandle struct {
	w  func(uint64)
	rd func() uint64
	p  *prim.Proc
}

func (h *maxRegHandle) Write(v uint64) { h.w(v) }
func (h *maxRegHandle) Read() uint64   { return h.rd() }
func (h *maxRegHandle) Steps() uint64  { return h.p.Steps() }
