// Package approxobj implements deterministic approximate shared objects —
// k-multiplicative-accurate counters and max registers, single-writer
// atomic snapshots, and rounded-bucket histograms with quantile queries —
// together with the exact objects they are built from and compared
// against, reproducing "Upper and Lower Bounds for Deterministic
// Approximate Objects" (Hendler, Khattabi, Milani, Travers; ICDCS 2021).
//
// The paper describes a family of objects trading accuracy for steps, and
// the API exposes it as one: a spec built from orthogonal functional
// options names any family member, and every object reports the same
// universal accuracy envelope (Bounds).
//
//	// The paper's Algorithm 1: k-multiplicative counter, sharded 4 ways.
//	c, err := approxobj.NewCounter(
//		approxobj.WithProcs(16),
//		approxobj.WithAccuracy(approxobj.Multiplicative(4)),
//		approxobj.WithShards(4),
//		approxobj.WithBatch(16),
//	)
//
//	// The paper's Algorithm 2: k-multiplicative m-bounded max register.
//	r, err := approxobj.NewMaxRegister(
//		approxobj.WithProcs(16),
//		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
//		approxobj.WithBound(1<<20),
//	)
//
//	// A sharded single-writer snapshot with component elision.
//	s, err := approxobj.NewSnapshot(
//		approxobj.WithProcs(8),
//		approxobj.WithShards(2),
//		approxobj.WithBatch(16),
//	)
//
//	// An approximate histogram: Observe values, query Quantile/Rank/CDF
//	// with deterministic factor-k value error (MVY rounded buckets).
//	h, err := approxobj.NewHistogram(
//		approxobj.WithProcs(8),
//		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
//		approxobj.WithShards(4),
//		approxobj.WithBatch(64),
//	)
//
// Accuracy (Exact, Additive(k), Multiplicative(k), Randomized(k, delta)),
// process count, shard count, batching, and value bounds compose freely;
// the constructor validates the combination in one place (e.g. k >=
// sqrt(n) for multiplicative counters, bounds only on max registers) and
// returns a descriptive error otherwise. A k-multiplicative-accurate object allows
// reads to err by a multiplicative factor k — a counter read may return
// any x with v/k <= x <= v*k for the true count v — which buys steep
// complexity improvements: O(1) amortized counter steps for k >= sqrt(n)
// versus Omega(n) exact, and O(min(log2 log_k m, n)) max-register steps
// versus Theta(log m) exact.
//
// # The backend plane
//
// Every object family runs on one sharded runtime (internal/shard),
// registered in a backend table that drives spec validation, registry
// dispatch, and envelope composition. A kind is two policies — how a
// read combines the S per-shard reads (sum, max, per-component merge)
// and how a handle buffers mutations locally (count batching, write
// elision, component elision) — plus its set of per-shard backends.
// Kinds returns the table; adding object family N+1 is a registration,
// not a new code path.
//
// # Process handles
//
// The algorithms come from the asynchronous shared-memory model with n
// named processes, each holding persistent local state (scan positions,
// unannounced counts). Each concurrent goroutine therefore binds to a
// distinct process slot. The preferred way is the built-in handle pool —
// Acquire returns an exclusive handle and a release function, Do wraps a
// function call in an acquire/release pair — which enforces the "one
// handle per goroutine" invariant by construction and flushes buffered
// mutations (batched increments, elided writes) on release. Handle(i)
// remains for callers that manage slot assignment themselves; a handle
// must never be shared between goroutines. The objects themselves are
// safe for fully concurrent use through distinct slots and are wait-free:
// every operation finishes in a bounded number of its own steps
// regardless of other goroutines stalling.
//
// # Registry
//
// A Registry names objects ("requests", "peak-queue-depth", ...) and takes
// atomic snapshots of value, envelope, and cumulative steps per object,
// feeding telemetry and export scenarios; see examples/registry.
//
// All implementations are instrumented: handle steps are counted, which
// the benchmark harness (cmd/approxbench) uses to reproduce the paper's
// step complexity bounds. The spec surface (NewCounter, NewMaxRegister,
// NewSnapshot, NewHistogram with options) is the only construction path;
// the pre-spec per-family constructors were removed in PR 6.
package approxobj

import (
	"fmt"
	"sync/atomic"

	"approxobj/internal/satmath"
	"approxobj/internal/shard"
)

// CounterHandle is one process's view of a shared counter. Inc adds one;
// Read returns the (possibly approximate) number of Incs linearized before
// it. A handle is not safe for concurrent use; acquire one per goroutine.
type CounterHandle interface {
	Inc()
	Read() uint64
	// Steps returns the number of shared-memory primitive operations this
	// handle's process has performed (for step-complexity measurements).
	Steps() uint64
}

// MaxRegisterHandle is one process's view of a shared max register.
type MaxRegisterHandle interface {
	// Write records v; Read returns (an approximation of) the maximum
	// value written by any handle so far.
	Write(v uint64)
	Read() uint64
	Steps() uint64
}

// BatchedCounterHandle is a CounterHandle whose increments may be buffered
// locally; Flush publishes any buffered increments. Every counter handle
// implements it — Flush is a no-op on unbatched (B = 1) counters, and
// pooled handles flush automatically on release — so type assertions on
// it cannot fail for handles of this package's counters.
type BatchedCounterHandle interface {
	CounterHandle
	Flush()
}

// BatchedMaxRegisterHandle is a MaxRegisterHandle whose writes may be
// elided locally (see WithBatch); Flush publishes the highest elided
// value. Every max-register handle implements it — Flush is a no-op when
// nothing is pending, and pooled handles flush automatically on release —
// so type assertions on it cannot fail for handles of this package's max
// registers.
type BatchedMaxRegisterHandle interface {
	MaxRegisterHandle
	Flush()
}

// counterDescriptor registers the counter family in the backend-plane
// table: reads sum the shards, handles batch increment counts, and the
// Multiplicative backend carries Algorithm 1's k >= sqrt(n) precondition.
var counterDescriptor = &kindDescriptor{
	kind:   KindCounter,
	name:   "counter",
	plural: "counters",

	policy:   shard.CounterPolicyRow(),
	envelope: "Mult unchanged; Add widens to S·k; Buffer = (B-1)·n",
	scenario: "E12",

	staleTerm:    "Read may miss Incs of the last maxStale (window opens maxStale early)",
	readScenario: "E17",

	windowTerm:     "Read sums the Incs of the last d (Add widens to epochs·S·k; one epoch of edge skew)",
	windowScenario: "E18",

	accuracies: map[accMode]func(s Spec) error{
		accExact:          nil,
		accAdditive:       nil,
		accMultiplicative: checkMultCounter,
		// Randomized has no per-kind precondition beyond the accuracy
		// table's k >= 2 and 0 < delta < 1: Morris shards carry no
		// k >= sqrt(n) constraint — probability, not awareness
		// propagation, is doing the work.
		accRandomized: nil,
	},
	frontierScenario: "E19",
	build:            func(s Spec) (instance, error) { return newCounter(s) },
}

// checkMultCounter mirrors core.NewMultCounter's precondition (defense in
// depth, via the shared satmath.SquareAtLeast predicate): checking at the
// spec level gives spec-level error messages (including the
// snapshot-slot hint) before any shard is built.
func checkMultCounter(s Spec) error {
	k, n := s.acc.k, uint64(s.totalProcs())
	if !satmath.SquareAtLeast(k, n) {
		if int(n) != s.procs {
			// Spell out the internal slots so "n" in the message is not a
			// mystery to a caller who only passed WithProcs(procs).
			parts := fmt.Sprintf("%d caller slots", s.procs)
			if s.snapshotSlot {
				parts += " + 1 registry snapshot slot"
			}
			if s.readStale > 0 {
				parts += " + 1 read-cache combiner slot"
			}
			return fmt.Errorf("approxobj: multiplicative accuracy needs k >= sqrt(n): k=%d, n=%d (%s)", k, n, parts)
		}
		return fmt.Errorf("approxobj: multiplicative accuracy needs k >= sqrt(n): k=%d, n=%d", k, n)
	}
	return nil
}

// randomizedSeed spaces the base seeds of successive randomized
// counters: each object's backend derives per-shard (and, under a
// window, per-epoch) seeds by counting up from its base, so bases are
// spaced far apart. Construction order alone determines the seeds — no
// wall clock — keeping fixed-workload runs reproducible.
var randomizedSeed atomic.Int64

// counterShardOptions translates a counter spec into the sharded
// runtime's configuration: the accuracy selects the per-shard backend,
// shards and batch pass through. For Randomized the user's delta is a
// whole-object budget, split evenly over the S shards and (for windowed
// counters) the epoch ring: the plane recomposes per-shard deltas by
// union bound (x S) and the window by epoch count (x epochs), so the
// Bounds an object reports carries the delta the user asked for, not a
// multiple of it.
func counterShardOptions(s Spec) (k uint64, opts []shard.Option) {
	var be shard.Backend
	switch s.acc.mode {
	case accAdditive:
		be, k = shard.AdditiveBackend(), s.acc.k
	case accMultiplicative:
		be, k = shard.MultBackend(), s.acc.k
	case accRandomized:
		per := s.acc.delta / float64(s.shards*max(1, s.windowEpochs))
		be, k = shard.RandomizedBackend(per, randomizedSeed.Add(1)*(1<<32)), s.acc.k
	default:
		be, k = shard.AACHBackend(), 1
	}
	opts = []shard.Option{shard.Shards(s.shards), shard.Batch(s.batch), shard.WithBackend(be)}
	if s.readStale > 0 {
		opts = append(opts, shard.ReadCache(s.readStale))
	}
	if s.tel != nil {
		opts = append(opts, shard.Telemetry(s.tel.sink))
	}
	return k, opts
}

// counterRT is the runtime surface shared by the cumulative and
// windowed counter backends: the handle methods the public layer (slot
// handles, pooled handles, registry snapshot reads) programs against.
// *shard.Handle and *shard.WCounterHandle both satisfy it.
type counterRT interface {
	Inc()
	Read() uint64
	Steps() uint64
	Flush()
}

// Counter is any member of the counter family — exact, k-additive, or
// k-multiplicative, optionally sharded, batched, and windowed — built
// by NewCounter from a spec. All members run on the sharded runtime (an
// unsharded counter is the S=1 case; a windowed one is a rotating ring
// of plane instances) and report their accuracy envelope via Bounds.
type Counter struct {
	spec Spec
	c    *shard.Counter         // cumulative runtime, nil when windowed
	wc   *shard.WindowedCounter // windowed runtime, nil when cumulative

	slots slotPool[*pooledCounterHandle]

	snap counterRT // registry snapshot handle (slot procs), else nil
}

var _ instance = (*Counter)(nil)

// NewCounter builds the counter the options describe. Defaults: one
// process slot, Exact() accuracy, unsharded, unbuffered. Option
// combinations are validated as a whole; e.g. Multiplicative(k) requires
// k >= 2 and k >= sqrt(n), and WithBound is rejected (counters are
// unbounded).
func NewCounter(opts ...Option) (*Counter, error) {
	spec, err := newSpec(KindCounter, opts)
	if err != nil {
		return nil, err
	}
	return newCounter(spec)
}

func newCounter(spec Spec) (*Counter, error) {
	k, sopts := counterShardOptions(spec)
	c := &Counter{spec: spec}
	if spec.Windowed() {
		wc, err := shard.NewWindowedCounter(spec.totalProcs(), k, spec.windowDur, spec.windowEpochs, sopts...)
		if err != nil {
			return nil, err
		}
		c.wc = wc
	} else {
		sc, err := shard.New(spec.totalProcs(), k, sopts...)
		if err != nil {
			return nil, err
		}
		c.c = sc
	}
	c.slots.init(spec.procs, c.newPooledHandle)
	instrumentObject(spec, c.slots.free, c.BaseObjects)
	if spec.snapshotSlot {
		c.snap = c.runtimeHandle(spec.procs)
	}
	return c, nil
}

// runtimeHandle binds a slot on whichever runtime backs the counter.
func (c *Counter) runtimeHandle(i int) counterRT {
	if c.wc != nil {
		return c.wc.Handle(i)
	}
	return c.c.Handle(i)
}

// Spec returns the validated spec the counter was built from.
func (c *Counter) Spec() Spec { return c.spec }

// N returns the number of process slots available to callers.
func (c *Counter) N() int { return c.spec.procs }

// K returns the accuracy parameter (1 for exact counters).
func (c *Counter) K() uint64 { return c.spec.acc.K() }

// Accuracy returns the accuracy selection.
func (c *Counter) Accuracy() Accuracy { return c.spec.acc }

// Shards returns the shard count.
func (c *Counter) Shards() int { return c.spec.shards }

// Batch returns the per-handle buffer size (1 means unbuffered).
func (c *Counter) Batch() uint64 { return uint64(c.spec.batch) }

// Bounds returns the counter's read envelope: a Read may return any x
// with (v-Buffer)/Mult - Add <= x <= Mult*v + Add for the true count v,
// where Buffer = (B-1)*N for WithBatch(B). Exact counters report the
// zero envelope. With WithReadCache the Stale term carries the
// staleness window: the envelope then holds against some true count in
// the regularity window opened Stale before the read began. With
// WithWindow(d, n) the true count is the count of the live window and
// the Window term carries the one-epoch truncation skew d/n; the
// additive slack sums over the ring (Add x n). Randomized counters
// additionally carry the Delta term: the whole envelope holds only with
// probability >= 1-Delta per read, with Delta the delta passed to
// Randomized (budget-split over shards and epochs, then recomposed).
func (c *Counter) Bounds() Bounds {
	if c.wc != nil {
		return scaledBounds(c.wc.Bounds(), c.spec)
	}
	return scaledBounds(c.c.Bounds(), c.spec)
}

// BaseObjects returns the number of base objects (registers, TAS
// instances) the counter has allocated across its shards — and, for
// windowed counters, its live epoch ring. It is the counter's space
// cost in the paper's model; the frontier bench (E19) reports it to
// compare deterministic and randomized state at equal target error.
func (c *Counter) BaseObjects() uint64 {
	if c.wc != nil {
		return c.wc.BaseObjects()
	}
	return c.c.BaseObjects()
}

// Close stops the counter's background goroutines — the read cache's
// combiner when WithReadCache is set, and the epoch rotator when
// WithWindow is set (the window freezes: no further aging; reads keep
// serving the frozen ring and Reset returns an error). Idempotent, and
// a no-op otherwise; handles stay usable afterwards.
func (c *Counter) Close() {
	if c.wc != nil {
		c.wc.Close()
		return
	}
	c.c.Close()
}

// Reset replaces the whole window with fresh epochs — the counter
// restarts from zero. Only windowed counters (WithWindow) support it;
// it is an error otherwise, and after Close. Reset is not atomic with
// concurrent mutations: an Inc racing it lands on either side, exactly
// like an Inc racing a rotation.
func (c *Counter) Reset() error {
	if c.wc == nil {
		return fmt.Errorf("approxobj: Reset needs a windowed counter (WithWindow); this one is cumulative")
	}
	return c.wc.Reset()
}

// Snapshot reads the counter through a pooled handle and, when reset
// is true, resets the window afterwards — the go-metrics read idiom
// ("read and restart the interval"). The read and the reset are two
// steps, not one atomic action: Incs racing Snapshot land on either
// side of the reset. reset = true on a cumulative (non-windowed)
// counter returns the value alongside the Reset error.
func (c *Counter) Snapshot(reset bool) (uint64, error) {
	var v uint64
	c.Do(func(h CounterHandle) { v = h.Read() })
	if reset {
		return v, c.Reset()
	}
	return v, nil
}

// scaledBounds adjusts a runtime envelope for the registry's snapshot
// slot on kinds whose Buffer term scales with the slot count: the shard
// runtime sizes Buffer over every allocated slot, but the snapshot slot
// only ever reads — it can never hold buffered mutations, so the
// documented (B-1)*n over caller slots holds (the same per-handle
// headroom times slot count that plane.Bounds composes, just over the
// caller-visible slots). Every kind's Bounds routes through it (a no-op
// when the kind's Buffer term is per-handle), so a future kind
// registered with BufferScalesWithProcs gets the correction for free.
func scaledBounds(b Bounds, spec Spec) Bounds {
	if spec.snapshotSlot && descriptorOf(spec.kind).policy.BufferScalesWithProcs {
		b.Buffer = satmath.Mul(uint64(spec.batch-1), uint64(spec.procs))
	}
	return b
}

// Handle binds process slot i (0 <= i < N) to the counter, for callers
// managing slot assignment themselves. Each concurrent goroutine must use
// its own slot; do not mix Handle(i) with Acquire/Do on the same slot
// range. The returned handle implements BatchedCounterHandle.
func (c *Counter) Handle(i int) CounterHandle {
	if i < 0 || i >= c.spec.procs {
		panic("approxobj: counter handle slot out of range")
	}
	return c.runtimeHandle(i)
}

// snapshotValue, snapshotBounds, snapshotSteps, and snapshotDetail
// implement the registry's kind-agnostic instance view; see
// Registry.Snapshot.
func (c *Counter) snapshotValue() uint64            { return c.snap.Read() }
func (c *Counter) snapshotBounds() Bounds           { return c.Bounds() }
func (c *Counter) snapshotSteps() uint64            { return c.snap.Steps() }
func (c *Counter) snapshotDetail() *HistogramDetail { return nil }

// maxRegisterDescriptor registers the max-register family in the
// backend-plane table: reads take the max over shards (no envelope
// widening), handles elide writes, and WithBound selects the bounded
// constructions.
var maxRegisterDescriptor = &kindDescriptor{
	kind:   KindMaxRegister,
	name:   "max register",
	plural: "max registers",

	policy:   shard.MaxRegPolicyRow(),
	envelope: "Mult unchanged (independent of S); Buffer = B-1, per handle",
	scenario: "E14",

	staleTerm:    "Read may trail the maximum by writes of the last maxStale",
	readScenario: "E17",

	windowTerm:     "Read is the maximum written in the last d (an expiring high-water mark; no widening)",
	windowScenario: "E18",

	accuracies: map[accMode]func(s Spec) error{
		accExact:          nil,
		accMultiplicative: nil, // k >= 2 is the generic multiplicative check
	},
	allowBound:       true,
	boundLimitsBatch: true, // the batch is a value window: B >= m swallows every write
	build:            func(s Spec) (instance, error) { return newMaxRegister(s) },
}

// maxRegShardOptions translates a max-register spec into the sharded
// runtime's configuration: accuracy and bound select the per-shard
// backend, shards and batch (the write-elision window) pass through.
func maxRegShardOptions(s Spec) (k uint64, opts []shard.MaxRegOption) {
	var be shard.MaxRegBackend
	switch {
	case s.acc.IsExact() && s.boundSet:
		be, k = shard.ExactBoundedMaxBackend(s.bound), 1
	case s.acc.IsExact():
		be, k = shard.ExactMaxBackend(), 1
	case s.boundSet:
		be, k = shard.MultBoundedMaxBackend(s.bound), s.acc.k
	default:
		be, k = shard.MultMaxBackend(), s.acc.k
	}
	opts = []shard.MaxRegOption{
		shard.MaxRegShards(s.shards),
		shard.MaxRegBatch(s.batch),
		shard.WithMaxRegBackend(be),
	}
	if s.readStale > 0 {
		opts = append(opts, shard.MaxRegReadCache(s.readStale))
	}
	if s.tel != nil {
		opts = append(opts, shard.MaxRegTelemetry(s.tel.sink))
	}
	return k, opts
}

// maxRegRT is the runtime surface shared by the cumulative and
// windowed max-register backends; *shard.MaxRegHandle and
// *shard.WMaxRegHandle both satisfy it.
type maxRegRT interface {
	Write(v uint64)
	Read() uint64
	Steps() uint64
	Flush()
}

// MaxRegister is any member of the max-register family — exact or
// k-multiplicative, bounded or unbounded, optionally sharded, with
// write elision, and windowed — built by NewMaxRegister from a spec.
// Like Counter, all members run on the unified sharded runtime (an
// unsharded register is the S=1 case; a windowed one — an expiring
// high-water mark — is a rotating ring of plane instances) and report
// their accuracy envelope via Bounds.
type MaxRegister struct {
	spec Spec
	m    *shard.MaxReg         // cumulative runtime, nil when windowed
	wm   *shard.WindowedMaxReg // windowed runtime, nil when cumulative

	slots slotPool[*pooledMaxRegHandle]

	snap maxRegRT // registry snapshot handle (slot procs), else nil
}

var _ instance = (*MaxRegister)(nil)

// NewMaxRegister builds the max register the options describe. Defaults:
// one process slot, Exact() accuracy, unbounded, unsharded, no elision.
// WithBound(m) selects the m-bounded construction (Algorithm 2 when
// combined with Multiplicative(k)); WithShards(S) spreads writes over S
// independent shards whose max readers combine with no envelope
// widening; WithBatch(B) elides writes within B-1 of a handle's last
// flushed value.
func NewMaxRegister(opts ...Option) (*MaxRegister, error) {
	spec, err := newSpec(KindMaxRegister, opts)
	if err != nil {
		return nil, err
	}
	return newMaxRegister(spec)
}

func newMaxRegister(spec Spec) (*MaxRegister, error) {
	k, mopts := maxRegShardOptions(spec)
	r := &MaxRegister{spec: spec}
	if spec.Windowed() {
		wm, err := shard.NewWindowedMaxReg(spec.totalProcs(), k, spec.windowDur, spec.windowEpochs, mopts...)
		if err != nil {
			return nil, err
		}
		r.wm = wm
	} else {
		sm, err := shard.NewMaxReg(spec.totalProcs(), k, mopts...)
		if err != nil {
			return nil, err
		}
		r.m = sm
	}
	r.slots.init(spec.procs, r.newPooledHandle)
	instrumentObject(spec, r.slots.free, r.BaseObjects)
	if spec.snapshotSlot {
		r.snap = r.runtimeHandle(spec.procs)
	}
	return r, nil
}

// runtimeHandle binds a slot on whichever runtime backs the register.
func (r *MaxRegister) runtimeHandle(i int) maxRegRT {
	if r.wm != nil {
		return r.wm.Handle(i)
	}
	return r.m.Handle(i)
}

// Spec returns the validated spec the register was built from.
func (r *MaxRegister) Spec() Spec { return r.spec }

// N returns the number of process slots available to callers.
func (r *MaxRegister) N() int { return r.spec.procs }

// K returns the accuracy parameter (1 for exact registers).
func (r *MaxRegister) K() uint64 { return r.spec.acc.K() }

// Accuracy returns the accuracy selection.
func (r *MaxRegister) Accuracy() Accuracy { return r.spec.acc }

// Bound returns the value bound m (writes must be < m), or 0 for
// unbounded registers.
func (r *MaxRegister) Bound() uint64 { return r.spec.bound }

// Shards returns the shard count.
func (r *MaxRegister) Shards() int { return r.spec.shards }

// Batch returns the per-handle write-elision window (1 means every
// value-raising write is published immediately).
func (r *MaxRegister) Batch() uint64 { return uint64(r.spec.batch) }

// Bounds returns the register's read envelope: a Read may return any x
// with (v-Buffer)/Mult <= x <= Mult*v for the true maximum v, where
// Buffer = B-1 for WithBatch(B) (per handle — the maximum lives in one
// handle, so elision headroom does not scale with N or S). Exact
// unbatched registers report the zero envelope. With WithReadCache the
// Stale term carries the staleness window of cached reads. With
// WithWindow(d, n) the true maximum is the maximum of the live window
// (an expiring high-water mark) and the Window term carries the
// one-epoch truncation skew d/n; nothing else widens.
func (r *MaxRegister) Bounds() Bounds {
	if r.wm != nil {
		return scaledBounds(r.wm.Bounds(), r.spec)
	}
	return scaledBounds(r.m.Bounds(), r.spec)
}

// BaseObjects returns the number of base objects (registers, TAS
// instances) the register has allocated across its shards — and, for
// windowed registers, its live epoch ring: the register's space cost
// in the paper's model.
func (r *MaxRegister) BaseObjects() uint64 {
	if r.wm != nil {
		return r.wm.BaseObjects()
	}
	return r.m.BaseObjects()
}

// Close stops the register's background goroutines — the read cache's
// combiner when WithReadCache is set, and the epoch rotator when
// WithWindow is set (the window freezes; see Counter.Close).
// Idempotent, and a no-op otherwise; handles stay usable afterwards.
func (r *MaxRegister) Close() {
	if r.wm != nil {
		r.wm.Close()
		return
	}
	r.m.Close()
}

// Reset replaces the whole window with fresh epochs — the high-water
// mark restarts from zero. Only windowed registers (WithWindow)
// support it; it is an error otherwise, and after Close.
func (r *MaxRegister) Reset() error {
	if r.wm == nil {
		return fmt.Errorf("approxobj: Reset needs a windowed max register (WithWindow); this one is cumulative")
	}
	return r.wm.Reset()
}

// Snapshot reads the register through a pooled handle and, when reset
// is true, resets the window afterwards (see Counter.Snapshot for the
// two-step, non-atomic contract).
func (r *MaxRegister) Snapshot(reset bool) (uint64, error) {
	var v uint64
	r.Do(func(h MaxRegisterHandle) { v = h.Read() })
	if reset {
		return v, r.Reset()
	}
	return v, nil
}

// Handle binds process slot i (0 <= i < N) to the register, for callers
// managing slot assignment themselves. Each concurrent goroutine must use
// its own slot; do not mix Handle(i) with Acquire/Do on the same slot
// range. The returned handle implements BatchedMaxRegisterHandle.
func (r *MaxRegister) Handle(i int) MaxRegisterHandle {
	if i < 0 || i >= r.spec.procs {
		panic("approxobj: max-register handle slot out of range")
	}
	return r.runtimeHandle(i)
}

func (r *MaxRegister) snapshotValue() uint64            { return r.snap.Read() }
func (r *MaxRegister) snapshotBounds() Bounds           { return r.Bounds() }
func (r *MaxRegister) snapshotSteps() uint64            { return r.snap.Steps() }
func (r *MaxRegister) snapshotDetail() *HistogramDetail { return nil }
