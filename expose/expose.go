// Package expose renders a Registry in the Prometheus text exposition
// format (version 0.0.4), turning the package's approximate objects into
// a scrape endpoint: Handler serves a live snapshot on every request,
// and WriteRegistry renders one into any io.Writer for push pipelines
// and tests.
//
// # Metric-name mapping
//
// Registered names map to metric names by sanitization — every byte
// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_'
// prefix — followed by a kind-dependent suffix:
//
//	Counter      <name>_total                     TYPE counter
//	MaxRegister  <name>                           TYPE gauge
//	Snapshot     <name>                           TYPE gauge (component sum)
//	Histogram    <name>_bucket{le="..."},         TYPE histogram
//	             <name>_sum, <name>_count
//
// The _total suffix is added only when the sanitized name does not
// already end in it. Histogram buckets are cumulative at the upper
// boundary of each occupied bucket, with an explicit le="+Inf" bucket
// equal to the observation count (an unbounded layout's saturated last
// bucket renders as +Inf directly), so an empty windowed histogram
// still exposes a valid series: one le="+Inf" bucket at 0. Registered
// names that collide after sanitization (e.g. "a.b" and "a_b") are
// disambiguated in registration order: the first keeps the sanitized
// name, later ones render with a _2, _3, ... suffix, so one scrape
// never emits two families under the same metric name.
//
// # Accuracy annotations
//
// Every value this package's objects report is approximate within a
// deterministic envelope (see approxobj.Bounds), and a scrape that
// silently drops the envelope misrepresents the value. Each object's
// nonzero envelope terms are therefore exported as a companion gauge
// family
//
//	<name>_bound{term="mult"|"add"|"buffer"|"stale_seconds"|"window_seconds"|"delta"}
//
// where <name> is the sanitized name without kind suffixes: mult is the
// multiplicative factor (emitted when > 1), add and buffer the
// additive and buffered-mutation slacks in the value/rank domain,
// stale_seconds / window_seconds the read-staleness and epoch-skew
// windows in seconds, and delta the envelope's failure probability —
// nonzero only for randomized-accuracy objects, whose values sit in the
// envelope with probability >= 1-delta rather than on every schedule
// (such objects are never rendered as exact). The envelope is also
// summarized in the metric's HELP line, so a human reading the endpoint
// sees the contract next to the value.
package expose

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"approxobj"
)

// Handler returns an http.Handler that serves reg in the Prometheus
// text exposition format. Every request takes a fresh
// Registry.Snapshot — one consistent read per object — so concurrent
// writers never block a scrape for more than one object read.
func Handler(reg *approxobj.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The snapshot is taken before the first byte is written, so a
		// mid-render failure cannot interleave two scrapes' values.
		var b strings.Builder
		if err := WriteRegistry(&b, reg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String())
	})
}

// WriteRegistry renders one Registry.Snapshot of reg into w in the
// Prometheus text exposition format, in registration order. Names that
// collide after sanitization are disambiguated with _2, _3, ...
// suffixes (see the package comment). It returns the first write
// error.
func WriteRegistry(w io.Writer, reg *approxobj.Registry) error {
	used := map[string]bool{}
	for _, s := range reg.Snapshot() {
		if err := writeObject(w, disambiguate(SanitizeName(s.Name), s.Kind, used), s); err != nil {
			return err
		}
	}
	return nil
}

// disambiguate claims a unique base name for one object in this scrape:
// base itself when free, else the first free base_2, base_3, ...
// Uniqueness is checked on the base AND the kind-suffixed family name —
// a counter "x" occupies both x (its _bound family) and x_total, so
// neither a later gauge "x" nor a later counter "x_total" can land on
// an already-emitted series.
func disambiguate(base string, kind approxobj.Kind, used map[string]bool) string {
	name := base
	for i := 2; used[name] || used[familyName(name, kind)]; i++ {
		name = base + "_" + strconv.Itoa(i)
	}
	used[name] = true
	used[familyName(name, kind)] = true
	return name
}

// familyName returns the metric family a base renders as: counters
// append _total (unless already suffixed), every other kind emits the
// base itself.
func familyName(base string, kind approxobj.Kind) string {
	if kind == approxobj.KindCounter && !strings.HasSuffix(base, "_total") {
		return base + "_total"
	}
	return base
}

// writeObject renders one snapshot under the (already disambiguated)
// base name.
func writeObject(w io.Writer, base string, s approxobj.ObjectSnapshot) error {
	var err error
	switch s.Kind {
	case approxobj.KindCounter:
		err = writeScalar(w, familyName(base, s.Kind), "counter", s, "incremented count")
	case approxobj.KindMaxRegister:
		err = writeScalar(w, base, "gauge", s, "high-water mark")
	case approxobj.KindSnapshot:
		err = writeScalar(w, base, "gauge", s, "component sum")
	case approxobj.KindHistogram:
		// ObjectSnapshot.Bounds narrows Mult to 1 (counts never round);
		// restore the bucket layout's rounding factor for the bucket
		// series and its annotations.
		if s.Histogram != nil && s.Histogram.Mult > s.Bounds.Mult {
			s.Bounds.Mult = s.Histogram.Mult
		}
		err = writeHistogram(w, base, s)
	default:
		return fmt.Errorf("expose: unknown object kind %v for %q", s.Kind, s.Name)
	}
	if err != nil {
		return err
	}
	return writeBounds(w, base, s.Bounds)
}

func writeScalar(w io.Writer, name, typ string, s approxobj.ObjectSnapshot, what string) error {
	_, err := fmt.Fprintf(w, "# HELP %s approxobj %s \"%s\": %s%s\n# TYPE %s %s\n%s %s\n",
		name, s.Kind, escapeHelp(s.Name), what, envelopeNote(s.Bounds), name, typ, name, formatUint(s.Value))
	return err
}

func writeHistogram(w io.Writer, name string, s approxobj.ObjectSnapshot) error {
	d := s.Histogram
	if d == nil {
		// A histogram snapshot always carries detail; guard anyway so a
		// foreign ObjectSnapshot renders as an empty histogram rather
		// than panicking.
		d = &approxobj.HistogramDetail{}
	}
	if _, err := fmt.Fprintf(w, "# HELP %s approxobj histogram \"%s\": observed value distribution%s\n# TYPE %s histogram\n",
		name, escapeHelp(s.Name), envelopeNote(s.Bounds), name); err != nil {
		return err
	}
	sawInf := false
	for _, b := range d.Buckets {
		le := "+Inf"
		if b.UpperBound != ^uint64(0) {
			le = formatUint(b.UpperBound)
		} else {
			sawInf = true
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %s\n", name, le, formatUint(b.CumulativeCount)); err != nil {
			return err
		}
	}
	if !sawInf {
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %s\n", name, formatUint(d.Count)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %s\n", name, formatUint(d.Sum), name, formatUint(d.Count))
	return err
}

// writeBounds emits the companion _bound gauge family for b's nonzero
// terms; objects with the zero envelope (exact, unbuffered, uncached,
// cumulative) emit nothing.
func writeBounds(w io.Writer, base string, b approxobj.Bounds) error {
	type term struct {
		label string
		value string
	}
	var terms []term
	if b.Mult > 1 {
		terms = append(terms, term{"mult", formatUint(b.Mult)})
	}
	if b.Add > 0 {
		terms = append(terms, term{"add", formatUint(b.Add)})
	}
	if b.Buffer > 0 {
		terms = append(terms, term{"buffer", formatUint(b.Buffer)})
	}
	if b.Stale > 0 {
		terms = append(terms, term{"stale_seconds", formatSeconds(b.Stale.Seconds())})
	}
	if b.Window > 0 {
		terms = append(terms, term{"window_seconds", formatSeconds(b.Window.Seconds())})
	}
	if b.Delta > 0 {
		terms = append(terms, term{"delta", formatFloat(b.Delta)})
	}
	if len(terms) == 0 {
		return nil
	}
	name := base + "_bound"
	if _, err := fmt.Fprintf(w, "# HELP %s nonzero accuracy-envelope terms of %s (see approxobj.Bounds)\n# TYPE %s gauge\n",
		name, base, name); err != nil {
		return err
	}
	for _, t := range terms {
		if _, err := fmt.Fprintf(w, "%s{term=%q} %s\n", name, t.label, t.value); err != nil {
			return err
		}
	}
	return nil
}

// envelopeNote renders the nonzero envelope terms for HELP lines, or ""
// for the zero envelope.
func envelopeNote(b approxobj.Bounds) string {
	if b.IsExact() {
		return " (exact)"
	}
	var parts []string
	if b.Mult > 1 {
		parts = append(parts, "mult="+formatUint(b.Mult))
	}
	if b.Add > 0 {
		parts = append(parts, "add="+formatUint(b.Add))
	}
	if b.Buffer > 0 {
		parts = append(parts, "buffer="+formatUint(b.Buffer))
	}
	if b.Stale > 0 {
		parts = append(parts, "stale="+b.Stale.String())
	}
	if b.Window > 0 {
		parts = append(parts, "window="+b.Window.String())
	}
	if b.Delta > 0 {
		parts = append(parts, "delta="+formatFloat(b.Delta))
	}
	return " (approximate: " + strings.Join(parts, " ") + ")"
}

// SanitizeName maps a registry name to a valid Prometheus metric name:
// every byte outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// prefixed with '_'. The empty name maps to "_".
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatUint renders a uint64 sample value. The text format carries
// float64 samples, so values above 2^53 lose precision at the consumer;
// the rendered text itself stays exact.
func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatSeconds(s float64) string { return strconv.FormatFloat(s, 'g', -1, 64) }

// formatFloat renders a probability term (the envelope's Delta) with the
// shortest exact representation, matching the seconds terms' style.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
