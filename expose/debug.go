package expose

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime/trace"
	"sync"

	"approxobj"
)

// DebugHandler returns the library's debug endpoint: one handler
// serving the self-metrics scrape, the standard pprof profiles, and an
// on-demand runtime execution trace, intended to be mounted on an
// operator-only listener (it exposes profiling data; do not serve it
// publicly). Routes:
//
//	/debug/metrics      the registry scrape (same body as Handler) —
//	                    point it at a registry with SelfMetrics
//	                    registered and the approx_runtime_* series
//	                    appear next to the user objects
//	/debug/pprof/...    net/http/pprof's index and profiles
//	/debug/trace/start  start a runtime/trace capture (409 if running)
//	/debug/trace/stop   stop it and download the trace (409 if not)
//
// The trace capture buffers in memory until stopped, so keep captures
// short; runtime/trace allows only one active trace per process, and
// the handler serializes start/stop accordingly.
func DebugHandler(reg *approxobj.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	tc := &traceCapture{}
	mux.HandleFunc("/debug/trace/start", tc.start)
	mux.HandleFunc("/debug/trace/stop", tc.stop)
	return mux
}

// traceCapture owns at most one in-flight runtime/trace capture; buf is
// non-nil exactly while tracing.
type traceCapture struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (tc *traceCapture) start(w http.ResponseWriter, _ *http.Request) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.buf != nil {
		http.Error(w, "trace already running; stop it at /debug/trace/stop", http.StatusConflict)
		return
	}
	buf := &bytes.Buffer{}
	if err := trace.Start(buf); err != nil {
		// Someone else (a pprof.Trace request, the -trace flag) holds the
		// process's single trace.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	tc.buf = buf
	fmt.Fprintln(w, "tracing started; fetch /debug/trace/stop to stop and download")
}

func (tc *traceCapture) stop(w http.ResponseWriter, _ *http.Request) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if tc.buf == nil {
		http.Error(w, "no trace running; start one at /debug/trace/start", http.StatusConflict)
		return
	}
	trace.Stop()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.out"`)
	w.Write(tc.buf.Bytes())
	tc.buf = nil
}
