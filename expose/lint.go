package expose

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file is the format checker behind the package's own tests and
// the CI scrape smoke: Lint re-validates what WriteRegistry emits, so a
// rendering bug fails loudly instead of producing a scrape Prometheus
// would silently drop.

// sampleRe matches one sample line of the text format: a metric name,
// an optional label set, and a decimal value.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? ([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// leRe extracts the le label of a histogram bucket sample.
var leRe = regexp.MustCompile(`le="([^"]*)"`)

// Lint checks that body is well-formed Prometheus text exposition
// format (version 0.0.4) as this package emits it: every line is a
// HELP/TYPE comment, a sample, or blank; every sample's family was
// TYPEd before its first sample; and every histogram family has
// nondecreasing cumulative buckets ending in an le="+Inf" bucket equal
// to its _count. It returns the first violation, or nil.
func Lint(body string) error {
	typed := map[string]string{} // family -> type
	buckets := map[string][]uint64{}
	lastLE := map[string]string{}
	counts := map[string]uint64{}
	var families []string // histogram families, first-seen order
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				return fmt.Errorf("expose: malformed TYPE line %q", line)
			}
			if typed[f[2]] != "" {
				return fmt.Errorf("expose: family %s TYPEd twice (name collision in the scrape?)", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("expose: malformed sample line %q", line)
		}
		name, labels, val := m[1], m[2], m[3]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typed[base] == "histogram" {
				family = base
			}
		}
		if typed[family] == "" {
			return fmt.Errorf("expose: sample %q has no preceding TYPE", line)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("expose: non-integer bucket value in %q: %v", line, err)
			}
			bs := buckets[family]
			if len(bs) == 0 {
				families = append(families, family)
			}
			if len(bs) > 0 && v < bs[len(bs)-1] {
				return fmt.Errorf("expose: histogram %s buckets not cumulative: %v then %d", family, bs, v)
			}
			buckets[family] = append(bs, v)
			if le := leRe.FindStringSubmatch(labels); le != nil {
				lastLE[family] = le[1]
			}
		}
		if strings.HasSuffix(name, "_count") && typed[family] == "histogram" {
			v, _ := strconv.ParseUint(val, 10, 64)
			counts[family] = v
		}
	}
	for _, fam := range families {
		bs := buckets[fam]
		if lastLE[fam] != "+Inf" {
			return fmt.Errorf("expose: histogram %s does not end in le=%q bucket (got %q)", fam, "+Inf", lastLE[fam])
		}
		if bs[len(bs)-1] != counts[fam] {
			return fmt.Errorf("expose: histogram %s +Inf bucket %d != _count %d", fam, bs[len(bs)-1], counts[fam])
		}
	}
	return nil
}
