package expose

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"approxobj"
)

// validateText checks that body is well-formed Prometheus text format
// via the exported Lint (the CI scrape smoke uses the same checker).
func validateText(t *testing.T, body string) {
	t.Helper()
	if err := Lint(body); err != nil {
		t.Fatalf("%v\nin body:\n%s", err, body)
	}
}

func buildRegistry(t *testing.T) *approxobj.Registry {
	t.Helper()
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("http.requests", approxobj.WithProcs(4), approxobj.WithShards(2), approxobj.WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.MaxRegister("peak-queue-depth", approxobj.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := reg.SnapshotObject("worker progress", approxobj.WithProcs(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := reg.HistogramObject("latency_us", approxobj.WithProcs(4),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) {
		for i := 0; i < 10; i++ {
			h.Inc()
		}
	})
	m.Do(func(h approxobj.MaxRegisterHandle) { h.Write(42) })
	s.Do(func(h approxobj.SnapshotHandle) { h.Update(7) })
	h.Do(func(hh approxobj.HistogramHandle) {
		for _, v := range []uint64{1, 5, 5, 100, 10_000} {
			hh.Observe(v)
		}
	})
	return reg
}

func TestWriteRegistryFormat(t *testing.T) {
	reg := buildRegistry(t)
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	validateText(t, body)

	for _, want := range []string{
		"# TYPE http_requests_total counter",
		"http_requests_total 10",
		"# TYPE peak_queue_depth gauge",
		"peak_queue_depth 42",
		"worker_progress 7",
		"# TYPE latency_us histogram",
		"latency_us_count 5",
		`http_requests_bound{term="buffer"}`,
		`latency_us_bound{term="mult"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
}

// TestHandlerUnderConcurrentWriters scrapes the HTTP handler while
// writers churn every object; each scrape must be well-formed.
func TestHandlerUnderConcurrentWriters(t *testing.T) {
	reg := buildRegistry(t)
	c, _ := reg.Counter("http.requests", approxobj.WithProcs(4), approxobj.WithShards(2), approxobj.WithBatch(4))
	h, _ := reg.HistogramObject("latency_us", approxobj.WithProcs(4),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBatch(8))

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Do(func(h approxobj.CounterHandle) { h.Inc() })
				h.Do(func(hh approxobj.HistogramHandle) { hh.Observe(17) })
			}
		}()
	}
	for i := 0; i < 20; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("content type %q lacks version=0.0.4", ct)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		validateText(t, string(body))
	}
	close(stop)
	wg.Wait()
}

// TestEmptyWindowedHistogram checks the zero-observation window: a
// windowed histogram that has never been observed must still render a
// valid histogram (one +Inf bucket at 0) plus its window bound term.
func TestEmptyWindowedHistogram(t *testing.T) {
	reg := approxobj.NewRegistry()
	if _, err := reg.HistogramObject("empty", approxobj.WithProcs(2),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
		approxobj.WithWindow(time.Minute, 6)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	validateText(t, body)
	for _, want := range []string{
		`empty_bucket{le="+Inf"} 0`,
		"empty_sum 0",
		"empty_count 0",
		`empty_bound{term="window_seconds"} 10`, // 60s / 6 epochs
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
}

// TestRandomizedCounterDeltaBound checks the accuracy plane's new axis
// on the wire: a Randomized(k, delta) counter must export its failure
// probability as a _bound{term="delta"} gauge, summarize it in the HELP
// line, and never render as "(exact)" — the whole point of Delta is
// that a scrape can tell a probabilistic envelope from a deterministic
// one.
func TestRandomizedCounterDeltaBound(t *testing.T) {
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("flips", approxobj.WithProcs(2),
		approxobj.WithAccuracy(approxobj.Randomized(2, 0.25)))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) { h.Inc() })
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	validateText(t, body)
	for _, want := range []string{
		"# TYPE flips_total counter",
		`flips_bound{term="delta"} 0.25`,
		"delta=0.25)", // the HELP envelope note carries the term too
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "(exact)") {
		t.Errorf("randomized counter rendered as exact:\n%s", body)
	}
}

// TestScrapeAfterClose renders the registry after Close: windowed
// objects freeze and the scrape still serves the last values.
func TestScrapeAfterClose(t *testing.T) {
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("reqs", approxobj.WithProcs(2), approxobj.WithWindow(time.Hour, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) { h.Inc(); h.Inc(); h.Inc() })
	reg.Close()
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reqs_total 3") {
		t.Errorf("post-Close scrape lost the value:\n%s", b.String())
	}
	validateText(t, b.String())
}

// TestSanitizedNameCollision registers names that collide after
// sanitization; the scrape must disambiguate them (first keeps the
// name, later ones get _2, _3...) instead of emitting two families
// under one metric name — which Lint now rejects as a double TYPE.
func TestSanitizedNameCollision(t *testing.T) {
	reg := approxobj.NewRegistry()
	a, err := reg.Counter("api.requests", approxobj.WithProcs(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Counter("api_requests", approxobj.WithProcs(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := reg.Counter("api-requests", approxobj.WithProcs(1))
	if err != nil {
		t.Fatal(err)
	}
	a.Do(func(h approxobj.CounterHandle) { h.Inc() })
	b.Do(func(h approxobj.CounterHandle) { h.Inc(); h.Inc() })
	c.Do(func(h approxobj.CounterHandle) { h.Inc(); h.Inc(); h.Inc() })

	var sb strings.Builder
	if err := WriteRegistry(&sb, reg); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	validateText(t, body)
	for _, want := range []string{
		"api_requests_total 1",
		"api_requests_2_total 2",
		"api_requests_3_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
}

// TestCollisionAcrossKindSuffix pins the suffix-aware case: a gauge
// named "x" and a counter named "x" would share the x_bound family and,
// reversed, a counter "x" and an explicit "x_total" would share
// x_total. Disambiguation must see through the kind suffix.
func TestCollisionAcrossKindSuffix(t *testing.T) {
	reg := approxobj.NewRegistry()
	if _, err := reg.Counter("jobs", approxobj.WithProcs(1)); err != nil {
		t.Fatal(err)
	}
	// Explicitly-suffixed counter landing on the first counter's family.
	if _, err := reg.Counter("jobs_total", approxobj.WithProcs(1)); err != nil {
		t.Fatal(err)
	}
	// A different kind on the first counter's base name.
	if _, err := reg.MaxRegister("jobs", approxobj.WithProcs(1), approxobj.WithBatch(4)); err == nil {
		// Same registry name is rejected at registration (kind mismatch);
		// use a name that only collides after sanitization.
		t.Fatal("expected kind-mismatch error for duplicate registry name")
	}
	if _, err := reg.MaxRegister("jobs.", approxobj.WithProcs(1), approxobj.WithBatch(4)); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := WriteRegistry(&sb, reg); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	validateText(t, body)
	// "jobs" emits jobs_total; "jobs_total" must move off that family;
	// "jobs." sanitizes to jobs_ (no collision — underscore is kept).
	if !strings.Contains(body, "# TYPE jobs_total counter") {
		t.Errorf("first counter lost its family:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE jobs_total_2_total counter") {
		t.Errorf("suffixed counter not disambiguated:\n%s", body)
	}
}

// TestSelfMetricsRender registers a telemetry domain's meters and
// checks the scrape: approx_runtime_* series appear, the batched
// meters carry a _bound{term="buffer"} companion, and the whole body
// lints.
func TestSelfMetricsRender(t *testing.T) {
	reg := approxobj.NewRegistry()
	tel := approxobj.NewTelemetry()
	c, err := reg.Counter("work", approxobj.WithProcs(2), approxobj.WithBatch(8),
		approxobj.WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SelfMetrics(tel); err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) {
		for i := 0; i < 100; i++ {
			h.Inc()
		}
	})

	var sb strings.Builder
	if err := WriteRegistry(&sb, reg); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	validateText(t, body)
	for _, want := range []string{
		"# TYPE approx_runtime_flushes_total counter",
		"# TYPE approx_runtime_buffer_hits_total counter",
		`approx_runtime_buffer_hits_bound{term="buffer"}`,
		"# TYPE approx_runtime_refresh_ns_peak gauge",
		"# TYPE approx_runtime_resident_bytes gauge",
		"approx_runtime_arena_rows_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "approx_runtime_pool_acquires_total 1") {
		t.Errorf("pool acquire not counted:\n%s", body)
	}
}

// TestDebugHandler exercises the debug endpoint: the metrics route
// serves a lintable scrape, pprof answers, and the trace start/stop
// pair enforces its one-capture state machine with 409s.
func TestDebugHandler(t *testing.T) {
	reg := buildRegistry(t)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/metrics"); code != 200 {
		t.Fatalf("/debug/metrics: %d", code)
	} else {
		validateText(t, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
	if code, _ := get("/debug/trace/stop"); code != 409 {
		t.Errorf("stop without start: got %d, want 409", code)
	}
	if code, _ := get("/debug/trace/start"); code != 200 {
		t.Fatalf("trace start: %d", code)
	}
	if code, _ := get("/debug/trace/start"); code != 409 {
		t.Errorf("double start: got %d, want 409", code)
	}
	if code, body := get("/debug/trace/stop"); code != 200 {
		t.Errorf("trace stop: %d", code)
	} else if len(body) == 0 {
		t.Error("trace stop returned an empty capture")
	}
	if code, _ := get("/debug/trace/start"); code != 200 {
		t.Errorf("restart after stop: %d", code)
	}
	if code, _ := get("/debug/trace/stop"); code != 200 {
		t.Errorf("second stop: %d", code)
	}
}

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"http.requests", "http_requests"},
		{"peak-queue-depth", "peak_queue_depth"},
		{"already_ok:colons", "already_ok:colons"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"sp ace", "sp_ace"},
	} {
		if got := SanitizeName(tc.in); got != tc.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
