package expose

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"approxobj"
)

// sampleRe matches one sample line of the text format: a metric name,
// an optional label set, and a decimal value.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? ([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// validateText checks that body is well-formed Prometheus text format:
// every line is a HELP/TYPE comment or a sample, every sample's family
// was TYPEd first, and every histogram family has nondecreasing
// cumulative buckets ending in le="+Inf" equal to its _count.
func validateText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{} // family -> type
	buckets := map[string][]uint64{}
	lastLE := map[string]string{}
	counts := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name, labels, val := m[1], m[2], m[3]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typed[base] == "histogram" {
				family = base
			}
		}
		if typed[family] == "" {
			t.Fatalf("sample %q has no preceding TYPE", line)
		}
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			v, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("non-integer bucket value in %q: %v", line, err)
			}
			bs := buckets[family]
			if len(bs) > 0 && v < bs[len(bs)-1] {
				t.Fatalf("histogram %s buckets not cumulative: %v then %d", family, bs, v)
			}
			buckets[family] = append(bs, v)
			if le := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(labels); le != nil {
				lastLE[family] = le[1]
			}
		}
		if strings.HasSuffix(name, "_count") && typed[family] == "histogram" {
			v, _ := strconv.ParseUint(val, 10, 64)
			counts[family] = v
		}
	}
	for fam, bs := range buckets {
		if lastLE[fam] != "+Inf" {
			t.Errorf("histogram %s does not end in le=%q bucket (got %q)", fam, "+Inf", lastLE[fam])
		}
		if bs[len(bs)-1] != counts[fam] {
			t.Errorf("histogram %s +Inf bucket %d != _count %d", fam, bs[len(bs)-1], counts[fam])
		}
	}
}

func buildRegistry(t *testing.T) *approxobj.Registry {
	t.Helper()
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("http.requests", approxobj.WithProcs(4), approxobj.WithShards(2), approxobj.WithBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.MaxRegister("peak-queue-depth", approxobj.WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := reg.SnapshotObject("worker progress", approxobj.WithProcs(3))
	if err != nil {
		t.Fatal(err)
	}
	h, err := reg.HistogramObject("latency_us", approxobj.WithProcs(4),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) {
		for i := 0; i < 10; i++ {
			h.Inc()
		}
	})
	m.Do(func(h approxobj.MaxRegisterHandle) { h.Write(42) })
	s.Do(func(h approxobj.SnapshotHandle) { h.Update(7) })
	h.Do(func(hh approxobj.HistogramHandle) {
		for _, v := range []uint64{1, 5, 5, 100, 10_000} {
			hh.Observe(v)
		}
	})
	return reg
}

func TestWriteRegistryFormat(t *testing.T) {
	reg := buildRegistry(t)
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	validateText(t, body)

	for _, want := range []string{
		"# TYPE http_requests_total counter",
		"http_requests_total 10",
		"# TYPE peak_queue_depth gauge",
		"peak_queue_depth 42",
		"worker_progress 7",
		"# TYPE latency_us histogram",
		"latency_us_count 5",
		`http_requests_bound{term="buffer"}`,
		`latency_us_bound{term="mult"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
}

// TestHandlerUnderConcurrentWriters scrapes the HTTP handler while
// writers churn every object; each scrape must be well-formed.
func TestHandlerUnderConcurrentWriters(t *testing.T) {
	reg := buildRegistry(t)
	c, _ := reg.Counter("http.requests", approxobj.WithProcs(4), approxobj.WithShards(2), approxobj.WithBatch(4))
	h, _ := reg.HistogramObject("latency_us", approxobj.WithProcs(4),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBatch(8))

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Do(func(h approxobj.CounterHandle) { h.Inc() })
				h.Do(func(hh approxobj.HistogramHandle) { hh.Observe(17) })
			}
		}()
	}
	for i := 0; i < 20; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("content type %q lacks version=0.0.4", ct)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		validateText(t, string(body))
	}
	close(stop)
	wg.Wait()
}

// TestEmptyWindowedHistogram checks the zero-observation window: a
// windowed histogram that has never been observed must still render a
// valid histogram (one +Inf bucket at 0) plus its window bound term.
func TestEmptyWindowedHistogram(t *testing.T) {
	reg := approxobj.NewRegistry()
	if _, err := reg.HistogramObject("empty", approxobj.WithProcs(2),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
		approxobj.WithWindow(time.Minute, 6)); err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	validateText(t, body)
	for _, want := range []string{
		`empty_bucket{le="+Inf"} 0`,
		"empty_sum 0",
		"empty_count 0",
		`empty_bound{term="window_seconds"} 10`, // 60s / 6 epochs
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
}

// TestRandomizedCounterDeltaBound checks the accuracy plane's new axis
// on the wire: a Randomized(k, delta) counter must export its failure
// probability as a _bound{term="delta"} gauge, summarize it in the HELP
// line, and never render as "(exact)" — the whole point of Delta is
// that a scrape can tell a probabilistic envelope from a deterministic
// one.
func TestRandomizedCounterDeltaBound(t *testing.T) {
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("flips", approxobj.WithProcs(2),
		approxobj.WithAccuracy(approxobj.Randomized(2, 0.25)))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) { h.Inc() })
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	validateText(t, body)
	for _, want := range []string{
		"# TYPE flips_total counter",
		`flips_bound{term="delta"} 0.25`,
		"delta=0.25)", // the HELP envelope note carries the term too
	} {
		if !strings.Contains(body, want) {
			t.Errorf("output missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(body, "(exact)") {
		t.Errorf("randomized counter rendered as exact:\n%s", body)
	}
}

// TestScrapeAfterClose renders the registry after Close: windowed
// objects freeze and the scrape still serves the last values.
func TestScrapeAfterClose(t *testing.T) {
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("reqs", approxobj.WithProcs(2), approxobj.WithWindow(time.Hour, 4))
	if err != nil {
		t.Fatal(err)
	}
	c.Do(func(h approxobj.CounterHandle) { h.Inc(); h.Inc(); h.Inc() })
	reg.Close()
	var b strings.Builder
	if err := WriteRegistry(&b, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reqs_total 3") {
		t.Errorf("post-Close scrape lost the value:\n%s", b.String())
	}
	validateText(t, b.String())
}

func TestSanitizeName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"http.requests", "http_requests"},
		{"peak-queue-depth", "peak_queue_depth"},
		{"already_ok:colons", "already_ok:colons"},
		{"9lives", "_9lives"},
		{"", "_"},
		{"sp ace", "sp_ace"},
	} {
		if got := SanitizeName(tc.in); got != tc.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
