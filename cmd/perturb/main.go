// Command perturb runs the lower-bound constructions of Sections III-D and
// V against a chosen implementation and reports the certified bounds.
//
// Usage:
//
//	perturb -object kmaxreg -m 1073741824 -k 2 -n 64
//	perturb -object mult -m 65536 -k 2 -n 32
//	perturb -object collect -awareness -n 128
//
// Objects: maxreg (exact bounded), kmaxreg (Algorithm 2), collect, mult
// (Algorithm 1). With -awareness, runs the one-inc-one-read awareness
// experiment instead of the perturbation construction (counters only).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/lowerbound"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

func main() {
	var (
		objName   = flag.String("object", "kmaxreg", "maxreg | kmaxreg | collect | mult")
		n         = flag.Int("n", 64, "number of processes (reader + perturbers)")
		k         = flag.Uint64("k", 2, "accuracy parameter (1 = exact construction schedule)")
		m         = flag.Uint64("m", 1<<30, "object bound (values / total increments)")
		awareness = flag.Bool("awareness", false, "run the Section III-D awareness experiment (counters)")
		seed      = flag.Int64("seed", 1, "schedule seed (awareness)")
		maxSolo   = flag.Int("maxsolo", 50_000_000, "solo-run step guard")
	)
	flag.Parse()

	if err := run(*objName, *n, *k, *m, *awareness, *seed, *maxSolo); err != nil {
		fmt.Fprintf(os.Stderr, "perturb: %v\n", err)
		os.Exit(1)
	}
}

func run(objName string, n int, k, m uint64, awareness bool, seed int64, maxSolo int) error {
	mkCounter := map[string]func(f *prim.Factory) (object.Counter, error){
		"collect": func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) },
		"mult": func(f *prim.Factory) (object.Counter, error) {
			return core.NewMultCounter(f, k, core.Unchecked())
		},
	}

	if awareness {
		mk, ok := mkCounter[objName]
		if !ok {
			return fmt.Errorf("awareness experiment needs a counter (collect or mult), got %q", objName)
		}
		res, err := lowerbound.Awareness(mk, n, k, seed)
		if err != nil {
			return err
		}
		threshold := n / (2 * int(k) * int(k))
		if threshold < 1 {
			threshold = 1
		}
		fmt.Printf("awareness: object=%s n=%d k=%d seed=%d\n", objName, n, k, seed)
		fmt.Printf("total steps          %d (%.2f per op)\n", res.TotalSteps, float64(res.TotalSteps)/float64(2*n))
		fmt.Printf("median |AW|          %d\n", res.MedianSize())
		fmt.Printf(">= n/2k^2 = %d       %d processes (need >= %d)\n", threshold, res.CountAtLeast(threshold), n/2)
		fmt.Printf("corollary III.10.1   %v\n", res.SatisfiesCorollary())
		return nil
	}

	var (
		res lowerbound.PerturbResult
		err error
	)
	switch objName {
	case "maxreg":
		res, err = lowerbound.PerturbMaxReg(func(f *prim.Factory) (object.MaxReg, error) {
			return maxreg.NewBounded(f, m)
		}, n, m, 1, maxSolo)
	case "kmaxreg":
		res, err = lowerbound.PerturbMaxReg(func(f *prim.Factory) (object.MaxReg, error) {
			return core.NewKMultMaxReg(f, m, k)
		}, n, m, k, maxSolo)
	case "collect", "mult":
		res, err = lowerbound.PerturbCounter(mkCounter[objName], n, m, k, maxSolo)
	default:
		return fmt.Errorf("unknown object %q", objName)
	}
	if err != nil {
		return err
	}

	stop := "exhausted bound"
	switch {
	case res.Saturated:
		stop = "saturated (every perturber pending)"
	case res.Failed:
		stop = "FAILED to perturb (unexpected for a correct implementation)"
	}
	fmt.Printf("perturbation: object=%s n=%d k=%d m=%d\n", objName, n, k, m)
	fmt.Printf("rounds L             %d (%s)\n", res.Rounds, stop)
	fmt.Printf("payload sequence     %v\n", res.Values)
	fmt.Printf("reader solo steps    %d\n", res.ReaderSteps)
	fmt.Printf("distinct objects     %d (lower bound log2 L = %.1f)\n",
		res.ReaderDistinctObjects, math.Log2(float64(res.Rounds)))
	fmt.Printf("reader response      %d\n", res.ReaderResponse)
	return nil
}
