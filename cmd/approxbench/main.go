// Command approxbench regenerates every experiment table of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	approxbench [-quick] [-seed 42] [-exp e1,e3,f1] [-json out.json]
//	approxbench [-compare old.json] [-compare-tol 50]
//	approxbench [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace trace.out]
//	approxbench -list
//
// Without -exp it runs everything; unknown experiment ids are an error
// (exit status 2, with the registered ids on stderr). -list prints the
// registered experiments and exits. -quick shrinks parameter sweeps for a
// fast smoke run. -seed sets the base seed every scenario RNG derives
// from (default 0), so two runs with the same -seed and -quick drive
// identical operation sequences and their -json records are reproducible
// run-to-run up to machine timing. -json additionally writes the
// machine-readable records of the selected experiments (scenario, params,
// ns/op, steps/op, envelope) to the given file, so successive runs leave
// a diffable measurement trajectory. The set of scenarios in that
// trajectory is derived from the experiment table (bench.All declares
// each experiment's record scenarios), not kept by hand here: a run whose
// output is missing a declared scenario exits 1 instead of silently
// dropping it from the trajectory — and a run starts by cross-checking
// the backend-plane table (approxobj.Kinds) against those declarations,
// exiting 1 if any registered object kind lacks a declared-and-emitted
// bench scenario (including the read-plane and windowed scenarios of
// kinds documenting those policies), so a new kind cannot ship without
// a measured workload. Every coverage gap is reported before exiting,
// not just the first.
//
// -compare diffs this run's records against a committed record file and
// exits 1 on regressions, which makes BENCH_*.json files checkable
// instead of write-only. Four checks run, all on machine-independent
// data: (1) every scenario present in the baseline must be emitted by
// this run — a superset is fine (new scenarios accrue), a missing one is
// a lost trajectory (on an -exp subset, only scenarios the selected
// experiments declare are in scope); (2) for records matching on
// (scenario, params), the accuracy envelope must not widen AT ALL on
// any term — envelopes are deterministic, so any widening means the
// configuration got less accurate and no tolerance applies; (3) for
// matched records carrying steps/op, the step count must not regress by
// more than -compare-tol percent (steps count shared-memory primitives,
// not wall-clock, but scheduling still jitters them slightly); (4) for
// matched records, allocations per read (E20r) must not increase at all
// — the zero-allocation read path is a designed property like the
// envelope, so a read that starts allocating is a regression with no
// tolerance, not timing noise. Records whose (scenario, params) only
// exist on one side — e.g. sweep cells sized by GOMAXPROCS on a
// different machine — are skipped; ns/op is never compared (timing is
// machine noise).
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiments (the heap profile is taken at exit, after every
// experiment has run), for digging into regressions the record
// trajectory flags: `go tool pprof cpu.pprof`. -trace writes a
// runtime/trace execution trace of the same span, for scheduler-level
// questions the sampling profiler cannot answer (combiner goroutine
// wakeups, epoch-rotation timing, handle-pool contention): `go tool
// trace trace.out`. CPU profiling and execution tracing can run
// together; keep traced runs short (-quick, a narrow -exp) — traces
// record every event, so files grow with runtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strings"
	"time"

	"approxobj"
	"approxobj/internal/bench"
)

// resultFile is the schema of the -json output. Records appear in
// deterministic order (experiment order of bench.All, row order within
// each experiment), so files from identical configurations diff cleanly.
// Seed records the base RNG seed the run used, so a record file names the
// operation sequences that produced it.
type resultFile struct {
	Quick   bool           `json:"quick"`
	Seed    int64          `json:"seed"`
	Records []bench.Record `json:"records"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast run")
	seed := flag.Int64("seed", 0, "base seed for scenario RNGs; same seed => identical operation sequences, so -json records reproduce run-to-run")
	exps := flag.String("exp", "all", "comma-separated experiment ids (see -list) or 'all'")
	list := flag.Bool("list", false, "list registered experiments and exit")
	jsonOut := flag.String("json", "", "write machine-readable records to this file")
	compare := flag.String("compare", "", "diff this run's records against this baseline record file; exit 1 on missing scenarios or regressions")
	compareTol := flag.Float64("compare-tol", 50, "max percent regression -compare tolerates on steps/op (envelope widening is never tolerated)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	traceOut := flag.String("trace", "", "write a runtime/trace execution trace of the selected experiments to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: creating %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: starting execution trace: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "approxbench: creating %s: %v\n", *memProfile, err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "approxbench: writing heap profile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	all := bench.All()
	if *list {
		for _, exp := range all {
			fmt.Printf("%-5s %s\n", exp.ID, exp.Desc)
		}
		return
	}

	// Every kind registered in the backend-plane table must be covered by
	// a declared bench scenario: a new object family without a measured
	// workload fails the smoke run, not a code review. (-list is exempt
	// above — it is the diagnostic you would reach for.) All coverage
	// gaps are collected and reported together — a run with three
	// missing scenarios names all three, not the first, so one fix-run
	// cycle suffices.
	declared := map[string]bool{}
	for _, exp := range all {
		for _, sc := range exp.Scenarios {
			declared[sc] = true
		}
	}
	if problems := kindCoverageProblems(approxobj.Kinds(), declared); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "approxbench: %s\n", p)
		}
		os.Exit(1)
	}

	known := make(map[string]bool, len(all))
	ids := make([]string, 0, len(all))
	for _, exp := range all {
		known[exp.ID] = true
		ids = append(ids, exp.ID)
	}

	selected := map[string]bool{}
	runAll := false
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" {
			continue
		}
		if id == "all" {
			runAll = true
			continue
		}
		if !known[id] {
			fmt.Fprintf(os.Stderr, "approxbench: unknown experiment %q\nusage: approxbench [-quick] [-seed n] [-exp %s | all] [-json out.json]\nrun 'approxbench -list' for descriptions\n",
				id, strings.Join(ids, ","))
			os.Exit(2)
		}
		selected[id] = true
	}
	if !runAll && len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "approxbench: -exp selects no experiment\nrun 'approxbench -list' for the registered ids\n")
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	out := resultFile{Quick: *quick, Seed: *seed, Records: []bench.Record{}}
	for _, exp := range all {
		if !runAll && !selected[exp.ID] {
			continue
		}
		start := time.Now()
		tables, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		emitted := map[string]bool{}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			out.Records = append(out.Records, t.Records...)
			for _, r := range t.Records {
				emitted[r.Scenario] = true
			}
		}
		// The record set is derived from the experiment table (bench.All):
		// an experiment that stops emitting a scenario it declares would
		// silently drop that scenario from the measurement trajectory, so
		// it is an error, not a shrug.
		for _, sc := range exp.Scenarios {
			if !emitted[sc] {
				fmt.Fprintf(os.Stderr, "approxbench: %s emitted no records for declared scenario %q (trajectory would lose it)\n", exp.ID, sc)
				os.Exit(1)
			}
		}
		fmt.Printf("# %s finished in %v\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: encoding records: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d records to %s\n", len(out.Records), *jsonOut)
	}
	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: reading baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		var base resultFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: parsing baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		// On a full run, every baseline scenario must reappear (one dropped
		// from the experiment table is a lost trajectory). On an -exp
		// subset, only scenarios the selected experiments declare are in
		// scope — comparing e16 alone must not flag e1's records missing.
		inScope := func(string) bool { return true }
		if !runAll {
			ran := map[string]bool{}
			for _, exp := range all {
				if selected[exp.ID] {
					for _, sc := range exp.Scenarios {
						ran[sc] = true
					}
				}
			}
			inScope = func(sc string) bool { return ran[sc] }
		}
		problems := compareRecords(base.Records, out.Records, *compareTol, inScope)
		if len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintf(os.Stderr, "approxbench: compare vs %s: %s\n", *compare, p)
			}
			os.Exit(1)
		}
		fmt.Printf("# compare: no regressions against %s (%d baseline records, tolerance %.0f%%)\n",
			*compare, len(base.Records), *compareTol)
	}
}

// kindCoverageProblems cross-checks the backend-plane table against the
// declared bench scenarios and returns every gap it finds (never
// stopping at the first): each kind needs an emitted BenchScenario,
// each kind documenting a staleness term needs an emitted
// ReadBenchScenario, each kind documenting a window term needs an
// emitted WindowBenchScenario, and each kind supporting the randomized
// accuracy needs an emitted FrontierBenchScenario.
func kindCoverageProblems(kinds []approxobj.KindPolicy, declared map[string]bool) []string {
	var problems []string
	add := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	for _, kp := range kinds {
		if kp.BenchScenario == "" {
			add("object kind %q declares no bench scenario in the backend table", kp.Kind)
		} else if !declared[kp.BenchScenario] {
			add("object kind %q declares bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.BenchScenario)
		}
		// A kind that opts into the read-cache policy (it documents a
		// staleness term) must also name a read-dominated scenario that
		// some experiment emits, so the O(1) cached-read claim is
		// measured, not assumed.
		if kp.StaleTerm != "" {
			if kp.ReadBenchScenario == "" {
				add("object kind %q documents a read-cache staleness term but declares no read-dominated bench scenario", kp.Kind)
			} else if !declared[kp.ReadBenchScenario] {
				add("object kind %q declares read bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.ReadBenchScenario)
			}
		}
		// Likewise for window support: a kind documenting a window term
		// must name an emitted windowed observe+scrape scenario.
		if kp.WindowTerm != "" {
			if kp.WindowBenchScenario == "" {
				add("object kind %q documents a window term but declares no windowed bench scenario", kp.Kind)
			} else if !declared[kp.WindowBenchScenario] {
				add("object kind %q declares window bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.WindowBenchScenario)
			}
		}
		// And for the accuracy plane: a kind whose row set includes the
		// randomized accuracy must name an emitted frontier scenario, so
		// the deterministic-vs-randomized cost comparison (the paper's
		// central contrast) is measured whenever the choice exists.
		for _, acc := range kp.Accuracies {
			if acc != "randomized" {
				continue
			}
			if kp.FrontierBenchScenario == "" {
				add("object kind %q supports the randomized accuracy but declares no deterministic-vs-randomized frontier bench scenario", kp.Kind)
			} else if !declared[kp.FrontierBenchScenario] {
				add("object kind %q declares frontier bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.FrontierBenchScenario)
			}
		}
	}
	return problems
}

// recordKey identifies a record cell across runs: its scenario plus its
// params in sorted order.
func recordKey(r bench.Record) string {
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(r.Scenario)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, r.Params[k])
	}
	return b.String()
}

// compareRecords diffs a run's records against a baseline: every
// baseline scenario inScope must be present, and cells matched by
// (scenario, params) must not regress beyond tol percent on any envelope
// term or on steps/op. Cells present on only one side are skipped —
// sweep coordinates can legitimately differ between machines — and
// ns/op is never compared.
func compareRecords(baseline, current []bench.Record, tol float64, inScope func(string) bool) []string {
	var problems []string
	curScenarios := map[string]bool{}
	curByKey := map[string]bench.Record{}
	for _, r := range current {
		curScenarios[r.Scenario] = true
		curByKey[recordKey(r)] = r
	}
	seen := map[string]bool{}
	for _, o := range baseline {
		if !seen[o.Scenario] {
			seen[o.Scenario] = true
			if inScope(o.Scenario) && !curScenarios[o.Scenario] {
				problems = append(problems, fmt.Sprintf("baseline scenario %q is missing from this run", o.Scenario))
			}
		}
		n, ok := curByKey[recordKey(o)]
		if !ok {
			continue
		}
		// regressed reports whether a value grew beyond the tolerance.
		// Growth from zero has no relative scale: any growth regresses.
		regressed := func(old, new float64) bool {
			if new <= old {
				return false
			}
			if old == 0 {
				return true
			}
			return new > old*(1+tol/100)
		}
		if o.Envelope != nil && n.Envelope != nil {
			for _, term := range []struct {
				name     string
				old, new uint64
			}{
				{"Mult", o.Envelope.Mult, n.Envelope.Mult},
				{"Add", o.Envelope.Add, n.Envelope.Add},
				{"Buffer", o.Envelope.Buffer, n.Envelope.Buffer},
				{"Stale", o.Envelope.Stale, n.Envelope.Stale},
				{"Window", o.Envelope.Window, n.Envelope.Window},
			} {
				// Envelopes are deterministic — no machine noise to
				// tolerate — so ANY widening is an accuracy regression;
				// the tolerance applies only to the measured steps/op.
				if term.new > term.old {
					problems = append(problems, fmt.Sprintf(
						"%s: envelope %s widened %d -> %d (accuracy regression)",
						recordKey(o), term.name, term.old, term.new))
				}
			}
			// Delta is the envelope's failure probability — float-valued,
			// but just as contractual: a larger Delta means the same reads
			// hold with lower confidence, so it never widens either.
			if n.Envelope.Delta > o.Envelope.Delta {
				problems = append(problems, fmt.Sprintf(
					"%s: envelope Delta widened %g -> %g (accuracy regression)",
					recordKey(o), o.Envelope.Delta, n.Envelope.Delta))
			}
		}
		if o.StepsPerOp > 0 && n.StepsPerOp > 0 && regressed(o.StepsPerOp, n.StepsPerOp) {
			problems = append(problems, fmt.Sprintf(
				"%s: steps/op regressed %.4f -> %.4f (more than %.0f%%)",
				recordKey(o), o.StepsPerOp, n.StepsPerOp, tol))
		}
		// Allocations per read are designed, not timed — the read paths
		// reuse handle scratch, so the counts are machine-independent
		// (E20r rounds away stray process-global noise). Any increase is
		// a regression with no tolerance, exactly like envelope widening;
		// in particular a baseline of 0 must stay 0.
		if n.AllocsPerRead > o.AllocsPerRead {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs/read regressed %.2f -> %.2f (read-path allocation regression)",
				recordKey(o), o.AllocsPerRead, n.AllocsPerRead))
		}
	}
	return problems
}
