// Command approxbench regenerates every experiment table of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	approxbench [-quick] [-exp e1,e3,f1]
//
// Without -exp it runs everything. -quick shrinks parameter sweeps for a
// fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"approxobj/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast run")
	exps := flag.String("exp", "all", "comma-separated experiment ids (e1,e2,e3,e4,e5,e7,e8,e9,f1) or 'all'")
	flag.Parse()

	selected := map[string]bool{}
	runAll := *exps == "all"
	for _, id := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(strings.ToLower(id))] = true
	}

	cfg := bench.Config{Quick: *quick}
	ran := 0
	for _, exp := range bench.All() {
		if !runAll && !selected[exp.ID] {
			continue
		}
		ran++
		start := time.Now()
		tables, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
		fmt.Printf("# %s finished in %v\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "approxbench: no experiment matches %q\n", *exps)
		os.Exit(2)
	}
}
