// Command approxbench regenerates every experiment table of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	approxbench [-quick] [-exp e1,e3,f1] [-json out.json]
//
// Without -exp it runs everything. -quick shrinks parameter sweeps for a
// fast smoke run. -json additionally writes the machine-readable records
// of the selected experiments (scenario, params, ns/op, steps/op) to the
// given file, so successive runs leave a diffable measurement trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"approxobj/internal/bench"
)

// resultFile is the schema of the -json output. Records appear in
// deterministic order (experiment order of bench.All, row order within
// each experiment), so files from identical configurations diff cleanly.
type resultFile struct {
	Quick   bool           `json:"quick"`
	Records []bench.Record `json:"records"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast run")
	exps := flag.String("exp", "all", "comma-separated experiment ids (e1,e2,e3,e4,e5,e7,e8,e9,e10,e11,e12,f1) or 'all'")
	jsonOut := flag.String("json", "", "write machine-readable records to this file")
	flag.Parse()

	selected := map[string]bool{}
	runAll := *exps == "all"
	for _, id := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(strings.ToLower(id))] = true
	}

	cfg := bench.Config{Quick: *quick}
	out := resultFile{Quick: *quick, Records: []bench.Record{}}
	ran := 0
	for _, exp := range bench.All() {
		if !runAll && !selected[exp.ID] {
			continue
		}
		ran++
		start := time.Now()
		tables, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			out.Records = append(out.Records, t.Records...)
		}
		fmt.Printf("# %s finished in %v\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "approxbench: no experiment matches %q\n", *exps)
		os.Exit(2)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: encoding records: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d records to %s\n", len(out.Records), *jsonOut)
	}
}
