// Command approxbench regenerates every experiment table of the
// reproduction (see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	approxbench [-quick] [-seed 42] [-exp e1,e3,f1] [-json out.json]
//	approxbench -list
//
// Without -exp it runs everything; unknown experiment ids are an error
// (exit status 2, with the registered ids on stderr). -list prints the
// registered experiments and exits. -quick shrinks parameter sweeps for a
// fast smoke run. -seed sets the base seed every scenario RNG derives
// from (default 0), so two runs with the same -seed and -quick drive
// identical operation sequences and their -json records are reproducible
// run-to-run up to machine timing. -json additionally writes the
// machine-readable records of the selected experiments (scenario, params,
// ns/op, steps/op) to the given file, so successive runs leave a diffable
// measurement trajectory. The set of scenarios in that trajectory is
// derived from the experiment table (bench.All declares each experiment's
// record scenarios), not kept by hand here: a run whose output is missing
// a declared scenario exits 1 instead of silently dropping it from the
// trajectory — and a run starts by cross-checking the backend-plane table
// (approxobj.Kinds) against those declarations, exiting 1 if any
// registered object kind has no declared bench scenario, so a new kind
// cannot ship without a measured workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"approxobj"
	"approxobj/internal/bench"
)

// resultFile is the schema of the -json output. Records appear in
// deterministic order (experiment order of bench.All, row order within
// each experiment), so files from identical configurations diff cleanly.
// Seed records the base RNG seed the run used, so a record file names the
// operation sequences that produced it.
type resultFile struct {
	Quick   bool           `json:"quick"`
	Seed    int64          `json:"seed"`
	Records []bench.Record `json:"records"`
}

func main() {
	quick := flag.Bool("quick", false, "shrink parameter sweeps for a fast run")
	seed := flag.Int64("seed", 0, "base seed for scenario RNGs; same seed => identical operation sequences, so -json records reproduce run-to-run")
	exps := flag.String("exp", "all", "comma-separated experiment ids (see -list) or 'all'")
	list := flag.Bool("list", false, "list registered experiments and exit")
	jsonOut := flag.String("json", "", "write machine-readable records to this file")
	flag.Parse()

	all := bench.All()
	if *list {
		for _, exp := range all {
			fmt.Printf("%-5s %s\n", exp.ID, exp.Desc)
		}
		return
	}

	// Every kind registered in the backend-plane table must be covered by
	// a declared bench scenario: a new object family without a measured
	// workload fails the smoke run, not a code review. (-list is exempt
	// above — it is the diagnostic you would reach for.)
	declared := map[string]bool{}
	for _, exp := range all {
		for _, sc := range exp.Scenarios {
			declared[sc] = true
		}
	}
	for _, kp := range approxobj.Kinds() {
		if kp.BenchScenario == "" {
			fmt.Fprintf(os.Stderr, "approxbench: object kind %q declares no bench scenario in the backend table\n", kp.Kind)
			os.Exit(1)
		}
		if !declared[kp.BenchScenario] {
			fmt.Fprintf(os.Stderr, "approxbench: object kind %q declares bench scenario %q, which no experiment in bench.All emits\n",
				kp.Kind, kp.BenchScenario)
			os.Exit(1)
		}
	}

	known := make(map[string]bool, len(all))
	ids := make([]string, 0, len(all))
	for _, exp := range all {
		known[exp.ID] = true
		ids = append(ids, exp.ID)
	}

	selected := map[string]bool{}
	runAll := false
	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id == "" {
			continue
		}
		if id == "all" {
			runAll = true
			continue
		}
		if !known[id] {
			fmt.Fprintf(os.Stderr, "approxbench: unknown experiment %q\nusage: approxbench [-quick] [-seed n] [-exp %s | all] [-json out.json]\nrun 'approxbench -list' for descriptions\n",
				id, strings.Join(ids, ","))
			os.Exit(2)
		}
		selected[id] = true
	}
	if !runAll && len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "approxbench: -exp selects no experiment\nrun 'approxbench -list' for the registered ids\n")
		os.Exit(2)
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	out := resultFile{Quick: *quick, Seed: *seed, Records: []bench.Record{}}
	for _, exp := range all {
		if !runAll && !selected[exp.ID] {
			continue
		}
		start := time.Now()
		tables, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: %s: %v\n", exp.ID, err)
			os.Exit(1)
		}
		emitted := map[string]bool{}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			out.Records = append(out.Records, t.Records...)
			for _, r := range t.Records {
				emitted[r.Scenario] = true
			}
		}
		// The record set is derived from the experiment table (bench.All):
		// an experiment that stops emitting a scenario it declares would
		// silently drop that scenario from the measurement trajectory, so
		// it is an error, not a shrug.
		for _, sc := range exp.Scenarios {
			if !emitted[sc] {
				fmt.Fprintf(os.Stderr, "approxbench: %s emitted no records for declared scenario %q (trajectory would lose it)\n", exp.ID, sc)
				os.Exit(1)
			}
		}
		fmt.Printf("# %s finished in %v\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: encoding records: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "approxbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d records to %s\n", len(out.Records), *jsonOut)
	}
}
