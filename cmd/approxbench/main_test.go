package main

import (
	"strings"
	"testing"

	"approxobj"
	"approxobj/internal/bench"
)

// TestKindCoverageAccumulatesAllProblems drives the startup gate with a
// table that has several independent gaps and checks every one is
// reported — the gate must not stop at the first problem, so one
// fix-run cycle names all the missing scenarios.
func TestKindCoverageAccumulatesAllProblems(t *testing.T) {
	kinds := []approxobj.KindPolicy{
		{Kind: approxobj.KindCounter},                                                                                           // no scenario at all
		{Kind: approxobj.KindMaxRegister, BenchScenario: "E-nowhere"},                                                           // declared but unemitted
		{Kind: approxobj.KindSnapshot, BenchScenario: "E-ok", StaleTerm: "trails"},                                              // missing read scenario
		{Kind: approxobj.KindHistogram, BenchScenario: "E-ok", WindowTerm: "folds the last d"},                                  // missing window scenario
		{Kind: approxobj.KindCounter, BenchScenario: "E-ok", WindowTerm: "x", WindowBenchScenario: "E-no"},                      // window scenario unemitted
		{Kind: approxobj.KindCounter, BenchScenario: "E-ok", Accuracies: []string{"exact", "randomized"}},                       // missing frontier scenario
		{Kind: approxobj.KindCounter, BenchScenario: "E-ok", Accuracies: []string{"randomized"}, FrontierBenchScenario: "E-no"}, // frontier scenario unemitted
	}
	problems := kindCoverageProblems(kinds, map[string]bool{"E-ok": true})
	if len(problems) != 7 {
		t.Fatalf("want all 7 problems reported, got %d:\n%s", len(problems), strings.Join(problems, "\n"))
	}
	for i, want := range []string{
		"declares no bench scenario",
		`bench scenario "E-nowhere", which no experiment`,
		"declares no read-dominated bench scenario",
		"declares no windowed bench scenario",
		`window bench scenario "E-no", which no experiment`,
		"declares no deterministic-vs-randomized frontier bench scenario",
		`frontier bench scenario "E-no", which no experiment`,
	} {
		if !strings.Contains(problems[i], want) {
			t.Errorf("problem %d = %q, want it to mention %q", i, problems[i], want)
		}
	}
}

// TestKindCoverageCleanTable checks the real backend table against the
// real experiment declarations — the gate must pass on the shipped
// configuration.
func TestKindCoverageCleanTable(t *testing.T) {
	declared := map[string]bool{}
	for _, exp := range bench.All() {
		for _, sc := range exp.Scenarios {
			declared[sc] = true
		}
	}
	if problems := kindCoverageProblems(approxobj.Kinds(), declared); len(problems) > 0 {
		t.Fatalf("startup gate fails on the shipped table:\n%s", strings.Join(problems, "\n"))
	}
}

// TestCompareRecordsAccumulatesAllProblems checks that -compare reports
// every regression in one pass: a missing scenario, three widened
// envelope terms (including the float-valued Delta term), and a
// steps/op regression must all appear.
func TestCompareRecordsAccumulatesAllProblems(t *testing.T) {
	baseline := []bench.Record{
		{Scenario: "GONE", Params: map[string]string{"k": "1"}},
		{Scenario: "A", Params: map[string]string{"k": "1"}, Envelope: &bench.RecordEnvelope{Mult: 2, Window: 1000, Delta: 0.01}},
		{Scenario: "B", Params: map[string]string{"k": "1"}, StepsPerOp: 10},
	}
	current := []bench.Record{
		{Scenario: "A", Params: map[string]string{"k": "1"}, Envelope: &bench.RecordEnvelope{Mult: 4, Window: 2000, Delta: 0.05}},
		{Scenario: "B", Params: map[string]string{"k": "1"}, StepsPerOp: 100},
	}
	problems := compareRecords(baseline, current, 50, func(string) bool { return true })
	if len(problems) != 5 {
		t.Fatalf("want 5 problems (missing scenario, Mult, Window, Delta, steps), got %d:\n%s",
			len(problems), strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		`baseline scenario "GONE" is missing`,
		"Mult widened 2 -> 4",
		"Window widened 1000 -> 2000",
		"Delta widened 0.01 -> 0.05",
		"steps/op regressed",
	} {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no problem mentions %q:\n%s", want, strings.Join(problems, "\n"))
		}
	}
}

// TestCompareRecordsClean checks the no-regression path: identical
// records produce no problems.
func TestCompareRecordsClean(t *testing.T) {
	recs := []bench.Record{
		{Scenario: "A", Params: map[string]string{"k": "1"}, Envelope: &bench.RecordEnvelope{Mult: 2, Stale: 5, Window: 7}, StepsPerOp: 3},
	}
	if problems := compareRecords(recs, recs, 50, func(string) bool { return true }); len(problems) != 0 {
		t.Fatalf("identical records flagged: %v", problems)
	}
}
