// Command stepsim explores step complexity interactively: it runs one
// counter or max-register implementation on a chosen workload and prints
// per-operation step statistics from the instrumented primitive layer.
//
// Usage:
//
//	stepsim -object mult -n 16 -k 4 -ops 100000 -reads 0.1
//	stepsim -object kmaxreg -m 1048576 -k 2 -ops 1000
//
// Objects: mult (Algorithm 1), collect, aach (counters);
// kmaxreg (Algorithm 2), maxreg (exact bounded), ukmaxreg, umaxreg
// (unbounded variants).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

func main() {
	var (
		objName = flag.String("object", "mult", "mult | collect | aach | kmaxreg | maxreg | ukmaxreg | umaxreg")
		n       = flag.Int("n", 16, "number of processes")
		k       = flag.Uint64("k", 4, "accuracy parameter (approximate objects)")
		m       = flag.Uint64("m", 1<<20, "bound (bounded max registers)")
		ops     = flag.Int("ops", 100_000, "total operations")
		reads   = flag.Float64("reads", 0.1, "fraction of reads")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	if err := run(*objName, *n, *k, *m, *ops, *reads, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "stepsim: %v\n", err)
		os.Exit(1)
	}
}

func run(objName string, n int, k, m uint64, ops int, reads float64, seed int64) error {
	f := prim.NewFactory(n)
	var (
		update func(h int, rng *rand.Rand)
		read   func(h int) uint64
	)
	switch objName {
	case "mult", "collect", "aach":
		var c object.Counter
		var err error
		switch objName {
		case "mult":
			c, err = core.NewMultCounter(f, k)
		case "collect":
			c, err = counter.NewCollect(f)
		case "aach":
			c, err = counter.NewAACH(f)
		}
		if err != nil {
			return err
		}
		handles := make([]object.CounterHandle, n)
		for i := range handles {
			handles[i] = c.CounterHandle(f.Proc(i))
		}
		update = func(h int, _ *rand.Rand) { handles[h].Inc() }
		read = func(h int) uint64 { return handles[h].Read() }
	case "kmaxreg", "maxreg", "ukmaxreg", "umaxreg":
		var r object.MaxReg
		var err error
		switch objName {
		case "kmaxreg":
			var km *core.KMultMaxReg
			km, err = core.NewKMultMaxReg(f, m, k)
			r = km
		case "maxreg":
			var bm *maxreg.Bounded
			bm, err = maxreg.NewBounded(f, m)
			r = bm
		case "ukmaxreg":
			var um *maxreg.Unbounded
			um, err = core.NewKMultUnboundedMaxReg(f, k)
			r = um
		case "umaxreg":
			var um *maxreg.Unbounded
			um, err = maxreg.NewUnbounded(f, maxreg.ExactFactory)
			r = um
		}
		if err != nil {
			return err
		}
		handles := make([]object.MaxRegHandle, n)
		for i := range handles {
			handles[i] = r.MaxRegHandle(f.Proc(i))
		}
		update = func(h int, rng *rand.Rand) {
			handles[h].Write(uint64(rng.Int63n(int64(m-1))) + 1)
		}
		read = func(h int) uint64 { return handles[h].Read() }
	default:
		return fmt.Errorf("unknown object %q", objName)
	}

	procs := f.Procs()
	rng := rand.New(rand.NewSource(seed))
	perOp := make([]uint64, 0, ops)
	var lastResp uint64
	for i := 0; i < ops; i++ {
		h := rng.Intn(n)
		before := procs[h].Steps()
		if rng.Float64() < reads {
			lastResp = read(h)
		} else {
			update(h, rng)
		}
		perOp = append(perOp, procs[h].Steps()-before)
	}

	var total uint64
	for _, s := range perOp {
		total += s
	}
	sorted := append([]uint64(nil), perOp...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) uint64 { return sorted[int(q*float64(len(sorted)-1))] }

	fmt.Printf("object=%s n=%d k=%d m=%d ops=%d reads=%.2f\n", objName, n, k, m, ops, reads)
	fmt.Printf("total steps      %d\n", total)
	fmt.Printf("amortized/op     %.3f\n", float64(total)/float64(ops))
	fmt.Printf("p50 / p99 / max  %d / %d / %d\n", pct(0.50), pct(0.99), sorted[len(sorted)-1])
	fmt.Printf("last read        %d\n", lastResp)
	return nil
}
