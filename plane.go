package approxobj

import (
	"fmt"

	"approxobj/internal/shard"
)

// This file is the public face of the backend plane: the table of
// registered object kinds that the spec layer reads for validation,
// defaults, and envelope composition, and that the registry reads to
// dispatch construction. Adding object family N+1 to the package means
// adding one row here (plus its builder and its internal/shard policy
// row) — not new switches in spec validation, registry dispatch, or the
// pool layer.

// instance is the kind-agnostic view of a built object — what the
// registry and the backend table program against, independent of the
// kind's handle types. Every public object family (*Counter,
// *MaxRegister, *Snapshot) implements it.
type instance interface {
	// Spec returns the validated spec the object was built from.
	Spec() Spec
	// Bounds returns the object's accuracy envelope.
	Bounds() Bounds
	// StepsRetired returns the steps credited by released pooled handles.
	StepsRetired() uint64
	// Close stops the object's background resources — the read cache's
	// combiner goroutine, when WithReadCache is set. Idempotent; a no-op
	// for objects without any.
	Close()
	// snapshotValue reads the object's current value through the
	// registry's reserved snapshot slot (only registry-owned objects
	// have one).
	snapshotValue() uint64
	// snapshotBounds returns the envelope that bounds snapshotValue —
	// Bounds itself for kinds whose exported value is a single read, but
	// widened for kinds whose exported value aggregates (a snapshot's
	// component sum can trail by Buffer per written component).
	snapshotBounds() Bounds
	// snapshotSteps returns the steps the snapshot slot has taken.
	snapshotSteps() uint64
	// snapshotDetail returns the distribution detail of histogram
	// objects (one consistent bucket read, for exposition formats — see
	// package expose), nil for every scalar kind.
	snapshotDetail() *HistogramDetail
}

// kindDescriptor is one registration in the backend-plane table:
// everything the spec and registry layers need to know about an object
// kind — its text name, which accuracy modes its backends implement
// (with any extra per-mode precondition), whether WithBound applies, how
// its envelope composes on the sharded runtime, which bench scenario
// covers it, and how to build it.
type kindDescriptor struct {
	kind   Kind
	name   string // Kind text name (String/MarshalText/ParseKind)
	plural string // for validation error messages

	// The kind's policy row on the plane, taken verbatim from
	// internal/shard (the single source of truth for combine/buffer
	// names and envelope scaling; Kinds exposes it for docs, tables, and
	// the bench-coverage check).
	policy   shard.PolicyRow
	envelope string // how the per-shard envelope composes (prose)
	scenario string // bench scenario covering this kind (CI-checked)

	// staleTerm documents, per kind, what the WithReadCache staleness
	// window adds to the envelope (the read-plane analogue of envelope;
	// source for the README's read-plane table).
	staleTerm string
	// readScenario names the read-dominated bench scenario covering this
	// kind's cached read path. Every kind accepts WithReadCache (the
	// read-combiner tier is generic), so the startup gate and the bench
	// coverage test require it to be declared and emitted, like scenario.
	readScenario string

	// windowTerm documents, per kind, what a windowed read means under
	// the kind's combine — which aggregate "over the last d" the live
	// ring folds to (source for the README's windowed-objects table).
	windowTerm string
	// windowScenario names the windowed observe+scrape bench scenario
	// covering this kind. Every kind supports WithWindow (the epoch ring
	// is generic), so the startup gate and the bench coverage test
	// require it to be declared and emitted, like scenario and
	// readScenario.
	windowScenario string

	// accuracies is the kind's row set in the accuracy plane: each
	// supported accuracy mode maps to an extra precondition check (nil =
	// none beyond the accuracy table's own parameter checks). A mode
	// absent from the map is rejected by validation, so accuracy support
	// is declared here — per kind, per row — not switched on anywhere.
	accuracies map[accMode]func(s Spec) error
	// frontierScenario names the deterministic-vs-randomized frontier
	// bench scenario for kinds that register a randomized accuracy row
	// (CI-checked like scenario: a randomized-capable kind without one
	// fails the startup gate).
	frontierScenario string
	// allowBound reports whether WithBound applies to this kind.
	allowBound bool
	// boundLimitsBatch reports whether the kind's batch parameter is a
	// window in the value domain, so a batch at or past the bound would
	// swallow every legal write (max registers; histograms batch
	// observation counts, which the bound does not constrain).
	boundLimitsBatch bool

	// build constructs the object from a validated spec.
	build func(s Spec) (instance, error)
}

// kindTable is the backend-plane registration table, in presentation
// order. The descriptors live next to their object families
// (approxobj.go, snapshotobj.go).
var kindTable = []*kindDescriptor{
	counterDescriptor,
	maxRegisterDescriptor,
	snapshotDescriptor,
	histogramDescriptor,
}

// descriptorOf returns the table row for k, or nil for unknown kinds.
func descriptorOf(k Kind) *kindDescriptor {
	for _, d := range kindTable {
		if d.kind == k {
			return d
		}
	}
	return nil
}

// buildSpec dispatches construction of a validated spec through the
// backend table.
func buildSpec(s Spec) (instance, error) {
	d := descriptorOf(s.kind)
	if d == nil {
		return nil, fmt.Errorf("approxobj: invalid object kind %d", s.kind)
	}
	return d.build(s)
}

// KindPolicy is one row of the backend-plane policy table: how a
// registered object kind composes on the sharded runtime. It is the
// public, read-only view of the registration table — the source for the
// README's policy table and for the CI check that every kind has a bench
// scenario.
type KindPolicy struct {
	// Kind identifies the object family.
	Kind Kind
	// Combine names how a read folds the per-shard reads ("sum", "max",
	// "per-component").
	Combine string
	// Buffer names the handle-local buffering discipline ("count
	// batching", "write elision", "component elision").
	Buffer string
	// Envelope describes how the per-shard envelope composes over S
	// shards and WithBatch(B) buffering.
	Envelope string
	// BenchScenario names the bench record scenario covering this kind
	// (see internal/bench and cmd/approxbench).
	BenchScenario string
	// StaleTerm describes what the WithReadCache staleness window adds
	// to the kind's envelope (the read-plane analogue of Envelope).
	StaleTerm string
	// ReadBenchScenario names the read-dominated bench scenario covering
	// this kind's cached read path (CI-checked like BenchScenario: a kind
	// on the read-combiner tier without one fails the startup gate).
	ReadBenchScenario string
	// WindowTerm describes what a WithWindow read aggregates under the
	// kind's combine — the per-kind reading of "over the last d".
	WindowTerm string
	// WindowBenchScenario names the windowed observe+scrape bench
	// scenario covering this kind (CI-checked like BenchScenario: a kind
	// declaring window support without one fails the startup gate).
	WindowBenchScenario string
	// Accuracies lists the accuracy classes the kind's backends
	// implement, in accuracy-table order (e.g. "exact", "additive",
	// "multiplicative", "randomized") — the exported view of the kind's
	// accuracy row set.
	Accuracies []string
	// FrontierBenchScenario names the deterministic-vs-randomized
	// frontier bench scenario for kinds with a "randomized" accuracy row
	// (CI-checked like BenchScenario: a randomized-capable kind without
	// one fails the startup gate); empty for deterministic-only kinds.
	FrontierBenchScenario string
}

// Kinds returns the policy table of every registered object kind, in
// presentation order.
func Kinds() []KindPolicy {
	out := make([]KindPolicy, 0, len(kindTable))
	for _, d := range kindTable {
		accs := make([]string, 0, len(d.accuracies))
		for _, r := range accuracyTable {
			if _, ok := d.accuracies[r.mode]; ok {
				accs = append(accs, r.name)
			}
		}
		out = append(out, KindPolicy{
			Kind:                  d.kind,
			Combine:               d.policy.Combine,
			Buffer:                d.policy.Buffer,
			Envelope:              d.envelope,
			BenchScenario:         d.scenario,
			StaleTerm:             d.staleTerm,
			ReadBenchScenario:     d.readScenario,
			WindowTerm:            d.windowTerm,
			WindowBenchScenario:   d.windowScenario,
			Accuracies:            accs,
			FrontierBenchScenario: d.frontierScenario,
		})
	}
	return out
}
