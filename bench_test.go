// Benchmarks regenerating the paper's results (one per experiment table;
// see DESIGN.md for the index) plus ablation benches for the design
// decisions called out there. Step-complexity metrics are reported through
// b.ReportMetric as steps/op alongside wall-clock ns/op, since step counts
// — not time — are the paper's measure (GC and the Go scheduler blur
// wall-clock numbers).
package approxobj_test

import (
	"sync/atomic"
	"testing"

	"approxobj"
	"approxobj/internal/bench"
	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/lowerbound"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// E1 — Theorem III.9: amortized steps of counters (10% reads).

func benchCounterAmortized(b *testing.B, mk func(f *prim.Factory) (object.Counter, error), n int) {
	f := prim.NewFactory(n)
	c, err := mk(f)
	if err != nil {
		b.Fatal(err)
	}
	procs := f.Procs()
	handles := make([]object.CounterHandle, n)
	for i := range handles {
		handles[i] = c.CounterHandle(procs[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := handles[i%n]
		if i%10 == 0 {
			h.Read()
		} else {
			h.Inc()
		}
	}
	b.StopTimer()
	var steps uint64
	for _, p := range procs {
		steps += p.Steps()
	}
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}

func BenchmarkE1AmortizedMultCounter(b *testing.B) {
	benchCounterAmortized(b, func(f *prim.Factory) (object.Counter, error) {
		return core.NewMultCounter(f, 8)
	}, 64)
}

func BenchmarkE1AmortizedCollect(b *testing.B) {
	benchCounterAmortized(b, func(f *prim.Factory) (object.Counter, error) {
		return counter.NewCollect(f)
	}, 64)
}

func BenchmarkE1AmortizedAACH(b *testing.B) {
	benchCounterAmortized(b, func(f *prim.Factory) (object.Counter, error) {
		return counter.NewAACH(f)
	}, 64)
}

// E2/E6 — Section III-D: awareness dissemination in the
// one-inc-one-read workload.

func BenchmarkE2AwarenessLowerBound(b *testing.B) {
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) }
	var steps int
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.Awareness(mk, 64, 1, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		steps += res.TotalSteps
	}
	b.ReportMetric(float64(steps)/float64(b.N*128), "steps/op")
}

// E3 — Theorem IV.2: worst-case max-register operations at m = 2^48.

func benchMaxRegOps(b *testing.B, w func(p *prim.Proc, v uint64), r func(p *prim.Proc) uint64, p *prim.Proc, m uint64) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			w(p, uint64(i)%(m-1)+1)
		} else {
			r(p)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(p.Steps())/float64(b.N), "steps/op")
}

func BenchmarkE3ExactBoundedMaxReg(b *testing.B) {
	f := prim.NewFactory(1)
	reg, err := maxreg.NewBounded(f, 1<<48)
	if err != nil {
		b.Fatal(err)
	}
	benchMaxRegOps(b, reg.Write, reg.Read, f.Proc(0), 1<<48)
}

func BenchmarkE3KMultBoundedMaxReg(b *testing.B) {
	f := prim.NewFactory(1)
	reg, err := core.NewKMultMaxReg(f, 1<<48, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchMaxRegOps(b, reg.Write, reg.Read, f.Proc(0), 1<<48)
}

// E4/E5 — Lemmas V.1/V.3: full perturbing-execution constructions.

func BenchmarkE4PerturbMaxReg(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.PerturbMaxReg(func(f *prim.Factory) (object.MaxReg, error) {
			return core.NewKMultMaxReg(f, 1<<16, 2)
		}, 32, 1<<16, 2, 1_000_000)
		if err != nil || res.Failed {
			b.Fatalf("err=%v res=%+v", err, res)
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	}
}

func BenchmarkE5PerturbCounter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := lowerbound.PerturbCounter(func(f *prim.Factory) (object.Counter, error) {
			return core.NewMultCounter(f, 2, core.Unchecked())
		}, 24, 1<<10, 2, 1_000_000)
		if err != nil || res.Failed {
			b.Fatalf("err=%v res=%+v", err, res)
		}
		b.ReportMetric(float64(res.Rounds), "rounds")
	}
}

// E7 — motivation: real-goroutine throughput (95% inc / 5% read).

func BenchmarkE7ThroughputAtomicAdd(b *testing.B) {
	var v atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%20 == 0 {
				_ = v.Load()
			} else {
				v.Add(1)
			}
			i++
		}
	})
}

func BenchmarkE7ThroughputMultCounter(b *testing.B) {
	const slots = 64
	c, err := approxobj.NewCounter(
		approxobj.WithProcs(slots),
		approxobj.WithAccuracy(approxobj.Multiplicative(8)),
	)
	if err != nil {
		b.Fatal(err)
	}
	var slot atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		h := c.Handle(int(slot.Add(1)-1) % slots)
		i := 0
		for pb.Next() {
			if i%20 == 0 {
				_ = h.Read()
			} else {
				h.Inc()
			}
			i++
		}
	})
}

func BenchmarkE7ThroughputExact(b *testing.B) {
	const slots = 64
	c, err := approxobj.NewCounter(approxobj.WithProcs(slots))
	if err != nil {
		b.Fatal(err)
	}
	var slot atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		h := c.Handle(int(slot.Add(1)-1) % slots)
		i := 0
		for pb.Next() {
			if i%20 == 0 {
				_ = h.Read()
			} else {
				h.Inc()
			}
			i++
		}
	})
}

// E8 — the sketched unbounded extension: ops at 2^40 value scale.

func BenchmarkE8UnboundedExactMaxReg(b *testing.B) {
	f := prim.NewFactory(1)
	reg, err := maxreg.NewUnbounded(f, maxreg.ExactFactory)
	if err != nil {
		b.Fatal(err)
	}
	benchMaxRegOps(b, reg.Write, reg.Read, f.Proc(0), 1<<40)
}

func BenchmarkE8UnboundedKMultMaxReg(b *testing.B) {
	f := prim.NewFactory(1)
	reg, err := core.NewKMultUnboundedMaxReg(f, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchMaxRegOps(b, reg.Write, reg.Read, f.Proc(0), 1<<40)
}

// E9 — the Claim III.6 boundary scenario (table generation).

func BenchmarkE9BoundaryScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E9Boundary(bench.Config{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// F1 — Figure 1 scan-stop configurations.

func BenchmarkF1ReadCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.F1ReadCases(bench.Config{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations (DESIGN.md section 4).

// BenchmarkAblationGateOverhead quantifies decision 1: the cost of routing
// primitives through prim.Proc (nil gate) versus a bare atomic operation.
func BenchmarkAblationGateOverhead(b *testing.B) {
	b.Run("prim.Reg", func(b *testing.B) {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		r := f.Reg()
		for i := 0; i < b.N; i++ {
			r.Write(p, uint64(i))
			_ = r.Read(p)
		}
	})
	b.Run("raw-atomic", func(b *testing.B) {
		var r atomic.Uint64
		for i := 0; i < b.N; i++ {
			r.Store(uint64(i))
			_ = r.Load()
		}
	})
}

// BenchmarkAblationReadMemoization quantifies decision 4: a persistent
// handle resumes its switch scan at last_i; a fresh handle per read rescans
// from switch_0 every time.
func BenchmarkAblationReadMemoization(b *testing.B) {
	setup := func(b *testing.B) (*core.MultCounter, *prim.Factory) {
		f := prim.NewFactory(2)
		c, err := core.NewMultCounter(f, 2)
		if err != nil {
			b.Fatal(err)
		}
		w := c.Handle(f.Proc(0))
		for i := 0; i < 1_000_000; i++ {
			w.Inc()
		}
		return c, f
	}
	b.Run("memoized", func(b *testing.B) {
		c, f := setup(b)
		p := f.Proc(1)
		h := c.Handle(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = h.Read()
		}
		b.StopTimer()
		b.ReportMetric(float64(p.Steps())/float64(b.N), "steps/op")
	})
	b.Run("fresh-handle", func(b *testing.B) {
		c, f := setup(b)
		p := f.Proc(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = c.Handle(p).Read()
		}
		b.StopTimer()
		b.ReportMetric(float64(p.Steps())/float64(b.N), "steps/op")
	})
}

// BenchmarkAblationFirstThreshold quantifies the boundary repair's cost
// (decision: t1 = min(k, (k^2-1)/n+1) instead of the paper's k): smaller
// thresholds announce more often.
func BenchmarkAblationFirstThreshold(b *testing.B) {
	run := func(b *testing.B, opts ...core.Option) {
		f := prim.NewFactory(16)
		c, err := core.NewMultCounter(f, 4, opts...)
		if err != nil {
			b.Fatal(err)
		}
		p := f.Proc(0)
		h := c.Handle(p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Inc()
		}
		b.StopTimer()
		b.ReportMetric(float64(p.Steps())/float64(b.N), "steps/op")
	}
	b.Run("repaired", func(b *testing.B) { run(b) })
	b.Run("verbatim", func(b *testing.B) { run(b, core.Verbatim()) })
}

// Micro-benchmarks for the public API.

func BenchmarkCounterInc(b *testing.B) {
	c, err := approxobj.NewCounter(approxobj.WithAccuracy(approxobj.Multiplicative(2)))
	if err != nil {
		b.Fatal(err)
	}
	h := c.Handle(0)
	for i := 0; i < b.N; i++ {
		h.Inc()
	}
}

func BenchmarkCounterRead(b *testing.B) {
	c, err := approxobj.NewCounter(approxobj.WithAccuracy(approxobj.Multiplicative(2)))
	if err != nil {
		b.Fatal(err)
	}
	h := c.Handle(0)
	for i := 0; i < 100000; i++ {
		h.Inc()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Read()
	}
}

func BenchmarkBoundedMaxRegisterWrite(b *testing.B) {
	r, err := approxobj.NewMaxRegister(approxobj.WithProcs(1), approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBound(1<<40))
	if err != nil {
		b.Fatal(err)
	}
	h := r.Handle(0)
	for i := 0; i < b.N; i++ {
		h.Write(uint64(i) % (1<<40 - 1))
	}
}

func BenchmarkBoundedMaxRegisterRead(b *testing.B) {
	r, err := approxobj.NewMaxRegister(approxobj.WithProcs(1), approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBound(1<<40))
	if err != nil {
		b.Fatal(err)
	}
	h := r.Handle(0)
	h.Write(1<<40 - 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Read()
	}
}

func BenchmarkSimMachineStep(b *testing.B) {
	// Cost of one lock-step simulated primitive (channel round-trip):
	// calibrates how large simulated experiments can be.
	m := newSimForBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Step(0) {
			b.Fatal("program ended early")
		}
	}
}
