// Sharded counter walkthrough: the same k-multiplicative counter, scaled
// out. A plain Counter is one Algorithm 1 instance every goroutine hits;
// WithShards(S) splits increment traffic across S independent instances
// (handle i increments shard i mod S) and sums them on reads — and since
// both bounds of the k-multiplicative envelope are linear, the sum of S
// k-accurate shards is still k-accurate. WithBatch(B) additionally keeps
// B-1 of every B increments handle-local, trading a bounded additive
// slack (at most B-1 per handle, reported by Bounds) for an Inc hot path
// that mostly never touches shared memory.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"approxobj"
)

const (
	n    = 16      // goroutines = process slots
	k    = 4       // accuracy: reads land within [v/4, 4v]; k >= sqrt(n)
	perG = 200_000 // increments per goroutine
)

// handler is the common surface of the counters under comparison.
type handler interface {
	Handle(int) approxobj.CounterHandle
}

// drive runs n goroutines of perG increments each against handles of c and
// returns the elapsed wall-clock time.
func drive(c handler) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := c.Handle(slot)
			for j := 0; j < perG; j++ {
				h.Inc()
			}
			// Batched handles buffer up to B-1 increments; publish them
			// before the goroutine abandons its handle.
			if b, ok := h.(approxobj.BatchedCounterHandle); ok {
				b.Flush()
			}
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

func main() {
	accuracy := approxobj.WithAccuracy(approxobj.Multiplicative(k))
	plain, err := approxobj.NewCounter(approxobj.WithProcs(n), accuracy)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := approxobj.NewCounter(approxobj.WithProcs(n), accuracy,
		approxobj.WithShards(8), approxobj.WithBatch(64))
	if err != nil {
		log.Fatal(err)
	}

	true64 := uint64(n * perG)
	for _, run := range []struct {
		name string
		c    handler
	}{
		{"plain (1 object)", plain},
		{"sharded (S=8, B=64)", sharded},
	} {
		elapsed := drive(run.c)
		got := run.c.Handle(0).Read()
		fmt.Printf("%-22s %8.1f ns/inc  read %d (true %d, within [%d, %d])\n",
			run.name, float64(elapsed.Nanoseconds())/float64(true64),
			got, true64, true64/k, true64*k)
	}

	// The envelope is part of the API: after the flushes above, Buffer no
	// longer applies and the combined read obeys the pure shard
	// composition bound.
	b := sharded.Bounds()
	fmt.Printf("documented envelope    (v-%d)/%d <= read <= %d*v (+%d additive)\n",
		b.Buffer, b.Mult, b.Mult, b.Add)
}
