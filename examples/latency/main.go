// Latency: request-latency percentiles from an approximate histogram on
// the backend plane.
//
// A service wants p50/p90/p99 request latency without paying for a
// lock-protected reservoir on the hot path. The histogram family fits
// exactly: observations round into buckets spaced by the accuracy factor
// k — so a quantile answer is within a factor k of the true value, a
// deterministic guarantee rather than a sampling one — and WithBatch(B)
// buffers whole observations per handle, so B-1 of every B Observes
// touch no shared memory at all. WithShards(S) spreads the remaining
// observation traffic across S disjoint bucket vectors whose per-bucket
// sums widen nothing.
//
// The demo drives a mock request workload from several goroutines
// through pooled handles (Do leases a slot, observes a batch of
// requests, and flushes on release), then prints the percentiles next to
// the exact values computed from a reference recording, each with its
// documented error bound.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"approxobj"
)

const (
	workers  = 8
	k        = 2                  // each percentile is within a factor 2, deterministically
	bound    = uint64(10_000_000) // latencies below 10s, in microseconds
	batch    = 64                 // 63 of every 64 observations stay handle-local
	requests = 50_000             // per worker
)

func main() {
	lat, err := approxobj.NewHistogram(
		approxobj.WithProcs(workers),
		approxobj.WithAccuracy(approxobj.Multiplicative(k)),
		approxobj.WithBound(bound),
		approxobj.WithShards(4),
		approxobj.WithBatch(batch),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Mock request latencies: a log-normal-ish body around 2ms with a
	// heavy tail — the shape that makes percentiles the metric of record.
	exact := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		rng := rand.New(rand.NewSource(int64(w) + 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref := make([]uint64, 0, requests)
			// Each lease observes a slice of the workload; the release at
			// the end of Do flushes the handle's buffered observations.
			lat.Do(func(h approxobj.HistogramHandle) {
				for i := 0; i < requests; i++ {
					us := uint64(2000 * (0.2 + rng.ExpFloat64()*rng.ExpFloat64()))
					if us >= bound {
						us = bound - 1
					}
					h.Observe(us)
					ref = append(ref, us)
				}
			})
			exact[w] = ref
		}()
	}
	wg.Wait()

	// Exact reference for comparison: the sorted multiset of everything
	// the workers recorded.
	var all []uint64
	for _, ref := range exact {
		all = append(all, ref...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	b := lat.Bounds()
	fmt.Printf("observed %d requests on %d workers (shards=%d, batch=%d)\n",
		len(all), workers, lat.Shards(), lat.Batch())
	fmt.Printf("envelope: value factor %d (bucket rounding), rank slack %d (buffered observations)\n\n",
		b.Mult, b.Buffer)
	fmt.Printf("%-6s %12s %12s   %s\n", "", "approx (us)", "exact (us)", "guarantee")
	lat.Do(func(h approxobj.HistogramHandle) {
		for _, q := range []float64{0.50, 0.90, 0.99} {
			approx := h.Quantile(q)
			idx := int(q * float64(len(all)-1))
			fmt.Printf("p%-5.0f %12d %12d   true value in [%d, %d)\n",
				q*100, approx, all[idx], approx, approx*b.Mult)
		}
		fmt.Printf("\ncount  %12d %12d   exact at quiescence (all handles flushed)\n",
			h.Count(), len(all))
	})
}
