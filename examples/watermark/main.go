// Watermark: tracking high-water marks with approximate max registers on
// the unified sharded runtime.
//
// A streaming pipeline processes records on parallel shards. Operators
// want the largest observed record size (to size buffers), the highest
// sequence number (to bound replay), and the peak queue depth (for
// back-pressure alerts). These monitors only steer heuristics, so a value
// within a small factor is as actionable as an exact one — which is where
// the paper's Algorithm 2 shines: a 2-accurate bounded max register
// answers in O(log2 log2 m) shared steps instead of the exact register's
// O(log2 m).
//
// Since the runtime unification, max registers scale the same way
// counters do: WithShards(S) spreads writes over S independent Algorithm
// 2 instances (and the max over shards is still 2-accurate — max
// composes with no envelope widening at all), and WithBatch(B) elides
// writes within B-1 of a handle's last flushed value, so the fast path
// of a watermark stream — values below the current high-water mark —
// never touches shared memory.
//
// The demo runs the scaled approximate register and an exact baseline
// side by side on the same stream and prints values and step counts.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"approxobj"
)

const (
	workers = 8
	k       = 2
	bound   = uint64(1) << 32 // record sizes below 4 GiB
	window  = 1024            // elision window: skip writes within 1023 of the mark
	events  = 200_000
)

func main() {
	approx, err := approxobj.NewMaxRegister(
		approxobj.WithProcs(workers+1),
		approxobj.WithAccuracy(approxobj.Multiplicative(k)),
		approxobj.WithBound(bound),
		approxobj.WithShards(4),
		approxobj.WithBatch(window),
	)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := approxobj.NewMaxRegister(
		approxobj.WithProcs(workers+1),
		approxobj.WithBound(bound),
	)
	if err != nil {
		log.Fatal(err)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		trueMax uint64
	)
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			ha := approx.Handle(slot)
			he := exact.Handle(slot)
			rng := rand.New(rand.NewSource(int64(slot) + 42))
			localMax := uint64(0)
			for i := 0; i < events/workers; i++ {
				// Heavy-tailed record sizes: mostly small, occasional
				// multi-hundred-MiB spikes.
				size := uint64(rng.Int63n(1 << 16))
				if rng.Intn(10_000) == 0 {
					size = uint64(rng.Int63n(1 << 28))
				}
				ha.Write(size)
				he.Write(size)
				if size > localMax {
					localMax = size
				}
			}
			// Publish any value still parked in the elision window before
			// the goroutine abandons its handle (pooled handles would do
			// this on release).
			ha.(approxobj.BatchedMaxRegisterHandle).Flush()
			mu.Lock()
			if localMax > trueMax {
				trueMax = localMax
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()

	ra := approx.Handle(workers)
	re := exact.Handle(workers)
	approxVal := ra.Read()
	exactVal := re.Read()

	fmt.Printf("true max record size : %d\n", trueMax)
	fmt.Printf("exact register       : %d  (%d steps for 1 read)\n", exactVal, re.Steps())
	fmt.Printf("approx register (k=%d, S=%d, B=%d): %d  (%d steps for 1 read)\n",
		k, approx.Shards(), approx.Batch(), approxVal, ra.Steps())
	fmt.Printf("approx within factor : [%d, %d]\n", trueMax/k, trueMax*k)

	if exactVal != trueMax {
		log.Fatalf("exact register drifted: %d != %d", exactVal, trueMax)
	}
	// Every handle was flushed, so the Buffer headroom is gone and the
	// pure k-multiplicative envelope applies — sharding added nothing.
	if approxVal < trueMax/k || approxVal > trueMax*k {
		log.Fatalf("approx register outside envelope")
	}
	fmt.Println("\nboth registers verified against the true maximum")
}
