// Quickstart: the two approximate objects of the paper in their simplest
// concurrent setting — a k-multiplicative-accurate counter shared by n
// goroutines and an approximate max register tracking a high-water mark.
// Both are built through the spec API (orthogonal functional options) and
// driven through the built-in handle pool, so no goroutine ever computes
// a process-slot index.
package main

import (
	"fmt"
	"log"
	"sync"

	"approxobj"
)

func main() {
	const n = 16      // process slots = max concurrent goroutines
	const k = 4       // accuracy: reads land within [v/4, 4v]; k >= sqrt(n)
	const perG = 1000 // increments per goroutine

	counter, err := approxobj.NewCounter(
		approxobj.WithProcs(n),
		approxobj.WithAccuracy(approxobj.Multiplicative(k)),
	)
	if err != nil {
		log.Fatal(err)
	}
	maxReg, err := approxobj.NewMaxRegister(
		approxobj.WithProcs(n),
		approxobj.WithAccuracy(approxobj.Multiplicative(k)),
	)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Acquire borrows an exclusive per-process handle from the
			// object's slot pool; release returns it for the next
			// goroutine. Handles carry the persistent local state of the
			// paper's algorithms.
			c, releaseC := counter.Acquire()
			defer releaseC()
			m, releaseM := maxReg.Acquire()
			defer releaseM()
			for j := 1; j <= perG; j++ {
				c.Inc()
				m.Write(uint64(id*perG + j))
			}
		}(i)
	}
	wg.Wait()

	// Every object reports its accuracy envelope, exact ones included.
	b := counter.Bounds()
	fmt.Printf("spec            : %v\n", counter.Spec())
	fmt.Printf("envelope        : %+v\n", b)

	counter.Do(func(h approxobj.CounterHandle) {
		// Steps accumulate per process slot (this pooled handle's slot
		// already incremented above), so cost the read as a delta.
		before := h.Steps()
		count := h.Read()
		fmt.Printf("true increments : %d\n", n*perG)
		fmt.Printf("approx count    : %d (guaranteed within [%d, %d])\n",
			count, n*perG/k, n*perG*k)
		// The price of the answer, in shared-memory steps: this is what
		// the paper's Theorem III.9 bounds — O(1) amortized per operation.
		fmt.Printf("reader steps    : %d for 1 read\n", h.Steps()-before)
	})

	maxReg.Do(func(h approxobj.MaxRegisterHandle) {
		peak := h.Read()
		truePeak := (n-1)*perG + perG
		fmt.Printf("true high water : %d\n", truePeak)
		fmt.Printf("approx high     : %d (within a factor %d)\n", peak, k)
	})
}
