// Quickstart: the two approximate objects of the paper in their simplest
// concurrent setting — a k-multiplicative-accurate counter shared by n
// goroutines and an approximate max register tracking a high-water mark.
package main

import (
	"fmt"
	"log"
	"sync"

	"approxobj"
)

func main() {
	const n = 16      // goroutines = process slots
	const k = 4       // accuracy: reads land within [v/4, 4v]; k >= sqrt(n)
	const perG = 1000 // increments per goroutine

	counter, err := approxobj.NewCounter(n, k)
	if err != nil {
		log.Fatal(err)
	}
	maxReg, err := approxobj.NewMaxRegister(n, k)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			// One handle per goroutine: handles carry the per-process
			// state of the paper's algorithms.
			c := counter.Handle(slot)
			m := maxReg.Handle(slot)
			for j := 1; j <= perG; j++ {
				c.Inc()
				m.Write(uint64(slot*perG + j))
			}
		}(i)
	}
	wg.Wait()

	reader := counter.Handle(0)
	count := reader.Read()
	fmt.Printf("true increments : %d\n", n*perG)
	fmt.Printf("approx count    : %d (guaranteed within [%d, %d])\n",
		count, n*perG/k, n*perG*k)

	peak := maxReg.Handle(0).Read()
	truePeak := (n-1)*perG + perG
	fmt.Printf("true high water : %d\n", truePeak)
	fmt.Printf("approx high     : %d (within a factor %d)\n", peak, k)

	// The price of the answer, in shared-memory steps: this is what the
	// paper's Theorem III.9 bounds — O(1) amortized per operation.
	fmt.Printf("reader steps    : %d for 1 read\n", reader.Steps())
}
