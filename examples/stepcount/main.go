// Stepcount: watching the paper's step-complexity bounds live.
//
// This example uses the library's instrumentation (every handle counts its
// shared-memory primitive steps) to print the cost of individual
// operations as an execution unfolds, making the asymptotics tangible:
//
//   - the k-multiplicative counter's increments are almost always free
//     (local), paying a test&set only at announcement thresholds that grow
//     geometrically (Theorem III.9's O(1) amortized bound);
//   - its reads scan two switches per interval plus the memoized resume
//     position;
//   - the approximate bounded max register answers in double-log steps
//     (Theorem IV.2) where the exact register pays the full log.
package main

import (
	"fmt"
	"log"

	"approxobj"
)

func main() {
	const n = 4
	const k = 2

	c, err := approxobj.NewCounter(
		approxobj.WithProcs(n),
		approxobj.WithAccuracy(approxobj.Multiplicative(k)),
	)
	if err != nil {
		log.Fatal(err)
	}
	h := c.Handle(0)

	fmt.Printf("k-multiplicative counter (n=%d, k=%d): steps paid per Inc\n", n, k)
	prev := uint64(0)
	announcements := 0
	for i := 1; i <= 4096; i++ {
		h.Inc()
		if d := h.Steps() - prev; d > 0 {
			fmt.Printf("  inc #%-5d cost %d step(s)  <- announcement\n", i, d)
			announcements++
		}
		prev = h.Steps()
	}
	fmt.Printf("4096 increments, %d announcements, %d total steps (%.4f/op)\n\n",
		announcements, h.Steps(), float64(h.Steps())/4096)

	reader := c.Handle(1)
	before := reader.Steps()
	val := reader.Read()
	fmt.Printf("read -> %d in %d steps; envelope allows [%d, %d]\n\n",
		val, reader.Steps()-before, 4096/k, 4096*k)

	// Max registers: exact vs approximate, growing bounds.
	fmt.Println("bounded max registers: steps for Write(m-1) + Read")
	fmt.Printf("%-8s %-12s %-12s\n", "m", "exact", "approx k=2")
	for _, e := range []uint{8, 16, 32, 48, 60} {
		m := uint64(1) << e
		exact, err := approxobj.NewMaxRegister(approxobj.WithProcs(1), approxobj.WithBound(m))
		if err != nil {
			log.Fatal(err)
		}
		approx, err := approxobj.NewMaxRegister(
			approxobj.WithProcs(1),
			approxobj.WithAccuracy(approxobj.Multiplicative(2)),
			approxobj.WithBound(m),
		)
		if err != nil {
			log.Fatal(err)
		}
		he, ha := exact.Handle(0), approx.Handle(0)
		he.Write(m - 1)
		he.Read()
		ha.Write(m - 1)
		ha.Read()
		fmt.Printf("2^%-6d %-12d %-12d\n", e, he.Steps(), ha.Steps())
	}
	fmt.Println("\nexact grows with log2(m); approximate with log2(log2(m)) — Theorem IV.2")
}
