// Telemetry: scalable statistics counters — the application domain the
// paper cites for approximate counting (Dice, Lev, Moir: "Scalable
// statistics counters", SPAA '13).
//
// A simulated server handles requests on many worker goroutines. Every
// request bumps per-endpoint statistics counters; a monitoring goroutine
// polls them continuously for dashboards and alerting. Monitoring does not
// need exact numbers — it needs cheap, non-contending, always-available
// ones. The demo contrasts a k-multiplicative-accurate counter with the
// exact counter under the identical workload and reports both the
// values observed and the shared-memory steps paid for them.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"approxobj"
)

const (
	workers      = 32
	k            = 6 // sqrt(32) ~ 5.7
	requests     = 50_000
	pollInterval = 64 // monitor polls every pollInterval requests
)

type endpoint struct {
	name   string
	approx *approxobj.Counter
	exact  *approxobj.Counter
}

func newEndpoint(name string) (*endpoint, error) {
	// Slot workers+1 processes: workers plus the monitor.
	a, err := approxobj.NewCounter(
		approxobj.WithProcs(workers+1),
		approxobj.WithAccuracy(approxobj.Multiplicative(k)),
	)
	if err != nil {
		return nil, err
	}
	e, err := approxobj.NewCounter(approxobj.WithProcs(workers + 1)) // Exact() is the default
	if err != nil {
		return nil, err
	}
	return &endpoint{name: name, approx: a, exact: e}, nil
}

func main() {
	endpoints := make([]*endpoint, 0, 3)
	for _, name := range []string{"/api/search", "/api/cart", "/api/login"} {
		e, err := newEndpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		endpoints = append(endpoints, e)
	}

	var (
		wg       sync.WaitGroup
		served   atomic.Uint64
		trueHits = make([]atomic.Uint64, len(endpoints))
	)

	// Monitor: polls every endpoint through the LAST process slot.
	monitorDone := make(chan struct{})
	var monitorPolls atomic.Uint64
	go func() {
		defer close(monitorDone)
		approxHandles := make([]approxobj.CounterHandle, len(endpoints))
		exactHandles := make([]approxobj.CounterHandle, len(endpoints))
		for i, e := range endpoints {
			approxHandles[i] = e.approx.Handle(workers)
			exactHandles[i] = e.exact.Handle(workers)
		}
		for served.Load() < requests {
			for i := range endpoints {
				approxHandles[i].Read()
				exactHandles[i].Read()
			}
			monitorPolls.Add(1)
		}
		// Final dashboard.
		fmt.Printf("%-12s %12s %12s %12s\n", "endpoint", "true", "approx", "exact-read")
		for i, e := range endpoints {
			fmt.Printf("%-12s %12d %12d %12d\n", e.name,
				trueHits[i].Load(), approxHandles[i].Read(), exactHandles[i].Read())
		}
		fmt.Printf("\nmonitor cost for %d polls x %d endpoints:\n", monitorPolls.Load(), len(endpoints))
		fmt.Printf("  approx reads: %7d steps (amortized O(1) scan, Thm III.9)\n", approxHandles[0].Steps())
		fmt.Printf("  exact reads : %7d steps (a full tree collect per read)\n", exactHandles[0].Steps())
	}()

	// Workers: Zipf-ish endpoint mix.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(slot)))
			approxHandles := make([]approxobj.CounterHandle, len(endpoints))
			exactHandles := make([]approxobj.CounterHandle, len(endpoints))
			for i, e := range endpoints {
				approxHandles[i] = e.approx.Handle(slot)
				exactHandles[i] = e.exact.Handle(slot)
			}
			for served.Add(1) <= requests {
				ep := 0
				switch r := rng.Intn(10); {
				case r >= 9:
					ep = 2
				case r >= 7:
					ep = 1
				}
				approxHandles[ep].Inc()
				exactHandles[ep].Inc()
				trueHits[ep].Add(1)
				if served.Load()%1024 == 0 {
					runtime.Gosched() // let the monitor breathe on small hosts
				}
			}
		}(w)
	}
	wg.Wait()
	<-monitorDone
}
