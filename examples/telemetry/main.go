// Telemetry: a live monitoring endpoint over windowed approximate
// objects — the application domain the paper cites for approximate
// counting (Dice, Lev, Moir: "Scalable statistics counters", SPAA '13),
// grown into the full exposition pipeline, with the library watching
// itself: the objects run with a telemetry domain attached, and the
// runtime's own event counts (flushes, buffer hits, rotations, pool
// traffic) are registered as approximate objects in the same registry
// and scraped as approx_runtime_* series next to the user metrics.
//
// A simulated server handles requests on many worker goroutines. Every
// request bumps a windowed per-endpoint counter and records its latency
// into a windowed histogram (rate and p99 over the last few seconds,
// not since boot), a max register tracks the peak queue depth, and a
// snapshot object tracks per-worker progress. The whole registry is
// served live over HTTP in Prometheus text format by expose.Handler
// while a scraper polls it under full write churn — every scrape is
// validated with expose.Lint (the process exits nonzero on a malformed
// scrape, so CI can run this example as a smoke test) and carries the
// objects' deterministic envelopes as _bound companion series. A
// sampled trace hook counts flush/rotation/acquire callbacks, and
// expose.DebugHandler serves the operator surface: the self-metrics
// scrape, pprof, and an on-demand execution trace. After the registry
// is closed the endpoint keeps answering with the frozen window (the
// post-Close contract).
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"approxobj"
	"approxobj/expose"
)

const (
	workers      = 16
	window       = 2 * time.Second // rate/p99 over the last 2s ...
	epochs       = 4               // ... in 4 epochs of 500ms
	churnFor     = 3 * time.Second
	scrapeEvery  = 500 * time.Millisecond
	maxLatencyUs = 1 << 16
)

func main() {
	reg := approxobj.NewRegistry()
	procs := approxobj.WithProcs(workers)

	// The telemetry domain: every object below reports its runtime
	// events here, and a sampled trace hook (1 in 2^4 events) counts the
	// callbacks it sees per event kind.
	var traced [4]atomic.Uint64
	tel := approxobj.NewTelemetry(approxobj.WithTraceHook(
		func(ev approxobj.TraceEvent, slot int, value uint64) {
			traced[ev].Add(1)
		}, 4))
	instrumented := approxobj.WithTelemetry(tel)

	requests, err := reg.Counter("http.requests", procs, instrumented,
		approxobj.WithAccuracy(approxobj.Multiplicative(5)), // sqrt(17) ~ 4.2
		approxobj.WithShards(4), approxobj.WithBatch(8),
		approxobj.WithWindow(window, epochs))
	if err != nil {
		log.Fatal(err)
	}
	latency, err := reg.HistogramObject("latency_us", procs, instrumented,
		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
		approxobj.WithBound(maxLatencyUs),
		approxobj.WithShards(4), approxobj.WithBatch(8),
		approxobj.WithWindow(window, epochs))
	if err != nil {
		log.Fatal(err)
	}
	peak, err := reg.MaxRegister("peak.queue.depth", procs, instrumented,
		approxobj.WithWindow(window, epochs))
	if err != nil {
		log.Fatal(err)
	}
	progress, err := reg.SnapshotObject("worker.progress", procs, instrumented)
	if err != nil {
		log.Fatal(err)
	}
	// Surface the domain's meters as registry objects: the next scrape
	// carries approx_runtime_* series (with _bound companions on the
	// batched ones) next to the user metrics they describe.
	if err := reg.SelfMetrics(tel); err != nil {
		log.Fatal(err)
	}

	// The live endpoints: the scrape on /metrics, the operator surface
	// (self-metrics scrape, pprof, on-demand execution trace) under
	// /debug/.
	mux := http.NewServeMux()
	mux.Handle("/metrics", expose.Handler(reg))
	mux.Handle("/debug/", expose.DebugHandler(reg))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String() + "/metrics"
	debugURL := "http://" + ln.Addr().String() + "/debug"
	fmt.Printf("serving %s for %v under %d-worker churn\n\n", url, churnFor, workers)

	// Churn: workers hammer every object until told to stop.
	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		depth atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(slot)))
			rh, releaseR := requests.Acquire()
			defer releaseR()
			lh, releaseL := latency.Acquire()
			defer releaseL()
			ph, releaseP := peak.Acquire()
			defer releaseP()
			sh, releaseS := progress.Acquire()
			defer releaseS()
			var served uint64
			for !stop.Load() {
				d := depth.Add(1)
				rh.Inc()
				lh.Observe(uint64(rng.ExpFloat64() * 800)) // ~exponential latencies, tail past 10ms
				ph.Write(uint64(d))
				served++
				sh.Update(served)
				depth.Add(-1)
				if served%256 == 0 {
					time.Sleep(time.Millisecond) // keep the scraper competitive
				}
			}
		}(w)
	}

	// An execution-trace capture bracketing part of the churn, through
	// the debug endpoint's start/stop pair.
	mustGet(debugURL + "/trace/start")

	// Scraper: polls the live endpoint while the workers churn. Every
	// scrape must lint; the last one is printed.
	var last string
	deadline := time.Now().Add(churnFor)
	for n := 1; time.Now().Before(deadline); n++ {
		time.Sleep(scrapeEvery)
		last = mustGet(url)
		if err := expose.Lint(last); err != nil {
			log.Fatalf("scrape %d failed lint: %v", n, err)
		}
		fmt.Printf("scrape %d: %d bytes, %d series\n", n, len(last), strings.Count(last, "\n")-strings.Count(last, "#"))
	}
	capture := mustGet(debugURL + "/trace/stop")
	fmt.Printf("\nexecution trace captured via %s/trace/{start,stop}: %d bytes\n", debugURL, len(capture))

	// The debug endpoint's own scrape must lint too.
	if err := expose.Lint(mustGet(debugURL + "/metrics")); err != nil {
		log.Fatalf("debug scrape failed lint: %v", err)
	}

	stop.Store(true)
	wg.Wait()

	fmt.Println("\nlast scrape under churn (requests, p99 inputs, and their envelopes):")
	printMatching(last, "http_requests", "latency_us_bucket{le=\"+Inf\"}", "latency_us_count", "peak_queue_depth", "_bound")

	fmt.Println("\nthe library watching itself (approx_runtime_* self-metrics):")
	printMatching(last, "approx_runtime_")

	fmt.Println("\nsampled trace-hook callbacks (1 in 16 events):")
	for _, ev := range []approxobj.TraceEvent{approxobj.TraceFlush, approxobj.TraceRefresh, approxobj.TraceRotation, approxobj.TraceAcquire} {
		fmt.Printf("  %-8s %d\n", ev, traced[ev].Load())
	}

	// Close freezes the windows and stops every rotator and combiner;
	// the endpoint keeps serving the last value.
	reg.Close()
	frozen := mustGet(url)
	if err := expose.Lint(frozen); err != nil {
		log.Fatalf("post-Close scrape failed lint: %v", err)
	}
	fmt.Println("\nafter Close (frozen window, still serving):")
	printMatching(frozen, "http_requests_total", "latency_us_count")
	srv.Close()
}

// mustGet fetches a URL and returns the body, exiting on any error or
// non-200 status (this example doubles as a CI smoke test).
func mustGet(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return string(body)
}

// printMatching prints the sample lines whose metric name contains any
// of the given substrings (comments excluded).
func printMatching(text string, subs ...string) {
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, sub := range subs {
			if strings.Contains(line, sub) {
				fmt.Println("  " + line)
				break
			}
		}
	}
}
