// Telemetry: a live monitoring endpoint over windowed approximate
// objects — the application domain the paper cites for approximate
// counting (Dice, Lev, Moir: "Scalable statistics counters", SPAA '13),
// grown into the full exposition pipeline.
//
// A simulated server handles requests on many worker goroutines. Every
// request bumps a windowed per-endpoint counter and records its latency
// into a windowed histogram (rate and p99 over the last few seconds,
// not since boot), a max register tracks the peak queue depth, and a
// snapshot object tracks per-worker progress. The whole registry is
// served live over HTTP in Prometheus text format by expose.Handler
// while a scraper polls it under full write churn — each scrape carries
// the objects' deterministic envelopes as _bound companion series, so
// the dashboard knows the guarantee alongside the value. After the
// registry is closed the endpoint keeps answering with the frozen
// window (the post-Close contract).
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"approxobj"
	"approxobj/expose"
)

const (
	workers      = 16
	window       = 2 * time.Second // rate/p99 over the last 2s ...
	epochs       = 4               // ... in 4 epochs of 500ms
	churnFor     = 3 * time.Second
	scrapeEvery  = 500 * time.Millisecond
	maxLatencyUs = 1 << 16
)

func main() {
	reg := approxobj.NewRegistry()
	procs := approxobj.WithProcs(workers)

	requests, err := reg.Counter("http.requests", procs,
		approxobj.WithAccuracy(approxobj.Multiplicative(5)), // sqrt(17) ~ 4.2
		approxobj.WithShards(4), approxobj.WithBatch(8),
		approxobj.WithWindow(window, epochs))
	if err != nil {
		log.Fatal(err)
	}
	latency, err := reg.HistogramObject("latency_us", procs,
		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
		approxobj.WithBound(maxLatencyUs),
		approxobj.WithShards(4), approxobj.WithBatch(8),
		approxobj.WithWindow(window, epochs))
	if err != nil {
		log.Fatal(err)
	}
	peak, err := reg.MaxRegister("peak.queue.depth", procs,
		approxobj.WithWindow(window, epochs))
	if err != nil {
		log.Fatal(err)
	}
	progress, err := reg.SnapshotObject("worker.progress", procs)
	if err != nil {
		log.Fatal(err)
	}

	// The live endpoint: expose the registry on a real listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: expose.Handler(reg)}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String() + "/metrics"
	fmt.Printf("serving %s for %v under %d-worker churn\n\n", url, churnFor, workers)

	// Churn: workers hammer every object until told to stop.
	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		depth atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(slot)))
			rh, releaseR := requests.Acquire()
			defer releaseR()
			lh, releaseL := latency.Acquire()
			defer releaseL()
			ph, releaseP := peak.Acquire()
			defer releaseP()
			sh, releaseS := progress.Acquire()
			defer releaseS()
			var served uint64
			for !stop.Load() {
				d := depth.Add(1)
				rh.Inc()
				lh.Observe(uint64(rng.ExpFloat64() * 800)) // ~exponential latencies, tail past 10ms
				ph.Write(uint64(d))
				served++
				sh.Update(served)
				depth.Add(-1)
				if served%256 == 0 {
					time.Sleep(time.Millisecond) // keep the scraper competitive
				}
			}
		}(w)
	}

	// Scraper: polls the live endpoint while the workers churn. Every
	// scrape must parse; the last one is printed.
	var last string
	deadline := time.Now().Add(churnFor)
	for n := 1; time.Now().Before(deadline); n++ {
		time.Sleep(scrapeEvery)
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		last = string(body)
		fmt.Printf("scrape %d: %d bytes, %d series\n", n, len(body), strings.Count(last, "\n")-strings.Count(last, "#"))
	}
	stop.Store(true)
	wg.Wait()

	fmt.Println("\nlast scrape under churn (requests, p99 inputs, and their envelopes):")
	printMatching(last, "http_requests", "latency_us_bucket{le=\"+Inf\"}", "latency_us_count", "peak_queue_depth", "_bound")

	// Close freezes the windows and stops every rotator and combiner;
	// the endpoint keeps serving the last value.
	reg.Close()
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	frozen, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter Close (frozen window, still serving):")
	printMatching(string(frozen), "http_requests_total", "latency_us_count")
	srv.Close()
}

// printMatching prints the sample lines whose metric name contains any
// of the given substrings (comments excluded).
func printMatching(text string, subs ...string) {
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, sub := range subs {
			if strings.Contains(line, sub) {
				fmt.Println("  " + line)
				break
			}
		}
	}
}
