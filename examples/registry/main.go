// Registry: named objects and atomic snapshots — the telemetry-export
// scenario the spec/registry API is built for.
//
// A registry holds named counters and max registers (get-or-create, like
// a metrics registry), each built from the same orthogonal spec options
// as the standalone constructors. Worker goroutines borrow handles from
// each object's pool (never a slot index); an exporter goroutine calls
// Registry.Snapshot, which reads every object's value, accuracy envelope,
// and cumulative steps through a reserved process slot — so exporting
// never contends with workers for pool slots, no matter how long they
// hold their handles.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"

	"approxobj"
)

const (
	workers = 8
	perG    = 100_000
)

func main() {
	reg := approxobj.NewRegistry()

	// Named objects, each one spec. Accuracy is per-object: request
	// counting tolerates a factor-4 error for O(1)-amortized increments;
	// error counting stays exact; the high-water mark tolerates factor 2.
	// (Multiplicative counters need k >= sqrt(workers + 1): the registry
	// reserves one extra slot for snapshots.)
	requests, err := reg.Counter("http_requests_total",
		approxobj.WithProcs(workers),
		approxobj.WithAccuracy(approxobj.Multiplicative(4)),
		approxobj.WithShards(4),
		approxobj.WithBatch(32),
	)
	if err != nil {
		log.Fatal(err)
	}
	errorsC, err := reg.Counter("http_errors_total",
		approxobj.WithProcs(workers), // Exact() is the default accuracy
	)
	if err != nil {
		log.Fatal(err)
	}
	peak, err := reg.MaxRegister("peak_payload_bytes",
		approxobj.WithProcs(workers),
		approxobj.WithAccuracy(approxobj.Multiplicative(2)),
		approxobj.WithBound(1<<30),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Re-registering a name with the same spec returns the same object —
	// handler code can look its counters up wherever it runs.
	again, err := reg.Counter("http_requests_total",
		approxobj.WithProcs(workers),
		approxobj.WithAccuracy(approxobj.Multiplicative(4)),
		approxobj.WithShards(4),
		approxobj.WithBatch(32),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get-or-create: same object back: %v\n\n", again == requests)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			req, release := requests.Acquire()
			defer release() // flushes the batch buffer on the way out
			errH, releaseErr := errorsC.Acquire()
			defer releaseErr()
			peak.Do(func(ph approxobj.MaxRegisterHandle) {
				for j := 0; j < perG; j++ {
					req.Inc()
					if j%100 == 99 {
						errH.Inc()
					}
					if j%4096 == 0 {
						ph.Write(uint64((id + 1) * (j + 1)))
					}
				}
			})
		}(w)
	}
	wg.Wait()

	// One call exports everything: value + envelope + cumulative steps
	// per object, in registration order.
	fmt.Printf("%-22s %-14s %12s %10s %22s\n", "name", "kind", "value", "steps", "envelope")
	for _, s := range reg.Snapshot() {
		env := "exact"
		if !s.Bounds.IsExact() {
			env = fmt.Sprintf("x%d +%d buf%d", s.Bounds.Mult, s.Bounds.Add, s.Bounds.Buffer)
		}
		fmt.Printf("%-22s %-14s %12d %10d %22s\n", s.Name, s.Kind, s.Value, s.Steps, env)
	}
	fmt.Printf("\ntrue requests: %d (approx within factor %d), true errors: %d (exact)\n\n",
		workers*perG, requests.K(), workers*perG/100)

	// Snapshots marshal cleanly for export pipelines.
	blob, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(blob, '\n'))
}
