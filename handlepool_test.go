package approxobj

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestHandlePoolSoak churns Acquire/release on a batched counter from far
// more goroutines than slots. Run with -race it validates that pooled
// handle reuse across goroutines is properly synchronized (handles carry
// non-atomic per-process state — scan positions, batch buffers — that
// successive owners share through the pool's happens-before edge), and
// the final count checks that release flushed every batch buffer: with
// exact accuracy, nothing may be lost.
func TestHandlePoolSoak(t *testing.T) {
	const slots = 4
	const goroutines = 4 * slots
	iters := 300
	if testing.Short() {
		iters = 40
	}
	const perAcquire = 17 // not a multiple of the batch: buffers stay loaded at release
	c, err := NewCounter(WithProcs(slots), WithShards(2), WithBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h, release := c.Acquire()
				for j := 0; j < perAcquire; j++ {
					h.Inc()
				}
				_ = h.Read()
				release()
				release() // idempotent: a double release must not corrupt the pool
			}
		}()
	}
	wg.Wait()

	want := uint64(goroutines * iters * perAcquire)
	c.Do(func(h CounterHandle) {
		if got := h.Read(); got != want {
			t.Errorf("exact counter lost or duplicated increments through the pool: Read = %d, want %d", got, want)
		}
	})
	if c.StepsRetired() == 0 {
		t.Error("released handles credited no steps")
	}
}

// TestTryAcquireExhaustion checks the non-blocking path: with every slot
// held, TryAcquire reports failure instead of deadlocking; releasing one
// slot makes it succeed again.
func TestTryAcquireExhaustion(t *testing.T) {
	c, err := NewCounter(WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	_, rel1, ok := c.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on a fresh pool")
	}
	_, rel2, ok := c.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed with one of two slots held")
	}
	if _, _, ok := c.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded with every slot held")
	}
	rel1()
	h, rel3, ok := c.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed after a release")
	}
	h.Inc()
	rel3()
	rel2()

	r, err := NewMaxRegister(WithProcs(1))
	if err != nil {
		t.Fatal(err)
	}
	_, relM, ok := r.TryAcquire()
	if !ok {
		t.Fatal("max register TryAcquire failed on a fresh pool")
	}
	if _, _, ok := r.TryAcquire(); ok {
		t.Fatal("max register TryAcquire succeeded with every slot held")
	}
	relM()
}

// TestDoBlocksUntilFree pins Do's blocking contract: a Do issued while
// all slots are held completes only after a release.
func TestDoBlocksUntilFree(t *testing.T) {
	c, err := NewCounter(WithProcs(1))
	if err != nil {
		t.Fatal(err)
	}
	_, release := c.Acquire()
	var ran atomic.Bool
	done := make(chan struct{})
	go func() {
		c.Do(func(h CounterHandle) { ran.Store(true) })
		close(done)
	}()
	if ran.Load() {
		t.Fatal("Do ran while the only slot was held")
	}
	release()
	<-done
	if !ran.Load() {
		t.Fatal("Do never ran")
	}
}

// TestMaxRegisterPoolSoak is the max-register counterpart of the pool
// soak: monotone writes through churning pooled handles, final read must
// be the true maximum. The sharded/elided variant relies on release
// flushing each handle's pending elided write — with exact accuracy and
// every handle released, nothing may be stale.
func TestMaxRegisterPoolSoak(t *testing.T) {
	const slots = 3
	const goroutines = 4 * slots
	iters := 500
	if testing.Short() {
		iters = 50
	}
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"plain", []Option{WithProcs(slots)}},
		{"sharded-elided", []Option{WithProcs(slots), WithShards(2), WithBatch(8)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewMaxRegister(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			var next atomic.Uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						v := next.Add(1)
						r.Do(func(h MaxRegisterHandle) { h.Write(v) })
					}
				}()
			}
			wg.Wait()
			want := uint64(goroutines * iters)
			r.Do(func(h MaxRegisterHandle) {
				if got := h.Read(); got != want {
					t.Errorf("exact max register Read = %d, want %d (release must flush elided writes)", got, want)
				}
			})
			if r.StepsRetired() == 0 {
				t.Error("released handles credited no steps")
			}
		})
	}
}
