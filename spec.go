package approxobj

import (
	"fmt"

	"approxobj/internal/satmath"
	"approxobj/internal/shard"
)

// Kind identifies an object family: counters (Inc/Read) or max registers
// (Write/Read).
type Kind int

// Object kinds.
const (
	KindCounter Kind = iota + 1
	KindMaxRegister
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindMaxRegister:
		return "max register"
	default:
		return "invalid"
	}
}

// MarshalText renders the kind by name, so registry snapshots export
// readably (e.g. as JSON).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

type accMode int

const (
	accExact accMode = iota
	accAdditive
	accMultiplicative
)

// Accuracy selects a point on the paper's accuracy/steps trade-off. Use
// Exact, Additive, or Multiplicative to build one and WithAccuracy to
// apply it to a spec. The zero value is Exact().
type Accuracy struct {
	mode accMode
	k    uint64
}

// Exact requests precise reads: the object's envelope is zero and every
// read returns the true value.
func Exact() Accuracy { return Accuracy{mode: accExact} }

// Additive requests k-additive accuracy: reads may err by at most ±k.
// Implemented for counters (the batched collect of Aspnes et al.'s lower
// bound regime): increments amortize to O(n/k) steps, reads cost O(n).
func Additive(k uint64) Accuracy { return Accuracy{mode: accAdditive, k: k} }

// Multiplicative requests k-multiplicative accuracy: reads may err by a
// factor of k (x in [v/k, k*v]). This is the paper's relaxation —
// Algorithm 1 for counters (O(1) amortized steps for k >= sqrt(n)) and
// Algorithm 2 for max registers (O(min(log2 log_k m, n)) worst case).
func Multiplicative(k uint64) Accuracy { return Accuracy{mode: accMultiplicative, k: k} }

// IsExact reports whether the accuracy pins reads to the true value.
func (a Accuracy) IsExact() bool { return a.mode == accExact }

// K returns the accuracy parameter: 1 for exact, the additive slack for
// Additive, the multiplicative factor for Multiplicative.
func (a Accuracy) K() uint64 {
	if a.mode == accExact {
		return 1
	}
	return a.k
}

// String renders the accuracy for error messages and tables.
func (a Accuracy) String() string {
	switch a.mode {
	case accAdditive:
		return fmt.Sprintf("additive(%d)", a.k)
	case accMultiplicative:
		return fmt.Sprintf("multiplicative(%d)", a.k)
	default:
		return "exact"
	}
}

// Spec is the validated description of an object: which family member to
// build (accuracy), for how many process slots, and how the runtime
// should scale it (shards, batching) or bound it (max-register range).
// Specs are built by NewCounter, NewMaxRegister, and the Registry from
// functional options; inspect a live object's spec with Counter.Spec or
// MaxRegister.Spec.
type Spec struct {
	kind   Kind
	procs  int
	acc    Accuracy
	shards int
	batch  int
	bound  uint64

	// option provenance, so validation and backend selection can
	// distinguish "defaulted" from "explicitly set" (WithBound(0) is not
	// the same as no bound).
	boundSet bool

	// snapshotSlot reserves one extra process slot (index procs) for the
	// registry's Snapshot reads; see Registry.
	snapshotSlot bool
}

// Kind returns the object family the spec describes.
func (s Spec) Kind() Kind { return s.kind }

// Procs returns the number of process slots available to callers (the
// pool capacity; a registry-owned object holds one additional internal
// slot for snapshots).
func (s Spec) Procs() int { return s.procs }

// Accuracy returns the accuracy selection.
func (s Spec) Accuracy() Accuracy { return s.acc }

// Shards returns the shard count (1 when unsharded).
func (s Spec) Shards() int { return s.shards }

// Batch returns the per-handle buffer size: the increment buffer for
// counters, the write-elision window for max registers (1 when
// unbuffered).
func (s Spec) Batch() int { return s.batch }

// Bound returns the max-register value bound m (values must be < m), or 0
// for unbounded registers and counters.
func (s Spec) Bound() uint64 { return s.bound }

// totalProcs is the number of slots actually allocated in the underlying
// factories: the caller-visible slots plus the registry snapshot slot.
func (s Spec) totalProcs() int {
	if s.snapshotSlot {
		return s.procs + 1
	}
	return s.procs
}

// sameObject reports whether two specs describe the same object
// configuration (ignoring option provenance), for Registry idempotence.
func (s Spec) sameObject(t Spec) bool {
	return s.kind == t.kind && s.procs == t.procs && s.acc == t.acc &&
		s.shards == t.shards && s.batch == t.batch && s.bound == t.bound
}

// String renders the spec compactly, e.g.
// "counter{procs: 8, multiplicative(4), shards: 4, batch: 16}". Both
// kinds render shards/batch when they deviate from the unscaled default
// (counters always do, for continuity with earlier releases).
func (s Spec) String() string {
	out := fmt.Sprintf("%s{procs: %d, %s", s.kind, s.procs, s.acc)
	if s.kind == KindCounter || s.shards != 1 || s.batch != 1 {
		out += fmt.Sprintf(", shards: %d, batch: %d", s.shards, s.batch)
	}
	if s.kind == KindMaxRegister && s.bound > 0 {
		out += fmt.Sprintf(", bound: %d", s.bound)
	}
	return out + "}"
}

// Option configures a Spec. Options are orthogonal: any accuracy composes
// with any shard count, batch size, and process count; validation of the
// combined spec happens once, in the constructor, instead of in each of
// the legacy per-family constructors.
type Option func(*Spec)

// WithProcs sets the number of process slots n (default 1). Handles bind
// goroutines to slots — via Acquire/Do (pooled) or Handle(i) (manual) —
// and at most n goroutines can operate concurrently.
func WithProcs(n int) Option { return func(s *Spec) { s.procs = n } }

// WithAccuracy selects the object's accuracy (default Exact()): see
// Exact, Additive, and Multiplicative.
func WithAccuracy(a Accuracy) Option { return func(s *Spec) { s.acc = a } }

// WithShards sets the shard count S (default 1): S independently accurate
// shards combined by readers, spreading mutation contention across
// disjoint base objects. Counter reads sum the shards (no widening of a
// multiplicative envelope; an additive envelope widens to S*k); max
// register reads take the max over shards, which widens NO envelope at
// all — the max over shards is the global max. See internal/shard.
func WithShards(n int) Option {
	return func(s *Spec) { s.shards = n }
}

// WithBatch sets the per-handle buffer B (default 1, unbuffered). For
// counters it buffers increments: B-1 of every B Incs touch no shared
// memory, at the cost of up to (B-1)·n increments being invisible to
// readers between flushes (the Buffer term of Bounds). For max registers
// it is the write-elision window: a handle skips the shared write when
// the value is within B-1 of its last flushed one, so reads may trail the
// true maximum by at most B-1 (per handle, not times n — the maximum
// lives in one handle). Releasing a pooled handle flushes either kind.
func WithBatch(b int) Option {
	return func(s *Spec) { s.batch = b }
}

// WithBound sets the max-register value bound m: writes must be < m, and
// bounded registers get the paper's Algorithm 2 with its
// O(min(log2 log_k m, n)) worst case. Without it, max registers are
// unbounded (the epoch construction of Section I-B).
func WithBound(m uint64) Option {
	return func(s *Spec) {
		s.bound = m
		s.boundSet = true
	}
}

// withSnapshotSlot reserves the internal registry snapshot slot.
func withSnapshotSlot() Option { return func(s *Spec) { s.snapshotSlot = true } }

// newSpec applies opts over the defaults for kind and validates the
// combination. This is the single validation point of the package: every
// constructor — new-style or legacy wrapper — funnels through it.
func newSpec(kind Kind, opts []Option) (Spec, error) {
	s := Spec{kind: kind, procs: 1, acc: Exact(), shards: 1, batch: 1}
	for _, opt := range opts {
		opt(&s)
	}
	if err := s.validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// validate checks option compatibility for the spec as a whole.
func (s Spec) validate() error {
	if s.procs < 1 {
		return fmt.Errorf("approxobj: %s needs at least one process slot, got %d", s.kind, s.procs)
	}
	// Sharding and batching apply to both kinds (the unified sharded
	// runtime); their range checks are kind-independent.
	if s.shards < 1 {
		return fmt.Errorf("approxobj: shard count must be >= 1, got %d", s.shards)
	}
	if s.batch < 1 {
		return fmt.Errorf("approxobj: batch size must be >= 1, got %d", s.batch)
	}
	switch s.kind {
	case KindCounter:
		if s.boundSet {
			return fmt.Errorf("approxobj: WithBound applies only to max registers, not counters")
		}
		if s.acc.mode == accMultiplicative {
			// Mirrors core.NewMultCounter's precondition (defense in
			// depth, via the shared satmath.SquareAtLeast predicate):
			// checking here too gives spec-level error messages
			// (including the snapshot-slot hint) before any shard is
			// built.
			k, n := s.acc.k, uint64(s.totalProcs())
			if k < 2 {
				return fmt.Errorf("approxobj: multiplicative accuracy needs k >= 2, got %d", k)
			}
			if !satmath.SquareAtLeast(k, n) {
				if s.snapshotSlot {
					return fmt.Errorf("approxobj: multiplicative accuracy needs k >= sqrt(n): k=%d, n=%d (%d caller slots + 1 registry snapshot slot)", k, n, s.procs)
				}
				return fmt.Errorf("approxobj: multiplicative accuracy needs k >= sqrt(n): k=%d, n=%d", k, n)
			}
		}
	case KindMaxRegister:
		switch s.acc.mode {
		case accAdditive:
			return fmt.Errorf("approxobj: additive accuracy is not implemented for max registers (use Exact or Multiplicative)")
		case accMultiplicative:
			if s.acc.k < 2 {
				return fmt.Errorf("approxobj: multiplicative accuracy needs k >= 2, got %d", s.acc.k)
			}
		}
		if s.boundSet && s.bound < 2 {
			return fmt.Errorf("approxobj: max-register bound must be >= 2, got %d", s.bound)
		}
		// Legal writes satisfy v < m, so the largest is m-1: an elision
		// window of B-1 >= m-1 (i.e. B >= m) covers every legal write from
		// a fresh handle and nothing would ever reach shared memory.
		if s.boundSet && uint64(s.batch) >= s.bound {
			return fmt.Errorf("approxobj: batch %d exceeds the %d-bounded register's value range (the elision window would swallow every write)", s.batch, s.bound)
		}
	default:
		return fmt.Errorf("approxobj: invalid object kind %d", s.kind)
	}
	return nil
}

// shardOptions translates a counter spec into the sharded runtime's
// configuration: the accuracy selects the per-shard backend, shards and
// batch pass through.
func (s Spec) shardOptions() (k uint64, opts []shard.Option) {
	var be shard.Backend
	switch s.acc.mode {
	case accAdditive:
		be, k = shard.AdditiveBackend(), s.acc.k
	case accMultiplicative:
		be, k = shard.MultBackend(), s.acc.k
	default:
		be, k = shard.AACHBackend(), 1
	}
	return k, []shard.Option{shard.Shards(s.shards), shard.Batch(s.batch), shard.WithBackend(be)}
}

// maxRegOptions translates a max-register spec into the sharded runtime's
// configuration: accuracy and bound select the per-shard backend, shards
// and batch (the write-elision window) pass through.
func (s Spec) maxRegOptions() (k uint64, opts []shard.MaxRegOption) {
	var be shard.MaxRegBackend
	switch {
	case s.acc.IsExact() && s.boundSet:
		be, k = shard.ExactBoundedMaxBackend(s.bound), 1
	case s.acc.IsExact():
		be, k = shard.ExactMaxBackend(), 1
	case s.boundSet:
		be, k = shard.MultBoundedMaxBackend(s.bound), s.acc.k
	default:
		be, k = shard.MultMaxBackend(), s.acc.k
	}
	return k, []shard.MaxRegOption{
		shard.MaxRegShards(s.shards),
		shard.MaxRegBatch(s.batch),
		shard.WithMaxRegBackend(be),
	}
}
