package approxobj

import (
	"fmt"
	"strings"
	"time"
)

// Kind identifies an object family: counters (Inc/Read), max registers
// (Write/Read), single-writer snapshots (Update/Scan), or histograms
// (Observe/Quantile — the first kind whose read side is a query engine,
// not a scalar). The registered kinds and their composition policies
// live in the backend-plane table (see Kinds).
type Kind int

// Object kinds.
const (
	KindCounter Kind = iota + 1
	KindMaxRegister
	KindSnapshot
	KindHistogram
)

// String returns the kind's name, as registered in the backend table.
func (k Kind) String() string {
	if d := descriptorOf(k); d != nil {
		return d.name
	}
	return "invalid"
}

// MarshalText renders the kind by name, so registry snapshots export
// readably (e.g. as JSON).
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind by its registered name — the inverse of
// MarshalText, so registry names and bench records round-trip. Unknown
// names are an error listing the registered kinds.
func (k *Kind) UnmarshalText(text []byte) error {
	parsed, err := ParseKind(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind resolves a kind name ("counter", "max register", "snapshot",
// "histogram") against the backend table. Unknown names are an error.
func ParseKind(name string) (Kind, error) {
	for _, d := range kindTable {
		if d.name == name {
			return d.kind, nil
		}
	}
	known := make([]string, 0, len(kindTable))
	for _, d := range kindTable {
		known = append(known, d.name)
	}
	return 0, fmt.Errorf("approxobj: unknown object kind %q (registered kinds: %s)", name, strings.Join(known, ", "))
}

type accMode int

const (
	accExact accMode = iota
	accAdditive
	accMultiplicative
	accRandomized
)

// accuracyRow is one row of the accuracy table: the mode's name, how a
// full selection renders, and the mode's own parameter preconditions
// (kind-independent; a kind's extra preconditions live in its
// descriptor's accuracies map). Adding an accuracy class is a row
// registration here plus per-kind rows in the descriptors that support
// it — validation, String rendering, and the Kinds export all derive
// from the tables, with no per-mode switches left to grow.
type accuracyRow struct {
	mode   accMode
	name   string
	render func(a Accuracy) string
	check  func(a Accuracy) error
}

// accuracyTable registers every accuracy class, in presentation order.
var accuracyTable = []accuracyRow{
	{
		mode:   accExact,
		name:   "exact",
		render: func(Accuracy) string { return "exact" },
	},
	{
		mode:   accAdditive,
		name:   "additive",
		render: func(a Accuracy) string { return fmt.Sprintf("additive(%d)", a.k) },
	},
	{
		mode:   accMultiplicative,
		name:   "multiplicative",
		render: func(a Accuracy) string { return fmt.Sprintf("multiplicative(%d)", a.k) },
		check: func(a Accuracy) error {
			if a.k < 2 {
				return fmt.Errorf("approxobj: multiplicative accuracy needs k >= 2, got %d", a.k)
			}
			return nil
		},
	},
	{
		mode:   accRandomized,
		name:   "randomized",
		render: func(a Accuracy) string { return fmt.Sprintf("randomized(%d, %g)", a.k, a.delta) },
		check: func(a Accuracy) error {
			if a.k < 2 {
				return fmt.Errorf("approxobj: randomized accuracy needs k >= 2, got %d", a.k)
			}
			if a.delta <= 0 || a.delta >= 1 {
				return fmt.Errorf("approxobj: randomized accuracy needs 0 < delta < 1, got %v", a.delta)
			}
			return nil
		},
	},
}

// accuracyRowOf resolves a mode against the accuracy table.
func accuracyRowOf(m accMode) *accuracyRow {
	for i := range accuracyTable {
		if accuracyTable[i].mode == m {
			return &accuracyTable[i]
		}
	}
	return nil
}

// String names the mode alone ("exact", "additive", "multiplicative",
// "randomized"), without the parameters; Accuracy.String renders the
// full selection.
func (m accMode) String() string {
	if r := accuracyRowOf(m); r != nil {
		return r.name
	}
	return "invalid"
}

// Accuracy selects a point on the paper's accuracy/steps trade-off. Use
// Exact, Additive, Multiplicative, or Randomized to build one and
// WithAccuracy to apply it to a spec. The zero value is Exact().
type Accuracy struct {
	mode  accMode
	k     uint64
	delta float64
}

// Exact requests precise reads: the object's envelope is zero and every
// read returns the true value.
func Exact() Accuracy { return Accuracy{mode: accExact} }

// Additive requests k-additive accuracy: reads may err by at most ±k.
// Implemented for counters (the batched collect of Aspnes et al.'s lower
// bound regime): increments amortize to O(n/k) steps, reads cost O(n).
func Additive(k uint64) Accuracy { return Accuracy{mode: accAdditive, k: k} }

// Multiplicative requests k-multiplicative accuracy: reads may err by a
// factor of k (x in [v/k, k*v]). This is the paper's relaxation —
// Algorithm 1 for counters (O(1) amortized steps for k >= sqrt(n)) and
// Algorithm 2 for max registers (O(min(log2 log_k m, n)) worst case).
func Multiplicative(k uint64) Accuracy { return Accuracy{mode: accMultiplicative, k: k} }

// Randomized requests k-multiplicative accuracy that holds only with
// probability >= 1-delta per read: a Morris counter per shard (exponent
// register + per-handle RNG state), with the Morris accuracy parameter
// chosen so a read escapes [v/k, k*v] with probability at most delta
// (reported as the Delta term of Bounds, composed across shards and
// window epochs by union bound). This is the contrast class of the
// paper's related work (§I-A): exponentially smaller state than any
// deterministic counter — O(log log v) bits of exponent versus the
// deterministic lower bounds in PAPERS.md — in exchange for giving up
// the on-every-schedule guarantee. Requires k >= 2 and 0 < delta < 1.
// Implemented for counters.
func Randomized(k uint64, delta float64) Accuracy {
	return Accuracy{mode: accRandomized, k: k, delta: delta}
}

// IsExact reports whether the accuracy pins reads to the true value.
func (a Accuracy) IsExact() bool { return a.mode == accExact }

// K returns the accuracy parameter: 1 for exact, the additive slack for
// Additive, the multiplicative factor for Multiplicative and Randomized.
func (a Accuracy) K() uint64 {
	if a.mode == accExact {
		return 1
	}
	return a.k
}

// Delta returns the per-read envelope failure probability: 0 for the
// deterministic accuracies, the configured delta for Randomized.
func (a Accuracy) Delta() float64 { return a.delta }

// String renders the accuracy for error messages and tables.
func (a Accuracy) String() string {
	if r := accuracyRowOf(a.mode); r != nil {
		return r.render(a)
	}
	return "invalid"
}

// Spec is the validated description of an object: which family member to
// build (accuracy), for how many process slots, and how the runtime
// should scale it (shards, batching) or bound it (max-register range).
// Specs are built by NewCounter, NewMaxRegister, NewSnapshot, and the
// Registry from functional options; inspect a live object's spec with
// its Spec method.
type Spec struct {
	kind      Kind
	procs     int
	acc       Accuracy
	shards    int
	batch     int
	bound     uint64
	readStale time.Duration

	// windowed objects (WithWindow): the window duration and the number
	// of epoch instances it is divided into. windowEpochs == 0 means
	// cumulative (no window).
	windowDur    time.Duration
	windowEpochs int

	// option provenance, so validation and backend selection can
	// distinguish "defaulted" from "explicitly set" (WithBound(0) is not
	// the same as no bound).
	boundSet bool
	// readCacheSet records that WithReadCache was applied, so validation
	// can reject WithReadCache(0) (which would otherwise silently mean
	// "off") with a spec-level error.
	readCacheSet bool
	// windowSet records that WithWindow was applied, so validation can
	// reject degenerate windows (d <= 0, epochs < 2) instead of silently
	// treating them as "cumulative".
	windowSet bool

	// snapshotSlot reserves one extra process slot (index procs) for the
	// registry's Snapshot reads; see Registry.
	snapshotSlot bool

	// tel is the telemetry domain the object reports into (WithTelemetry);
	// nil disables instrumentation entirely.
	tel *Telemetry
}

// Kind returns the object family the spec describes.
func (s Spec) Kind() Kind { return s.kind }

// Procs returns the number of process slots available to callers (the
// pool capacity; a registry-owned object holds one additional internal
// slot for snapshots).
func (s Spec) Procs() int { return s.procs }

// Accuracy returns the accuracy selection.
func (s Spec) Accuracy() Accuracy { return s.acc }

// Shards returns the shard count (1 when unsharded).
func (s Spec) Shards() int { return s.shards }

// Batch returns the per-handle buffer size: the increment buffer for
// counters, the write-elision window for max registers, the
// component-elision window for snapshots, the observation buffer for
// histograms (1 when unbuffered).
func (s Spec) Batch() int { return s.batch }

// Bound returns the value bound m (writes/observations must be < m), or
// 0 for unbounded max registers and histograms and for the boundless
// kinds.
func (s Spec) Bound() uint64 { return s.bound }

// ReadCache returns the read-cache staleness window (0 when the
// read-combiner tier is off); see WithReadCache.
func (s Spec) ReadCache() time.Duration { return s.readStale }

// Window returns the window duration (0 for cumulative objects) and
// the number of epoch instances it is divided into (0 likewise); see
// WithWindow.
func (s Spec) Window() (d time.Duration, epochs int) { return s.windowDur, s.windowEpochs }

// Windowed reports whether the spec describes a windowed object.
func (s Spec) Windowed() bool { return s.windowEpochs > 0 }

// totalProcs is the number of slots actually allocated in the underlying
// factories: the caller-visible slots, plus the registry snapshot slot,
// plus the read cache's reserved combiner slot. Backend preconditions
// (e.g. k >= sqrt(n) for multiplicative counters) apply to this total.
func (s Spec) totalProcs() int {
	n := s.procs
	if s.snapshotSlot {
		n++
	}
	if s.readStale > 0 {
		n++
	}
	return n
}

// sameObject reports whether two specs describe the same object
// configuration (ignoring option provenance), for Registry idempotence.
func (s Spec) sameObject(t Spec) bool {
	return s.kind == t.kind && s.procs == t.procs && s.acc == t.acc &&
		s.shards == t.shards && s.batch == t.batch && s.bound == t.bound &&
		s.readStale == t.readStale &&
		s.windowDur == t.windowDur && s.windowEpochs == t.windowEpochs &&
		s.tel == t.tel
}

// String renders the spec compactly, e.g.
// "counter{procs: 8, multiplicative(4), shards: 4, batch: 16}". Every
// kind renders shards/batch when they deviate from the unscaled default
// (counters always do, for continuity with earlier releases).
func (s Spec) String() string {
	out := fmt.Sprintf("%s{procs: %d, %s", s.kind, s.procs, s.acc)
	if s.kind == KindCounter || s.shards != 1 || s.batch != 1 {
		out += fmt.Sprintf(", shards: %d, batch: %d", s.shards, s.batch)
	}
	if s.bound > 0 {
		out += fmt.Sprintf(", bound: %d", s.bound)
	}
	if s.readStale > 0 {
		out += fmt.Sprintf(", cache: %s", s.readStale)
	}
	if s.windowEpochs > 0 {
		out += fmt.Sprintf(", window: %s/%d", s.windowDur, s.windowEpochs)
	}
	if s.tel != nil {
		out += ", telemetry"
	}
	return out + "}"
}

// Option configures a Spec. Options are orthogonal: any accuracy composes
// with any shard count, batch size, and process count; validation of the
// combined spec happens once, in the constructor, against the kind's
// backend-table registration instead of in per-family code paths.
type Option func(*Spec)

// WithProcs sets the number of process slots n (default 1). Handles bind
// goroutines to slots — via Acquire/Do (pooled) or Handle(i) (manual) —
// and at most n goroutines can operate concurrently. For snapshots, n is
// also the component count: slot i is the single writer of component i.
func WithProcs(n int) Option { return func(s *Spec) { s.procs = n } }

// WithAccuracy selects the object's accuracy (default Exact()): see
// Exact, Additive, Multiplicative, and Randomized. Each kind's backend
// table lists the modes it implements (the Accuracies column of Kinds);
// unsupported combinations are rejected by the constructor.
func WithAccuracy(a Accuracy) Option { return func(s *Spec) { s.acc = a } }

// WithShards sets the shard count S (default 1): S independently accurate
// shards combined by readers, spreading mutation contention across
// disjoint base objects. How the combined read composes is the kind's
// combine policy (see Kinds): counter reads sum the shards (no widening
// of a multiplicative envelope; an additive envelope widens to S*k), max
// register reads take the max over shards, and snapshot scans merge per
// component — neither of which widens the envelope at all. See
// internal/shard.
func WithShards(n int) Option {
	return func(s *Spec) { s.shards = n }
}

// WithBatch sets the per-handle buffer B (default 1, unbuffered). What is
// buffered is the kind's buffer policy (see Kinds). For counters it
// buffers increments: B-1 of every B Incs touch no shared memory, at the
// cost of up to (B-1)·n increments being invisible to readers between
// flushes (the Buffer term of Bounds). For max registers it is the
// write-elision window: a handle skips the shared write when the value
// is within B-1 of its last flushed one, so reads may trail the true
// maximum by at most B-1 (per handle, not times n — the maximum lives in
// one handle). For snapshots it is the component-elision window: updates
// within B-1 above the component's last flushed value stay local, so a
// scanned component may trail its true value by at most B-1 (per
// component). For histograms it buffers whole observations: a handle
// accumulates per-bucket counts locally and flushes them all once B
// observations are pending, so up to (B-1)·n observations system-wide
// may be invisible to queries between flushes (the rank-domain Buffer
// term of Bounds). Releasing a pooled handle flushes every kind.
func WithBatch(b int) Option {
	return func(s *Spec) { s.batch = b }
}

// WithBound sets the value bound m of the kinds with a value domain:
// for max registers, writes must be < m and bounded registers get the
// paper's Algorithm 2 with its O(min(log2 log_k m, n)) worst case
// (without it, max registers are unbounded — the epoch construction of
// Section I-B); for histograms, observations must be < m and the bucket
// table covers exactly [0, m) (without it, histograms bucket the full
// uint64 domain — exact histograms require a bound, since their table
// holds one bucket per value).
func WithBound(m uint64) Option {
	return func(s *Spec) {
		s.bound = m
		s.boundSet = true
	}
}

// WithReadCache enables the read-combiner tier with staleness window
// maxStale (default off). The object keeps one pre-combined cell —
// refreshed by a background combiner goroutine and by read-triggered
// inline refreshes — and serves reads from it in O(1) in the shard
// count: Read for counters and max registers, Scan for snapshots, and
// the bucket read under every histogram query (Count, Quantile, Rank,
// CDF). The cell's underlying combined read started at most maxStale
// before the cached read, so the object's Bounds envelope holds against
// the regularity window widened backward by maxStale — reported as the
// Stale term of Bounds; all other envelope terms are unchanged.
//
// The cache reserves one extra internal process slot for the combiner
// goroutine (like the registry's snapshot slot, it counts toward
// backend preconditions such as k >= sqrt(n)). Call the object's Close
// to stop the goroutine; reads stay valid afterwards, refreshing
// inline.
func WithReadCache(maxStale time.Duration) Option {
	return func(s *Spec) {
		s.readStale = maxStale
		s.readCacheSet = true
	}
}

// WithWindow makes the object windowed (default cumulative): it is
// backed by a ring of n epoch instances — each a full plane with the
// spec's shards, batching, and optional read cache — rotated every d/n,
// and every read answers over the live ring instead of
// since-creation. Writes stamp into the current epoch through the
// ordinary handle plumbing (handles re-home lazily after a rotation);
// reads combine the live epochs with the kind's combine policy, so
// NewHistogram(WithWindow(time.Minute, 6)) serves p99-over-the-last-
// minute with the same deterministic per-window envelope. The per-kind
// window reading (what "the last d" means under each combine) is the
// WindowTerm column of Kinds.
//
// The envelope gains the time-domain Window term d/n: the combined
// value covers at least the last d - d/n and at most the last d of
// mutations, and a read racing a rotation may miss the epoch being
// evicted — at most one epoch of truncation skew at either window
// edge, alongside the existing Stale term. For sum-combined kinds
// (counters) the per-epoch additive slack also sums over the ring (Add
// x n); all other envelope terms are unchanged.
//
// Windowed objects additionally support Reset (replace the whole
// window with fresh epochs) and make Snapshot(reset) the go-metrics
// read idiom; Close freezes the window (rotation stops, reads keep
// serving the frozen ring). n must be >= 2 — the previous epoch must
// stay live so writes racing a rotation are never lost from the
// window.
func WithWindow(d time.Duration, n int) Option {
	return func(s *Spec) {
		s.windowDur = d
		s.windowEpochs = n
		s.windowSet = true
	}
}

// withSnapshotSlot reserves the internal registry snapshot slot.
func withSnapshotSlot() Option { return func(s *Spec) { s.snapshotSlot = true } }

// newSpec applies opts over the defaults for kind and validates the
// combination. This is the single validation point of the package: every
// constructor — new-style, registry, or legacy wrapper — funnels through
// it.
func newSpec(kind Kind, opts []Option) (Spec, error) {
	s := Spec{kind: kind, procs: 1, acc: Exact(), shards: 1, batch: 1}
	for _, opt := range opts {
		opt(&s)
	}
	if err := s.validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// validate checks option compatibility for the spec as a whole. The
// checks are kind-independent range checks plus whatever the kind's
// backend-table registration declares (supported accuracy modes and
// their preconditions, bound support); there is no per-kind branching
// here — a new kind changes the table, not this function.
func (s Spec) validate() error {
	d := descriptorOf(s.kind)
	if d == nil {
		return fmt.Errorf("approxobj: invalid object kind %d", s.kind)
	}
	if s.procs < 1 {
		return fmt.Errorf("approxobj: %s needs at least one process slot, got %d", s.kind, s.procs)
	}
	// Sharding and batching apply to every kind on the unified runtime;
	// their range checks are kind-independent.
	if s.shards < 1 {
		return fmt.Errorf("approxobj: shard count must be >= 1, got %d", s.shards)
	}
	if s.batch < 1 {
		return fmt.Errorf("approxobj: batch size must be >= 1, got %d", s.batch)
	}
	if s.readCacheSet && s.readStale <= 0 {
		return fmt.Errorf("approxobj: read-cache staleness must be > 0, got %v (omit WithReadCache to disable caching)", s.readStale)
	}
	if s.windowSet {
		if s.windowDur <= 0 {
			return fmt.Errorf("approxobj: window duration must be > 0, got %v (omit WithWindow for a cumulative object)", s.windowDur)
		}
		if s.windowEpochs < 2 {
			return fmt.Errorf("approxobj: window needs at least 2 epochs (1 would truncate the whole window on every rotation), got %d", s.windowEpochs)
		}
	}
	row := accuracyRowOf(s.acc.mode)
	if row == nil {
		return fmt.Errorf("approxobj: invalid accuracy mode %d", s.acc.mode)
	}
	check, supported := d.accuracies[s.acc.mode]
	if !supported {
		return fmt.Errorf("approxobj: %s accuracy is not implemented for %s (use %s)",
			row.name, d.plural, supportedAccuracies(d))
	}
	if row.check != nil {
		if err := row.check(s.acc); err != nil {
			return err
		}
	}
	if s.boundSet && !d.allowBound {
		return fmt.Errorf("approxobj: WithBound applies only to max registers and histograms, not %s", d.plural)
	}
	if s.boundSet {
		if s.bound < 2 {
			return fmt.Errorf("approxobj: value bound must be >= 2, got %d", s.bound)
		}
		// Legal writes satisfy v < m, so the largest is m-1: an elision
		// window of B-1 >= m-1 (i.e. B >= m) covers every legal write from
		// a fresh handle and nothing would ever reach shared memory. Only
		// kinds whose batch IS a value window (max registers) care; for
		// histograms the batch is an observation count, unrelated to the
		// value domain.
		if d.boundLimitsBatch && uint64(s.batch) >= s.bound {
			return fmt.Errorf("approxobj: batch %d exceeds the %d-bounded register's value range (the elision window would swallow every write)", s.batch, s.bound)
		}
	}
	if check != nil {
		if err := check(s); err != nil {
			return err
		}
	}
	return nil
}

// supportedAccuracies renders a kind's accuracy modes for error messages
// ("exact or multiplicative"), in accuracy-table order.
func supportedAccuracies(d *kindDescriptor) string {
	names := []string{}
	for _, r := range accuracyTable {
		if _, ok := d.accuracies[r.mode]; ok {
			names = append(names, r.name)
		}
	}
	switch len(names) {
	case 0:
		return "nothing"
	case 1:
		return names[0]
	default:
		return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
	}
}
