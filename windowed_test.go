package approxobj

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"approxobj/internal/histogram"
	"approxobj/internal/planetest"
	"approxobj/internal/satmath"
)

// observePhase drives the observer goroutines of one window phase:
// every observer acquires a pooled handle, records perG values from its
// own seeded stream, and releases (flushing its observation buffer).
// It returns the phase's full observation multiset.
func observePhase(t *testing.T, h *Histogram, observers, perG int, bound uint64, seed int64) []uint64 {
	t.Helper()
	observed := make([][]uint64, observers)
	var wg sync.WaitGroup
	wg.Add(observers)
	for g := 0; g < observers; g++ {
		g := g
		rng := rand.New(rand.NewSource(seed*1031 + int64(g)))
		go func() {
			defer wg.Done()
			vals := make([]uint64, 0, perG)
			hh, release := h.Acquire()
			defer release() // flushes the observation buffer
			for j := 0; j < perG; j++ {
				v := rng.Uint64() % bound
				hh.Observe(v)
				vals = append(vals, v)
			}
			observed[g] = vals
		}()
	}
	wg.Wait()
	var all []uint64
	for _, vals := range observed {
		all = append(all, vals...)
	}
	return all
}

// checkHistWindow verifies every query of a quiescent windowed
// histogram against an exact reference of the observations that are
// still live in the window: counts and ranks exact, quantile and sum
// within pure bucket rounding (factor k, one-sided) — the same
// deterministic envelope the cumulative conformance test pins, now
// applied per window content.
func checkHistWindow(t *testing.T, h *Histogram, live []uint64, bound uint64) {
	t.Helper()
	k := h.K()
	ref := planetest.NewExactRef(live)
	total := uint64(len(live))
	h.Do(func(hh HistogramHandle) {
		if c := hh.Count(); c != total {
			t.Errorf("windowed count = %d, want exactly %d live observations", c, total)
		}
		if s := hh.Sum(); s > ref.Sum() || satmath.Mul(s, k) < ref.Sum() {
			t.Errorf("windowed sum = %d outside [%d/%d, %d]", s, ref.Sum(), k, ref.Sum())
		}
		for _, v := range []uint64{0, 1, 100, bound / 2, bound - 1} {
			r := hh.Rank(v)
			lo, hi := ref.Rank(v), ref.Rank(satmath.Mul(v, k))
			if r < lo || r > hi {
				t.Errorf("windowed Rank(%d) = %d outside [A(v), A(k*v)] = [%d, %d]", v, r, lo, hi)
			}
			if total > 0 {
				if cdf, want := hh.CDF(v), float64(r)/float64(total); cdf != want {
					t.Errorf("windowed CDF(%d) = %v, want Rank/Count = %v", v, cdf, want)
				}
			}
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			got := hh.Quantile(q)
			if total == 0 {
				if got != 0 {
					t.Errorf("empty-window Quantile(%v) = %d, want 0", q, got)
				}
				continue
			}
			y := ref.At(histogram.TargetRank(q, total))
			if got > y {
				t.Errorf("windowed Quantile(%v) = %d overstates the rank value %d", q, got, y)
			} else if k == 1 && got != y {
				t.Errorf("windowed exact Quantile(%v) = %d, want %d", q, got, y)
			} else if k > 1 && y > 0 && satmath.Mul(got, k) <= y {
				t.Errorf("windowed Quantile(%v) = %d understates %d by more than factor %d", q, got, y, k)
			}
		}
	})
}

// TestWindowedHistogramConformance is the windowed envelope property:
// for EVERY histogram spec combination (accuracy x shards x batch),
// queries on a windowed histogram answer over exactly the live window —
// verified against an exact reference of the observation multiset that
// rotation has not yet evicted, phase by phase. The window duration is
// an hour so the only rotations are the test's own deterministic
// h.wh.Rotate() calls: observations written before r rotations are live
// iff r < epochs, expired otherwise; Reset evicts everything at once
// and the object keeps working.
func TestWindowedHistogramConformance(t *testing.T) {
	const procs = 5
	const observers = procs - 1
	const epochs = 4
	perG := 2_000
	if testing.Short() {
		perG = 300
	}
	const bound = uint64(1) << 12
	for _, spec := range histogramSpecs(procs, bound) {
		t.Run(spec.name, func(t *testing.T) {
			opts := append(append([]Option{}, spec.opts...), WithWindow(time.Hour, epochs))
			h, err := NewHistogram(opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()
			if h.wh == nil {
				t.Fatal("WithWindow histogram is not backed by the windowed runtime")
			}
			if b := h.Bounds(); b.Window != time.Hour/epochs {
				t.Fatalf("Bounds.Window = %v, want %v (d/n)", b.Window, time.Hour/epochs)
			}

			// Phase A, then one rotation, then phase B: both phases are
			// live (A has survived 1 < epochs rotations).
			phaseA := observePhase(t, h, observers, perG, bound, 1)
			checkHistWindow(t, h, phaseA, bound)
			h.wh.Rotate()
			phaseB := observePhase(t, h, observers, perG, bound, 2)
			checkHistWindow(t, h, append(append([]uint64{}, phaseA...), phaseB...), bound)

			// Rotate until phase A has seen epochs rotations: A expires,
			// B (epochs-1 rotations) is still live.
			for i := 0; i < epochs-1; i++ {
				h.wh.Rotate()
			}
			checkHistWindow(t, h, phaseB, bound)

			// Reset evicts the whole window at once; the empty window
			// answers every query validly.
			if err := h.Reset(); err != nil {
				t.Fatal(err)
			}
			checkHistWindow(t, h, nil, bound)

			// The object keeps working after Reset.
			phaseC := observePhase(t, h, observers, perG, bound, 3)
			checkHistWindow(t, h, phaseC, bound)
		})
	}
}

// TestWindowedCounterReadsLastWindow pins the public windowed-counter
// semantics end to end: reads sum only the live epochs, Snapshot(reset)
// is read-and-restart, and the envelope carries the Window term.
func TestWindowedCounterReadsLastWindow(t *testing.T) {
	const epochs = 3
	c, err := NewCounter(WithProcs(2), WithWindow(time.Hour, epochs))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if b := c.Bounds(); b.Window != time.Hour/epochs {
		t.Fatalf("Bounds.Window = %v, want %v", b.Window, time.Hour/epochs)
	}

	h, release := c.Acquire()
	defer release()
	for i := 0; i < 5; i++ {
		h.Inc()
	}
	// The 5 increments survive epochs-1 further rotations, then expire.
	for i := 0; i < epochs-1; i++ {
		c.wc.Rotate()
		if got := h.Read(); got != 5 {
			t.Fatalf("read after %d rotations = %d, want 5 (still in window)", i+1, got)
		}
	}
	c.wc.Rotate()
	if got := h.Read(); got != 0 {
		t.Fatalf("read after %d rotations = %d, want 0 (expired)", epochs, got)
	}

	// Snapshot(reset): read the window, then restart it.
	for i := 0; i < 3; i++ {
		h.Inc()
	}
	v, err := c.Snapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("Snapshot(reset) = %d, want 3", v)
	}
	if got := h.Read(); got != 0 {
		t.Fatalf("read after Snapshot(reset) = %d, want 0", got)
	}
}

// TestCumulativeResetErrors pins the other half of the Reset contract:
// cumulative objects (no WithWindow) refuse Reset with a telling error,
// for every kind.
func TestCumulativeResetErrors(t *testing.T) {
	c, err := NewCounter()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewMaxRegister()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	hg, err := NewHistogram(WithBound(1024))
	if err != nil {
		t.Fatal(err)
	}
	for name, reset := range map[string]func() error{
		"counter":   c.Reset,
		"maxreg":    r.Reset,
		"snapshot":  s.Reset,
		"histogram": hg.Reset,
	} {
		if err := reset(); err == nil {
			t.Errorf("%s: cumulative Reset succeeded, want error", name)
		} else if want := "cumulative"; !strings.Contains(err.Error(), want) {
			t.Errorf("%s: Reset error %q does not mention %q", name, err, want)
		}
	}
}
