package approxobj

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// TestRandomizedConformanceSweep is the statistical counterpart of the
// deterministic conformance property: a Randomized(k, delta) counter
// promises its reads sit in the k-envelope with probability >= 1-delta
// per read, so over many fixed-workload trials the empirical
// out-of-envelope rate must stay at or below delta (plus sampling
// slack). The sweep crosses shards and batching like the deterministic
// sweep does, because the union-bound Delta composition is exactly what
// could go wrong there. Chebyshev makes the Morris parameter
// conservative — real rates run far below delta — so the threshold
// delta + 3 standard errors leaves no realistic flake margin while
// still catching a broken estimator or a mis-composed budget.
//
// Trials are independent because every counter construction draws a
// fresh base seed (construction-order seeding), with no wall-clock or
// global RNG involved.
func TestRandomizedConformanceSweep(t *testing.T) {
	const n = 4
	const k = 2
	const delta = 0.1
	trials := 150
	incs := 2000
	if testing.Short() {
		trials = 40
		incs = 500
	}
	for _, S := range []int{1, 3} {
		for _, B := range []int{1, 8} {
			t.Run(fmt.Sprintf("s%d-b%d", S, B), func(t *testing.T) {
				reads, outside := 0, 0
				for trial := 0; trial < trials; trial++ {
					c, err := NewCounter(
						WithProcs(n),
						WithAccuracy(Randomized(k, delta)),
						WithShards(S),
						WithBatch(B),
					)
					if err != nil {
						t.Fatal(err)
					}
					bounds := c.Bounds()
					if bounds.Mult != k {
						t.Fatalf("Bounds.Mult = %d, want %d", bounds.Mult, k)
					}
					// The per-shard budget split must reassemble to (about)
					// the configured delta — not S times it, not a slice
					// of it.
					if bounds.Delta <= 0 || bounds.Delta > delta*(1+1e-9) {
						t.Fatalf("Bounds.Delta = %g, want (0, %g]", bounds.Delta, delta)
					}
					handles := make([]CounterHandle, n)
					for i := range handles {
						handles[i] = c.Handle(i)
					}
					for j := 0; j < incs; j++ {
						handles[j%n].Inc()
					}
					for _, h := range handles {
						h.(BatchedCounterHandle).Flush()
					}
					for _, h := range handles {
						reads++
						if !bounds.Contains(uint64(incs), h.Read()) {
							outside++
						}
					}
				}
				rate := float64(outside) / float64(reads)
				slack := 3 * math.Sqrt(delta*(1-delta)/float64(reads))
				if rate > delta+slack {
					t.Errorf("empirical out-of-envelope rate %.4f (%d/%d reads) exceeds delta=%g + slack %.4f",
						rate, outside, reads, delta, slack)
				}
			})
		}
	}
}

// TestRandomizedComposesAcrossThePlane is the end-to-end smoke for the
// acceptance criterion: a Randomized(k, delta) counter built with
// shards, batching, and a read cache must work through pooled handles
// (Acquire/Do) and report a Bounds that carries the Delta term next to
// the Stale term, with a cached read inside the widened envelope.
func TestRandomizedComposesAcrossThePlane(t *testing.T) {
	const incs = 5000
	c, err := NewCounter(
		WithProcs(4),
		WithAccuracy(Randomized(2, 0.01)),
		WithShards(2),
		WithBatch(8),
		WithReadCache(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := c.Bounds()
	if b.Delta <= 0 || b.Stale == 0 {
		t.Fatalf("Bounds = %+v, want both Delta and Stale terms", b)
	}
	if b.IsExact() {
		t.Fatalf("randomized cached counter reports IsExact: %+v", b)
	}
	c.Do(func(h CounterHandle) {
		for i := 0; i < incs; i++ {
			h.Inc()
		}
	})
	var got uint64
	c.Do(func(h CounterHandle) {
		h.(BatchedCounterHandle).Flush()
		got = h.Read()
	})
	// A cached read may trail by Stale, and the Morris estimate may sit
	// anywhere in the delta-probable envelope; at delta=0.01 the
	// Chebyshev-sized parameter makes an out-of-envelope read a
	// broken-estimator signal, not plausible bad luck.
	if !b.Contains(incs, got) {
		t.Errorf("cached randomized read %d outside envelope %+v of true count %d", got, b, incs)
	}
}

// TestRandomizedWindowedDelta checks the window composition of the
// failure probability: folding e ring epochs union-bounds the per-read
// Delta over the fold, and the public budget split divides the
// configured delta by shards x epochs so the reported Delta still comes
// out at (about) the configured value rather than e times it.
func TestRandomizedWindowedDelta(t *testing.T) {
	const delta = 0.12
	c, err := NewCounter(
		WithProcs(2),
		WithAccuracy(Randomized(2, delta)),
		WithShards(2),
		WithWindow(time.Hour, 6),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := c.Bounds()
	if b.Delta <= 0 || b.Delta > delta*(1+1e-9) {
		t.Errorf("windowed Bounds.Delta = %g, want (0, %g]", b.Delta, delta)
	}
	if b.Window == 0 {
		t.Errorf("windowed Bounds lost its Window term: %+v", b)
	}
	if b.IsExact() {
		t.Errorf("randomized windowed counter reports IsExact: %+v", b)
	}
}
