module approxobj

go 1.24
