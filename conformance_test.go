package approxobj

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"approxobj/internal/histogram"
	"approxobj/internal/planetest"
	"approxobj/internal/satmath"
)

// kSqrt returns an accuracy parameter valid for multiplicative counters on
// n slots: at least 2 and at least ceil(sqrt(n)).
func kSqrt(n int) uint64 {
	k := uint64(math.Ceil(math.Sqrt(float64(n))))
	if k < 2 {
		k = 2
	}
	return k
}

// counterSpecs enumerates the counter family: every accuracy crossed with
// sharding and batching.
func counterSpecs(procs int) []struct {
	name string
	opts []Option
} {
	accs := []struct {
		name string
		acc  Accuracy
	}{
		{"exact", Exact()},
		{"additive32", Additive(32)},
		{fmt.Sprintf("mult%d", kSqrt(procs)), Multiplicative(kSqrt(procs))},
	}
	var out []struct {
		name string
		opts []Option
	}
	for _, a := range accs {
		for _, s := range []int{1, 3} {
			for _, b := range []int{1, 8} {
				out = append(out, struct {
					name string
					opts []Option
				}{
					name: fmt.Sprintf("%s-s%d-b%d", a.name, s, b),
					opts: []Option{WithProcs(procs), WithAccuracy(a.acc), WithShards(s), WithBatch(b)},
				})
			}
		}
	}
	return out
}

// TestCounterConformance is the generic envelope property: for EVERY
// counter spec combination, every read observed concurrently must be a
// valid response for some true count inside the regularity window
// (increments completed before the read started .. increments started
// before it returned), per the object's own reported Bounds — and after
// all pooled handles are released (which flushes batch buffers), a
// quiescent read must satisfy the envelope with the Buffer term dropped.
func TestCounterConformance(t *testing.T) {
	const procs = 6
	const incers = procs - 1 // one slot left over for the checking reader
	perG := 3_000
	if testing.Short() {
		perG = 400
	}
	for _, spec := range counterSpecs(procs) {
		t.Run(spec.name, func(t *testing.T) {
			c, err := NewCounter(spec.opts...)
			if err != nil {
				t.Fatal(err)
			}
			bounds := c.Bounds()

			var started, completed atomic.Uint64
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(incers)
			for g := 0; g < incers; g++ {
				go func() {
					defer wg.Done()
					h, release := c.Acquire()
					defer release() // flushes the batch buffer
					for j := 0; j < perG; j++ {
						started.Add(1)
						h.Inc()
						completed.Add(1)
					}
				}()
			}

			var checks int
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				c.Do(func(h CounterHandle) {
					check := func() bool {
						vmin := completed.Load()
						x := h.Read()
						vmax := started.Load()
						checks++
						if !bounds.ContainsRange(vmin, vmax, x) {
							t.Errorf("read %d outside envelope %+v for any count in [%d, %d]", x, bounds, vmin, vmax)
							return false
						}
						return true
					}
					for !done.Load() {
						if !check() {
							return
						}
					}
					check() // at least one check even if the incrementers win the race
				})
			}()

			wg.Wait()
			done.Store(true)
			readerWG.Wait()
			if checks == 0 {
				t.Fatal("reader performed no checks")
			}

			// All incrementer handles are released, so their buffers are
			// flushed: the envelope holds without the Buffer term.
			flushed := bounds
			flushed.Buffer = 0
			total := uint64(incers * perG)
			c.Do(func(h CounterHandle) {
				if x := h.Read(); !flushed.Contains(total, x) {
					t.Errorf("quiescent read %d outside flushed envelope %+v of true count %d", x, flushed, total)
				}
			})
		})
	}
}

// maxRegSpecs enumerates the max-register family: every accuracy/bound
// member crossed with sharding and write elision — the same shard/batch
// grid as counterSpecs, now that both kinds run on the unified runtime.
func maxRegSpecs(procs int, bound uint64) []struct {
	name string
	opts []Option
} {
	members := []struct {
		name string
		opts []Option
	}{
		{"exact-unbounded", nil},
		{"exact-bounded", []Option{WithBound(bound)}},
		{"mult3-unbounded", []Option{WithAccuracy(Multiplicative(3))}},
		{"mult3-bounded", []Option{WithAccuracy(Multiplicative(3)), WithBound(bound)}},
	}
	var out []struct {
		name string
		opts []Option
	}
	for _, m := range members {
		for _, s := range []int{1, 3} {
			for _, b := range []int{1, 8} {
				opts := append([]Option{WithProcs(procs)}, m.opts...)
				opts = append(opts, WithShards(s), WithBatch(b))
				out = append(out, struct {
					name string
					opts []Option
				}{
					name: fmt.Sprintf("%s-s%d-b%d", m.name, s, b),
					opts: opts,
				})
			}
		}
	}
	return out
}

// TestMaxRegisterConformance is the same property for the max-register
// family: every spec combination's reads stay inside the reported Bounds
// relative to the window [max value whose Write completed before the
// read, max value whose Write started before it returned] — including
// sharded registers (whose envelope must NOT widen with S) and elision
// windows (whose headroom is the Buffer term). After all pooled handles
// are released (which flushes elided writes), a quiescent read must
// satisfy the envelope with the Buffer term dropped.
func TestMaxRegisterConformance(t *testing.T) {
	const procs = 5
	const writers = procs - 1
	perG := 3_000
	if testing.Short() {
		perG = 400
	}
	const bound = uint64(1) << 20
	for _, spec := range maxRegSpecs(procs, bound) {
		t.Run(spec.name, func(t *testing.T) {
			r, err := NewMaxRegister(spec.opts...)
			if err != nil {
				t.Fatal(err)
			}
			bounds := r.Bounds()

			atomicMax := func(a *atomic.Uint64, v uint64) {
				for {
					cur := a.Load()
					if v <= cur || a.CompareAndSwap(cur, v) {
						return
					}
				}
			}
			var startedMax, completedMax atomic.Uint64
			var done atomic.Bool
			var wg sync.WaitGroup
			wg.Add(writers)
			for g := 0; g < writers; g++ {
				id := g
				go func() {
					defer wg.Done()
					h, release := r.Acquire()
					defer release()
					for j := 1; j <= perG; j++ {
						// Writers interleave distinct ascending sequences so
						// the running maximum keeps moving.
						v := uint64(j*writers + id)
						atomicMax(&startedMax, v)
						h.Write(v)
						atomicMax(&completedMax, v)
						if j%7 == 0 {
							// Non-monotone mix: a write of an already-dominated
							// value must not move the maximum (and is elided
							// for free by the sharded runtime).
							h.Write(v / 2)
						}
					}
				}()
			}

			var checks int
			var readerWG sync.WaitGroup
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				r.Do(func(h MaxRegisterHandle) {
					check := func() bool {
						vmin := completedMax.Load()
						x := h.Read()
						vmax := startedMax.Load()
						checks++
						if !bounds.ContainsRange(vmin, vmax, x) {
							t.Errorf("read %d outside envelope %+v for any max in [%d, %d]", x, bounds, vmin, vmax)
							return false
						}
						return true
					}
					for !done.Load() {
						if !check() {
							return
						}
					}
					check() // at least one check even if the writers win the race
				})
			}()

			wg.Wait()
			done.Store(true)
			readerWG.Wait()
			if checks == 0 {
				t.Fatal("reader performed no checks")
			}

			// All writer handles are released, so their elided writes are
			// flushed: the envelope holds without the Buffer term.
			flushed := bounds
			flushed.Buffer = 0
			trueMax := uint64(perG*writers + writers - 1)
			r.Do(func(h MaxRegisterHandle) {
				if x := h.Read(); !flushed.Contains(trueMax, x) {
					t.Errorf("quiescent read %d outside flushed envelope %+v of true max %d", x, flushed, trueMax)
				}
			})
		})
	}
}

// histogramSpecs enumerates the histogram family: exact and
// multiplicative accuracies (bounded and unbounded domains) crossed
// with the same shard/batch grid as the other kinds.
func histogramSpecs(procs int, bound uint64) []struct {
	name string
	opts []Option
} {
	members := []struct {
		name string
		opts []Option
	}{
		{"exact-bounded", []Option{WithBound(bound)}},
		{"mult2-unbounded", []Option{WithAccuracy(Multiplicative(2))}},
		{"mult4-bounded", []Option{WithAccuracy(Multiplicative(4)), WithBound(bound)}},
	}
	var out []struct {
		name string
		opts []Option
	}
	for _, m := range members {
		for _, s := range []int{1, 3} {
			for _, b := range []int{1, 8} {
				opts := append([]Option{WithProcs(procs)}, m.opts...)
				opts = append(opts, WithShards(s), WithBatch(b))
				out = append(out, struct {
					name string
					opts []Option
				}{
					name: fmt.Sprintf("%s-s%d-b%d", m.name, s, b),
					opts: opts,
				})
			}
		}
	}
	return out
}

// TestHistogramConformance is the envelope property for the histogram
// family: for EVERY spec combination (accuracy x shards x batch) under
// both a uniform and a skewed value distribution, concurrent queries
// stay inside coarse envelope sanity bounds (the count within the
// regularity window's Buffer slack), and — the strong check — after all
// pooled handles are released (which flushes observation buffers), every
// query answer at quiescence is verified against an exact reference
// histogram of the full observation multiset, per the object's own
// documented deterministic bounds: counts and ranks exact, quantile and
// sum values within pure bucket rounding (factor k, one-sided).
func TestHistogramConformance(t *testing.T) {
	const procs = 5
	const observers = procs - 1 // one slot left over for the checking reader
	perG := 3_000
	if testing.Short() {
		perG = 400
	}
	const bound = uint64(1) << 12
	for _, spec := range histogramSpecs(procs, bound) {
		for _, dist := range []string{"uniform", "skewed"} {
			t.Run(spec.name+"-"+dist, func(t *testing.T) {
				h, err := NewHistogram(spec.opts...)
				if err != nil {
					t.Fatal(err)
				}
				k := h.K()
				bounds := h.Bounds()
				if bounds.Mult != k || bounds.Add != 0 {
					t.Fatalf("Bounds = %+v, want Mult %d and Add 0", bounds, k)
				}
				// Count lives in the rank domain: exact up to Buffer.
				countBounds := Bounds{Mult: 1, Buffer: bounds.Buffer}

				var started, completed atomic.Uint64
				var done atomic.Bool
				observed := make([][]uint64, observers)
				var wg sync.WaitGroup
				wg.Add(observers)
				for g := 0; g < observers; g++ {
					g := g
					rng := rand.New(rand.NewSource(int64(g)*31 + 7))
					go func() {
						defer wg.Done()
						vals := make([]uint64, 0, perG)
						hh, release := h.Acquire()
						defer release() // flushes the observation buffer
						for j := 0; j < perG; j++ {
							var v uint64
							if dist == "uniform" {
								v = rng.Uint64() % bound
							} else {
								v = uint64(rng.ExpFloat64() * 250)
								if v >= bound {
									v = bound - 1
								}
							}
							started.Add(1)
							hh.Observe(v)
							completed.Add(1)
							vals = append(vals, v)
						}
						observed[g] = vals
					}()
				}

				var checks int
				var readerWG sync.WaitGroup
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					h.Do(func(hh HistogramHandle) {
						check := func() bool {
							vmin := completed.Load()
							c := hh.Count()
							vmax := started.Load()
							checks++
							if !countBounds.ContainsRange(vmin, vmax, c) {
								t.Errorf("count %d outside envelope %+v for any total in [%d, %d]", c, countBounds, vmin, vmax)
								return false
							}
							if r := hh.Rank(bound); r > started.Load() {
								t.Errorf("Rank(bound) = %d exceeds observations started %d", r, started.Load())
								return false
							}
							if cdf := hh.CDF(bound / 2); cdf < 0 || cdf > 1 {
								t.Errorf("CDF = %v outside [0, 1]", cdf)
								return false
							}
							return true
						}
						for !done.Load() {
							if !check() {
								return
							}
						}
						check() // at least one check even if the observers win the race
					})
				}()

				wg.Wait()
				done.Store(true)
				readerWG.Wait()
				if checks == 0 {
					t.Fatal("reader performed no checks")
				}

				// All observer handles are released, so their buffers are
				// flushed: verify every query against the exact reference,
				// with only bucket rounding in play.
				var all []uint64
				for _, vals := range observed {
					all = append(all, vals...)
				}
				ref := planetest.NewExactRef(all)
				total := uint64(len(all))
				h.Do(func(hh HistogramHandle) {
					if c := hh.Count(); c != total {
						t.Errorf("quiescent count = %d, want exactly %d", c, total)
					}
					if s := hh.Sum(); s > ref.Sum() || satmath.Mul(s, k) < ref.Sum() {
						t.Errorf("quiescent sum = %d outside [%d/%d, %d]", s, ref.Sum(), k, ref.Sum())
					}
					for _, v := range []uint64{0, 1, 100, bound / 2, bound - 1} {
						r := hh.Rank(v)
						// Exact up to bucket rounding: at least A(v), at most
						// A(k*v) (the bucket top is below k*v).
						lo, hi := ref.Rank(v), ref.Rank(satmath.Mul(v, k))
						if r < lo || r > hi {
							t.Errorf("quiescent Rank(%d) = %d outside [A(v), A(k*v)] = [%d, %d]", v, r, lo, hi)
						}
						if cdf, want := hh.CDF(v), float64(r)/float64(total); cdf != want {
							t.Errorf("quiescent CDF(%d) = %v, want Rank/Count = %v", v, cdf, want)
						}
					}
					for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
						got := hh.Quantile(q)
						y := ref.At(histogram.TargetRank(q, total))
						if got > y {
							t.Errorf("quiescent Quantile(%v) = %d overstates the rank value %d", q, got, y)
						} else if k == 1 && got != y {
							t.Errorf("quiescent exact Quantile(%v) = %d, want %d", q, got, y)
						} else if k > 1 && y > 0 && satmath.Mul(got, k) <= y {
							t.Errorf("quiescent Quantile(%v) = %d understates %d by more than factor %d", q, got, y, k)
						}
					}
				})
			})
		}
	}
}

// snapshotSpecs enumerates the snapshot family: the exact backend
// crossed with the same shard/batch grid as the other kinds.
func snapshotSpecs(procs int) []struct {
	name string
	opts []Option
} {
	var out []struct {
		name string
		opts []Option
	}
	for _, s := range []int{1, 3} {
		for _, b := range []int{1, 8} {
			out = append(out, struct {
				name string
				opts []Option
			}{
				name: fmt.Sprintf("exact-s%d-b%d", s, b),
				opts: []Option{WithProcs(procs), WithShards(s), WithBatch(b)},
			})
		}
	}
	return out
}

// TestSnapshotConformance is the envelope property for the snapshot
// family: for EVERY spec combination, under both monotone and mixed
// (non-monotone) per-component write workloads, every concurrently
// scanned component must be a valid response for some true component
// value inside its regularity window (updates completed before the scan
// started .. updates started before it returned), per the object's own
// reported Bounds — and after all pooled handles are released (which
// flushes elided component updates), a quiescent scan must return every
// component exactly.
func TestSnapshotConformance(t *testing.T) {
	const procs = 5
	const writers = procs - 1 // one slot left over for the checking reader
	perG := 3_000
	if testing.Short() {
		perG = 400
	}
	for _, spec := range snapshotSpecs(procs) {
		for _, mixed := range []bool{false, true} {
			workload := "monotone"
			if mixed {
				workload = "mixed"
			}
			t.Run(spec.name+"-"+workload, func(t *testing.T) {
				s, err := NewSnapshot(spec.opts...)
				if err != nil {
					t.Fatal(err)
				}
				bounds := s.Bounds()

				// Per-component op progress, indexed by component: the
				// single writer of component c stores op j in started[c]
				// before Update and completed[c] after.
				started := make([]atomic.Uint64, procs)
				completed := make([]atomic.Uint64, procs)
				var done atomic.Bool
				var wg sync.WaitGroup
				wg.Add(writers)
				for g := 0; g < writers; g++ {
					go func() {
						defer wg.Done()
						h, release := s.Acquire()
						defer release() // flushes any elided component update
						c := h.Component()
						for j := 1; j <= perG; j++ {
							started[c].Store(uint64(j))
							h.Update(planetest.SeqValue(uint64(j), mixed))
							completed[c].Store(uint64(j))
						}
					}()
				}

				var checks int
				var readerWG sync.WaitGroup
				readerWG.Add(1)
				go func() {
					defer readerWG.Done()
					s.Do(func(h SnapshotHandle) {
						reader := h.Component()
						check := func() bool {
							a := make([]uint64, procs)
							for c := range a {
								a[c] = completed[c].Load()
							}
							view := h.Scan()
							if len(view) != procs {
								t.Errorf("scan returned %d components, want %d", len(view), procs)
								return false
							}
							ok := true
							for c := 0; c < procs; c++ {
								if c == reader {
									continue // the reader's own component stays 0
								}
								b := started[c].Load()
								vmin, vmax := planetest.Window(a[c], b, mixed)
								checks++
								if !bounds.ContainsRange(vmin, vmax, view[c]) {
									t.Errorf("component %d read %d outside envelope %+v for any value in [%d, %d]", c, view[c], bounds, vmin, vmax)
									ok = false
								}
							}
							return ok
						}
						for !done.Load() {
							if !check() {
								return
							}
						}
						check() // at least one check even if the writers win the race
					})
				}()

				wg.Wait()
				done.Store(true)
				readerWG.Wait()
				if checks == 0 {
					t.Fatal("reader performed no checks")
				}

				// All writer handles are released, so their elided updates
				// are flushed: the exact backend must report every written
				// component exactly.
				final := planetest.SeqValue(uint64(perG), mixed)
				s.Do(func(h SnapshotHandle) {
					view := h.Scan()
					wrote := 0
					for c, v := range view {
						if v == 0 {
							continue // the reader slots' components were never written
						}
						wrote++
						if v != final {
							t.Errorf("quiescent component %d = %d, want exactly %d", c, v, final)
						}
					}
					if wrote != writers {
						t.Errorf("quiescent scan shows %d written components, want %d", wrote, writers)
					}
				})
			})
		}
	}
}

// TestSelfMetricsConformance is the round-trip contract of the
// self-instrumentation meters (PR 10): SelfMetrics registers them as
// ordinary registry objects, so they must behave like one everywhere —
// appear in Snapshot with self-consistent (Value, Bounds) pairs while
// instrumented objects churn concurrently, refuse the typed getters
// (a meter is not a user counter), survive Close without deadlock, and
// keep the registration idempotent per domain and conflicting across
// domains.
func TestSelfMetricsConformance(t *testing.T) {
	const procs = 4
	reg := NewRegistry()
	tel := NewTelemetry()
	c, err := reg.Counter("work.done",
		WithProcs(procs), WithAccuracy(Multiplicative(3)),
		WithShards(2), WithBatch(8), WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	hg, err := reg.HistogramObject("work.latency",
		WithProcs(procs), WithAccuracy(Multiplicative(2)), WithBound(1<<12),
		WithShards(2), WithBatch(8), WithTelemetry(tel))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SelfMetrics(tel); err != nil {
		t.Fatal(err)
	}

	// A meter name is not a user object: every typed getter must refuse
	// it (the meter spec's zero procs is unreachable from user options),
	// and re-registration must not have disturbed the roster.
	if _, err := reg.Counter("approx_runtime_flushes", WithProcs(1), WithAccuracy(Exact())); err == nil {
		t.Error("Counter(approx_runtime_flushes) succeeded, want spec-conflict error")
	}
	if _, err := reg.MaxRegister("approx_runtime_refresh_ns_peak", WithProcs(1), WithBound(1<<10)); err == nil {
		t.Error("MaxRegister(approx_runtime_refresh_ns_peak) succeeded, want spec-conflict error")
	}

	// Churn while snapshotting: pooled leases (pool-acquire events) and
	// batched increments (flush events) from several goroutines, with
	// concurrent full-registry snapshots reading the meters mid-flight.
	var wg sync.WaitGroup
	var done atomic.Bool
	for g := 0; g < procs-1; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h, release := c.Acquire()
				for j := 0; j < 20; j++ {
					h.Inc()
				}
				release()
				hh, hrelease := hg.Acquire()
				hh.Observe(uint64(i) % (1 << 12))
				hrelease()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			for _, s := range reg.Snapshot() {
				if s.Bounds.Mult == 0 {
					t.Errorf("snapshot %q has zero Mult mid-churn", s.Name)
					return
				}
			}
		}
	}()

	// One guaranteed mid-churn snapshot from this goroutine too, then
	// stop the snapshotter and wait everything out.
	if len(reg.Snapshot()) == 0 {
		t.Fatal("mid-churn Snapshot returned no entries")
	}
	done.Store(true)
	wg.Wait()

	// Quiescent round-trip: every meter appears exactly once, with the
	// advertised envelope shape and sane values.
	snaps := map[string]ObjectSnapshot{}
	for _, s := range reg.Snapshot() {
		if _, dup := snaps[s.Name]; dup {
			t.Fatalf("duplicate snapshot entry %q", s.Name)
		}
		snaps[s.Name] = s
	}
	for _, name := range selfMetricNames {
		s, ok := snaps[name]
		if !ok {
			t.Errorf("meter %q missing from Snapshot", name)
			continue
		}
		if s.Bounds.Mult != 1 {
			t.Errorf("meter %q: Mult = %d, want 1 (meters are exact or buffer-lagged, never multiplicative)", name, s.Bounds.Mult)
		}
		if s.Histogram != nil {
			t.Errorf("meter %q exports histogram detail, want nil", name)
		}
		batched := name == "approx_runtime_buffer_hits" || name == "approx_runtime_elided_writes"
		if batched && s.Bounds.Buffer == 0 {
			t.Errorf("meter %q: Buffer = 0, want the lag bound of the batched accumulators", name)
		}
		if !batched && s.Bounds.Buffer != 0 {
			t.Errorf("meter %q: Buffer = %d, want 0 (exact meter)", name, s.Bounds.Buffer)
		}
	}
	// The churn above must have registered: pooled leases and buffer
	// flushes both ran in the thousands.
	if v := snaps["approx_runtime_pool_acquires"].Value; v == 0 {
		t.Error("approx_runtime_pool_acquires = 0 after pooled churn")
	}
	if v := snaps["approx_runtime_flushes"].Value; v == 0 {
		t.Error("approx_runtime_flushes = 0 after batched churn")
	}
	if v := snaps["approx_runtime_resident_bytes"].Value; v == 0 {
		t.Error("approx_runtime_resident_bytes = 0 with two live instrumented objects")
	}

	// Idempotence and conflicts: same domain is a no-op, a different
	// domain is an error, and a meter name squatted by a user object
	// fails the whole batch atomically.
	if err := reg.SelfMetrics(tel); err != nil {
		t.Errorf("second SelfMetrics(same domain): %v, want nil", err)
	}
	if err := reg.SelfMetrics(NewTelemetry()); err == nil {
		t.Error("SelfMetrics(different domain) succeeded, want conflict error")
	}
	if err := reg.SelfMetrics(nil); err == nil {
		t.Error("SelfMetrics(nil) succeeded, want error")
	}
	squatted := NewRegistry()
	if _, err := squatted.Counter("approx_runtime_flushes", WithProcs(1), WithAccuracy(Exact())); err != nil {
		t.Fatal(err)
	}
	if err := squatted.SelfMetrics(tel); err == nil {
		t.Error("SelfMetrics over a squatted meter name succeeded, want error")
	}
	if got := len(squatted.Names()); got != 1 {
		t.Errorf("failed SelfMetrics left %d entries behind, want 1 (atomic batch)", got)
	}

	// Close must terminate without deadlock (meters are no-op closers;
	// the instrumented objects stop their background resources), and the
	// registry keeps answering with the frozen state.
	regClosed := make(chan struct{})
	go func() {
		reg.Close()
		close(regClosed)
	}()
	select {
	case <-regClosed:
	case <-time.After(10 * time.Second):
		t.Fatal("Registry.Close deadlocked with self-metrics registered")
	}
	after := reg.Snapshot()
	if len(after) != len(snaps) {
		t.Errorf("post-Close Snapshot has %d entries, want %d", len(after), len(snaps))
	}
	reg.Close() // idempotent
}
