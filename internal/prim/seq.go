package prim

import (
	"math/bits"
	"sync/atomic"
)

// tasSeqLevels bounds the number of doubling levels in a TASSeq. Level ℓ
// holds 2^ℓ bits covering indices [2^ℓ-1, 2^(ℓ+1)-1), so 64 levels cover
// every uint64 index that can arise in practice.
const tasSeqLevels = 64

// TASSeq is an unbounded sequence of test&set bits switch_0, switch_1, ...,
// all initially 0, as required by Algorithm 1 of the paper. Storage is
// allocated lazily in doubling levels published with a CAS; allocation is
// local memory management, not a step of the model, so the step complexity
// of TestAndSet and Read is exactly one primitive application.
//
// Each bit behaves exactly like a TAS base object: test&set sets it to 1 and
// returns the previous value; read returns the current value. Reading an
// index whose level has not been allocated returns 0 (the initial value)
// while still counting one step, as the model demands.
type TASSeq struct {
	base   ObjID
	gate   Gate
	res    *atomic.Uint64 // the factory's resident-object counter
	levels [tasSeqLevels]atomic.Pointer[[]atomic.Uint32]
}

// TASSeq creates a fresh unbounded switch sequence. It reserves a contiguous
// block of 2^32 object IDs so every switch has a stable identifier across
// replays; the switches count as resident (Factory.Resident) level by
// level as their storage materializes.
func (f *Factory) TASSeq() *TASSeq {
	return &TASSeq{base: f.allocBlock(1 << 32), gate: f.gate, res: &f.resident}
}

// level returns the level index and offset within it for bit index i.
// Level ℓ starts at global index 2^ℓ - 1 and holds 2^ℓ bits.
func tasSeqSlot(i uint64) (level int, off uint64) {
	// Index i+1 has bit-length b => level b-1, offset i+1-2^(b-1).
	b := bits.Len64(i + 1)
	level = b - 1
	off = (i + 1) - (uint64(1) << uint(level))
	return level, off
}

// slot returns the atomic cell for bit i, allocating its level if needed.
func (s *TASSeq) slot(i uint64) *atomic.Uint32 {
	level, off := tasSeqSlot(i)
	lp := s.levels[level].Load()
	if lp == nil {
		fresh := make([]atomic.Uint32, uint64(1)<<uint(level))
		if s.levels[level].CompareAndSwap(nil, &fresh) {
			lp = &fresh
			s.res.Add(uint64(1) << uint(level))
		} else {
			lp = s.levels[level].Load()
		}
	}
	return &(*lp)[off]
}

// peek returns the cell for bit i if its level is allocated, else nil.
func (s *TASSeq) peek(i uint64) *atomic.Uint32 {
	level, off := tasSeqSlot(i)
	lp := s.levels[level].Load()
	if lp == nil {
		return nil
	}
	return &(*lp)[off]
}

// objID returns the stable base-object identifier of switch i.
func (s *TASSeq) objID(i uint64) ObjID { return s.base + ObjID(i) }

// TestAndSet applies test&set to switch_i, returning true iff the caller
// changed it from 0 to 1.
func (s *TASSeq) TestAndSet(p *Proc, i uint64) bool {
	cell := s.slot(i)
	p.enter()
	old := cell.Swap(1)
	p.exit(OpTAS, s.objID(i), uint64(old))
	return old == 0
}

// Read applies a read primitive to switch_i. The cell is resolved inside
// the enter/exit window: a gated process may park at the gate before the
// switch's level is allocated, and must still observe values written while
// it waited.
func (s *TASSeq) Read(p *Proc, i uint64) uint64 {
	p.enter()
	var v uint64
	if cell := s.peek(i); cell != nil {
		v = uint64(cell.Load())
	}
	p.exit(OpRead, s.objID(i), v)
	return v
}

// Set reports whether switch_i is 1, applying one read primitive.
func (s *TASSeq) Set(p *Proc, i uint64) bool { return s.Read(p, i) == 1 }

// Peek returns switch_i without taking a model step (diagnostic; see
// Reg.Peek).
func (s *TASSeq) Peek(i uint64) uint64 {
	if cell := s.peek(i); cell != nil {
		return uint64(cell.Load())
	}
	return 0
}

// PairReg is a register holding a pair of 32-bit values that is read and
// written atomically, used for Algorithm 1's helping array H[i] = (val, sn).
// The pair is packed into a single uint64 base object so one step reads or
// writes both components, as the paper's pseudocode assumes.
type PairReg struct {
	reg Reg
}

// PairReg creates a fresh pair register initialized to (0, 0).
func (f *Factory) PairReg() *PairReg {
	return &PairReg{reg: Reg{id: f.allocID()}}
}

// PairRegs creates a slice of m fresh pair registers.
func (f *Factory) PairRegs(m int) []*PairReg {
	ps := make([]*PairReg, m)
	for i := range ps {
		ps[i] = f.PairReg()
	}
	return ps
}

// PackPair packs (val, sn) into the uint64 wire format of a PairReg.
func PackPair(val, sn uint32) uint64 { return uint64(val)<<32 | uint64(sn) }

// UnpackPair is the inverse of PackPair.
func UnpackPair(x uint64) (val, sn uint32) {
	return uint32(x >> 32), uint32(x)
}

// Read atomically reads the pair.
func (r *PairReg) Read(p *Proc) (val, sn uint32) {
	return UnpackPair(r.reg.Read(p))
}

// Write atomically writes the pair.
func (r *PairReg) Write(p *Proc, val, sn uint32) {
	r.reg.Write(p, PackPair(val, sn))
}

// ID returns the base-object identifier.
func (r *PairReg) ID() ObjID { return r.reg.id }
