package prim

import (
	"unsafe"

	"approxobj/internal/telemetry"
)

// This file is the arena layer of the factory: row constructors that
// carve a known-shape row of base objects out of ONE backing allocation
// instead of one heap object per register. Two layouts:
//
//   - Padded rows (RegRow, TASRow, CASRegRow, RefRegRow, PairRegRow):
//     each element is padded to falseSharingStride bytes, so every
//     element owns its cache line(s) outright. This is the layout for
//     rows indexed by writer slot — counter collect/additive rows,
//     snapshot component registers, Morris exponent registers,
//     Algorithm 1's helping array — where adjacent elements belong to
//     DIFFERENT single writers and individually-allocated 16-byte
//     registers false-share lines across writers.
//
//   - Dense rows (RegRowDense): elements are packed at their natural
//     size with guard padding only at the row's ends, so the row is
//     isolated from neighboring heap objects but shares lines
//     internally. This is the layout for rows owned by ONE writer —
//     a histogram writer's per-process bucket vector — where internal
//     sharing is free (single writer) and per-element padding would
//     multiply the footprint by 8x (ruinous at 2^20 buckets).
//
// The stride is 128 bytes — two 64-byte lines — for two reasons: the
// adjacent-line prefetcher on x86 pulls line pairs, so 64-byte spacing
// still ping-pongs under write sharing; and Go does not guarantee
// 64-byte alignment of allocations, while a 128-byte stride keeps two
// 16-byte element heads from ever landing on one line regardless of
// where the backing array starts.
//
// ID assignment and Resident() accounting are element-wise through
// allocID, identical to the one-object-per-allocation constructors, so
// replay determinism (internal/sim) and the paper's space measure see
// no difference between f.Regs(m) and f.RegRow(m).

// falseSharingStride is the padded-row element stride: two 64-byte
// cache lines (see the file comment for why not one).
const falseSharingStride = 128

type paddedReg struct {
	r Reg
	_ [falseSharingStride - unsafe.Sizeof(Reg{})]byte
}

type paddedTAS struct {
	t TAS
	_ [falseSharingStride - unsafe.Sizeof(TAS{})]byte
}

type paddedCASReg struct {
	r CASReg
	_ [falseSharingStride - unsafe.Sizeof(CASReg{})]byte
}

type paddedRefReg struct {
	r RefReg
	_ [falseSharingStride - unsafe.Sizeof(RefReg{})]byte
}

type paddedPairReg struct {
	r PairReg
	_ [falseSharingStride - unsafe.Sizeof(PairReg{})]byte
}

// RegRow creates m fresh registers carved out of one padded arena: the
// row costs one allocation and element i's hot word is at least a
// falseSharingStride away from element i±1's, so per-slot writers never
// false-share. Drop-in for Regs(m) where the row shape is known up
// front; IDs and Resident() accounting are identical.
func (f *Factory) RegRow(m int) []*Reg {
	f.tel.Inc(telemetry.EvArenaRow, 0)
	cells := make([]paddedReg, m)
	rs := make([]*Reg, m)
	for i := range cells {
		cells[i].r.id = f.allocID()
		rs[i] = &cells[i].r
	}
	return rs
}

// TASRow creates m fresh test&set bits in one padded arena (see RegRow).
func (f *Factory) TASRow(m int) []*TAS {
	f.tel.Inc(telemetry.EvArenaRow, 0)
	cells := make([]paddedTAS, m)
	ts := make([]*TAS, m)
	for i := range cells {
		cells[i].t.id = f.allocID()
		ts[i] = &cells[i].t
	}
	return ts
}

// CASRegRow creates m fresh CAS registers in one padded arena (see
// RegRow).
func (f *Factory) CASRegRow(m int) []*CASReg {
	f.tel.Inc(telemetry.EvArenaRow, 0)
	cells := make([]paddedCASReg, m)
	rs := make([]*CASReg, m)
	for i := range cells {
		cells[i].r.id = f.allocID()
		rs[i] = &cells[i].r
	}
	return rs
}

// PaddedCASReg creates one CAS register owning its cache lines — a
// 1-element CASRegRow. This is the layout for standalone hot registers
// (the Morris exponent register: every shard's whole state is one CAS
// word, so two shards' registers allocated back-to-back would serialize
// on one line).
func (f *Factory) PaddedCASReg() *CASReg {
	return f.CASRegRow(1)[0]
}

// RefRegRow creates m fresh reference registers in one padded arena
// (see RegRow). RefReg holds an atomic.Value, so the arena is a typed
// array — the collector sees the stored pointers exactly as with
// individual allocations.
func (f *Factory) RefRegRow(m int) []*RefReg {
	f.tel.Inc(telemetry.EvArenaRow, 0)
	cells := make([]paddedRefReg, m)
	rs := make([]*RefReg, m)
	for i := range cells {
		cells[i].r.id = f.allocID()
		rs[i] = &cells[i].r
	}
	return rs
}

// PairRegRow creates m fresh pair registers in one padded arena (see
// RegRow).
func (f *Factory) PairRegRow(m int) []*PairReg {
	f.tel.Inc(telemetry.EvArenaRow, 0)
	cells := make([]paddedPairReg, m)
	ps := make([]*PairReg, m)
	for i := range cells {
		cells[i].r.reg.id = f.allocID()
		ps[i] = &cells[i].r
	}
	return ps
}

// regGuard is the number of dense-row guard elements covering one
// falseSharingStride at each end of the row.
const regGuard = (falseSharingStride + int(unsafe.Sizeof(Reg{})) - 1) / int(unsafe.Sizeof(Reg{}))

// RegRowDense creates m fresh registers packed at natural size in one
// allocation, with one stride of never-touched guard registers at each
// end: the row shares no cache line with any neighboring heap object,
// but elements share lines with each other. Use for large rows owned by
// a single writer (per-process histogram bucket vectors), where
// internal sharing costs nothing and padded rows would be 8x the
// memory. Guard cells hold no IDs and are not resident — accounting
// covers exactly the m returned registers.
func (f *Factory) RegRowDense(m int) []*Reg {
	f.tel.Inc(telemetry.EvArenaRow, 0)
	cells := make([]Reg, m+2*regGuard)
	rs := make([]*Reg, m)
	for i := range rs {
		cells[regGuard+i].id = f.allocID()
		rs[i] = &cells[regGuard+i]
	}
	return rs
}
