// Package prim provides the shared-memory primitive layer used by every
// algorithm in this repository.
//
// The asynchronous shared-memory model of the paper is made explicit: a
// process applies at most one primitive (read, write, test&set) to a base
// object per step. Every primitive application in this package goes through
// a *Proc, which counts steps and, when a Gate is attached, defers to a
// deterministic scheduler (see internal/sim) before and after the memory
// effect. With a nil Gate the primitives compile down to plain sync/atomic
// operations plus a local step counter, so the same algorithm bodies run
// both as production concurrent objects and as model-faithful simulations.
package prim

import (
	"sync/atomic"

	"approxobj/internal/telemetry"
)

// Op identifies the primitive applied by a step. Ops start at 1 so the zero
// value is invalid.
type Op int

// Primitive kinds.
const (
	OpRead Op = iota + 1
	OpWrite
	OpTAS
)

// String returns the conventional name of the primitive.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTAS:
		return "test&set"
	default:
		return "invalid"
	}
}

// Trivial reports whether the primitive can never change the value of the
// base object it is applied to. Reads are trivial; writes and test&set are
// nontrivial (test&set overwrites itself, making {write, test&set}
// historyless in the paper's sense).
func (o Op) Trivial() bool { return o == OpRead }

// Event describes one step: process p applied primitive Op to base object
// Obj, observing or storing Val. For reads and test&set, Val is the value
// read (the previous value for TAS); for writes it is the value written.
type Event struct {
	Proc int
	Op   Op
	Obj  ObjID
	Val  uint64
}

// ObjID identifies a base object within a Factory. IDs are assigned in
// creation order, so systems rebuilt in the same order get identical IDs;
// internal/sim relies on this for execution replay.
type ObjID uint64

// Gate mediates steps for simulated executions. Enter blocks until the
// scheduler grants the process its next step; Exit reports the completed
// step so the machine can record the trace and propagate awareness. One
// step may touch several base objects (arity-q conditionals like KCAS), so
// Exit carries a batch of events — exactly one Exit call per Enter. A nil
// Gate (production mode) skips both calls.
//
// The memory effect of the step happens between Enter and Exit, while the
// issuing process is the only one running (the simulation machine is
// lock-step), so effects are atomic with respect to other simulated
// processes.
type Gate interface {
	Enter(p *Proc)
	Exit(p *Proc, evs []Event)
}

// Proc represents a process of the model. All primitive applications are
// issued through a Proc so that steps can be counted and scheduled. A Proc
// must only be used by a single goroutine at a time; step counts may be read
// by other goroutines only after the owning goroutine is known to have
// stopped (e.g. after a WaitGroup join).
type Proc struct {
	id    int
	steps uint64
	gate  Gate
}

// NewProc returns a production-mode process handle (no gate).
func NewProc(id int) *Proc { return &Proc{id: id} }

// NewGatedProc returns a process handle whose steps are mediated by gate.
func NewGatedProc(id int, gate Gate) *Proc { return &Proc{id: id, gate: gate} }

// ID returns the process identifier, in [0, n).
func (p *Proc) ID() int { return p.id }

// Steps returns the number of primitive applications issued so far.
func (p *Proc) Steps() uint64 { return p.steps }

// ResetSteps zeroes the step counter (used between measurement phases).
func (p *Proc) ResetSteps() { p.steps = 0 }

func (p *Proc) enter() {
	if p.gate != nil {
		p.gate.Enter(p)
	}
}

func (p *Proc) exit(op Op, obj ObjID, val uint64) {
	p.steps++
	if p.gate != nil {
		p.exitGated(op, obj, val)
	}
}

// exitGated is the simulation-mode tail of exit, kept out of line so the
// production path (nil gate: one increment, one predictable-not-taken
// branch) stays within the inlining budget of every primitive — the
// event-batch literal here would otherwise price exit, and with it
// Reg.Read/Write and TAS.TestAndSet, out of inlining at every call site.
// Step counts are identical on both paths: exit increments before
// branching.
func (p *Proc) exitGated(op Op, obj ObjID, val uint64) {
	p.gate.Exit(p, []Event{{Proc: p.id, Op: op, Obj: obj, Val: val}})
}

// Reg is a base object supporting atomic read and write of a uint64.
type Reg struct {
	id ObjID
	v  atomic.Uint64
}

// Read applies a read primitive and returns the register's value. The
// production path (nil gate) is inlinable: one branch, one atomic load,
// one step-count increment.
func (r *Reg) Read(p *Proc) uint64 {
	if p.gate == nil {
		p.steps++
		return r.v.Load()
	}
	return r.readGated(p)
}

func (r *Reg) readGated(p *Proc) uint64 {
	p.gate.Enter(p)
	v := r.v.Load()
	p.steps++
	p.exitGated(OpRead, r.id, v)
	return v
}

// Write applies a write primitive, storing v. The production path (nil
// gate) is inlinable, like Read's.
func (r *Reg) Write(p *Proc, v uint64) {
	if p.gate == nil {
		p.steps++
		r.v.Store(v)
		return
	}
	r.writeGated(p, v)
}

func (r *Reg) writeGated(p *Proc, v uint64) {
	p.gate.Enter(p)
	r.v.Store(v)
	p.steps++
	p.exitGated(OpWrite, r.id, v)
}

// Peek returns the register's value without taking a model step. It is a
// diagnostic for drivers and tests inspecting final states; algorithms must
// use Read.
func (r *Reg) Peek() uint64 { return r.v.Load() }

// ID returns the base-object identifier.
func (r *Reg) ID() ObjID { return r.id }

// TAS is a 1-bit base object supporting test&set and read primitives, as
// required by Algorithm 1's switches. test&set sets the bit and returns its
// previous value; it is historyless (it overwrites itself).
type TAS struct {
	id ObjID
	v  atomic.Uint32
}

// TestAndSet sets the bit to 1 and reports whether this call changed it
// (i.e. returns true iff the previous value was 0, meaning the caller "won"
// the bit). The production path (nil gate) is inlinable, like Reg.Read's.
func (t *TAS) TestAndSet(p *Proc) bool {
	if p.gate == nil {
		p.steps++
		return t.v.Swap(1) == 0
	}
	return t.tasGated(p)
}

func (t *TAS) tasGated(p *Proc) bool {
	p.gate.Enter(p)
	old := t.v.Swap(1)
	p.steps++
	p.exitGated(OpTAS, t.id, uint64(old))
	return old == 0
}

// Read applies a read primitive and returns the bit.
func (t *TAS) Read(p *Proc) uint64 {
	if p.gate == nil {
		p.steps++
		return uint64(t.v.Load())
	}
	return t.readGated(p)
}

func (t *TAS) readGated(p *Proc) uint64 {
	p.gate.Enter(p)
	v := uint64(t.v.Load())
	p.steps++
	p.exitGated(OpRead, t.id, v)
	return v
}

// Set reports whether the bit is 1, applying one read primitive.
func (t *TAS) Set(p *Proc) bool { return t.Read(p) == 1 }

// Peek returns the bit without taking a model step (diagnostic; see
// Reg.Peek).
func (t *TAS) Peek() uint64 { return uint64(t.v.Load()) }

// ID returns the base-object identifier.
func (t *TAS) ID() ObjID { return t.id }

// Factory creates base objects with deterministic identifiers: IDs follow
// creation order, so a system rebuilt by the same code gets the same IDs —
// internal/sim relies on this for replay. Lazily-materialized structures
// (tree nodes, switch pages) may also allocate during execution; allocation
// is atomic, so production-mode races are safe, and simulated executions
// stay deterministic because the machine is lock-step.
type Factory struct {
	next atomic.Uint64
	// resident counts base objects with materialized storage: every
	// eagerly allocated object (Reg, TAS, CASReg, ...) at creation, plus
	// lazily allocated cells (TASSeq levels) as they materialize. Unlike
	// next it excludes reserved-but-untouched ID blocks, so it is the
	// space measure of the paper's model: how many base objects the
	// execution actually holds.
	resident atomic.Uint64
	gate     Gate
	procs    []*Proc

	// tel receives arena-allocation events when the owning plane is
	// instrumented (nil otherwise; every telemetry.Sink method is
	// nil-receiver-safe, so allocation paths report unconditionally —
	// allocation is never a hot path, unlike the step primitives above,
	// which stay untouched).
	tel *telemetry.Sink
}

// NewFactory returns a production-mode factory for an n-process system.
func NewFactory(n int) *Factory { return newFactory(n, nil) }

// NewGatedFactory returns a factory whose processes are mediated by gate.
func NewGatedFactory(n int, gate Gate) *Factory { return newFactory(n, gate) }

func newFactory(n int, gate Gate) *Factory {
	f := &Factory{gate: gate, procs: make([]*Proc, n)}
	for i := range f.procs {
		f.procs[i] = &Proc{id: i, gate: gate}
	}
	return f
}

// Instrument attaches a telemetry sink to the factory's allocation
// paths (arena row constructors report telemetry.EvArenaRow). A nil
// sink disables instrumentation; attach before objects are built so
// construction-time rows are counted.
func (f *Factory) Instrument(s *telemetry.Sink) { f.tel = s }

// N returns the number of processes the system was declared with.
func (f *Factory) N() int { return len(f.procs) }

// Proc returns the process handle for id. Handles are cached: every call
// with the same id returns the same *Proc, so step counts accumulate per
// process no matter how callers obtain the handle.
func (f *Factory) Proc(id int) *Proc {
	if id < 0 || id >= len(f.procs) {
		panic("prim: proc id out of range")
	}
	return f.procs[id]
}

// Procs returns the handles of all n processes.
func (f *Factory) Procs() []*Proc {
	return append([]*Proc(nil), f.procs...)
}

func (f *Factory) allocID() ObjID {
	f.resident.Add(1)
	return ObjID(f.next.Add(1) - 1)
}

// allocBlock reserves a contiguous block of size IDs, returning its base.
// Reservation is ID-space bookkeeping only; the block's cells count as
// resident when (and if) their storage materializes.
func (f *Factory) allocBlock(size uint64) ObjID {
	return ObjID(f.next.Add(size) - size)
}

// Objects returns the number of base-object IDs allocated so far (including
// reserved blocks).
func (f *Factory) Objects() uint64 { return f.next.Load() }

// Resident returns the number of base objects with materialized storage —
// the execution's space cost in the paper's model. It grows as lazily
// allocated structures (TASSeq levels) materialize, so unbounded
// constructions report what they hold, not what they reserve.
func (f *Factory) Resident() uint64 { return f.resident.Load() }

// Reg creates a fresh read/write register initialized to zero.
func (f *Factory) Reg() *Reg { return &Reg{id: f.allocID()} }

// Regs creates a slice of m fresh registers.
func (f *Factory) Regs(m int) []*Reg {
	rs := make([]*Reg, m)
	for i := range rs {
		rs[i] = f.Reg()
	}
	return rs
}

// TAS creates a fresh test&set bit initialized to zero.
func (f *Factory) TAS() *TAS { return &TAS{id: f.allocID()} }

// TASs creates a slice of m fresh test&set bits.
func (f *Factory) TASs(m int) []*TAS {
	ts := make([]*TAS, m)
	for i := range ts {
		ts[i] = f.TAS()
	}
	return ts
}
