package prim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRegReadWrite(t *testing.T) {
	f := NewFactory(2)
	p := f.Proc(0)
	r := f.Reg()

	if got := r.Read(p); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	r.Write(p, 42)
	if got := r.Read(p); got != 42 {
		t.Fatalf("Read after Write(42) = %d, want 42", got)
	}
	r.Write(p, 7)
	if got := r.Read(p); got != 7 {
		t.Fatalf("Read after Write(7) = %d, want 7", got)
	}
}

func TestStepCounting(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	r := f.Reg()
	tas := f.TAS()

	r.Write(p, 1)     // 1
	r.Read(p)         // 2
	tas.TestAndSet(p) // 3
	tas.Read(p)       // 4
	if got := p.Steps(); got != 4 {
		t.Fatalf("Steps = %d, want 4", got)
	}
	p.ResetSteps()
	if got := p.Steps(); got != 0 {
		t.Fatalf("Steps after reset = %d, want 0", got)
	}
}

func TestTASSemantics(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	tas := f.TAS()

	if tas.Set(p) {
		t.Fatal("fresh TAS bit reads 1, want 0")
	}
	if !tas.TestAndSet(p) {
		t.Fatal("first TestAndSet lost, want win")
	}
	if tas.TestAndSet(p) {
		t.Fatal("second TestAndSet won, want lose")
	}
	if !tas.Set(p) {
		t.Fatal("TAS bit reads 0 after set, want 1")
	}
}

func TestTASOnlyOneWinner(t *testing.T) {
	const procs = 16
	f := NewFactory(procs)
	tas := f.TAS()

	var wg sync.WaitGroup
	wins := make([]bool, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wins[i] = tas.TestAndSet(f.Proc(i))
		}(i)
	}
	wg.Wait()

	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("TestAndSet had %d winners, want exactly 1", winners)
	}
}

func TestTASSeqIndependentBits(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	s := f.TASSeq()

	// Touch a spread of indices, including level boundaries.
	indices := []uint64{0, 1, 2, 3, 62, 63, 64, 1000, 1 << 20}
	for _, i := range indices {
		if got := s.Read(p, i); got != 0 {
			t.Fatalf("switch %d initially %d, want 0", i, got)
		}
	}
	for _, i := range indices {
		if !s.TestAndSet(p, i) {
			t.Fatalf("first TestAndSet on switch %d lost", i)
		}
	}
	for _, i := range indices {
		if got := s.Read(p, i); got != 1 {
			t.Fatalf("switch %d reads %d after set, want 1", i, got)
		}
		if s.TestAndSet(p, i) {
			t.Fatalf("second TestAndSet on switch %d won", i)
		}
	}
	// Neighbours of touched indices must remain 0.
	for _, i := range []uint64{4, 61, 65, 999, 1001, 1<<20 - 1, 1<<20 + 1} {
		if got := s.Read(p, i); got != 0 {
			t.Fatalf("untouched switch %d reads %d, want 0", i, got)
		}
	}
}

func TestTASSeqSlotMapping(t *testing.T) {
	// Levels are contiguous and non-overlapping: index i maps to level
	// len(i+1)-1 with offsets 0..2^level-1 in order.
	next := map[int]uint64{}
	for i := uint64(0); i < 4096; i++ {
		level, off := tasSeqSlot(i)
		if off != next[level] {
			t.Fatalf("index %d: level %d offset %d, want %d", i, level, off, next[level])
		}
		next[level]++
		if off >= uint64(1)<<uint(level) {
			t.Fatalf("index %d: offset %d overflows level %d", i, off, level)
		}
	}
}

func TestPairRegRoundTrip(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	r := f.PairReg()

	if v, sn := r.Read(p); v != 0 || sn != 0 {
		t.Fatalf("initial pair = (%d, %d), want (0, 0)", v, sn)
	}
	r.Write(p, 123, 456)
	if v, sn := r.Read(p); v != 123 || sn != 456 {
		t.Fatalf("pair = (%d, %d), want (123, 456)", v, sn)
	}
}

func TestPackPairQuick(t *testing.T) {
	roundTrip := func(val, sn uint32) bool {
		v, s := UnpackPair(PackPair(val, sn))
		return v == val && s == sn
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryIDsDeterministic(t *testing.T) {
	build := func() []ObjID {
		f := NewFactory(2)
		var ids []ObjID
		ids = append(ids, f.Reg().ID())
		ids = append(ids, f.TAS().ID())
		s := f.TASSeq()
		ids = append(ids, s.objID(0), s.objID(17))
		ids = append(ids, f.PairReg().ID())
		return ids
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ID %d differs across identical builds: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestProcIDRange(t *testing.T) {
	f := NewFactory(3)
	for i := 0; i < 3; i++ {
		if got := f.Proc(i).ID(); got != i {
			t.Fatalf("Proc(%d).ID() = %d", i, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Proc(3) on 3-process factory did not panic")
		}
	}()
	f.Proc(3)
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{OpRead, "read"},
		{OpWrite, "write"},
		{OpTAS, "test&set"},
		{Op(0), "invalid"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("Op(%d).String() = %q, want %q", c.op, got, c.want)
		}
	}
	if !OpRead.Trivial() || OpWrite.Trivial() || OpTAS.Trivial() {
		t.Error("Trivial: want read trivial, write and test&set nontrivial")
	}
}

func TestRefReg(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	r := f.RefReg()

	if got := r.Read(p); got != nil {
		t.Fatalf("initial RefReg.Read = %v, want nil", got)
	}
	r.Write(p, "hello")
	if got := r.Read(p); got != "hello" {
		t.Fatalf("RefReg.Read = %v, want hello", got)
	}
	r.Write(p, nil)
	if got := r.Read(p); got != nil {
		t.Fatalf("RefReg.Read after Write(nil) = %v, want nil", got)
	}
}

func TestTASSeqConcurrentStress(t *testing.T) {
	// Many goroutines race test&set across an index range spanning several
	// lazily-allocated levels: every switch must have exactly one winner
	// and end up set.
	const procs = 8
	const span = 3000
	f := NewFactory(procs)
	s := f.TASSeq()

	winners := make([][]uint64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := f.Proc(i)
			for idx := uint64(0); idx < span; idx++ {
				if s.TestAndSet(p, idx) {
					winners[i] = append(winners[i], idx)
				}
			}
		}(i)
	}
	wg.Wait()

	wonBy := make(map[uint64]int)
	for i, list := range winners {
		for _, idx := range list {
			if prev, dup := wonBy[idx]; dup {
				t.Fatalf("switch %d won by both %d and %d", idx, prev, i)
			}
			wonBy[idx] = i
		}
	}
	if len(wonBy) != span {
		t.Fatalf("%d switches won, want %d", len(wonBy), span)
	}
	p := f.Proc(0)
	for idx := uint64(0); idx < span; idx++ {
		if !s.Set(p, idx) {
			t.Fatalf("switch %d not set after the race", idx)
		}
	}
}

func TestProcHandleCached(t *testing.T) {
	// Factory.Proc returns the same handle every time, so step counts
	// accumulate per process regardless of how callers fetch the handle.
	f := NewFactory(2)
	r := f.Reg()
	r.Write(f.Proc(1), 5)
	r.Read(f.Proc(1))
	if got := f.Proc(1).Steps(); got != 2 {
		t.Fatalf("steps via re-fetched handle = %d, want 2", got)
	}
	if f.Proc(0) != f.Proc(0) {
		t.Fatal("Proc(0) not cached")
	}
}
