package prim

import "sync/atomic"

// RefReg is a register holding an arbitrary immutable value. The
// asynchronous shared-memory model allows registers of unbounded size; the
// Afek-et-al. atomic snapshot (internal/snapshot) needs registers holding a
// (value, sequence, embedded view) triple. Stored values must be treated as
// immutable once written — writers publish fresh values, never mutate
// published ones.
type RefReg struct {
	id ObjID
	v  atomic.Value
}

// RefReg creates a fresh reference register holding nil.
func (f *Factory) RefReg() *RefReg {
	return &RefReg{id: f.allocID()}
}

// RefRegs creates a slice of m fresh reference registers.
func (f *Factory) RefRegs(m int) []*RefReg {
	rs := make([]*RefReg, m)
	for i := range rs {
		rs[i] = f.RefReg()
	}
	return rs
}

// refBox wraps values so atomic.Value accepts differing dynamic types
// (including nil-like states) uniformly.
type refBox struct{ val any }

// Read applies a read primitive and returns the stored value (nil if never
// written). The production path (nil gate) is inlinable, like Reg.Read's.
func (r *RefReg) Read(p *Proc) any {
	if p.gate == nil {
		p.steps++
		if b, ok := r.v.Load().(refBox); ok {
			return b.val
		}
		return nil
	}
	return r.readGated(p)
}

func (r *RefReg) readGated(p *Proc) any {
	p.gate.Enter(p)
	var v any
	if b, ok := r.v.Load().(refBox); ok {
		v = b.val
	}
	p.steps++
	p.exitGated(OpRead, r.id, 0)
	return v
}

// Write applies a write primitive storing v.
func (r *RefReg) Write(p *Proc, v any) {
	if p.gate == nil {
		p.steps++
		r.v.Store(refBox{val: v})
		return
	}
	r.writeGated(p, v)
}

func (r *RefReg) writeGated(p *Proc, v any) {
	p.gate.Enter(p)
	r.v.Store(refBox{val: v})
	p.steps++
	p.exitGated(OpWrite, r.id, 0)
}

// ID returns the base-object identifier.
func (r *RefReg) ID() ObjID { return r.id }
