package prim

import (
	"sync"
	"testing"
)

func TestCASRegSemantics(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	r := f.CASReg()

	if got := r.Read(p); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	if obs, ok := r.CompareAndSwap(p, 0, 5); !ok || obs != 0 {
		t.Fatalf("CAS(0->5) = (%d, %v), want (0, true)", obs, ok)
	}
	if obs, ok := r.CompareAndSwap(p, 0, 9); ok || obs != 5 {
		t.Fatalf("failed CAS = (%d, %v), want (5, false)", obs, ok)
	}
	if got := r.Read(p); got != 5 {
		t.Fatalf("Read = %d, want 5", got)
	}
	r.Write(p, 7)
	if got := r.Peek(); got != 7 {
		t.Fatalf("Peek = %d, want 7", got)
	}
	// 5 primitives so far: read, CAS, CAS, read, write.
	if got := p.Steps(); got != 5 {
		t.Fatalf("Steps = %d, want 5", got)
	}
}

func TestCASOnlyOneWinner(t *testing.T) {
	const procs = 16
	f := NewFactory(procs)
	r := f.CASReg()

	var wg sync.WaitGroup
	wins := make([]bool, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, wins[i] = r.CompareAndSwap(f.Proc(i), 0, uint64(i)+1)
		}(i)
	}
	wg.Wait()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("CAS(0->x) had %d winners, want 1", winners)
	}
}

func TestCASEventPacking(t *testing.T) {
	ev := Event{Op: OpCAS, Val: 42 | casSuccess}
	if obs, ok := CASEventSucceeded(ev); !ok || obs != 42 {
		t.Fatalf("CASEventSucceeded = (%d, %v), want (42, true)", obs, ok)
	}
	ev = Event{Op: OpCAS, Val: 42}
	if obs, ok := CASEventSucceeded(ev); ok || obs != 42 {
		t.Fatalf("CASEventSucceeded = (%d, %v), want (42, false)", obs, ok)
	}
}

func TestKCASAllOrNothing(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	regs := f.CASRegs(3)
	k := f.KCAS(regs)

	// All expectations match: swap happens.
	obs, ok := k.Apply(p, []uint64{0, 0, 0}, []uint64{1, 2, 3})
	if !ok {
		t.Fatalf("KCAS on fresh regs failed, observed %v", obs)
	}
	for i, want := range []uint64{1, 2, 3} {
		if got := regs[i].Peek(); got != want {
			t.Fatalf("reg[%d] = %d, want %d", i, got, want)
		}
	}
	// One mismatch: nothing changes, observed reports actual values.
	obs, ok = k.Apply(p, []uint64{1, 2, 99}, []uint64{7, 7, 7})
	if ok {
		t.Fatal("KCAS with a mismatched expectation succeeded")
	}
	if obs[0] != 1 || obs[1] != 2 || obs[2] != 3 {
		t.Fatalf("observed = %v, want [1 2 3]", obs)
	}
	for i, want := range []uint64{1, 2, 3} {
		if got := regs[i].Peek(); got != want {
			t.Fatalf("failed KCAS mutated reg[%d] to %d", i, got)
		}
	}
}

func TestKCASIsOneStep(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	k := f.KCAS(f.CASRegs(4))
	before := p.Steps()
	k.Apply(p, make([]uint64, 4), []uint64{1, 1, 1, 1})
	if got := p.Steps() - before; got != 1 {
		t.Fatalf("arity-4 KCAS took %d steps, want 1 (single primitive application)", got)
	}
}

func TestKCASArityMismatchPanics(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)
	k := f.KCAS(f.CASRegs(2))
	defer func() {
		if recover() == nil {
			t.Fatal("KCAS with wrong arity did not panic")
		}
	}()
	k.Apply(p, []uint64{0}, []uint64{1})
}
