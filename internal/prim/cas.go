package prim

import "sync/atomic"

// Conditional primitives (Definition III.1 of the paper): a RMW primitive
// is conditional if for every input there is at most one object-values
// vector it modifies (its change point). CAS is the canonical example —
// its change point for input (old, new) is the vector (old). The paper's
// amortized lower bound for k-multiplicative counters (Theorem III.11)
// covers implementations from reads, writes and conditionals of any
// constant arity, so the repository provides them: they let baselines like
// the lock-free fetch&increment counter be expressed, and the awareness
// machinery of internal/sim models their visibility exactly (a failed CAS
// is invisible — its object-values vector is a fixed point — but still
// observes the object, like a failed test&set).

// OpCAS is the compare-and-swap primitive kind. A CAS event's Val packs
// whether it succeeded; see CASEventSucceeded.
const OpCAS Op = 4

// casSuccess marks a successful CAS in an Event's Val field alongside the
// observed value (which fits in 63 bits for all uses in this repository).
const casSuccess = uint64(1) << 63

// CASEventSucceeded reports whether a recorded OpCAS event changed its
// object, and the value the CAS observed.
func CASEventSucceeded(ev Event) (observed uint64, succeeded bool) {
	return ev.Val &^ casSuccess, ev.Val&casSuccess != 0
}

// CASReg is a register supporting read, write and compare-and-swap.
type CASReg struct {
	id ObjID
	v  atomic.Uint64
}

// CASReg creates a fresh register supporting CAS, initialized to zero.
func (f *Factory) CASReg() *CASReg {
	return &CASReg{id: f.allocID()}
}

// CASRegs creates a slice of m fresh CAS registers.
func (f *Factory) CASRegs(m int) []*CASReg {
	rs := make([]*CASReg, m)
	for i := range rs {
		rs[i] = f.CASReg()
	}
	return rs
}

// Read applies a read primitive. The production path (nil gate) is
// inlinable, like Reg.Read's.
func (r *CASReg) Read(p *Proc) uint64 {
	if p.gate == nil {
		p.steps++
		return r.v.Load()
	}
	return r.readGated(p)
}

func (r *CASReg) readGated(p *Proc) uint64 {
	p.gate.Enter(p)
	v := r.v.Load()
	p.steps++
	p.exitGated(OpRead, r.id, v)
	return v
}

// Write applies a write primitive. The production path (nil gate) is
// inlinable, like Reg.Write's.
func (r *CASReg) Write(p *Proc, v uint64) {
	if p.gate == nil {
		p.steps++
		r.v.Store(v)
		return
	}
	r.writeGated(p, v)
}

func (r *CASReg) writeGated(p *Proc, v uint64) {
	p.gate.Enter(p)
	r.v.Store(v)
	p.steps++
	p.exitGated(OpWrite, r.id, v)
}

// CompareAndSwap applies a CAS primitive: if the register holds old, set it
// to new and report success. The register's value is the event's observed
// value either way (a failed CAS returns the value it saw, like test&set).
func (r *CASReg) CompareAndSwap(p *Proc, old, new uint64) (observed uint64, swapped bool) {
	if p.gate == nil {
		p.steps++
		if r.v.CompareAndSwap(old, new) {
			return old, true
		}
		return r.v.Load(), false
	}
	return r.casGated(p, old, new)
}

func (r *CASReg) casGated(p *Proc, old, new uint64) (observed uint64, swapped bool) {
	p.gate.Enter(p)
	swapped = r.v.CompareAndSwap(old, new)
	if swapped {
		observed = old
	} else {
		observed = r.v.Load()
	}
	val := observed
	if swapped {
		val |= casSuccess
	}
	p.steps++
	p.exitGated(OpCAS, r.id, val)
	return observed, swapped
}

// Peek returns the register's value without taking a model step
// (diagnostic; see Reg.Peek).
func (r *CASReg) Peek() uint64 { return r.v.Load() }

// ID returns the base-object identifier.
func (r *CASReg) ID() ObjID { return r.id }

// KCAS applies an arity-q compare-and-swap across q CAS registers: if every
// register holds its expected value, all are set to their new values
// atomically; otherwise nothing changes. This is the q-arity conditional of
// Section III-D. It is implemented under the simulation machine's lock-step
// guarantee (the whole KCAS is a single step of the issuing process), which
// is the model the lower bound is proved in; it must not be used in
// production mode where steps of different processes overlap.
//
// The issuing process observes every register (a KCAS returns the observed
// vector), and on success it becomes visible on each register it changed.
type KCAS struct {
	gate Gate
	id   ObjID // identity of the combined event (for tracing)
	regs []*CASReg
}

// KCAS creates an arity-len(regs) conditional over the given registers.
func (f *Factory) KCAS(regs []*CASReg) *KCAS {
	return &KCAS{gate: f.gate, id: f.allocID(), regs: regs}
}

// Apply performs the multi-word CAS. old and new must have one entry per
// register. It reports success and returns the observed values.
func (k *KCAS) Apply(p *Proc, old, new []uint64) (observed []uint64, swapped bool) {
	if len(old) != len(k.regs) || len(new) != len(k.regs) {
		panic("prim: KCAS arity mismatch")
	}
	p.enter()
	observed = make([]uint64, len(k.regs))
	swapped = true
	for i, r := range k.regs {
		observed[i] = r.v.Load()
		if observed[i] != old[i] {
			swapped = false
		}
	}
	if swapped {
		for i, r := range k.regs {
			r.v.Store(new[i])
		}
	}
	// Report one event per accessed register so awareness tracking sees
	// the full access vector; the machine records them as a single step
	// (the enter/exit pair brackets all of them).
	val := uint64(0)
	if swapped {
		val = casSuccess
	}
	p.exitMulti(OpCAS, k.eventObjs(), val)
	return observed, swapped
}

func (k *KCAS) eventObjs() []ObjID {
	objs := make([]ObjID, len(k.regs))
	for i, r := range k.regs {
		objs[i] = r.id
	}
	return objs
}

// exitMulti reports a step that accessed several objects (arity-q
// primitives). The step count increases by one — the model applies the
// whole primitive in a single step — while the trace records one event per
// accessed object.
func (p *Proc) exitMulti(op Op, objs []ObjID, val uint64) {
	p.steps++
	if p.gate != nil {
		evs := make([]Event, len(objs))
		for i, obj := range objs {
			evs[i] = Event{Proc: p.id, Op: op, Obj: obj, Val: val}
		}
		p.gate.Exit(p, evs)
	}
}
