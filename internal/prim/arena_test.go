package prim

import (
	"testing"
	"unsafe"
)

// TestPaddedRowStride checks the padded rows' core property: consecutive
// elements' hot heads are exactly one falseSharingStride apart, so no
// two elements share a cache line pair regardless of base alignment.
func TestPaddedRowStride(t *testing.T) {
	f := NewFactory(2)
	regs := f.RegRow(8)
	for i := 1; i < len(regs); i++ {
		d := uintptr(unsafe.Pointer(regs[i])) - uintptr(unsafe.Pointer(regs[i-1]))
		if d != falseSharingStride {
			t.Fatalf("RegRow stride between %d and %d: got %d bytes, want %d", i-1, i, d, falseSharingStride)
		}
	}
	tass := f.TASRow(8)
	for i := 1; i < len(tass); i++ {
		d := uintptr(unsafe.Pointer(tass[i])) - uintptr(unsafe.Pointer(tass[i-1]))
		if d != falseSharingStride {
			t.Fatalf("TASRow stride: got %d bytes, want %d", d, falseSharingStride)
		}
	}
	cas := f.CASRegRow(4)
	for i := 1; i < len(cas); i++ {
		d := uintptr(unsafe.Pointer(cas[i])) - uintptr(unsafe.Pointer(cas[i-1]))
		if d != falseSharingStride {
			t.Fatalf("CASRegRow stride: got %d bytes, want %d", d, falseSharingStride)
		}
	}
	refs := f.RefRegRow(4)
	for i := 1; i < len(refs); i++ {
		d := uintptr(unsafe.Pointer(refs[i])) - uintptr(unsafe.Pointer(refs[i-1]))
		if d != falseSharingStride {
			t.Fatalf("RefRegRow stride: got %d bytes, want %d", d, falseSharingStride)
		}
	}
	pairs := f.PairRegRow(4)
	for i := 1; i < len(pairs); i++ {
		d := uintptr(unsafe.Pointer(pairs[i])) - uintptr(unsafe.Pointer(pairs[i-1]))
		if d != falseSharingStride {
			t.Fatalf("PairRegRow stride: got %d bytes, want %d", d, falseSharingStride)
		}
	}
}

// TestDenseRowLayout checks RegRowDense packs elements at natural size
// (no internal padding — the point of the dense layout).
func TestDenseRowLayout(t *testing.T) {
	f := NewFactory(1)
	regs := f.RegRowDense(16)
	want := unsafe.Sizeof(Reg{})
	for i := 1; i < len(regs); i++ {
		d := uintptr(unsafe.Pointer(regs[i])) - uintptr(unsafe.Pointer(regs[i-1]))
		if d != want {
			t.Fatalf("RegRowDense stride: got %d bytes, want %d", d, want)
		}
	}
}

// TestRowIDsAndResident checks arena rows are drop-in for the
// one-object-per-allocation constructors: IDs follow creation order and
// Resident counts exactly the returned objects (guard cells are free).
func TestRowIDsAndResident(t *testing.T) {
	a, b := NewFactory(1), NewFactory(1)
	ra, rb := a.Regs(5), b.RegRow(5)
	for i := range ra {
		if ra[i].ID() != rb[i].ID() {
			t.Fatalf("RegRow ID at %d: got %d, want %d", i, rb[i].ID(), ra[i].ID())
		}
	}
	if a.Resident() != b.Resident() || a.Objects() != b.Objects() {
		t.Fatalf("RegRow accounting: resident %d/%d objects %d/%d", a.Resident(), b.Resident(), a.Objects(), b.Objects())
	}
	before := b.Resident()
	dense := b.RegRowDense(7)
	if got := b.Resident() - before; got != 7 {
		t.Fatalf("RegRowDense resident delta: got %d, want 7 (guards must be free)", got)
	}
	if dense[0].ID() != ObjID(5) || dense[6].ID() != ObjID(11) {
		t.Fatalf("RegRowDense IDs: got %d..%d, want 5..11", dense[0].ID(), dense[6].ID())
	}
}

// TestRowObjectsBehave checks row-allocated objects behave like
// individually allocated ones across every row constructor.
func TestRowObjectsBehave(t *testing.T) {
	f := NewFactory(1)
	p := f.Proc(0)

	regs := f.RegRow(3)
	regs[1].Write(p, 42)
	if regs[0].Read(p) != 0 || regs[1].Read(p) != 42 || regs[2].Read(p) != 0 {
		t.Fatal("RegRow write leaked into a neighbor or was lost")
	}

	tass := f.TASRow(2)
	if !tass[0].TestAndSet(p) || tass[0].TestAndSet(p) {
		t.Fatal("TASRow bit did not behave as test&set")
	}
	if tass[1].Read(p) != 0 {
		t.Fatal("TASRow neighbor bit flipped")
	}

	cas := f.PaddedCASReg()
	if obs, ok := cas.CompareAndSwap(p, 0, 9); !ok || obs != 0 {
		t.Fatalf("PaddedCASReg CAS: got (%d, %v), want (0, true)", obs, ok)
	}
	if cas.Read(p) != 9 {
		t.Fatal("PaddedCASReg lost its CAS")
	}

	refs := f.RefRegRow(2)
	refs[0].Write(p, "x")
	if refs[0].Read(p) != "x" || refs[1].Read(p) != nil {
		t.Fatal("RefRegRow write leaked or was lost")
	}

	steps := p.Steps()
	if steps == 0 {
		t.Fatal("row-allocated primitives did not count steps")
	}
}
