// Package check decides linearizability of recorded histories against the
// (possibly relaxed) sequential specifications of counters and max
// registers.
//
// General linearizability checking is NP-complete, but counters and max
// registers are monotone: the value a read returns is a monotone function
// of the linearization prefix. For such objects an interval/prefix-set
// method decides the problem efficiently:
//
//   - every read r must be assigned the set S(r) of increments linearized
//     before it, with preceding(r) ⊆ S(r) ⊆ possibly(r) (real-time
//     precedence) and |S(r)| within the accuracy envelope of its response;
//   - reads completed before r began force their sets into S(r) (prefixes
//     of one linearization are nested along real-time order);
//   - a greedy pass that keeps each S(r) as small as possible and fills it
//     with the increments most likely to be forced anyway (earliest
//     response first) decides feasibility.
//
// Tracking *sets* rather than counts matters: an increment that a
// completed read could not include (it began after that read ended) still
// joins the mandatory prefix of a later read, so the floors of two chained
// reads do not simply take a maximum — they union. CounterWitness makes
// the whole argument self-checking by emitting an explicit linearization
// and re-verifying it against the sequential specification.
//
// Crash support: operations that were invoked but never completed (crashed
// processes) may or may not have taken effect. Callers pass them as
// pending updates; the checker treats each as an optional wildcard.
package check

import (
	"fmt"
	"sort"

	"approxobj/internal/history"
	"approxobj/internal/object"
)

// Result reports the verdict and, on failure, the offending read.
type Result struct {
	OK     bool
	Reason string
}

func fail(format string, args ...any) Result {
	return Result{Reason: fmt.Sprintf(format, args...)}
}

// Envelope maps a read's response x to the interval of true values it is
// an admissible answer for.
type Envelope interface {
	// Bounds returns the inclusive [lo, hi] range of true values v for
	// which responding x is allowed.
	Bounds(x uint64) (lo, hi uint64)
	// Describe names the envelope in failure messages.
	Describe() string
}

// MultEnvelope is the k-multiplicative envelope v/K <= x <= v*K (K = 1 is
// exact).
type MultEnvelope struct {
	K uint64
}

// Bounds implements Envelope: v in [ceil(x/K), x*K].
func (e MultEnvelope) Bounds(x uint64) (lo, hi uint64) {
	return divCeil(x, e.K), mulOrMax(x, e.K)
}

// Describe implements Envelope.
func (e MultEnvelope) Describe() string { return fmt.Sprintf("k=%d multiplicative", e.K) }

// AddEnvelope is the k-additive envelope |x - v| <= K.
type AddEnvelope struct {
	K uint64
}

// Bounds implements Envelope: v in [x-K, x+K].
func (e AddEnvelope) Bounds(x uint64) (lo, hi uint64) {
	if x > e.K {
		lo = x - e.K
	}
	hi = x + e.K
	if hi < x { // overflow
		hi = ^uint64(0)
	}
	return lo, hi
}

// Describe implements Envelope.
func (e AddEnvelope) Describe() string { return fmt.Sprintf("k=%d additive", e.K) }

// Counter checks a history of KindInc and KindCounterRead operations
// against the k-multiplicative-accurate counter specification (k = 1 for
// exact). pendingIncs is the number of increments that were invoked but
// never returned (crashed): each may count or not.
func Counter(h []history.Op, acc object.Accuracy, pendingIncs int) Result {
	return CounterEnvelope(h, MultEnvelope{K: acc.K}, pendingIncs)
}

// CounterEnvelope checks a counter history against an arbitrary accuracy
// envelope (multiplicative, additive, or custom).
func CounterEnvelope(h []history.Op, env Envelope, pendingIncs int) Result {
	res, _ := counterAssign(h, env, pendingIncs)
	return res
}

// readAssignment pairs a read with the increment set chosen for its
// linearization prefix (indices into the Ret-sorted increment list) and
// the number of crashed-increment wildcards it uses.
type readAssignment struct {
	op      history.Op
	set     incSet
	virtual uint64
}

// incSet is a bitset over increment indices.
type incSet []uint64

func newIncSet(n int) incSet { return make(incSet, (n+63)/64) }

func (s incSet) has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }
func (s incSet) add(i int)      { s[i/64] |= 1 << (uint(i) % 64) }

func (s incSet) union(o incSet) {
	for i := range o {
		s[i] |= o[i]
	}
}

func (s incSet) count() uint64 {
	var c uint64
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

func (s incSet) clone() incSet {
	c := make(incSet, len(s))
	copy(c, s)
	return c
}

// counterAssign runs the greedy prefix-set assignment. On success it
// returns the per-read assignments (reads in invocation order) and the
// Ret-sorted increments via the second return's sets' index space.
func counterAssign(h []history.Op, env Envelope, pendingIncs int) (Result, []readAssignment) {
	var incs, reads []history.Op
	for _, op := range h {
		switch op.Kind {
		case history.KindInc:
			incs = append(incs, op)
		case history.KindCounterRead:
			reads = append(reads, op)
		default:
			return fail("counter history contains %v", op), nil
		}
	}
	if len(reads) == 0 {
		return Result{OK: true}, nil
	}
	// Sorting increments by response time makes preceding(r) a prefix:
	// every increment with Ret < r.Inv sorts before any other.
	sort.Slice(incs, func(i, j int) bool { return incs[i].Ret < incs[j].Ret })
	sort.Slice(reads, func(i, j int) bool { return reads[i].Inv < reads[j].Inv })

	var (
		assignments []readAssignment
		// pendingDone holds assignments of reads not yet known to precede
		// the current read; committed is the union of sets of reads that
		// completed before the current read's invocation.
		pendingDone      []readAssignment
		committed        = newIncSet(len(incs))
		committedVirtual uint64
	)
	for _, r := range reads {
		keep := pendingDone[:0]
		for _, d := range pendingDone {
			if d.op.Ret < r.Inv {
				committed.union(d.set)
				if d.virtual > committedVirtual {
					// Wildcards are reusable: later reads reuse the same
					// crashed increments, so unions take the max.
					committedVirtual = d.virtual
				}
			} else {
				keep = append(keep, d)
			}
		}
		pendingDone = keep

		// Mandatory prefix: everything committed plus every increment
		// that precedes r in real time.
		set := committed.clone()
		eligible := 0 // increments with Inv < r.Ret
		for i, inc := range incs {
			if inc.Ret < r.Inv {
				set.add(i)
			}
			if inc.Inv < r.Ret {
				eligible++
			}
		}
		mandatory := set.count() + committedVirtual

		envLo, envHi := env.Bounds(r.Resp)
		lo := maxU(mandatory, envLo)
		hi := minU(uint64(eligible)+uint64(pendingIncs), envHi)
		if lo > hi {
			return fail("read %v needs a prefix of [%d, %d] increments but mandatory prefix/envelope force %d..%d (%s)",
				r, mandatory, uint64(eligible)+uint64(pendingIncs), lo, hi, env.Describe()), nil
		}
		// Fill up to lo with eligible increments, earliest response first
		// (most likely to become mandatory for later reads), then crashed
		// wildcards.
		needFill := lo - mandatory
		virt := committedVirtual
		for i := range incs {
			if needFill == 0 {
				break
			}
			if !set.has(i) && incs[i].Inv < r.Ret {
				set.add(i)
				needFill--
			}
		}
		virt += needFill // remainder must come from crashed increments

		a := readAssignment{op: r, set: set, virtual: virt}
		assignments = append(assignments, a)
		pendingDone = append(pendingDone, a)
	}
	return Result{OK: true}, assignments
}

// MaxRegister checks a history of KindWrite and KindMaxRead operations
// against the k-multiplicative-accurate max-register specification (k = 1
// for exact). pendingWrites holds the arguments of writes that were invoked
// but never returned: each may have taken effect or not.
//
// For max registers a value-based floor is sufficient (unlike counters):
// the prefix state is the maximum written value, and unions of prefixes
// collapse to the maximum, so tracking the largest committed value is
// exact.
func MaxRegister(h []history.Op, acc object.Accuracy, pendingWrites []uint64) Result {
	var writes, reads []history.Op
	for _, op := range h {
		switch op.Kind {
		case history.KindWrite:
			writes = append(writes, op)
		case history.KindMaxRead:
			reads = append(reads, op)
		default:
			return fail("max-register history contains %v", op)
		}
	}
	if len(reads) == 0 {
		return Result{OK: true}
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].Inv < reads[j].Inv })

	// Process reads in invocation order; monotoneFloor carries the largest
	// v already assigned to a read that completed before the current one.
	type done struct {
		ret  uint64
		need uint64
	}
	var completedReads []done
	var monotoneFloor uint64
	for _, r := range reads {
		kept := completedReads[:0]
		for _, d := range completedReads {
			if d.ret < r.Inv {
				if d.need > monotoneFloor {
					monotoneFloor = d.need
				}
			} else {
				kept = append(kept, d)
			}
		}
		completedReads = kept

		// Definite floor: the largest write that completed before r began.
		floor := monotoneFloor
		for _, w := range writes {
			if w.Precedes(r) && w.Arg > floor {
				floor = w.Arg
			}
		}
		// Candidate maxima: the floor itself, or any possibly-preceding
		// write (including crashed ones) of a larger value.
		candidates := []uint64{floor}
		for _, w := range writes {
			if w.Inv < r.Ret && w.Arg > floor {
				candidates = append(candidates, w.Arg)
			}
		}
		for _, arg := range pendingWrites {
			if arg > floor {
				candidates = append(candidates, arg)
			}
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

		x := r.Resp
		chosen, ok := uint64(0), false
		for _, v := range candidates {
			if v < floor {
				continue
			}
			if acc.Contains(v, x) {
				chosen, ok = v, true
				break // smallest admissible keeps future reads freest
			}
		}
		if !ok {
			return fail("read %v: no admissible maximum >= %d within envelope k=%d (candidates %v)",
				r, floor, acc.K, candidates)
		}
		completedReads = append(completedReads, done{ret: r.Ret, need: chosen})
	}
	return Result{OK: true}
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// divCeil returns ceil(x/k) (k >= 1).
func divCeil(x, k uint64) uint64 {
	if k <= 1 {
		return x
	}
	return (x + k - 1) / k
}

// mulOrMax returns x*k, saturating at MaxUint64.
func mulOrMax(x, k uint64) uint64 {
	if k <= 1 {
		return x
	}
	if x > ^uint64(0)/k {
		return ^uint64(0)
	}
	return x * k
}
