package check

import (
	"fmt"
	"sort"

	"approxobj/internal/history"
)

// CounterWitness goes beyond the boolean verdict of CounterEnvelope: when
// the history is accepted (and has no crashed increments), it constructs
// an explicit witness linearization — a total order of the completed
// operations — and verifies it end to end:
//
//  1. the order respects real-time precedence (op1.Ret < op2.Inv implies
//     op1 is not ordered after op2), and
//  2. every read's response is within the envelope of the number of
//     increments preceding it in the order.
//
// The construction emits reads by ascending prefix size (ties by
// invocation) and, before each read, every increment of its assigned
// prefix set not yet emitted.
//
// A verified witness is a *proof* that the history is linearizable. The
// construction itself is heuristic: the greedy assignment does not enforce
// chain-nesting between concurrent reads' prefix sets, so for some
// linearizable histories (equal-cardinality, diverging prefix sets among
// overlapping reads) emission can order a read after an increment that
// follows it in real time. Such a construction failure is reported in the
// Result but is inconclusive — callers wanting a plain verdict should use
// CounterEnvelope. The witness tests in this package pin down workload
// families where construction always succeeds.
func CounterWitness(h []history.Op, env Envelope, pendingIncs int) (Result, []history.Op) {
	res, assignments := counterAssign(h, env, pendingIncs)
	if !res.OK || pendingIncs > 0 {
		return res, nil
	}
	if assignments == nil {
		// Read-free history: any precedence-compatible order works.
		sorted := append([]history.Op(nil), h...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ret < sorted[j].Ret })
		return res, sorted
	}

	var incs []history.Op
	for _, op := range h {
		if op.Kind == history.KindInc {
			incs = append(incs, op)
		}
	}
	// Same index space as the assignment sets: increments by Ret.
	sort.Slice(incs, func(i, j int) bool { return incs[i].Ret < incs[j].Ret })

	order := append([]readAssignment(nil), assignments...)
	sort.SliceStable(order, func(i, j int) bool {
		ci, cj := order[i].set.count(), order[j].set.count()
		if ci != cj {
			return ci < cj
		}
		return order[i].op.Inv < order[j].op.Inv
	})

	var witness []history.Op
	emitted := make([]bool, len(incs))
	for _, a := range order {
		for i := range incs {
			if a.set.has(i) && !emitted[i] {
				witness = append(witness, incs[i])
				emitted[i] = true
			}
		}
		witness = append(witness, a.op)
	}
	for i := range incs {
		if !emitted[i] {
			witness = append(witness, incs[i])
		}
	}

	if err := verifyCounterWitness(witness, env); err != nil {
		return fail("witness verification failed: %v (checker bug?)", err), nil
	}
	return res, witness
}

// verifyCounterWitness checks precedence-respect and the sequential
// (relaxed) counter specification of a linearization order.
func verifyCounterWitness(l []history.Op, env Envelope) error {
	for i := 0; i < len(l); i++ {
		for j := i + 1; j < len(l); j++ {
			if l[j].Ret < l[i].Inv {
				return fmt.Errorf("%v is ordered before %v but follows it in real time", l[i], l[j])
			}
		}
	}
	var count uint64
	for _, op := range l {
		switch op.Kind {
		case history.KindInc:
			count++
		case history.KindCounterRead:
			lo, hi := env.Bounds(op.Resp)
			if count < lo || count > hi {
				return fmt.Errorf("%v: prefix count %d outside envelope [%d, %d]", op, count, lo, hi)
			}
		}
	}
	return nil
}
