package check

import (
	"testing"

	"approxobj/internal/history"
	"approxobj/internal/object"
)

// ops builds a history from compact tuples.
type opSpec struct {
	proc     int
	kind     history.Kind
	arg      uint64
	resp     uint64
	inv, ret uint64
}

func build(specs []opSpec) []history.Op {
	ops := make([]history.Op, len(specs))
	for i, s := range specs {
		ops[i] = history.Op{Proc: s.proc, Kind: s.kind, Arg: s.arg, Resp: s.resp, Inv: s.inv, Ret: s.ret}
	}
	return ops
}

func TestCounterExactSequentialAccepted(t *testing.T) {
	h := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 2},
		{0, history.KindCounterRead, 0, 1, 3, 4},
		{1, history.KindInc, 0, 0, 5, 6},
		{1, history.KindCounterRead, 0, 2, 7, 8},
	})
	if res := Counter(h, object.Exact, 0); !res.OK {
		t.Fatalf("sequential exact history rejected: %s", res.Reason)
	}
}

func TestCounterExactWrongValueRejected(t *testing.T) {
	h := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 2},
		{0, history.KindCounterRead, 0, 2, 3, 4}, // only 1 inc happened
	})
	if res := Counter(h, object.Exact, 0); res.OK {
		t.Fatal("over-reporting read accepted")
	}
	h2 := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 2},
		{0, history.KindCounterRead, 0, 0, 3, 4}, // must see the inc
	})
	if res := Counter(h2, object.Exact, 0); res.OK {
		t.Fatal("under-reporting read accepted")
	}
}

func TestCounterOverlappingIncMayCountOrNot(t *testing.T) {
	// Increment overlaps the read: both 0 and 1 are linearizable responses.
	for _, resp := range []uint64{0, 1} {
		h := build([]opSpec{
			{0, history.KindInc, 0, 0, 1, 10},
			{1, history.KindCounterRead, 0, resp, 2, 9},
		})
		if res := Counter(h, object.Exact, 0); !res.OK {
			t.Fatalf("overlapping inc, resp=%d rejected: %s", resp, res.Reason)
		}
	}
	// But 2 is impossible.
	h := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 10},
		{1, history.KindCounterRead, 0, 2, 2, 9},
	})
	if res := Counter(h, object.Exact, 0); res.OK {
		t.Fatal("read of 2 with a single inc accepted")
	}
}

func TestCounterMonotonicityEnforced(t *testing.T) {
	// Two sequential reads, both overlapping two increments: individually
	// each response is admissible, but a later read may not see fewer
	// increments than an earlier completed read.
	h := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 100},
		{1, history.KindInc, 0, 0, 1, 100},
		{2, history.KindCounterRead, 0, 2, 2, 3},
		{2, history.KindCounterRead, 0, 1, 4, 5}, // regressed
	})
	if res := Counter(h, object.Exact, 0); res.OK {
		t.Fatal("regressing sequential reads accepted")
	}
	// Same responses on overlapping reads by different processes are fine
	// if the reads overlap each other.
	h2 := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 100},
		{1, history.KindInc, 0, 0, 1, 100},
		{2, history.KindCounterRead, 0, 2, 2, 50},
		{3, history.KindCounterRead, 0, 1, 3, 49}, // overlaps the other read
	})
	if res := Counter(h2, object.Exact, 0); !res.OK {
		t.Fatalf("overlapping reads with different views rejected: %s", res.Reason)
	}
}

func TestCounterEnvelope(t *testing.T) {
	acc := object.Accuracy{K: 3}
	// 9 sequential increments, then a read.
	var specs []opSpec
	for i := 0; i < 9; i++ {
		specs = append(specs, opSpec{0, history.KindInc, 0, 0, uint64(2*i + 1), uint64(2*i + 2)})
	}
	for _, c := range []struct {
		resp uint64
		ok   bool
	}{
		{3, true},   // 9/3
		{9, true},   // exact
		{27, true},  // 9*3
		{2, false},  // below v/k
		{28, false}, // above v*k
		{0, false},  // zero after definite increments
	} {
		h := build(append(append([]opSpec{}, specs...),
			opSpec{1, history.KindCounterRead, 0, c.resp, 100, 101}))
		res := Counter(h, acc, 0)
		if res.OK != c.ok {
			t.Errorf("k=3, v=9, resp=%d: OK=%v, want %v (%s)", c.resp, res.OK, c.ok, res.Reason)
		}
	}
}

func TestCounterPendingIncsLoosenUpperBound(t *testing.T) {
	// One completed inc, read of 3: impossible...
	h := build([]opSpec{
		{0, history.KindInc, 0, 0, 1, 2},
		{1, history.KindCounterRead, 0, 3, 3, 4},
	})
	if res := Counter(h, object.Exact, 0); res.OK {
		t.Fatal("read of 3 with one inc accepted")
	}
	// ...unless two crashed increments may have landed.
	if res := Counter(h, object.Exact, 2); !res.OK {
		t.Fatalf("read of 3 with 1 inc + 2 pending rejected: %s", res.Reason)
	}
}

func TestCounterRejectsForeignOps(t *testing.T) {
	h := build([]opSpec{{0, history.KindWrite, 5, 0, 1, 2}})
	if res := Counter(h, object.Exact, 0); res.OK {
		t.Fatal("counter checker accepted a Write op")
	}
}

func TestCounterEmptyAndReadless(t *testing.T) {
	if res := Counter(nil, object.Exact, 0); !res.OK {
		t.Fatal("empty history rejected")
	}
	h := build([]opSpec{{0, history.KindInc, 0, 0, 1, 2}})
	if res := Counter(h, object.Exact, 0); !res.OK {
		t.Fatal("read-free history rejected")
	}
}

func TestMaxRegisterExactSequential(t *testing.T) {
	h := build([]opSpec{
		{0, history.KindWrite, 5, 0, 1, 2},
		{0, history.KindMaxRead, 0, 5, 3, 4},
		{1, history.KindWrite, 3, 0, 5, 6},
		{1, history.KindMaxRead, 0, 5, 7, 8}, // max stays 5
		{0, history.KindWrite, 9, 0, 9, 10},
		{0, history.KindMaxRead, 0, 9, 11, 12},
	})
	if res := MaxRegister(h, object.Exact, nil); !res.OK {
		t.Fatalf("sequential max-register history rejected: %s", res.Reason)
	}
}

func TestMaxRegisterMissedWriteRejected(t *testing.T) {
	h := build([]opSpec{
		{0, history.KindWrite, 5, 0, 1, 2},
		{1, history.KindMaxRead, 0, 0, 3, 4}, // must see 5
	})
	if res := MaxRegister(h, object.Exact, nil); res.OK {
		t.Fatal("read missing a completed write accepted")
	}
}

func TestMaxRegisterInventedValueRejected(t *testing.T) {
	h := build([]opSpec{
		{0, history.KindWrite, 5, 0, 1, 2},
		{1, history.KindMaxRead, 0, 7, 3, 4}, // 7 was never written
	})
	if res := MaxRegister(h, object.Exact, nil); res.OK {
		t.Fatal("read of never-written value accepted")
	}
}

func TestMaxRegisterOverlappingWriteOptional(t *testing.T) {
	for _, resp := range []uint64{0, 8} {
		h := build([]opSpec{
			{0, history.KindWrite, 8, 0, 1, 10},
			{1, history.KindMaxRead, 0, resp, 2, 9},
		})
		if res := MaxRegister(h, object.Exact, nil); !res.OK {
			t.Fatalf("overlapping write, resp=%d rejected: %s", resp, res.Reason)
		}
	}
}

func TestMaxRegisterMonotoneReads(t *testing.T) {
	// Read of 8 completes; a later read returning 0 is a regression even
	// though the write of 8 overlaps both reads.
	h := build([]opSpec{
		{0, history.KindWrite, 8, 0, 1, 100},
		{1, history.KindMaxRead, 0, 8, 2, 3},
		{1, history.KindMaxRead, 0, 0, 4, 5},
	})
	if res := MaxRegister(h, object.Exact, nil); res.OK {
		t.Fatal("regressing max-register reads accepted")
	}
}

func TestMaxRegisterEnvelope(t *testing.T) {
	acc := object.Accuracy{K: 2}
	for _, c := range []struct {
		resp uint64
		ok   bool
	}{
		{8, true},  // k^p response of Algorithm 2 (5 -> 8)
		{3, true},  // 5/2 rounded up
		{10, true}, // 5*2
		{2, false}, // below 5/2
		{11, false},
	} {
		h := build([]opSpec{
			{0, history.KindWrite, 5, 0, 1, 2},
			{1, history.KindMaxRead, 0, c.resp, 3, 4},
		})
		res := MaxRegister(h, acc, nil)
		if res.OK != c.ok {
			t.Errorf("k=2, max=5, resp=%d: OK=%v, want %v (%s)", c.resp, res.OK, c.ok, res.Reason)
		}
	}
}

func TestMaxRegisterPendingWrites(t *testing.T) {
	// Read returns 9, but the write of 9 crashed before responding.
	h := build([]opSpec{
		{1, history.KindMaxRead, 0, 9, 3, 4},
	})
	if res := MaxRegister(h, object.Exact, nil); res.OK {
		t.Fatal("read of unobserved value accepted without pending writes")
	}
	if res := MaxRegister(h, object.Exact, []uint64{9}); !res.OK {
		t.Fatalf("read matching crashed write rejected: %s", res.Reason)
	}
	// A later read may also legally return 0: the crashed write is
	// optional, not mandatory... but not after a read of 9 completed.
	h2 := build([]opSpec{
		{1, history.KindMaxRead, 0, 9, 3, 4},
		{1, history.KindMaxRead, 0, 0, 5, 6},
	})
	if res := MaxRegister(h2, object.Exact, []uint64{9}); res.OK {
		t.Fatal("regression after crashed-write read accepted")
	}
}

func TestMaxRegisterRejectsForeignOps(t *testing.T) {
	h := build([]opSpec{{0, history.KindInc, 0, 0, 1, 2}})
	if res := MaxRegister(h, object.Exact, nil); res.OK {
		t.Fatal("max-register checker accepted an Inc op")
	}
}
