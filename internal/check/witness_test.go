package check

import (
	"math/rand"
	"testing"

	"approxobj/internal/history"
	"approxobj/internal/object"
)

// TestCounterPrefixSetsNotJustCounts is the regression test for a
// soundness gap found while building the witness constructor: an increment
// that an earlier read could not contain (it began after that read ended)
// still joins the mandatory prefix of a later read, so prefix constraints
// union as sets — a count-based monotone floor wrongly accepts this
// history.
func TestCounterPrefixSetsNotJustCounts(t *testing.T) {
	h := []history.Op{
		{Proc: 0, Kind: history.KindInc, Inv: 5, Ret: 100},                  // e: concurrent with r1
		{Proc: 1, Kind: history.KindCounterRead, Resp: 1, Inv: 10, Ret: 20}, // r1: must contain e
		{Proc: 2, Kind: history.KindInc, Inv: 25, Ret: 30},                  // f: after r1, before r2
		{Proc: 1, Kind: history.KindCounterRead, Resp: 1, Inv: 40, Ret: 50}, // r2: needs {e, f} => 2
	}
	if res := Counter(h, object.Exact, 0); res.OK {
		t.Fatal("accepted a history whose second read must contain two increments but returned 1")
	}
	// The same shape with r2 = 2 is linearizable.
	h[3].Resp = 2
	if res := Counter(h, object.Exact, 0); !res.OK {
		t.Fatalf("rejected the corrected history: %s", res.Reason)
	}
	// And a witness must exist and verify for it.
	res, w := CounterWitness(h, MultEnvelope{K: 1}, 0)
	if !res.OK || w == nil {
		t.Fatalf("no witness for corrected history: %s", res.Reason)
	}
}

func TestWitnessSequentialHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		h := genCounterHistory(rng, 80)
		res, w := CounterWitness(h, MultEnvelope{K: 1}, 0)
		if !res.OK {
			t.Fatalf("sequential history rejected: %s", res.Reason)
		}
		if len(w) != len(h) {
			t.Fatalf("witness has %d ops, history has %d", len(w), len(h))
		}
	}
}

func TestWitnessConcurrentEnvelope(t *testing.T) {
	// Random overlapping histories with reads answering the current exact
	// count times a factor within k: the checker accepts and the witness
	// must verify.
	rng := rand.New(rand.NewSource(23))
	const k = 2
	for trial := 0; trial < 100; trial++ {
		var (
			h     []history.Op
			clock uint64
			count uint64
			open  []int // indices of open increments
		)
		for i := 0; i < 60; i++ {
			clock++
			switch rng.Intn(4) {
			case 0: // open an increment
				h = append(h, history.Op{Kind: history.KindInc, Inv: clock})
				open = append(open, len(h)-1)
			case 1: // close an increment
				if len(open) > 0 {
					j := open[0]
					open = open[1:]
					h[j].Ret = clock
					count++
				}
			default: // instantaneous read of the completed count
				resp := count
				if resp > 0 && rng.Intn(2) == 0 {
					resp = count * k // stretch to the envelope edge
				}
				clock++
				h = append(h, history.Op{Kind: history.KindCounterRead, Resp: resp, Inv: clock - 1, Ret: clock})
			}
		}
		// Close leftovers.
		for _, j := range open {
			clock++
			h[j].Ret = clock
		}
		res, w := CounterWitness(h, MultEnvelope{K: k}, 0)
		if !res.OK {
			t.Fatalf("trial %d rejected: %s", trial, res.Reason)
		}
		if w == nil {
			t.Fatalf("trial %d: no witness", trial)
		}
	}
}

func TestWitnessRejectsBadHistory(t *testing.T) {
	h := []history.Op{
		{Kind: history.KindInc, Inv: 1, Ret: 2},
		{Kind: history.KindCounterRead, Resp: 5, Inv: 3, Ret: 4},
	}
	res, w := CounterWitness(h, MultEnvelope{K: 1}, 0)
	if res.OK || w != nil {
		t.Fatal("witness produced for a non-linearizable history")
	}
}

func TestWitnessSkippedWithPending(t *testing.T) {
	h := []history.Op{
		{Kind: history.KindInc, Inv: 1, Ret: 2},
		{Kind: history.KindCounterRead, Resp: 2, Inv: 3, Ret: 4},
	}
	res, w := CounterWitness(h, MultEnvelope{K: 1}, 1)
	if !res.OK {
		t.Fatalf("pending-inc history rejected: %s", res.Reason)
	}
	if w != nil {
		t.Fatal("witness constructed despite crashed increments")
	}
}

func TestVerifyCounterWitnessCatchesViolations(t *testing.T) {
	// Precedence violation.
	bad := []history.Op{
		{Kind: history.KindCounterRead, Resp: 0, Inv: 10, Ret: 11},
		{Kind: history.KindInc, Inv: 1, Ret: 2}, // precedes the read but ordered after
	}
	if err := verifyCounterWitness(bad, MultEnvelope{K: 1}); err == nil {
		t.Fatal("verifier missed a precedence violation")
	}
	// Spec violation.
	bad2 := []history.Op{
		{Kind: history.KindInc, Inv: 1, Ret: 2},
		{Kind: history.KindCounterRead, Resp: 0, Inv: 3, Ret: 4},
	}
	if err := verifyCounterWitness(bad2, MultEnvelope{K: 1}); err == nil {
		t.Fatal("verifier missed a spec violation")
	}
}
