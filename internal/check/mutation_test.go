package check

import (
	"math/rand"
	"testing"
	"testing/quick"

	"approxobj/internal/history"
	"approxobj/internal/object"
)

// genCounterHistory produces a valid sequential history: ops executed one
// after another by random processes, reads returning the exact count.
func genCounterHistory(rng *rand.Rand, ops int) []history.Op {
	var (
		h     []history.Op
		clock uint64
		count uint64
	)
	for i := 0; i < ops; i++ {
		proc := rng.Intn(4)
		inv := clock + 1
		ret := clock + 2
		clock += 2
		if rng.Intn(3) > 0 {
			count++
			h = append(h, history.Op{Proc: proc, Kind: history.KindInc, Inv: inv, Ret: ret})
		} else {
			h = append(h, history.Op{Proc: proc, Kind: history.KindCounterRead, Resp: count, Inv: inv, Ret: ret})
		}
	}
	return h
}

func TestCheckerAcceptsGeneratedSequentialHistories(t *testing.T) {
	check := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := genCounterHistory(rng, int(opsRaw)%100+5)
		return Counter(h, object.Exact, 0).OK
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCheckerRejectsMutatedResponses guards against the checker becoming
// vacuous: bump a random read's response in a valid exact history by a
// nonzero delta and the checker must reject (exact semantics leave no
// slack for sequential histories).
func TestCheckerRejectsMutatedResponses(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rejected, trials := 0, 0
	for i := 0; i < 200; i++ {
		h := genCounterHistory(rng, 60)
		var readIdxs []int
		for j, op := range h {
			if op.Kind == history.KindCounterRead {
				readIdxs = append(readIdxs, j)
			}
		}
		if len(readIdxs) == 0 {
			continue
		}
		j := readIdxs[rng.Intn(len(readIdxs))]
		delta := uint64(rng.Intn(5) + 1)
		if rng.Intn(2) == 0 && h[j].Resp >= delta {
			h[j].Resp -= delta
		} else {
			h[j].Resp += delta
		}
		trials++
		if !Counter(h, object.Exact, 0).OK {
			rejected++
		}
	}
	if rejected != trials {
		t.Fatalf("checker accepted %d of %d mutated exact histories", trials-rejected, trials)
	}
}

// TestCheckerEnvelopeSlack verifies the relaxed checker accepts exactly the
// k-scaled mutations: multiplying a read's response by k stays admissible
// under a k-multiplicative envelope, multiplying by k+1 (over the whole
// history) eventually does not.
func TestCheckerEnvelopeSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const k = 3
	acc := object.Accuracy{K: k}
	for i := 0; i < 50; i++ {
		h := genCounterHistory(rng, 80)
		scaled := make([]history.Op, len(h))
		copy(scaled, h)
		for j := range scaled {
			if scaled[j].Kind == history.KindCounterRead {
				scaled[j].Resp *= k
			}
		}
		if res := Counter(scaled, acc, 0); !res.OK {
			t.Fatalf("x*k responses rejected under k envelope: %s", res.Reason)
		}
		over := make([]history.Op, len(h))
		copy(over, h)
		bad := false
		for j := range over {
			if over[j].Kind == history.KindCounterRead {
				over[j].Resp = over[j].Resp*k + over[j].Resp + 1 // > v*k
				bad = true
			}
		}
		if bad {
			if res := Counter(over, acc, 0); res.OK {
				t.Fatal("responses above v*k accepted under k envelope")
			}
		}
	}
}

func TestMultEnvelopeBoundsQuick(t *testing.T) {
	check := func(xRaw uint32, kRaw uint8) bool {
		x := uint64(xRaw)
		k := uint64(kRaw)%9 + 1
		lo, hi := MultEnvelope{K: k}.Bounds(x)
		// lo is the least v with Contains(v, x); hi the greatest (modulo
		// saturation).
		acc := object.Accuracy{K: k}
		if !acc.Contains(lo, x) && !(x == 0 && lo == 0) {
			return false
		}
		if lo > 0 && acc.Contains(lo-1, x) {
			return false
		}
		if hi < ^uint64(0) && acc.Contains(hi+1, x) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEnvelopeBounds(t *testing.T) {
	e := AddEnvelope{K: 5}
	cases := []struct {
		x      uint64
		lo, hi uint64
	}{
		{0, 0, 5},
		{3, 0, 8},
		{5, 0, 10},
		{6, 1, 11},
		{100, 95, 105},
	}
	for _, c := range cases {
		lo, hi := e.Bounds(c.x)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Bounds(%d) = [%d, %d], want [%d, %d]", c.x, lo, hi, c.lo, c.hi)
		}
	}
	if lo, hi := (AddEnvelope{K: 10}).Bounds(^uint64(0) - 3); hi != ^uint64(0) || lo != ^uint64(0)-13 {
		t.Errorf("overflow Bounds = [%d, %d]", lo, hi)
	}
	if (AddEnvelope{K: 2}).Describe() == "" || (MultEnvelope{K: 2}).Describe() == "" {
		t.Error("empty envelope descriptions")
	}
}

func TestCounterAdditiveEnvelope(t *testing.T) {
	// 10 increments then reads at various distances.
	var h []history.Op
	clock := uint64(0)
	for i := 0; i < 10; i++ {
		h = append(h, history.Op{Kind: history.KindInc, Inv: clock + 1, Ret: clock + 2})
		clock += 2
	}
	read := func(resp uint64) []history.Op {
		return append(append([]history.Op{}, h...),
			history.Op{Proc: 1, Kind: history.KindCounterRead, Resp: resp, Inv: clock + 1, Ret: clock + 2})
	}
	for _, c := range []struct {
		resp uint64
		ok   bool
	}{
		{10, true}, {7, true}, {13, true}, {6, false}, {14, false},
	} {
		res := CounterEnvelope(read(c.resp), AddEnvelope{K: 3}, 0)
		if res.OK != c.ok {
			t.Errorf("additive k=3, v=10, resp=%d: OK=%v want %v (%s)", c.resp, res.OK, c.ok, res.Reason)
		}
	}
}
