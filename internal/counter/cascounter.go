package counter

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// CASCounter is the textbook fetch&increment counter over a single CAS
// register: increments retry a compare-and-swap, reads read the register.
//
// It is exact and lock-free but NOT wait-free: an increment can retry
// forever under contention, so it is obstruction-free rather than
// wait-free. It exists as the conditional-primitive baseline of Section
// III-D (the paper's amortized lower bound covers implementations from
// reads, writes and conditionals like CAS: even this centralized design
// cannot beat Omega(log(n/k^2)) amortized once it is made k-accurate, and
// as an exact counter it serializes every increment on one cache line).
type CASCounter struct {
	reg *prim.CASReg
}

var _ object.Counter = (*CASCounter)(nil)

// NewCASCounter creates the counter.
func NewCASCounter(f *prim.Factory) (*CASCounter, error) {
	if f.N() < 1 {
		return nil, fmt.Errorf("counter: need at least one process, got %d", f.N())
	}
	return &CASCounter{reg: f.PaddedCASReg()}, nil
}

// CASHandle is a process's view of the counter.
type CASHandle struct {
	c *CASCounter
	p *prim.Proc
}

var _ object.CounterHandle = (*CASHandle)(nil)

// Handle binds process p to the counter.
func (c *CASCounter) Handle(p *prim.Proc) *CASHandle {
	return &CASHandle{c: c, p: p}
}

// CounterHandle implements object.Counter.
func (c *CASCounter) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// Inc retries CAS until it installs current+1. Lock-free: a failure means
// another increment succeeded.
func (h *CASHandle) Inc() {
	for {
		cur := h.c.reg.Read(h.p)
		if _, ok := h.c.reg.CompareAndSwap(h.p, cur, cur+1); ok {
			return
		}
	}
}

// Read returns the exact count.
func (h *CASHandle) Read() uint64 {
	return h.c.reg.Read(h.p)
}
