package counter

import (
	"fmt"
	"math"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// Morris is a concurrent Morris counter — the classic randomized
// approximate counter of the paper's related work (§I-A cites Morris [12],
// Flajolet's analysis [13], and the randomized concurrent counter of
// Aspnes and Censor [14]). It exists as the *contrast* side of the
// deterministic-vs-randomized frontier: randomized counters are only
// accurate with high probability, while the paper's point is that its
// k-multiplicative objects are deterministic — every read is in range, on
// every execution, under any schedule. Since PR 8 it doubles as the
// per-shard backend of the public Randomized(k, delta) accuracy
// (internal/shard.RandomizedBackend); E11/E19 measure it against the
// deterministic counters.
//
// The counter stores an exponent X in a CAS register and increments it
// with probability (1+1/a)^-X so that a*((1+1/a)^X - 1) estimates the
// count; larger a trades update cost (and state: X grows to roughly
// log(v/a)) for lower variance. Increment applies at most one CAS per call
// (retry-free: a lost race is itself a fair sample, so the increment
// simply abstains, slightly biasing low under contention — acceptable for
// an object whose envelope is probabilistic to begin with). Reads read X
// and return the estimator.
//
// Randomness is per handle: each MorrisHandle carries its own splitmix64
// state, seeded deterministically from the counter seed and the handle's
// process ID, so increments never contend on a shared RNG (the seed
// repository's version serialized every Inc behind one mutex-guarded
// *rand.Rand — the lock, not the algorithm, dominated its cost) and a
// fixed seed still reproduces runs exactly.
//
// It is NOT linearizable and NOT deterministic; it must not be used where
// the paper's objects are called for.
type Morris struct {
	a    float64
	seed int64
	reg  *prim.CASReg
}

var _ object.Counter = (*Morris)(nil)

// NewMorris creates a Morris counter with accuracy parameter a >= 1
// (standard deviation of the estimate is about count/sqrt(2a)) and a seed
// for reproducible experiments.
func NewMorris(f *prim.Factory, a float64, seed int64) (*Morris, error) {
	if f.N() < 1 {
		return nil, fmt.Errorf("counter: need at least one process, got %d", f.N())
	}
	if a < 1 {
		return nil, fmt.Errorf("counter: morris parameter a must be >= 1, got %v", a)
	}
	return &Morris{a: a, seed: seed, reg: f.PaddedCASReg()}, nil
}

// MorrisParam returns the accuracy parameter a making a Morris read land
// in the k-multiplicative envelope [v/k, k*v] with probability >= 1-delta.
// The estimator is unbiased with Var <= v^2/(2a) (Flajolet), so by
// Chebyshev P(|est - v| > eps*v) <= 1/(2*a*eps^2); a read escapes
// [v/k, k*v] only if it misses by more than eps*v with eps = 1 - 1/k (the
// nearer envelope edge), so a = ceil(1/(2*delta*eps^2)) suffices.
// Chebyshev is loose here — empirical miss rates run far below delta —
// which is the right side to err on for an envelope contract. Requires
// k >= 2 and 0 < delta < 1.
func MorrisParam(k uint64, delta float64) float64 {
	eps := 1 - 1/float64(k)
	return math.Ceil(1 / (2 * delta * eps * eps))
}

// estimate maps exponent x to the count estimate a*((1+1/a)^x - 1).
func (c *Morris) estimate(x uint64) uint64 {
	v := c.a * (math.Pow(1+1/c.a, float64(x)) - 1)
	if v < 0 {
		return 0
	}
	return uint64(math.Round(v))
}

// growProb is the probability of bumping the exponent from x.
func (c *Morris) growProb(x uint64) float64 {
	return math.Pow(1+1/c.a, -float64(x))
}

// MorrisHandle is a process's view of the counter, carrying the process's
// private RNG state.
type MorrisHandle struct {
	c   *Morris
	p   *prim.Proc
	rng uint64
}

var _ object.CounterHandle = (*MorrisHandle)(nil)

// Handle binds process p to the counter. The handle's RNG is seeded from
// (counter seed, process ID), so handle creation order does not affect
// reproducibility.
func (c *Morris) Handle(p *prim.Proc) *MorrisHandle {
	return &MorrisHandle{c: c, p: p, rng: mix64(uint64(c.seed) ^ (uint64(p.ID())+1)*0x9e3779b97f4a7c15)}
}

// CounterHandle implements object.Counter.
func (c *Morris) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// mix64 is the avalanche finalizer of Vigna's SplitMix64. The generator
// is counter-based: state advances by the golden-ratio increment and each
// output is the finalized counter, giving full period 2^64 per handle.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// flip draws from the handle-local generator: no sharing, no locking.
func (h *MorrisHandle) flip(p float64) bool {
	h.rng += 0x9e3779b97f4a7c15
	// 53-bit mantissa draw in [0, 1), the same construction math/rand uses.
	return float64(mix64(h.rng)>>11)/(1<<53) < p
}

// Inc bumps the exponent with the Morris probability: one read step plus
// at most one CAS step.
func (h *MorrisHandle) Inc() {
	x := h.c.reg.Read(h.p)
	if !h.flip(h.c.growProb(x)) {
		return
	}
	h.c.reg.CompareAndSwap(h.p, x, x+1)
}

// Read returns the randomized estimate: one read step.
func (h *MorrisHandle) Read() uint64 {
	return h.c.estimate(h.c.reg.Read(h.p))
}
