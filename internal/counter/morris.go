package counter

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// Morris is a concurrent Morris counter — the classic randomized
// approximate counter of the paper's related work (§I-A cites Morris [12],
// Flajolet's analysis [13], and the randomized concurrent counter of
// Aspnes and Censor [14]). It exists as a *contrast* baseline for
// experiment E11: randomized counters are only accurate with high
// probability, while the paper's point is that its k-multiplicative
// objects are deterministic — every read is in range, on every execution,
// under any schedule.
//
// The counter stores an exponent X in a CAS register and increments it
// with probability a/(a+value-ish) so that (1+1/a)^X - 1 estimates the
// count; larger a trades update cost for lower variance. Increment applies
// at most one CAS per call (retry-free: a lost race is itself a fair
// sample, so the increment simply abstains, slightly biasing low under
// contention — acceptable for a baseline whose errors are the point).
// Reads read X and return the estimator.
//
// It is NOT linearizable and NOT deterministic; it must not be used where
// the paper's objects are called for.
type Morris struct {
	a   float64
	reg *prim.CASReg

	mu  sync.Mutex
	rng *rand.Rand
}

var _ object.Counter = (*Morris)(nil)

// NewMorris creates a Morris counter with accuracy parameter a >= 1
// (standard deviation of the estimate is about count/sqrt(2a)) and a seed
// for reproducible experiments.
func NewMorris(f *prim.Factory, a float64, seed int64) (*Morris, error) {
	if f.N() < 1 {
		return nil, fmt.Errorf("counter: need at least one process, got %d", f.N())
	}
	if a < 1 {
		return nil, fmt.Errorf("counter: morris parameter a must be >= 1, got %v", a)
	}
	return &Morris{a: a, reg: f.CASReg(), rng: rand.New(rand.NewSource(seed))}, nil
}

// estimate maps exponent x to the count estimate a*((1+1/a)^x - 1).
func (c *Morris) estimate(x uint64) uint64 {
	v := c.a * (math.Pow(1+1/c.a, float64(x)) - 1)
	if v < 0 {
		return 0
	}
	return uint64(math.Round(v))
}

// growProb is the probability of bumping the exponent from x.
func (c *Morris) growProb(x uint64) float64 {
	return math.Pow(1+1/c.a, -float64(x))
}

func (c *Morris) flip(p float64) bool {
	c.mu.Lock()
	ok := c.rng.Float64() < p
	c.mu.Unlock()
	return ok
}

// MorrisHandle is a process's view of the counter.
type MorrisHandle struct {
	c *Morris
	p *prim.Proc
}

var _ object.CounterHandle = (*MorrisHandle)(nil)

// Handle binds process p to the counter.
func (c *Morris) Handle(p *prim.Proc) *MorrisHandle {
	return &MorrisHandle{c: c, p: p}
}

// CounterHandle implements object.Counter.
func (c *Morris) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// Inc bumps the exponent with the Morris probability: one read step plus
// at most one CAS step.
func (h *MorrisHandle) Inc() {
	x := h.c.reg.Read(h.p)
	if !h.c.flip(h.c.growProb(x)) {
		return
	}
	h.c.reg.CompareAndSwap(h.p, x, x+1)
}

// Read returns the randomized estimate: one read step.
func (h *MorrisHandle) Read() uint64 {
	return h.c.estimate(h.c.reg.Read(h.p))
}
