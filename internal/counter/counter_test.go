package counter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// builders enumerates every exact counter implementation under test.
func builders() map[string]func(f *prim.Factory) (object.Counter, error) {
	return map[string]func(f *prim.Factory) (object.Counter, error){
		"collect": func(f *prim.Factory) (object.Counter, error) { return NewCollect(f) },
		"snapshot": func(f *prim.Factory) (object.Counter, error) {
			return NewSnapshotCounter(f)
		},
		"aach": func(f *prim.Factory) (object.Counter, error) { return NewAACH(f) },
	}
}

func TestCountersSequentialExact(t *testing.T) {
	for name, mk := range builders() {
		t.Run(name, func(t *testing.T) {
			const n = 4
			f := prim.NewFactory(n)
			c, err := mk(f)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]object.CounterHandle, n)
			for i := range handles {
				handles[i] = c.CounterHandle(f.Proc(i))
			}
			if got := handles[0].Read(); got != 0 {
				t.Fatalf("initial Read = %d, want 0", got)
			}
			total := uint64(0)
			rng := rand.New(rand.NewSource(7))
			for op := 0; op < 500; op++ {
				h := handles[rng.Intn(n)]
				if rng.Intn(3) > 0 {
					h.Inc()
					total++
				} else if got := h.Read(); got != total {
					t.Fatalf("op %d: Read = %d, want %d", op, got, total)
				}
			}
			if got := handles[3].Read(); got != total {
				t.Fatalf("final Read = %d, want %d", got, total)
			}
		})
	}
}

func TestCountersQuickSequential(t *testing.T) {
	for name, mk := range builders() {
		t.Run(name, func(t *testing.T) {
			check := func(seed int64, nRaw uint8) bool {
				n := int(nRaw)%6 + 1
				f := prim.NewFactory(n)
				c, err := mk(f)
				if err != nil {
					return false
				}
				handles := make([]object.CounterHandle, n)
				for i := range handles {
					handles[i] = c.CounterHandle(f.Proc(i))
				}
				rng := rand.New(rand.NewSource(seed))
				total := uint64(0)
				for op := 0; op < 200; op++ {
					h := handles[rng.Intn(n)]
					if rng.Intn(2) == 0 {
						h.Inc()
						total++
					} else if h.Read() != total {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCollectStepComplexity(t *testing.T) {
	const n = 16
	f := prim.NewFactory(n)
	c, err := NewCollect(f)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Proc(0)
	h := c.Handle(p)

	p.ResetSteps()
	h.Inc()
	if got := p.Steps(); got != 1 {
		t.Fatalf("Inc took %d steps, want 1", got)
	}
	p.ResetSteps()
	h.Read()
	if got := p.Steps(); got != n {
		t.Fatalf("Read took %d steps, want n=%d", got, n)
	}
}

func TestAACHStepComplexityLogarithmic(t *testing.T) {
	// Increments walk one leaf-to-root path: O(log n) nodes, each costing
	// O(log v) on its unbounded max register. For n=16, v small, an
	// increment must stay well under the O(n) of a snapshot-based counter.
	const n = 16
	f := prim.NewFactory(n)
	c, err := NewAACH(f)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Proc(0)
	h := c.Handle(p)
	for i := 0; i < 100; i++ {
		h.Inc()
	}
	p.ResetSteps()
	h.Inc()
	incSteps := p.Steps()
	// Path length is ceil(log2 16) = 4 nodes + 1 leaf write; each node
	// refresh costs 2 child reads + 1 unbounded max-register write
	// (~log v + log 64 steps). Generous ceiling: 150.
	if incSteps > 150 {
		t.Fatalf("AACH Inc took %d steps, want O(log n * log v) << n^2", incSteps)
	}
	p.ResetSteps()
	h.Read()
	readSteps := p.Steps()
	if readSteps > 20 {
		t.Fatalf("AACH Read took %d steps, want one max-register read", readSteps)
	}
}

func TestAACHPathCoverage(t *testing.T) {
	// Every process's increments must reach the root: interleaved
	// increments from all processes sum correctly.
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		f := prim.NewFactory(n)
		c, err := NewAACH(f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		handles := make([]*AACHHandle, n)
		for i := range handles {
			handles[i] = c.Handle(f.Proc(i))
		}
		for round := 0; round < 3; round++ {
			for i := 0; i < n; i++ {
				handles[i].Inc()
			}
		}
		if got := handles[0].Read(); got != uint64(3*n) {
			t.Fatalf("n=%d: Read = %d, want %d", n, got, 3*n)
		}
	}
}

func TestCounterRejectsZeroProcs(t *testing.T) {
	f := prim.NewFactory(0)
	if _, err := NewCollect(f); err == nil {
		t.Fatal("NewCollect with 0 procs succeeded")
	}
	if _, err := NewAACH(f); err == nil {
		t.Fatal("NewAACH with 0 procs succeeded")
	}
	if _, err := NewSnapshotCounter(f); err == nil {
		t.Fatal("NewSnapshotCounter with 0 procs succeeded")
	}
}
