package counter_test

import (
	"sync"
	"testing"

	"approxobj/internal/counter"
	"approxobj/internal/prim"
)

// TestAACHConcurrentSoak hammers the exact AACH tree counter from n real
// goroutines through nil-Gate procs. AACH is exact, so the quiescent Read
// must equal the true increment count precisely: the max registers at the
// internal nodes make concurrent path refreshes monotone, and whichever
// process refreshes a node last has, by then, seen every leaf write below
// it propagated. Run with -race this exercises the production code path of
// the tree refresh, including the bulk IncN leaf write.
func TestAACHConcurrentSoak(t *testing.T) {
	for _, tc := range []struct {
		n    int
		perG int
		bulk uint64 // 0 = plain Inc, else IncN(bulk)
	}{
		{n: 4, perG: 5_000},
		{n: 8, perG: 2_000},
		{n: 7, perG: 2_000}, // non-power-of-two tree shape
		{n: 8, perG: 500, bulk: 8},
	} {
		f := prim.NewFactory(tc.n)
		c, err := counter.NewAACH(f)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(tc.n)
		for i := 0; i < tc.n; i++ {
			h := c.Handle(f.Proc(i))
			go func() {
				defer wg.Done()
				for j := 0; j < tc.perG; j++ {
					if tc.bulk > 0 {
						h.IncN(tc.bulk)
					} else {
						h.Inc()
					}
					if j%500 == 0 {
						h.Read()
					}
				}
			}()
		}
		wg.Wait()

		per := uint64(tc.perG)
		if tc.bulk > 0 {
			per *= tc.bulk
		}
		total := uint64(tc.n) * per
		if got := c.Handle(f.Proc(0)).Read(); got != total {
			t.Errorf("n=%d bulk=%d: quiescent read %d, want exact %d", tc.n, tc.bulk, got, total)
		}
	}
}
