package counter

import (
	"math/rand"
	"sync"
	"testing"

	"approxobj/internal/prim"
)

func TestAdditiveSequentialErrorBound(t *testing.T) {
	for _, cfg := range []struct {
		n int
		k uint64
	}{
		{1, 10}, {4, 10}, {4, 100}, {8, 3}, {8, 64},
	} {
		f := prim.NewFactory(cfg.n)
		c, err := NewAdditive(f, cfg.k)
		if err != nil {
			t.Fatal(err)
		}
		handles := make([]*AdditiveHandle, cfg.n)
		for i := range handles {
			handles[i] = c.Handle(f.Proc(i))
		}
		rng := rand.New(rand.NewSource(int64(cfg.n)*100 + int64(cfg.k)))
		total := uint64(0)
		for op := 0; op < 5000; op++ {
			h := handles[rng.Intn(cfg.n)]
			if rng.Intn(4) > 0 {
				h.Inc()
				total++
				continue
			}
			x := h.Read()
			lo := uint64(0)
			if total > cfg.k {
				lo = total - cfg.k
			}
			if x < lo || x > total+cfg.k {
				t.Fatalf("n=%d k=%d: Read = %d, true %d: outside +-k", cfg.n, cfg.k, x, total)
			}
		}
	}
}

func TestAdditiveFlushMakesExact(t *testing.T) {
	const n = 4
	const k = 40
	f := prim.NewFactory(n)
	c, err := NewAdditive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*AdditiveHandle, n)
	for i := range handles {
		handles[i] = c.Handle(f.Proc(i))
	}
	for round := 0; round < 7; round++ {
		for _, h := range handles {
			h.Inc()
		}
	}
	for _, h := range handles {
		h.Flush()
	}
	if got := handles[0].Read(); got != 28 {
		t.Fatalf("Read after flush = %d, want 28 exactly", got)
	}
	// Flushing twice is a no-op (no extra write step).
	p := f.Proc(0)
	before := p.Steps()
	c.Handle(p).Flush()
	if p.Steps() != before {
		t.Fatal("idle Flush performed a step")
	}
}

func TestAdditiveBatch(t *testing.T) {
	cases := []struct {
		n     int
		k     uint64
		batch uint64
	}{
		{4, 100, 25}, {4, 3, 1}, {1, 7, 7}, {10, 10, 1}, {3, 10, 3},
	}
	for _, c := range cases {
		f := prim.NewFactory(c.n)
		ctr, err := NewAdditive(f, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got := ctr.Batch(); got != c.batch {
			t.Errorf("Batch(n=%d, k=%d) = %d, want %d", c.n, c.k, got, c.batch)
		}
		if ctr.K() != c.k {
			t.Errorf("K() = %d, want %d", ctr.K(), c.k)
		}
	}
}

func TestAdditiveIncAmortizedSteps(t *testing.T) {
	// With batch b, increments cost 1/b amortized steps.
	const n = 2
	const k = 64 // batch 32
	f := prim.NewFactory(n)
	c, err := NewAdditive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Proc(0)
	h := c.Handle(p)
	const incs = 32 * 100
	for i := 0; i < incs; i++ {
		h.Inc()
	}
	if got, want := p.Steps(), uint64(100); got != want {
		t.Fatalf("steps = %d for %d incs, want %d (one write per batch of 32)", got, incs, want)
	}
}

func TestAdditiveConcurrent(t *testing.T) {
	const n = 8
	const k = 80
	const perProc = 5000
	f := prim.NewFactory(n)
	c, err := NewAdditive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(f.Proc(i))
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
			h.Flush()
		}(i)
	}
	wg.Wait()
	if got := c.Handle(f.Proc(0)).Read(); got != n*perProc {
		t.Fatalf("flushed Read = %d, want %d", got, n*perProc)
	}
}

func TestCASCounterSequential(t *testing.T) {
	f := prim.NewFactory(2)
	c, err := NewCASCounter(f)
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := c.Handle(f.Proc(0)), c.Handle(f.Proc(1))
	for i := 0; i < 100; i++ {
		h0.Inc()
		h1.Inc()
	}
	if got := h0.Read(); got != 200 {
		t.Fatalf("Read = %d, want 200", got)
	}
}

func TestCASCounterConcurrentExact(t *testing.T) {
	const n = 8
	const perProc = 20_000
	f := prim.NewFactory(n)
	c, err := NewCASCounter(f)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(f.Proc(i))
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Handle(f.Proc(0)).Read(); got != n*perProc {
		t.Fatalf("CAS counter lost updates: %d, want %d", got, n*perProc)
	}
}
