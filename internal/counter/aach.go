package counter

import (
	"fmt"

	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// AACH is the exact counter of Aspnes, Attiya and Censor-Hillel [8]: a
// balanced binary tree with the n processes' single-writer registers at the
// leaves and a max register at every internal node holding the number of
// increments in its subtree. An increment bumps the caller's leaf and
// refreshes each node on the leaf-to-root path with the sum of its
// children; a read returns the root max register's value.
//
// Max registers make the refreshes monotone, so stale concurrent refreshes
// cannot regress a node. With unbounded (epoch-ladder) max registers at the
// nodes, increments cost O(log n * log v) steps and reads O(log v), the
// sub-linear exact baseline the paper contrasts with Algorithm 1: for
// executions with exponentially many increments, both degenerate while
// Algorithm 1 stays at O(1) amortized.
type AACH struct {
	n    int
	root *aachNode
	// leaves[i] is process i's single-writer register.
	leaves []*prim.Reg
	// paths[i] lists the internal nodes from leaf i's parent to the root.
	paths [][]*aachNode
}

// aachNode is an internal tree node. Children are either both nodes or
// leaf-register indices (for subtrees of size 1).
type aachNode struct {
	sum         *maxreg.Unbounded
	left, right *aachNode
	// leftLeaf/rightLeaf are used when the respective child is a single
	// leaf register rather than a subtree.
	leftLeaf, rightLeaf *prim.Reg
}

var _ object.Counter = (*AACH)(nil)

// NewAACH creates the tree counter for the factory's n processes.
func NewAACH(f *prim.Factory) (*AACH, error) {
	n := f.N()
	if n < 1 {
		return nil, fmt.Errorf("counter: need at least one process, got %d", n)
	}
	c := &AACH{
		n:      n,
		leaves: f.RegRow(n),
		paths:  make([][]*aachNode, n),
	}
	if n == 1 {
		// Single process: the "tree" is one node over one leaf.
		root, err := newAACHNode(f)
		if err != nil {
			return nil, err
		}
		root.leftLeaf = c.leaves[0]
		c.root = root
		c.paths[0] = []*aachNode{root}
		return c, nil
	}
	root, err := c.build(f, 0, n)
	if err != nil {
		return nil, err
	}
	c.root = root
	return c, nil
}

func newAACHNode(f *prim.Factory) (*aachNode, error) {
	mr, err := maxreg.NewUnbounded(f, maxreg.ExactFactory)
	if err != nil {
		return nil, err
	}
	return &aachNode{sum: mr}, nil
}

// build creates the subtree covering leaves [lo, hi) (hi-lo >= 2) and
// records each covered leaf's root-ward path.
func (c *AACH) build(f *prim.Factory, lo, hi int) (*aachNode, error) {
	node, err := newAACHNode(f)
	if err != nil {
		return nil, err
	}
	mid := (lo + hi) / 2
	if mid-lo == 1 {
		node.leftLeaf = c.leaves[lo]
		c.paths[lo] = append(c.paths[lo], node)
	} else {
		left, err := c.build(f, lo, mid)
		if err != nil {
			return nil, err
		}
		node.left = left
	}
	if hi-mid == 1 {
		node.rightLeaf = c.leaves[mid]
		c.paths[mid] = append(c.paths[mid], node)
	} else {
		right, err := c.build(f, mid, hi)
		if err != nil {
			return nil, err
		}
		node.right = right
	}
	// Every leaf under this node passes through it on the way to the root.
	for i := lo; i < hi; i++ {
		if c.paths[i] != nil && c.paths[i][len(c.paths[i])-1] == node {
			continue
		}
		c.paths[i] = append(c.paths[i], node)
	}
	return node, nil
}

// childSum reads a node's two children (register or subtree max register).
func (node *aachNode) childSum(p *prim.Proc) uint64 {
	var sum uint64
	switch {
	case node.leftLeaf != nil:
		sum += node.leftLeaf.Read(p)
	case node.left != nil:
		sum += node.left.sum.Read(p)
	}
	switch {
	case node.rightLeaf != nil:
		sum += node.rightLeaf.Read(p)
	case node.right != nil:
		sum += node.right.sum.Read(p)
	}
	return sum
}

// AACHHandle is a process's view of the tree counter.
type AACHHandle struct {
	c     *AACH
	p     *prim.Proc
	local uint64
}

var _ object.CounterHandle = (*AACHHandle)(nil)

// Handle binds process p to the counter.
func (c *AACH) Handle(p *prim.Proc) *AACHHandle {
	return &AACHHandle{c: c, p: p}
}

// CounterHandle implements object.Counter.
func (c *AACH) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// Inc bumps the caller's leaf and refreshes every node on its path with the
// sum of the node's children.
func (h *AACHHandle) Inc() { h.IncN(1) }

// IncN applies d increments with a single leaf write and path refresh: the
// leaf is single-writer, so publishing local+d at once is linearizable as d
// consecutive increments (all d become visible at the leaf write).
func (h *AACHHandle) IncN(d uint64) {
	if d == 0 {
		return
	}
	h.local += d
	h.c.leaves[h.p.ID()].Write(h.p, h.local)
	for _, node := range h.c.paths[h.p.ID()] {
		node.sum.Write(h.p, node.childSum(h.p))
	}
}

// Read returns the root max register's value.
func (h *AACHHandle) Read() uint64 {
	return h.c.root.sum.Read(h.p)
}
