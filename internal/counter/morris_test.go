package counter

import (
	"math"
	"sync"
	"testing"

	"approxobj/internal/prim"
)

func TestMorrisValidation(t *testing.T) {
	f := prim.NewFactory(1)
	if _, err := NewMorris(f, 0.5, 1); err == nil {
		t.Fatal("a < 1 accepted")
	}
	if _, err := NewMorris(prim.NewFactory(0), 8, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestMorrisEstimateMonotone(t *testing.T) {
	f := prim.NewFactory(1)
	c, err := NewMorris(f, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.estimate(0); got != 0 {
		t.Fatalf("estimate(0) = %d, want 0", got)
	}
	prev := uint64(0)
	for x := uint64(1); x < 60; x++ {
		e := c.estimate(x)
		if e <= prev {
			t.Fatalf("estimate(%d) = %d not increasing past %d", x, e, prev)
		}
		prev = e
	}
}

func TestMorrisGrowProb(t *testing.T) {
	f := prim.NewFactory(1)
	c, err := NewMorris(f, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.growProb(0); got != 1 {
		t.Fatalf("growProb(0) = %v, want 1 (first increment always counts)", got)
	}
	for x := uint64(1); x < 40; x++ {
		p := c.growProb(x)
		if p <= 0 || p >= 1 {
			t.Fatalf("growProb(%d) = %v out of (0, 1)", x, p)
		}
		if p >= c.growProb(x-1) && x > 1 {
			t.Fatalf("growProb not decreasing at %d", x)
		}
	}
}

func TestMorrisRoughAccuracy(t *testing.T) {
	// Statistical smoke test: with a=64 the relative standard deviation is
	// about 1/sqrt(128) ~ 9%, so averaging over trials the estimate must
	// land near the true count. Seeded: deterministic test.
	const trials = 30
	const incs = 20000
	var sum float64
	for trial := int64(0); trial < trials; trial++ {
		f := prim.NewFactory(1)
		c, err := NewMorris(f, 64, trial)
		if err != nil {
			t.Fatal(err)
		}
		h := c.Handle(f.Proc(0))
		for i := 0; i < incs; i++ {
			h.Inc()
		}
		sum += float64(h.Read())
	}
	mean := sum / trials
	if math.Abs(mean-incs)/incs > 0.15 {
		t.Fatalf("mean estimate %.0f deviates more than 15%% from %d", mean, incs)
	}
}

func TestMorrisConcurrentSafe(t *testing.T) {
	// No races, estimate in a sane band (wide: contention abstentions bias
	// low by design).
	const n = 8
	const perProc = 5000
	f := prim.NewFactory(n)
	c, err := NewMorris(f, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Handle(f.Proc(i))
			for j := 0; j < perProc; j++ {
				h.Inc()
			}
		}(i)
	}
	wg.Wait()
	got := c.Handle(f.Proc(0)).Read()
	const v = n * perProc
	if got < v/10 || got > v*10 {
		t.Fatalf("estimate %d wildly off true count %d", got, v)
	}
}

func TestMorrisStepCost(t *testing.T) {
	f := prim.NewFactory(1)
	c, err := NewMorris(f, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Proc(0)
	h := c.Handle(p)
	const incs = 10000
	for i := 0; i < incs; i++ {
		h.Inc()
	}
	// Each Inc is 1 read + at most 1 CAS.
	if p.Steps() > 2*incs {
		t.Fatalf("morris incs took %d steps for %d incs, want <= 2/inc", p.Steps(), incs)
	}
}
