// Package counter implements the exact-counter substrates the paper's
// bounds are measured against:
//
//   - Collect: the folklore wait-free exact counter with O(1) increments
//     and O(n) reads (sum of a collect over single-writer components; the
//     optimal worst-case construction the introduction refers to via [6]).
//   - SnapshotCounter: the same counter expressed over a full atomic
//     snapshot, as described verbatim in the paper's introduction.
//   - AACH: the counter of Aspnes, Attiya and Censor-Hillel [8] — a
//     balanced tree with max registers at internal nodes — whose increments
//     cost O(log n * log v) and reads O(log v) steps.
//
// Since PR 6 the public package no longer routes to these types directly:
// they serve as reference implementations — conformance oracles the
// envelope checkers compare sharded reads against, and step-complexity
// baselines for the benchmark harness — plus the substrate the sharded
// backend plane (internal/shard) wraps.
package counter

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// Collect is the exact counter from single-writer components: process i
// increments by overwriting its own register with its local count, and a
// reader sums one read of each register. Increment-only single-writer
// components make the summed collect linearizable: every read's response
// lies between the number of increments that completed before it started
// and the number that started before it completed, and responses of
// non-overlapping reads are monotone because components never decrease.
type Collect struct {
	n    int
	regs []*prim.Reg
}

var _ object.Counter = (*Collect)(nil)

// NewCollect creates the collect counter for the factory's n processes.
func NewCollect(f *prim.Factory) (*Collect, error) {
	n := f.N()
	if n < 1 {
		return nil, fmt.Errorf("counter: need at least one process, got %d", n)
	}
	return &Collect{n: n, regs: f.RegRow(n)}, nil
}

// CollectHandle is a process's view of a Collect counter; it caches the
// process's own component (single-writer state) so Inc is one write step.
type CollectHandle struct {
	c     *Collect
	p     *prim.Proc
	local uint64
}

var _ object.CounterHandle = (*CollectHandle)(nil)

// Handle binds process p to the counter.
func (c *Collect) Handle(p *prim.Proc) *CollectHandle {
	return &CollectHandle{c: c, p: p}
}

// CounterHandle implements object.Counter.
func (c *Collect) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// Inc increments the counter: one write step.
func (h *CollectHandle) Inc() {
	h.local++
	h.c.regs[h.p.ID()].Write(h.p, h.local)
}

// Read sums one read of every component: n read steps.
func (h *CollectHandle) Read() uint64 {
	var sum uint64
	for _, r := range h.c.regs {
		sum += r.Read(h.p)
	}
	return sum
}
