package counter

import (
	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/snapshot"
)

// SnapshotCounter is the exact counter the paper's introduction describes:
// "to increment the counter, a process simply increments its component of
// the snapshot, and to read the counter's value, it invokes Scan and
// returns the sum of all components in the view it obtains." Linearizable
// and wait-free by the linearizability and wait-freedom of the snapshot.
type SnapshotCounter struct {
	snap *snapshot.Snapshot
}

var _ object.Counter = (*SnapshotCounter)(nil)

// NewSnapshotCounter creates the counter over a fresh atomic snapshot.
func NewSnapshotCounter(f *prim.Factory) (*SnapshotCounter, error) {
	s, err := snapshot.New(f)
	if err != nil {
		return nil, err
	}
	return &SnapshotCounter{snap: s}, nil
}

// SnapshotCounterHandle is a process's view of the counter.
type SnapshotCounterHandle struct {
	h     *snapshot.Handle
	local uint64
}

var _ object.CounterHandle = (*SnapshotCounterHandle)(nil)

// Handle binds process p to the counter.
func (c *SnapshotCounter) Handle(p *prim.Proc) *SnapshotCounterHandle {
	return &SnapshotCounterHandle{h: c.snap.Handle(p)}
}

// CounterHandle implements object.Counter.
func (c *SnapshotCounter) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// Inc increments this process's component.
func (h *SnapshotCounterHandle) Inc() {
	h.local++
	h.h.Update(h.local)
}

// Read scans and sums all components.
func (h *SnapshotCounterHandle) Read() uint64 {
	var sum uint64
	for _, v := range h.h.Scan() {
		sum += v
	}
	return sum
}
