package counter

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// Additive is a k-additive-accurate counter: reads return x with
// |x - v| <= k for the true count v. This is the other relaxation the
// paper discusses (Section I-A: Aspnes et al. [8] prove an
// Omega(min(n-1, log m - log k)) worst-case bound for it, with no matching
// upper bound known).
//
// The construction is the natural batched collect: each process holds up
// to b = floor(k/n) unannounced increments before flushing its exact total
// to its single-writer component; readers sum a collect. At most n(b) <=
// k increments are unannounced at any time... precisely, each process
// hides at most b, so a read's error is at most n*b <= k additively (the
// collect itself is exactly accurate for announced counts, as in Collect).
// Increments therefore cost 1/b amortized steps and reads n steps: the
// additive relaxation buys a constant-factor increment discount but — in
// line with [8]'s lower bound — no asymptotic read improvement, in
// contrast with the multiplicative counter's exponential gains.
//
// For k < n the batch is 1 and the counter degenerates to the exact
// Collect.
type Additive struct {
	n     int
	k     uint64
	batch uint64
	regs  []*prim.Reg
}

var _ object.Counter = (*Additive)(nil)

// NewAdditive creates a k-additive-accurate counter for the factory's n
// processes.
func NewAdditive(f *prim.Factory, k uint64) (*Additive, error) {
	n := f.N()
	if n < 1 {
		return nil, fmt.Errorf("counter: need at least one process, got %d", n)
	}
	batch := k / uint64(n)
	if batch < 1 {
		batch = 1
	}
	return &Additive{n: n, k: k, batch: batch, regs: f.RegRow(n)}, nil
}

// K returns the additive accuracy parameter.
func (c *Additive) K() uint64 { return c.k }

// Batch returns the per-process unannounced-increment budget.
func (c *Additive) Batch() uint64 { return c.batch }

// AdditiveHandle is a process's view of the counter.
type AdditiveHandle struct {
	c         *Additive
	p         *prim.Proc
	total     uint64 // all increments by this process
	announced uint64 // increments visible in the component register
}

var _ object.CounterHandle = (*AdditiveHandle)(nil)

// Handle binds process p to the counter.
func (c *Additive) Handle(p *prim.Proc) *AdditiveHandle {
	return &AdditiveHandle{c: c, p: p}
}

// CounterHandle implements object.Counter.
func (c *Additive) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// Inc adds one, flushing the exact total every batch increments.
func (h *AdditiveHandle) Inc() { h.IncN(1) }

// IncN applies d increments at once: the single-writer component is
// refreshed with one write whenever the unannounced count reaches the
// batch, so d increments cost at most one shared step.
func (h *AdditiveHandle) IncN(d uint64) {
	if d == 0 {
		return
	}
	h.total += d
	if h.total-h.announced >= h.c.batch {
		h.c.regs[h.p.ID()].Write(h.p, h.total)
		h.announced = h.total
	}
}

// Flush makes all of this process's increments visible (useful before
// quiescent reads).
func (h *AdditiveHandle) Flush() {
	if h.total != h.announced {
		h.c.regs[h.p.ID()].Write(h.p, h.total)
		h.announced = h.total
	}
}

// Read sums one read of every component; the result is within k of the
// true count.
func (h *AdditiveHandle) Read() uint64 {
	var sum uint64
	for _, r := range h.c.regs {
		sum += r.Read(h.p)
	}
	return sum
}
