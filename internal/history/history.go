// Package history records concurrent operation histories for
// linearizability checking.
//
// Timestamps are logical: a shared atomic clock is bumped at each
// invocation and response, so op1 precedes op2 in the recorded history
// exactly when op1's response was drawn before op2's invocation — the
// real-time precedence relation linearizability is defined over. Recording
// imposes ordering points, which can only make histories *more* ordered
// than the uninstrumented run, never invent false concurrency.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind labels an operation in a history.
type Kind int

// Operation kinds for counters and max registers.
const (
	KindInc Kind = iota + 1
	KindCounterRead
	KindWrite
	KindMaxRead
)

// String returns the operation name.
func (k Kind) String() string {
	switch k {
	case KindInc:
		return "Inc"
	case KindCounterRead:
		return "CounterRead"
	case KindWrite:
		return "Write"
	case KindMaxRead:
		return "MaxRead"
	default:
		return "invalid"
	}
}

// Op is one completed operation.
type Op struct {
	Proc int
	Kind Kind
	Arg  uint64 // argument of Write; unused otherwise
	Resp uint64 // response of reads; unused otherwise
	Inv  uint64 // logical invocation time
	Ret  uint64 // logical response time
}

// String formats the operation for failure messages.
func (o Op) String() string {
	switch o.Kind {
	case KindWrite:
		return fmt.Sprintf("p%d.%v(%d)@[%d,%d]", o.Proc, o.Kind, o.Arg, o.Inv, o.Ret)
	case KindCounterRead, KindMaxRead:
		return fmt.Sprintf("p%d.%v()=%d@[%d,%d]", o.Proc, o.Kind, o.Resp, o.Inv, o.Ret)
	default:
		return fmt.Sprintf("p%d.%v()@[%d,%d]", o.Proc, o.Kind, o.Inv, o.Ret)
	}
}

// Precedes reports real-time precedence: o completed before other began.
func (o Op) Precedes(other Op) bool { return o.Ret < other.Inv }

// Recorder collects operations from concurrent processes. Each process must
// record through its own per-process slot (no lock on the hot path beyond
// the shared clock).
type Recorder struct {
	clock atomic.Uint64
	mu    sync.Mutex
	logs  [][]Op
}

// NewRecorder creates a recorder for n processes.
func NewRecorder(n int) *Recorder {
	return &Recorder{logs: make([][]Op, n)}
}

// Record runs body as one operation of the given kind by proc, stamping
// logical invocation/response times around it, and stores the completed op.
// The body's return value becomes the response (ignored for increments and
// writes).
func (r *Recorder) Record(proc int, kind Kind, arg uint64, body func() uint64) uint64 {
	inv := r.clock.Add(1)
	resp := body()
	ret := r.clock.Add(1)
	op := Op{Proc: proc, Kind: kind, Arg: arg, Resp: resp, Inv: inv, Ret: ret}
	r.mu.Lock()
	r.logs[proc] = append(r.logs[proc], op)
	r.mu.Unlock()
	return resp
}

// History returns all recorded operations sorted by invocation time.
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []Op
	for _, log := range r.logs {
		all = append(all, log...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Inv < all[j].Inv })
	return all
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, log := range r.logs {
		n += len(log)
	}
	return n
}
