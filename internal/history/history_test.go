package history

import (
	"sync"
	"testing"
)

func TestRecorderSequential(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, KindInc, 0, func() uint64 { return 0 })
	got := r.Record(0, KindCounterRead, 0, func() uint64 { return 1 })
	if got != 1 {
		t.Fatalf("Record returned %d, want body's 1", got)
	}
	h := r.History()
	if len(h) != 2 {
		t.Fatalf("history has %d ops, want 2", len(h))
	}
	if !h[0].Precedes(h[1]) {
		t.Fatal("sequential ops not ordered by precedence")
	}
	if h[1].Resp != 1 {
		t.Fatalf("read response = %d, want 1", h[1].Resp)
	}
}

func TestRecorderTimestampsNested(t *testing.T) {
	r := NewRecorder(1)
	r.Record(0, KindWrite, 7, func() uint64 { return 0 })
	h := r.History()
	if h[0].Inv >= h[0].Ret {
		t.Fatalf("op interval [%d, %d] empty", h[0].Inv, h[0].Ret)
	}
	if h[0].Arg != 7 {
		t.Fatalf("arg = %d, want 7", h[0].Arg)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	const procs = 8
	const opsPer = 200
	r := NewRecorder(procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < opsPer; j++ {
				r.Record(i, KindInc, 0, func() uint64 { return 0 })
			}
		}(i)
	}
	wg.Wait()

	h := r.History()
	if len(h) != procs*opsPer {
		t.Fatalf("history has %d ops, want %d", len(h), procs*opsPer)
	}
	if r.Len() != procs*opsPer {
		t.Fatalf("Len = %d, want %d", r.Len(), procs*opsPer)
	}
	// Timestamps are unique and each op's interval is non-empty.
	seen := make(map[uint64]bool, 2*len(h))
	for _, op := range h {
		if op.Inv >= op.Ret {
			t.Fatalf("op %v has empty interval", op)
		}
		if seen[op.Inv] || seen[op.Ret] {
			t.Fatalf("duplicate timestamp in %v", op)
		}
		seen[op.Inv] = true
		seen[op.Ret] = true
	}
	// History is sorted by invocation.
	for i := 1; i < len(h); i++ {
		if h[i-1].Inv > h[i].Inv {
			t.Fatal("history not sorted by invocation time")
		}
	}
	// A process's own ops never overlap.
	lastRet := make(map[int]uint64)
	for _, op := range h {
		if op.Inv < lastRet[op.Proc] {
			t.Fatalf("ops of process %d overlap", op.Proc)
		}
		lastRet[op.Proc] = op.Ret
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Proc: 1, Kind: KindWrite, Arg: 5, Inv: 1, Ret: 2}, "p1.Write(5)@[1,2]"},
		{Op{Proc: 2, Kind: KindCounterRead, Resp: 9, Inv: 3, Ret: 4}, "p2.CounterRead()=9@[3,4]"},
		{Op{Proc: 0, Kind: KindInc, Inv: 5, Ret: 6}, "p0.Inc()@[5,6]"},
		{Op{Proc: 3, Kind: KindMaxRead, Resp: 1, Inv: 7, Ret: 8}, "p3.MaxRead()=1@[7,8]"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if KindInc.String() != "Inc" || Kind(0).String() != "invalid" {
		t.Error("Kind.String mismatch")
	}
}
