package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

func TestKMultMaxRegConstructorValidation(t *testing.T) {
	f := prim.NewFactory(1)
	if _, err := NewKMultMaxReg(f, 8, 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := NewKMultMaxReg(f, 1, 2); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := NewKMultMaxReg(f, 2, 2); err != nil {
		t.Fatalf("smallest valid register rejected: %v", err)
	}
}

// TestKMultMaxRegHandComputed pins Algorithm 2's exact responses: a write
// of v records p = floor(log_k v) + 1 and reads return k^p.
func TestKMultMaxRegHandComputed(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	r, err := NewKMultMaxReg(f, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Read(p); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	steps := []struct{ write, want uint64 }{
		{1, 2}, // floor(log2 1)+1 = 1 -> 2^1
		{2, 4}, // floor(log2 2)+1 = 2 -> 2^2
		{3, 4}, // same MSB as 2
		{5, 8}, // floor(log2 5)+1 = 3
		{4, 8}, // smaller MSB: subsumed
		{1000, 1024},
		{7, 1024}, // far below the maximum
		{65535, 1 << 16},
	}
	for _, s := range steps {
		r.Write(p, s.write)
		if got := r.Read(p); got != s.want {
			t.Fatalf("after Write(%d): Read = %d, want %d", s.write, got, s.want)
		}
	}
}

func TestKMultMaxRegWriteZeroNoop(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	r, err := NewKMultMaxReg(f, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Steps()
	r.Write(p, 0)
	if p.Steps() != before {
		t.Fatal("Write(0) took steps")
	}
	if got := r.Read(p); got != 0 {
		t.Fatalf("Read after Write(0) = %d, want 0", got)
	}
}

func TestKMultMaxRegWritePanicsOutOfRange(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	r, err := NewKMultMaxReg(f, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Write(100) on 100-bounded register did not panic")
		}
	}()
	r.Write(p, 100)
}

// TestKMultMaxRegEnvelopeQuick verifies the sequential specification: for
// any write sequence, a read returns x with v <= x <= v*k for the true
// maximum v (the algorithm's actual guarantee is the tight upper half of
// the k-envelope).
func TestKMultMaxRegEnvelopeQuick(t *testing.T) {
	check := func(seed int64, kRaw uint8) bool {
		k := uint64(kRaw)%6 + 2
		const m = uint64(1) << 24
		f := prim.NewFactory(1)
		p := f.Proc(0)
		r, err := NewKMultMaxReg(f, m, k)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		max := uint64(0)
		for i := 0; i < 60; i++ {
			v := uint64(rng.Int63n(int64(m-1))) + 1
			r.Write(p, v)
			if v > max {
				max = v
			}
			x := r.Read(p)
			if x < max || (max <= ^uint64(0)/k && x > max*k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestKMultMaxRegStepComplexity pins Theorem IV.2's bound: every operation
// costs at most ceil(log2(floor(log_k(m-1)) + 2)) steps.
func TestKMultMaxRegStepComplexity(t *testing.T) {
	for _, c := range []struct {
		m, k  uint64
		depth int
	}{
		{1 << 8, 2, 4},   // log2(9) -> 4
		{1 << 16, 2, 5},  // log2(17) -> 5
		{1 << 60, 2, 6},  // log2(61) -> 6
		{1 << 60, 4, 5},  // log2(31) -> 5
		{1 << 60, 16, 4}, // log2(16) -> 4
	} {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		r, err := NewKMultMaxReg(f, c.m, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.InnerDepth(); got != c.depth {
			t.Errorf("InnerDepth(m=%d, k=%d) = %d, want %d", c.m, c.k, got, c.depth)
		}
		p.ResetSteps()
		r.Write(p, c.m-1)
		if got := p.Steps(); got > uint64(c.depth) {
			t.Errorf("m=%d k=%d: deepest Write took %d steps, bound %d", c.m, c.k, got, c.depth)
		}
		p.ResetSteps()
		r.Read(p)
		if got := p.Steps(); got > uint64(c.depth) {
			t.Errorf("m=%d k=%d: Read took %d steps, bound %d", c.m, c.k, got, c.depth)
		}
	}
}

// TestKMultUnboundedEnvelope drives the plug-in construction across epoch
// boundaries and checks the k-envelope against a sequential oracle.
func TestKMultUnboundedEnvelope(t *testing.T) {
	for _, k := range []uint64{2, 8} {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		u, err := NewKMultUnboundedMaxReg(f, k)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(k)))
		max := uint64(0)
		for i := 0; i < 500; i++ {
			e := uint(rng.Intn(50))
			v := uint64(1)<<e + uint64(rng.Int63n(1<<20))
			u.Write(p, v)
			if v > max {
				max = v
			}
			x := u.Read(p)
			if mulFitsU(x, k) && x*k < max {
				t.Fatalf("k=%d: Read = %d < max/k for max %d", k, x, max)
			}
			if mulFitsU(max, k) && x > max*k {
				t.Fatalf("k=%d: Read = %d > max*k for max %d", k, x, max)
			}
		}
	}
}

func mulFitsU(a, b uint64) bool {
	if a == 0 || b == 0 {
		return true
	}
	return a <= ^uint64(0)/b
}

// TestKMultMaxRegAccuracyInterface exercises the object-layer adapter.
func TestKMultMaxRegAccuracyInterface(t *testing.T) {
	f := prim.NewFactory(2)
	r, err := NewKMultMaxReg(f, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound() != 1<<16 || r.K() != 4 {
		t.Fatalf("Bound=%d K=%d", r.Bound(), r.K())
	}
	w := r.MaxRegHandle(f.Proc(0))
	rd := r.MaxRegHandle(f.Proc(1))
	w.Write(300)
	x := rd.Read()
	acc := object.Accuracy{K: 4}
	if !acc.Contains(300, x) {
		t.Fatalf("cross-handle Read = %d outside envelope of 300", x)
	}
}
