package core

import (
	"testing"

	"approxobj/internal/prim"
	"approxobj/internal/sim"
)

// starver is a scheduler that grants the victim one step out of every
// ratio steps, starving it behind the bullies.
type starver struct {
	victim int
	ratio  int
	tick   int
}

func (s *starver) Next(active []int) int {
	s.tick++
	if s.tick%s.ratio == 0 {
		for _, id := range active {
			if id == s.victim {
				return id
			}
		}
	}
	for _, id := range active {
		if id != s.victim {
			return id
		}
	}
	return active[0]
}

// TestMultCounterWaitFreeUnderStarvation pins wait-freedom (Lemma III.1)
// operationally: a starved process completes its operations within its own
// step budget no matter how many steps the other processes take in
// between. The victim performs a fixed program of increments and reads
// while three bullies hammer increments; the victim's own step count must
// stay within the theoretical budget.
func TestMultCounterWaitFreeUnderStarvation(t *testing.T) {
	const n = 4
	const k = 2
	m := sim.NewMachine(n)
	c, err := NewMultCounter(m.Factory(), k)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n-1; i++ {
		h := c.Handle(m.Proc(i))
		m.Spawn(i, func(*prim.Proc) {
			for j := 0; j < 200_000; j++ {
				h.Inc()
			}
		})
	}
	victim := c.Handle(m.Proc(n - 1))
	const victimOps = 50
	m.Spawn(n-1, func(*prim.Proc) {
		for j := 0; j < victimOps; j++ {
			victim.Inc()
			victim.Read()
		}
	})

	m.RunAll(&starver{victim: n - 1, ratio: 64}, 50_000_000)
	if m.Running(n - 1) {
		t.Fatal("starved process never finished (not wait-free)")
	}
	// Budget: increments are O(k) each worst case; reads are bounded by
	// the helped exit (O(n) H-scans every n switch reads) plus the
	// memoized scan. A generous linear budget per op suffices to expose
	// unbounded retries.
	steps := m.Proc(n - 1).Steps()
	const budgetPerOp = 64
	if steps > victimOps*2*budgetPerOp {
		t.Fatalf("starved process took %d steps for %d ops (> %d/op): wait-freedom degraded",
			steps, victimOps*2, budgetPerOp)
	}
}

// TestKMultMaxRegWaitFreeUnderStarvation does the same for Algorithm 2:
// operations are straight-line tree walks, so the victim's per-op steps
// must never exceed the tree depth even while writers race.
func TestKMultMaxRegWaitFreeUnderStarvation(t *testing.T) {
	const n = 4
	const m64 = uint64(1) << 32
	machine := sim.NewMachine(n)
	r, err := NewKMultMaxReg(machine.Factory(), m64, 2)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n-1; i++ {
		proc := machine.Proc(i)
		id := uint64(i)
		machine.Spawn(i, func(*prim.Proc) {
			for j := uint64(1); j < 50_000; j++ {
				r.Write(proc, (j*2048+id)%(m64-1)+1)
			}
		})
	}
	victimProc := machine.Proc(n - 1)
	const victimOps = 100
	machine.Spawn(n-1, func(*prim.Proc) {
		for j := 0; j < victimOps; j++ {
			r.Write(victimProc, m64-1-uint64(j))
			r.Read(victimProc)
		}
	})

	machine.RunAll(&starver{victim: n - 1, ratio: 50}, 50_000_000)
	if machine.Running(n - 1) {
		t.Fatal("starved process never finished")
	}
	depth := uint64(r.InnerDepth())
	if steps := victimProc.Steps(); steps > victimOps*2*depth {
		t.Fatalf("starved process took %d steps for %d ops, bound %d/op",
			steps, victimOps*2, depth)
	}
}
