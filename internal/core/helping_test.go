package core

import (
	"sync/atomic"
	"testing"

	"approxobj/internal/prim"
	"approxobj/internal/sim"
)

// driveReaderBehindWriter runs the true adversary of Lemma III.1: before
// the reader (process 1) is granted a step, the writer (process 0) runs
// until the switch at the reader's next scan position is set, so the scan
// never finds a 0 switch. The reader can then only terminate through the
// helping array. The adversary tracks the reader's scan position from the
// machine trace (switch reads are the events below the 2^32 switch-block
// boundary), never touching the reader's live state. It returns the number
// of steps the reader took and whether the writer was still running when
// the read completed.
func driveReaderBehindWriter(t *testing.T, m *sim.Machine, c *MultCounter, maxReaderSteps int) (readerSteps int, writerAlive bool) {
	t.Helper()
	pos := uint64(0) // next switch index the reader's scan will examine
	for m.Running(1) {
		// Hide the end of the switch sequence from the reader.
		for c.switches.Peek(pos) == 0 {
			if m.StepN(0, 1) == 0 {
				break // writer exhausted; reader may exit normally
			}
		}
		if !m.Step(1) {
			break
		}
		readerSteps++
		if readerSteps > maxReaderSteps {
			t.Fatalf("reader not wait-free: %d steps without terminating", readerSteps)
		}
		evs := m.TraceOf(1)
		last := evs[len(evs)-1]
		if last.Op == prim.OpRead && last.Obj < 1<<32 && last.Val == 1 {
			// The scan advanced: it next visits the first switch of the
			// following interval (from a last-of-interval position) or
			// the last switch of this one (from a first-of-interval).
			idx := uint64(last.Obj)
			if idx%c.k == 0 {
				pos = idx + 1
			} else {
				pos = idx + c.k - 1
			}
		}
	}
	return readerSteps, m.Running(0)
}

// TestReadHelpedByFastWriter pins the wait-freedom mechanism of Lemma
// III.1: a reader whose scan is perpetually overtaken must terminate
// through the helping array H after detecting a sequence number that
// advanced by >= 2 within its execution interval — long before the writer
// runs out of increments.
func TestReadHelpedByFastWriter(t *testing.T) {
	const n = 2
	const k = 2
	m := sim.NewMachine(n)
	c, err := NewMultCounter(m.Factory(), k)
	if err != nil {
		t.Fatal(err)
	}

	writer := c.Handle(m.Proc(0))
	reader := c.Handle(m.Proc(1))

	m.Spawn(0, func(*prim.Proc) {
		for i := 0; i < 1<<22; i++ {
			writer.Inc()
		}
	})
	var resp uint64
	readDone := false
	m.Spawn(1, func(*prim.Proc) {
		resp = reader.Read()
		readDone = true
	})

	readerSteps, writerAlive := driveReaderBehindWriter(t, m, c, 10_000)
	if !readDone {
		t.Fatal("reader did not complete")
	}
	if !writerAlive {
		t.Fatal("writer finished first: the helping path was not forced")
	}
	// With n=2 the reader consults H every 2 scan steps; two writer
	// announcements suffice, so the whole read stays tiny.
	if readerSteps > 64 {
		t.Fatalf("helped read took %d steps, want a short helped exit", readerSteps)
	}
	if resp == 0 {
		t.Fatal("helped read returned 0 despite completed increments")
	}
	// The helped value must decode to a ReturnValue point (Lemma III.3).
	if !isReturnValue(c, resp) {
		t.Fatalf("helped response %d is not any ReturnValue(p, q)", resp)
	}
}

// isReturnValue reports whether resp equals ReturnValue(p, q) for some
// reachable decomposition.
func isReturnValue(c *MultCounter, resp uint64) bool {
	for q := uint64(0); q < 48; q++ {
		for p := uint64(0); p < c.k; p++ {
			if c.returnValue(p, q) == resp {
				return true
			}
		}
	}
	return false
}

// TestReadHelpingLinearizable drives the helped read and then checks the
// response against the count of increments that had completed when the
// read returned: Lemma III.3 guarantees the helping switch was set within
// the read's interval, so the response must be within the k-envelope of
// some count between the increments completed at invocation and at
// response.
func TestReadHelpingLinearizable(t *testing.T) {
	const n = 2
	const k = 2
	m := sim.NewMachine(n)
	c, err := NewMultCounter(m.Factory(), k)
	if err != nil {
		t.Fatal(err)
	}
	writer := c.Handle(m.Proc(0))
	reader := c.Handle(m.Proc(1))

	const totalIncs = 1 << 22
	var incsDone atomic.Int64
	m.Spawn(0, func(*prim.Proc) {
		for i := 0; i < totalIncs; i++ {
			writer.Inc()
			incsDone.Add(1)
		}
	})
	var resp uint64
	m.Spawn(1, func(*prim.Proc) { resp = reader.Read() })

	_, writerAlive := driveReaderBehindWriter(t, m, c, 10_000)
	if !writerAlive {
		t.Fatal("writer finished first: the helping path was not forced")
	}
	// incsDone is an upper bound on the increments whose effects the read
	// could have observed (the writer goroutine may still be mid-increment
	// between its last granted step and its next gate entry).
	upper := uint64(incsDone.Load())
	ok := false
	for v := uint64(1); v <= upper; v++ {
		if v <= resp*k && resp <= v*k {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatalf("helped response %d outside every envelope for counts 1..%d", resp, upper)
	}
}

// TestSwitchesSetInIncreasingOrder checks the Lemma III.2 invariant on
// random executions: switches become set in strictly increasing index
// order, machine-wide — the property the linearization of OPW relies on.
func TestSwitchesSetInIncreasingOrder(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		const n = 4
		const k = 2
		m := sim.NewMachine(n)
		c, err := NewMultCounter(m.Factory(), k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			h := c.Handle(m.Proc(i))
			m.Spawn(i, func(*prim.Proc) {
				for j := 0; j < 500; j++ {
					h.Inc()
				}
			})
		}
		m.RunAll(sim.NewRandom(seed), 10_000_000)

		// Successful test&set events (Val == 0) must carry increasing
		// object IDs: the switch sequence is created first, so switch i
		// has object ID i.
		var lastSet prim.ObjID
		haveSet := false
		for _, ev := range m.Trace() {
			if ev.Op != prim.OpTAS || ev.Val != 0 {
				continue
			}
			if haveSet && ev.Obj <= lastSet {
				t.Fatalf("seed %d: switch %d set after switch %d (Lemma III.2 violated)",
					seed, ev.Obj, lastSet)
			}
			lastSet, haveSet = ev.Obj, true
		}
		if !haveSet {
			t.Fatalf("seed %d: no switch was ever set", seed)
		}
	}
}

// TestReadScanPattern verifies the exact scan positions of CounterRead:
// first and last switch of each interval, as the amortized analysis of
// Lemma III.8 requires.
func TestReadScanPattern(t *testing.T) {
	const k = 3
	m := sim.NewMachine(2)
	c, err := NewMultCounter(m.Factory(), k)
	if err != nil {
		t.Fatal(err)
	}
	// Fill switches by running one writer to completion.
	w := c.Handle(m.Proc(0))
	m.Spawn(0, func(*prim.Proc) {
		for i := 0; i < 200; i++ {
			w.Inc()
		}
	})
	m.RunSolo(0, 10_000)

	r := c.Handle(m.Proc(1))
	m.Spawn(1, func(*prim.Proc) { r.Read() })
	m.RunSolo(1, 10_000)

	// The reader's switch reads (object IDs below the 2^32 switch block
	// boundary; H registers come after) must visit only indices congruent
	// to 0 or 1 mod k: first and last of each interval.
	sawSwitchRead := false
	for _, ev := range m.TraceOf(1) {
		if ev.Op != prim.OpRead || ev.Obj >= 1<<32 {
			continue
		}
		sawSwitchRead = true
		idx := uint64(ev.Obj)
		if idx%k != 0 && idx%k != 1 {
			t.Fatalf("reader scanned switch %d: not a first/last interval position", idx)
		}
	}
	if !sawSwitchRead {
		t.Fatal("reader performed no switch reads")
	}
}

// TestReadMemoizationAcrossReads verifies that a second read resumes from
// last_i instead of rescanning: its switch reads must all be at indices >=
// the first read's stop position.
func TestReadMemoizationAcrossReads(t *testing.T) {
	const k = 2
	m := sim.NewMachine(2)
	c, err := NewMultCounter(m.Factory(), k)
	if err != nil {
		t.Fatal(err)
	}
	w := c.Handle(m.Proc(0))
	m.Spawn(0, func(*prim.Proc) {
		for i := 0; i < 5000; i++ {
			w.Inc()
		}
	})
	m.RunSolo(0, 100_000)

	r := c.Handle(m.Proc(1))
	m.Spawn(1, func(*prim.Proc) { r.Read() })
	m.RunSolo(1, 10_000)
	firstTrace := len(m.TraceOf(1))
	stop := r.last

	m.Spawn(1, func(*prim.Proc) { r.Read() })
	m.RunSolo(1, 10_000)
	secondReads := m.TraceOf(1)[firstTrace:]
	for _, ev := range secondReads {
		if ev.Op == prim.OpRead && ev.Obj < 1<<32 && uint64(ev.Obj) < stop {
			t.Fatalf("second read rescanned switch %d below memoized position %d", ev.Obj, stop)
		}
	}
	// An idle second read costs exactly one switch read.
	if len(secondReads) != 1 {
		t.Fatalf("idle second read took %d steps, want 1", len(secondReads))
	}
}
