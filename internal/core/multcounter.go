// Package core implements the paper's contributions: Algorithm 1, the
// k-multiplicative-accurate unbounded counter with constant amortized step
// complexity for k >= sqrt(n) (Theorem III.9), and Algorithm 2, the
// k-multiplicative-accurate m-bounded max register with worst-case step
// complexity O(min(log2 log_k m, n)) (Theorem IV.2), plus the unbounded
// max-register plug-in the paper sketches in Section I-B.
//
// Since PR 6 the public package reaches these algorithms only through the
// sharded backend plane (internal/shard); the unsharded types here double
// as reference implementations for the conformance oracles and the
// benchmark baselines.
package core

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/satmath"
)

// MultCounter is Algorithm 1: a wait-free linearizable
// k-multiplicative-accurate unbounded counter. A CounterRead returns x with
// v/k <= x <= v*k where v is the number of CounterIncrements linearized
// before it. For k >= sqrt(n) the amortized step complexity is O(1)
// (Theorem III.9).
//
// Shared state is an unbounded sequence of test&set switches and a helping
// array H of (switch index, sequence number) pairs. Increments are counted
// locally and announced by setting switches: switch_0 stands for one
// increment, and each switch of interval j >= 1 (indexes (j-1)k+1 .. jk)
// stands for t_j = t1 * k^(j-1) increments. Readers scan the first and last
// switch of each interval (memoized in the handle across operations) and
// every n scan steps consult H, so a reader overtaken by concurrent
// increments still terminates (wait-freedom, Lemma III.1).
//
// # Deviation from the paper (boundary repair)
//
// The paper fixes t1 = k. Property testing of that verbatim algorithm
// exposed a boundary gap in Claim III.6: when only switch_0 is set, each of
// the n processes may hold up to t1-1 unannounced increments, so the true
// count can reach 1 + n(t1-1) while a read returns ReturnValue(0,0) = k.
// The claim's algebra ("umax/k <= v_op") silently assumes q >= 1; at q = 0
// it requires 1 + n(k-1) <= k^2, i.e. n <= k+1 — NOT implied by k >= sqrt(n)
// (e.g. n = 8, k = 5 admits v = 33 > k^2 = 25 against a response of 5).
// This implementation therefore generalizes the first-interval threshold to
//
//	t1 = min(k, floor((k^2-1)/n) + 1)
//
// which guarantees 1 + n(t1-1) <= k^2 and coincides with the paper's t1 = k
// exactly when n <= k+1 (where the paper's claim is sound). All other
// thresholds scale by k per interval as in the paper, and the amortized
// O(1) bound is unaffected (announcements cost O(1) amortized for any
// t1 >= 1). Use Verbatim to study the paper's literal algorithm; experiment
// E9 demonstrates the violation.
type MultCounter struct {
	n        int
	k        uint64
	t1       uint64
	switches *prim.TASSeq
	h        []*prim.PairReg
}

var _ object.Counter = (*MultCounter)(nil)

// Option configures a MultCounter (see Verbatim and Unchecked).
type Option func(*options)

type options struct {
	verbatim  bool
	unchecked bool
}

// Verbatim makes the counter follow the paper's pseudocode exactly
// (t1 = k), including its boundary-case accuracy gap.
func Verbatim() Option { return func(o *options) { o.verbatim = true } }

// Unchecked skips the k >= sqrt(n) accuracy precondition, for studying the
// algorithm in the lower-bound regime of Section III-D.
func Unchecked() Option { return func(o *options) { o.unchecked = true } }

// NewMultCounter creates the counter for the factory's n processes with
// accuracy parameter k >= 2. Unless the Unchecked option is given, it
// enforces the paper's accuracy precondition k >= sqrt(n).
func NewMultCounter(f *prim.Factory, k uint64, opts ...Option) (*MultCounter, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	n := f.N()
	if n < 1 {
		return nil, fmt.Errorf("core: need at least one process, got %d", n)
	}
	if k < 2 {
		return nil, fmt.Errorf("core: accuracy parameter k must be >= 2, got %d", k)
	}
	// The saturating predicate is shared with the public spec layer
	// (approxobj.Spec.validate), which mirrors this precondition.
	if !o.unchecked && !satmath.SquareAtLeast(k, uint64(n)) {
		return nil, fmt.Errorf("core: accuracy guarantee needs k >= sqrt(n): k=%d, n=%d", k, n)
	}
	t1 := (k*k-1)/uint64(n) + 1
	if t1 > k || o.verbatim {
		t1 = k
	}
	return &MultCounter{
		n:        n,
		k:        k,
		t1:       t1,
		switches: f.TASSeq(),
		h:        f.PairRegRow(n),
	}, nil
}

// K returns the accuracy parameter.
func (c *MultCounter) K() uint64 { return c.k }

// N returns the number of processes.
func (c *MultCounter) N() int { return c.n }

// FirstThreshold returns t1, the per-switch weight of the first interval
// (k in the paper's verbatim algorithm).
func (c *MultCounter) FirstThreshold() uint64 { return c.t1 }

// threshold returns t_j, the announcement threshold of interval j:
// t_0 = 1 (switch_0), t_j = t1 * k^(j-1) for j >= 1.
func (c *MultCounter) threshold(j uint64) uint64 {
	if j == 0 {
		return 1
	}
	return mulSat(c.t1, powSat(c.k, j-1))
}

// MultHandle is a process's view of the counter, holding the persistent
// local variables of Algorithm 1 (lines 4-9).
type MultHandle struct {
	c *MultCounter
	p *prim.Proc

	last     uint64 // last_i: scan position of CounterRead (line 5)
	lcounter uint64 // unannounced increments (line 6)
	interval uint64 // current announcement interval j (limit_i = t_j, line 7)
	limit    uint64 // cached threshold(interval)
	sn       uint32 // switches set by this process (line 8)
	l0       uint64 // resume offset within the current interval (line 9)

	// lastP, lastQ are the (p, q) decomposition of the most recent switch
	// this handle observed set (pseudocode lines 38-39). They persist
	// across reads, like last_i: a read whose scan loop does not run
	// returns ReturnValue of the previously observed switch (line 58).
	lastP, lastQ uint64
	seen         bool // whether lastP, lastQ are meaningful (last > 0)

	help []uint32 // help_i[j]: sequence-number baselines (line 48)
}

var _ object.CounterHandle = (*MultHandle)(nil)

// Handle binds process p to the counter.
func (c *MultCounter) Handle(p *prim.Proc) *MultHandle {
	return &MultHandle{
		c:     c,
		p:     p,
		limit: 1,
		l0:    1,
		help:  make([]uint32, c.n),
	}
}

// CounterHandle implements object.Counter.
func (c *MultCounter) CounterHandle(p *prim.Proc) object.CounterHandle {
	return c.Handle(p)
}

// advance moves the handle to the next announcement interval (the paper's
// limit_i <- k * limit_i, lines 21/28).
func (h *MultHandle) advance() {
	h.interval++
	h.limit = h.c.threshold(h.interval)
}

// Inc is the CounterIncrement operation (Algorithm 1, lines 10-29).
func (h *MultHandle) Inc() {
	c := h.c
	h.lcounter++ // line 11
	// The announcement attempt repeats at most once: only when t1 = 1 does
	// advancing from interval 0 leave limit == lcounter == 1 (a process
	// that just lost switch_0 must immediately announce on interval 1).
	for h.lcounter == h.limit { // line 12
		if j := h.interval; j > 0 {
			// Announce t_j increments on a switch of interval j (indexes
			// (j-1)k+1 .. jk), resuming at offset l0 (lines 15-23).
			for l := (j-1)*c.k + h.l0; l <= j*c.k; l++ { // line 15
				if c.switches.TestAndSet(h.p, l) { // line 16
					h.sn++                                    // line 17
					c.h[h.p.ID()].Write(h.p, uint32(l), h.sn) // line 18
					h.lcounter = 0                            // line 19
					if l == j*c.k {                           // line 20
						h.advance() // line 21
					}
					h.l0 = 1 + l%c.k // line 22
					return           // line 23
				}
			}
			h.l0 = 1 // line 24
		} else {
			if c.switches.TestAndSet(h.p, 0) { // line 26
				h.lcounter = 0 // line 27
			}
		}
		h.advance() // line 28
	}
}

// IncN applies d CounterIncrements. Algorithm 1 counts increments locally
// and touches shared memory only at announcement thresholds, so a loop of
// Incs already costs O(announcements) shared steps, not O(d); IncN exists
// so bulk callers (internal/shard's batched flush) hit one code path across
// backends.
func (h *MultHandle) IncN(d uint64) {
	for ; d > 0; d-- {
		h.Inc()
	}
}

// Read is the CounterRead operation (Algorithm 1, lines 35-58). It returns
// an approximation x of the number v of increments linearized before it,
// with v/k <= x <= v*k when k >= sqrt(n).
func (h *MultHandle) Read() uint64 {
	c := h.c
	scans := 0                              // line 36: c <- 0
	for c.switches.Read(h.p, h.last) != 0 { // line 37
		h.lastP = h.last % c.k // line 38
		h.lastQ = h.last / c.k // line 39
		h.seen = true
		if h.last%c.k == 0 { // line 40: move to first switch of next interval
			h.last++ // line 41
		} else { // h.last is the first switch of an interval: jump to its last
			h.last += c.k - 1 // line 43
		}
		scans++             // line 44
		if scans%c.n == 0 { // line 45
			if scans == c.n { // line 46: first pass records baselines
				for j := 0; j < c.n; j++ { // lines 47-48
					_, sn := c.h[j].Read(h.p)
					h.help[j] = sn
				}
			} else { // later passes look for a helper that advanced twice
				for j := 0; j < c.n; j++ { // lines 50-54
					val, sn := c.h[j].Read(h.p)
					if sn >= h.help[j]+2 { // line 52
						// The switch val was set within our execution
						// interval (Lemma III.3): safe to return.
						return c.returnValue(uint64(val)%c.k, uint64(val)/c.k) // line 55
					}
				}
			}
		}
	}
	if h.last == 0 { // line 56: nothing ever announced
		return 0
	}
	if !h.seen {
		// last advances only inside the scan loop, which records (p, q)
		// first, so last > 0 implies seen.
		panic("core: scan position advanced without observing a set switch")
	}
	return c.returnValue(h.lastP, h.lastQ) // line 58
}

// returnValue is the ReturnValue(p, q) function (lines 30-34): switch_0
// counts for one increment, each of the k switches of interval l in [1..q]
// counts for t_l, and p more switches of interval q+1 count for t_(q+1)
// each; the result is scaled by k to centre it in the accuracy envelope.
// (With the paper's t1 = k this is k*(1 + sum_{l=1..q} k^(l+1) + p*k^(q+1)),
// matching lines 30-34 verbatim.)
func (c *MultCounter) returnValue(p, q uint64) uint64 {
	ret := addSat(1, mulSat(p, c.threshold(q+1))) // line 31
	for l := uint64(1); l <= q; l++ {             // lines 32-33
		ret = addSat(ret, mulSat(c.k, c.threshold(l)))
	}
	return mulSat(c.k, ret) // line 34
}

// Steps returns the number of primitive steps taken by the bound process.
func (h *MultHandle) Steps() uint64 { return h.p.Steps() }

// ScanStop returns the (p, q) decomposition of the last switch this handle
// observed set — the scan-stop configuration of Figure 1 (diagnostic).
func (h *MultHandle) ScanStop() (p, q uint64) { return h.lastP, h.lastQ }

// SwitchState returns switch_i without taking a model step (diagnostic, for
// rendering Figure 1 configurations).
func (c *MultCounter) SwitchState(i uint64) uint64 { return c.switches.Peek(i) }

// Saturating arithmetic (shared with internal/shard via internal/satmath).
func mulSat(a, b uint64) uint64 { return satmath.Mul(a, b) }
func addSat(a, b uint64) uint64 { return satmath.Add(a, b) }
func powSat(k, e uint64) uint64 { return satmath.Pow(k, e) }
