package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

func TestMultCounterConstructorValidation(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		k       uint64
		wantErr bool
	}{
		{"k too small for n", 16, 3, true},
		{"k exactly sqrt(n)", 16, 4, false},
		{"k above sqrt(n)", 16, 8, false},
		{"k below 2 rejected", 1, 1, true},
		{"single process", 1, 2, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := prim.NewFactory(c.n)
			_, err := NewMultCounter(f, c.k)
			if (err != nil) != c.wantErr {
				t.Fatalf("NewMultCounter(n=%d, k=%d) error = %v, wantErr %v", c.n, c.k, err, c.wantErr)
			}
		})
	}
}

func TestMultCounterUncheckedStillNeedsK2(t *testing.T) {
	f := prim.NewFactory(4)
	if _, err := NewMultCounter(f, 1, Unchecked()); err == nil {
		t.Fatal("k=1 accepted, want error")
	}
	if _, err := NewMultCounter(f, 2, Unchecked()); err != nil {
		t.Fatalf("k=2 unchecked rejected: %v", err)
	}
	// n=16 needs k>=4 normally, but Unchecked admits k=2.
	f16 := prim.NewFactory(16)
	if _, err := NewMultCounter(f16, 2, Unchecked()); err != nil {
		t.Fatalf("unchecked k=2 n=16 rejected: %v", err)
	}
}

func TestFirstThreshold(t *testing.T) {
	cases := []struct {
		n    int
		k    uint64
		want uint64
	}{
		{1, 2, 2},  // n <= k+1: paper's t1 = k
		{3, 2, 2},  // n = k+1: still k
		{4, 2, 1},  // n = k^2: floor(3/4)+1 = 1
		{8, 5, 4},  // the E9 counterexample: floor(24/8)+1 = 4
		{25, 5, 1}, // n = k^2
		{9, 3, 1},  // n = k^2
		{5, 3, 2},  // floor(8/5)+1 = 2
	}
	for _, c := range cases {
		f := prim.NewFactory(c.n)
		mc, err := NewMultCounter(f, c.k)
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", c.n, c.k, err)
		}
		if got := mc.FirstThreshold(); got != c.want {
			t.Errorf("FirstThreshold(n=%d, k=%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// TestVerbatimBoundaryViolation reproduces the accuracy gap this repo found
// in the paper's Claim III.6 (experiment E9): with the literal t1 = k, n = 8
// processes and k = 5 (k >= sqrt(n) holds), a sequential execution drives
// the true count to 1 + n(t1-1) = 33 while a read still returns
// ReturnValue(0,0) = k = 5, violating x >= v/k (33/5 > 5). The repaired
// default threshold keeps the same schedule inside the envelope.
func TestVerbatimBoundaryViolation(t *testing.T) {
	run := func(opts ...Option) (resp, truth uint64) {
		const n, k = 8, 5
		f := prim.NewFactory(n)
		c, err := NewMultCounter(f, k, opts...)
		if err != nil {
			t.Fatal(err)
		}
		handles := make([]*MultHandle, n)
		for i := range handles {
			handles[i] = c.Handle(f.Proc(i))
		}
		// Every process performs t1(verbatim)-1 = 4 increments: the first
		// process sets switch_0 on its first increment; all others lose
		// switch_0 and hold their counts locally.
		for i := 0; i < n; i++ {
			for j := 0; j < 4; j++ {
				handles[i].Inc()
				truth++
			}
		}
		reader := c.Handle(f.Proc(0))
		return reader.Read(), truth
	}

	acc := object.Accuracy{K: 5}
	if resp, truth := run(Verbatim()); acc.Contains(truth, resp) {
		t.Errorf("verbatim: Read = %d for v = %d unexpectedly within envelope (paper gap not reproduced)", resp, truth)
	} else if resp != 5 || truth != 32 {
		t.Errorf("verbatim scenario drifted: resp = %d (want 5), v = %d (want 32)", resp, truth)
	}
	if resp, truth := run(); !acc.Contains(truth, resp) {
		t.Errorf("repaired: Read = %d for v = %d outside envelope", resp, truth)
	}
}

// TestMultCounterSequentialTrace checks the exact hand-computed responses of
// a single-process execution with k=2: after announcing, the counter's
// ReturnValue equals k times the true count, and between announcements the
// response stays within [v, k*v] of the true count v.
func TestMultCounterSequentialTrace(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	c, err := NewMultCounter(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handle(p)

	if got := h.Read(); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}

	// (increments so far, expected read response) — derived by executing
	// Algorithm 1 by hand: announcements happen at counts 1, 3, 5, 9, 13;
	// reads return k * (announced count).
	steps := []struct{ incs, want uint64 }{
		{1, 2}, {2, 2}, {3, 6}, {4, 6}, {5, 10},
		{6, 10}, {9, 18}, {13, 26},
	}
	done := uint64(0)
	for _, s := range steps {
		for done < s.incs {
			h.Inc()
			done++
		}
		if got := h.Read(); got != s.want {
			t.Fatalf("after %d incs: Read = %d, want %d", s.incs, got, s.want)
		}
	}
}

func TestMultCounterSequentialEnvelope(t *testing.T) {
	// Single process, several k values: every read must satisfy
	// v/k <= x <= v*k for the exact count v.
	for _, k := range []uint64{2, 3, 5, 10} {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		c, err := NewMultCounter(f, k)
		if err != nil {
			t.Fatal(err)
		}
		h := c.Handle(p)
		acc := object.Accuracy{K: k}
		for v := uint64(1); v <= 3000; v++ {
			h.Inc()
			x := h.Read()
			if !acc.Contains(v, x) {
				t.Fatalf("k=%d: after %d incs Read = %d, outside [v/k, v*k]", k, v, x)
			}
		}
	}
}

func TestMultCounterMultiProcessSequentialEnvelope(t *testing.T) {
	// Operations by different processes, executed one after another
	// (sequential specification must hold exactly within the envelope).
	const n = 9
	const k = 3
	f := prim.NewFactory(n)
	c, err := NewMultCounter(f, k)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*MultHandle, n)
	for i := range handles {
		handles[i] = c.Handle(f.Proc(i))
	}
	acc := object.Accuracy{K: k}
	rng := rand.New(rand.NewSource(1))
	total := uint64(0)
	for op := 0; op < 20000; op++ {
		h := handles[rng.Intn(n)]
		if rng.Intn(4) > 0 { // 75% increments
			h.Inc()
			total++
			continue
		}
		x := h.Read()
		if !acc.Contains(total, x) {
			t.Fatalf("op %d: Read = %d for true count %d (k=%d), outside envelope", op, x, total, k)
		}
	}
}

func TestMultCounterQuickEnvelope(t *testing.T) {
	check := func(seed int64, nRaw, kExtra uint8, opsRaw uint16) bool {
		n := int(nRaw)%8 + 1
		k := uint64(3) + uint64(kExtra)%5 // k in [3, 7], always >= sqrt(8)
		ops := int(opsRaw)%2000 + 10
		f := prim.NewFactory(n)
		c, err := NewMultCounter(f, k)
		if err != nil {
			return false
		}
		handles := make([]*MultHandle, n)
		for i := range handles {
			handles[i] = c.Handle(f.Proc(i))
		}
		acc := object.Accuracy{K: k}
		rng := rand.New(rand.NewSource(seed))
		total := uint64(0)
		for op := 0; op < ops; op++ {
			h := handles[rng.Intn(n)]
			if rng.Intn(3) > 0 {
				h.Inc()
				total++
			} else if x := h.Read(); !acc.Contains(total, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMultCounterReadMonotonePerProcess(t *testing.T) {
	// A process's successive reads never decrease (counters are monotone).
	f := prim.NewFactory(2)
	c, err := NewMultCounter(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	inc := c.Handle(f.Proc(0))
	read := c.Handle(f.Proc(1))
	prev := uint64(0)
	for i := 0; i < 5000; i++ {
		inc.Inc()
		if i%7 == 0 {
			x := read.Read()
			if x < prev {
				t.Fatalf("read %d after previous read %d: reads regressed", x, prev)
			}
			prev = x
		}
	}
}

func TestMultCounterAmortizedConstantSequential(t *testing.T) {
	// Theorem III.9 (sequential shadow): total steps / total ops stays
	// bounded by a small constant for k >= sqrt(n), even for executions
	// with millions of increments.
	const n = 4
	const k = 2 // k = sqrt(4)
	f := prim.NewFactory(n)
	c, err := NewMultCounter(f, k)
	if err != nil {
		t.Fatal(err)
	}
	procs := f.Procs()
	handles := make([]*MultHandle, n)
	for i := range handles {
		handles[i] = c.Handle(procs[i])
	}
	const opsPerProc = 200000
	ops := 0
	for i := 0; i < opsPerProc; i++ {
		for pid := 0; pid < n; pid++ {
			handles[pid].Inc()
			ops++
			if i%100 == 0 {
				handles[pid].Read()
				ops++
			}
		}
	}
	var steps uint64
	for _, p := range procs {
		steps += p.Steps()
	}
	amortized := float64(steps) / float64(ops)
	if amortized > 3 {
		t.Fatalf("amortized steps/op = %.3f, want <= 3 (constant)", amortized)
	}
}

func TestReturnValueFormula(t *testing.T) {
	f := prim.NewFactory(1)
	c, err := NewMultCounter(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// ReturnValue(p, q) = k * (1 + sum_{l=1..q} k^(l+1) + p*k^(q+1)).
	cases := []struct {
		p, q uint64
		want uint64
	}{
		{0, 0, 2},  // k*(1)
		{1, 0, 6},  // k*(1+2)
		{0, 1, 10}, // k*(1+4)
		{1, 1, 18}, // k*(1+4+4)
		{0, 2, 26}, // k*(1+4+8)
		{1, 2, 42}, // k*(1+4+8+8)
	}
	for _, cse := range cases {
		if got := c.returnValue(cse.p, cse.q); got != cse.want {
			t.Errorf("returnValue(%d, %d) = %d, want %d", cse.p, cse.q, got, cse.want)
		}
	}
}

func TestReturnValueMonotoneQuick(t *testing.T) {
	f := prim.NewFactory(1)
	c, err := NewMultCounter(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ReturnValue is strictly monotone in scan order: advancing (p, q) to
	// the next scanned switch increases the response.
	check := func(qRaw uint8) bool {
		q := uint64(qRaw % 16)
		// Scan order within interval q: p=0 then p=1; then interval q+1.
		return c.returnValue(0, q) < c.returnValue(1, q) &&
			c.returnValue(1, q) < c.returnValue(0, q+1)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThresholds(t *testing.T) {
	// n=1 keeps the paper's thresholds: t_0 = 1, t_j = k^j.
	f := prim.NewFactory(1)
	c, err := NewMultCounter(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []uint64{1, 3, 9, 27, 81} {
		if got := c.threshold(uint64(j)); got != want {
			t.Errorf("threshold(%d) = %d, want %d", j, got, want)
		}
	}
	// n=9, k=3 repairs t1 to 1: thresholds 1, 1, 3, 9.
	f9 := prim.NewFactory(9)
	c9, err := NewMultCounter(f9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []uint64{1, 1, 3, 9} {
		if got := c9.threshold(uint64(j)); got != want {
			t.Errorf("n=9: threshold(%d) = %d, want %d", j, got, want)
		}
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	const max = ^uint64(0)
	if got := mulSat(max, 2); got != max {
		t.Fatalf("mulSat overflow = %d, want saturation", got)
	}
	if got := mulSat(3, 4); got != 12 {
		t.Fatalf("mulSat(3,4) = %d", got)
	}
	if got := mulSat(0, max); got != 0 {
		t.Fatalf("mulSat(0,max) = %d", got)
	}
	if got := addSat(max, 1); got != max {
		t.Fatalf("addSat overflow = %d, want saturation", got)
	}
	if got := addSat(2, 3); got != 5 {
		t.Fatalf("addSat(2,3) = %d", got)
	}
	if got := powSat(2, 10); got != 1024 {
		t.Fatalf("powSat(2,10) = %d", got)
	}
	if got := powSat(2, 100); got != max {
		t.Fatalf("powSat(2,100) = %d, want saturation", got)
	}
	if got := powSat(7, 0); got != 1 {
		t.Fatalf("powSat(7,0) = %d, want 1", got)
	}
}

func TestMultCounterHandleSteps(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	c, err := NewMultCounter(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handle(p)
	h.Inc() // winning TAS on switch_0 only (the j=0 branch skips H)
	if got := h.Steps(); got != 1 {
		t.Fatalf("Steps after first announcing Inc = %d, want 1", got)
	}
}
