package core

import (
	"fmt"

	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// KMultMaxReg is Algorithm 2: a wait-free linearizable
// k-multiplicative-accurate m-bounded max register with worst-case step
// complexity O(min(log2 log_k m, n)) — asymptotically optimal by
// Theorem V.2.
//
// A Write(v) stores only the index of the bit to the left of v's most
// significant base-k digit, p = floor(log_k v) + 1, into an *exact*
// (floor(log_k(m-1)) + 2)-bounded max register M (the tree construction of
// [8], internal/maxreg). A Read returns k^p for p = M.Read(), or 0 if M was
// never written. Since v lies in [k^(p-1), k^p - 1], the response k^p
// satisfies v <= k^p <= v*k.
type KMultMaxReg struct {
	m uint64
	k uint64
	// M is the accurate bounded max register holding MSB indices
	// (Algorithm 2, line 1).
	M *maxreg.Bounded
}

var _ object.MaxReg = (*KMultMaxReg)(nil)

// NewKMultMaxReg creates a k-multiplicative-accurate m-bounded max register
// (domain {0..m-1}), with k >= 2 and m >= 2.
func NewKMultMaxReg(f *prim.Factory, m, k uint64) (*KMultMaxReg, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: accuracy parameter k must be >= 2, got %d", k)
	}
	if m < 2 {
		return nil, fmt.Errorf("core: bound m must be >= 2, got %d", m)
	}
	// M stores values {0 .. floor(log_k(m-1)) + 1}.
	bound := floorLog(m-1, k) + 2
	inner, err := maxreg.NewBounded(f, bound)
	if err != nil {
		return nil, err
	}
	return &KMultMaxReg{m: m, k: k, M: inner}, nil
}

// Bound returns m.
func (r *KMultMaxReg) Bound() uint64 { return r.m }

// K returns the accuracy parameter.
func (r *KMultMaxReg) K() uint64 { return r.k }

// InnerDepth returns the tree depth of the backing exact register — the
// worst-case step complexity of one operation, Theta(log2 log_k m).
func (r *KMultMaxReg) InnerDepth() int { return r.M.Depth() }

// Write records v (Algorithm 2, lines 7-10). Writing 0 is a no-op (0 is
// the initial value). It panics if v >= m, like an out-of-range slice
// index.
func (r *KMultMaxReg) Write(p *prim.Proc, v uint64) {
	if v >= r.m {
		panic(fmt.Sprintf("core: write %d out of range of %d-bounded max register", v, r.m))
	}
	if v == 0 {
		return
	}
	idx := floorLog(v, r.k) + 1 // line 8
	r.M.Write(p, idx)           // line 9
}

// Read returns 0 if nothing was written yet, else k^p where p is the
// largest MSB index recorded (Algorithm 2, lines 2-6). The response x
// satisfies v <= x <= v*k for the maximum v written before the read.
func (r *KMultMaxReg) Read(p *prim.Proc) uint64 {
	idx := r.M.Read(p) // line 3
	if idx == 0 {      // line 4
		return 0
	}
	return powSat(r.k, idx) // line 5
}

type kMultHandle struct {
	r *KMultMaxReg
	p *prim.Proc
}

// MaxRegHandle implements object.MaxReg.
func (r *KMultMaxReg) MaxRegHandle(p *prim.Proc) object.MaxRegHandle {
	return &kMultHandle{r: r, p: p}
}

func (h *kMultHandle) Write(v uint64) { h.r.Write(h.p, v) }
func (h *kMultHandle) Read() uint64   { return h.r.Read(h.p) }

// NewKMultUnboundedMaxReg plugs the bounded k-multiplicative-accurate max
// register into the unbounded construction of internal/maxreg, yielding the
// unbounded k-multiplicative-accurate max register the paper sketches at
// the end of Section I-B, with sub-logarithmic step complexity (experiment
// E8).
func NewKMultUnboundedMaxReg(f *prim.Factory, k uint64) (*maxreg.Unbounded, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: accuracy parameter k must be >= 2, got %d", k)
	}
	return maxreg.NewUnbounded(f, func(f *prim.Factory, size uint64) (maxreg.BoundedMaxReg, error) {
		if size < 2 {
			return nil, fmt.Errorf("core: epoch size %d too small", size)
		}
		return NewKMultMaxReg(f, size, k)
	})
}

// floorLog returns floor(log_k v) for v >= 1, k >= 2.
func floorLog(v, k uint64) uint64 {
	if v < 1 {
		panic("core: floorLog of zero")
	}
	e := uint64(0)
	for v >= k {
		v /= k
		e++
	}
	return e
}
