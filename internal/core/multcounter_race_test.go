package core_test

import (
	"sync"
	"testing"

	"approxobj/internal/core"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// TestMultCounterConcurrentSoak hammers one MultCounter from n real
// goroutines through nil-Gate procs (production mode: plain atomics, no
// simulation scheduler) and asserts the k-multiplicative accuracy
// invariant on the final quiescent Read against the true increment count.
// Run with -race this doubles as the data-race check for the production
// code path of Algorithm 1.
func TestMultCounterConcurrentSoak(t *testing.T) {
	for _, tc := range []struct {
		n     int
		k     uint64
		perG  int
		reads int // interleaved reads per goroutine
	}{
		{n: 4, k: 2, perG: 20_000, reads: 200},
		{n: 8, k: 4, perG: 10_000, reads: 200},
		{n: 16, k: 4, perG: 5_000, reads: 100},
	} {
		f := prim.NewFactory(tc.n)
		c, err := core.NewMultCounter(f, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(tc.n)
		for i := 0; i < tc.n; i++ {
			h := c.Handle(f.Proc(i))
			go func() {
				defer wg.Done()
				for j := 0; j < tc.perG; j++ {
					h.Inc()
					if tc.reads > 0 && j%(tc.perG/tc.reads) == 0 {
						h.Read()
					}
				}
			}()
		}
		wg.Wait()

		total := uint64(tc.n * tc.perG)
		acc := object.Accuracy{K: tc.k}
		for i := 0; i < tc.n; i++ {
			got := c.Handle(f.Proc(i)).Read()
			if !acc.Contains(total, got) {
				t.Errorf("n=%d k=%d: final read %d outside [%d/%d, %d*%d] of true count",
					tc.n, tc.k, got, total, tc.k, total, tc.k)
			}
		}
	}
}
