package bench

import (
	"math/rand"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// E11Randomized contrasts deterministic approximation (this paper) with
// randomized approximate counting (§I-A: Morris [12], Flajolet [13],
// Aspnes-Censor [14]): both are cheap, but the randomized counter's reads
// fall outside the k-envelope on a real fraction of executions, while the
// deterministic counter's never do — the distinction the paper's title is
// about.
func E11Randomized(cfg Config) ([]*Table, error) {
	const n = 4
	const k = 2 // = sqrt(n): the deterministic counter's guarantee holds
	trials := 200
	incs := 5000
	if cfg.Quick {
		trials = 40
		incs = 1000
	}

	t := &Table{
		ID:    "E11",
		Title: "deterministic vs randomized approximation: k-envelope violations",
		Note: `Each trial: 5000 increments across 4 processes, then one read per
process; a violation is any read outside [v/k, v*k], k = 2. Algorithm 1
is deterministic: zero violations by construction. The Morris counter
(related work [12][14]) is cheap but only accurate with high probability;
its a parameter trades update cost for variance.`,
		Header: []string{"counter", "steps/op", "mean |x-v|/v", "worst x/v ratio", "envelope violations"},
	}

	type stats struct {
		steps      uint64
		ops        int
		relErrSum  float64
		worstRatio float64
		violations int
		reads      int
	}
	run := func(mk func(f *prim.Factory, seed int64) (object.Counter, error)) (stats, error) {
		var s stats
		acc := object.Accuracy{K: k}
		for trial := 0; trial < trials; trial++ {
			f := prim.NewFactory(n)
			c, err := mk(f, cfg.Seed+int64(trial))
			if err != nil {
				return s, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7))
			handles := make([]object.CounterHandle, n)
			for i := range handles {
				handles[i] = c.CounterHandle(f.Proc(i))
			}
			for i := 0; i < incs; i++ {
				handles[rng.Intn(n)].Inc()
				s.ops++
			}
			for i := 0; i < n; i++ {
				x := handles[i].Read()
				s.ops++
				s.reads++
				ratio := float64(x) / float64(incs)
				rel := ratio - 1
				if rel < 0 {
					rel = -rel
				}
				s.relErrSum += rel
				if ratio > s.worstRatio {
					s.worstRatio = ratio
				}
				if 1/ratio > s.worstRatio {
					s.worstRatio = 1 / ratio
				}
				if !acc.Contains(uint64(incs), x) {
					s.violations++
				}
			}
			for _, p := range f.Procs() {
				s.steps += p.Steps()
			}
		}
		return s, nil
	}

	mult, err := run(func(f *prim.Factory, _ int64) (object.Counter, error) {
		return core.NewMultCounter(f, k)
	})
	if err != nil {
		return nil, err
	}
	morrisLo, err := run(func(f *prim.Factory, seed int64) (object.Counter, error) {
		return counter.NewMorris(f, 1, seed)
	})
	if err != nil {
		return nil, err
	}
	morrisHi, err := run(func(f *prim.Factory, seed int64) (object.Counter, error) {
		return counter.NewMorris(f, 64, seed)
	})
	if err != nil {
		return nil, err
	}

	for _, row := range []struct {
		name string
		s    stats
	}{
		{"mult (Alg 1, deterministic)", mult},
		{"morris a=1 (randomized)", morrisLo},
		{"morris a=64 (randomized)", morrisHi},
	} {
		t.AddRow(row.name,
			float64(row.s.steps)/float64(row.s.ops),
			row.s.relErrSum/float64(row.s.reads),
			row.s.worstRatio,
			row.s.violations)
	}
	return []*Table{t}, nil
}
