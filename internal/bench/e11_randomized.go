package bench

import (
	"math/rand"

	"approxobj"
)

// E11Randomized contrasts deterministic approximation (this paper) with
// randomized approximate counting (§I-A: Morris [12], Flajolet [13],
// Aspnes-Censor [14]): both are cheap, but the randomized counter's reads
// fall outside the k-envelope on a real fraction of executions, while the
// deterministic counter's never do — the distinction the paper's title is
// about. Since PR 8 both sides are spec-API objects: Multiplicative(k)
// versus Randomized(k, delta), built by the same constructor and judged
// against the Bounds envelope each one reports. The delta sweep shows the
// randomized trade-off inside the trade-off: a loose delta keeps the
// exponent register cheap and misses often, a tight delta buys its
// reliability with a larger Morris parameter (more increment work),
// while the deterministic row's violation count is zero by construction,
// not by luck.
func E11Randomized(cfg Config) ([]*Table, error) {
	const n = 4
	const k = 2 // = sqrt(n): the deterministic counter's guarantee holds
	trials := 200
	incs := 5000
	if cfg.Quick {
		trials = 40
		incs = 1000
	}

	t := &Table{
		ID:    "E11",
		Title: "deterministic vs randomized approximation: k-envelope violations",
		Note: `Each trial: increments spread over 4 process slots, then one read per
slot; a violation is any read outside the object's own Bounds envelope
([v/k, v*k], k = 2). Multiplicative(k) is deterministic: zero violations
by construction. Randomized(k, delta) is a Morris counter per shard
(related work [12][14]), only accurate with probability >= 1-delta; its
delta buys reliability with increment work (the Morris parameter).`,
		Header: []string{"counter", "steps/op", "mean |x-v|/v", "worst x/v ratio", "envelope violations", "delta"},
	}

	type stats struct {
		steps      uint64
		ops        int
		relErrSum  float64
		worstRatio float64
		violations int
		reads      int
	}
	run := func(acc approxobj.Accuracy) (stats, error) {
		var s stats
		for trial := 0; trial < trials; trial++ {
			c, err := approxobj.NewCounter(
				approxobj.WithProcs(n),
				approxobj.WithAccuracy(acc),
			)
			if err != nil {
				return s, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7))
			handles := make([]approxobj.CounterHandle, n)
			for i := range handles {
				handles[i] = c.Handle(i)
			}
			for i := 0; i < incs; i++ {
				handles[rng.Intn(n)].Inc()
				s.ops++
			}
			bounds := c.Bounds()
			for i := 0; i < n; i++ {
				x := handles[i].Read()
				s.ops++
				s.reads++
				ratio := float64(x) / float64(incs)
				rel := ratio - 1
				if rel < 0 {
					rel = -rel
				}
				s.relErrSum += rel
				if ratio > s.worstRatio {
					s.worstRatio = ratio
				}
				if ratio > 0 && 1/ratio > s.worstRatio {
					s.worstRatio = 1 / ratio
				}
				if !bounds.Contains(uint64(incs), x) {
					s.violations++
				}
			}
			for _, h := range handles {
				s.steps += h.Steps()
			}
		}
		return s, nil
	}

	rows := []struct {
		name string
		acc  approxobj.Accuracy
	}{
		{"multiplicative(2) (Alg 1, deterministic)", approxobj.Multiplicative(k)},
		{"randomized(2, 0.5) (Morris, loose)", approxobj.Randomized(k, 0.5)},
		{"randomized(2, 0.01) (Morris, tight)", approxobj.Randomized(k, 0.01)},
	}
	for _, row := range rows {
		s, err := run(row.acc)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.name,
			float64(s.steps)/float64(s.ops),
			s.relErrSum/float64(s.reads),
			s.worstRatio,
			s.violations,
			row.acc.Delta())
	}
	return []*Table{t}, nil
}
