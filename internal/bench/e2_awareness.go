package bench

import (
	"fmt"
	"math"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/lowerbound"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// E2Awareness reproduces Section III-D: in the one-increment-one-read
// workload of Theorem III.11, information about participation must spread —
// the awareness sets (Definition III.3) of at least n/2 processes reach
// n/(2k^2) (Corollary III.10.1), and per-operation step counts of correct
// implementations sit above the log(n/k^2) information-dissemination bound.
// It also covers experiment E6 (the corollary's threshold counts).
func E2Awareness(cfg Config) ([]*Table, error) {
	ns := []int{16, 64, 256}
	seeds := 3
	if cfg.Quick {
		ns = []int{16, 64}
		seeds = 1
	}

	t := &Table{
		ID:    "E2",
		Title: "awareness sets and total steps, one inc + one read per process",
		Note: `Lemma III.10 / Corollary III.10.1 / Theorem III.11. "holds" = at least
n/2 processes aware of >= n/(2k^2) others. The corollary binds *correct*
k-accurate counters; "mult k=2" rows with k <= sqrt(n)/2 run outside the
algorithm's guarantee (Unchecked) and fail the threshold — exactly the
lower bound's dichotomy: disseminate Omega(log(n/k^2)) information or
lose k-accuracy. steps/op compares against log2(n/k^2).`,
		Header: []string{"counter", "n", "k", "median |AW|", ">=n/2k^2", "corollary", "steps/op", "log2(n/k^2)"},
	}

	type impl struct {
		name string
		k    uint64
		mk   func(f *prim.Factory) (object.Counter, error)
	}
	for _, n := range ns {
		impls := []impl{
			{
				name: "collect (exact)",
				k:    1,
				mk:   func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) },
			},
			{
				name: "mult k=2",
				k:    2,
				mk: func(f *prim.Factory) (object.Counter, error) {
					return core.NewMultCounter(f, 2, core.Unchecked())
				},
			},
			{
				name: fmt.Sprintf("mult k=%d", sqrtCeil(n)),
				k:    sqrtCeil(n),
				mk: func(f *prim.Factory) (object.Counter, error) {
					return core.NewMultCounter(f, sqrtCeil(n))
				},
			},
		}
		for _, im := range impls {
			var (
				medianSum, atLeastSum, stepsSum int
				allOK                           = true
			)
			for seed := int64(0); seed < int64(seeds); seed++ {
				res, err := lowerbound.Awareness(im.mk, n, im.k, seed)
				if err != nil {
					return nil, err
				}
				medianSum += res.MedianSize()
				threshold := n / (2 * int(im.k) * int(im.k))
				if threshold < 1 {
					threshold = 1
				}
				atLeastSum += res.CountAtLeast(threshold)
				stepsSum += res.TotalSteps
				allOK = allOK && res.SatisfiesCorollary()
			}
			ops := 2 * n * seeds
			bound := math.Log2(float64(n) / float64(im.k*im.k))
			if bound < 0 {
				bound = 0
			}
			verdict := "holds"
			if !allOK {
				verdict = "fails (not k-accurate)"
			}
			t.AddRow(im.name, n, im.k,
				medianSum/seeds, atLeastSum/seeds, verdict,
				float64(stepsSum)/float64(ops), bound)
		}
	}
	return []*Table{t}, nil
}
