package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"approxobj"
	"approxobj/expose"
)

// E18Windowed measures the windowed tier (WithWindow) under the
// observe+scrape traffic an exposition endpoint sees: every kind is
// built windowed, a writer goroutine churns it continuously, and the
// timed loop is the read side — the per-kind windowed read (which folds
// the live epoch ring) for the four kind rows, and a full
// expose.WriteRegistry render (the scrape itself) for the
// registry-scrape row. The window is deliberately long (no rotation
// fires mid-cell), so after the writer stops and flushes, the windowed
// read must land inside the object's envelope against the exact
// write count — re-verified per cell.
func E18Windowed(cfg Config) ([]*Table, error) {
	reads := 100_000
	if cfg.Quick {
		reads = 10_000
	}
	// Long window: rotation (d/epochs = 2 min) never fires inside a
	// cell, so the convergence checks see the whole write history. The
	// envelope still carries the Window term — it is configured, not
	// measured.
	const (
		windowDur    = 10 * time.Minute
		windowEpochs = 5
	)
	window := []approxobj.Option{approxobj.WithWindow(windowDur, windowEpochs)}

	t := &Table{
		ID:    "E18",
		Title: "windowed objects: read cost under concurrent observation, plus a registry scrape",
		Note: `Each kind row times the windowed read (Read/Scan/p99 Quantile) through
one handle while a writer goroutine churns another: the read folds the
live epoch ring (epochs x shards per-kind combines), which is the
steady-state cost a windowed object adds over a cumulative one. The
registry-scrape row times one expose.WriteRegistry render of a registry
holding all four windowed kinds under the same churn — the cost of one
Prometheus scrape. The recorded envelope carries the Window term
(d/epochs); the window is long enough that no rotation fires mid-cell,
so each cell re-verifies quiescent convergence exactly.`,
		Header: []string{"case", "epochs", "read ns/op"},
	}

	type windowCase struct {
		name string
		// build returns the write step (returns how much it added to the
		// tracked total), the timed read, the object's bounds, a
		// quiescent convergence check against the written total, and a
		// close function.
		build func() (write func() uint64, read func() uint64, bounds approxobj.Bounds, converge func(total uint64) error, closeFn func(), err error)
	}

	cases := []windowCase{
		{name: "counter", build: func() (func() uint64, func() uint64, approxobj.Bounds, func(uint64) error, func(), error) {
			c, err := approxobj.NewCounter(append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithShards(2),
			}, window...)...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := c.Handle(0), c.Handle(1)
			write := func() uint64 { w.Inc(); return 1 }
			converge := func(total uint64) error {
				flushed := c.Bounds()
				flushed.Buffer = 0
				if x := r.Read(); !flushed.Contains(total, x) {
					return fmt.Errorf("windowed counter read %d outside flushed envelope %+v of %d", x, flushed, total)
				}
				return nil
			}
			return write, r.Read, c.Bounds(), converge, c.Close, nil
		}},
		{name: "max-register", build: func() (func() uint64, func() uint64, approxobj.Bounds, func(uint64) error, func(), error) {
			m, err := approxobj.NewMaxRegister(append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithBound(1 << 30),
			}, window...)...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := m.Handle(0), m.Handle(1)
			var next uint64
			write := func() uint64 { next++; w.Write(next); return 1 }
			converge := func(total uint64) error {
				if x := r.Read(); x != next {
					return fmt.Errorf("windowed max-register read %d, want high-water mark %d", x, next)
				}
				return nil
			}
			return write, r.Read, m.Bounds(), converge, m.Close, nil
		}},
		{name: "snapshot", build: func() (func() uint64, func() uint64, approxobj.Bounds, func(uint64) error, func(), error) {
			sn, err := approxobj.NewSnapshot(append([]approxobj.Option{
				approxobj.WithProcs(2),
			}, window...)...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := sn.Handle(0), sn.Handle(1)
			var next uint64
			write := func() uint64 { next++; w.Update(next); return 1 }
			read := func() uint64 { return r.Scan()[0] }
			converge := func(total uint64) error {
				if x := read(); x != next {
					return fmt.Errorf("windowed snapshot component %d, want high-water mark %d", x, next)
				}
				return nil
			}
			return write, read, sn.Bounds(), converge, sn.Close, nil
		}},
		{name: "histogram", build: func() (func() uint64, func() uint64, approxobj.Bounds, func(uint64) error, func(), error) {
			const bound = uint64(1) << 16
			hg, err := approxobj.NewHistogram(append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithBound(bound),
				approxobj.WithShards(2),
			}, window...)...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := hg.Handle(0), hg.Handle(1)
			var next uint64
			write := func() uint64 { next++; w.Observe(next % bound); return 1 }
			read := func() uint64 { return r.Quantile(0.99) }
			converge := func(total uint64) error {
				if c := r.Count(); c != total {
					return fmt.Errorf("windowed histogram count %d, want exactly %d", c, total)
				}
				return nil
			}
			return write, read, hg.Bounds(), converge, hg.Close, nil
		}},
	}

	var sink uint64
	for _, wc := range cases {
		write, read, bounds, converge, closeFn, err := wc.build()
		if err != nil {
			return nil, err
		}
		nsPerOp, err := timeUnderChurn(reads, write, read, converge, &sink)
		closeFn()
		if err != nil {
			return nil, fmt.Errorf("bench: E18 %s: %w", wc.name, err)
		}
		t.AddRow(wc.name, windowEpochs, fmt.Sprintf("%.1f", nsPerOp))
		t.AddRecord(Record{
			Params:   map[string]string{"kind": wc.name},
			NsPerOp:  nsPerOp,
			Envelope: EnvelopeOf(bounds),
		})
	}
	if sink == ^uint64(0) {
		return nil, fmt.Errorf("bench: impossible sink value")
	}

	scrape, err := e18Scrape(cfg, reads/100, window, windowDur, windowEpochs)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, scrape.Rows...)
	t.Records = append(t.Records, scrape.Records...)
	return []*Table{t}, nil
}

// timeUnderChurn runs the timed read loop while a writer goroutine
// applies write steps continuously, then stops the writer, flushes by
// reading once more at quiescence, and runs the convergence check
// against the total applied.
func timeUnderChurn(reads int, write func() uint64, read func() uint64, converge func(total uint64) error, sink *uint64) (float64, error) {
	var total atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				total.Add(write())
			}
		}
	}()
	start := time.Now()
	for i := 0; i < reads; i++ {
		*sink += read()
	}
	elapsed := time.Since(start)
	close(stop)
	<-done
	if err := converge(total.Load()); err != nil {
		return 0, err
	}
	return float64(elapsed.Nanoseconds()) / float64(reads), nil
}

// e18Scrape times a full expose.WriteRegistry render of a registry
// holding one windowed object of every kind, while one writer goroutine
// per object churns it — the per-scrape cost of the exposition
// endpoint.
func e18Scrape(cfg Config, scrapes int, window []approxobj.Option, d time.Duration, epochs int) (*Table, error) {
	if scrapes < 100 {
		scrapes = 100
	}
	reg := approxobj.NewRegistry()
	c, err := reg.Counter("e18.requests", append([]approxobj.Option{
		approxobj.WithProcs(2), approxobj.WithAccuracy(approxobj.Multiplicative(2)),
	}, window...)...)
	if err != nil {
		return nil, err
	}
	m, err := reg.MaxRegister("e18.peak", append([]approxobj.Option{
		approxobj.WithProcs(2), approxobj.WithBound(1 << 30),
	}, window...)...)
	if err != nil {
		return nil, err
	}
	sn, err := reg.SnapshotObject("e18.progress", append([]approxobj.Option{
		approxobj.WithProcs(2),
	}, window...)...)
	if err != nil {
		return nil, err
	}
	hg, err := reg.HistogramObject("e18.latency", append([]approxobj.Option{
		approxobj.WithProcs(2), approxobj.WithAccuracy(approxobj.Multiplicative(2)), approxobj.WithBound(1 << 16),
	}, window...)...)
	if err != nil {
		return nil, err
	}
	defer reg.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	churn := func(step func(i uint64)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
					step(i)
				}
			}
		}()
	}
	ch, cm, cs, chg := c.Handle(0), m.Handle(0), sn.Handle(0), hg.Handle(0)
	churn(func(i uint64) { ch.Inc() })
	churn(func(i uint64) { cm.Write(i) })
	churn(func(i uint64) { cs.Update(i) })
	churn(func(i uint64) { chg.Observe(i % (1 << 16)) })

	start := time.Now()
	for i := 0; i < scrapes; i++ {
		if err := expose.WriteRegistry(io.Discard, reg); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("bench: E18 scrape: %w", err)
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	nsPerOp := float64(elapsed.Nanoseconds()) / float64(scrapes)
	t := &Table{ID: "E18"}
	t.AddRow("registry-scrape", epochs, fmt.Sprintf("%.1f", nsPerOp))
	t.AddRecord(Record{
		Params:   map[string]string{"kind": "registry-scrape"},
		NsPerOp:  nsPerOp,
		Envelope: &RecordEnvelope{Mult: 1, Window: uint64(d / time.Duration(epochs))},
	})
	return t, nil
}
