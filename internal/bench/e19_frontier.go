package bench

import (
	"fmt"
	"strconv"

	"approxobj"
)

// E19Frontier measures the deterministic-vs-randomized frontier at equal
// target error: a Multiplicative(k) counter and a Randomized(k, delta)
// counter — the same k-multiplicative envelope, one guaranteed on every
// schedule, the other with probability >= 1-delta — across the shards x
// batch grid, reporting shared-memory steps/op and base-object space
// (the paper's two cost measures). This is the research-output
// experiment the ROADMAP names: the deterministic lower bounds in
// PAPERS.md say exact-ish deterministic counters must pay in state,
// while a Morris shard is one exponent register; E19 records what the
// determinism guarantee costs, and -compare tracks the frontier across
// PRs like any other contractual scenario.
//
// The workload is a fixed sequential schedule (round-robin over the
// process slots, one read every readEvery ops), so steps/op is
// machine-independent: the deterministic rows are exactly reproducible,
// and the randomized rows are reproducible for a fixed seed because
// every RNG in the stack is seeded by construction order.
func E19Frontier(cfg Config) ([]*Table, error) {
	const n = 4
	const k = 2 // = sqrt(n): both sides at the same target error
	const delta = 0.01
	const readEvery = 20
	opsPer := 20_000
	if cfg.Quick {
		opsPer = 4_000
	}
	shardCounts := []int{1, 4}
	batches := []int{1, 64}

	t := &Table{
		ID:    "E19",
		Title: fmt.Sprintf("deterministic vs randomized frontier at equal target error (k=%d, delta=%g)", k, delta),
		Note: `Both sides promise the same [v/k, k*v] read envelope; the
deterministic counter keeps it on every schedule, the randomized one
with probability >= 1-delta per read. Space is 8 bytes per resident
base object, measured after the workload (lazily allocated switch
levels count once materialized). State is where the randomized counter
wins — one Morris exponent register per shard versus the deterministic
plane's per-process registers and switch levels — while steps/op at
equal target error it loses: Algorithm 1 is O(1) amortized (k >=
sqrt(n)), but every Morris Inc pays a read plus a delta-dependent CAS
probability, and a batched flush replays its flips one at a time, so
batching cannot close the gap.`,
		Header: []string{"accuracy", "shards", "batch", "steps/op", "bytes", "delta"},
	}

	run := func(acc approxobj.Accuracy, shards, batch int) (stepsPerOp float64, bytes uint64, env *RecordEnvelope, err error) {
		c, err := approxobj.NewCounter(
			approxobj.WithProcs(n),
			approxobj.WithAccuracy(acc),
			approxobj.WithShards(shards),
			approxobj.WithBatch(batch),
		)
		if err != nil {
			return 0, 0, nil, err
		}
		handles := make([]approxobj.CounterHandle, n)
		for i := range handles {
			handles[i] = c.Handle(i)
		}
		ops := 0
		for j := 0; j < opsPer; j++ {
			h := handles[j%n]
			if j%readEvery == readEvery-1 {
				h.Read()
			} else {
				h.Inc()
			}
			ops++
		}
		var steps uint64
		for _, h := range handles {
			h.(approxobj.BatchedCounterHandle).Flush()
			steps += h.Steps()
		}
		return float64(steps) / float64(ops), 8 * c.BaseObjects(), EnvelopeOf(c.Bounds()), nil
	}

	for _, row := range []struct {
		name string
		acc  approxobj.Accuracy
	}{
		{"multiplicative", approxobj.Multiplicative(k)},
		{"randomized", approxobj.Randomized(k, delta)},
	} {
		for _, s := range shardCounts {
			for _, b := range batches {
				stepsPerOp, bytes, env, err := run(row.acc, s, b)
				if err != nil {
					return nil, err
				}
				t.AddRow(row.acc.String(), s, b, stepsPerOp, bytes, row.acc.Delta())
				t.AddRecord(Record{
					Params: map[string]string{
						"accuracy": row.name,
						"shards":   strconv.Itoa(s),
						"batch":    strconv.Itoa(b),
						"k":        strconv.FormatUint(k, 10),
					},
					StepsPerOp: stepsPerOp,
					Bytes:      bytes,
					Envelope:   env,
				})
			}
		}
	}
	return []*Table{t}, nil
}
