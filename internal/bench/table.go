// Package bench is the experiment harness: it regenerates, as text tables,
// every result of the paper's evaluation (each theorem's bound plus the
// Figure 1 boundary cases). cmd/approxbench prints all tables; the
// experiment IDs (E1..E9, F1) are indexed in DESIGN.md and the measured
// outputs recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"strings"

	"approxobj"
)

// Record is one machine-readable measurement, emitted alongside the
// rendered table for cmd/approxbench's -json output. The schema is stable
// across PRs so result files can be diffed over time: Scenario names the
// experiment row source (a table ID), Params the sweep coordinates, and
// the metric fields are zero when the experiment does not measure them.
// Envelope, when set, records the cell's configured accuracy envelope —
// unlike the timing metrics it is machine-independent, so
// cmd/approxbench's -compare mode can flag envelope regressions between
// record files exactly.
type Record struct {
	Scenario   string            `json:"scenario"`
	Params     map[string]string `json:"params,omitempty"`
	NsPerOp    float64           `json:"ns_per_op,omitempty"`
	StepsPerOp float64           `json:"steps_per_op,omitempty"`
	// Bytes is the cell's base-object space (8 bytes per allocated base
	// object, the paper's space measure) — machine-independent, like the
	// envelope; the frontier experiment (E19) reports it so the
	// deterministic-vs-randomized space gap is tracked across PRs.
	Bytes uint64 `json:"bytes,omitempty"`
	// AllocsPerRead is the heap allocations per read operation (E20r) —
	// machine-independent, like the envelope, because the read paths are
	// designed to reuse handle-local scratch: cached scalar reads must
	// report 0, and -compare treats any increase as a regression.
	AllocsPerRead float64         `json:"allocs_per_read,omitempty"`
	Envelope      *RecordEnvelope `json:"envelope,omitempty"`
}

// RecordEnvelope is the machine-readable form of a cell's accuracy
// envelope (approxobj.Bounds): a read may return any x with
// (v-Buffer)/Mult - Add <= x <= Mult*v + Add against a true value v.
type RecordEnvelope struct {
	Mult   uint64 `json:"mult"`
	Add    uint64 `json:"add"`
	Buffer uint64 `json:"buffer"`
	// Stale is the read-cache staleness window in nanoseconds (0 when
	// the cell runs uncached); like the other terms it is configured,
	// not measured, so -compare treats any widening as a regression.
	Stale uint64 `json:"stale_ns,omitempty"`
	// Window is the epoch-truncation skew of windowed cells in
	// nanoseconds — d/n for WithWindow(d, n), 0 for cumulative cells.
	// Configured like Stale, so -compare flags widening exactly.
	Window uint64 `json:"window_ns,omitempty"`
	// Delta is the envelope's failure probability (0 for deterministic
	// cells; the Randomized accuracy's delta otherwise): the numeric
	// envelope holds per read only with probability >= 1-Delta.
	// Configured, not measured, so -compare treats any widening as a
	// regression — a cell silently trading determinism away fails the
	// gate.
	Delta float64 `json:"delta,omitempty"`
}

// EnvelopeOf converts an object's Bounds into record form.
func EnvelopeOf(b approxobj.Bounds) *RecordEnvelope {
	return &RecordEnvelope{Mult: b.Mult, Add: b.Add, Buffer: b.Buffer, Stale: uint64(b.Stale), Window: uint64(b.Window), Delta: b.Delta}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
	// Records carries the machine-readable counterpart of (some of) the
	// rows; experiments populate it with AddRecord where a row maps to a
	// metric worth tracking across PRs.
	Records []Record
}

// AddRecord appends a machine-readable measurement, filling in the
// table's ID as the scenario.
func (t *Table) AddRecord(r Record) {
	if r.Scenario == "" {
		r.Scenario = t.ID
	}
	t.Records = append(t.Records, r)
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(strings.TrimSpace(t.Note), "\n") {
			fmt.Fprintf(w, "# %s\n", strings.TrimSpace(line))
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Config tunes experiment sizes. Quick shrinks every sweep for use in unit
// tests and smoke runs. Seed is the base seed every scenario RNG derives
// from (cmd/approxbench's -seed flag): two runs with the same Seed and
// Quick setting drive identical operation sequences, so their -json
// records differ only by machine timing.
type Config struct {
	Quick bool
	Seed  int64
}

// Experiment couples an ID with its generator, a one-line description
// (printed by approxbench -list), and the record scenarios it contributes
// to the -json measurement trajectory. Scenarios is the contract for the
// trajectory: cmd/approxbench fails a run whose output is missing a
// declared scenario, and the package tests assert that declarations and
// emissions match exactly — so a new experiment (or a refactor of an old
// one) cannot silently drop records from the trajectory, and the set of
// tracked scenarios lives in this table rather than in a hand-kept list
// somewhere downstream.
type Experiment struct {
	ID        string
	Desc      string
	Scenarios []string // record scenarios emitted on every run (nil: table-only experiment)
	Run       func(cfg Config) ([]*Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "e1", Desc: "amortized step complexity of the k-multiplicative counter (Thm III.9)", Scenarios: []string{"E1a"}, Run: E1Amortized},
		{ID: "e2", Desc: "awareness propagation under the deterministic scheduler", Run: E2Awareness},
		{ID: "e3", Desc: "bounded max-register worst-case steps, exact vs approximate (Thm IV.2)", Run: E3MaxRegWorstCase},
		{ID: "e4", Desc: "perturbation lower-bound construction for max registers", Run: E4PerturbMaxReg},
		{ID: "e5", Desc: "perturbation lower-bound construction for counters", Run: E5PerturbCounter},
		{ID: "e7", Desc: "concurrent throughput, approximate vs exact counters", Scenarios: []string{"E7"}, Run: E7Throughput},
		{ID: "e8", Desc: "unbounded max-register step growth", Run: E8UnboundedMaxReg},
		{ID: "e9", Desc: "Claim III.6 boundary gap: verbatim vs repaired thresholds", Run: E9Boundary},
		{ID: "e10", Desc: "additive-accuracy counter costs", Run: E10Additive},
		{ID: "e11", Desc: "randomized baseline comparison (Morris counter) via the spec API", Run: E11Randomized},
		{ID: "e12", Desc: "sharded counter scaling: shards x batch sweep via the spec API", Scenarios: []string{"E12"}, Run: E12Sharded},
		{ID: "e13", Desc: "registry + pooled handles under mixed traffic with concurrent snapshots", Scenarios: []string{"E13"}, Run: E13Registry},
		{ID: "e14", Desc: "sharded max-register scaling: shards x elision-window sweep via the spec API", Scenarios: []string{"E14"}, Run: E14ShardedMaxReg},
		{ID: "e15", Desc: "sharded snapshot scaling: shards x elision-window sweep via the spec API", Scenarios: []string{"E15"}, Run: E15ShardedSnapshot},
		{ID: "e16", Desc: "sharded histogram scaling: shards x batch sweep with quantile queries via the spec API", Scenarios: []string{"E16"}, Run: E16ShardedHistogram},
		{ID: "e17", Desc: "read plane: cached vs uncached read cost across shard counts, plus a reader:writer ratio sweep", Scenarios: []string{"E17", "E17b"}, Run: E17ReadPlane},
		{ID: "e18", Desc: "windowed objects: per-kind reads under concurrent observation, plus a full-registry scrape", Scenarios: []string{"E18"}, Run: E18Windowed},
		{ID: "e19", Desc: "deterministic-vs-randomized frontier: steps/op and space at equal target error, shards x batch", Scenarios: []string{"E19"}, Run: E19Frontier},
		{ID: "e20", Desc: "arena plane: writer throughput across goroutines x shards, plus allocations per read for every kind", Scenarios: []string{"E20", "E20r"}, Run: E20Arena},
		{ID: "e21", Desc: "self-instrumentation: telemetry on vs off for counter + histogram write/read paths, shards x batch", Scenarios: []string{"E21"}, Run: E21Telemetry},
		{ID: "f1", Desc: "Figure 1 read-case trace reproduction", Run: F1ReadCases},
	}
}
