package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"approxobj"
	"approxobj/internal/histogram"
)

// E16ShardedHistogram is the scaling experiment for the histogram side
// of the backend plane — the first kind whose read is a query, not a
// scalar — driven through the public spec API (WithShards x WithBatch
// over Multiplicative(2) rounded buckets): goroutines x shards x batch
// sweep of wall-clock throughput, 95% observe / 5% p99-quantile query
// over a skewed (latency-like) value distribution. Sharding splits
// observation traffic across disjoint bucket vectors whose per-bucket
// sums widen nothing; the batch parameter buffers whole observations, so
// B-1 of every B observes touch no shared memory. Every cell re-verifies
// the quiescent accuracy contract after flushing: the count must be
// exact and every quantile inside pure bucket rounding against an exact
// sorted reference of all observations.
func E16ShardedHistogram(cfg Config) ([]*Table, error) {
	maxG := runtime.GOMAXPROCS(0)
	gss := []int{1, 2, 4}
	if maxG > 4 {
		gss = append(gss, maxG)
	}
	shardCounts := []int{1, 2, 4}
	batches := []int{1, 64}
	opsPer := 30_000
	if cfg.Quick {
		gss = []int{1, 2}
		shardCounts = []int{1, 4}
		opsPer = 4_000
	}
	const queryFrac = 0.05
	const k = 2
	const bound = uint64(1) << 16

	t := &Table{
		ID:    "E16",
		Title: fmt.Sprintf("sharded histogram scaling, 95%% observe / 5%% p99 query (k=%d, GOMAXPROCS=%d)", k, maxG),
		Note: `Each row is one (goroutines, shards, batch) cell over independent
rounded-bucket histograms; shards=1 batch=1 is the unsharded baseline.
Observations round into buckets spaced by factor k, so every recorded
value is represented within k (the value-domain Mult of Bounds); a p99
query sums one merged read of the bucket counts and inverts the rank.
batch=B buffers whole observations per handle (B-1 of every B observes
touch no shared memory); the headroom surfaces as the rank-domain
Buffer term (B-1 per handle). Queries are the expensive operation (one
read per bucket per shard); batching removes observe work rather than
contention, so it shows even on a single-CPU host. Every cell
re-verifies the quiescent contract after flushing: exact count, and
quantiles within pure bucket rounding of an exact sorted reference.`,
		Header: []string{"goroutines", "shards", "batch", "Mops/s", "ns/op", "queries/s"},
	}

	for _, gs := range gss {
		for _, s := range shardCounts {
			for _, b := range batches {
				h, err := approxobj.NewHistogram(
					approxobj.WithProcs(gs),
					approxobj.WithAccuracy(approxobj.Multiplicative(k)),
					approxobj.WithBound(bound),
					approxobj.WithShards(s),
					approxobj.WithBatch(b),
				)
				if err != nil {
					return nil, err
				}
				res, err := runShardedHistogram(cfg.Seed, h, gs, opsPer, queryFrac, bound)
				if err != nil {
					return nil, err
				}
				t.AddRow(gs, s, b, res.mopsPerS, fmt.Sprintf("%.1f", res.nsPerOp), fmt.Sprintf("%.0f", res.readsPerS))
				t.AddRecord(Record{
					Params: map[string]string{
						"goroutines": strconv.Itoa(gs),
						"shards":     strconv.Itoa(s),
						"batch":      strconv.Itoa(b),
						"k":          strconv.Itoa(k),
					},
					NsPerOp:  res.nsPerOp,
					Envelope: EnvelopeOf(h.Bounds()),
				})
			}
		}
	}
	return []*Table{t}, nil
}

// runShardedHistogram drives gs goroutines of opsPer mixed operations
// (queryFrac p99 queries, the rest skewed-value observes) against one
// histogram and reports wall-clock throughput plus the final quiescent
// accuracy check against an exact sorted reference.
func runShardedHistogram(seed int64, h *approxobj.Histogram, gs, opsPer int, queryFrac float64, bound uint64) (shardedRun, error) {
	handles := make([]approxobj.HistogramHandle, gs)
	for i := range handles {
		handles[i] = h.Handle(i)
	}
	observed := make([][]uint64, gs)
	queries := make([]uint64, gs)
	var wg sync.WaitGroup
	startLine := make(chan struct{})
	wg.Add(gs)
	for i := 0; i < gs; i++ {
		hh := handles[i]
		rng := rand.New(rand.NewSource(seed + int64(i) + 47))
		go func(i int) {
			defer wg.Done()
			vals := make([]uint64, 0, opsPer)
			<-startLine
			for j := 0; j < opsPer; j++ {
				if rng.Float64() < queryFrac {
					hh.Quantile(0.99)
					queries[i]++
				} else {
					v := uint64(rng.ExpFloat64() * 400)
					if v >= bound {
						v = bound - 1
					}
					hh.Observe(v)
					vals = append(vals, v)
				}
			}
			observed[i] = vals
		}(i)
	}
	start := time.Now()
	close(startLine)
	wg.Wait()
	elapsed := time.Since(start)

	// Quiescent accuracy check: flush every observation buffer, then the
	// count must be exact and every quantile within pure bucket rounding
	// of the exact sorted reference.
	var totalQueries uint64
	var all []uint64
	for i, hh := range handles {
		hh.(approxobj.BatchedHistogramHandle).Flush()
		totalQueries += queries[i]
		all = append(all, observed[i]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	reader := handles[0]
	if c := reader.Count(); c != uint64(len(all)) {
		return shardedRun{}, fmt.Errorf(
			"bench: sharded histogram (S=%d B=%d) counts %d after flush, want exactly %d",
			h.Shards(), h.Batch(), c, len(all))
	}
	k := h.K()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := reader.Quantile(q)
		y := all[histogram.TargetRank(q, uint64(len(all)))-1]
		if got > y || (y > 0 && got*k <= y) {
			return shardedRun{}, fmt.Errorf(
				"bench: sharded histogram (S=%d B=%d) p%.0f = %d outside (%d/%d, %d]",
				h.Shards(), h.Batch(), q*100, got, y, k, y)
		}
	}
	totalOps := float64(gs * opsPer)
	return shardedRun{
		nsPerOp:   float64(elapsed.Nanoseconds()) / totalOps,
		mopsPerS:  totalOps / elapsed.Seconds() / 1e6,
		readsPerS: float64(totalQueries) / elapsed.Seconds(),
	}, nil
}
