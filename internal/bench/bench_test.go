package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			tables, err := exp.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", exp.ID)
			}
			emitted := map[string]bool{}
			for _, tb := range tables {
				out := tb.String()
				if !strings.Contains(out, tb.ID) || len(tb.Rows) == 0 {
					t.Fatalf("%s: malformed table output:\n%s", exp.ID, out)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Fatalf("%s: row width %d != header width %d", tb.ID, len(row), len(tb.Header))
					}
				}
				for _, r := range tb.Records {
					emitted[r.Scenario] = true
				}
			}
			// Declared and emitted record scenarios must match exactly:
			// the experiment table is the single source of truth for the
			// -json measurement trajectory. A scenario emitted but not
			// declared would drop out of the trajectory contract the next
			// time someone trims the table; a declared one not emitted is
			// the silent-drop bug this guards against.
			declared := map[string]bool{}
			for _, sc := range exp.Scenarios {
				declared[sc] = true
				if !emitted[sc] {
					t.Errorf("%s declares record scenario %q but emitted no records for it", exp.ID, sc)
				}
			}
			for sc := range emitted {
				if !declared[sc] {
					t.Errorf("%s emitted records for scenario %q without declaring it in bench.All", exp.ID, sc)
				}
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Note:   "a note\nsecond line",
		Header: []string{"col", "value"},
	}
	tb.AddRow("x", 3.14159)
	tb.AddRow("longer-cell", 1)
	out := tb.String()
	for _, want := range []string{"## T — demo", "# a note", "# second line", "3.14", "longer-cell"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestE9ShowsViolationAndRepair(t *testing.T) {
	tables, err := E9Boundary(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "VIOLATED") {
		t.Fatalf("E9 did not reproduce the verbatim violation:\n%s", out)
	}
	// Every repaired row must be ok.
	for _, row := range tables[0].Rows {
		if row[2] == "repaired" && row[7] != "ok" {
			t.Fatalf("repaired variant violated the envelope: %v", row)
		}
		if row[2] == "verbatim" && row[7] != "VIOLATED" {
			t.Fatalf("verbatim variant unexpectedly within envelope: %v", row)
		}
	}
}

func TestF1CasesMatchFigure(t *testing.T) {
	tables, err := F1ReadCases(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("F1 has %d rows, want 3", len(rows))
	}
	// b.1 and b.2 stop at (1,0) and return the same response; case a
	// stops at (0,1).
	if rows[0][3] != "(1,0)" || rows[1][3] != "(1,0)" {
		t.Fatalf("b cases stop at %s/%s, want (1,0)", rows[0][3], rows[1][3])
	}
	if rows[0][4] != rows[1][4] {
		t.Fatalf("b.1 and b.2 responses differ: %s vs %s", rows[0][4], rows[1][4])
	}
	if rows[2][3] != "(0,1)" {
		t.Fatalf("case a stops at %s, want (0,1)", rows[2][3])
	}
}

func TestE3PredictionsMatchMeasurements(t *testing.T) {
	tables, err := E3MaxRegWorstCase(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Measured worst-case steps never exceed the predicted tree depth.
	for _, row := range tables[0].Rows {
		if row[1] < row[2] && len(row[1]) == len(row[2]) {
			t.Fatalf("exact measured exceeds predicted: %v", row)
		}
	}
}
