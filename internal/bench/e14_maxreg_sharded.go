package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"approxobj"
)

// E14ShardedMaxReg is the scaling experiment for the max-register side of
// the unified sharded runtime, driven through the public spec API
// (WithShards x WithBatch over a Multiplicative register): goroutines x
// shards x batch sweep of wall-clock throughput, 95% write / 5% read over
// ascending per-goroutine sequences. Sharding splits write traffic across
// independent Algorithm 2 instances, and — unlike the counter's sum —
// the max over shards composes with NO envelope widening at all. The
// batch parameter is the write-elision window: a handle skips shared
// memory entirely for writes within B-1 of its last flushed value, which
// on slowly-rising monotone streams elides almost every write. Every cell
// re-verifies the combined accuracy envelope at quiescence after
// flushing.
func E14ShardedMaxReg(cfg Config) ([]*Table, error) {
	maxG := runtime.GOMAXPROCS(0)
	gss := []int{1, 2, 4}
	if maxG > 4 {
		gss = append(gss, maxG)
	}
	shardCounts := []int{1, 2, 4, 8}
	batches := []int{1, 64}
	opsPer := 200_000
	if cfg.Quick {
		gss = []int{1, 2}
		shardCounts = []int{1, 4}
		opsPer = 30_000
	}
	const readFrac = 0.05
	const k = uint64(2)

	t := &Table{
		ID:    "E14",
		Title: fmt.Sprintf("sharded max-register scaling, 95%% write / 5%% read (k=%d, GOMAXPROCS=%d)", k, maxG),
		Note: `Each row is one (goroutines, shards, batch) cell over independent
Algorithm 2 shards; shards=1 batch=1 is the unsharded baseline. The max
over S k-mult shards is still k-mult — sharding widens nothing, the
envelope is independent of S. batch=B is the write-elision window:
writes within B-1 of a handle's last flushed value never touch shared
memory, so ascending streams flush only every ~B-th distinct value; the
headroom surfaces as the Buffer term of Bounds (B-1 per handle, not
times n). On a single-CPU host the shard columns serialize and gaps are
muted (as in E12); elision still shows, since it removes work rather
than contention.`,
		Header: []string{"goroutines", "shards", "batch", "Mops/s", "ns/op", "reads/s"},
	}

	for _, gs := range gss {
		for _, s := range shardCounts {
			for _, b := range batches {
				r, err := approxobj.NewMaxRegister(
					approxobj.WithProcs(gs),
					approxobj.WithAccuracy(approxobj.Multiplicative(k)),
					approxobj.WithShards(s),
					approxobj.WithBatch(b),
				)
				if err != nil {
					return nil, err
				}
				res, err := runShardedMaxReg(cfg.Seed, r, gs, opsPer, readFrac)
				if err != nil {
					return nil, err
				}
				t.AddRow(gs, s, b, res.mopsPerS, fmt.Sprintf("%.1f", res.nsPerOp), fmt.Sprintf("%.0f", res.readsPerS))
				t.AddRecord(Record{
					Params: map[string]string{
						"goroutines": strconv.Itoa(gs),
						"shards":     strconv.Itoa(s),
						"batch":      strconv.Itoa(b),
						"k":          strconv.FormatUint(k, 10),
					},
					NsPerOp:  res.nsPerOp,
					Envelope: EnvelopeOf(r.Bounds()),
				})
			}
		}
	}
	return []*Table{t}, nil
}

// runShardedMaxReg drives gs goroutines of opsPer mixed operations
// (readFrac reads, the rest ascending interleaved writes) against one
// sharded max register and reports wall-clock throughput plus the final
// accuracy check inputs.
func runShardedMaxReg(seed int64, r *approxobj.MaxRegister, gs, opsPer int, readFrac float64) (shardedRun, error) {
	handles := make([]approxobj.MaxRegisterHandle, gs)
	for i := range handles {
		handles[i] = r.Handle(i)
	}
	maxima := make([]uint64, gs)
	reads := make([]uint64, gs)
	var wg sync.WaitGroup
	startLine := make(chan struct{})
	wg.Add(gs)
	for i := 0; i < gs; i++ {
		h := handles[i]
		rng := rand.New(rand.NewSource(seed + int64(i) + 31))
		go func(i int) {
			defer wg.Done()
			<-startLine
			for j := 1; j <= opsPer; j++ {
				if rng.Float64() < readFrac {
					h.Read()
					reads[i]++
				} else {
					v := uint64(j)*uint64(gs) + uint64(i)
					h.Write(v)
					maxima[i] = v
				}
			}
		}(i)
	}
	start := time.Now()
	close(startLine)
	wg.Wait()
	elapsed := time.Since(start)

	// Quiescent accuracy check: flush every elision window, then the
	// combined read must be inside the flushed (Buffer = 0) envelope of
	// the true maximum.
	var trueMax, totalReads uint64
	for i, h := range handles {
		h.(approxobj.BatchedMaxRegisterHandle).Flush()
		if maxima[i] > trueMax {
			trueMax = maxima[i]
		}
		totalReads += reads[i]
	}
	bounds := r.Bounds()
	bounds.Buffer = 0
	if got := handles[0].Read(); !bounds.Contains(trueMax, got) {
		return shardedRun{}, fmt.Errorf(
			"bench: sharded max register (S=%d B=%d) read %d outside envelope of true max %d (bounds %+v)",
			r.Shards(), r.Batch(), got, trueMax, bounds)
	}
	totalOps := float64(gs * opsPer)
	return shardedRun{
		nsPerOp:   float64(elapsed.Nanoseconds()) / totalOps,
		mopsPerS:  totalOps / elapsed.Seconds() / 1e6,
		readsPerS: float64(totalReads) / elapsed.Seconds(),
	}, nil
}
