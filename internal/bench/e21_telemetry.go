package bench

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"approxobj"
)

// E21Telemetry measures the self-instrumentation plane (PR 10): the
// cost of running an object with a telemetry domain attached
// (WithTelemetry) versus completely uninstrumented, for the two
// write-heaviest kinds (counter and histogram) across shards x batch.
// Three metrics per cell:
//
//   - ns/op for the write path (Inc / Observe), machine-dependent: the
//     instrumented column tracks the striped-atomic overhead across
//     PRs, the uninstrumented one pins the nil fast path's cost at
//     "one never-taken branch".
//   - steps/op, machine-independent: telemetry counts events in its
//     own striped cells, never through the objects' base-object
//     primitives, so the step count must be IDENTICAL with telemetry
//     on and off — any drift is a bug, gated by -compare's steps
//     tolerance and pinned exactly by TestTelemetryDisabledZeroCost.
//   - allocs/read, machine-independent: the read path must stay
//     allocation-free in both columns (telemetry's read-side events
//     are striped counter bumps, not allocations).
func E21Telemetry(cfg Config) ([]*Table, error) {
	shardCounts := []int{1, 4}
	batches := []int{1, 8}
	writes := 200_000
	reads := 20_000
	if cfg.Quick {
		writes = 20_000
		reads = 2_000
	}

	t := &Table{
		ID:    "E21",
		Title: "self-instrumentation: telemetry on vs off, counter + histogram write/read paths, shards x batch",
		Note: `Each row drives one writer handle and one reader handle of a
Multiplicative(2) object, with and without a telemetry domain attached
(WithTelemetry). Telemetry counts runtime events (flushes, buffer
hits, cache traffic) in its own cache-line-striped atomics and batched
handle-local accumulators; it never touches the objects' base-object
primitives, so steps/op must be identical across the telemetry column
— that invariant is the machine-independent claim of this table, along
with allocs/read staying 0.00 in both columns. ns/op is
machine-dependent and tracked for drift only.`,
		Header: []string{"kind", "shards", "batch", "telemetry", "ns/op", "steps/op", "allocs/read"},
	}

	type cell struct {
		build func(shards, batch int, tel *approxobj.Telemetry) (w interface {
			Steps() uint64
		}, write func(), read func() uint64, closeFn func(), err error)
		kind string
	}

	telOpt := func(tel *approxobj.Telemetry) []approxobj.Option {
		if tel != nil {
			return []approxobj.Option{approxobj.WithTelemetry(tel)}
		}
		return nil
	}

	kinds := []cell{
		{kind: "counter", build: func(shards, batch int, tel *approxobj.Telemetry) (interface{ Steps() uint64 }, func(), func() uint64, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithShards(shards),
				approxobj.WithBatch(batch),
			}, telOpt(tel)...)
			c, err := approxobj.NewCounter(opts...)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			w, r := c.Handle(0), c.Handle(1)
			return w, w.Inc, r.Read, c.Close, nil
		}},
		{kind: "histogram", build: func(shards, batch int, tel *approxobj.Telemetry) (interface{ Steps() uint64 }, func(), func() uint64, func(), error) {
			const bound = uint64(1) << 16
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithBound(bound),
				approxobj.WithShards(shards),
				approxobj.WithBatch(batch),
			}, telOpt(tel)...)
			hg, err := approxobj.NewHistogram(opts...)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			w, r := hg.Handle(0), hg.Handle(1)
			var v uint64
			write := func() {
				v = (v + 7919) % bound // fixed stride over the domain, no RNG in the hot loop
				w.Observe(v)
			}
			read := func() uint64 { return r.Quantile(0.99) }
			return w, write, read, hg.Close, nil
		}},
	}

	var sink uint64
	for _, kc := range kinds {
		for _, shards := range shardCounts {
			for _, batch := range batches {
				for _, instrumented := range []bool{false, true} {
					var tel *approxobj.Telemetry
					if instrumented {
						tel = approxobj.NewTelemetry()
					}
					w, write, read, closeFn, err := kc.build(shards, batch, tel)
					if err != nil {
						return nil, err
					}
					// Warm-up: scratch buffers, first flush.
					for i := 0; i < 64; i++ {
						write()
					}
					sink += read()

					steps0 := w.Steps()
					start := time.Now()
					for i := 0; i < writes; i++ {
						write()
					}
					elapsed := time.Since(start)
					stepsPerOp := float64(w.Steps()-steps0) / float64(writes)
					nsPerOp := float64(elapsed.Nanoseconds()) / float64(writes)

					var m0, m1 runtime.MemStats
					runtime.ReadMemStats(&m0)
					for i := 0; i < reads; i++ {
						sink += read()
					}
					runtime.ReadMemStats(&m1)
					closeFn()
					allocs := float64(m1.Mallocs-m0.Mallocs) / float64(reads)
					// Round to hundredths, like E20r: Mallocs is
					// process-global and must not wobble the gate.
					allocs = float64(int64(allocs*100+0.5)) / 100

					label := "off"
					if instrumented {
						label = "on"
					}
					t.AddRow(kc.kind, shards, batch, label,
						fmt.Sprintf("%.1f", nsPerOp), fmt.Sprintf("%.3f", stepsPerOp), fmt.Sprintf("%.2f", allocs))
					t.AddRecord(Record{
						Params: map[string]string{
							"kind":      kc.kind,
							"shards":    strconv.Itoa(shards),
							"batch":     strconv.Itoa(batch),
							"telemetry": label,
						},
						NsPerOp:       nsPerOp,
						StepsPerOp:    stepsPerOp,
						AllocsPerRead: allocs,
					})
				}
			}
		}
	}
	if sink == ^uint64(0) {
		return nil, fmt.Errorf("bench: impossible sink value")
	}
	return []*Table{t}, nil
}
