package bench

import (
	"fmt"
	"math/rand"

	"approxobj/internal/core"
	"approxobj/internal/maxreg"
	"approxobj/internal/prim"
)

// E8UnboundedMaxReg measures the unbounded max registers: the exact epoch
// construction costs O(log v) steps per operation while the
// k-multiplicative plug-in (the extension the paper sketches at the end of
// Section I-B) costs O(log2 log_k v) — sub-logarithmic in the value range.
func E8UnboundedMaxReg(cfg Config) ([]*Table, error) {
	exps := []uint64{8, 16, 24, 32, 40, 48, 56}
	ops := 4000
	if cfg.Quick {
		exps = []uint64{8, 24, 40}
		ops = 500
	}

	t := &Table{
		ID:    "E8",
		Title: "unbounded max registers: mean steps/op vs value magnitude",
		Note: `Values drawn from [1, 2^e]; 50/50 writes and reads. The exact register
pays ~e steps (epoch register of size 2^e) plus the fixed top register;
the k-multiplicative plug-in pays ~log2(e) — the sub-logarithmic
behaviour of the paper's sketched extension.`,
		Header: []string{"value range", "exact", "k-mult k=2", "k-mult k=8"},
	}

	run := func(mk func(f *prim.Factory) (maxRegOps, error), e uint64) (float64, error) {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		r, err := mk(f)
		if err != nil {
			return 0, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(e)))
		lim := int64(uint64(1) << e)
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 {
				r.Write(p, uint64(rng.Int63n(lim))+1)
			} else {
				r.Read(p)
			}
		}
		return float64(p.Steps()) / float64(ops), nil
	}

	for _, e := range exps {
		exact, err := run(func(f *prim.Factory) (maxRegOps, error) {
			return maxreg.NewUnbounded(f, maxreg.ExactFactory)
		}, e)
		if err != nil {
			return nil, err
		}
		k2, err := run(func(f *prim.Factory) (maxRegOps, error) {
			return core.NewKMultUnboundedMaxReg(f, 2)
		}, e)
		if err != nil {
			return nil, err
		}
		k8, err := run(func(f *prim.Factory) (maxRegOps, error) {
			return core.NewKMultUnboundedMaxReg(f, 8)
		}, e)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("2^%d", e), exact, k2, k8)
	}
	return []*Table{t}, nil
}
