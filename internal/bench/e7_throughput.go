package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// throughput runs gs goroutines of opsPer mixed operations (readFrac reads)
// against per-goroutine op functions and returns million ops/sec.
func throughput(seed int64, gs, opsPer int, readFrac float64, mkOps func(i int) (inc func(), read func())) float64 {
	var wg sync.WaitGroup
	var start, stop time.Time
	startLine := make(chan struct{})
	wg.Add(gs)
	for i := 0; i < gs; i++ {
		inc, read := mkOps(i)
		rng := rand.New(rand.NewSource(seed + int64(i) + 11))
		go func() {
			defer wg.Done()
			<-startLine
			for j := 0; j < opsPer; j++ {
				if rng.Float64() < readFrac {
					read()
				} else {
					inc()
				}
			}
		}()
	}
	start = time.Now()
	close(startLine)
	wg.Wait()
	stop = time.Now()
	total := float64(gs * opsPer)
	return total / stop.Sub(start).Seconds() / 1e6
}

// E7Throughput is the motivation experiment (Section I, [2][4], and the
// scalable-statistics-counter application [10]): on real hardware with real
// goroutines, the relaxed counter's throughput tracks a raw fetch&add and
// leaves the exact linearizable baselines (collect's O(n) reads, a global
// mutex) behind as parallelism grows.
func E7Throughput(cfg Config) ([]*Table, error) {
	maxG := runtime.GOMAXPROCS(0)
	gss := []int{1, 2, 4, 8}
	if maxG > 8 {
		gss = append(gss, maxG)
	}
	opsPer := 400_000
	if cfg.Quick {
		gss = []int{1, 2, 4}
		opsPer = 50_000
	}
	const readFrac = 0.05

	t := &Table{
		ID:    "E7",
		Title: fmt.Sprintf("throughput, Mops/s (95%% inc / 5%% read, GOMAXPROCS=%d)", maxG),
		Note: `Real-goroutine runs. atomic add is the non-linearizable-read hardware
reference; mutex serializes everything; collect pays n-step reads;
Algorithm 1 (k = 16) announces only every t1..t_j increments. Wall-clock
throughput blurs step complexity (GC, scheduler, cache effects — the
reason the paper-faithful experiments E1-E5 count steps instead); on a
single-CPU host all variants serialize and contention gaps are muted.`,
		Header: []string{"goroutines", "atomic add", "mutex", "collect", "mult k=16"},
	}

	for _, gs := range gss {
		// Raw atomic fetch&add.
		var av atomic.Uint64
		atomicRes := throughput(cfg.Seed, gs, opsPer, readFrac, func(int) (func(), func()) {
			return func() { av.Add(1) }, func() { _ = av.Load() }
		})

		// Global mutex counter.
		var mu sync.Mutex
		var mv uint64
		mutexRes := throughput(cfg.Seed, gs, opsPer, readFrac, func(int) (func(), func()) {
			return func() { mu.Lock(); mv++; mu.Unlock() },
				func() { mu.Lock(); _ = mv; mu.Unlock() }
		})

		// Collect counter.
		fc := prim.NewFactory(gs)
		cc, err := counter.NewCollect(fc)
		if err != nil {
			return nil, err
		}
		collectRes := throughput(cfg.Seed, gs, opsPer, readFrac, func(i int) (func(), func()) {
			h := cc.CounterHandle(fc.Proc(i))
			return h.Inc, func() { _ = h.Read() }
		})

		// Algorithm 1, k=16 (valid for n <= 256).
		fm := prim.NewFactory(gs)
		var mc object.Counter
		mc, err = core.NewMultCounter(fm, 16)
		if err != nil {
			return nil, err
		}
		multRes := throughput(cfg.Seed, gs, opsPer, readFrac, func(i int) (func(), func()) {
			h := mc.CounterHandle(fm.Proc(i))
			return h.Inc, func() { _ = h.Read() }
		})

		t.AddRow(gs, atomicRes, mutexRes, collectRes, multRes)
		for _, m := range []struct {
			impl string
			mops float64
		}{{"atomic", atomicRes}, {"mutex", mutexRes}, {"collect", collectRes}, {"mult", multRes}} {
			t.AddRecord(Record{
				Params:  map[string]string{"goroutines": fmt.Sprint(gs), "impl": m.impl},
				NsPerOp: 1e3 / m.mops, // Mops/s -> ns/op
			})
		}
	}
	return []*Table{t}, nil
}
