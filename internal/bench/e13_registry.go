package bench

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"approxobj"
)

// E13Registry is the serving-scenario experiment for the spec/registry
// surface: a registry of named objects (an approximate request counter, an
// exact error counter, an approximate high-water max register) hammered by
// worker goroutines that borrow handles from the per-object pools
// (Acquire/Do, never a slot index), while a monitor goroutine polls
// Registry.Snapshot through the reserved snapshot slot. It reports worker
// throughput and snapshot cost, and verifies every polled value against
// the object's own reported Bounds.
func E13Registry(cfg Config) ([]*Table, error) {
	maxG := runtime.GOMAXPROCS(0)
	workerCounts := []int{1, 2, 4}
	if maxG > 4 {
		workerCounts = append(workerCounts, maxG)
	}
	opsPer := 200_000
	if cfg.Quick {
		workerCounts = []int{1, 2}
		opsPer = 30_000
	}

	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("registry + pooled handles under mixed traffic (GOMAXPROCS=%d)", maxG),
		Note: `Workers drive three named objects through pooled handles while a
monitor polls Registry.Snapshot concurrently. The k-multiplicative
request counter takes 95% of the traffic; the exact error counter 5%;
every worker bumps the high-water register. Snapshot reads go through
the registry's reserved process slot, so they never contend with workers
for pool slots; each polled value is re-checked against the object's
reported Bounds.`,
		Header: []string{"workers", "Mops/s", "ns/op", "snapshots", "ns/snapshot"},
	}

	for _, gs := range workerCounts {
		reg := approxobj.NewRegistry()
		// k must satisfy k >= sqrt(gs+1) (the +1 is the snapshot slot).
		k := sqrtCeil(gs + 1)
		if k < 4 {
			k = 4
		}
		requests, err := reg.Counter("requests",
			approxobj.WithProcs(gs),
			approxobj.WithAccuracy(approxobj.Multiplicative(k)),
			approxobj.WithShards(4),
			approxobj.WithBatch(64),
		)
		if err != nil {
			return nil, err
		}
		errors, err := reg.Counter("errors", approxobj.WithProcs(gs))
		if err != nil {
			return nil, err
		}
		peak, err := reg.MaxRegister("peak-batch",
			approxobj.WithProcs(gs),
			approxobj.WithAccuracy(approxobj.Multiplicative(2)),
		)
		if err != nil {
			return nil, err
		}

		var wg sync.WaitGroup
		stop := make(chan struct{})
		var snapshots uint64
		var snapElapsed time.Duration
		var snapErr error
		var snapWG sync.WaitGroup
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			// Ceiling on the true value of every object: counters total at
			// most gs*opsPer increments, and every max-register write is
			// id*opsPer + j < gs*opsPer.
			ceiling := uint64(gs * opsPer)
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				for _, s := range reg.Snapshot() {
					if !s.Bounds.ContainsRange(0, ceiling, s.Value) {
						snapErr = fmt.Errorf("bench: snapshot of %s saw %d outside envelope %+v for any value in [0, %d]",
							s.Name, s.Value, s.Bounds, ceiling)
						return
					}
				}
				snapElapsed += time.Since(start)
				snapshots++
			}
		}()

		startLine := make(chan struct{})
		wg.Add(gs)
		for w := 0; w < gs; w++ {
			id := w
			go func() {
				defer wg.Done()
				<-startLine
				req, releaseReq := requests.Acquire()
				defer releaseReq()
				errH, releaseErr := errors.Acquire()
				defer releaseErr()
				peak.Do(func(h approxobj.MaxRegisterHandle) {
					for j := 0; j < opsPer; j++ {
						if j%20 == 19 {
							errH.Inc()
						} else {
							req.Inc()
						}
						if j%1024 == 0 {
							h.Write(uint64(id*opsPer + j))
						}
					}
				})
			}()
		}
		start := time.Now()
		close(startLine)
		wg.Wait()
		elapsed := time.Since(start)
		close(stop)
		snapWG.Wait()
		if snapErr != nil {
			return nil, snapErr
		}

		// The monitor may never have been scheduled (observed on 1-CPU
		// hosts at workers=1): force at least one envelope verification,
		// now quiescent.
		ceiling := uint64(gs * opsPer)
		for _, s := range reg.Snapshot() {
			if !s.Bounds.ContainsRange(0, ceiling, s.Value) {
				return nil, fmt.Errorf("bench: quiescent snapshot of %s saw %d outside envelope %+v for any value in [0, %d]",
					s.Name, s.Value, s.Bounds, ceiling)
			}
		}

		// Quiescent check: workers released (and flushed), so the exact
		// error counter must account for every increment.
		wantErrors := uint64(gs * (opsPer / 20))
		var gotErrors uint64
		errors.Do(func(h approxobj.CounterHandle) { gotErrors = h.Read() })
		if gotErrors != wantErrors {
			return nil, fmt.Errorf("bench: exact error counter read %d, want %d", gotErrors, wantErrors)
		}

		totalOps := float64(gs * opsPer)
		nsPerOp := float64(elapsed.Nanoseconds()) / totalOps
		nsPerSnap := 0.0
		if snapshots > 0 {
			nsPerSnap = float64(snapElapsed.Nanoseconds()) / float64(snapshots)
		}
		t.AddRow(gs, totalOps/elapsed.Seconds()/1e6, fmt.Sprintf("%.1f", nsPerOp),
			snapshots, fmt.Sprintf("%.0f", nsPerSnap))
		t.AddRecord(Record{
			Params: map[string]string{
				"workers": strconv.Itoa(gs),
				"k":       strconv.FormatUint(k, 10),
			},
			NsPerOp: nsPerOp,
		})
	}
	return []*Table{t}, nil
}
