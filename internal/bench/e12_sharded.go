package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"approxobj"
)

// shardedRun drives gs goroutines of opsPer mixed operations (readFrac
// reads) against one sharded counter and reports wall-clock ns/op, reads
// per second, and the final accuracy check inputs.
type shardedRun struct {
	nsPerOp   float64
	mopsPerS  float64
	readsPerS float64
}

func runSharded(seed int64, c *approxobj.Counter, gs, opsPer int, readFrac float64) (shardedRun, error) {
	handles := make([]approxobj.CounterHandle, gs)
	for i := range handles {
		handles[i] = c.Handle(i)
	}
	incs := make([]uint64, gs)
	reads := make([]uint64, gs)
	var wg sync.WaitGroup
	startLine := make(chan struct{})
	wg.Add(gs)
	for i := 0; i < gs; i++ {
		h := handles[i]
		rng := rand.New(rand.NewSource(seed + int64(i) + 17))
		go func(i int) {
			defer wg.Done()
			<-startLine
			for j := 0; j < opsPer; j++ {
				if rng.Float64() < readFrac {
					h.Read()
					reads[i]++
				} else {
					h.Inc()
					incs[i]++
				}
			}
		}(i)
	}
	start := time.Now()
	close(startLine)
	wg.Wait()
	elapsed := time.Since(start)

	// Quiescent accuracy check: flush every buffer, then the combined read
	// must be inside the flushed (Buffer = 0) envelope of the true count.
	var total, totalReads uint64
	for i, h := range handles {
		h.(approxobj.BatchedCounterHandle).Flush()
		total += incs[i]
		totalReads += reads[i]
	}
	bounds := c.Bounds()
	bounds.Buffer = 0
	if got := handles[0].Read(); !bounds.Contains(total, got) {
		return shardedRun{}, fmt.Errorf(
			"bench: sharded counter (S=%d B=%d) read %d outside envelope of true count %d (bounds %+v)",
			c.Shards(), c.Batch(), got, total, bounds)
	}
	totalOps := float64(gs * opsPer)
	return shardedRun{
		nsPerOp:   float64(elapsed.Nanoseconds()) / totalOps,
		mopsPerS:  totalOps / elapsed.Seconds() / 1e6,
		readsPerS: float64(totalReads) / elapsed.Seconds(),
	}, nil
}

// E12Sharded is the scaling experiment for the sharded counter runtime,
// driven through the public spec API (WithShards x WithBatch over a
// Multiplicative counter): cores x shards x batch sweep of wall-clock
// throughput,
// 95% inc / 5% read. Shards split increment traffic across independent
// Algorithm 1 instances without widening the k-multiplicative envelope;
// batching removes shared-memory work from the Inc hot path entirely at
// the cost of a bounded additive slack (B-1 increments per handle). Every
// cell also re-verifies the combined accuracy envelope at quiescence.
func E12Sharded(cfg Config) ([]*Table, error) {
	maxG := runtime.GOMAXPROCS(0)
	gss := []int{1, 2, 4}
	if maxG > 4 {
		gss = append(gss, maxG)
	}
	shardCounts := []int{1, 2, 4, 8}
	batches := []int{1, 64}
	opsPer := 200_000
	if cfg.Quick {
		gss = []int{1, 2}
		shardCounts = []int{1, 4}
		opsPer = 30_000
	}
	const readFrac = 0.05
	// k must satisfy the mult backend's k >= sqrt(n) per shard for the
	// largest goroutine count in the sweep (n = gs).
	k := uint64(16)
	if s := sqrtCeil(maxG); s > k {
		k = s
	}

	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("sharded counter scaling, 95%% inc / 5%% read (k=%d, GOMAXPROCS=%d)", k, maxG),
		Note: `Each row is one (goroutines, shards, batch) cell over independent
Algorithm 1 shards; shards=1 batch=1 is the unsharded baseline. Sharding
splits increment traffic across disjoint base objects (sum of S k-mult
shards stays k-mult); batch=B keeps B-1 of every B Incs purely local. On
a single-CPU host the shard columns serialize and gaps are muted (as in
E7); batching still shows, since it removes work rather than contention.`,
		Header: []string{"goroutines", "shards", "batch", "Mops/s", "ns/op", "reads/s"},
	}

	for _, gs := range gss {
		for _, s := range shardCounts {
			for _, b := range batches {
				c, err := approxobj.NewCounter(
					approxobj.WithProcs(gs),
					approxobj.WithAccuracy(approxobj.Multiplicative(k)),
					approxobj.WithShards(s),
					approxobj.WithBatch(b),
				)
				if err != nil {
					return nil, err
				}
				res, err := runSharded(cfg.Seed, c, gs, opsPer, readFrac)
				if err != nil {
					return nil, err
				}
				t.AddRow(gs, s, b, res.mopsPerS, fmt.Sprintf("%.1f", res.nsPerOp), fmt.Sprintf("%.0f", res.readsPerS))
				t.AddRecord(Record{
					Params: map[string]string{
						"goroutines": strconv.Itoa(gs),
						"shards":     strconv.Itoa(s),
						"batch":      strconv.Itoa(b),
						"k":          strconv.FormatUint(k, 10),
					},
					NsPerOp:  res.nsPerOp,
					Envelope: EnvelopeOf(c.Bounds()),
				})
			}
		}
	}
	return []*Table{t}, nil
}
