package bench

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"approxobj"
)

// E17ReadPlane measures the read-combiner tier (WithReadCache): the PR 6
// claim is that a cached read is O(1) in the shard count S — an atomic
// load of the pre-combined cell — where an uncached read folds all S
// shards. Two sweeps:
//
//   - E17: every object kind x S in {1, 4, 16} x {uncached, cached},
//     read-only after a populate phase. Uncached read cost grows with S;
//     cached cost must stay flat (the combiner goroutine pays the fold).
//   - E17b: a counter under mixed traffic with the reader:writer
//     operation ratio swept from 1:64 (write-dominated) to 64:1
//     (read-dominated), cached vs uncached, on a fixed S = 4. The cache
//     buys the most where reads dominate; write-heavy mixes bound the
//     overhead of carrying the combiner.
//
// Each cached cell re-verifies the convergence contract at quiescence:
// once the staleness window has passed and writers have flushed, a
// cached read must land inside the flushed envelope of the true value.
func E17ReadPlane(cfg Config) ([]*Table, error) {
	shardCounts := []int{1, 4, 16}
	reads := 200_000
	writes := 20_000
	if cfg.Quick {
		reads = 20_000
		writes = 4_000
	}
	const stale = 5 * time.Millisecond

	t := &Table{
		ID:    "E17",
		Title: "read plane: per-kind read cost, cached vs uncached, across shard counts",
		Note: `Each row is one (kind, shards, cached) cell: a populate phase through
handle 0, then a timed read-only loop through handle 1 (Read for the
counter and max register, Scan for the snapshot, p99 Quantile for the
histogram). Uncached reads fold all S shards, so their ns/op grows
with S; cached reads (WithReadCache, maxStale 5ms) load the combiner's
pre-combined cell, so their ns/op must stay flat across S. The Stale
column of the recorded envelope is the configured staleness window:
cached reads serve a value whose combined read began at most that long
before the read, which is the accuracy price of the O(1) read.`,
		Header: []string{"kind", "shards", "cached", "read ns/op"},
	}

	type kindCase struct {
		kind string
		// build returns a populate function, the timed read function,
		// the object's bounds, a quiescent convergence check (cached
		// cells only; called after the staleness window has passed), and
		// a close function.
		build func(s int, cached bool) (populate func(), read func() uint64, bounds approxobj.Bounds, converge func() error, closeFn func(), err error)
	}

	cachedOpt := func(cached bool) []approxobj.Option {
		if cached {
			return []approxobj.Option{approxobj.WithReadCache(stale)}
		}
		return nil
	}

	kinds := []kindCase{
		{kind: "counter", build: func(s int, cached bool) (func(), func() uint64, approxobj.Bounds, func() error, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithShards(s),
			}, cachedOpt(cached)...)
			c, err := approxobj.NewCounter(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := c.Handle(0), c.Handle(1)
			populate := func() {
				for i := 0; i < writes; i++ {
					w.Inc()
				}
			}
			converge := func() error {
				flushed := c.Bounds()
				flushed.Buffer = 0
				if x := r.Read(); !flushed.Contains(uint64(writes), x) {
					return fmt.Errorf("quiescent cached counter read %d outside flushed envelope %+v of %d", x, flushed, writes)
				}
				return nil
			}
			return populate, r.Read, c.Bounds(), converge, c.Close, nil
		}},
		{kind: "max-register", build: func(s int, cached bool) (func(), func() uint64, approxobj.Bounds, func() error, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithBound(1 << 30),
				approxobj.WithShards(s),
			}, cachedOpt(cached)...)
			m, err := approxobj.NewMaxRegister(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := m.Handle(0), m.Handle(1)
			populate := func() {
				for i := 0; i < writes; i++ {
					w.Write(uint64(i))
				}
			}
			converge := func() error {
				if x := r.Read(); x != uint64(writes-1) {
					return fmt.Errorf("quiescent cached max-register read %d, want %d", x, writes-1)
				}
				return nil
			}
			return populate, r.Read, m.Bounds(), converge, m.Close, nil
		}},
		{kind: "snapshot", build: func(s int, cached bool) (func(), func() uint64, approxobj.Bounds, func() error, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithShards(s),
			}, cachedOpt(cached)...)
			sn, err := approxobj.NewSnapshot(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := sn.Handle(0), sn.Handle(1)
			populate := func() {
				for i := 1; i <= writes; i++ {
					w.Update(uint64(i))
				}
			}
			read := func() uint64 { return r.Scan()[0] }
			converge := func() error {
				if x := read(); x != uint64(writes) {
					return fmt.Errorf("quiescent cached snapshot component %d, want %d", x, writes)
				}
				return nil
			}
			return populate, read, sn.Bounds(), converge, sn.Close, nil
		}},
		{kind: "histogram", build: func(s int, cached bool) (func(), func() uint64, approxobj.Bounds, func() error, func(), error) {
			const bound = uint64(1) << 16
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithBound(bound),
				approxobj.WithShards(s),
			}, cachedOpt(cached)...)
			hg, err := approxobj.NewHistogram(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, nil, err
			}
			w, r := hg.Handle(0), hg.Handle(1)
			populate := func() {
				for i := 0; i < writes; i++ {
					w.Observe(uint64(i) % bound)
				}
			}
			read := func() uint64 { return r.Quantile(0.99) }
			converge := func() error {
				if c := r.Count(); c != uint64(writes) {
					return fmt.Errorf("quiescent cached histogram count %d, want exactly %d", c, writes)
				}
				return nil
			}
			return populate, read, hg.Bounds(), converge, hg.Close, nil
		}},
	}

	var sink uint64
	for _, kc := range kinds {
		for _, s := range shardCounts {
			for _, cached := range []bool{false, true} {
				populate, read, bounds, converge, closeFn, err := kc.build(s, cached)
				if err != nil {
					return nil, err
				}
				populate()
				read() // warm the cache cell so the loop measures the steady state
				start := time.Now()
				for i := 0; i < reads; i++ {
					sink += read()
				}
				elapsed := time.Since(start)
				if cached {
					time.Sleep(2 * stale) // cell expires; the next read refreshes inline
					if err := converge(); err != nil {
						closeFn()
						return nil, fmt.Errorf("bench: E17 %s S=%d: %w", kc.kind, s, err)
					}
				}
				closeFn()
				label := "off"
				if cached {
					label = "on"
				}
				nsPerOp := float64(elapsed.Nanoseconds()) / float64(reads)
				t.AddRow(kc.kind, s, label, fmt.Sprintf("%.1f", nsPerOp))
				t.AddRecord(Record{
					Params: map[string]string{
						"kind":   kc.kind,
						"shards": strconv.Itoa(s),
						"cached": label,
					},
					NsPerOp:  nsPerOp,
					Envelope: EnvelopeOf(bounds),
				})
			}
		}
	}
	if sink == ^uint64(0) {
		return nil, fmt.Errorf("bench: impossible sink value")
	}

	t2, err := e17RatioSweep(cfg, stale)
	if err != nil {
		return nil, err
	}
	return []*Table{t, t2}, nil
}

// e17RatioSweep is the E17b table: a Multiplicative(3) counter on S = 4
// shards under mixed traffic from 4 goroutines, with the per-operation
// read probability swept so the expected reader:writer operation ratio
// runs from 1:64 to 64:1, cached vs uncached.
func e17RatioSweep(cfg Config, stale time.Duration) (*Table, error) {
	const gs = 4
	const shards = 4
	opsPer := 60_000
	if cfg.Quick {
		opsPer = 8_000
	}
	ratios := []struct{ r, w int }{
		{1, 64}, {1, 16}, {1, 4}, {1, 1}, {4, 1}, {16, 1}, {64, 1},
	}

	t := &Table{
		ID:    "E17b",
		Title: fmt.Sprintf("read plane: counter ratio sweep, %d goroutines, S=%d", gs, shards),
		Note: `Each row drives the same mixed workload (per-op read probability
r/(r+w)) against a Multiplicative(3) counter with and without
WithReadCache. The cache converts every read into an O(1) cell load at
the price of the staleness term, so its advantage grows toward the
read-dominated end of the sweep; the write-dominated end bounds the
cost of carrying the combiner goroutine when reads are rare.`,
		Header: []string{"reads:writes", "cached", "Mops/s", "ns/op"},
	}

	for _, ratio := range ratios {
		p := float64(ratio.r) / float64(ratio.r+ratio.w)
		for _, cached := range []bool{false, true} {
			opts := []approxobj.Option{
				approxobj.WithProcs(gs),
				approxobj.WithAccuracy(approxobj.Multiplicative(3)),
				approxobj.WithShards(shards),
			}
			if cached {
				opts = append(opts, approxobj.WithReadCache(stale))
			}
			c, err := approxobj.NewCounter(opts...)
			if err != nil {
				return nil, err
			}
			var wg sync.WaitGroup
			startLine := make(chan struct{})
			wg.Add(gs)
			for i := 0; i < gs; i++ {
				h := c.Handle(i)
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*131 + 17))
				go func() {
					defer wg.Done()
					<-startLine
					for j := 0; j < opsPer; j++ {
						if rng.Float64() < p {
							h.Read()
						} else {
							h.Inc()
						}
					}
				}()
			}
			start := time.Now()
			close(startLine)
			wg.Wait()
			elapsed := time.Since(start)
			c.Close()

			label := "off"
			if cached {
				label = "on"
			}
			totalOps := float64(gs * opsPer)
			nsPerOp := float64(elapsed.Nanoseconds()) / totalOps
			name := fmt.Sprintf("%d:%d", ratio.r, ratio.w)
			t.AddRow(name, label, totalOps/elapsed.Seconds()/1e6, fmt.Sprintf("%.1f", nsPerOp))
			t.AddRecord(Record{
				Params: map[string]string{
					"ratio":  name,
					"cached": label,
				},
				NsPerOp:  nsPerOp,
				Envelope: EnvelopeOf(c.Bounds()),
			})
		}
	}
	return t, nil
}
