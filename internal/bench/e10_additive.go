package bench

import (
	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// E10Additive contrasts the two relaxations the paper discusses (Section
// I-A): k-additive accuracy (Aspnes et al. [8], lower bound
// Omega(min(n-1, log m - log k)), no matching upper bound known) versus
// k-multiplicative accuracy (this paper). The additive counter's batched
// collect cuts increment cost by the batch factor but keeps Theta(n)
// reads, while the multiplicative counter is O(1) amortized end to end —
// the asymmetry the paper's introduction motivates.
func E10Additive(cfg Config) ([]*Table, error) {
	type cell struct {
		n int
		k uint64
	}
	cells := []cell{
		{16, 16}, {16, 64}, {16, 256},
		{64, 64}, {64, 256}, {64, 1024},
	}
	totalOps := 200_000
	if cfg.Quick {
		cells = cells[:3]
		totalOps = 20_000
	}
	const readFrac = 0.1

	t := &Table{
		ID:    "E10",
		Title: "k-additive vs k-multiplicative counters, amortized steps/op (10% reads)",
		Note: `The additive counter batches floor(k/n) increments per announcement but
readers still collect n registers; the multiplicative counter (k' =
ceil(sqrt(n)) here) is constant for both operations. Exact collect shown
for reference.`,
		Header: []string{"n", "k (additive)", "additive", "mult k'=sqrt(n)", "collect (exact)"},
	}
	for _, c := range cells {
		add, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return counter.NewAdditive(f, c.k)
		}, c.n, totalOps, readFrac, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		mult, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return core.NewMultCounter(f, sqrtCeil(c.n))
		}, c.n, totalOps, readFrac, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		coll, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return counter.NewCollect(f)
		}, c.n, totalOps, readFrac, cfg.Seed+5)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.n, c.k, add, mult, coll)
	}
	return []*Table{t}, nil
}
