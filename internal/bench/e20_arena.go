package bench

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"approxobj"
)

// E20Arena measures the arena-backed plane (PR 9): base objects of one
// shard live in a single cache-line-padded arena, and every read path
// reuses handle-local scratch instead of allocating. Two sweeps:
//
//   - E20: writer throughput for a Multiplicative(4) counter across
//     goroutines g in {1, 2, 4} x shards S in {1, 4}, unbuffered
//     (batch 1), so every Inc hits the arena. The ns/op trajectory
//     tracks the arena's false-sharing behaviour across PRs; shard
//     scaling itself is machine-dependent (meaningless on one core), so
//     only the per-cell timings are recorded, not a scaling claim.
//   - E20r: heap allocations per read for every kind, cached and
//     uncached, measured as a Mallocs delta over a read loop. Unlike
//     the timings this is machine-independent and gated exactly by
//     cmd/approxbench's -compare: cached scalar reads must report 0
//     (one atomic load, no scratch at all), and no cell may allocate
//     more per read than the previous trajectory file records.
func E20Arena(cfg Config) ([]*Table, error) {
	t, err := e20WriterSweep(cfg)
	if err != nil {
		return nil, err
	}
	t2, err := e20AllocsPerRead(cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{t, t2}, nil
}

// e20WriterSweep is the E20 table: concurrent unbuffered increments
// against the arena across goroutine and shard counts.
func e20WriterSweep(cfg Config) (*Table, error) {
	goroutines := []int{1, 2, 4}
	shardCounts := []int{1, 4}
	opsPer := 200_000
	if cfg.Quick {
		opsPer = 20_000
	}

	t := &Table{
		ID:    "E20",
		Title: "arena plane: writer throughput, goroutines x shards, unbuffered Multiplicative(4) counter",
		Note: `Each row drives g goroutines of back-to-back Incs (batch 1, so every
increment reaches the shared arena) against a Multiplicative(4) counter
on S shards. Shard i mod S receives handle i's traffic; with the
128-byte arena stride no two slots share a cache line, so contention is
limited to the counter's own synchronization. The ns/op cells are
machine-dependent (shard scaling needs real cores); the recorded
trajectory tracks them for drift, not as a scaling proof.`,
		Header: []string{"goroutines", "shards", "Mops/s", "ns/op"},
	}

	for _, g := range goroutines {
		for _, s := range shardCounts {
			c, err := approxobj.NewCounter(
				approxobj.WithProcs(g),
				approxobj.WithAccuracy(approxobj.Multiplicative(4)),
				approxobj.WithShards(s),
			)
			if err != nil {
				return nil, err
			}
			var wg sync.WaitGroup
			startLine := make(chan struct{})
			wg.Add(g)
			for i := 0; i < g; i++ {
				h := c.Handle(i)
				go func() {
					defer wg.Done()
					<-startLine
					for j := 0; j < opsPer; j++ {
						h.Inc()
					}
				}()
			}
			start := time.Now()
			close(startLine)
			wg.Wait()
			elapsed := time.Since(start)
			c.Close()

			totalOps := float64(g * opsPer)
			nsPerOp := float64(elapsed.Nanoseconds()) / totalOps
			t.AddRow(g, s, totalOps/elapsed.Seconds()/1e6, fmt.Sprintf("%.1f", nsPerOp))
			t.AddRecord(Record{
				Params: map[string]string{
					"goroutines": strconv.Itoa(g),
					"shards":     strconv.Itoa(s),
				},
				NsPerOp:  nsPerOp,
				Envelope: EnvelopeOf(c.Bounds()),
			})
		}
	}
	return t, nil
}

// e20AllocsPerRead is the E20r table: heap allocations per read for
// every kind, cached and uncached. The cached cells use an effectively
// infinite staleness window so the measurement loop sees only the
// steady-state fast path (no combiner refresh lands mid-loop); the
// uncached cells fold the shards into handle scratch on every read.
func e20AllocsPerRead(cfg Config) (*Table, error) {
	const shards = 4
	reads := 50_000
	writes := 10_000
	if cfg.Quick {
		reads = 5_000
		writes = 2_000
	}

	t := &Table{
		ID:    "E20r",
		Title: fmt.Sprintf("arena plane: heap allocations per read, every kind, cached vs uncached, S=%d", shards),
		Note: `Each row populates one object through handle 0, warms handle 1's read
scratch, then measures runtime.MemStats.Mallocs across a read loop.
The zero-allocation read path is a correctness property of this
repository, not a timing: cached scalar reads are one atomic load (0
allocs), uncached scalar reads fold the shards in registers (0
allocs), and vector kinds reuse handle-local buffers (0 steady-state
allocs; the histogram's Quantile answers from the same reused read).
-compare fails a run whose allocs_per_read exceeds the trajectory
file's, like an envelope widening.`,
		Header: []string{"kind", "cached", "allocs/read"},
	}

	type kindCase struct {
		kind  string
		build func(cached bool) (populate func(), read func() uint64, bounds approxobj.Bounds, closeFn func(), err error)
	}

	// An hour of staleness: the cell never expires mid-measurement, so
	// the loop stays on the cached fast path (one refresh at warm-up).
	cachedOpt := func(cached bool) []approxobj.Option {
		if cached {
			return []approxobj.Option{approxobj.WithReadCache(time.Hour)}
		}
		return nil
	}

	kinds := []kindCase{
		{kind: "counter", build: func(cached bool) (func(), func() uint64, approxobj.Bounds, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithShards(shards),
			}, cachedOpt(cached)...)
			c, err := approxobj.NewCounter(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, err
			}
			w, r := c.Handle(0), c.Handle(1)
			populate := func() {
				for i := 0; i < writes; i++ {
					w.Inc()
				}
			}
			return populate, r.Read, c.Bounds(), c.Close, nil
		}},
		{kind: "max-register", build: func(cached bool) (func(), func() uint64, approxobj.Bounds, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithBound(1 << 30),
				approxobj.WithShards(shards),
			}, cachedOpt(cached)...)
			m, err := approxobj.NewMaxRegister(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, err
			}
			w, r := m.Handle(0), m.Handle(1)
			populate := func() {
				for i := 0; i < writes; i++ {
					w.Write(uint64(i))
				}
			}
			return populate, r.Read, m.Bounds(), m.Close, nil
		}},
		{kind: "snapshot", build: func(cached bool) (func(), func() uint64, approxobj.Bounds, func(), error) {
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithShards(shards),
			}, cachedOpt(cached)...)
			sn, err := approxobj.NewSnapshot(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, err
			}
			w, r := sn.Handle(0), sn.Handle(1)
			populate := func() {
				for i := 1; i <= writes; i++ {
					w.Update(uint64(i))
				}
			}
			var buf []uint64
			read := func() uint64 {
				buf = r.ScanInto(buf)
				return buf[0]
			}
			return populate, read, sn.Bounds(), sn.Close, nil
		}},
		{kind: "histogram", build: func(cached bool) (func(), func() uint64, approxobj.Bounds, func(), error) {
			const bound = uint64(1) << 16
			opts := append([]approxobj.Option{
				approxobj.WithProcs(2),
				approxobj.WithAccuracy(approxobj.Multiplicative(2)),
				approxobj.WithBound(bound),
				approxobj.WithShards(shards),
			}, cachedOpt(cached)...)
			hg, err := approxobj.NewHistogram(opts...)
			if err != nil {
				return nil, nil, approxobj.Bounds{}, nil, err
			}
			w, r := hg.Handle(0), hg.Handle(1)
			populate := func() {
				for i := 0; i < writes; i++ {
					w.Observe(uint64(i) % bound)
				}
			}
			read := func() uint64 { return r.Quantile(0.99) }
			return populate, read, hg.Bounds(), hg.Close, nil
		}},
	}

	var sink uint64
	for _, kc := range kinds {
		for _, cached := range []bool{false, true} {
			populate, read, bounds, closeFn, err := kc.build(cached)
			if err != nil {
				return nil, err
			}
			populate()
			// Warm-up: the first reads allocate the handle's scratch
			// buffers and (when cached) the combined cell; steady state
			// starts after.
			for i := 0; i < 16; i++ {
				sink += read()
			}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			for i := 0; i < reads; i++ {
				sink += read()
			}
			runtime.ReadMemStats(&m1)
			closeFn()

			allocs := float64(m1.Mallocs-m0.Mallocs) / float64(reads)
			// Round to hundredths: Mallocs is process-global, so an
			// unrelated stray allocation (a GC assist, a background
			// tick) must not wobble the machine-independent gate.
			allocs = float64(int64(allocs*100+0.5)) / 100

			label := "off"
			if cached {
				label = "on"
			}
			t.AddRow(kc.kind, label, fmt.Sprintf("%.2f", allocs))
			t.AddRecord(Record{
				Params: map[string]string{
					"kind":   kc.kind,
					"cached": label,
				},
				AllocsPerRead: allocs,
				Envelope:      EnvelopeOf(bounds),
			})
		}
	}
	if sink == ^uint64(0) {
		return nil, fmt.Errorf("bench: impossible sink value")
	}
	return t, nil
}
