package bench

import (
	"fmt"
	"strings"

	"approxobj/internal/core"
	"approxobj/internal/prim"
)

// F1ReadCases reproduces Figure 1: the switch configurations at which a
// CounterRead's scan stops, which drive the u_max analysis of Claim III.6.
// A single process fills switches in index order (Lemma III.2); stopping
// its increments at chosen points realizes each of the figure's cases:
//
//	a)   the scan read switch_(qk) = 1 and switch_(qk+1) = 0: the first
//	     switch of interval q+1 is clear (p = 0);
//	b.1) the scan read switch_(qk+1) = 1 and switch_((q+1)k) = 0 with the
//	     middle of interval q+1 still clear (p = 1);
//	b.2) as b.1 but the middle switches are already set — the reader
//	     cannot distinguish b.1 from b.2, which is why u_max charges p(k-1)
//	     switches of interval q+1.
func F1ReadCases(cfg Config) ([]*Table, error) {
	const k = 3
	type cse struct {
		name string
		incs int // increments performed by the filler process
		desc string
	}
	// With n=1 (thresholds 1, k, k, k^2, ...): switch_0 after 1 inc,
	// switch_1 after 1+k, switch_2 after 1+2k, switch_3 after 1+3k incs.
	cases := []cse{
		{name: "b.1", incs: 1 + 3, desc: "switch_1 set, middle of interval 1 clear"},
		{name: "b.2", incs: 1 + 2*3, desc: "switch_1, switch_2 set, last of interval 1 clear"},
		{name: "a", incs: 1 + 3*3, desc: "interval 1 full, first of interval 2 clear"},
	}

	t := &Table{
		ID:    "F1",
		Title: fmt.Sprintf("Figure 1 — scan stop configurations (k=%d, single incrementer)", k),
		Note: `switches column shows switch_0 | interval 1 | interval 2 as the reader
could observe them; * marks the switches the scan actually reads (first
and last of each interval). (p,q) is the decomposition at the stop, and
x = ReturnValue(p,q) the response. b.1 and b.2 return the same response —
the reader cannot tell them apart.`,
		Header: []string{"case", "incs", "switches 0|1..3|4..6", "(p,q)", "response", "description"},
	}

	for _, c := range cases {
		f := prim.NewFactory(1)
		ctr, err := core.NewMultCounter(f, k)
		if err != nil {
			return nil, err
		}
		h := ctr.Handle(f.Proc(0))
		for i := 0; i < c.incs; i++ {
			h.Inc()
		}
		reader := ctr.Handle(f.Proc(0))
		x := reader.Read()

		states := make([]string, 2*int(k)+1)
		for i := range states {
			s := fmt.Sprintf("%d", ctr.SwitchState(uint64(i)))
			if i == 0 || i%int(k) == 0 || i%int(k) == 1 {
				s += "*"
			} else {
				s += " "
			}
			states[i] = s
		}
		switches := states[0] + " | " + strings.Join(states[1:int(k)+1], " ") + " | " + strings.Join(states[int(k)+1:], " ")
		p, q := reader.ScanStop()
		t.AddRow(c.name, c.incs, switches, fmt.Sprintf("(%d,%d)", p, q), x, c.desc)
	}
	return []*Table{t}, nil
}
