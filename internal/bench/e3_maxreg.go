package bench

import (
	"fmt"
	"math/rand"

	"approxobj/internal/core"
	"approxobj/internal/maxreg"
	"approxobj/internal/prim"
)

// maxRegOps is a probe interface implemented by both max registers under
// instrumentation.
type maxRegOps interface {
	Write(p *prim.Proc, v uint64)
	Read(p *prim.Proc) uint64
}

// worstCaseSteps drives a write/read workload through the register and
// returns the maximum steps observed for any single operation.
func worstCaseSteps(r maxRegOps, p *prim.Proc, m uint64, ops int, seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	var worst uint64
	measure := func(f func()) {
		before := p.Steps()
		f()
		if d := p.Steps() - before; d > worst {
			worst = d
		}
	}
	// Ascending writes force the deepest paths; random reads interleave.
	for i := 0; i < ops; i++ {
		v := m / uint64(ops) * uint64(i)
		if v >= m {
			v = m - 1
		}
		measure(func() { r.Write(p, v) })
		if rng.Intn(2) == 0 {
			measure(func() { r.Read(p) })
		}
	}
	measure(func() { r.Write(p, m-1) }) // the full-depth write
	measure(func() { r.Read(p) })
	return worst
}

// E3MaxRegWorstCase reproduces Theorem IV.2 against the exact baseline: the
// worst-case step complexity of the k-multiplicative m-bounded max register
// is Theta(log2 log_k m) versus Theta(log2 m) exact — the exponential gap
// the paper proves matching bounds for (Theorem V.2).
func E3MaxRegWorstCase(cfg Config) ([]*Table, error) {
	exps := []uint64{8, 16, 24, 32, 48, 60}
	ks := []uint64{2, 4, 16}
	ops := 400
	if cfg.Quick {
		exps = []uint64{8, 16, 32}
		ks = []uint64{2, 4}
		ops = 100
	}

	t := &Table{
		ID:    "E3",
		Title: "worst-case steps per operation, exact vs k-multiplicative bounded max register",
		Note: `Theorem IV.2: O(min(log2 log_k m, n)) for Algorithm 2 vs Theta(log2 m)
for the exact register of [8]. "pred" columns are the tree depths
ceil(log2 m) and ceil(log2(floor(log_k(m-1))+2)).`,
		Header: func() []string {
			h := []string{"m", "exact pred", "exact meas"}
			for _, k := range ks {
				h = append(h, fmt.Sprintf("k=%d pred", k), fmt.Sprintf("k=%d meas", k))
			}
			return h
		}(),
	}

	for _, e := range exps {
		m := uint64(1) << e
		row := make([]any, 0, 3+2*len(ks))
		row = append(row, fmt.Sprintf("2^%d", e))

		f := prim.NewFactory(1)
		p := f.Proc(0)
		exact, err := maxreg.NewBounded(f, m)
		if err != nil {
			return nil, err
		}
		row = append(row, exact.Depth(), worstCaseSteps(exact, p, m, ops, cfg.Seed+3))

		for _, k := range ks {
			fk := prim.NewFactory(1)
			pk := fk.Proc(0)
			km, err := core.NewKMultMaxReg(fk, m, k)
			if err != nil {
				return nil, err
			}
			row = append(row, km.InnerDepth(), worstCaseSteps(km, pk, m, ops, cfg.Seed+3))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}
