package bench

import (
	"fmt"
	"math"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/lowerbound"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// E4PerturbMaxReg executes the Lemma V.1 perturbing-execution construction
// against the bounded max registers: the achieved rounds L track the
// perturbation bound Theta(log_k m) (m-1 for exact registers), and the
// reader's final solo run touches at least log2(L) distinct base objects,
// the mechanism behind Theorem V.2's Omega(min(log2 log_k m, n)).
func E4PerturbMaxReg(cfg Config) ([]*Table, error) {
	type cse struct {
		name string
		k    uint64
		exps []uint64 // m = 2^exp
	}
	cases := []cse{
		{name: "exact (k=1)", k: 1, exps: []uint64{4, 6, 8}},
		{name: "k-mult k=2", k: 2, exps: []uint64{8, 16, 30, 44}},
		{name: "k-mult k=4", k: 4, exps: []uint64{8, 16, 30, 44}},
	}
	if cfg.Quick {
		cases = []cse{
			{name: "exact (k=1)", k: 1, exps: []uint64{4, 6}},
			{name: "k-mult k=2", k: 2, exps: []uint64{8, 16}},
		}
	}

	t := &Table{
		ID:    "E4",
		Title: "perturbing executions against bounded max registers (Lemma V.1, Thm V.2)",
		Note: `L = perturbation rounds achieved before the value bound is exhausted;
the reader's final solo run must access >= log2(L) distinct base objects
([5, Theorem 1]). Exact registers perturb once per value (L = m-1);
k-multiplicative ones only Theta(log_k m) times — the relaxation is
exactly what shrinks the lower bound.`,
		Header: []string{"register", "m", "L", "pred L", "reader steps", "distinct objs", "log2(L)"},
	}
	for _, c := range cases {
		for _, e := range c.exps {
			m := uint64(1) << e
			var mk func(f *prim.Factory) (object.MaxReg, error)
			var predL string
			if c.k == 1 {
				mk = func(f *prim.Factory) (object.MaxReg, error) { return maxreg.NewBounded(f, m) }
				predL = fmt.Sprintf("%d", m-1)
			} else {
				k := c.k
				mk = func(f *prim.Factory) (object.MaxReg, error) { return core.NewKMultMaxReg(f, m, k) }
				// v_r ~ k^(2r): L ~ log(m) / (2 log k).
				predL = fmt.Sprintf("~%d", int(float64(e)/(2*math.Log2(float64(k))))+1)
			}
			n := int(m) + 2
			if c.k > 1 {
				n = 64
			}
			res, err := lowerbound.PerturbMaxReg(mk, n, m, c.k, 1_000_000)
			if err != nil {
				return nil, err
			}
			if res.Failed {
				return nil, fmt.Errorf("bench: perturbation failed for %s m=2^%d after %d rounds", c.name, e, res.Rounds)
			}
			t.AddRow(c.name, fmt.Sprintf("2^%d", e), res.Rounds, predL,
				res.ReaderSteps, res.ReaderDistinctObjects,
				fmt.Sprintf("%.1f", math.Log2(float64(res.Rounds))))
		}
	}
	return []*Table{t}, nil
}

// E5PerturbCounter is the counter analogue (Lemma V.3, Theorem V.4): the
// m-bounded k-multiplicative counter is Theta(log_k m)-perturbable, while
// an exact counter perturbs every round until the process supply saturates
// (the unbounded case falls back to the Omega(n) of Jayanti-Tan-Toueg).
func E5PerturbCounter(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "perturbing executions against counters (Lemma V.3, Thm V.4)",
		Note: `Exact collect counters perturb once per round until all n-1 perturbers
hold pending events (saturation = the Omega(n) regime of [6]). Algorithm 1
under the I_r = (k^2-1)*sum + r schedule exhausts an m-increment budget
after Theta(log_k m) rounds.`,
		Header: []string{"counter", "m (incs)", "n", "L", "stop", "reader steps", "distinct objs", "log2(L)"},
	}

	type cse struct {
		name string
		k    uint64
		exps []uint64
		n    int
		mk   func(k uint64) func(f *prim.Factory) (object.Counter, error)
	}
	collect := func(uint64) func(f *prim.Factory) (object.Counter, error) {
		return func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) }
	}
	mult := func(k uint64) func(f *prim.Factory) (object.Counter, error) {
		return func(f *prim.Factory) (object.Counter, error) {
			return core.NewMultCounter(f, k, core.Unchecked())
		}
	}
	cases := []cse{
		{name: "collect (exact)", k: 1, exps: []uint64{16}, n: 16, mk: collect},
		{name: "collect (exact)", k: 1, exps: []uint64{16}, n: 48, mk: collect},
		{name: "mult k=2", k: 2, exps: []uint64{8, 12, 16, 20}, n: 32, mk: mult},
		{name: "mult k=3", k: 3, exps: []uint64{8, 12, 16, 20}, n: 32, mk: mult},
	}
	if cfg.Quick {
		cases = []cse{
			{name: "collect (exact)", k: 1, exps: []uint64{10}, n: 12, mk: collect},
			{name: "mult k=2", k: 2, exps: []uint64{8, 12}, n: 24, mk: mult},
		}
	}
	for _, c := range cases {
		for _, e := range c.exps {
			m := uint64(1) << e
			res, err := lowerbound.PerturbCounter(c.mk(c.k), c.n, m, c.k, 40_000_000)
			if err != nil {
				return nil, err
			}
			if res.Failed {
				return nil, fmt.Errorf("bench: counter perturbation failed for %s m=2^%d after %d rounds", c.name, e, res.Rounds)
			}
			stop := "exhausted"
			if res.Saturated {
				stop = "saturated (n-1)"
			}
			t.AddRow(c.name, fmt.Sprintf("2^%d", e), c.n, res.Rounds, stop,
				res.ReaderSteps, res.ReaderDistinctObjects,
				fmt.Sprintf("%.1f", math.Log2(float64(res.Rounds))))
		}
	}
	return []*Table{t}, nil
}
