package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"approxobj"
)

// E15ShardedSnapshot is the scaling experiment for the snapshot side of
// the backend plane, driven through the public spec API (WithShards x
// WithBatch over the exact single-writer snapshot): goroutines x shards
// x batch sweep of wall-clock throughput, 95% update / 5% scan over
// slowly-rising per-component sequences. Sharding splits each scan into
// S smaller snapshots merged per component (the merge widens nothing —
// every component lives in exactly one shard), and the batch parameter
// is the component-elision window: updates within B-1 above a handle's
// last flushed component value never touch shared memory, which on
// slowly-rising sequences elides almost every update. Every cell
// re-verifies the per-component accuracy envelope at quiescence after
// flushing.
func E15ShardedSnapshot(cfg Config) ([]*Table, error) {
	maxG := runtime.GOMAXPROCS(0)
	gss := []int{1, 2, 4}
	if maxG > 4 {
		gss = append(gss, maxG)
	}
	shardCounts := []int{1, 2, 4}
	batches := []int{1, 64}
	opsPer := 30_000
	if cfg.Quick {
		gss = []int{1, 2}
		shardCounts = []int{1, 4}
		opsPer = 4_000
	}
	const scanFrac = 0.05

	t := &Table{
		ID:    "E15",
		Title: fmt.Sprintf("sharded snapshot scaling, 95%% update / 5%% scan (GOMAXPROCS=%d)", maxG),
		Note: `Each row is one (goroutines, shards, batch) cell over independent
AADGMS snapshots; shards=1 batch=1 is the unsharded baseline. A scan
merges the S per-shard scans per component, which widens nothing: every
component lives in exactly one shard, so the merged view is exact
(modulo elision). batch=B is the component-elision window: updates
within B-1 above a handle's last flushed component value never touch
shared memory, so slowly-rising sequences flush only every ~B-th value
and the headroom surfaces as the Buffer term of Bounds (B-1 per
component). Scans are the expensive operation (O(n^2) per shard worst
case); elision removes update work rather than contention, so it shows
even on a single-CPU host.`,
		Header: []string{"goroutines", "shards", "batch", "Mops/s", "ns/op", "scans/s"},
	}

	for _, gs := range gss {
		for _, s := range shardCounts {
			for _, b := range batches {
				sn, err := approxobj.NewSnapshot(
					approxobj.WithProcs(gs),
					approxobj.WithShards(s),
					approxobj.WithBatch(b),
				)
				if err != nil {
					return nil, err
				}
				res, err := runShardedSnapshot(cfg.Seed, sn, gs, opsPer, scanFrac)
				if err != nil {
					return nil, err
				}
				t.AddRow(gs, s, b, res.mopsPerS, fmt.Sprintf("%.1f", res.nsPerOp), fmt.Sprintf("%.0f", res.readsPerS))
				t.AddRecord(Record{
					Params: map[string]string{
						"goroutines": strconv.Itoa(gs),
						"shards":     strconv.Itoa(s),
						"batch":      strconv.Itoa(b),
					},
					NsPerOp:  res.nsPerOp,
					Envelope: EnvelopeOf(sn.Bounds()),
				})
			}
		}
	}
	return []*Table{t}, nil
}

// runShardedSnapshot drives gs goroutines of opsPer mixed operations
// (scanFrac scans, the rest ascending component updates) against one
// sharded snapshot and reports wall-clock throughput plus the final
// per-component accuracy check.
func runShardedSnapshot(seed int64, sn *approxobj.Snapshot, gs, opsPer int, scanFrac float64) (shardedRun, error) {
	handles := make([]approxobj.SnapshotHandle, gs)
	for i := range handles {
		handles[i] = sn.Handle(i)
	}
	finals := make([]uint64, gs)
	scans := make([]uint64, gs)
	var wg sync.WaitGroup
	startLine := make(chan struct{})
	wg.Add(gs)
	for i := 0; i < gs; i++ {
		h := handles[i]
		rng := rand.New(rand.NewSource(seed + int64(i) + 43))
		go func(i int) {
			defer wg.Done()
			<-startLine
			for j := 1; j <= opsPer; j++ {
				if rng.Float64() < scanFrac {
					h.Scan()
					scans[i]++
				} else {
					v := uint64(j)
					h.Update(v)
					finals[i] = v
				}
			}
		}(i)
	}
	start := time.Now()
	close(startLine)
	wg.Wait()
	elapsed := time.Since(start)

	// Quiescent accuracy check: flush every elision window, then the
	// merged scan must report every component exactly (the flushed
	// envelope of the exact backend is zero).
	var totalScans uint64
	for i, h := range handles {
		h.(approxobj.BatchedSnapshotHandle).Flush()
		totalScans += scans[i]
	}
	view := handles[0].Scan()
	for i := 0; i < gs; i++ {
		if view[i] != finals[i] {
			return shardedRun{}, fmt.Errorf(
				"bench: sharded snapshot (S=%d B=%d) component %d scans as %d after flush, want exactly %d",
				sn.Shards(), sn.Batch(), i, view[i], finals[i])
		}
	}
	totalOps := float64(gs * opsPer)
	return shardedRun{
		nsPerOp:   float64(elapsed.Nanoseconds()) / totalOps,
		mopsPerS:  totalOps / elapsed.Seconds() / 1e6,
		readsPerS: float64(totalScans) / elapsed.Seconds(),
	}, nil
}
