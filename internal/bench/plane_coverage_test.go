package bench

import (
	"testing"

	"approxobj"
)

// TestEveryKindHasBenchScenario mirrors cmd/approxbench's startup gate in
// the test suite: every object kind registered in the backend-plane
// table (approxobj.Kinds) must declare a bench scenario that some
// experiment in All actually emits — so a new object family cannot land
// without a measured workload, and a trimmed experiment table cannot
// silently orphan a kind.
func TestEveryKindHasBenchScenario(t *testing.T) {
	declared := map[string]bool{}
	for _, exp := range All() {
		for _, sc := range exp.Scenarios {
			declared[sc] = true
		}
	}
	kinds := approxobj.Kinds()
	if len(kinds) == 0 {
		t.Fatal("backend table registers no kinds")
	}
	for _, kp := range kinds {
		if kp.BenchScenario == "" {
			t.Errorf("kind %q declares no bench scenario", kp.Kind)
			continue
		}
		if !declared[kp.BenchScenario] {
			t.Errorf("kind %q declares bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.BenchScenario)
		}
		// A kind with a read-cache policy (documented staleness term)
		// must also declare an emitted read-dominated scenario, so the
		// O(1) cached-read claim stays measured.
		if kp.StaleTerm != "" {
			if kp.ReadBenchScenario == "" {
				t.Errorf("kind %q documents a read-cache staleness term but declares no read-dominated bench scenario", kp.Kind)
				continue
			}
			if !declared[kp.ReadBenchScenario] {
				t.Errorf("kind %q declares read bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.ReadBenchScenario)
			}
		}
		// A kind with window support (documented window term) must also
		// declare an emitted windowed observe+scrape scenario.
		if kp.WindowTerm != "" {
			if kp.WindowBenchScenario == "" {
				t.Errorf("kind %q documents a window term but declares no windowed bench scenario", kp.Kind)
				continue
			}
			if !declared[kp.WindowBenchScenario] {
				t.Errorf("kind %q declares window bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.WindowBenchScenario)
			}
		}
		// A kind whose accuracy row set includes the randomized accuracy
		// must declare an emitted deterministic-vs-randomized frontier
		// scenario, so the cost of the determinism guarantee is measured
		// wherever the choice between the two exists.
		for _, acc := range kp.Accuracies {
			if acc != "randomized" {
				continue
			}
			if kp.FrontierBenchScenario == "" {
				t.Errorf("kind %q supports the randomized accuracy but declares no frontier bench scenario", kp.Kind)
			} else if !declared[kp.FrontierBenchScenario] {
				t.Errorf("kind %q declares frontier bench scenario %q, which no experiment in bench.All emits", kp.Kind, kp.FrontierBenchScenario)
			}
		}
	}
}
