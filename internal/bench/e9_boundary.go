package bench

import (
	"fmt"

	"approxobj/internal/core"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// E9Boundary reproduces the accuracy gap this project found in the paper's
// Claim III.6 (see DESIGN.md and the core package docs): with the paper's
// verbatim first threshold t1 = k, n processes that lose switch_0 each hold
// up to k-1 unannounced increments, so a read that sees only switch_0
// returns k while the true count reaches 1 + n(k-1) > k^2 whenever
// n > k+1 — outside the k-multiplicative envelope even though k >= sqrt(n)
// holds. The repaired default threshold t1 = min(k, (k^2-1)/n + 1) keeps
// the same schedule inside the envelope.
func E9Boundary(cfg Config) ([]*Table, error) {
	type scenario struct {
		n int
		k uint64
	}
	scenarios := []scenario{{4, 2}, {8, 5}, {16, 7}, {64, 9}}
	if cfg.Quick {
		scenarios = scenarios[:2]
	}

	t := &Table{
		ID:    "E9",
		Title: "Claim III.6 boundary case: verbatim t1 = k vs repaired threshold",
		Note: `Schedule: process 0 sets switch_0 on its first increment; every process
then stops one increment short of its announcement threshold. A fresh
reader sees only switch_0 and answers ReturnValue(0,0) = k. Envelope
column is [ceil(v/k), v*k] for the true count v.`,
		Header: []string{"n", "k", "variant", "t1", "true v", "read x", "envelope", "within"},
	}

	for _, sc := range scenarios {
		for _, variant := range []string{"verbatim", "repaired"} {
			opts := []core.Option{}
			if variant == "verbatim" {
				opts = append(opts, core.Verbatim())
			}
			f := prim.NewFactory(sc.n)
			c, err := core.NewMultCounter(f, sc.k, opts...)
			if err != nil {
				return nil, err
			}
			handles := make([]*core.MultHandle, sc.n)
			for i := range handles {
				handles[i] = c.Handle(f.Proc(i))
			}
			// Process 0 announces switch_0 on its first increment and then
			// holds k-1 more below the verbatim threshold k; every other
			// process loses switch_0 and holds k-1. Under verbatim
			// thresholds the true count reaches k + (n-1)(k-1) > k^2 for
			// n > k+1 while only switch_0 is set. The repaired variant
			// sees the identical schedule.
			truth := uint64(0)
			for i := 0; i < sc.n; i++ {
				iters := sc.k - 1
				if i == 0 {
					iters = sc.k
				}
				for j := uint64(0); j < iters; j++ {
					handles[i].Inc()
					truth++
				}
			}
			x := c.Handle(f.Proc(0)).Read()
			acc := object.Accuracy{K: sc.k}
			within := "ok"
			if !acc.Contains(truth, x) {
				within = "VIOLATED"
			}
			t.AddRow(sc.n, sc.k, variant, c.FirstThreshold(), truth, x,
				fmt.Sprintf("[%d, %d]", (truth+sc.k-1)/sc.k, truth*sc.k), within)
		}
	}
	return []*Table{t}, nil
}
