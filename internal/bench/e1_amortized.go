package bench

import (
	"fmt"
	"math"
	"math/rand"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// runAmortized drives a mixed workload (readFrac reads) across n handles in
// a seeded op-granularity interleaving and returns total steps / total ops.
func runAmortized(mk func(f *prim.Factory) (object.Counter, error), n, totalOps int, readFrac float64, seed int64) (float64, error) {
	f := prim.NewFactory(n)
	c, err := mk(f)
	if err != nil {
		return 0, err
	}
	procs := f.Procs()
	handles := make([]object.CounterHandle, n)
	for i := range handles {
		handles[i] = c.CounterHandle(procs[i])
	}
	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < totalOps; op++ {
		h := handles[rng.Intn(n)]
		if rng.Float64() < readFrac {
			h.Read()
		} else {
			h.Inc()
		}
	}
	var steps uint64
	for _, p := range procs {
		steps += p.Steps()
	}
	return float64(steps) / float64(totalOps), nil
}

func sqrtCeil(n int) uint64 {
	return uint64(math.Ceil(math.Sqrt(float64(n))))
}

// E1Amortized reproduces Theorem III.9: Algorithm 1's amortized step
// complexity is O(1) for k >= sqrt(n), while the exact baselines grow with
// n (collect: Theta(n) reads) or with log n * log v (AACH tree counter).
// A second table fixes n and stretches the execution length to show the
// bound holds for executions of arbitrary length.
func E1Amortized(cfg Config) ([]*Table, error) {
	ns := []int{4, 16, 64, 256}
	totalOps := 200_000
	lengths := []int{1_000, 10_000, 100_000, 1_000_000}
	if cfg.Quick {
		ns = []int{4, 16}
		totalOps = 20_000
		lengths = []int{1_000, 10_000}
	}
	const readFrac = 0.1

	t1 := &Table{
		ID:    "E1a",
		Title: "amortized steps/op vs n (10% reads, k = ceil(sqrt(n)))",
		Note: `Theorem III.9: the k-multiplicative counter stays constant while exact
baselines grow with n. collect reads cost n steps; AACH increments cost
O(log n * log v).`,
		Header: []string{"n", "k", "mult (Alg 1)", "collect", "AACH tree"},
	}
	for _, n := range ns {
		k := sqrtCeil(n)
		mult, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return core.NewMultCounter(f, k)
		}, n, totalOps, readFrac, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		coll, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return counter.NewCollect(f)
		}, n, totalOps, readFrac, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		aach, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return counter.NewAACH(f)
		}, n, totalOps, readFrac, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		t1.AddRow(n, k, mult, coll, aach)
		for _, m := range []struct {
			impl  string
			steps float64
		}{{"mult", mult}, {"collect", coll}, {"aach", aach}} {
			t1.AddRecord(Record{
				Params:     map[string]string{"n": fmt.Sprint(n), "k": fmt.Sprint(k), "impl": m.impl},
				StepsPerOp: m.steps,
			})
		}
	}

	const n2 = 16
	k2 := sqrtCeil(n2)
	t2 := &Table{
		ID:    "E1b",
		Title: fmt.Sprintf("amortized steps/op vs execution length (n=%d, k=%d)", n2, k2),
		Note: `Arbitrary-length executions: Algorithm 1 keeps constant amortized cost
as the number of operations grows (the property exact sub-linear counters
of [8] lose once increments are exponential in n).`,
		Header: []string{"total ops", "mult (Alg 1)", "collect", "AACH tree"},
	}
	for _, ops := range lengths {
		mult, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return core.NewMultCounter(f, k2)
		}, n2, ops, readFrac, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		coll, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return counter.NewCollect(f)
		}, n2, ops, readFrac, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		aach, err := runAmortized(func(f *prim.Factory) (object.Counter, error) {
			return counter.NewAACH(f)
		}, n2, ops, readFrac, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		t2.AddRow(ops, mult, coll, aach)
	}
	return []*Table{t1, t2}, nil
}
