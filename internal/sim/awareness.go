package sim

import "approxobj/internal/prim"

// Awareness tracks, per Definitions III.2 and III.3 of the paper, which
// processes each process is aware of. Awareness flows through base objects:
//
//   - a nontrivial primitive (write, or a test&set that flips the bit)
//     stamps the object with the issuer's current awareness set plus the
//     issuer itself (a write overwrites the previous provenance, matching
//     the "visible on o" condition of Definition III.2);
//   - a primitive other than write (read, or any test&set — test&set
//     returns the previous value, so it observes) merges the object's
//     provenance into the issuer's awareness set;
//   - a test&set applied to an already-set bit is invisible as an update
//     (its object-values vector is a fixed point), so it observes without
//     re-stamping.
//
// Sets are bitsets over process IDs. The tracker computes the transitive
// awareness relation online as the machine records each event.
type Awareness struct {
	n     int
	words int
	// procSets[p] is the awareness set of process p.
	procSets []bitset
	// objSets maps each touched object to its current provenance set.
	objSets map[prim.ObjID]bitset
}

type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) or(other bitset) { // b |= other
	for i := range other {
		b[i] |= other[i]
	}
}

func (b bitset) count() int {
	c := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// NewAwareness creates a tracker for n processes; initially every process is
// aware only of itself.
func NewAwareness(n int) *Awareness {
	words := (n + 63) / 64
	a := &Awareness{
		n:        n,
		words:    words,
		procSets: make([]bitset, n),
		objSets:  make(map[prim.ObjID]bitset),
	}
	for i := range a.procSets {
		a.procSets[i] = newBitset(words)
		a.procSets[i].set(i)
	}
	return a
}

// Observe folds one executed event into the awareness relation. The machine
// calls it once per step, in execution order.
func (a *Awareness) Observe(ev prim.Event) {
	p := ev.Proc
	switch ev.Op {
	case prim.OpRead:
		if prov, ok := a.objSets[ev.Obj]; ok {
			a.procSets[p].or(prov)
		}
	case prim.OpWrite:
		a.objSets[ev.Obj] = a.stamp(p)
	case prim.OpTAS:
		// test&set returns the previous value: the issuer observes first.
		if prov, ok := a.objSets[ev.Obj]; ok {
			a.procSets[p].or(prov)
		}
		// It changed the object only if the previous value was 0.
		if ev.Val == 0 {
			a.objSets[ev.Obj] = a.stamp(p)
		}
	case prim.OpCAS:
		// CAS returns the observed value: the issuer always observes. It
		// becomes visible on the object only when it succeeds (a failed
		// CAS hit a fixed point, Definition III.1).
		if prov, ok := a.objSets[ev.Obj]; ok {
			a.procSets[p].or(prov)
		}
		if _, swapped := prim.CASEventSucceeded(ev); swapped {
			a.objSets[ev.Obj] = a.stamp(p)
		}
	}
}

func (a *Awareness) stamp(p int) bitset {
	s := a.procSets[p].clone()
	s.set(p)
	return s
}

// Set returns the number of processes that process p is aware of (|AW(E,p)|,
// including p itself per Definition III.3).
func (a *Awareness) Set(p int) int { return a.procSets[p].count() }

// Aware reports whether process p is aware of process q.
func (a *Awareness) Aware(p, q int) bool { return a.procSets[p].get(q) }

// Sizes returns the awareness-set size of every process.
func (a *Awareness) Sizes() []int {
	out := make([]int, a.n)
	for i := range out {
		out[i] = a.procSets[i].count()
	}
	return out
}
