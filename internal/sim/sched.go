package sim

import "math/rand"

// Scheduler picks which running process takes the next step. Next is called
// with the (non-empty, ascending) list of running process IDs and must
// return one of them. Schedulers are deterministic functions of their own
// state, so a machine driven by an equal-state scheduler replays the same
// execution.
type Scheduler interface {
	Next(active []int) int
}

// RoundRobin cycles through processes in ID order, skipping finished ones.
type RoundRobin struct {
	last int
}

// NewRoundRobin returns a round-robin scheduler starting at process 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next returns the first active ID strictly greater than the previous pick,
// wrapping around.
func (r *RoundRobin) Next(active []int) int {
	for _, id := range active {
		if id > r.last {
			r.last = id
			return id
		}
	}
	r.last = active[0]
	return active[0]
}

// Random picks uniformly with a seeded PRNG; the same seed replays the same
// choices against the same sequence of active sets.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Next picks a uniformly random active process.
func (r *Random) Next(active []int) int {
	return active[r.rng.Intn(len(active))]
}

// Prioritized always steps the lowest-ID active process. Combined with
// spawn order, this runs processes one after another (a sequential
// schedule).
type Prioritized struct{}

// Next returns the lowest active ID.
func (Prioritized) Next(active []int) int { return active[0] }

// Scripted follows a fixed list of process IDs, skipping entries that are
// not active; when the script is exhausted it falls back to round-robin so
// RunAll still terminates.
type Scripted struct {
	script []int
	pos    int
	rr     RoundRobin
}

// NewScripted returns a scheduler that replays script.
func NewScripted(script []int) *Scripted {
	s := &Scripted{script: make([]int, len(script)), rr: RoundRobin{last: -1}}
	copy(s.script, script)
	return s
}

// Next returns the next scripted active process, or a round-robin pick once
// the script is exhausted.
func (s *Scripted) Next(active []int) int {
	for s.pos < len(s.script) {
		id := s.script[s.pos]
		s.pos++
		for _, a := range active {
			if a == id {
				return id
			}
		}
	}
	return s.rr.Next(active)
}
