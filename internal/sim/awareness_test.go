package sim

import (
	"testing"

	"approxobj/internal/prim"
)

func TestAwarenessInitialSelfOnly(t *testing.T) {
	a := NewAwareness(4)
	for i := 0; i < 4; i++ {
		if got := a.Set(i); got != 1 {
			t.Fatalf("initial |AW(%d)| = %d, want 1", i, got)
		}
		if !a.Aware(i, i) {
			t.Fatalf("process %d not aware of itself", i)
		}
	}
}

func TestAwarenessReadAfterWrite(t *testing.T) {
	a := NewAwareness(3)
	a.Observe(prim.Event{Proc: 0, Op: prim.OpWrite, Obj: 7, Val: 5})
	a.Observe(prim.Event{Proc: 1, Op: prim.OpRead, Obj: 7, Val: 5})

	if !a.Aware(1, 0) {
		t.Fatal("reader not aware of writer")
	}
	if a.Aware(0, 1) {
		t.Fatal("writer aware of reader (reads are invisible)")
	}
	if a.Aware(2, 0) || a.Aware(2, 1) {
		t.Fatal("bystander gained awareness")
	}
}

func TestAwarenessTransitive(t *testing.T) {
	a := NewAwareness(3)
	// p0 writes r1; p1 reads r1 then writes r2; p2 reads r2.
	a.Observe(prim.Event{Proc: 0, Op: prim.OpWrite, Obj: 1})
	a.Observe(prim.Event{Proc: 1, Op: prim.OpRead, Obj: 1})
	a.Observe(prim.Event{Proc: 1, Op: prim.OpWrite, Obj: 2})
	a.Observe(prim.Event{Proc: 2, Op: prim.OpRead, Obj: 2})

	if !a.Aware(2, 1) {
		t.Fatal("p2 not aware of p1 (direct)")
	}
	if !a.Aware(2, 0) {
		t.Fatal("p2 not aware of p0 (transitive through p1's write)")
	}
	if got := a.Set(2); got != 3 {
		t.Fatalf("|AW(p2)| = %d, want 3", got)
	}
}

func TestAwarenessOverwriteReplacesProvenance(t *testing.T) {
	a := NewAwareness(3)
	a.Observe(prim.Event{Proc: 0, Op: prim.OpWrite, Obj: 1})
	// p1 overwrites without reading first: p0's trace on the object is gone.
	a.Observe(prim.Event{Proc: 1, Op: prim.OpWrite, Obj: 1})
	a.Observe(prim.Event{Proc: 2, Op: prim.OpRead, Obj: 1})

	if a.Aware(2, 0) {
		t.Fatal("p2 aware of overwritten p0")
	}
	if !a.Aware(2, 1) {
		t.Fatal("p2 not aware of overwriting p1")
	}
}

func TestAwarenessTASObservesAndStamps(t *testing.T) {
	a := NewAwareness(3)
	// p0 wins the bit (Val=0: previous value was 0).
	a.Observe(prim.Event{Proc: 0, Op: prim.OpTAS, Obj: 4, Val: 0})
	// p1 loses the bit (Val=1): it observes p0 but does not re-stamp.
	a.Observe(prim.Event{Proc: 1, Op: prim.OpTAS, Obj: 4, Val: 1})
	// p2 reads the bit: aware of p0 (the visible setter), not p1 (whose
	// failed test&set is an invisible update per the paper's definition).
	a.Observe(prim.Event{Proc: 2, Op: prim.OpRead, Obj: 4, Val: 1})

	if !a.Aware(1, 0) {
		t.Fatal("losing test&set did not observe the winner")
	}
	if !a.Aware(2, 0) {
		t.Fatal("reader not aware of bit setter")
	}
	if a.Aware(2, 1) {
		t.Fatal("reader aware of invisible failed test&set")
	}
}

func TestAwarenessSizes(t *testing.T) {
	a := NewAwareness(2)
	a.Observe(prim.Event{Proc: 0, Op: prim.OpWrite, Obj: 1})
	a.Observe(prim.Event{Proc: 1, Op: prim.OpRead, Obj: 1})
	sizes := a.Sizes()
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("Sizes = %v, want [1 2]", sizes)
	}
}

func TestAwarenessThroughMachine(t *testing.T) {
	m := NewMachine(2)
	reg := m.Factory().Reg()
	m.Spawn(0, func(p *prim.Proc) { reg.Write(p, 1) })
	m.Spawn(1, func(p *prim.Proc) { reg.Read(p) })
	m.RunSchedule([]int{0, 1})

	if !m.Awareness().Aware(1, 0) {
		t.Fatal("machine did not propagate awareness on read-after-write")
	}
}

func TestBitsetLargeN(t *testing.T) {
	const n = 200 // needs 4 words
	a := NewAwareness(n)
	// Chain: p_i writes obj i; p_{i+1} reads obj i then writes obj i+1.
	for i := 0; i < n-1; i++ {
		a.Observe(prim.Event{Proc: i, Op: prim.OpWrite, Obj: prim.ObjID(i)})
		a.Observe(prim.Event{Proc: i + 1, Op: prim.OpRead, Obj: prim.ObjID(i)})
	}
	if got := a.Set(n - 1); got != n {
		t.Fatalf("chained awareness |AW(p_%d)| = %d, want %d", n-1, got, n)
	}
	if got := a.Set(0); got != 1 {
		t.Fatalf("|AW(p_0)| = %d, want 1", got)
	}
}
