package sim

import (
	"reflect"
	"testing"

	"approxobj/internal/prim"
)

// incProgram returns a program that increments reg count times by
// read-then-write (2 steps per increment).
func incProgram(reg *prim.Reg, count int) func(*prim.Proc) {
	return func(p *prim.Proc) {
		for i := 0; i < count; i++ {
			v := reg.Read(p)
			reg.Write(p, v+1)
		}
	}
}

func TestLockstepSerializesSteps(t *testing.T) {
	m := NewMachine(2)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 3))
	m.Spawn(1, incProgram(reg, 3))

	steps := m.RunAll(NewRoundRobin(), 1000)
	if steps != 12 {
		t.Fatalf("total steps = %d, want 12 (2 procs x 3 incs x 2 steps)", steps)
	}
	// Round-robin read-write increments interleave: both processes read
	// the same value and overwrite — the classic lost update, which the
	// lock-step machine must reproduce deterministically.
	if got := reg.Peek(); got != 3 {
		t.Fatalf("final value = %d, want 3 (lost updates under round-robin)", got)
	}
}

func TestSoloRun(t *testing.T) {
	m := NewMachine(1)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 5))
	steps := m.RunSolo(0, 100)
	if steps != 10 {
		t.Fatalf("solo steps = %d, want 10", steps)
	}
	if m.Running(0) {
		t.Fatal("process still running after solo run")
	}
}

func TestStepReturnsFalseWhenIdle(t *testing.T) {
	m := NewMachine(1)
	if m.Step(0) {
		t.Fatal("Step on idle process returned true")
	}
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 1))
	if !m.Step(0) || !m.Step(0) {
		t.Fatal("expected 2 steps")
	}
	if m.Step(0) {
		t.Fatal("Step after program end returned true")
	}
}

func TestCrashStopsProcess(t *testing.T) {
	m := NewMachine(2)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 10))
	m.Spawn(1, incProgram(reg, 2))

	if !m.Step(0) {
		t.Fatal("first step failed")
	}
	m.Crash(0)
	if m.Step(0) {
		t.Fatal("crashed process took a step")
	}
	// The other process must still run to completion.
	steps := m.RunAll(NewRoundRobin(), 100)
	if steps != 4 {
		t.Fatalf("remaining steps = %d, want 4", steps)
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	m := NewMachine(1)
	reg := m.Factory().Reg()
	tas := m.Factory().TAS()
	m.Spawn(0, func(p *prim.Proc) {
		reg.Write(p, 9)
		tas.TestAndSet(p)
		reg.Read(p)
	})
	m.RunSolo(0, 10)

	want := []prim.Event{
		{Proc: 0, Op: prim.OpWrite, Obj: reg.ID(), Val: 9},
		{Proc: 0, Op: prim.OpTAS, Obj: tas.ID(), Val: 0},
		{Proc: 0, Op: prim.OpRead, Obj: reg.ID(), Val: 9},
	}
	if !reflect.DeepEqual(m.Trace(), want) {
		t.Fatalf("trace = %+v, want %+v", m.Trace(), want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []prim.Event {
		m := NewMachine(3)
		reg := m.Factory().Reg()
		for i := 0; i < 3; i++ {
			m.Spawn(i, incProgram(reg, 4))
		}
		m.RunAll(NewRandom(seed), 1000)
		return m.Trace()
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestScriptedScheduleReplay(t *testing.T) {
	script := []int{0, 1, 1, 0, 1, 0, 0, 1}
	run := func() []prim.Event {
		m := NewMachine(2)
		reg := m.Factory().Reg()
		m.Spawn(0, incProgram(reg, 2))
		m.Spawn(1, incProgram(reg, 2))
		m.RunSchedule(script)
		return append([]prim.Event(nil), m.Trace()...)
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("scripted schedule did not replay identically")
	}
}

func TestRunScheduleSkipsFinished(t *testing.T) {
	m := NewMachine(2)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 1)) // 2 steps
	m.Spawn(1, incProgram(reg, 1))
	taken := m.RunSchedule([]int{0, 0, 0, 0, 1, 1})
	if taken != 4 {
		t.Fatalf("schedule took %d steps, want 4 (extra entries skipped)", taken)
	}
}

func TestTraceOfFiltersByProcess(t *testing.T) {
	m := NewMachine(2)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 2))
	m.Spawn(1, incProgram(reg, 3))
	m.RunAll(NewRoundRobin(), 100)

	if got := len(m.TraceOf(0)); got != 4 {
		t.Fatalf("proc 0 events = %d, want 4", got)
	}
	if got := len(m.TraceOf(1)); got != 6 {
		t.Fatalf("proc 1 events = %d, want 6", got)
	}
}

func TestDistinctObjects(t *testing.T) {
	evs := []prim.Event{
		{Obj: 1}, {Obj: 2}, {Obj: 1}, {Obj: 3}, {Obj: 2},
	}
	if got := DistinctObjects(evs); got != 3 {
		t.Fatalf("DistinctObjects = %d, want 3", got)
	}
	if got := DistinctObjects(nil); got != 0 {
		t.Fatalf("DistinctObjects(nil) = %d, want 0", got)
	}
}

func TestStepCountsMatchTrace(t *testing.T) {
	m := NewMachine(2)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 3))
	m.Spawn(1, incProgram(reg, 5))
	m.RunAll(NewRandom(7), 1000)

	for i := 0; i < 2; i++ {
		if got, want := m.Proc(i).Steps(), uint64(len(m.TraceOf(i))); got != want {
			t.Fatalf("proc %d: Steps() = %d, trace has %d", i, got, want)
		}
	}
}

func TestSpawnPanicsOnRunningProcess(t *testing.T) {
	m := NewMachine(1)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 5))
	m.Step(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn over running process did not panic")
		}
	}()
	m.Spawn(0, incProgram(reg, 1))
}

func TestRespawnAfterFinish(t *testing.T) {
	m := NewMachine(1)
	reg := m.Factory().Reg()
	m.Spawn(0, incProgram(reg, 1))
	m.RunSolo(0, 10)
	m.Spawn(0, incProgram(reg, 1))
	if steps := m.RunSolo(0, 10); steps != 2 {
		t.Fatalf("respawned run took %d steps, want 2", steps)
	}
}

func TestKCASThroughMachine(t *testing.T) {
	// An arity-q KCAS is one scheduled step that lands q trace events and
	// updates awareness for every touched register.
	m := NewMachine(2)
	regs := m.Factory().CASRegs(3)
	kcas := m.Factory().KCAS(regs)

	m.Spawn(0, func(p *prim.Proc) {
		kcas.Apply(p, []uint64{0, 0, 0}, []uint64{1, 2, 3})
	})
	m.Spawn(1, func(p *prim.Proc) {
		regs[2].Read(p)
	})
	if !m.Step(0) {
		t.Fatal("KCAS step not granted")
	}
	if got := len(m.Trace()); got != 3 {
		t.Fatalf("KCAS produced %d trace events, want 3 (one per register)", got)
	}
	if got := m.Proc(0).Steps(); got != 1 {
		t.Fatalf("KCAS counted %d steps, want 1", got)
	}
	for i, want := range []uint64{1, 2, 3} {
		if got := regs[i].Peek(); got != want {
			t.Fatalf("reg[%d] = %d, want %d", i, got, want)
		}
	}
	// Process 1 reads one of the registers: awareness flows from the
	// KCAS issuer.
	m.Step(1)
	if !m.Awareness().Aware(1, 0) {
		t.Fatal("reader not aware of KCAS issuer")
	}
}

func TestFailedKCASInvisible(t *testing.T) {
	m := NewMachine(2)
	regs := m.Factory().CASRegs(2)
	kcas := m.Factory().KCAS(regs)

	// Process 0's KCAS fails (expectations wrong): it must observe but
	// stay invisible.
	m.Spawn(0, func(p *prim.Proc) {
		kcas.Apply(p, []uint64{7, 7}, []uint64{1, 1})
	})
	m.Spawn(1, func(p *prim.Proc) {
		regs[0].Read(p)
	})
	m.Step(0)
	m.Step(1)
	if m.Awareness().Aware(1, 0) {
		t.Fatal("reader aware of an invisible (failed) KCAS")
	}
	if regs[0].Peek() != 0 || regs[1].Peek() != 0 {
		t.Fatal("failed KCAS mutated registers")
	}
}
