package sim

import (
	"reflect"
	"testing"
)

func TestRoundRobinCycles(t *testing.T) {
	rr := NewRoundRobin()
	active := []int{0, 1, 2}
	var picks []int
	for i := 0; i < 7; i++ {
		picks = append(picks, rr.Next(active))
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	if !reflect.DeepEqual(picks, want) {
		t.Fatalf("picks = %v, want %v", picks, want)
	}
}

func TestRoundRobinSkipsMissing(t *testing.T) {
	rr := NewRoundRobin()
	if got := rr.Next([]int{1, 3}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
	if got := rr.Next([]int{1, 3}); got != 3 {
		t.Fatalf("pick = %d, want 3", got)
	}
	// Process 3 finished; wrap to the remaining one.
	if got := rr.Next([]int{1}); got != 1 {
		t.Fatalf("pick = %d, want 1", got)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	picksWith := func(seed int64) []int {
		r := NewRandom(seed)
		active := []int{0, 1, 2, 3}
		var out []int
		for i := 0; i < 20; i++ {
			out = append(out, r.Next(active))
		}
		return out
	}
	if !reflect.DeepEqual(picksWith(5), picksWith(5)) {
		t.Fatal("same seed gave different picks")
	}
}

func TestPrioritizedPicksLowest(t *testing.T) {
	var p Prioritized
	if got := p.Next([]int{2, 5, 7}); got != 2 {
		t.Fatalf("pick = %d, want 2", got)
	}
}

func TestScriptedFollowsScriptThenFallsBack(t *testing.T) {
	s := NewScripted([]int{1, 1, 0})
	active := []int{0, 1}
	got := []int{s.Next(active), s.Next(active), s.Next(active)}
	if !reflect.DeepEqual(got, []int{1, 1, 0}) {
		t.Fatalf("scripted picks = %v, want [1 1 0]", got)
	}
	// Script exhausted: falls back to round-robin over active.
	if pick := s.Next(active); pick != 0 && pick != 1 {
		t.Fatalf("fallback pick = %d, want an active process", pick)
	}
}

func TestScriptedSkipsInactive(t *testing.T) {
	s := NewScripted([]int{2, 0})
	// Process 2 is not active: entry skipped, next entry used.
	if got := s.Next([]int{0, 1}); got != 0 {
		t.Fatalf("pick = %d, want 0 (skipping inactive 2)", got)
	}
}
