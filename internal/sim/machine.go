// Package sim implements a deterministic shared-memory machine for the
// asynchronous model of the paper.
//
// Each simulated process runs its real Go code (the same algorithm bodies
// used in production mode) in its own goroutine, but every primitive
// application blocks on the machine's gate until the scheduler grants the
// process its next step. At most one process runs between grant and
// acknowledgement, so the machine is lock-step: executions are exactly the
// interleavings of single primitive applications the model allows, the
// trace of events is total, and identical schedules replay identical
// executions. This is the substrate for all step-complexity measurements
// and for the lower-bound constructions in internal/lowerbound.
package sim

import (
	"fmt"

	"approxobj/internal/prim"
)

// ProcStatus describes the lifecycle of a simulated process.
type ProcStatus int

// Process lifecycle states.
const (
	// StatusIdle means the process has no program or finished its program.
	StatusIdle ProcStatus = iota + 1
	// StatusRunning means the process has a program and can be stepped.
	StatusRunning
	// StatusCrashed means the process was crash-stopped and will take no
	// further steps (its goroutine is parked until the machine shuts down).
	StatusCrashed
)

type slot struct {
	token  chan struct{} // grant: machine -> process
	ack    chan []prim.Event
	done   chan struct{} // closed when program returns
	status ProcStatus
}

// Machine is a deterministic lock-step shared-memory simulator for n
// processes. It implements prim.Gate. All machine methods must be called
// from a single driver goroutine (typically the test).
type Machine struct {
	factory *prim.Factory
	procs   []*prim.Proc
	slots   []*slot
	trace   []prim.Event
	aware   *Awareness
}

// NewMachine creates a machine for n processes. Base objects for the
// algorithms under test must be created through Factory() before programs
// run, in a deterministic order, so replays assign identical object IDs.
func NewMachine(n int) *Machine {
	m := &Machine{}
	m.factory = prim.NewGatedFactory(n, m)
	m.procs = make([]*prim.Proc, n)
	m.slots = make([]*slot, n)
	for i := 0; i < n; i++ {
		m.procs[i] = m.factory.Proc(i)
		m.slots[i] = &slot{
			token:  make(chan struct{}),
			ack:    make(chan []prim.Event),
			done:   make(chan struct{}),
			status: StatusIdle,
		}
	}
	m.aware = NewAwareness(n)
	return m
}

// Factory returns the machine's base-object factory.
func (m *Machine) Factory() *prim.Factory { return m.factory }

// N returns the number of processes.
func (m *Machine) N() int { return len(m.procs) }

// Proc returns the handle of process i (for reading step counts).
func (m *Machine) Proc(i int) *prim.Proc { return m.procs[i] }

// Enter implements prim.Gate: it blocks the calling process goroutine until
// the driver grants it a step.
func (m *Machine) Enter(p *prim.Proc) {
	<-m.slots[p.ID()].token
}

// Exit implements prim.Gate: it reports the completed step (one or more
// events for arity-q primitives) to the driver.
func (m *Machine) Exit(p *prim.Proc, evs []prim.Event) {
	m.slots[p.ID()].ack <- evs
}

// Spawn installs program as the code of process i and starts its goroutine.
// The program runs until it returns or the process is crashed; it only makes
// progress when the driver steps it. Spawning over a running process is a
// driver bug and panics.
func (m *Machine) Spawn(i int, program func(p *prim.Proc)) {
	s := m.slots[i]
	if s.status == StatusRunning {
		panic(fmt.Sprintf("sim: process %d already running", i))
	}
	// Fresh channels: a previous program may have left a closed done chan.
	s.token = make(chan struct{})
	s.ack = make(chan []prim.Event)
	s.done = make(chan struct{})
	s.status = StatusRunning
	p := m.procs[i]
	go func() {
		program(p)
		close(s.done)
	}()
}

// Step grants process i one step and waits for it to complete. It returns
// true if a step was taken, false if the program finished without needing
// another step (in which case the process becomes idle). Stepping an idle
// or crashed process returns false immediately.
func (m *Machine) Step(i int) bool {
	s := m.slots[i]
	if s.status != StatusRunning {
		return false
	}
	select {
	case s.token <- struct{}{}:
	case <-s.done:
		s.status = StatusIdle
		return false
	}
	// The process now executes exactly one primitive effect and reports it
	// (arity-q primitives report one event per object touched).
	evs := <-s.ack
	m.trace = append(m.trace, evs...)
	for _, ev := range evs {
		m.aware.Observe(ev)
	}
	// If that was the program's last step, reap it now so Running status
	// means "will take another step when granted".
	select {
	case <-s.done:
		s.status = StatusIdle
	default:
	}
	return true
}

// Running reports whether process i has an unfinished program.
func (m *Machine) Running(i int) bool { return m.slots[i].status == StatusRunning }

// Crash crash-stops process i: it will never be granted another step. Its
// goroutine stays parked (simulated crashes are silent in the model).
func (m *Machine) Crash(i int) {
	s := m.slots[i]
	if s.status == StatusRunning {
		s.status = StatusCrashed
	}
}

// RunSolo steps process i until its program finishes, returning the number
// of steps taken. This is the "solo execution" of the obstruction-freedom
// definition. maxSteps guards against non-terminating programs; RunSolo
// panics when it is exceeded, since in a solo-terminating implementation a
// bounded solo run must finish.
func (m *Machine) RunSolo(i int, maxSteps int) int {
	steps := 0
	for m.Step(i) {
		steps++
		if steps > maxSteps {
			panic(fmt.Sprintf("sim: process %d exceeded %d solo steps (not solo-terminating?)", i, maxSteps))
		}
	}
	return steps
}

// StepN grants process i up to n steps, returning how many were taken.
func (m *Machine) StepN(i, n int) int {
	taken := 0
	for taken < n && m.Step(i) {
		taken++
	}
	return taken
}

// RunSchedule steps processes in the order given, skipping entries whose
// process is no longer running. It returns the number of steps taken.
func (m *Machine) RunSchedule(schedule []int) int {
	taken := 0
	for _, i := range schedule {
		if m.Step(i) {
			taken++
		}
	}
	return taken
}

// RunAll drives all running processes to completion using the scheduler,
// returning the total number of steps. It stops when no process is running.
// maxSteps guards against livelock.
func (m *Machine) RunAll(sched Scheduler, maxSteps int) int {
	steps := 0
	for {
		active := m.active()
		if len(active) == 0 {
			return steps
		}
		i := sched.Next(active)
		if !m.Step(i) {
			continue
		}
		steps++
		if steps > maxSteps {
			panic(fmt.Sprintf("sim: exceeded %d total steps", maxSteps))
		}
	}
}

func (m *Machine) active() []int {
	var act []int
	for i, s := range m.slots {
		if s.status == StatusRunning {
			act = append(act, i)
		}
	}
	return act
}

// Trace returns the events of all steps taken so far, in execution order.
// The returned slice is owned by the machine; callers must not modify it.
func (m *Machine) Trace() []prim.Event { return m.trace }

// TraceOf returns the events issued by process i, in execution order.
func (m *Machine) TraceOf(i int) []prim.Event {
	var evs []prim.Event
	for _, ev := range m.trace {
		if ev.Proc == i {
			evs = append(evs, ev)
		}
	}
	return evs
}

// Awareness returns the machine's awareness tracker.
func (m *Machine) Awareness() *Awareness { return m.aware }

// DistinctObjects returns the number of distinct base objects accessed by
// the events in evs.
func DistinctObjects(evs []prim.Event) int {
	seen := make(map[prim.ObjID]struct{}, len(evs))
	for _, ev := range evs {
		seen[ev.Obj] = struct{}{}
	}
	return len(seen)
}
