package snapshot

import (
	"sync"
	"testing"

	"approxobj/internal/prim"
)

func TestSnapshotSequential(t *testing.T) {
	const n = 3
	f := prim.NewFactory(n)
	s, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, n)
	for i := range handles {
		handles[i] = s.Handle(f.Proc(i))
	}

	view := handles[0].Scan()
	for i, v := range view {
		if v != 0 {
			t.Fatalf("initial component %d = %d, want 0", i, v)
		}
	}
	handles[0].Update(5)
	handles[2].Update(7)
	view = handles[1].Scan()
	want := []uint64{5, 0, 7}
	for i := range want {
		if view[i] != want[i] {
			t.Fatalf("view = %v, want %v", view, want)
		}
	}
	handles[0].Update(6)
	view = handles[1].Scan()
	if view[0] != 6 {
		t.Fatalf("component 0 = %d after second update, want 6", view[0])
	}
}

func TestSnapshotScanIsView(t *testing.T) {
	// Concurrent updates: every scan must be *some* consistent cut —
	// component values never regress across sequential scans.
	const n = 4
	const updates = 300
	f := prim.NewFactory(n)
	s, err := New(f)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := s.Handle(f.Proc(i))
			for v := 1; v <= updates; v++ {
				h.Update(uint64(v))
			}
		}(i)
	}

	reader := s.Handle(f.Proc(n - 1))
	prev := make([]uint64, n)
	for j := 0; j < 200; j++ {
		view := reader.Scan()
		for i := range view {
			if view[i] < prev[i] {
				t.Fatalf("scan %d: component %d regressed %d -> %d", j, i, prev[i], view[i])
			}
		}
		prev = view
	}
	wg.Wait()

	final := reader.Scan()
	for i := 0; i < n-1; i++ {
		if final[i] != updates {
			t.Fatalf("final component %d = %d, want %d", i, final[i], updates)
		}
	}
}

func TestSnapshotRejectsZeroProcs(t *testing.T) {
	if _, err := New(prim.NewFactory(0)); err == nil {
		t.Fatal("New with 0 procs succeeded")
	}
}

func TestSnapshotN(t *testing.T) {
	f := prim.NewFactory(5)
	s, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d, want 5", s.N())
	}
}

// TestReadComponent pins the single-component fast path: it returns the
// component's current value (0 for never-written components) in exactly
// one register read.
func TestReadComponent(t *testing.T) {
	f := prim.NewFactory(3)
	s, err := New(f)
	if err != nil {
		t.Fatal(err)
	}
	s.Handle(f.Proc(0)).Update(41)
	s.Handle(f.Proc(1)).Update(7)

	r := s.Handle(f.Proc(2))
	before := f.Proc(2).Steps()
	if got := r.ReadComponent(0); got != 41 {
		t.Errorf("ReadComponent(0) = %d, want 41", got)
	}
	if d := f.Proc(2).Steps() - before; d != 1 {
		t.Errorf("ReadComponent took %d steps, want exactly 1", d)
	}
	if got := r.ReadComponent(2); got != 0 {
		t.Errorf("ReadComponent(2) = %d for a never-written component, want 0", got)
	}
}
