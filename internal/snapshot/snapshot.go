// Package snapshot implements the classic wait-free single-writer atomic
// snapshot of Afek, Attiya, Dolev, Gafni, Merritt and Shavit (J. ACM 1993),
// the substrate behind the "easy" optimal exact counter the paper's
// introduction describes: increment your component, scan and sum to read.
//
// Update embeds a scan, so both operations run in O(n^2) steps worst case
// (adaptive constructions reach O(n); see reference [7] of the paper — the
// asymptotics of the counters built on top are unchanged).
package snapshot

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// cell is the immutable content of one component register.
type cell struct {
	val  uint64
	seq  uint64
	view []uint64 // embedded scan taken by the writing Update
}

// Snapshot is an n-component single-writer atomic snapshot. Component i is
// written only by process i (via Update) and read by anyone (via Scan).
type Snapshot struct {
	n    int
	regs []*prim.RefReg
}

// New creates a snapshot object with one component per process of f,
// all initialized to zero.
func New(f *prim.Factory) (*Snapshot, error) {
	n := f.N()
	if n < 1 {
		return nil, fmt.Errorf("snapshot: need at least one process, got %d", n)
	}
	return &Snapshot{n: n, regs: f.RefRegRow(n)}, nil
}

// N returns the number of components.
func (s *Snapshot) N() int { return s.n }

// Handle binds process p to the snapshot. The handle caches the process's
// own sequence number (single-writer state, kept locally so Update needs no
// extra read step) and the collect scratch of ScanInto, so steady-state
// scans through one handle allocate nothing.
type Handle struct {
	s   *Snapshot
	p   *prim.Proc
	seq uint64

	// ScanInto scratch: two collect buffers (the classic "two identical
	// successive collects" pair) and the per-component movement counters,
	// reused across scans.
	ca, cb []*cell
	moved  []int
}

// Handle returns process p's view of the snapshot.
func (s *Snapshot) Handle(p *prim.Proc) *Handle {
	return &Handle{s: s, p: p}
}

// SnapshotHandle implements object.Snapshot, so the sharded runtime can
// build snapshots like any other backend. The returned handle also
// implements object.ComponentReader (see ReadComponent).
func (s *Snapshot) SnapshotHandle(p *prim.Proc) object.SnapshotHandle {
	return s.Handle(p)
}

var _ object.ComponentReader = (*Handle)(nil)

// collectInto reads every component once into out (grown as needed),
// returning the observed cells (nil entries mean "never written", i.e.
// value 0, sequence 0).
func (h *Handle) collectInto(out []*cell) []*cell {
	if cap(out) < h.s.n {
		out = make([]*cell, h.s.n)
	}
	out = out[:h.s.n]
	for i, r := range h.s.regs {
		if c, ok := r.Read(h.p).(*cell); ok {
			out[i] = c
		} else {
			out[i] = nil
		}
	}
	return out
}

func seqOf(c *cell) uint64 {
	if c == nil {
		return 0
	}
	return c.seq
}

func valOf(c *cell) uint64 {
	if c == nil {
		return 0
	}
	return c.val
}

// ReadComponent returns the current value of component i with one
// register read (implementing object.ComponentReader). Components are
// single-writer registers, for which a single read is atomic on its
// own — callers needing only one component (e.g. a re-created sharded
// handle recovering its elision anchor) skip the full collect loop of
// Scan.
func (h *Handle) ReadComponent(i int) uint64 {
	if c, ok := h.s.regs[i].Read(h.p).(*cell); ok {
		return c.val
	}
	return 0
}

// Scan returns an atomic view of all n components: either a "direct" view
// from two identical successive collects, or the embedded view of a process
// observed to move twice (whose embedded scan then ran entirely within this
// Scan's interval). The slice is fresh (owned by the caller).
func (h *Handle) Scan() []uint64 { return h.ScanInto(nil) }

// ScanInto is Scan into a reused buffer: dst is grown (or allocated, if
// nil) to n and filled with the view. Collect buffers and movement
// counters live in the handle, so steady-state scans through one handle
// allocate nothing. The step count is identical to Scan's.
func (h *Handle) ScanInto(dst []uint64) []uint64 {
	n := h.s.n
	if cap(h.moved) < n {
		h.moved = make([]int, n)
	} else {
		h.moved = h.moved[:n]
		for i := range h.moved {
			h.moved[i] = 0
		}
	}
	prev := h.collectInto(h.ca)
	cur := h.cb
	for {
		cur = h.collectInto(cur)
		same := true
		for i := range cur {
			if seqOf(cur[i]) != seqOf(prev[i]) {
				same = false
				h.moved[i]++
				if h.moved[i] >= 2 {
					// cur[i].view was embedded by an Update that began
					// after our first collect: it is a valid view here.
					dst = append(dst[:0], cur[i].view...)
					h.ca, h.cb = prev, cur
					return dst
				}
			}
		}
		if same {
			if cap(dst) < n {
				dst = make([]uint64, n)
			}
			dst = dst[:n]
			for i, c := range cur {
				dst[i] = valOf(c)
			}
			h.ca, h.cb = prev, cur
			return dst
		}
		prev, cur = cur, prev
	}
}

// Update sets this process's component to v. Per Afek et al., it embeds a
// scan in the published cell so concurrent scanners can borrow it.
func (h *Handle) Update(v uint64) {
	view := h.Scan()
	if h.seq == 0 {
		// A fresh handle for a slot that has written before (e.g. a
		// re-created manual handle) must continue the slot's sequence:
		// restarting at 1 could collide with a historic cell and make a
		// concurrent Scan miss the movement. One extra read, once.
		if c, ok := h.s.regs[h.p.ID()].Read(h.p).(*cell); ok {
			h.seq = c.seq
		}
	}
	h.seq++
	h.s.regs[h.p.ID()].Write(h.p, &cell{val: v, seq: h.seq, view: view})
}
