// Package lowerbound makes the paper's lower-bound arguments executable.
//
// Perturbing executions (Section V, Definitions 2 and 3 of [5] as restated
// by the paper) are constructed round by round against a concrete
// implementation: each round, a fresh process runs solo until the prefix of
// its events changes the outcome of the reader's solo run; the critical
// event stays poised ("pending") while the next round begins. The number of
// rounds L achieved certifies that the implementation is L-perturbable, and
// by [5, Theorem 1] some operation of any such implementation accesses
// Omega(min(log2 L, n)) distinct base objects — which the driver measures
// directly on the reader's final solo run.
//
// The awareness experiment (Section III-D) runs the paper's
// one-increment-one-read workload and measures awareness sets (Definition
// III.3) via the simulation machine's tracker, validating Lemma III.10 and
// Corollary III.10.1.
package lowerbound

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/sim"
)

// PerturbResult reports one perturbing-execution construction.
type PerturbResult struct {
	// Rounds is L, the number of successful perturbations.
	Rounds int
	// Values holds the perturbing payload of each round (the value written
	// for max registers; the number of increments for counters).
	Values []uint64
	// ReaderSteps is the length of the reader's solo run in the final
	// configuration (after all rounds, with pending events applied).
	ReaderSteps int
	// ReaderDistinctObjects counts the distinct base objects the reader
	// accesses in that run — the quantity [5, Theorem 1] bounds from below
	// by log2(Rounds).
	ReaderDistinctObjects int
	// ReaderResponse is the reader's final response.
	ReaderResponse uint64
	// Saturated reports that the construction stopped because every
	// available perturbing process holds a pending event (Definition 2,
	// case 2).
	Saturated bool
	// Exhausted reports that the construction stopped because the next
	// payload would exceed the object's bound m.
	Exhausted bool
	// Failed reports that a full solo run of the perturber did not change
	// the reader's response (for a correct implementation this must not
	// happen before Saturated or Exhausted).
	Failed bool
}

// round records one completed perturbation round.
type round struct {
	proc    int
	payload uint64
	prefix  int // steps of the perturber applied in alpha (gamma' length)
}

// perturbDriver abstracts over the object kind being perturbed.
type perturbDriver struct {
	n       int
	maxSolo int
	// build recreates the object and returns the per-process programs:
	// perturb(proc, payload) is the perturbing program, read stores the
	// reader's response through resp.
	build func(f *prim.Factory) (perturb func(payload uint64) func(*prim.Proc), read func(resp *uint64) func(*prim.Proc), err error)
}

// execute replays: alpha (each round's prefix in order), then j steps of
// probeProc running probePayload (if probe), then — when withLambda — the
// poised event of every pending round, then the reader's solo run.
// It returns the reader's response, its event trace, and its step count.
func (d *perturbDriver) execute(rounds []round, probe bool, probeProc int, probePayload uint64, probeSteps int, withLambda bool) (uint64, []prim.Event, int, error) {
	m := sim.NewMachine(d.n)
	perturb, read, err := d.build(m.Factory())
	if err != nil {
		return 0, nil, 0, err
	}
	// Alpha: prefixes in round order.
	for _, r := range rounds {
		m.Spawn(r.proc, perturb(r.payload))
		if taken := m.StepN(r.proc, r.prefix); taken != r.prefix {
			return 0, nil, 0, fmt.Errorf("lowerbound: replay drift: proc %d took %d/%d prefix steps", r.proc, taken, r.prefix)
		}
	}
	// Probe: the current round's candidate prefix.
	if probe {
		m.Spawn(probeProc, perturb(probePayload))
		if probeSteps > 0 {
			if taken := m.StepN(probeProc, probeSteps); taken != probeSteps {
				return 0, nil, 0, fmt.Errorf("lowerbound: probe ended early: %d/%d steps", taken, probeSteps)
			}
		}
	}
	// Lambda: apply the poised event of each pending process.
	if withLambda {
		for _, r := range rounds {
			m.Step(r.proc)
		}
	}
	// Reader solo.
	reader := d.n - 1
	var resp uint64
	m.Spawn(reader, read(&resp))
	steps := m.RunSolo(reader, d.maxSolo)
	return resp, m.TraceOf(reader), steps, nil
}

// soloLength measures the full solo run length of the perturber after the
// current alpha (gamma in Definition 2).
func (d *perturbDriver) soloLength(rounds []round, proc int, payload uint64) (int, error) {
	m := sim.NewMachine(d.n)
	perturb, _, err := d.build(m.Factory())
	if err != nil {
		return 0, err
	}
	for _, r := range rounds {
		m.Spawn(r.proc, perturb(r.payload))
		m.StepN(r.proc, r.prefix)
	}
	m.Spawn(proc, perturb(payload))
	return m.RunSolo(proc, d.maxSolo), nil
}

// run constructs perturbing executions until saturation, exhaustion or
// failure. nextPayload yields the payload of round r given the previous
// payloads; it returns ok=false when the object's bound is exhausted.
func (d *perturbDriver) run(nextPayload func(values []uint64) (uint64, bool)) (PerturbResult, error) {
	var (
		res    PerturbResult
		rounds []round
	)
	finish := func() (PerturbResult, error) {
		resp, evs, steps, err := d.execute(rounds, false, 0, 0, 0, true)
		if err != nil {
			return res, err
		}
		res.Rounds = len(rounds)
		res.ReaderResponse = resp
		res.ReaderSteps = steps
		res.ReaderDistinctObjects = sim.DistinctObjects(evs)
		return res, nil
	}

	for {
		// Perturbers are processes 0..n-2; the reader is n-1.
		nextProc := len(rounds)
		if nextProc >= d.n-1 {
			res.Saturated = true
			return finish()
		}
		payload, ok := nextPayload(res.Values)
		if !ok {
			res.Exhausted = true
			return finish()
		}
		baseline, _, _, err := d.execute(rounds, false, 0, 0, 0, true)
		if err != nil {
			return res, err
		}
		gammaLen, err := d.soloLength(rounds, nextProc, payload)
		if err != nil {
			return res, err
		}
		// Binary search for the minimal prefix after which the reader's
		// response diverges from the baseline. Divergence is monotone in
		// the prefix length because counters and max registers are
		// monotone objects: more perturber steps can only move the
		// reader's response further from the baseline.
		diverges := func(j int) (bool, error) {
			resp, _, _, err := d.execute(rounds, true, nextProc, payload, j, true)
			if err != nil {
				return false, err
			}
			return resp != baseline, nil
		}
		full, err := diverges(gammaLen)
		if err != nil {
			return res, err
		}
		if !full {
			res.Failed = true
			return finish()
		}
		lo, hi := 1, gammaLen // invariant: diverges(hi) holds
		for lo < hi {
			mid := lo + (hi-lo)/2
			div, err := diverges(mid)
			if err != nil {
				return res, err
			}
			if div {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		// The lo-th step of gamma is the critical event e: gamma' is the
		// lo-1 steps before it. e joins the pending events (lambda).
		rounds = append(rounds, round{proc: nextProc, payload: payload, prefix: lo - 1})
		res.Values = append(res.Values, payload)
	}
}

// PerturbMaxReg runs the Lemma V.1 construction against the max register
// built by mk: round r writes v_r = k^2 * v_(r-1) + 1 (k = 1 reproduces the
// exact-register bound of [5]). n bounds the rounds to n-2; m is the
// register's bound.
func PerturbMaxReg(mk func(f *prim.Factory) (object.MaxReg, error), n int, m, k uint64, maxSolo int) (PerturbResult, error) {
	d := &perturbDriver{
		n:       n,
		maxSolo: maxSolo,
		build: func(f *prim.Factory) (func(uint64) func(*prim.Proc), func(*uint64) func(*prim.Proc), error) {
			r, err := mk(f)
			if err != nil {
				return nil, nil, err
			}
			perturb := func(payload uint64) func(*prim.Proc) {
				return func(p *prim.Proc) { r.MaxRegHandle(p).Write(payload) }
			}
			read := func(resp *uint64) func(*prim.Proc) {
				return func(p *prim.Proc) { *resp = r.MaxRegHandle(p).Read() }
			}
			return perturb, read, nil
		},
	}
	return d.run(func(values []uint64) (uint64, bool) {
		prev := uint64(0)
		if len(values) > 0 {
			prev = values[len(values)-1]
		}
		next := k*k*prev + 1
		if next > m-1 || (prev > 0 && next <= prev) {
			return 0, false
		}
		return next, true
	})
}

// PerturbCounter runs the Lemma V.3 construction against the counter built
// by mk: round r performs I_r = (k^2-1) * sum(I_1..I_(r-1)) + r increments.
// m bounds the total number of increments.
func PerturbCounter(mk func(f *prim.Factory) (object.Counter, error), n int, m, k uint64, maxSolo int) (PerturbResult, error) {
	d := &perturbDriver{
		n:       n,
		maxSolo: maxSolo,
		build: func(f *prim.Factory) (func(uint64) func(*prim.Proc), func(*uint64) func(*prim.Proc), error) {
			c, err := mk(f)
			if err != nil {
				return nil, nil, err
			}
			perturb := func(payload uint64) func(*prim.Proc) {
				return func(p *prim.Proc) {
					h := c.CounterHandle(p)
					for i := uint64(0); i < payload; i++ {
						h.Inc()
					}
				}
			}
			read := func(resp *uint64) func(*prim.Proc) {
				return func(p *prim.Proc) { *resp = c.CounterHandle(p).Read() }
			}
			return perturb, read, nil
		},
	}
	return d.run(func(values []uint64) (uint64, bool) {
		var sum uint64
		for _, v := range values {
			sum += v
		}
		r := uint64(len(values)) + 1
		next := (k*k-1)*sum + r
		if sum+next > m || next == 0 {
			return 0, false
		}
		return next, true
	})
}
