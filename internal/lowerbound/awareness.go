package lowerbound

import (
	"sort"

	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/sim"
)

// AwarenessResult reports one run of the Section III-D experiment: an
// n-process execution in which every process performs one CounterIncrement
// followed by one CounterRead (the workload of Lemma III.10 and Corollary
// III.10.1).
type AwarenessResult struct {
	N int
	K uint64
	// Sizes[i] = |AW(E, p_i)| after the execution, including p_i itself.
	Sizes []int
	// Responses[i] is process i's CounterRead response.
	Responses []uint64
	// TotalSteps is the number of primitive steps of the whole execution —
	// the quantity Theorem III.11 bounds by Omega(n log(n/k^2)).
	TotalSteps int
}

// MedianSize returns the median awareness-set size.
func (r AwarenessResult) MedianSize() int {
	if len(r.Sizes) == 0 {
		return 0
	}
	s := append([]int(nil), r.Sizes...)
	sort.Ints(s)
	return s[len(s)/2]
}

// CountAtLeast returns how many processes are aware of at least threshold
// processes.
func (r AwarenessResult) CountAtLeast(threshold int) int {
	c := 0
	for _, s := range r.Sizes {
		if s >= threshold {
			c++
		}
	}
	return c
}

// SatisfiesCorollary reports whether the run witnesses Corollary III.10.1:
// at least n/2 processes aware of at least n/(2k^2) processes.
func (r AwarenessResult) SatisfiesCorollary() bool {
	threshold := r.N / (2 * int(r.K) * int(r.K))
	if threshold < 1 {
		threshold = 1
	}
	return r.CountAtLeast(threshold) >= r.N/2
}

// Awareness runs the one-increment-one-read workload against the counter
// built by mk under a seeded random schedule and returns the awareness-set
// sizes measured by the simulation machine. k is recorded for threshold
// computation (pass 1 for exact counters).
func Awareness(mk func(f *prim.Factory) (object.Counter, error), n int, k uint64, seed int64) (AwarenessResult, error) {
	m := sim.NewMachine(n)
	c, err := mk(m.Factory())
	if err != nil {
		return AwarenessResult{}, err
	}
	responses := make([]uint64, n)
	for i := 0; i < n; i++ {
		proc := i
		h := c.CounterHandle(m.Proc(i))
		m.Spawn(i, func(*prim.Proc) {
			h.Inc()
			responses[proc] = h.Read()
		})
	}
	steps := m.RunAll(sim.NewRandom(seed), 100_000_000)
	return AwarenessResult{
		N:          n,
		K:          k,
		Sizes:      m.Awareness().Sizes(),
		Responses:  responses,
		TotalSteps: steps,
	}, nil
}
