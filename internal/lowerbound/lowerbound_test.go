package lowerbound

import (
	"math"
	"testing"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

func exactMaxReg(m uint64) func(f *prim.Factory) (object.MaxReg, error) {
	return func(f *prim.Factory) (object.MaxReg, error) { return maxreg.NewBounded(f, m) }
}

func kMultMaxReg(m, k uint64) func(f *prim.Factory) (object.MaxReg, error) {
	return func(f *prim.Factory) (object.MaxReg, error) { return core.NewKMultMaxReg(f, m, k) }
}

func TestPerturbExactMaxRegAchievesLogRounds(t *testing.T) {
	// Lemma V.1 with k=1: the exact m-bounded register is perturbable once
	// per value, so with enough processes the construction exhausts the
	// domain: v_r = r, L = m-1 rounds.
	const m = 33
	res, err := PerturbMaxReg(exactMaxReg(m), m+2, m, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("construction failed after %d rounds: %+v", res.Rounds, res)
	}
	if !res.Exhausted {
		t.Fatalf("expected exhaustion at the bound, got %+v", res)
	}
	if res.Rounds != m-1 {
		t.Fatalf("rounds = %d, want %d (one per value)", res.Rounds, m-1)
	}
	// [5, Theorem 1]: the reader must access at least log2(L) distinct
	// base objects.
	wantMin := int(math.Floor(math.Log2(float64(res.Rounds))))
	if res.ReaderDistinctObjects < wantMin {
		t.Fatalf("reader accessed %d distinct objects, want >= log2(%d) = %d",
			res.ReaderDistinctObjects, res.Rounds, wantMin)
	}
	if res.ReaderResponse != m-1 {
		t.Fatalf("final reader response = %d, want %d", res.ReaderResponse, m-1)
	}
}

func TestPerturbKMultMaxRegThetaLogK(t *testing.T) {
	// Lemma V.1: the k-multiplicative register is Theta(log_k m)
	// perturbable: payloads grow as v_r = k^2 v_(r-1) + 1.
	const m = uint64(1) << 30
	const k = 2
	res, err := PerturbMaxReg(kMultMaxReg(m, k), 40, m, k, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("construction failed after %d rounds: %+v", res.Rounds, res)
	}
	if !res.Exhausted {
		t.Fatalf("expected exhaustion, got %+v", res)
	}
	// v_r ~ k^(2r): rounds ~ log_{k^2}(m) = 15 for m = 2^30, k=2.
	if res.Rounds < 12 || res.Rounds > 16 {
		t.Fatalf("rounds = %d, want ~15 = (1/2)log_k m", res.Rounds)
	}
	// Payloads follow the recurrence exactly.
	prev := uint64(0)
	for i, v := range res.Values {
		want := k*k*prev + 1
		if v != want {
			t.Fatalf("round %d payload = %d, want %d", i+1, v, want)
		}
		prev = v
	}
}

func TestPerturbMaxRegSaturates(t *testing.T) {
	// With few processes the construction must stop at n-2 pending rounds.
	const m = 1 << 20
	res, err := PerturbMaxReg(exactMaxReg(m), 6, m, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("expected saturation with n=6, got %+v", res)
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want n-1 = 5", res.Rounds)
	}
}

func TestPerturbCollectCounter(t *testing.T) {
	// The exact collect counter is perturbable every round (k=1: I_r = r);
	// the reader reads all n component registers.
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) }
	res, err := PerturbCounter(mk, 10, 1_000, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("construction failed: %+v", res)
	}
	if !res.Saturated || res.Rounds != 9 {
		t.Fatalf("want saturation after n-1=9 rounds, got %+v", res)
	}
	// I_r = r for k=1: total = 45, response must count every pending
	// increment batch (their critical writes landed in lambda).
	if res.ReaderSteps != 10 {
		t.Fatalf("collect reader took %d steps, want n=10", res.ReaderSteps)
	}
}

func TestPerturbMultCounter(t *testing.T) {
	// Algorithm 1 under the Lemma V.3 construction: payloads I_r grow as
	// ~k^2 per round, so an m-bounded run achieves Theta(log_k m) rounds.
	const k = 2
	mk := func(f *prim.Factory) (object.Counter, error) {
		return core.NewMultCounter(f, k, core.Unchecked())
	}
	res, err := PerturbCounter(mk, 24, 1<<20, k, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("construction failed: %+v", res)
	}
	if !res.Exhausted {
		t.Fatalf("expected exhaustion at m=2^20 increments, got %+v", res)
	}
	// I_r ~ 3 * 4^(r-1): sum reaches 2^20 around round 10.
	if res.Rounds < 8 || res.Rounds > 12 {
		t.Fatalf("rounds = %d, want ~10", res.Rounds)
	}
}

func TestPerturbPayloadRecurrenceCounter(t *testing.T) {
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) }
	res, err := PerturbCounter(mk, 8, 10_000, 3, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	// I_r = (k^2-1) * sum + r with k=3: 1, 10, 91, ...
	want := []uint64{1, 10, 91, 820}
	for i := 0; i < len(want) && i < len(res.Values); i++ {
		if res.Values[i] != want[i] {
			t.Fatalf("I_%d = %d, want %d (values %v)", i+1, res.Values[i], want[i], res.Values)
		}
	}
}

func TestAwarenessCollectCounter(t *testing.T) {
	// The collect counter's readers scan every component: awareness sets
	// grow to ~n, easily witnessing Corollary III.10.1 with k=1.
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) }
	res, err := Awareness(mk, 32, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SatisfiesCorollary() {
		t.Fatalf("corollary violated: sizes %v", res.Sizes)
	}
	if res.TotalSteps == 0 {
		t.Fatal("no steps recorded")
	}
	if res.MedianSize() < 16 {
		t.Fatalf("median awareness %d, want >= n/2 for collect reads", res.MedianSize())
	}
}

func TestAwarenessMultCounter(t *testing.T) {
	// Algorithm 1 with k = sqrt(n): awareness must still satisfy the
	// corollary's n/(2k^2) threshold (= 1 at k^2 = n: everyone who reads a
	// set switch is aware of its setter).
	const n = 16
	const k = 4
	mk := func(f *prim.Factory) (object.Counter, error) { return core.NewMultCounter(f, k) }
	for seed := int64(0); seed < 5; seed++ {
		res, err := Awareness(mk, n, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !res.SatisfiesCorollary() {
			t.Fatalf("seed %d: corollary violated: sizes %v", seed, res.Sizes)
		}
	}
}

func TestAwarenessLemmaIII10(t *testing.T) {
	// Lemma III.10: a read returning i implies awareness of >= i/k
	// processes. Check every process's response against its awareness set.
	const n = 16
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) }
	res, err := Awareness(mk, n, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range res.Responses {
		if uint64(res.Sizes[i]) < resp/res.K {
			t.Fatalf("process %d returned %d but is aware of only %d (< i/k)",
				i, resp, res.Sizes[i])
		}
	}
}

func TestPerturbDeterministic(t *testing.T) {
	run := func() PerturbResult {
		res, err := PerturbMaxReg(exactMaxReg(64), 70, 64, 1, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.ReaderSteps != b.ReaderSteps ||
		a.ReaderDistinctObjects != b.ReaderDistinctObjects || a.ReaderResponse != b.ReaderResponse {
		t.Fatalf("perturbation not deterministic: %+v vs %+v", a, b)
	}
}

func TestAwarenessCASCounter(t *testing.T) {
	// The CAS counter funnels every increment through one register whose
	// provenance chains transitively: after the one-inc-one-read workload,
	// readers are aware of long chains of earlier incrementers.
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCASCounter(f) }
	res, err := Awareness(mk, 32, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SatisfiesCorollary() {
		t.Fatalf("corollary violated for CAS counter: sizes %v", res.Sizes)
	}
	// Lemma III.10 check: response i implies awareness of >= i processes
	// (k = 1).
	for i, resp := range res.Responses {
		if uint64(res.Sizes[i]) < resp {
			t.Fatalf("process %d returned %d but aware of only %d", i, resp, res.Sizes[i])
		}
	}
}
