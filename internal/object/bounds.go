package object

import (
	"time"

	"approxobj/internal/satmath"
)

// Bounds is the universal accuracy envelope reported by every object in
// this repository: against a true value v, a read may return any x with
//
//	(v - Buffer)/Mult - Add <= x <= Mult*v + Add.
//
// Mult is the multiplicative factor (1 for exact objects), Add the
// additive slack (0 for exact and multiplicative objects; the summed
// per-shard slack for sharded additive counters), and Buffer the maximum
// amount by which reads may trail the true value because of handle-local
// buffering: (B-1)·n increments parked in counter batch buffers
// system-wide, or B-1 of max-register write-elision headroom (per
// handle — the maximum lives in one handle). Unbatched objects have
// Buffer 0; exact objects report the zero envelope
// {Mult: 1, Add: 0, Buffer: 0}.
//
// Stale is the read-cache staleness window (0 when the read cache is
// off): with a cache, a read may serve a pre-combined value whose
// underlying combined read STARTED up to Stale ago, so the envelope
// above holds against some true value v in the widened regularity
// window that opens Stale before the read began (rather than at the
// read's own start). Stale is a time-domain term — unlike Mult, Add,
// and Buffer it does not enter the arithmetic of Contains/ContainsRange;
// checkers widen the window (their choice of vmin) instead.
//
// Window is the epoch-truncation skew of windowed objects (0 when the
// object is cumulative): a windowed object keeps a ring of epoch
// instances rotated every Window (= the window duration divided by the
// epoch count), and a read combines the live ring. The combined value
// covers at least the last d - Window and at most the last d of
// mutations, and a read racing a rotation may additionally miss the
// epoch being evicted — in total at most one epoch of truncation skew
// at either edge of the window. Like Stale it is a time-domain term:
// it bounds WHICH mutations the window covers, not the arithmetic of
// the envelope, so Contains/ContainsRange ignore it and checkers pick
// their true-value window accordingly.
//
// Delta is the envelope's failure probability (0 for deterministic
// objects): reads of a randomized object satisfy the numeric envelope
// above only with probability >= 1-Delta, per read, over the object's
// internal coin flips — never over the schedule. Deterministic objects
// (the paper's point, §I-A) report Delta 0: their reads are in range on
// EVERY execution under ANY adversary, which is exactly what the Morris
// line of counters gives up in exchange for exponentially smaller
// state. Delta is a probability qualifier, not an arithmetic term:
// Contains/ContainsRange evaluate the numeric envelope as usual and
// statistical checkers assert that the empirical rate of out-of-range
// reads stays at or below Delta.
type Bounds struct {
	Mult   uint64
	Add    uint64
	Buffer uint64
	Stale  time.Duration
	Window time.Duration
	Delta  float64
}

// ExactBounds is the zero envelope of precise objects: reads return the
// true value.
func ExactBounds() Bounds { return Bounds{Mult: 1} }

// IsExact reports whether the envelope pins reads to the true value. A
// nonzero Stale or Window term disqualifies: a cached read can be exact
// only against a past value, and a windowed read only against a
// truncated one. A nonzero Delta disqualifies too: a randomized object
// pins nothing — even a zero-width numeric envelope holds only with
// probability 1-Delta.
func (b Bounds) IsExact() bool {
	return b.Mult <= 1 && b.Add == 0 && b.Buffer == 0 && b.Stale == 0 && b.Window == 0 && b.Delta == 0
}

// Holds returns the probability with which the numeric envelope holds
// per read: 1 for deterministic objects, 1-Delta for randomized ones
// (clamped at 0 for the degenerate Delta >= 1).
func (b Bounds) Holds() float64 {
	if b.Delta >= 1 {
		return 0
	}
	return 1 - b.Delta
}

// Contains reports whether response x is inside the envelope for true
// count v. Bounds are evaluated multiplied-out ((x+Add)*Mult >= v-Buffer
// rather than x >= (v-Buffer)/Mult - Add) so integer division cannot skew
// them; overflowing products saturate and count as +infinity. When Delta
// is nonzero the envelope is probabilistic: each read lands inside it
// with probability >= 1-Delta, so a false result from Contains is an
// expected (Delta-rare) event rather than a correctness violation, and
// checkers assert on the rate of false results instead of on each one.
func (b Bounds) Contains(v, x uint64) bool { return b.ContainsRange(v, v, x) }

// ContainsRange reports whether x is a valid response for some true count
// in [vmin, vmax]. Concurrent checkers use it with vmin = increments
// completed before the Read started and vmax = increments started before
// it returned (the regularity window; see internal/shard's package
// comment): the envelope is monotone in v, so x is valid for some count in
// the window iff it is above the lower bound at vmin and below the upper
// bound at vmax.
func (b Bounds) ContainsRange(vmin, vmax, x uint64) bool {
	m := b.Mult
	if m < 1 {
		m = 1
	}
	if hi := satmath.Add(satmath.Mul(vmax, m), b.Add); x > hi {
		return false
	}
	lo := vmin - min(vmin, b.Buffer)
	return satmath.Mul(satmath.Add(x, b.Add), m) >= lo
}
