// Package object defines the shared-object interfaces implemented by every
// counter and max-register in this repository.
//
// Objects are accessed through per-process handles: Handle(p) binds a
// process to the object and carries the persistent local variables the
// paper's algorithms require (e.g. last_i, lcounter_i, limit_i of
// Algorithm 1). A handle must only be used by the goroutine driving its
// process; the shared object itself may be accessed through any number of
// handles concurrently.
package object

import "approxobj/internal/prim"

// Counter is a shared counter object supporting CounterIncrement and
// CounterRead through per-process handles.
type Counter interface {
	// CounterHandle binds process p to the counter.
	CounterHandle(p *prim.Proc) CounterHandle
}

// CounterHandle is a process's view of a counter.
type CounterHandle interface {
	// Inc applies one CounterIncrement operation.
	Inc()
	// Read applies one CounterRead operation and returns its response.
	Read() uint64
}

// BulkCounterHandle is implemented by counter handles that can apply d
// increments in one operation more cheaply than d separate Incs (e.g. one
// leaf write and one path refresh in the AACH tree, or one announcement in
// the batched additive counter). IncN(d) must be linearizable as d
// consecutive Incs by the same process. Callers holding a plain
// CounterHandle may type-assert to use the fast path and fall back to a
// loop of Incs otherwise.
type BulkCounterHandle interface {
	CounterHandle
	// IncN applies d CounterIncrement operations at once.
	IncN(d uint64)
}

// MaxReg is a shared max-register object supporting Write and Read through
// per-process handles.
type MaxReg interface {
	// MaxRegHandle binds process p to the max register.
	MaxRegHandle(p *prim.Proc) MaxRegHandle
}

// MaxRegHandle is a process's view of a max register.
type MaxRegHandle interface {
	// Write records v; subsequent Reads return at least v (within the
	// object's accuracy guarantee).
	Write(v uint64)
	// Read returns (an approximation of) the maximum value written so far.
	Read() uint64
}

// Hist is a shared bucket-count vector object supporting AddN and Read
// through per-process handles: every process may add observations to any
// bucket, and a read returns the per-bucket totals. It is the per-shard
// substrate of the histogram family — the bucket layout (which value
// lands in which bucket) is decided by the layer above.
type Hist interface {
	// HistHandle binds process p to the bucket vector.
	HistHandle(p *prim.Proc) HistHandle
	// Buckets returns the number of buckets.
	Buckets() int
}

// HistHandle is a process's view of a bucket-count vector.
type HistHandle interface {
	// AddN adds d observations to bucket b, linearizable as d consecutive
	// single additions by the same process.
	AddN(b int, d uint64)
	// Read returns the per-bucket observation totals. The returned slice
	// is fresh (owned by the caller).
	Read() []uint64
	// ReadInto is Read with the totals written into dst (grown as
	// needed), so steady-state readers reuse one buffer instead of
	// allocating per read. It returns the filled slice; a nil dst
	// behaves like Read.
	ReadInto(dst []uint64) []uint64
}

// Snapshot is a shared single-writer atomic snapshot object supporting
// Update and Scan through per-process handles: process p owns component
// p and is the only writer of it; a scan returns a coherent view of all
// components.
type Snapshot interface {
	// SnapshotHandle binds process p to the snapshot.
	SnapshotHandle(p *prim.Proc) SnapshotHandle
}

// SnapshotHandle is a process's view of a snapshot.
type SnapshotHandle interface {
	// Update sets this process's component to v.
	Update(v uint64)
	// Scan returns a view of all components. The returned slice is fresh
	// (owned by the caller).
	Scan() []uint64
	// ScanInto is Scan with the view written into dst (grown as needed),
	// so steady-state scanners reuse one buffer instead of allocating
	// per scan. It returns the filled slice; a nil dst behaves like
	// Scan.
	ScanInto(dst []uint64) []uint64
}

// ComponentReader is implemented by snapshot handles that can read one
// component more cheaply than a full Scan (one register read instead of
// a collect). ReadComponent(i) returns the current value of component i
// — a regular read of a single-writer register, so for component i read
// through any handle it is as strong as Scan()[i]. Callers needing only
// one component (e.g. a re-created sharded handle recovering its elision
// anchor) type-assert for the fast path and fall back to Scan.
type ComponentReader interface {
	ReadComponent(i int) uint64
}

// Accuracy describes the multiplicative accuracy guarantee of an object: a
// read may return x for a true value v whenever v/K <= x <= v*K. Exact
// objects have K == 1.
type Accuracy struct {
	K uint64
}

// Exact is the accuracy of precise objects.
var Exact = Accuracy{K: 1}

// Contains reports whether response x is allowed for true value v, i.e.
// v/K <= x <= v*K over the reals. The bounds are checked as x*K >= v and
// x <= v*K so integer division cannot skew them; overflowing products are
// treated as +infinity.
func (a Accuracy) Contains(v, x uint64) bool {
	if a.K <= 1 {
		return x == v
	}
	if mulFits(x, a.K) && x*a.K < v {
		return false // x < v/K
	}
	if mulFits(v, a.K) && x > v*a.K {
		return false // x > v*K
	}
	return true
}

func mulFits(a, b uint64) bool {
	if a == 0 || b == 0 {
		return true
	}
	return a <= ^uint64(0)/b
}
