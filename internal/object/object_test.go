package object

import (
	"testing"
	"testing/quick"
)

func TestExactAccuracy(t *testing.T) {
	if !Exact.Contains(5, 5) {
		t.Fatal("exact accuracy rejects equal values")
	}
	if Exact.Contains(5, 6) || Exact.Contains(5, 4) {
		t.Fatal("exact accuracy admits unequal values")
	}
}

func TestAccuracyContainsTable(t *testing.T) {
	acc := Accuracy{K: 3}
	cases := []struct {
		v, x uint64
		want bool
	}{
		{9, 3, true},    // v/k
		{9, 27, true},   // v*k
		{9, 2, false},   // below v/k
		{9, 28, false},  // above v*k
		{0, 0, true},    // zero exact
		{0, 1, false},   // positive answer for zero value
		{1, 0, false},   // 0 < 1/3 is false over the reals: 0*3 < 1
		{2, 1, true},    // 1 >= 2/3
		{100, 34, true}, // ceil(100/3) = 34
		{100, 33, false},
	}
	for _, c := range cases {
		if got := acc.Contains(c.v, c.x); got != c.want {
			t.Errorf("Contains(v=%d, x=%d) = %v, want %v", c.v, c.x, got, c.want)
		}
	}
}

func TestAccuracyContainsQuick(t *testing.T) {
	// Property: Contains(v, x) iff x*K >= v and x <= v*K over big.Int-free
	// rational arithmetic, here checked via float bounds on small inputs.
	check := func(vRaw, xRaw uint32, kRaw uint8) bool {
		v, x := uint64(vRaw), uint64(xRaw)
		k := uint64(kRaw)%7 + 2
		acc := Accuracy{K: k}
		want := x*k >= v && x <= v*k
		return acc.Contains(v, x) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyVExactInside(t *testing.T) {
	// Property: the exact value is always admissible, and so are v/k
	// (rounded up) and v*k.
	check := func(vRaw uint32, kRaw uint8) bool {
		v := uint64(vRaw)
		k := uint64(kRaw)%9 + 1
		acc := Accuracy{K: k}
		if !acc.Contains(v, v) {
			return false
		}
		if k > 1 && v > 0 {
			up := (v + k - 1) / k
			if !acc.Contains(v, up) || !acc.Contains(v, v*k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyOverflowSaturation(t *testing.T) {
	max := ^uint64(0)
	acc := Accuracy{K: 1000}
	// x*K overflows: lower bound check must treat it as +inf, not reject.
	if !acc.Contains(max, max/2) {
		t.Fatal("huge x rejected despite x*k overflowing past v")
	}
	// v*K overflows: upper bound is +inf.
	if !acc.Contains(max/2, max) {
		t.Fatal("huge v rejected despite v*k overflowing past x")
	}
}
