package satmath_test

import (
	"math"
	"testing"
	"time"

	"approxobj/internal/satmath"
)

func TestMul(t *testing.T) {
	for _, tc := range []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{0, math.MaxUint64, 0},
		{1, math.MaxUint64, math.MaxUint64},
		{3, 7, 21},
		{1 << 32, 1 << 32, math.MaxUint64},
		{math.MaxUint64, 2, math.MaxUint64},
	} {
		if got := satmath.Mul(tc.a, tc.b); got != tc.want {
			t.Errorf("Mul(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAdd(t *testing.T) {
	for _, tc := range []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxUint64, 0, math.MaxUint64},
		{math.MaxUint64, 1, math.MaxUint64},
		{math.MaxUint64 - 1, 1, math.MaxUint64},
	} {
		if got := satmath.Add(tc.a, tc.b); got != tc.want {
			t.Errorf("Add(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestPow covers the fixed points (k = 0, k = 1) that used to make the
// loop run e times — Pow(1, MaxUint64) effectively hung — plus the
// saturating and ordinary cases.
func TestPow(t *testing.T) {
	for _, tc := range []struct{ k, e, want uint64 }{
		{0, 0, 1}, // 0^0 = 1 by convention
		{0, 1, 0},
		{0, math.MaxUint64, 0},
		{1, 0, 1},
		{1, 1, 1},
		{1, math.MaxUint64, 1},
		{2, 0, 1},
		{2, 10, 1024},
		{3, 4, 81},
		{2, 63, 1 << 63},
		{2, 64, math.MaxUint64},               // exact 2^64 overflows: saturate
		{2, math.MaxUint64, math.MaxUint64},   // deep saturation terminates fast
		{math.MaxUint64, 1, math.MaxUint64},   // k itself at the ceiling
		{math.MaxUint64, 2, math.MaxUint64},   // saturates
		{10, 19, 10_000_000_000_000_000_000},  // largest power of 10 in range
		{10, 20, math.MaxUint64},              // next one saturates
		{1 << 32, 2, math.MaxUint64},          // 2^64 exactly: saturate
		{6074000999, 2, math.MaxUint64},       // just above sqrt(MaxUint64)
		{4294967295, 2, 18446744065119617025}, // just below: exact
		{7, 3, 343},
	} {
		done := make(chan uint64, 1)
		go func() { done <- satmath.Pow(tc.k, tc.e) }()
		select {
		case got := <-done:
			if got != tc.want {
				t.Errorf("Pow(%d, %d) = %d, want %d", tc.k, tc.e, got, tc.want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("Pow(%d, %d) did not terminate", tc.k, tc.e)
		}
	}
}

func TestSquareAtLeast(t *testing.T) {
	for _, tc := range []struct {
		k, n uint64
		want bool
	}{
		{2, 4, true},
		{2, 5, false},
		{1, 1, true},
		{0, 0, true},
		{0, 1, false},
		{1 << 32, math.MaxUint64, true}, // k*k saturates: treated as +inf
		{3, 9, true},
		{3, 10, false},
	} {
		if got := satmath.SquareAtLeast(tc.k, tc.n); got != tc.want {
			t.Errorf("SquareAtLeast(%d, %d) = %v, want %v", tc.k, tc.n, got, tc.want)
		}
	}
}
