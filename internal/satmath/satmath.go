// Package satmath provides uint64 arithmetic saturating at MaxUint64,
// shared by the counter implementations and the shard runtime: approximate
// responses near the top of the range must clamp rather than wrap, since a
// wrapped response would violate the accuracy envelope.
package satmath

import "math"

// Mul multiplies with saturation at MaxUint64.
func Mul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxUint64/b {
		return math.MaxUint64
	}
	return a * b
}

// Add adds with saturation at MaxUint64.
func Add(a, b uint64) uint64 {
	if a > math.MaxUint64-b {
		return math.MaxUint64
	}
	return a + b
}

// SquareAtLeast reports whether k*k >= n over the naturals: the saturating
// counterpart of the k >= sqrt(n) precondition of the multiplicative
// counter, shared by the public spec validation and core.NewMultCounter so
// the two cannot drift.
func SquareAtLeast(k, n uint64) bool {
	return Mul(k, k) >= n
}

// Pow returns k^e with saturation at MaxUint64 (with the convention
// 0^0 = 1). It short-circuits as soon as the result can no longer change
// — k in {0, 1} is a fixed point after the first multiplication, and any
// k >= 2 saturates within 64 squarings — so the loop is O(min(e, 64))
// rather than O(e); Pow(1, math.MaxUint64) used to spin for 2^64
// iterations.
func Pow(k, e uint64) uint64 {
	if e == 0 {
		return 1
	}
	if k <= 1 {
		return k // 0^e = 0, 1^e = 1 for e >= 1
	}
	r := uint64(1)
	for ; e > 0; e-- {
		r = Mul(r, k)
		if r == math.MaxUint64 {
			return r
		}
	}
	return r
}
