package maxreg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"approxobj/internal/prim"
)

func TestBoundedSequential(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	b, err := NewBounded(f, 100)
	if err != nil {
		t.Fatal(err)
	}

	if got := b.Read(p); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	for _, step := range []struct{ write, want uint64 }{
		{5, 5}, {3, 5}, {99, 99}, {42, 99}, {0, 99},
	} {
		b.Write(p, step.write)
		if got := b.Read(p); got != step.want {
			t.Fatalf("after Write(%d): Read = %d, want %d", step.write, got, step.want)
		}
	}
}

func TestBoundedEdgeSizes(t *testing.T) {
	for _, m := range []uint64{1, 2, 3, 4, 5, 7, 8, 9, 1023, 1024, 1025} {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		b, err := NewBounded(f, m)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if got := b.Read(p); got != 0 {
			t.Fatalf("m=%d: initial Read = %d", m, got)
		}
		// Writing every representable value in random order must track max.
		vals := rand.New(rand.NewSource(int64(m))).Perm(int(m))
		max := uint64(0)
		for _, v := range vals {
			b.Write(p, uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
			if got := b.Read(p); got != max {
				t.Fatalf("m=%d: Read = %d, want %d", m, got, max)
			}
		}
	}
}

func TestBoundedRejectsBadBound(t *testing.T) {
	f := prim.NewFactory(1)
	if _, err := NewBounded(f, 0); err == nil {
		t.Fatal("NewBounded(0) succeeded, want error")
	}
}

func TestBoundedWritePanicsOutOfRange(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	b, err := NewBounded(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Write(8) on 8-bounded register did not panic")
		}
	}()
	b.Write(p, 8)
}

func TestBoundedStepComplexity(t *testing.T) {
	// Every operation costs at most Depth() = ceil(log2 m) steps.
	for _, m := range []uint64{2, 16, 1024, 1 << 20, 1 << 40} {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		b, err := NewBounded(f, m)
		if err != nil {
			t.Fatal(err)
		}
		depth := uint64(b.Depth())

		p.ResetSteps()
		b.Read(p)
		if p.Steps() > depth {
			t.Fatalf("m=%d: empty Read took %d steps, depth %d", m, p.Steps(), depth)
		}
		p.ResetSteps()
		b.Write(p, m-1)
		if p.Steps() > depth {
			t.Fatalf("m=%d: Write(max) took %d steps, depth %d", m, p.Steps(), depth)
		}
		p.ResetSteps()
		b.Read(p)
		if p.Steps() > depth {
			t.Fatalf("m=%d: Read took %d steps, depth %d", m, p.Steps(), depth)
		}
	}
}

func TestBoundedDepth(t *testing.T) {
	cases := []struct {
		m    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, c := range cases {
		f := prim.NewFactory(1)
		b, err := NewBounded(f, c.m)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Depth(); got != c.want {
			t.Errorf("Depth(m=%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestBoundedQuickVsOracle(t *testing.T) {
	check := func(seed int64, mRaw uint16, opsRaw uint8) bool {
		m := uint64(mRaw)%1000 + 1
		ops := int(opsRaw)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		f := prim.NewFactory(1)
		p := f.Proc(0)
		b, err := NewBounded(f, m)
		if err != nil {
			return false
		}
		oracle := uint64(0)
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 {
				v := uint64(rng.Int63()) % m
				b.Write(p, v)
				if v > oracle {
					oracle = v
				}
			} else if b.Read(p) != oracle {
				return false
			}
		}
		return b.Read(p) == oracle
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedSequential(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	u, err := NewUnbounded(f, ExactFactory)
	if err != nil {
		t.Fatal(err)
	}

	if got := u.Read(p); got != 0 {
		t.Fatalf("initial Read = %d, want 0", got)
	}
	writes := []uint64{1, 5, 3, 1 << 20, 7, 1<<40 + 12345, 1 << 40}
	max := uint64(0)
	for _, v := range writes {
		u.Write(p, v)
		if v > max {
			max = v
		}
		if got := u.Read(p); got != max {
			t.Fatalf("after Write(%d): Read = %d, want %d", v, got, max)
		}
	}
}

func TestUnboundedWriteZeroNoop(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	u, err := NewUnbounded(f, ExactFactory)
	if err != nil {
		t.Fatal(err)
	}
	u.Write(p, 0)
	if got := u.Read(p); got != 0 {
		t.Fatalf("Read after Write(0) = %d, want 0", got)
	}
	u.Write(p, 9)
	u.Write(p, 0)
	if got := u.Read(p); got != 9 {
		t.Fatalf("Read = %d, want 9", got)
	}
}

func TestUnboundedEpochBoundaries(t *testing.T) {
	f := prim.NewFactory(1)
	p := f.Proc(0)
	u, err := NewUnbounded(f, ExactFactory)
	if err != nil {
		t.Fatal(err)
	}
	// Exact powers of two sit at epoch starts (offset 0).
	max := uint64(0)
	for e := 0; e < 62; e += 7 {
		for _, v := range []uint64{1 << e, 1<<e + 1, 1<<(e+1) - 1} {
			u.Write(p, v)
			if v > max {
				max = v
			}
			if got := u.Read(p); got != max {
				t.Fatalf("epoch %d: after Write(%d): Read = %d, want %d", e, v, got, max)
			}
		}
	}
}

func TestUnboundedQuickVsOracle(t *testing.T) {
	check := func(vals []uint64) bool {
		f := prim.NewFactory(1)
		p := f.Proc(0)
		u, err := NewUnbounded(f, ExactFactory)
		if err != nil {
			return false
		}
		oracle := uint64(0)
		for _, v := range vals {
			u.Write(p, v)
			if v > oracle {
				oracle = v
			}
			if u.Read(p) != oracle {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedStepComplexityLogarithmic(t *testing.T) {
	// Steps per op grow with log v: an op on value ~2^e costs about
	// e (epoch register) + 7 (top register) steps.
	f := prim.NewFactory(1)
	p := f.Proc(0)
	u, err := NewUnbounded(f, ExactFactory)
	if err != nil {
		t.Fatal(err)
	}
	u.Write(p, 1<<50)

	p.ResetSteps()
	u.Read(p)
	if p.Steps() > 60 {
		t.Fatalf("Read of 2^50 took %d steps, want <= 60 (log v + log 64)", p.Steps())
	}
	p.ResetSteps()
	u.Write(p, 1<<50+1)
	if p.Steps() > 60 {
		t.Fatalf("Write of 2^50+1 took %d steps, want <= 60", p.Steps())
	}
}

func TestEpochOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1 << 40, 40},
	}
	for _, c := range cases {
		if got := epochOf(c.v); got != c.want {
			t.Errorf("epochOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestMaxRegHandleInterface(t *testing.T) {
	f := prim.NewFactory(2)
	b, err := NewBounded(f, 64)
	if err != nil {
		t.Fatal(err)
	}
	h0 := b.MaxRegHandle(f.Proc(0))
	h1 := b.MaxRegHandle(f.Proc(1))
	h0.Write(10)
	if got := h1.Read(); got != 10 {
		t.Fatalf("handle Read = %d, want 10 (cross-process visibility)", got)
	}
}
