// Package maxreg implements the max-register substrates the paper builds
// on: the exact m-bounded max register of Aspnes, Attiya and Censor-Hillel
// ("Polylogarithmic concurrent data structures from monotone circuits",
// J. ACM 2012; reference [8] of the paper) and an unbounded extension
// parameterized by any bounded max-register implementation, realizing the
// "plug-in" construction the paper attributes to Baig et al. [9].
//
// Since PR 6 the public package reaches these registers only through the
// sharded backend plane (internal/shard); the unsharded types here double
// as reference implementations for the conformance oracles and the
// benchmark baselines.
package maxreg

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// Bounded is the exact m-bounded max register of [8]: a binary tree of
// switch registers in which Write(v) descends towards v's leaf, setting the
// switch of every right branch bottom-up, and Read follows set switches
// down, accumulating the maximum written value. Both operations touch one
// register per tree level, giving worst-case step complexity ceil(log2 m) —
// exponentially better than the Omega(n) bound for unbounded exact max
// registers when m is small. It is linearizable and wait-free.
//
// Tree nodes are materialized lazily on first descent (reads materialize
// too, so every operation pays exactly one step per level, as in the
// model, where all registers exist up front). Materialization is published
// with a CAS so concurrent first descents agree on one node.
type Bounded struct {
	m       uint64
	factory *prim.Factory
	root    *node
}

// node covers a value domain of the given size (>= 2); values < half route
// left, values >= half route right (offset by half). Children whose domain
// has size 1 stay nil: a size-1 max register always reads 0 and needs no
// storage.
type node struct {
	sw    *prim.Reg
	size  uint64
	half  uint64
	left  atomic.Pointer[node]
	right atomic.Pointer[node]
}

var _ object.MaxReg = (*Bounded)(nil)

// NewBounded creates an m-bounded exact max register (domain {0..m-1}).
// m must be at least 1.
func NewBounded(f *prim.Factory, m uint64) (*Bounded, error) {
	if m < 1 {
		return nil, fmt.Errorf("maxreg: bound m must be >= 1, got %d", m)
	}
	b := &Bounded{m: m, factory: f}
	if m >= 2 {
		b.root = newNode(f, m)
	}
	return b, nil
}

func newNode(f *prim.Factory, size uint64) *node {
	return &node{sw: f.Reg(), size: size, half: (size + 1) / 2}
}

// child returns the left or right child of n, materializing it if its
// domain has at least two values.
func (b *Bounded) child(n *node, right bool) *node {
	ptr := &n.left
	size := n.half
	if right {
		ptr = &n.right
		size = n.size - n.half
	}
	if size <= 1 {
		return nil
	}
	if c := ptr.Load(); c != nil {
		return c
	}
	fresh := newNode(b.factory, size)
	if ptr.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return ptr.Load()
}

// Bound returns m.
func (b *Bounded) Bound() uint64 { return b.m }

// Depth returns the tree height, i.e. the worst-case number of steps of one
// operation: ceil(log2 m).
func (b *Bounded) Depth() int {
	if b.m <= 1 {
		return 0
	}
	d := bits.Len64(b.m - 1)
	return d
}

// Write records v. It panics if v >= m: writing out of range is a caller
// bug, like indexing a slice out of bounds.
func (b *Bounded) Write(p *prim.Proc, v uint64) {
	if v >= b.m {
		panic(fmt.Sprintf("maxreg: write %d out of range of %d-bounded max register", v, b.m))
	}
	b.writeTree(p, b.root, v)
}

func (b *Bounded) writeTree(p *prim.Proc, n *node, v uint64) {
	if n == nil {
		return
	}
	if v >= n.half {
		b.writeTree(p, b.child(n, true), v-n.half)
		n.sw.Write(p, 1)
		return
	}
	// Smaller half: only descend while no larger value switched right;
	// otherwise v is already subsumed by the maximum.
	if n.sw.Read(p) == 0 {
		b.writeTree(p, b.child(n, false), v)
	}
}

// Read returns the maximum value written so far (exactly).
func (b *Bounded) Read(p *prim.Proc) uint64 {
	v := uint64(0)
	n := b.root
	for n != nil {
		if n.sw.Read(p) == 1 {
			v += n.half
			n = b.child(n, true)
		} else {
			n = b.child(n, false)
		}
	}
	return v
}

// boundedHandle adapts Bounded to the object interfaces. The exact bounded
// max register keeps no per-process persistent state, so the handle is just
// the (register, process) pair.
type boundedHandle struct {
	b *Bounded
	p *prim.Proc
}

// MaxRegHandle implements object.MaxReg.
func (b *Bounded) MaxRegHandle(p *prim.Proc) object.MaxRegHandle {
	return &boundedHandle{b: b, p: p}
}

func (h *boundedHandle) Write(v uint64) { h.b.Write(h.p, v) }
func (h *boundedHandle) Read() uint64   { return h.b.Read(h.p) }
