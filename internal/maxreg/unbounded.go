package maxreg

import (
	"fmt"
	"math/bits"

	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// BoundedMaxReg is the plug-in point of the unbounded construction: any
// linearizable bounded max register (the exact tree of this package, or the
// k-multiplicative-accurate register of internal/core) can back each epoch.
type BoundedMaxReg interface {
	Write(p *prim.Proc, v uint64)
	Read(p *prim.Proc) uint64
}

// BoundedFactory builds a bounded max register for the domain {0..size-1}.
type BoundedFactory func(f *prim.Factory, size uint64) (BoundedMaxReg, error)

// ExactFactory builds the exact tree-based register of this package.
func ExactFactory(f *prim.Factory, size uint64) (BoundedMaxReg, error) {
	return NewBounded(f, size)
}

// maxEpochs covers every uint64 value: epoch e holds values in
// [2^e, 2^(e+1)).
const maxEpochs = 64

// Unbounded lifts a bounded max register to the full uint64 domain,
// realizing the "plug-in" extension the paper sketches via Baig et al. [9]
// (whose exact construction is not reproduced in the paper's text; see
// DESIGN.md for the substitution).
//
// Values are split into epochs by bit length: epoch e stores offsets
// v - 2^e of values v in [2^e, 2^(e+1)) in a bounded register of size 2^e.
// A small *exact* bounded max register T (domain {0..64}) tracks 1 + the
// highest epoch ever written; T is written after the epoch register, so a
// reader that sees T = e+1 finds a value of at least 2^e already present in
// epoch e. Reads return 2^e + R_e.Read() for e = T.Read()-1, which
// dominates every write completed before the read began: smaller-epoch
// values are below 2^e, same-epoch values are dominated by the epoch
// register's own max semantics.
//
// Step complexity per operation: O(log 64) for T plus one bounded-register
// operation on an epoch of size 2^e, i.e. O(log v) with the exact plug-in
// and O(log2 log_k v) with the k-multiplicative plug-in — the
// sub-logarithmic behaviour measured in experiment E8.
type Unbounded struct {
	top     *Bounded // exact, domain {0..maxEpochs}: 0 = never written
	epochs  [maxEpochs]BoundedMaxReg
	skipped int // epochs of size 1 (epoch 0 holds only value 1)
}

var _ object.MaxReg = (*Unbounded)(nil)

// NewUnbounded creates an unbounded max register whose epochs are built by
// mk. Epoch registers are created eagerly in epoch order so simulated
// replays assign deterministic object IDs.
func NewUnbounded(f *prim.Factory, mk BoundedFactory) (*Unbounded, error) {
	top, err := NewBounded(f, maxEpochs+1)
	if err != nil {
		return nil, err
	}
	u := &Unbounded{top: top}
	for e := 0; e < maxEpochs; e++ {
		size := epochSize(e)
		if size <= 1 {
			// Epoch 0 holds only the value 1 (offset 0); no register needed.
			u.epochs[e] = nil
			continue
		}
		r, err := mk(f, size)
		if err != nil {
			return nil, fmt.Errorf("maxreg: building epoch %d: %w", e, err)
		}
		u.epochs[e] = r
	}
	return u, nil
}

// epochSize returns the offset-domain size of epoch e ({0..2^e - 1}).
func epochSize(e int) uint64 {
	if e >= 64 {
		return 0
	}
	return uint64(1) << uint(e)
}

// epochOf returns the epoch of value v >= 1: floor(log2 v).
func epochOf(v uint64) int { return bits.Len64(v) - 1 }

// Write records v.
func (u *Unbounded) Write(p *prim.Proc, v uint64) {
	if v == 0 {
		return // 0 is the initial value; a no-op write.
	}
	e := epochOf(v)
	if r := u.epochs[e]; r != nil {
		r.Write(p, v-(uint64(1)<<uint(e)))
	}
	u.top.Write(p, uint64(e)+1)
}

// Read returns the maximum value written so far, up to the accuracy of the
// plugged-in epoch registers (exact plug-in gives an exact unbounded max
// register; k-multiplicative plug-in errs by at most a factor k).
func (u *Unbounded) Read(p *prim.Proc) uint64 {
	t := u.top.Read(p)
	if t == 0 {
		return 0
	}
	e := int(t - 1)
	base := uint64(1) << uint(e)
	if r := u.epochs[e]; r != nil {
		return base + r.Read(p)
	}
	return base
}

type unboundedHandle struct {
	u *Unbounded
	p *prim.Proc
}

// MaxRegHandle implements object.MaxReg.
func (u *Unbounded) MaxRegHandle(p *prim.Proc) object.MaxRegHandle {
	return &unboundedHandle{u: u, p: p}
}

func (h *unboundedHandle) Write(v uint64) { h.u.Write(h.p, v) }
func (h *unboundedHandle) Read() uint64   { return h.u.Read(h.p) }
