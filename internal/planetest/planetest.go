// Package planetest holds the test-support helpers shared by the
// backend plane's envelope sweeps: the deterministic per-component value
// sequences that internal/shard's property tests and the public
// conformance tests both drive, together with the window-hull reasoning
// the concurrent checkers rely on. Keeping them here means the elision
// semantics and the hull argument are encoded once.
package planetest

import "sort"

// SeqValue is the value a component's writer writes at op j. The
// monotone sequence is the identity; the mixed one doubles it with a
// periodic downward dip (an always-flushed move under component
// elision), so its reachable values over any op window have the simple
// hull Window computes.
func SeqValue(j uint64, mixed bool) uint64 {
	if !mixed {
		return j
	}
	if j%5 == 0 {
		return j // dip: an always-flushed downward move
	}
	return 2 * j
}

// Window returns bounds [vmin, vmax] on the values SeqValue can take
// over ops [a, b]: tight for the monotone sequence, the conservative
// hull [a, 2b] for the mixed one (SeqValue(j) is always in [j, 2j], so
// no replay of the sequence is needed). A concurrent checker passes the
// component's completed-op count before its read as a and its
// started-op count after as b.
func Window(a, b uint64, mixed bool) (vmin, vmax uint64) {
	if !mixed {
		return a, b
	}
	return a, 2 * b
}

// ExactRef is the brute-force reference for histogram checks: the
// sorted multiset of every observation a workload made, with exact rank
// and quantile lookups. Both internal/histogram's engine tests and the
// public conformance sweep verify quiescent query answers against it,
// so the rank convention is encoded once.
type ExactRef struct {
	sorted []uint64
	sum    uint64
}

// NewExactRef copies and sorts the observed values.
func NewExactRef(values []uint64) *ExactRef {
	r := &ExactRef{sorted: append([]uint64(nil), values...)}
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i] < r.sorted[j] })
	for _, v := range values {
		r.sum += v
	}
	return r
}

// Rank returns A(v): the number of observations with value <= v.
func (r *ExactRef) Rank(v uint64) uint64 {
	return uint64(sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i] > v }))
}

// At returns the value of rank i (1-based).
func (r *ExactRef) At(i uint64) uint64 { return r.sorted[i-1] }

// Sum returns the exact sum of the observations.
func (r *ExactRef) Sum() uint64 { return r.sum }
