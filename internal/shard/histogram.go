package shard

import (
	"time"

	"approxobj/internal/histogram"
	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/satmath"
	"approxobj/internal/telemetry"
)

// HistBackend constructs one shard's underlying bucket-count vector and
// declares its per-shard accuracy envelope. The vector itself is exact
// in the rank domain — all approximation in the value domain comes from
// the bucket layout the query layer rounds through — so the backend's
// declared Mult is the rounding factor of that layout, carried here so
// plane.Bounds composes the full (value rounding, rank staleness)
// envelope in one place.
type HistBackend = backend[object.Hist]

// BucketHistBackend builds the exact bucket-count vector over `buckets`
// buckets per shard and declares the value-domain rounding factor k of
// the layout the buckets were derived from (k = 1 when the layout is
// the exact bucket-per-value table).
func BucketHistBackend(buckets int) HistBackend {
	return HistBackend{
		meta: meta{name: "buckets", mult: kIdentity},
		make: func(f *prim.Factory, _ uint64) (object.Hist, error) {
			return histogram.NewVector(f, buckets)
		},
	}
}

// HistOption configures a sharded histogram.
type HistOption func(*histConfig)

type histConfig struct {
	shards    int
	batch     int
	backend   func(buckets int) HistBackend
	readStale time.Duration
	tel       *telemetry.Sink
}

// HistShards sets the shard count S (default 1). Observations spread
// across shards by handle affinity — handle i's additions land in shard
// i mod S — and a query read sums each bucket over the shards. Per-shard
// bucket counts are exact, so the sum recovers the unsharded counts and
// the envelope does not widen with S.
func HistShards(s int) HistOption { return func(c *histConfig) { c.shards = s } }

// HistBatch sets the per-handle observation buffer B (default 1,
// unbuffered): a handle accumulates per-bucket counts locally and
// flushes them all once B observations are pending, so at most B-1
// observations per handle are invisible to readers between flushes.
// Histogram.Bounds reports the system-wide headroom (B-1)*n as the
// Buffer term.
func HistBatch(b int) HistOption { return func(c *histConfig) { c.batch = b } }

// WithHistBackend selects the per-shard vector implementation (default
// BucketHistBackend).
func WithHistBackend(mk func(buckets int) HistBackend) HistOption {
	return func(c *histConfig) { c.backend = mk }
}

// HistReadCache enables the read-combiner tier (default off): bucket
// reads serve a pre-combined bucket vector at most d old in O(buckets)
// — independent of S — instead of summing S shard vectors, at the cost
// of the Stale term in Bounds. The histogram's LAST slot is reserved
// for the background combiner goroutine (so n must be >= 2); stop it
// with Close.
func HistReadCache(d time.Duration) HistOption {
	return func(c *histConfig) { c.readStale = d }
}

// HistTelemetry attaches an internal telemetry sink (see Telemetry).
func HistTelemetry(s *telemetry.Sink) HistOption {
	return func(c *histConfig) { c.tel = s }
}

// histogramPolicy is the histogram's row of the plane: reads sum the
// shards per bucket (exact per-shard counts, so nothing widens), and
// handles batch whole observations (so the B-1 staleness scales with the
// handle count, like the counter's).
var histogramPolicy = policy{
	combine:               "per-bucket sum",
	buffer:                bucketBatching,
	bufferScalesWithProcs: true,
}

// sumBuckets merges two per-shard bucket reads element-wise
// (saturating): bucket j's combined count is the sum of its per-shard
// counts.
func sumBuckets(acc, next []uint64) []uint64 {
	for i, v := range next {
		acc[i] = satmath.Add(acc[i], v)
	}
	return acc
}

// Histogram is the sharded bucket-count vector: S shards of exact
// per-bucket counts, summed per bucket by readers. It is the runtime
// substrate of the histogram family — the bucket layout and the query
// engine live in internal/histogram and the public layer; this type
// moves bucket additions and merged reads. Create handles with Handle;
// the zero value is not usable.
type Histogram struct {
	p       *plane[object.Hist, object.HistHandle, []uint64]
	buckets int
	// bufs pools each slot's bucketBatching buffer (see bucketBuf):
	// re-created handles for a slot inherit its pending counts instead
	// of stranding them, and acquire stops allocating the vector.
	bufs []*bucketBuf
}

// NewHistogram creates a sharded histogram over `buckets` buckets for n
// process slots with value-rounding factor k (declared, not applied —
// the caller's bucket layout already rounds), configured by opts. Each
// shard is built over its own n-slot prim.Factory, so any handle can
// read every shard.
func NewHistogram(n int, k uint64, buckets int, opts ...HistOption) (*Histogram, error) {
	cfg := histConfig{shards: 1, batch: 1, backend: BucketHistBackend}
	for _, opt := range opts {
		opt(&cfg)
	}
	p, err := newPlane(n, k, cfg.shards, cfg.batch, cfg.readStale, cfg.tel, cfg.backend(buckets), histogramPolicy,
		func(o object.Hist, pr *prim.Proc) object.HistHandle { return o.HistHandle(pr) },
		sumBuckets, object.HistHandle.ReadInto, newVecReadCache,
	)
	if err != nil {
		return nil, err
	}
	return &Histogram{p: p, buckets: buckets, bufs: make([]*bucketBuf, n)}, nil
}

// N returns the number of process slots.
func (hg *Histogram) N() int { return hg.p.N() }

// K returns the declared value-rounding factor.
func (hg *Histogram) K() uint64 { return hg.p.K() }

// Shards returns the shard count S.
func (hg *Histogram) Shards() int { return hg.p.Shards() }

// Batch returns the per-handle observation buffer B (1 means
// unbuffered).
func (hg *Histogram) Batch() uint64 { return hg.p.Batch() }

// Buckets returns the number of buckets.
func (hg *Histogram) Buckets() int { return hg.buckets }

// Backend returns the configured backend.
func (hg *Histogram) Backend() HistBackend { return hg.p.be }

// ReadCache returns the read-cache staleness window (0 when off).
func (hg *Histogram) ReadCache() time.Duration { return hg.p.ReadCache() }

// Close stops the read cache's background combiner goroutine, if any.
// Idempotent; handles stay usable (cached reads refresh inline).
func (hg *Histogram) Close() { hg.p.Close() }

// Bounds returns the combined read envelope: Mult is the declared
// value-domain rounding factor k (sharding adds nothing — per-shard
// bucket counts are exact and sum over a partition), and Buffer is the
// observation-batching headroom (B-1)*n in the rank domain (every
// handle's buffer can be stale at once, as for counters). The two terms
// live in different domains: Mult bounds how far a query's answer value
// may round, Buffer bounds how many observations a query may miss.
func (hg *Histogram) Bounds() Bounds { return hg.p.Bounds() }

// BaseObjects returns the number of base objects allocated across all
// shards — the histogram's space cost in the paper's model.
func (hg *Histogram) BaseObjects() uint64 { return hg.p.BaseObjects() }

// Handle binds process slot i (0 <= i < n) to the histogram. The handle
// adds to shard i mod S and reads all shards through slot i of each
// shard's factory. Like every handle in this repository it must be used
// by a single goroutine.
func (hg *Histogram) Handle(i int) *HistHandle {
	h := &HistHandle{handleCore: hg.p.newCore(i)}
	if hg.bufs[i] == nil {
		hg.bufs[i] = &bucketBuf{
			vec:     make([]uint64, hg.buckets),
			touched: make([]int, 0, hg.buckets),
		}
	}
	h.buf.bb = hg.bufs[i]
	h.buf.flushBucket = h.home.AddN
	return h
}

// HistHandle is one process's view of the sharded histogram: bucket
// additions (AddN) against its home shard, merged bucket reads
// (Buckets) over all shards, and Flush for draining the observation
// buffer before quiescent reads.
type HistHandle struct {
	handleCore[object.HistHandle, []uint64]
}

// Add adds one observation to bucket b.
func (h *HistHandle) Add(b int) { h.AddN(b, 1) }

// AddN adds d observations to bucket b. With HistBatch(B > 1) the
// additions are buffered locally and flushed — every pending bucket at
// once — when B observations are pending.
func (h *HistHandle) AddN(b int, d uint64) { h.buf.addBucket(b, d) }

// Buckets returns the merged per-bucket counts: one read of every
// shard, summed per bucket. Each bucket's combined count is inside the
// envelope Histogram.Bounds describes, relative to the regularity
// window of the package comment. The slice is fresh (owned by the
// caller).
func (h *HistHandle) Buckets() []uint64 { return h.Read() }

// BucketsInto is Buckets into a reused buffer: dst is grown (or
// allocated, if nil) as needed and filled with the merged counts.
// Per-shard reads land in the handle's scratch buffers, so steady-state
// reads through one handle allocate nothing.
func (h *HistHandle) BucketsInto(dst []uint64) []uint64 { return h.ReadInto(dst) }
