package shard

import (
	goruntime "runtime"
	"sync"
	"testing"
	"time"
)

// hourWindow is long enough that the background rotator never fires
// inside a test: every rotation in this file is forced with Rotate, so
// epoch movement is deterministic.
const hourWindow = time.Hour

func exactCounterOpts(extra ...Option) []Option {
	return append([]Option{WithBackend(AACHBackend())}, extra...)
}

// TestWindowValidation checks the constructor preconditions.
func TestWindowValidation(t *testing.T) {
	if _, err := NewWindowedCounter(2, 1, 0, 4, exactCounterOpts()...); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewWindowedCounter(2, 1, -time.Second, 4, exactCounterOpts()...); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := NewWindowedCounter(2, 1, time.Minute, 1, exactCounterOpts()...); err == nil {
		t.Error("single-epoch window accepted")
	}
	if _, err := NewWindowedCounter(2, 1, time.Minute, 0, exactCounterOpts()...); err == nil {
		t.Error("zero-epoch window accepted")
	}
}

// TestWindowedCounterExpiry drives rotations by hand: writes stay
// visible for epochs-1 further rotations (the live ring) and expire on
// the rotation that evicts their epoch.
func TestWindowedCounterExpiry(t *testing.T) {
	const epochs = 4
	c, err := NewWindowedCounter(2, 1, hourWindow, epochs, exactCounterOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := c.Handle(0)
	for i := 0; i < 10; i++ {
		h.Inc()
	}
	if got := h.Read(); got != 10 {
		t.Fatalf("fresh read = %d, want 10", got)
	}
	// The write epoch stays in the ring for epochs-1 rotations...
	for r := 1; r < epochs; r++ {
		c.Rotate()
		if got := h.Read(); got != 10 {
			t.Fatalf("read after %d rotations = %d, want 10 (epoch still live)", r, got)
		}
	}
	// ...and is evicted by the next one.
	c.Rotate()
	if got := h.Read(); got != 0 {
		t.Fatalf("read after full ring turnover = %d, want 0 (window truncated)", got)
	}
	// The handle keeps working against the fresh epochs.
	h.Inc()
	if got := h.Read(); got != 1 {
		t.Fatalf("read after expiry + new write = %d, want 1", got)
	}
}

// TestWindowedKindsExpireToEmpty checks the same turnover for the other
// kinds: the max register's high-water mark, the snapshot's components,
// and the histogram's buckets all expire to zero/empty.
func TestWindowedKindsExpireToEmpty(t *testing.T) {
	const epochs = 3
	m, err := NewWindowedMaxReg(2, 1, hourWindow, epochs, WithMaxRegBackend(ExactMaxBackend()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	mh := m.Handle(0)
	mh.Write(99)
	s, err := NewWindowedSnapshot(2, 1, hourWindow, epochs, WithSnapshotBackend(ExactSnapshotBackend()))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sh := s.Handle(1)
	sh.Update(7)
	hg, err := NewWindowedHistogram(2, 2, 8, hourWindow, epochs)
	if err != nil {
		t.Fatal(err)
	}
	defer hg.Close()
	hh := hg.Handle(0)
	hh.Add(3)

	if got := mh.Read(); got != 99 {
		t.Fatalf("windowed max = %d, want 99", got)
	}
	if got := sh.Scan(); got[1] != 7 {
		t.Fatalf("windowed scan = %v, want component 1 = 7", got)
	}
	if got := hh.Buckets(); got[3] != 1 {
		t.Fatalf("windowed buckets = %v, want bucket 3 = 1", got)
	}

	for r := 0; r < epochs; r++ {
		m.Rotate()
		s.Rotate()
		hg.Rotate()
	}
	if got := mh.Read(); got != 0 {
		t.Errorf("expired max = %d, want 0", got)
	}
	for i, v := range sh.Scan() {
		if v != 0 {
			t.Errorf("expired scan component %d = %d, want 0", i, v)
		}
	}
	for b, v := range hh.Buckets() {
		if v != 0 {
			t.Errorf("expired bucket %d = %d, want 0", b, v)
		}
	}
}

// TestWindowedZeroObservations checks the empty window: a never-written
// windowed object reads as zero/empty across rotations, not as garbage
// or a panic.
func TestWindowedZeroObservations(t *testing.T) {
	hg, err := NewWindowedHistogram(2, 2, 8, hourWindow, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer hg.Close()
	h := hg.Handle(0)
	for r := 0; r < 6; r++ {
		for b, v := range h.Buckets() {
			if v != 0 {
				t.Fatalf("rotation %d: empty window bucket %d = %d", r, b, v)
			}
		}
		if s := h.Steps(); s == 0 {
			t.Fatalf("rotation %d: reading an empty window took no steps", r)
		}
		hg.Rotate()
	}
}

// TestRotationRacingBatchedWrites is the "never lost" check, run under
// -race in CI: a writer with batched increments races rotations and a
// concurrent reader. At most epochs-1 rotations fire, so only
// pre-filled EMPTY epochs are evicted — every write stays in the live
// ring, landing in the epoch current when the writer resolved the ring
// or an adjacent newer one. After quiescence and a flush, the windowed
// read must equal the write count exactly (exact backend).
func TestRotationRacingBatchedWrites(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			const (
				epochs = 8
				incs   = 20_000
			)
			opts := exactCounterOpts(Batch(16))
			if cached {
				opts = append(opts, ReadCache(time.Millisecond))
			}
			c, err := NewWindowedCounter(3, 1, hourWindow, epochs, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			w := c.Handle(0)
			r := c.Handle(1)
			var wg sync.WaitGroup
			start := make(chan struct{})
			stopRead := make(chan struct{})

			wg.Add(1)
			go func() { // writer: batched increments racing rotation
				defer wg.Done()
				<-start
				for i := 0; i < incs; i++ {
					w.Inc()
				}
			}()
			wg.Add(1)
			go func() { // rotator: at most epochs-1 rotations, so no write-bearing epoch is evicted
				defer wg.Done()
				<-start
				for i := 0; i < epochs-1; i++ {
					c.Rotate()
					time.Sleep(time.Millisecond)
				}
			}()
			readDone := make(chan struct{})
			go func() { // reader: windowed (and possibly cached) reads racing both
				defer close(readDone)
				<-start
				for {
					select {
					case <-stopRead:
						return
					default:
					}
					if got := r.Read(); got > incs {
						t.Errorf("mid-race read %d exceeds total writes %d", got, incs)
						return
					}
				}
			}()

			close(start)
			wg.Wait()
			close(stopRead)
			<-readDone

			w.Flush()
			if cached {
				// Let every live epoch's cache window lapse so the final
				// read cannot serve a pre-flush cell.
				time.Sleep(5 * time.Millisecond)
			}
			if got := r.Read(); got != incs {
				t.Fatalf("quiescent windowed read = %d, want exactly %d (writes lost or duplicated)", got, incs)
			}
		})
	}
}

// TestRotationRacingElidedSnapshotUpdates runs the same never-lost
// shape for the snapshot kind, whose buffer policy (component elision)
// holds a pending VALUE rather than a count: after the race and a
// flush, the component must read its high-water mark.
func TestRotationRacingElidedSnapshotUpdates(t *testing.T) {
	const (
		epochs  = 6
		updates = 10_000
	)
	s, err := NewWindowedSnapshot(3, 1, hourWindow, epochs,
		WithSnapshotBackend(ExactSnapshotBackend()), SnapshotBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Handle(0)
	r := s.Handle(1)
	var wg sync.WaitGroup
	start := make(chan struct{})
	stopRead := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 1; i <= updates; i++ {
			w.Update(uint64(i))
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < epochs-1; i++ {
			s.Rotate()
			time.Sleep(time.Millisecond)
		}
	}()
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		<-start
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			if got := r.Scan()[0]; got > updates {
				t.Errorf("mid-race component read %d exceeds high-water mark %d", got, updates)
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	close(stopRead)
	<-readDone
	w.Flush()
	if got := r.Scan()[0]; got != updates {
		t.Fatalf("quiescent component = %d, want high-water mark %d", got, updates)
	}
}

// TestWindowedStepsMonotone checks the Steps contract across rebinds:
// rotation drops per-epoch handles, but the window handle accumulates
// their steps, so Steps never goes backwards.
func TestWindowedStepsMonotone(t *testing.T) {
	c, err := NewWindowedCounter(2, 1, hourWindow, 3, exactCounterOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := c.Handle(0)
	var last uint64
	for r := 0; r < 10; r++ {
		h.Inc()
		h.Read()
		if s := h.Steps(); s < last {
			t.Fatalf("rotation %d: Steps went backwards %d -> %d", r, last, s)
		} else {
			last = s
		}
		c.Rotate()
	}
	if last == 0 {
		t.Fatal("Steps stayed zero through writes and reads")
	}
}

// TestWindowReset checks the reset semantics: the whole window
// restarts, the object stays usable, and the ring keeps rotating
// afterwards.
func TestWindowReset(t *testing.T) {
	c, err := NewWindowedCounter(2, 1, hourWindow, 4, exactCounterOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := c.Handle(0)
	for i := 0; i < 5; i++ {
		h.Inc()
	}
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := h.Read(); got != 0 {
		t.Fatalf("read after Reset = %d, want 0", got)
	}
	h.Inc()
	if got := h.Read(); got != 1 {
		t.Fatalf("read after Reset + Inc = %d, want 1", got)
	}
	c.Rotate()
	if got := h.Read(); got != 1 {
		t.Fatalf("read after Reset + Inc + rotate = %d, want 1", got)
	}
}

// TestWindowCloseFreezes pins the post-Close contract: reads keep
// returning the last value (no further aging), writes still land,
// Rotate is a no-op, Reset errors, and Close is idempotent.
func TestWindowCloseFreezes(t *testing.T) {
	c, err := NewWindowedCounter(2, 1, hourWindow, 4, exactCounterOpts(ReadCache(time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Handle(0)
	for i := 0; i < 7; i++ {
		h.Inc()
	}
	c.Close()
	c.Close() // idempotent
	time.Sleep(2 * time.Millisecond)
	if got := h.Read(); got != 7 { // cached cell expired; inline refresh post-close
		t.Fatalf("read after Close = %d, want frozen 7", got)
	}
	c.Rotate() // frozen: must not age anything out
	if got := h.Read(); got != 7 {
		t.Fatalf("read after post-Close Rotate = %d, want 7", got)
	}
	if err := c.Reset(); err == nil {
		t.Fatal("Reset after Close succeeded, want frozen-window error")
	}
	h.Inc()                          // draining writers still land in the frozen epoch
	time.Sleep(2 * time.Millisecond) // let the cached cell lapse so the read refreshes inline
	if got := h.Read(); got != 8 {
		t.Fatalf("read after post-Close Inc = %d, want 8", got)
	}
}

// TestWindowCloseStopsGoroutines checks that Close leaves no rotator or
// combiner goroutine behind, even with read caches on every epoch.
func TestWindowCloseStopsGoroutines(t *testing.T) {
	before := goruntime.NumGoroutine()
	for i := 0; i < 8; i++ {
		c, err := NewWindowedCounter(2, 1, time.Second, 4, exactCounterOpts(ReadCache(time.Millisecond))...)
		if err != nil {
			t.Fatal(err)
		}
		h := c.Handle(0)
		h.Inc()
		h.Read()
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		goruntime.GC()
		if goruntime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close of every window", before, goruntime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWindowedBoundsComposition checks the envelope algebra: Add scales
// by the epoch count for sum-combining kinds only, Buffer stays the
// per-epoch value (pending mutations live in at most one epoch), and
// the Window term is d/epochs.
func TestWindowedBoundsComposition(t *testing.T) {
	const epochs = 5
	base, err := New(2, 8, WithBackend(AdditiveBackend()), Shards(2), Batch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	wc, err := NewWindowedCounter(2, 8, hourWindow, epochs, WithBackend(AdditiveBackend()), Shards(2), Batch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	eb, wb := base.Bounds(), wc.Bounds()
	if wb.Add != eb.Add*epochs {
		t.Errorf("windowed Add = %d, want per-epoch %d x %d epochs", wb.Add, eb.Add, epochs)
	}
	if wb.Buffer != eb.Buffer {
		t.Errorf("windowed Buffer = %d, want per-epoch %d (no widening)", wb.Buffer, eb.Buffer)
	}
	if wb.Mult != eb.Mult {
		t.Errorf("windowed Mult = %d, want per-epoch %d", wb.Mult, eb.Mult)
	}
	if want := hourWindow / epochs; wb.Window != want {
		t.Errorf("Window term = %v, want d/epochs = %v", wb.Window, want)
	}
	if wb.IsExact() {
		t.Error("windowed additive envelope reports exact")
	}

	// Max registers partition instead of summing: nothing widens.
	m, err := NewWindowedMaxReg(2, 2, hourWindow, epochs, WithMaxRegBackend(MultMaxBackend()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bm, err := NewMaxReg(2, 2, WithMaxRegBackend(MultMaxBackend()))
	if err != nil {
		t.Fatal(err)
	}
	defer bm.Close()
	if wmb, emb := m.Bounds(), bm.Bounds(); wmb.Add != emb.Add || wmb.Mult != emb.Mult || wmb.Buffer != emb.Buffer {
		t.Errorf("windowed max-register envelope %+v differs from per-epoch %+v beyond the Window term", wmb, emb)
	}
}
