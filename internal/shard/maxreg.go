package shard

import (
	"fmt"
	"time"

	"approxobj/internal/core"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/telemetry"
)

// MaxRegBackend constructs one shard's underlying max register and
// declares its per-shard accuracy envelope. The four backends cover the
// repository's max-register families: the exact bounded tree of [8], the
// exact unbounded epoch construction, and the paper's Algorithm 2
// (k-multiplicative), bounded and unbounded. A backend's bound (writes
// must be < m, 0 for unbounded) is checked by the handle before elision,
// so an out-of-range write panics even when it would otherwise be elided.
type MaxRegBackend = backend[object.MaxReg]

// ExactMaxBackend shards the exact unbounded max register (the epoch
// construction over the tree of [8]): the max over shards is exact.
func ExactMaxBackend() MaxRegBackend {
	return MaxRegBackend{
		meta: meta{name: "exact-unbounded"},
		make: func(f *prim.Factory, _ uint64) (object.MaxReg, error) {
			return maxreg.NewUnbounded(f, maxreg.ExactFactory)
		},
	}
}

// ExactBoundedMaxBackend shards the exact m-bounded tree register of [8]:
// worst-case ceil(log2 m) steps per shard operation, exact reads.
func ExactBoundedMaxBackend(m uint64) MaxRegBackend {
	return MaxRegBackend{
		meta: meta{name: "exact-bounded", bound: m},
		make: func(f *prim.Factory, _ uint64) (object.MaxReg, error) {
			return maxreg.NewBounded(f, m)
		},
	}
}

// MultMaxBackend shards the unbounded k-multiplicative register (Algorithm
// 2 plugged into the epoch construction): each shard is k-accurate, and so
// is the max.
func MultMaxBackend() MaxRegBackend {
	return MaxRegBackend{
		meta: meta{name: "mult-unbounded", mult: kIdentity},
		make: func(f *prim.Factory, k uint64) (object.MaxReg, error) {
			return core.NewKMultUnboundedMaxReg(f, k)
		},
	}
}

// MultBoundedMaxBackend shards the paper's Algorithm 2 (core.KMultMaxReg):
// k-multiplicative m-bounded, O(min(log2 log_k m, n)) worst-case steps per
// shard operation.
func MultBoundedMaxBackend(m uint64) MaxRegBackend {
	return MaxRegBackend{
		meta: meta{name: "mult-bounded", bound: m, mult: kIdentity},
		make: func(f *prim.Factory, k uint64) (object.MaxReg, error) {
			return core.NewKMultMaxReg(f, m, k)
		},
	}
}

// MaxRegOption configures a sharded max register.
type MaxRegOption func(*maxRegConfig)

type maxRegConfig struct {
	shards    int
	batch     int
	backend   MaxRegBackend
	readStale time.Duration
	tel       *telemetry.Sink
}

// MaxRegShards sets the shard count S (default 1). Writes spread across
// shards by handle affinity; reads cost one underlying read per shard and
// take the max — which, unlike the counter's sum, composes with NO
// envelope widening for any backend (see the package comment).
func MaxRegShards(s int) MaxRegOption { return func(c *maxRegConfig) { c.shards = s } }

// MaxRegBatch sets the per-handle write-elision window B (default 1). A
// handle remembers the last value it flushed to its home shard and elides
// — skips entirely, touching no shared memory — any write within B-1 of
// it (writes at or below the flushed value are always elided: the shard
// already holds a value at least as large, so they cost nothing at any
// B). The highest elided value is kept locally and published by Flush, so
// readers lag the true maximum by at most B-1; MaxReg.Bounds reports that
// headroom as the Buffer term.
func MaxRegBatch(b int) MaxRegOption { return func(c *maxRegConfig) { c.batch = b } }

// WithMaxRegBackend selects the per-shard max-register implementation
// (default ExactMaxBackend).
func WithMaxRegBackend(b MaxRegBackend) MaxRegOption {
	return func(c *maxRegConfig) { c.backend = b }
}

// MaxRegReadCache enables the read-combiner tier (default off): reads
// serve a pre-combined cell at most d old in O(1) instead of taking the
// max over S shard reads, at the cost of the Stale term in Bounds. The
// register's LAST slot is reserved for the background combiner
// goroutine (so n must be >= 2); stop it with Close.
func MaxRegReadCache(d time.Duration) MaxRegOption {
	return func(c *maxRegConfig) { c.readStale = d }
}

// MaxRegTelemetry attaches an internal telemetry sink (see Telemetry).
func MaxRegTelemetry(s *telemetry.Sink) MaxRegOption {
	return func(c *maxRegConfig) { c.tel = s }
}

// maxRegPolicy is the max register's row of the plane: reads take the
// max over shards (no envelope widening — the max over shards is the
// global max), and handles elide writes (the B-1 staleness lives in the
// ONE handle holding the maximum, so it does not scale with n).
var maxRegPolicy = policy{
	combine: "max",
	buffer:  writeElision,
}

// maxOf is the max register's combine.
func maxOf(a, b uint64) uint64 {
	if b > a {
		return b
	}
	return a
}

// MaxReg is the sharded max register: S independently accurate shards
// combined by taking the max. Create handles with Handle; the zero value
// is not usable.
type MaxReg struct {
	p *plane[object.MaxReg, object.MaxRegHandle, uint64]
}

// NewMaxReg creates a sharded max register for n process slots with
// accuracy parameter k (ignored by exact backends), configured by opts.
// Each shard is built over its own n-slot prim.Factory, so any handle can
// read every shard.
func NewMaxReg(n int, k uint64, opts ...MaxRegOption) (*MaxReg, error) {
	cfg := maxRegConfig{shards: 1, batch: 1, backend: ExactMaxBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	p, err := newPlane(n, k, cfg.shards, cfg.batch, cfg.readStale, cfg.tel, cfg.backend, maxRegPolicy,
		func(o object.MaxReg, pr *prim.Proc) object.MaxRegHandle { return o.MaxRegHandle(pr) },
		maxOf, nil, newScalarReadCache,
	)
	if err != nil {
		return nil, err
	}
	return &MaxReg{p: p}, nil
}

// N returns the number of process slots.
func (m *MaxReg) N() int { return m.p.N() }

// K returns the accuracy parameter passed to the backend.
func (m *MaxReg) K() uint64 { return m.p.K() }

// Shards returns the shard count S.
func (m *MaxReg) Shards() int { return m.p.Shards() }

// Batch returns the per-handle write-elision window B (1 means every
// value-raising write is flushed immediately).
func (m *MaxReg) Batch() uint64 { return m.p.Batch() }

// Backend returns the configured backend.
func (m *MaxReg) Backend() MaxRegBackend { return m.p.be }

// ReadCache returns the read-cache staleness window (0 when off).
func (m *MaxReg) ReadCache() time.Duration { return m.p.ReadCache() }

// Close stops the read cache's background combiner goroutine, if any.
// Idempotent; handles stay usable (cached reads refresh inline).
func (m *MaxReg) Close() { m.p.Close() }

// Bounds returns the combined read envelope for this configuration:
// Mult is the backend's per-shard factor (sharding adds nothing — the max
// over shards is the global max), and Buffer is the write-elision
// headroom B-1. Unlike counter batching, the headroom is per handle, NOT
// multiplied by n: the true maximum is held by one handle, whose flushed
// value trails it by at most B-1.
func (m *MaxReg) Bounds() Bounds { return m.p.Bounds() }

// BaseObjects returns the number of base objects allocated across all
// shards — the register's space cost in the paper's model.
func (m *MaxReg) BaseObjects() uint64 { return m.p.BaseObjects() }

// Handle binds process slot i (0 <= i < n) to the register. The handle
// writes to shard i mod S and reads all shards through slot i of each
// shard's factory. Like every handle in this repository it must be used
// by a single goroutine.
func (m *MaxReg) Handle(i int) *MaxRegHandle {
	h := &MaxRegHandle{handleCore: m.p.newCore(i), bound: m.p.be.bound}
	h.buf.flush = h.home.Write
	return h
}

// MaxRegHandle is one process's view of the sharded max register. It
// satisfies the public MaxRegisterHandle interface (Write, Read, Steps)
// and adds Flush for publishing elided writes before quiescent reads;
// Read takes the max over one read of every shard.
type MaxRegHandle struct {
	handleCore[object.MaxRegHandle, uint64]
	bound uint64
}

var _ object.MaxRegHandle = (*MaxRegHandle)(nil)

// Write records v. Writes at or below the handle's last flushed value are
// always elided for free (the home shard already holds at least that
// much); with MaxRegBatch(B > 1), writes within B-1 above it are elided
// too, kept locally as the pending maximum until a larger write or Flush
// publishes them. On bounded backends, v >= m panics regardless of
// elision, like an out-of-range slice index.
func (h *MaxRegHandle) Write(v uint64) {
	if h.bound > 0 && v >= h.bound {
		panic(fmt.Sprintf("shard: write %d out of range of %d-bounded max register", v, h.bound))
	}
	h.buf.add(v)
}
