package shard

import (
	"fmt"

	"approxobj/internal/core"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// MaxRegBackend constructs one shard's underlying max register and
// declares its per-shard accuracy envelope. The four backends cover the
// repository's max-register families: the exact bounded tree of [8], the
// exact unbounded epoch construction, and the paper's Algorithm 2
// (k-multiplicative), bounded and unbounded.
type MaxRegBackend struct {
	name string
	// bound is the value bound m (writes must be < m), 0 for unbounded
	// backends. The runtime checks it before elision so an out-of-range
	// write panics even when it would otherwise be elided.
	bound uint64
	// mult is the per-shard multiplicative accuracy for parameter k
	// (1 for exact backends).
	mult func(k uint64) uint64
	// make builds the shard over its own factory.
	make func(f *prim.Factory, k uint64) (object.MaxReg, error)
}

// Name returns the backend's name (for tables and error messages).
func (b MaxRegBackend) Name() string { return b.name }

// Bound returns the backend's value bound m, or 0 for unbounded backends.
func (b MaxRegBackend) Bound() uint64 { return b.bound }

// ExactMaxBackend shards the exact unbounded max register (the epoch
// construction over the tree of [8]): the max over shards is exact.
func ExactMaxBackend() MaxRegBackend {
	return MaxRegBackend{
		name: "exact-unbounded",
		mult: func(uint64) uint64 { return 1 },
		make: func(f *prim.Factory, _ uint64) (object.MaxReg, error) {
			return maxreg.NewUnbounded(f, maxreg.ExactFactory)
		},
	}
}

// ExactBoundedMaxBackend shards the exact m-bounded tree register of [8]:
// worst-case ceil(log2 m) steps per shard operation, exact reads.
func ExactBoundedMaxBackend(m uint64) MaxRegBackend {
	return MaxRegBackend{
		name:  "exact-bounded",
		bound: m,
		mult:  func(uint64) uint64 { return 1 },
		make: func(f *prim.Factory, _ uint64) (object.MaxReg, error) {
			return maxreg.NewBounded(f, m)
		},
	}
}

// MultMaxBackend shards the unbounded k-multiplicative register (Algorithm
// 2 plugged into the epoch construction): each shard is k-accurate, and so
// is the max.
func MultMaxBackend() MaxRegBackend {
	return MaxRegBackend{
		name: "mult-unbounded",
		mult: func(k uint64) uint64 { return k },
		make: func(f *prim.Factory, k uint64) (object.MaxReg, error) {
			return core.NewKMultUnboundedMaxReg(f, k)
		},
	}
}

// MultBoundedMaxBackend shards the paper's Algorithm 2 (core.KMultMaxReg):
// k-multiplicative m-bounded, O(min(log2 log_k m, n)) worst-case steps per
// shard operation.
func MultBoundedMaxBackend(m uint64) MaxRegBackend {
	return MaxRegBackend{
		name:  "mult-bounded",
		bound: m,
		mult:  func(k uint64) uint64 { return k },
		make: func(f *prim.Factory, k uint64) (object.MaxReg, error) {
			return core.NewKMultMaxReg(f, m, k)
		},
	}
}

// MaxRegOption configures a sharded max register.
type MaxRegOption func(*maxRegConfig)

type maxRegConfig struct {
	shards  int
	batch   int
	backend MaxRegBackend
}

// MaxRegShards sets the shard count S (default 1). Writes spread across
// shards by handle affinity; reads cost one underlying read per shard and
// take the max — which, unlike the counter's sum, composes with NO
// envelope widening for any backend (see the package comment).
func MaxRegShards(s int) MaxRegOption { return func(c *maxRegConfig) { c.shards = s } }

// MaxRegBatch sets the per-handle write-elision window B (default 1). A
// handle remembers the last value it flushed to its home shard and elides
// — skips entirely, touching no shared memory — any write within B-1 of
// it (writes at or below the flushed value are always elided: the shard
// already holds a value at least as large, so they cost nothing at any
// B). The highest elided value is kept locally and published by Flush, so
// readers lag the true maximum by at most B-1; MaxReg.Bounds reports that
// headroom as the Buffer term.
func MaxRegBatch(b int) MaxRegOption { return func(c *maxRegConfig) { c.batch = b } }

// WithMaxRegBackend selects the per-shard max-register implementation
// (default ExactMaxBackend).
func WithMaxRegBackend(b MaxRegBackend) MaxRegOption {
	return func(c *maxRegConfig) { c.backend = b }
}

// MaxReg is the sharded max register: S independently accurate shards
// combined by taking the max. Create handles with Handle; the zero value
// is not usable.
type MaxReg struct {
	rt      *runtime[object.MaxReg]
	k       uint64
	batch   uint64
	backend MaxRegBackend
}

// NewMaxReg creates a sharded max register for n process slots with
// accuracy parameter k (ignored by exact backends), configured by opts.
// Each shard is built over its own n-slot prim.Factory, so any handle can
// read every shard.
func NewMaxReg(n int, k uint64, opts ...MaxRegOption) (*MaxReg, error) {
	cfg := maxRegConfig{shards: 1, batch: 1, backend: ExactMaxBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.batch < 1 {
		return nil, errBatch(cfg.batch)
	}
	// Legal writes satisfy v < m, so the largest is m-1: an elision window
	// of B-1 >= m-1 (i.e. B >= m) would swallow every legal write.
	if cfg.backend.bound > 0 && uint64(cfg.batch) >= cfg.backend.bound {
		return nil, fmt.Errorf("shard: batch %d exceeds the %d-bounded register's value range", cfg.batch, cfg.backend.bound)
	}
	rt, err := newRuntime(cfg.backend.name, n, cfg.shards, func(f *prim.Factory) (object.MaxReg, error) {
		return cfg.backend.make(f, k)
	})
	if err != nil {
		return nil, err
	}
	return &MaxReg{rt: rt, k: k, batch: uint64(cfg.batch), backend: cfg.backend}, nil
}

// N returns the number of process slots.
func (m *MaxReg) N() int { return m.rt.n }

// K returns the accuracy parameter passed to the backend.
func (m *MaxReg) K() uint64 { return m.k }

// Shards returns the shard count S.
func (m *MaxReg) Shards() int { return len(m.rt.shards) }

// Batch returns the per-handle write-elision window B (1 means every
// value-raising write is flushed immediately).
func (m *MaxReg) Batch() uint64 { return m.batch }

// Backend returns the configured backend.
func (m *MaxReg) Backend() MaxRegBackend { return m.backend }

// Bounds returns the combined read envelope for this configuration:
// Mult is the backend's per-shard factor (sharding adds nothing — the max
// over shards is the global max), and Buffer is the write-elision
// headroom B-1. Unlike counter batching, the headroom is per handle, NOT
// multiplied by n: the true maximum is held by one handle, whose flushed
// value trails it by at most B-1.
func (m *MaxReg) Bounds() Bounds {
	return Bounds{
		Mult:   m.backend.mult(m.k),
		Buffer: m.batch - 1,
	}
}

// Handle binds process slot i (0 <= i < n) to the register. The handle
// writes to shard i mod S and reads all shards through slot i of each
// shard's factory. Like every handle in this repository it must be used
// by a single goroutine.
func (m *MaxReg) Handle(i int) *MaxRegHandle {
	procs := m.rt.slotProcs(i)
	h := &MaxRegHandle{
		m:       m,
		readers: make([]object.MaxRegHandle, len(m.rt.shards)),
		procs:   procs,
	}
	for s := range m.rt.shards {
		h.readers[s] = m.rt.shards[s].MaxRegHandle(procs[s])
	}
	h.home = h.readers[m.rt.home(i)]
	return h
}

// MaxRegHandle is one process's view of the sharded max register. It
// satisfies the public MaxRegisterHandle interface (Write, Read, Steps)
// and adds Flush for publishing elided writes before quiescent reads.
type MaxRegHandle struct {
	m       *MaxReg
	home    object.MaxRegHandle
	readers []object.MaxRegHandle
	procs   []*prim.Proc
	// flushed is the highest value this handle has written through to its
	// home shard; pending the highest elided value above it (0 = none).
	flushed uint64
	pending uint64
}

var _ object.MaxRegHandle = (*MaxRegHandle)(nil)

// Write records v. Writes at or below the handle's last flushed value are
// always elided for free (the home shard already holds at least that
// much); with MaxRegBatch(B > 1), writes within B-1 above it are elided
// too, kept locally as the pending maximum until a larger write or Flush
// publishes them. On bounded backends, v >= m panics regardless of
// elision, like an out-of-range slice index.
func (h *MaxRegHandle) Write(v uint64) {
	if b := h.m.backend.bound; b > 0 && v >= b {
		panic(fmt.Sprintf("shard: write %d out of range of %d-bounded max register", v, b))
	}
	if v <= h.flushed {
		return // subsumed: the home shard already holds >= v
	}
	if v-h.flushed < h.m.batch {
		// Elide: v trails a future flush by at most B-1, the staleness
		// Bounds' Buffer term promises.
		if v > h.pending {
			h.pending = v
		}
		return
	}
	h.home.Write(v)
	h.flushed = v
	h.pending = 0 // pending < flushed + B <= v: subsumed by this write
}

// Flush publishes the pending elided maximum to the home shard. It is a
// no-op when nothing is pending.
func (h *MaxRegHandle) Flush() {
	if h.pending > h.flushed {
		h.home.Write(h.pending)
		h.flushed = h.pending
	}
	h.pending = 0
}

// Read takes the max over one read of every shard. The result is inside
// the envelope MaxReg.Bounds describes, relative to the regularity window
// of the package comment.
func (h *MaxRegHandle) Read() uint64 {
	var max uint64
	for _, r := range h.readers {
		if v := r.Read(); v > max {
			max = v
		}
	}
	return max
}

// Steps returns the shared-memory steps this handle's process slot has
// taken across all shards.
func (h *MaxRegHandle) Steps() uint64 { return stepsOf(h.procs) }

// Pending returns the highest locally elided, not yet flushed value
// (diagnostic; 0 when nothing is pending).
func (h *MaxRegHandle) Pending() uint64 { return h.pending }
