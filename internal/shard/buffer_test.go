package shard

import (
	"reflect"
	"testing"
)

// The buffer is the one piece of the plane every mutation crosses, so
// its policy boundaries are tested table-style here, in-package (the
// type is deliberately unexported): what each policy absorbs, what it
// writes through, and what Flush and Pending report at each edge. The
// scalar policies share one harness; bucketBatching, whose mutations
// are (bucket, count) pairs, has its own below.

// scalarStep is one operation against a scalar-policy buffer: an add
// (or a Flush when flush is true) and the expected observable state
// after it — the values written through to the home shard so far, and
// Pending's report.
type scalarStep struct {
	flush       bool
	v           uint64
	wantFlushed []uint64 // cumulative values passed to the flush func
	wantPending uint64
}

func TestBufferScalarPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy bufferPolicy
		batch  uint64
		steps  []scalarStep
	}{
		{
			// Count batching absorbs B-1 increments and publishes the
			// accumulated count on the Bth; Flush drains any remainder.
			name: "countBatching/accumulate-then-flush", policy: countBatching, batch: 3,
			steps: []scalarStep{
				{v: 1, wantPending: 1},
				{v: 1, wantPending: 2},
				{v: 1, wantFlushed: []uint64{3}}, // pending hits B: one bulk apply
				{v: 2, wantFlushed: []uint64{3}, wantPending: 2},
				{flush: true, wantFlushed: []uint64{3, 2}},
				{flush: true, wantFlushed: []uint64{3, 2}}, // idempotent when empty
			},
		},
		{
			// A single add of d >= B flushes immediately — the buffer
			// never holds more than B-1.
			name: "countBatching/bulk-add-crosses-batch", policy: countBatching, batch: 4,
			steps: []scalarStep{
				{v: 2, wantPending: 2},
				{v: 5, wantFlushed: []uint64{7}},
				{v: 4, wantFlushed: []uint64{7, 4}},
			},
		},
		{
			// Unbuffered (B = 1): every add writes through, nothing is
			// ever pending.
			name: "countBatching/unbuffered", policy: countBatching, batch: 1,
			steps: []scalarStep{
				{v: 1, wantFlushed: []uint64{1}},
				{v: 3, wantFlushed: []uint64{1, 3}},
				{flush: true, wantFlushed: []uint64{1, 3}},
			},
		},
		{
			// Write elision: values at or below the flushed one are
			// subsumed for free; values inside the (B-1)-window above it
			// stay local (maximum pending); the first value AT the window
			// edge writes through. The boundary pair is v = flushed+B-1
			// (the last elidable value) and v = flushed+B (the first
			// write-through).
			name: "writeElision/window-boundary", policy: writeElision, batch: 4,
			steps: []scalarStep{
				{v: 0, wantPending: 0},                           // subsumed: flushed already >= 0
				{v: 3, wantPending: 3},                           // elided: 3 - 0 < B
				{v: 2, wantPending: 3},                           // elided, maximum stays pending
				{v: 3, wantPending: 3},                           // elided: v == flushed+B-1, the window edge
				{v: 4, wantFlushed: []uint64{4}},                 // v - flushed == B: write through, window moves
				{v: 4, wantFlushed: []uint64{4}, wantPending: 0}, // subsumed by the new flushed value
				{v: 7, wantFlushed: []uint64{4}, wantPending: 7}, // elided: 7 == 4+B-1, new window's edge
				{v: 8, wantFlushed: []uint64{4, 8}},              // next window edge crossed
				{flush: true, wantFlushed: []uint64{4, 8}},
			},
		},
		{
			// Flush publishes the pending elided maximum and advances the
			// window — a later smaller value is then subsumed.
			name: "writeElision/flush-publishes-maximum", policy: writeElision, batch: 8,
			steps: []scalarStep{
				{v: 5, wantPending: 5},
				{v: 2, wantPending: 5},
				{flush: true, wantFlushed: []uint64{5}},
				{v: 5, wantFlushed: []uint64{5}, wantPending: 0}, // subsumed: flushed is now 5
				{v: 6, wantFlushed: []uint64{5}, wantPending: 6},
			},
		},
		{
			// Component elision keeps the LATEST value pending (last
			// write wins, unlike the max register's maximum), and any
			// downward move writes through immediately — a stale higher
			// value would overstate the component.
			name: "componentElision/latest-wins-downward-writes-through", policy: componentElision, batch: 4,
			steps: []scalarStep{
				{v: 3, wantPending: 3},           // elided: 3 - 0 < B
				{v: 4, wantFlushed: []uint64{4}}, // v - flushed == B: write through
				{v: 6, wantFlushed: []uint64{4}, wantPending: 6},
				{v: 5, wantFlushed: []uint64{4}, wantPending: 5}, // latest value wins, not highest
				{v: 7, wantFlushed: []uint64{4}, wantPending: 7}, // elided: v == flushed+B-1, the window edge
				{v: 2, wantFlushed: []uint64{4, 2}},              // downward vs flushed 4: always writes through
				{flush: true, wantFlushed: []uint64{4, 2}},
			},
		},
		{
			// Returning exactly to the flushed value cancels the pending
			// elision — the shared component is already correct.
			name: "componentElision/return-to-flushed-cancels", policy: componentElision, batch: 8,
			steps: []scalarStep{
				{v: 4, wantPending: 4},
				{v: 0, wantPending: 0},                           // back at flushed (0): pending superseded
				{flush: true},                                    // nothing dirty: no write
				{v: 7, wantPending: 7},                           // window edge 0+B-1
				{v: 8, wantFlushed: []uint64{8}},                 // first value past the edge
				{v: 8, wantFlushed: []uint64{8}, wantPending: 0}, // at flushed again: cancels, no new write
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var flushed []uint64
			b := buffer{policy: tc.policy, batch: tc.batch, flush: func(v uint64) { flushed = append(flushed, v) }}
			for i, s := range tc.steps {
				if s.flush {
					b.Flush()
				} else {
					b.add(s.v)
				}
				if !reflect.DeepEqual(flushed, s.wantFlushed) {
					t.Fatalf("step %d: flushed %v, want %v", i, flushed, s.wantFlushed)
				}
				if got := b.Pending(); got != s.wantPending {
					t.Fatalf("step %d: Pending() = %d, want %d", i, got, s.wantPending)
				}
			}
		})
	}
}

// bucketStep is one operation against a bucketBatching buffer.
type bucketStep struct {
	flush       bool
	bucket      int
	d           uint64
	wantFlushed map[int]uint64 // cumulative per-bucket counts written through
	wantPending uint64
}

func TestBufferBucketBatching(t *testing.T) {
	for _, tc := range []struct {
		name    string
		batch   uint64
		buckets int
		steps   []bucketStep
	}{
		{
			// The batch counts observations ACROSS buckets: three adds to
			// distinct buckets reach B together and flush every pending
			// bucket at once.
			name: "batch-counts-across-buckets", batch: 3, buckets: 4,
			steps: []bucketStep{
				{bucket: 0, d: 1, wantPending: 1},
				{bucket: 2, d: 1, wantPending: 2},
				{bucket: 3, d: 1, wantFlushed: map[int]uint64{0: 1, 2: 1, 3: 1}},
				// The touched list was reset by the flush: the next adds
				// start a fresh pending set, and the earlier buckets'
				// counts are not replayed.
				{bucket: 1, d: 1, wantPending: 1, wantFlushed: map[int]uint64{0: 1, 2: 1, 3: 1}},
				{bucket: 1, d: 1, wantPending: 2, wantFlushed: map[int]uint64{0: 1, 2: 1, 3: 1}},
				{bucket: 1, d: 1, wantFlushed: map[int]uint64{0: 1, 2: 1, 3: 1, 1: 3}},
			},
		},
		{
			// A bulk add of d >= B flushes immediately; d = 0 is a no-op
			// that must not mark the bucket touched (a later flush would
			// otherwise visit it for nothing).
			name: "bulk-and-zero-adds", batch: 4, buckets: 3,
			steps: []bucketStep{
				{bucket: 1, d: 0, wantPending: 0},
				{bucket: 1, d: 9, wantFlushed: map[int]uint64{1: 9}},
				{bucket: 0, d: 2, wantPending: 2, wantFlushed: map[int]uint64{1: 9}},
				{flush: true, wantFlushed: map[int]uint64{1: 9, 0: 2}},
				{flush: true, wantFlushed: map[int]uint64{1: 9, 0: 2}}, // idempotent when empty
			},
		},
		{
			// Repeated adds to one bucket accumulate in place (the bucket
			// is touched once, not once per add).
			name: "same-bucket-accumulates", batch: 5, buckets: 2,
			steps: []bucketStep{
				{bucket: 0, d: 2, wantPending: 2},
				{bucket: 0, d: 2, wantPending: 4},
				{bucket: 0, d: 2, wantFlushed: map[int]uint64{0: 6}},
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			flushed := map[int]uint64{}
			b := buffer{
				policy: bucketBatching, batch: tc.batch,
				bb:          &bucketBuf{vec: make([]uint64, tc.buckets), touched: make([]int, 0, tc.buckets)},
				flushBucket: func(i int, d uint64) { flushed[i] += d },
			}
			for i, s := range tc.steps {
				if s.flush {
					b.Flush()
				} else {
					b.addBucket(s.bucket, s.d)
				}
				want := s.wantFlushed
				if want == nil {
					want = map[int]uint64{}
				}
				if !reflect.DeepEqual(flushed, want) {
					t.Fatalf("step %d: flushed %v, want %v", i, flushed, want)
				}
				if got := b.Pending(); got != s.wantPending {
					t.Fatalf("step %d: Pending() = %d, want %d", i, got, s.wantPending)
				}
				if b.bb.pending == 0 && len(b.bb.touched) != 0 {
					t.Fatalf("step %d: empty buffer still lists touched buckets %v", i, b.bb.touched)
				}
			}
		})
	}
}
