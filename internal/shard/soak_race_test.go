package shard_test

import (
	"sync"
	"testing"

	"approxobj/internal/shard"
)

// TestShardedConcurrentSoak hammers sharded counters from n real
// goroutines (nil-Gate procs: the production atomic path) across backends,
// shard counts and batch sizes, then asserts the documented combined
// envelope on the final Read — first with handle buffers still loaded
// (full Bounds, including the Buffer term), then after flushing every
// handle (Buffer = 0: the pure shard-composition envelope). Run with -race
// this is the data-race check for the whole shard runtime.
func TestShardedConcurrentSoak(t *testing.T) {
	for _, tc := range []struct {
		name string
		k    uint64
		n    int
		opts []shard.Option
		perG int
	}{
		{name: "mult-1shard", k: 4, n: 8, perG: 10_000},
		{name: "mult-4shards", k: 4, n: 8, opts: []shard.Option{shard.Shards(4)}, perG: 10_000},
		{name: "mult-4shards-batch16", k: 4, n: 8, opts: []shard.Option{shard.Shards(4), shard.Batch(16)}, perG: 10_000},
		{name: "mult-8shards-batch64", k: 8, n: 16, opts: []shard.Option{shard.Shards(8), shard.Batch(64)}, perG: 5_000},
		{name: "aach-4shards", k: 0, n: 8, opts: []shard.Option{shard.Shards(4), shard.WithBackend(shard.AACHBackend())}, perG: 2_000},
		{name: "aach-4shards-batch8", k: 0, n: 8, opts: []shard.Option{shard.Shards(4), shard.Batch(8), shard.WithBackend(shard.AACHBackend())}, perG: 2_000},
		{name: "additive-4shards", k: 64, n: 8, opts: []shard.Option{shard.Shards(4), shard.WithBackend(shard.AdditiveBackend())}, perG: 10_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := shard.New(tc.n, tc.k, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*shard.Handle, tc.n)
			for i := range handles {
				handles[i] = c.Handle(i)
			}
			var wg sync.WaitGroup
			wg.Add(tc.n)
			for i := 0; i < tc.n; i++ {
				h := handles[i]
				go func() {
					defer wg.Done()
					for j := 0; j < tc.perG; j++ {
						h.Inc()
						if j%1000 == 0 {
							h.Read()
						}
					}
				}()
			}
			wg.Wait()

			total := uint64(tc.n * tc.perG)
			bounds := c.Bounds()
			if got := handles[0].Read(); !bounds.Contains(total, got) {
				t.Errorf("pre-flush read %d outside envelope %+v of true count %d", got, bounds, total)
			}
			for _, h := range handles {
				h.Flush()
			}
			bounds.Buffer = 0
			for i, h := range handles {
				if got := h.Read(); !bounds.Contains(total, got) {
					t.Errorf("handle %d: flushed read %d outside envelope %+v of true count %d", i, got, bounds, total)
				}
			}
		})
	}
}
