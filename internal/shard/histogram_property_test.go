package shard_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"approxobj/internal/histogram"
	"approxobj/internal/satmath"
	"approxobj/internal/shard"
)

// runHistogramEnvelopeCheck drives `writers` goroutines, each observing
// the ascending values 1..perG (writer w's op j adds value j to its
// bucket), against a sharded histogram while one dedicated reader checks
// every concurrently merged read against the documented envelope: the
// count and every rank must be inside the rank-domain Buffer slack of
// the regularity window, with the value-domain rounding k applied to the
// rank's value argument. At quiescence after flushing, counts must be
// exact and quantiles inside pure bucket rounding.
func runHistogramEnvelopeCheck(t *testing.T, writers, perG int, k uint64, opts ...shard.HistOption) {
	t.Helper()
	bk, err := histogram.NewBuckets(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := writers + 1 // slot n-1 is the reader
	hg, err := shard.NewHistogram(n, k, bk.N(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	bounds := hg.Bounds()
	if bounds.Mult != k || bounds.Add != 0 {
		t.Fatalf("Bounds = %+v, want Mult %d and Add 0", bounds, k)
	}
	// The count/rank checks live in the rank domain, where the envelope
	// is exact up to the Buffer slack (Mult is value-domain rounding).
	rankBounds := shard.Bounds{Mult: 1, Buffer: bounds.Buffer}

	started := make([]atomic.Uint64, writers)   // ops started per writer
	completed := make([]atomic.Uint64, writers) // ops completed per writer
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(writers)
	handles := make([]*shard.HistHandle, writers)
	for i := 0; i < writers; i++ {
		h := hg.Handle(i)
		handles[i] = h
		i := i
		go func() {
			defer wg.Done()
			for j := 1; j <= perG; j++ {
				started[i].Store(uint64(j))
				h.Add(bk.Index(uint64(j)))
				completed[i].Store(uint64(j))
			}
		}()
	}

	// trueRank bounds A(v) — the number of observations with value <= v —
	// from the per-writer op progress: writer w's observed values are
	// exactly 1..ops_w, of which min(ops_w, v) are <= v.
	rankOf := func(ops []uint64, v uint64) uint64 {
		var r uint64
		for _, o := range ops {
			r += min(o, v)
		}
		return r
	}

	var checks uint64
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rh := hg.Handle(n - 1)
		probes := []uint64{1, 7, uint64(perG) / 2, uint64(perG)}
		check := func() {
			a := make([]uint64, writers)
			for i := range a {
				a[i] = completed[i].Load()
			}
			counts := rh.Buckets()
			b := make([]uint64, writers)
			for i := range b {
				b[i] = started[i].Load()
			}
			checks++
			if c := histogram.Count(counts); !rankBounds.ContainsRange(rankOf(a, ^uint64(0)), rankOf(b, ^uint64(0)), c) {
				t.Errorf("count %d outside envelope %+v for any total in [%d, %d]", c, rankBounds, rankOf(a, ^uint64(0)), rankOf(b, ^uint64(0)))
			}
			for _, v := range probes {
				r := histogram.Rank(bk, counts, v)
				// Rank(v) counts observations up to Hi(Index(v)) — the
				// value-domain rounding — minus at most Buffer buffered ones.
				lo, hi := rankOf(a, v), rankOf(b, bk.Hi(bk.Index(v)))
				if !rankBounds.ContainsRange(lo, hi, r) {
					t.Errorf("Rank(%d) = %d outside envelope %+v for any true rank in [%d, %d]", v, r, rankBounds, lo, hi)
				}
			}
		}
		for !done.Load() {
			check()
		}
		check() // one fully quiescent read
	}()

	wg.Wait()
	done.Store(true)
	readerWG.Wait()
	if checks == 0 {
		t.Fatal("reader performed no checks")
	}

	// Flush every writer: the rank-domain slack disappears and the merged
	// counts are exact; quantiles are pure bucket rounding.
	for _, h := range handles {
		h.Flush()
	}
	rh := hg.Handle(n - 1)
	counts := rh.Buckets()
	if c, want := histogram.Count(counts), uint64(writers*perG); c != want {
		t.Errorf("quiescent count = %d, want exactly %d", c, want)
	}
	for _, v := range []uint64{1, uint64(perG) / 3, uint64(perG)} {
		want := uint64(writers) * min(bk.Hi(bk.Index(v)), uint64(perG))
		if r := histogram.Rank(bk, counts, v); r != want {
			t.Errorf("quiescent Rank(%d) = %d, want exactly A(Hi) = %d", v, r, want)
		}
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := histogram.Quantile(bk, counts, q)
		// The multiset is 1..perG repeated `writers` times: the rank-r
		// value is ceil(r / writers).
		r := histogram.TargetRank(q, uint64(writers*perG))
		y := (r + uint64(writers) - 1) / uint64(writers)
		if got > y {
			t.Errorf("quiescent Quantile(%v) = %d overstates the rank value %d", q, got, y)
		} else if k > 1 && satmath.Mul(got, k) <= y {
			t.Errorf("quiescent Quantile(%v) = %d understates %d by more than factor %d", q, got, y, k)
		}
	}
}

// TestShardedHistogramEnvelopeSweep sweeps (writers, shards, batch,
// rounding factor), checking every concurrently merged read against the
// documented envelope. Bounds is identical for every shard count: the
// per-bucket sum over shards merges a partition of exact counts.
func TestShardedHistogramEnvelopeSweep(t *testing.T) {
	perG := 2_000
	if testing.Short() {
		perG = 300
	}
	for _, writers := range []int{1, 3} {
		for _, s := range []int{1, 2, 5} {
			for _, b := range []int{1, 8} {
				for _, k := range []uint64{2, 4} {
					t.Run(
						"w"+itoa(writers)+"-s"+itoa(s)+"-b"+itoa(b)+"-k"+itoa(int(k)),
						func(t *testing.T) {
							t.Parallel()
							runHistogramEnvelopeCheck(t, writers, perG, k,
								shard.HistShards(s), shard.HistBatch(b))
						})
				}
			}
		}
	}
}

// TestHistogramShardingInvariance pins the composition claim directly:
// the envelope must not depend on the shard count.
func TestHistogramShardingInvariance(t *testing.T) {
	var want shard.Bounds
	for s := 1; s <= 4; s++ {
		hg, err := shard.NewHistogram(4, 3, 40, shard.HistShards(s), shard.HistBatch(5))
		if err != nil {
			t.Fatal(err)
		}
		if s == 1 {
			want = hg.Bounds()
			if want != (shard.Bounds{Mult: 3, Add: 0, Buffer: 16}) {
				t.Fatalf("unsharded histogram Bounds = %+v, want {Mult:3 Add:0 Buffer:16}", want)
			}
			continue
		}
		if got := hg.Bounds(); got != want {
			t.Errorf("S=%d Bounds = %+v, want %+v (independent of S)", s, got, want)
		}
	}
}

// TestHistogramBatching pins the bucket-batching semantics directly on
// the handle: observations below the batch threshold take no shared
// steps and stay invisible, the B-th observation flushes every pending
// bucket at once, and Flush drains the buffer.
func TestHistogramBatching(t *testing.T) {
	hg, err := shard.NewHistogram(2, 2, 8, shard.HistShards(2), shard.HistBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	w := hg.Handle(0)
	r := hg.Handle(1)

	shared := func(f func()) uint64 {
		before := w.Steps()
		f()
		return w.Steps() - before
	}

	// Three observations across two buckets: below the threshold, all
	// local.
	if s := shared(func() { w.Add(2); w.Add(5); w.Add(2) }); s != 0 {
		t.Errorf("3 buffered observations took %d shared steps, want 0", s)
	}
	if w.Pending() != 3 {
		t.Errorf("Pending = %d, want 3", w.Pending())
	}
	if c := histogram.Count(r.Buckets()); c != 0 {
		t.Errorf("count = %d before the batch filled, want 0", c)
	}

	// The 4th observation reaches B: every pending bucket flushes.
	if s := shared(func() { w.Add(5) }); s == 0 {
		t.Error("the batch-filling observation took no shared steps")
	}
	counts := r.Buckets()
	if counts[2] != 2 || counts[5] != 2 {
		t.Errorf("flushed counts = %v, want 2 in bucket 2 and 2 in bucket 5", counts)
	}
	if w.Pending() != 0 {
		t.Errorf("Pending = %d after the flush, want 0", w.Pending())
	}

	// AddN counts d observations against the threshold in one call.
	w.AddN(1, 9)
	if c := histogram.Count(r.Buckets()); c != 13 {
		t.Errorf("count = %d after AddN(1, 9), want 13 (bulk add flushes immediately)", c)
	}

	// Flush drains a partial buffer.
	w.Add(3)
	w.Flush()
	if c := r.Buckets()[3]; c != 1 {
		t.Errorf("bucket 3 = %d after Flush, want 1", c)
	}
}

// TestNewHistogramValidation mirrors the other kinds' constructor checks.
func TestNewHistogramValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		buckets int
		opts    []shard.HistOption
		want    string // error substring; "" means valid
	}{
		{name: "ok", n: 4, buckets: 16, opts: []shard.HistOption{shard.HistShards(3), shard.HistBatch(16)}},
		{name: "zero-procs", n: 0, buckets: 16, want: "process slot"},
		{name: "zero-buckets", n: 4, buckets: 0, want: "bucket"},
		{name: "zero-shards", n: 4, buckets: 16, opts: []shard.HistOption{shard.HistShards(0)}, want: "shard count"},
		{name: "zero-batch", n: 4, buckets: 16, opts: []shard.HistOption{shard.HistBatch(0)}, want: "batch size"},
	} {
		_, err := shard.NewHistogram(tc.n, 2, tc.buckets, tc.opts...)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// FuzzHistogramAccuracy lets the fuzzer pick the configuration: any
// (writers, shards, batch, k, ops) combination must keep every
// concurrently merged read inside the envelope and every quiescent
// answer inside pure bucket rounding. The seeds cover the corners
// (single shard, batch 1, wide batch, both rounding factors); 'go test'
// runs them on every CI pass and 'go test -fuzz=FuzzHistogramAccuracy
// ./internal/shard' explores further.
func FuzzHistogramAccuracy(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(2), uint16(200))
	f.Add(uint8(3), uint8(4), uint8(8), uint8(2), uint16(1000))
	f.Add(uint8(4), uint8(2), uint8(64), uint8(7), uint16(2000))
	f.Fuzz(func(t *testing.T, writersIn, sIn, bIn, kIn uint8, opsIn uint16) {
		writers := int(writersIn)%4 + 1
		s := int(sIn)%8 + 1
		b := int(bIn)%64 + 1
		k := uint64(kIn)%15 + 2
		perG := int(opsIn)%2_000 + 50
		runHistogramEnvelopeCheck(t, writers, perG, k,
			shard.HistShards(s), shard.HistBatch(b))
	})
}
