package shard_test

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"approxobj/internal/shard"
)

// runEnvelopeCheck is the property at the heart of the shard package: it
// runs incers incrementing goroutines plus one dedicated reader against a
// sharded counter and checks that EVERY read the reader observes is a
// valid response for some count inside the regularity window — between
// the increments completed before the read started (vmin) and those
// started before it returned (vmax), per Bounds.ContainsRange. The
// incrementers publish the window through two atomics bracketing each
// Inc, so the check is sound under any real-goroutine interleaving.
func runEnvelopeCheck(t *testing.T, incers int, k uint64, perG int, opts ...shard.Option) {
	t.Helper()
	n := incers + 1 // slot n-1 is the reader
	c, err := shard.New(n, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	bounds := c.Bounds()

	var started, completed atomic.Uint64
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(incers)
	handles := make([]*shard.Handle, incers)
	for i := 0; i < incers; i++ {
		h := c.Handle(i)
		handles[i] = h
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				started.Add(1)
				h.Inc()
				completed.Add(1)
			}
		}()
	}

	var checks uint64
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rh := c.Handle(n - 1)
		check := func() {
			vmin := completed.Load()
			x := rh.Read()
			vmax := started.Load()
			checks++
			if !bounds.ContainsRange(vmin, vmax, x) {
				t.Errorf("read %d outside envelope %+v for any count in [%d, %d]", x, bounds, vmin, vmax)
			}
		}
		for !done.Load() {
			check()
		}
		check() // one fully quiescent read
	}()

	wg.Wait()
	done.Store(true)
	readerWG.Wait()
	if checks == 0 {
		t.Fatal("reader performed no checks")
	}
	// After a global flush (of the goroutines' own handles — buffers are
	// per-handle, not per-slot) the buffered-increment slack disappears.
	var total uint64
	for _, h := range handles {
		h.Flush()
		total += uint64(perG)
	}
	flushed := bounds
	flushed.Buffer = 0
	if x := c.Handle(n - 1).Read(); !flushed.Contains(total, x) {
		t.Errorf("quiescent flushed read %d outside envelope %+v of true count %d", x, flushed, total)
	}
}

// kFor returns an accuracy parameter valid for the mult backend on n
// slots: at least 2 and at least ceil(sqrt(n)).
func kFor(n int, extra uint64) uint64 {
	k := uint64(math.Ceil(math.Sqrt(float64(n)))) + extra
	if k < 2 {
		k = 2
	}
	return k
}

// TestShardedEnvelopeSweep sweeps (incrementers, k, shards, batch) across
// all three backends, checking every concurrently observed read against
// the documented envelope.
func TestShardedEnvelopeSweep(t *testing.T) {
	perG := 4_000
	if testing.Short() {
		perG = 500
	}
	for _, incers := range []int{1, 3, 6} {
		for _, s := range []int{1, 2, 4} {
			for _, b := range []int{1, 7, 32} {
				k := kFor(incers+1, 1)
				runEnvelopeCheck(t, incers, k, perG,
					shard.Shards(s), shard.Batch(b))
				runEnvelopeCheck(t, incers, 0, perG/2,
					shard.Shards(s), shard.Batch(b), shard.WithBackend(shard.AACHBackend()))
				runEnvelopeCheck(t, incers, 16, perG,
					shard.Shards(s), shard.Batch(b), shard.WithBackend(shard.AdditiveBackend()))
			}
		}
	}
}

// FuzzShardedAccuracy lets the fuzzer pick the configuration: any
// (incrementers, shards, batch, k, ops) combination must keep every
// concurrent read inside the envelope. The seeds cover the corners
// (single shard, batch 1, max batch); 'go test' runs them on every CI
// pass and 'go test -fuzz=FuzzShardedAccuracy ./internal/shard' explores
// further.
func FuzzShardedAccuracy(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint16(200))
	f.Add(uint8(3), uint8(4), uint8(8), uint8(2), uint16(1000))
	f.Add(uint8(4), uint8(2), uint8(64), uint8(5), uint16(2000))
	f.Fuzz(func(t *testing.T, incersIn, sIn, bIn, kIn uint8, opsIn uint16) {
		incers := int(incersIn)%4 + 1
		s := int(sIn)%8 + 1
		b := int(bIn)%64 + 1
		k := kFor(incers+1, uint64(kIn)%16)
		perG := int(opsIn)%2_000 + 50
		runEnvelopeCheck(t, incers, k, perG, shard.Shards(s), shard.Batch(b))
	})
}
