package shard_test

import (
	"math/rand"
	"sync"
	"testing"

	"approxobj/internal/histogram"
	"approxobj/internal/shard"
)

// TestShardedHistogramConcurrentSoak hammers sharded histograms from n
// real goroutines (nil-Gate procs: the production atomic path) across
// shard counts and batch sizes — every writer observing a pseudorandom
// value stream while also running queries — then asserts the exact
// merged bucket counts after flushing every handle against each writer's
// locally tracked reference. Run with -race this is the data-race check
// for the histogram side of the backend plane.
func TestShardedHistogramConcurrentSoak(t *testing.T) {
	const k = 2
	bk, err := histogram.NewBuckets(k, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		n    int
		opts []shard.HistOption
		perG int
	}{
		{name: "1shard", n: 4, perG: 2_000},
		{name: "4shards", n: 8, opts: []shard.HistOption{shard.HistShards(4)}, perG: 2_000},
		{name: "4shards-batch16", n: 8,
			opts: []shard.HistOption{shard.HistShards(4), shard.HistBatch(16)}, perG: 2_000},
		{name: "3shards-batch64", n: 6,
			opts: []shard.HistOption{shard.HistShards(3), shard.HistBatch(64)}, perG: 1_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			hg, err := shard.NewHistogram(tc.n, k, bk.N(), tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*shard.HistHandle, tc.n)
			for i := range handles {
				handles[i] = hg.Handle(i)
			}
			local := make([][]uint64, tc.n) // per-writer exact reference
			var wg sync.WaitGroup
			wg.Add(tc.n)
			for i := 0; i < tc.n; i++ {
				h := handles[i]
				ref := make([]uint64, bk.N())
				local[i] = ref
				rng := rand.New(rand.NewSource(int64(i) + 19))
				go func() {
					defer wg.Done()
					for j := 1; j <= tc.perG; j++ {
						v := uint64(rng.ExpFloat64() * 500)
						if v >= 1<<16 {
							v = 1<<16 - 1
						}
						b := bk.Index(v)
						h.Add(b)
						ref[b]++
						if j%250 == 0 {
							counts := h.Buckets()
							histogram.Quantile(bk, counts, 0.9)
							histogram.Rank(bk, counts, v)
						}
					}
				}()
			}
			wg.Wait()

			for _, h := range handles {
				h.Flush()
			}
			counts := handles[0].Buckets()
			want := make([]uint64, bk.N())
			for _, ref := range local {
				for b, c := range ref {
					want[b] += c
				}
			}
			for b := range want {
				if counts[b] != want[b] {
					t.Errorf("bucket %d = %d after flush, want exactly %d", b, counts[b], want[b])
				}
			}
			if c := histogram.Count(counts); c != uint64(tc.n*tc.perG) {
				t.Errorf("count = %d after flush, want %d", c, tc.n*tc.perG)
			}
		})
	}
}
