package shard

import (
	"fmt"
	"time"

	"approxobj/internal/prim"
	"approxobj/internal/satmath"
	"approxobj/internal/telemetry"
)

// This file is the policy-driven core of the backend plane: one generic
// object (plane) and one generic handle core (core) parameterized by
//
//   - a combine policy: how a read folds the S per-shard reads into the
//     object's value (sum for counters, max for max registers,
//     per-component merge for snapshots), and
//   - a buffer policy: how a handle's mutations are buffered locally
//     before reaching its home shard (count batching, write elision, or
//     component elision).
//
// The kind-specific files (shard.go, maxreg.go, snapshot.go,
// histogram.go) contribute only their backends, their mutation method,
// and their policy row — everything else (construction, handle wiring,
// combined reads, flushes, envelope composition, step accounting) lives
// here once.

// Reader is the read side of a per-shard handle: the generic core issues
// one Read per shard and folds the results with the kind's Combine.
type Reader[V any] interface{ Read() V }

// Combine folds the next shard's read into the accumulator. It may
// mutate and return acc (the per-component merge does); acc is always a
// value the caller owns — the first shard's read into the caller's
// destination buffer.
type Combine[V any] func(acc, next V) V

// bufferPolicy enumerates the handle-local buffering disciplines of the
// plane. All three trade read freshness (the Buffer term of Bounds) for
// mutations that touch no shared memory.
type bufferPolicy int

const (
	// countBatching buffers mutation counts: a counter handle absorbs
	// B-1 of every B Incs locally and flushes them in one bulk apply.
	// System-wide staleness is (B-1) per handle, so the Buffer term
	// scales with the slot count n.
	countBatching bufferPolicy = iota
	// writeElision skips the shared write when the value is inside the
	// window above the handle's last flushed value, keeping the pending
	// maximum locally (max registers: values at or below the flushed one
	// are subsumed and dropped for free). The object's maximum lives in
	// ONE handle, so the Buffer term is B-1, not scaled by n.
	writeElision
	// componentElision is writeElision for last-write-wins components
	// (snapshots): upward moves inside the window stay local with the
	// LATEST (not highest) value pending, but downward moves always
	// flush — a stale higher value would overstate the component, which
	// the one-sided envelope does not allow. Components are disjoint
	// across handles, so the per-component Buffer term is B-1.
	componentElision
	// bucketBatching is count batching for vector-valued mutations
	// (histograms): a handle accumulates per-bucket observation counts
	// locally and flushes ALL pending buckets once the total pending
	// count reaches B, so at most B-1 observations per handle — across
	// every bucket together, not per bucket — are invisible to readers
	// between flushes. Like countBatching the staleness scales with the
	// slot count n (Buffer = (B-1)*n); unlike it the flush replays the
	// pending counts bucket by bucket.
	bucketBatching
)

// bucketBuf is the bucketBatching state: per-bucket pending counts
// (pending holds their total) and the indices with a nonzero pending
// count, so a flush visits only touched buckets — an unbuffered B = 1
// handle flushes in O(1), not O(buckets). It is pooled per process slot
// by the owning Histogram (see Histogram.Handle): a re-created handle
// for a slot inherits the slot's pending counts instead of stranding
// them — counts stuck in an abandoned handle's buffer would violate the
// (B-1)-per-handle staleness the Buffer term of Bounds promises — and
// the acquire path stops allocating the vector.
type bucketBuf struct {
	pending uint64
	vec     []uint64
	touched []int
}

// buffer is the handle-local mutation buffer between a handle and its
// home shard. flush applies a value to shared memory: a pending
// increment count under countBatching, the pending value under the
// elision policies.
type buffer struct {
	policy bufferPolicy
	batch  uint64
	flush  func(v uint64)

	pending uint64
	flushed uint64 // last value written through (elision policies only)
	dirty   bool   // pending holds an unflushed elided value

	// bucketBatching state (nil under the scalar policies) and the
	// per-bucket flush to the home shard.
	bb          *bucketBuf
	flushBucket func(b int, d uint64)

	// Telemetry (nil when uninstrumented — the only cost then is the
	// `tel != nil` branch on each path, mirroring the prim nil-gate).
	// The hot per-mutation events (a buffered hit, an elided write) are
	// batched in the plain locals below and published every
	// telemetry.CounterBatch events; every flush path drains them, so
	// the meters' lag tracks the buffer's own lag and LagBound stays an
	// honest envelope.
	tel         *telemetry.Sink
	slot        int
	localHits   uint64
	localElided uint64
}

// noteFlush reports one buffer flush of amount v to the sink: the flush
// event itself, the residues of the batched locals, and the sampled
// trace hook. Called on every path that publishes buffered state.
func (b *buffer) noteFlush(v uint64) {
	if b.tel == nil {
		return
	}
	b.tel.Inc(telemetry.EvFlush, b.slot)
	b.tel.FlushLocal(telemetry.EvBufferHit, b.slot, &b.localHits)
	b.tel.FlushLocal(telemetry.EvElidedWrite, b.slot, &b.localElided)
	b.tel.Trace(telemetry.TraceFlush, b.slot, v)
}

// add routes one mutation (an increment count or a value) through the
// policy: absorb it locally or flush to the home shard.
func (b *buffer) add(v uint64) {
	switch b.policy {
	case countBatching:
		b.pending += v
		if b.pending >= b.batch {
			d := b.pending
			b.pending = 0
			b.flush(d)
			b.noteFlush(d)
			return
		}
		if b.tel != nil {
			b.tel.BumpLocal(telemetry.EvBufferHit, b.slot, &b.localHits)
		}
	case writeElision:
		if v <= b.flushed {
			// Subsumed: the home shard already holds >= v.
			if b.tel != nil {
				b.tel.BumpLocal(telemetry.EvElidedWrite, b.slot, &b.localElided)
			}
			return
		}
		if v-b.flushed < b.batch {
			// Elide: v trails a future flush by at most B-1, the
			// staleness the Buffer term of Bounds promises.
			if v > b.pending {
				b.pending, b.dirty = v, true
			}
			if b.tel != nil {
				b.tel.BumpLocal(telemetry.EvElidedWrite, b.slot, &b.localElided)
			}
			return
		}
		b.writeThrough(v)
	case componentElision:
		if v == b.flushed {
			// The component is back at its flushed value: anything
			// elided in between is superseded.
			b.pending, b.dirty = 0, false
			if b.tel != nil {
				b.tel.BumpLocal(telemetry.EvElidedWrite, b.slot, &b.localElided)
			}
			return
		}
		if v > b.flushed && v-b.flushed < b.batch {
			b.pending, b.dirty = v, true // latest value wins, not highest
			if b.tel != nil {
				b.tel.BumpLocal(telemetry.EvElidedWrite, b.slot, &b.localElided)
			}
			return
		}
		b.writeThrough(v)
	}
}

func (b *buffer) writeThrough(v uint64) {
	b.flush(v)
	b.flushed = v
	b.pending, b.dirty = 0, false
	b.noteFlush(v)
}

// addBucket routes d observations of bucket i through the bucketBatching
// policy: accumulate locally, flush every pending bucket once the total
// pending count reaches the batch size.
func (b *buffer) addBucket(i int, d uint64) {
	if d == 0 {
		return
	}
	bb := b.bb
	if bb.vec[i] == 0 {
		bb.touched = append(bb.touched, i)
	}
	bb.vec[i] = satmath.Add(bb.vec[i], d)
	bb.pending = satmath.Add(bb.pending, d)
	if bb.pending >= b.batch {
		b.flushBuckets()
		return
	}
	if b.tel != nil {
		b.tel.BumpLocal(telemetry.EvBufferHit, b.slot, &b.localHits)
	}
}

// flushBuckets publishes every pending bucket count to the home shard —
// visiting only the touched buckets, so the cost is proportional to how
// many distinct buckets are pending, not to the bucket count.
func (b *buffer) flushBuckets() {
	bb := b.bb
	if bb.pending == 0 {
		return
	}
	d := bb.pending
	bb.pending = 0
	for _, i := range bb.touched {
		if d := bb.vec[i]; d != 0 {
			bb.vec[i] = 0
			b.flushBucket(i, d)
		}
	}
	bb.touched = bb.touched[:0]
	b.noteFlush(d)
}

// Flush publishes the buffered state to the home shard; it is a no-op
// when nothing is buffered.
func (b *buffer) Flush() {
	switch b.policy {
	case countBatching:
		if b.pending == 0 {
			return
		}
		d := b.pending
		b.pending = 0
		b.flush(d)
		b.noteFlush(d)
	case bucketBatching:
		b.flushBuckets()
	default:
		if !b.dirty {
			return
		}
		b.writeThrough(b.pending)
	}
}

// Pending returns the buffered state (diagnostic): the buffered
// mutation count under the batching policies (total over buckets for
// bucketBatching), the pending elided value (0 when none) under the
// elision policies.
func (b *buffer) Pending() uint64 {
	switch b.policy {
	case countBatching:
		return b.pending
	case bucketBatching:
		return b.bb.pending
	default:
		if !b.dirty {
			return 0
		}
		return b.pending
	}
}

// meta is the envelope declaration every backend carries: its name (for
// tables and errors), its value bound (0 = unbounded), its per-shard
// multiplicative/additive accuracy as functions of the parameter k, and
// its per-shard envelope failure probability delta (0 for deterministic
// backends; the probability a single shard's read escapes its numeric
// envelope for randomized ones). A nil mult means exact (1); a nil add
// means no additive slack (0).
type meta struct {
	name  string
	bound uint64
	mult  func(k uint64) uint64
	add   func(k uint64) uint64
	delta float64
}

// Name returns the backend's name (for tables and error messages).
func (m meta) Name() string { return m.name }

// Bound returns the backend's value bound, or 0 for unbounded backends.
func (m meta) Bound() uint64 { return m.bound }

func (m meta) multOf(k uint64) uint64 {
	if m.mult == nil {
		return 1
	}
	return m.mult(k)
}

func (m meta) addOf(k uint64) uint64 {
	if m.add == nil {
		return 0
	}
	return m.add(k)
}

// backend constructs one shard's underlying object of type O and
// declares its per-shard accuracy envelope. The exported per-kind names
// (Backend, MaxRegBackend, SnapshotBackend) are instantiations of it.
type backend[O any] struct {
	meta
	make func(f *prim.Factory, k uint64) (O, error)
}

// String names the buffering discipline for tables and docs.
func (b bufferPolicy) String() string {
	switch b {
	case writeElision:
		return "write elision"
	case componentElision:
		return "component elision"
	case bucketBatching:
		return "bucket batching"
	default:
		return "count batching"
	}
}

// PolicyRow is the exported view of one kind's policy row, consumed by
// the public backend table (approxobj.Kinds) so the spec layer derives
// its rows from this package instead of hand-mirroring them.
type PolicyRow struct {
	// Combine names how a read folds the per-shard reads.
	Combine string
	// Buffer names the handle-local buffering discipline.
	Buffer string
	// AddScalesWithShards reports whether the per-shard additive slack
	// sums over shards under this combine.
	AddScalesWithShards bool
	// BufferScalesWithProcs reports whether the B-1 buffering headroom
	// multiplies by the slot count.
	BufferScalesWithProcs bool
}

func (p policy) row() PolicyRow {
	return PolicyRow{
		Combine:               p.combine,
		Buffer:                p.buffer.String(),
		AddScalesWithShards:   p.addScalesWithShards,
		BufferScalesWithProcs: p.bufferScalesWithProcs,
	}
}

// CounterPolicyRow, MaxRegPolicyRow, SnapshotPolicyRow, and
// HistogramPolicyRow export the kinds' policy rows.
func CounterPolicyRow() PolicyRow   { return counterPolicy.row() }
func MaxRegPolicyRow() PolicyRow    { return maxRegPolicy.row() }
func SnapshotPolicyRow() PolicyRow  { return snapshotPolicy.row() }
func HistogramPolicyRow() PolicyRow { return histogramPolicy.row() }

// policy is one kind's row of the plane: how the per-shard envelope
// composes under the kind's combine, and which buffering discipline its
// handles use. The spec layer's backend table derives its rows from
// these via PolicyRow.
type policy struct {
	combine string // policy-table name: "sum", "max", "per-component"
	buffer  bufferPolicy
	// addScalesWithShards: the per-shard additive slack sums over shards
	// (true for the counter's sum-combine; false for max and
	// per-component merge, which pick one shard's value per result).
	addScalesWithShards bool
	// bufferScalesWithProcs: the per-handle staleness B-1 can accumulate
	// across all n handles at once (true for count batching; false for
	// the elision policies, where the staleness lives in one handle per
	// result component).
	bufferScalesWithProcs bool
}

// slotBinding is one process slot's cached binding to every shard: the
// per-shard procs and the per-shard read handles, built once and reused
// by every handle (re)creation for the slot. Reuse is safe — per-shard
// handles carry persistent per-process local state (sequence numbers,
// cached own-row values) that a slot's successive handles are meant to
// continue from, and slot handles are single-goroutine by contract — and
// it makes re-creating a handle (pooled churn, windowed epoch rebinds)
// allocation-free below the handle struct itself.
type slotBinding[H any] struct {
	readers []H
	procs   []*prim.Proc
}

// plane is the generic sharded object: S shards of O combined on read by
// the kind's Combine, with handle-local buffering per the kind's policy.
// Kind-specific object types wrap it and add nothing but their mutation
// signature.
type plane[O any, H Reader[V], V any] struct {
	rt       *runtime[O]
	k        uint64
	batch    uint64
	be       backend[O]
	pol      policy
	handleOf func(o O, p *prim.Proc) H
	combine  Combine[V]
	// readInto is the per-shard read into a reused buffer, nil for
	// scalar-valued kinds (whose reads allocate nothing anyway). When
	// set, combined reads fold through two per-handle scratch buffers
	// instead of allocating per shard read.
	readInto func(h H, dst V) V
	// slots caches each process slot's shard binding (see slotBinding).
	slots []slotBinding[H]
	// cache is the read-combiner tier (see readcache.go), nil when the
	// plane serves every read as a full combine. When non-nil, the last
	// process slot is reserved for the background combiner goroutine.
	cache readCache[V]
	// tel is the telemetry sink the plane's moving parts report into
	// (nil when uninstrumented).
	tel *telemetry.Sink
}

// newPlane validates the shared configuration (batch range, batch vs.
// backend bound, read-cache slot reservation) and builds S shards of n
// slots each. readStale > 0 enables the read-combiner tier with that
// staleness window, built by mkCache (the kind's value-shape cache:
// newScalarReadCache or newVecReadCache); the LAST of the n slots is
// then reserved for the background combiner goroutine and must not be
// handed out. readInto is the per-shard read into a reused buffer, nil
// for scalar kinds.
func newPlane[O any, H Reader[V], V any](
	n int, k uint64, shards, batch int, readStale time.Duration, tel *telemetry.Sink,
	be backend[O], pol policy,
	handleOf func(o O, p *prim.Proc) H, combine Combine[V],
	readInto func(h H, dst V) V, mkCache func(d time.Duration) readCache[V],
) (*plane[O, H, V], error) {
	if batch < 1 {
		return nil, errBatch(batch)
	}
	// Legal writes satisfy v < m, so the largest is m-1: an elision
	// window of B-1 >= m-1 (i.e. B >= m) would swallow every legal write.
	if be.bound > 0 && uint64(batch) >= be.bound {
		return nil, fmt.Errorf("shard: batch %d exceeds the %d-bounded backend's value range", batch, be.bound)
	}
	if readStale < 0 {
		return nil, fmt.Errorf("shard: read-cache staleness must be >= 0, got %v", readStale)
	}
	if readStale > 0 && n < 2 {
		return nil, fmt.Errorf("shard: read cache needs a dedicated combiner slot (n >= 2), got n = %d", n)
	}
	rt, err := newRuntime(be.name, n, shards, tel, func(f *prim.Factory) (O, error) {
		return be.make(f, k)
	})
	if err != nil {
		return nil, err
	}
	p := &plane[O, H, V]{
		rt: rt, k: k, batch: uint64(batch), be: be, pol: pol,
		handleOf: handleOf, combine: combine, readInto: readInto,
		slots: make([]slotBinding[H], n),
		tel:   tel,
	}
	if readStale > 0 {
		p.cache = mkCache(readStale)
		p.cache.instrument(tel)
		// The combiner owns the reserved last slot outright: handles for
		// it are refused (newCore), so its per-shard readers and its
		// core's scratch buffers race with nothing.
		core := p.coreAt(n - 1)
		go p.cache.run(core.combinedInto)
	}
	return p, nil
}

// ReadCache returns the read-cache staleness window (0 when the
// read-combiner tier is off).
func (p *plane[O, H, V]) ReadCache() time.Duration {
	if p.cache == nil {
		return 0
	}
	return p.cache.staleness()
}

// Close stops the plane's background combiner goroutine, if any, and
// waits for it to exit. Idempotent; reads stay valid afterwards (cached
// reads fall back to inline refreshes).
func (p *plane[O, H, V]) Close() {
	if p.cache != nil {
		p.cache.close()
	}
}

// N returns the number of process slots.
func (p *plane[O, H, V]) N() int { return p.rt.n }

// K returns the accuracy parameter passed to the backend.
func (p *plane[O, H, V]) K() uint64 { return p.k }

// Shards returns the shard count S.
func (p *plane[O, H, V]) Shards() int { return len(p.rt.shards) }

// Batch returns the per-handle buffer size B (1 means unbuffered).
func (p *plane[O, H, V]) Batch() uint64 { return p.batch }

// Bounds composes the combined read envelope from the backend's
// per-shard envelope and the kind's policy row: Add widens by S iff the
// combine sums shards, and the B-1 buffering headroom multiplies by the
// number of mutating slots iff every handle's buffer can be stale at
// once (the reserved combiner slot never mutates, so it is excluded).
// With the read-combiner tier on, Stale carries the staleness window as
// a further, time-domain widening of the regularity window. For a
// randomized backend the per-shard failure probabilities compose by
// union bound: a combined read is in range whenever every one of the S
// shard reads is, so Delta = min(1, S * delta_shard).
func (p *plane[O, H, V]) Bounds() Bounds {
	b := Bounds{Mult: p.be.multOf(p.k), Add: p.be.addOf(p.k)}
	if p.pol.addScalesWithShards {
		b.Add = satmath.Mul(uint64(len(p.rt.shards)), b.Add)
	}
	head := p.batch - 1
	if p.pol.bufferScalesWithProcs {
		head = satmath.Mul(head, uint64(p.writers()))
	}
	b.Buffer = head
	if p.cache != nil {
		b.Stale = p.cache.staleness()
	}
	if p.be.delta > 0 {
		b.Delta = min(1, float64(len(p.rt.shards))*p.be.delta)
	}
	return b
}

// BaseObjects returns the number of resident base objects (registers,
// TAS cells) across all shards — the plane's space cost in the paper's
// model, where space is counted in base objects. Lazily allocated
// structures (the unbounded switch sequences of Algorithm 1) count what
// has materialized, not what they reserve, so the number grows with the
// execution. Windowed objects sum it over their epoch ring; the frontier
// bench (E19) uses it to compare deterministic and randomized state at
// equal target error.
func (p *plane[O, H, V]) BaseObjects() uint64 {
	var total uint64
	for _, f := range p.rt.facts {
		total += f.Resident()
	}
	return total
}

// writers is the number of slots that can hold buffered mutations: all
// of them, minus the reserved combiner slot when the read cache is on.
func (p *plane[O, H, V]) writers() int {
	if p.cache != nil {
		return p.rt.n - 1
	}
	return p.rt.n
}

// newCore binds process slot i to every shard and returns the shared
// handle core. With the read cache on, the last slot belongs to the
// background combiner and is refused here (slot handles are strictly
// single-goroutine; handing it out would race with the combiner).
func (p *plane[O, H, V]) newCore(i int) handleCore[H, V] {
	if p.cache != nil && i == p.rt.n-1 {
		panic(fmt.Sprintf("shard: slot %d is reserved for the read-cache combiner", i))
	}
	return p.coreAt(i)
}

// coreAt binds process slot i to every shard and returns the shared
// handle core: per-shard readers, the home shard's handle, the combine
// loop, the policy's buffer (whose flush function the kind-specific
// handle wires to its home-shard mutation), and the plane's read cache.
// The slot's shard binding is built on first use and cached (see
// slotBinding), so re-creating a slot's handle allocates no slices.
// Distinct slots may bind concurrently (they touch distinct entries);
// binding the SAME slot concurrently is excluded by the single-goroutine
// handle contract, exactly as using it would be.
func (p *plane[O, H, V]) coreAt(i int) handleCore[H, V] {
	sb := &p.slots[i]
	if sb.readers == nil {
		sb.procs = p.rt.slotProcs(i)
		sb.readers = make([]H, len(p.rt.shards))
		for s := range p.rt.shards {
			sb.readers[s] = p.handleOf(p.rt.shards[s], sb.procs[s])
		}
	}
	return handleCore[H, V]{
		readers:  sb.readers,
		home:     sb.readers[p.rt.home(i)],
		procs:    sb.procs,
		combine:  p.combine,
		readInto: p.readInto,
		buf:      buffer{policy: p.pol.buffer, batch: p.batch, tel: p.tel, slot: i},
		cache:    p.cache,
		tel:      p.tel,
		slot:     i,
	}
}

// handleCore is the shared per-slot handle core every kind's handle embeds:
// the per-shard readers bound to one process slot, the home shard's
// handle, the combined read, the buffer, and step accounting. The
// kind-specific handle adds only its mutation method (Inc, Write,
// Update) over buf.add.
type handleCore[H Reader[V], V any] struct {
	readers  []H
	home     H
	procs    []*prim.Proc
	combine  Combine[V]
	readInto func(h H, dst V) V // per-shard read into a reused buffer; nil for scalar kinds
	scratch  V                  // fold buffer for the non-first shards' reads (vector kinds)
	refresh  func(V) V          // combinedInto, bound once on first cached read (method values allocate)
	buf      buffer
	cache    readCache[V] // the plane's read-combiner tier, nil when off
	tel      *telemetry.Sink
	slot     int
}

// Read returns the object's combined value. Without the read cache it
// combines one read of every shard with the kind's Combine — O(S) — and
// the result is inside the envelope the object's Bounds describes,
// relative to the regularity window of the package comment. With the
// read cache it serves the plane's pre-combined cell in O(1) when fresh
// (falling back to an inline re-combine through this handle's own
// readers when not); the same envelope then holds against the
// regularity window widened backward by the Stale term of Bounds. For
// vector-valued kinds the slice is fresh (owned by the caller); reuse a
// buffer across reads with ReadInto instead.
func (c *handleCore[H, V]) Read() V {
	var zero V
	return c.ReadInto(zero)
}

// ReadInto is Read with the result written into dst (grown as needed;
// scalar kinds ignore it). Steady-state cached reads and uncached
// combines through one handle allocate nothing: per-shard reads land in
// the handle's scratch buffers and the result in dst.
func (c *handleCore[H, V]) ReadInto(dst V) V {
	if c.cache == nil {
		return c.combinedInto(dst)
	}
	if c.refresh == nil {
		c.refresh = c.combinedInto
	}
	if c.tel != nil {
		// Every cached-path read counts here (hits are derived as reads
		// minus the misses the cache itself reports): one striped atomic
		// add when instrumented, one predicted branch when not — the
		// read path takes no prim steps and allocates nothing either way.
		c.tel.Inc(telemetry.EvCacheRead, c.slot)
	}
	return c.cache.readInto(dst, c.refresh)
}

// combinedInto is the raw combine loop: one read of every shard, folded
// by the kind's Combine into dst. Scalar kinds fold plain values and
// ignore dst; vector kinds read the first shard into dst and every
// later shard into the handle's scratch buffer, so a steady-state
// combine allocates nothing.
func (c *handleCore[H, V]) combinedInto(dst V) V {
	if c.readInto == nil {
		acc := c.readers[0].Read()
		for _, r := range c.readers[1:] {
			acc = c.combine(acc, r.Read())
		}
		return acc
	}
	dst = c.readInto(c.readers[0], dst)
	for _, r := range c.readers[1:] {
		c.scratch = c.readInto(r, c.scratch)
		dst = c.combine(dst, c.scratch)
	}
	return dst
}

// Flush publishes any handle-locally buffered mutations to the home
// shard. It is a no-op when the buffer is empty.
func (c *handleCore[H, V]) Flush() { c.buf.Flush() }

// Pending returns the handle's buffered state (diagnostic): buffered
// increments for counters, the total pending observation count across
// all buckets for histograms, the pending elided value (0 when none)
// for max registers and snapshots.
func (c *handleCore[H, V]) Pending() uint64 { return c.buf.Pending() }

// Steps returns the shared-memory steps this handle's process slot has
// taken across all shards.
func (c *handleCore[H, V]) Steps() uint64 { return stepsOf(c.procs) }
