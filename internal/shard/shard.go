// Package shard implements the sharded-object runtime: S independently
// accurate shards of one object kind behind a single façade, with
// handle-affinity placement of mutations and a per-handle local buffer
// that keeps most mutations out of shared memory entirely. It is the
// scaling seam between the paper-faithful single objects (internal/core,
// internal/counter, internal/maxreg) and a serving workload where every
// process hammering one object is the bottleneck. Both public object
// families run on it: counters (Counter: increments spread over shards,
// reads sum) and max registers (MaxReg: writes spread over shards, reads
// take the max).
//
// # Construction
//
// A sharded object for n process slots is S underlying objects ("shards"),
// each built over its own prim.Factory with n slots. Handle i mutates
// only its home shard i mod S (handle affinity: a mutator's cache
// traffic stays within one shard's base objects), and reads combine one
// read of every shard — a sum for counters, a max for max registers.
// Optionally each handle buffers mutations locally: a counter handle
// buffers B increments and flushes them in one bulk operation
// (object.BulkCounterHandle when the backend supports it), and a max
// register handle elides writes within B-1 of its last flushed value
// (see MaxReg), so most mutations touch no shared memory at all.
//
// # Accuracy composition
//
// The combined read stays accurate because both accuracy relaxations in
// this repository compose over a partition of the operations:
//
//   - Multiplicative counters: if shard s holds v_s increments and its
//     read returns x_s with v_s/k <= x_s <= k*v_s, then summing over
//     shards gives (Σ v_s)/k <= Σ x_s <= k*(Σ v_s), because both envelope
//     bounds are linear in v_s. The sum of S k-multiplicative-accurate
//     shards is therefore still k-multiplicative-accurate — independent
//     of S.
//   - Additive counters: if each shard read errs by at most ±a, the sum
//     errs by at most ±S*a. Sharding an additive-accurate backend widens
//     the envelope by the shard count.
//   - Max registers: the max over shards IS the global max, so per-shard
//     envelopes carry over with no widening at all — even better than
//     counting. If the true global max v lives in shard s, that shard's
//     read returns x_s >= v/k, so the combined max is >= v/k; and every
//     shard's read is <= k * (its own max) <= k*v, so the combined max is
//     <= k*v. S does not appear.
//   - Counter batching: a handle buffers at most B-1 increments between
//     flushes, so at most U = (B-1)*n increments are locally buffered
//     system-wide. Buffered increments are invisible to readers, which
//     only lowers reads: against the true count v the shards jointly hold
//     w >= v - U applied increments, giving x >= (v-U)/M - A while the
//     upper bound x <= M*v + A is unaffected.
//   - Max-register write elision: a handle skips the shared write when
//     the value is within B-1 of its last flushed value, so the shards
//     may lag the true maximum v by at most U = B-1 — per handle, NOT
//     times n, because the maximum is held by ONE handle, and that
//     handle's flushed value is >= v - (B-1). Reads may therefore be
//     stale by at most B-1 below v; the upper bound is unaffected.
//
// Bounds carries the resulting envelope (M, A, U) and Counter.Bounds /
// MaxReg.Bounds report it for the configured backend, shard count, and
// batch size; the package's property tests assert it against concurrent
// executions.
//
// # Consistency
//
// Each shard is linearizable on its own, but the combined Read is a
// collect over shards: mutations landing in an already-visited shard while
// the read is still visiting later shards are missed. The combined object
// is therefore regular rather than linearizable — a Read overlapping
// mutations returns a value inside the envelope of some true value v
// between the mutations completed before the Read started and those
// started before it returned. Counters and max registers are monotone, so
// this is the same guarantee a retry-free client can observe anyway, and
// the soak tests in this package validate exactly this window.
package shard

import (
	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/satmath"
)

// Backend constructs one shard's underlying counter and declares its
// per-shard accuracy envelope. The three backends cover the repository's
// counter families: the paper's multiplicative counter, the exact AACH
// tree, and the batched additive collect.
type Backend struct {
	name string
	// mult is the per-shard multiplicative accuracy for parameter k
	// (1 for exact and additive backends).
	mult func(k uint64) uint64
	// add is the per-shard additive accuracy for parameter k (0 for
	// multiplicative and exact backends).
	add func(k uint64) uint64
	// make builds the shard over its own factory.
	make func(f *prim.Factory, k uint64) (object.Counter, error)
}

// Name returns the backend's name (for tables and error messages).
func (b Backend) Name() string { return b.name }

// MultBackend shards the paper's Algorithm 1 (core.MultCounter): each shard
// is k-multiplicative-accurate, and so is the sum.
func MultBackend() Backend {
	return Backend{
		name: "mult",
		mult: func(k uint64) uint64 { return k },
		add:  func(uint64) uint64 { return 0 },
		make: func(f *prim.Factory, k uint64) (object.Counter, error) {
			return core.NewMultCounter(f, k)
		},
	}
}

// AACHBackend shards the exact AACH tree counter: the sum is exact (modulo
// batching), trading read cost O(S log v) for per-shard increment locality.
func AACHBackend() Backend {
	return Backend{
		name: "aach",
		mult: func(uint64) uint64 { return 1 },
		add:  func(uint64) uint64 { return 0 },
		make: func(f *prim.Factory, _ uint64) (object.Counter, error) {
			return counter.NewAACH(f)
		},
	}
}

// AdditiveBackend shards the k-additive-accurate batched collect: each
// shard errs by at most ±k, so the sum errs by at most ±S*k.
func AdditiveBackend() Backend {
	return Backend{
		name: "additive",
		mult: func(uint64) uint64 { return 1 },
		add:  func(k uint64) uint64 { return k },
		make: func(f *prim.Factory, k uint64) (object.Counter, error) {
			return counter.NewAdditive(f, k)
		},
	}
}

// Option configures a sharded counter.
type Option func(*config)

type config struct {
	shards  int
	batch   int
	backend Backend
}

// Shards sets the shard count S (default 1). Increments spread across
// shards by handle affinity; reads cost one underlying read per shard.
func Shards(s int) Option { return func(c *config) { c.shards = s } }

// Batch sets the per-handle increment buffer B (default 1, i.e. no
// buffering). A handle flushes its buffer to the home shard every B
// increments, so at most (B-1) increments per handle are invisible to
// readers between flushes; Counter.Bounds accounts for them.
func Batch(b int) Option { return func(c *config) { c.batch = b } }

// WithBackend selects the per-shard counter implementation (default
// MultBackend).
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// Bounds is the documented read envelope of a sharded object: against a
// true value v, a Read may return any x with
//
//	(v - Buffer)/Mult - Add <= x <= Mult*v + Add.
//
// It is the universal envelope type of internal/object, aliased here
// because the sharded runtime is where all three terms (multiplicative
// factor, summed per-shard additive slack, handle-buffered mutations)
// first compose.
type Bounds = object.Bounds

// Counter is the sharded counter: S independently accurate shards summed
// by readers. Create handles with Handle; the zero value is not usable.
type Counter struct {
	rt      *runtime[object.Counter]
	k       uint64
	batch   uint64
	backend Backend
}

// New creates a sharded counter for n process slots with accuracy
// parameter k, configured by opts. Each shard is built over its own
// n-slot prim.Factory, so any handle can read every shard; backend
// preconditions (e.g. k >= sqrt(n) for MultBackend) apply per shard.
func New(n int, k uint64, opts ...Option) (*Counter, error) {
	cfg := config{shards: 1, batch: 1, backend: MultBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.batch < 1 {
		return nil, errBatch(cfg.batch)
	}
	rt, err := newRuntime(cfg.backend.name, n, cfg.shards, func(f *prim.Factory) (object.Counter, error) {
		return cfg.backend.make(f, k)
	})
	if err != nil {
		return nil, err
	}
	return &Counter{rt: rt, k: k, batch: uint64(cfg.batch), backend: cfg.backend}, nil
}

// N returns the number of process slots.
func (c *Counter) N() int { return c.rt.n }

// K returns the accuracy parameter passed to the backend.
func (c *Counter) K() uint64 { return c.k }

// Shards returns the shard count S.
func (c *Counter) Shards() int { return len(c.rt.shards) }

// Batch returns the per-handle buffer size B (1 means unbuffered).
func (c *Counter) Batch() uint64 { return c.batch }

// Backend returns the configured backend.
func (c *Counter) Backend() Backend { return c.backend }

// Bounds returns the combined read envelope for this configuration (see
// the package comment for the composition argument).
func (c *Counter) Bounds() Bounds {
	return Bounds{
		Mult:   c.backend.mult(c.k),
		Add:    satmath.Mul(uint64(len(c.rt.shards)), c.backend.add(c.k)),
		Buffer: satmath.Mul(c.batch-1, uint64(c.rt.n)),
	}
}

// Handle binds process slot i (0 <= i < n) to the counter. The handle
// increments shard i mod S and reads all shards through slot i of each
// shard's factory. Like every handle in this repository it must be used by
// a single goroutine.
func (c *Counter) Handle(i int) *Handle {
	procs := c.rt.slotProcs(i)
	h := &Handle{
		c:       c,
		readers: make([]object.CounterHandle, len(c.rt.shards)),
		procs:   procs,
	}
	for s := range c.rt.shards {
		h.readers[s] = c.rt.shards[s].CounterHandle(procs[s])
	}
	home := h.readers[c.rt.home(i)]
	h.home = home
	h.homeBulk, _ = home.(object.BulkCounterHandle)
	return h
}

// Handle is one process's view of the sharded counter. It satisfies the
// public CounterHandle interface (Inc, Read, Steps) and adds Flush for
// draining the batch buffer before quiescent reads.
type Handle struct {
	c        *Counter
	home     object.CounterHandle
	homeBulk object.BulkCounterHandle // nil when the backend has no bulk path
	readers  []object.CounterHandle
	procs    []*prim.Proc
	pending  uint64
}

var _ object.CounterHandle = (*Handle)(nil)

// Inc adds one. With Batch(B > 1) the increment is buffered locally and
// flushed to the home shard every B calls, so B-1 of every B Incs are a
// single local add.
func (h *Handle) Inc() {
	h.pending++
	if h.pending >= h.c.batch {
		h.Flush()
	}
}

// Flush applies any buffered increments to the home shard in one bulk
// operation. It is a no-op when the buffer is empty.
func (h *Handle) Flush() {
	d := h.pending
	if d == 0 {
		return
	}
	h.pending = 0
	if h.homeBulk != nil {
		h.homeBulk.IncN(d)
	} else {
		for ; d > 0; d-- {
			h.home.Inc()
		}
	}
}

// Read sums one read of every shard. The result is inside the envelope
// Counter.Bounds describes, relative to the regularity window of the
// package comment. The sum saturates at MaxUint64 (shard reads of
// approximate backends may individually saturate).
func (h *Handle) Read() uint64 {
	var sum uint64
	for _, r := range h.readers {
		sum = satmath.Add(sum, r.Read())
	}
	return sum
}

// Steps returns the shared-memory steps this handle's process slot has
// taken across all shards.
func (h *Handle) Steps() uint64 { return stepsOf(h.procs) }

// Pending returns the number of locally buffered increments (diagnostic).
func (h *Handle) Pending() uint64 { return h.pending }
