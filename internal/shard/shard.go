// Package shard implements the sharded-object runtime — the backend
// plane every public object family runs on: S independently accurate
// shards of one object kind behind a single façade, with handle-affinity
// placement of mutations and a per-handle local buffer that keeps most
// mutations out of shared memory entirely. It is the scaling seam
// between the paper-faithful single objects (internal/core,
// internal/counter, internal/maxreg, internal/snapshot) and a serving
// workload where every process hammering one object is the bottleneck.
//
// # The plane
//
// A kind lives on the plane as two policies plus a set of backends
// (see plane.go):
//
//	kind          combine         buffer policy      envelope composition
//	counter       sum             count batching     Add -> S*Add, Buffer = (B-1)*n
//	max register  max             write elision      no widening, Buffer = B-1
//	snapshot      per-component   component elision  no widening, Buffer = B-1
//	histogram     per-bucket sum  bucket batching    no widening, Buffer = (B-1)*n
//
// Backends may additionally be randomized (RandomizedBackend, a Morris
// counter per shard): their per-shard envelope holds only with
// probability >= 1-delta per read, and the plane composes the failure
// probabilities by union bound — Delta -> min(1, S*delta) — alongside
// the numeric terms above.
//
// The combine policy folds the S per-shard reads into the object's
// value; the buffer policy decides which mutations stay handle-local.
// Everything else — construction, handle wiring, flushes, envelope
// composition, step accounting — is the generic core, shared by all
// kinds. Adding object family N+1 means declaring its backends and its
// policy row, not re-growing the plumbing.
//
// Every kind can additionally enable the read-combiner tier (the
// per-kind ReadCache options; see readcache.go): the plane keeps one
// pre-combined cell — refreshed by a background combiner goroutine on a
// reserved slot and by read-triggered inline refreshes — so reads are
// O(1) in S at the cost of a bounded staleness window, reported as the
// Stale term of Bounds.
//
// # Construction
//
// A sharded object for n process slots is S underlying objects
// ("shards"), each built over its own prim.Factory with n slots. Handle
// i mutates only its home shard i mod S (handle affinity: a mutator's
// cache traffic stays within one shard's base objects), and reads
// combine one read of every shard. Optionally each handle buffers
// mutations locally: a counter handle buffers B increments and flushes
// them in one bulk operation (object.BulkCounterHandle when the backend
// supports it), a max register handle elides writes within B-1 of its
// last flushed value, and a snapshot handle elides component updates
// within B-1 above its last flushed value (downward moves always flush),
// so most mutations touch no shared memory at all.
//
// # Accuracy composition
//
// The combined read stays accurate because both accuracy relaxations in
// this repository compose over a partition of the operations:
//
//   - Multiplicative counters: if shard s holds v_s increments and its
//     read returns x_s with v_s/k <= x_s <= k*v_s, then summing over
//     shards gives (Σ v_s)/k <= Σ x_s <= k*(Σ v_s), because both envelope
//     bounds are linear in v_s. The sum of S k-multiplicative-accurate
//     shards is therefore still k-multiplicative-accurate — independent
//     of S.
//   - Additive counters: if each shard read errs by at most ±a, the sum
//     errs by at most ±S*a. Sharding an additive-accurate backend widens
//     the envelope by the shard count.
//   - Randomized (Morris) counters: each shard's estimate is inside the
//     k-multiplicative envelope with probability >= 1-delta,
//     independently. When every shard read is in range the linearity
//     argument above puts the sum in range too, so the combined read
//     fails only if some shard read fails: by union bound the combined
//     envelope holds with probability >= 1 - S*delta. Unlike every other
//     row this is a statement about the coin flips, not the schedule —
//     the whole point of the deterministic objects is that they need no
//     such qualifier.
//   - Max registers: the max over shards IS the global max, so per-shard
//     envelopes carry over with no widening at all — even better than
//     counting. If the true global max v lives in shard s, that shard's
//     read returns x_s >= v/k, so the combined max is >= v/k; and every
//     shard's read is <= k * (its own max) <= k*v, so the combined max is
//     <= k*v. S does not appear.
//   - Snapshots: component i is only ever written in its writer's home
//     shard i mod S, so the per-component merge recovers exactly the
//     home shard's value — the combined scan is a scan of a partition,
//     and per-shard envelopes carry over unchanged. S does not appear.
//   - Counter batching: a handle buffers at most B-1 increments between
//     flushes, so at most U = (B-1)*n increments are locally buffered
//     system-wide. Buffered increments are invisible to readers, which
//     only lowers reads: against the true count v the shards jointly hold
//     w >= v - U applied increments, giving x >= (v-U)/M - A while the
//     upper bound x <= M*v + A is unaffected.
//   - Max-register write elision: a handle skips the shared write when
//     the value is within B-1 of its last flushed value, so the shards
//     may lag the true maximum v by at most U = B-1 — per handle, NOT
//     times n, because the maximum is held by ONE handle, and that
//     handle's flushed value is >= v - (B-1). Reads may therefore be
//     stale by at most B-1 below v; the upper bound is unaffected.
//   - Snapshot component elision: a handle elides updates in the window
//     [flushed, flushed + B-1] above its last flushed component value
//     and flushes everything else (in particular every downward move)
//     immediately, so a scanned component trails its true value v_i by
//     at most B-1 and never exceeds it. The staleness is per component
//     (components are disjoint across handles), so Buffer = B-1.
//   - Histograms: per-shard bucket counts are exact and every bucket's
//     combined count sums a partition over shards, so sharding widens
//     nothing — like snapshots, S does not appear. A handle buffers at
//     most B-1 whole observations (across all its buckets together)
//     between flushes, so at most (B-1)*n observations system-wide are
//     invisible to readers: the Buffer term is rank-domain slack, while
//     the declared Mult is the value-domain rounding of the bucket
//     layout built above this package (internal/histogram).
//
// Bounds carries the resulting envelope (M, A, U) and each object's
// Bounds method reports it for the configured backend, shard count, and
// batch size; the package's property tests assert it against concurrent
// executions.
//
// # Consistency
//
// Each shard is linearizable on its own, but the combined Read is a
// collect over shards: mutations landing in an already-visited shard while
// the read is still visiting later shards are missed. The combined object
// is therefore regular rather than linearizable — a Read overlapping
// mutations returns a value inside the envelope of some true value v
// between the mutations completed before the Read started and those
// started before it returned. Counters and max registers are monotone, so
// this is the same guarantee a retry-free client can observe anyway; the
// snapshot's combined Scan is per-component regular (each component is a
// single-writer register, for which regular and atomic coincide per
// component). The soak tests in this package validate exactly these
// windows.
package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/satmath"
	"approxobj/internal/telemetry"
)

// Backend constructs one shard's underlying counter and declares its
// per-shard accuracy envelope. The three backends cover the repository's
// counter families: the paper's multiplicative counter, the exact AACH
// tree, and the batched additive collect.
type Backend = backend[object.Counter]

// kIdentity is the envelope function of backends whose per-shard
// accuracy is the parameter k itself.
func kIdentity(k uint64) uint64 { return k }

// MultBackend shards the paper's Algorithm 1 (core.MultCounter): each shard
// is k-multiplicative-accurate, and so is the sum.
func MultBackend() Backend {
	return Backend{
		meta: meta{name: "mult", mult: kIdentity},
		make: func(f *prim.Factory, k uint64) (object.Counter, error) {
			return core.NewMultCounter(f, k)
		},
	}
}

// AACHBackend shards the exact AACH tree counter: the sum is exact (modulo
// batching), trading read cost O(S log v) for per-shard increment locality.
func AACHBackend() Backend {
	return Backend{
		meta: meta{name: "aach"},
		make: func(f *prim.Factory, _ uint64) (object.Counter, error) {
			return counter.NewAACH(f)
		},
	}
}

// AdditiveBackend shards the k-additive-accurate batched collect: each
// shard errs by at most ±k, so the sum errs by at most ±S*k.
func AdditiveBackend() Backend {
	return Backend{
		meta: meta{name: "additive", add: kIdentity},
		make: func(f *prim.Factory, k uint64) (object.Counter, error) {
			return counter.NewAdditive(f, k)
		},
	}
}

// RandomizedBackend shards the Morris counter: each shard is a single
// exponent register whose estimate lands in the k-multiplicative
// envelope with probability >= 1-delta per read (counter.MorrisParam
// picks the Morris accuracy parameter from k and delta via Chebyshev),
// so the summed read is in range with probability >= 1 - S*delta — the
// Delta term of Bounds. Requires k >= 2 (the envelope must have an
// inside to land in) and 0 < delta < 1.
//
// Each call to the returned backend's make — one per shard, and one per
// shard per epoch under a window's rotation — derives a fresh seed from
// the base seed and an internal counter, so no two shards share a
// random stream while a fixed base seed still reproduces the whole
// object deterministically.
func RandomizedBackend(delta float64, seed int64) Backend {
	var nth atomic.Int64
	return Backend{
		meta: meta{name: "morris", mult: kIdentity, delta: delta},
		make: func(f *prim.Factory, k uint64) (object.Counter, error) {
			if k < 2 {
				return nil, fmt.Errorf("shard: randomized backend needs k >= 2, got %d", k)
			}
			if delta <= 0 || delta >= 1 {
				return nil, fmt.Errorf("shard: randomized backend needs 0 < delta < 1, got %v", delta)
			}
			return counter.NewMorris(f, counter.MorrisParam(k, delta), seed+nth.Add(1)-1)
		},
	}
}

// Option configures a sharded counter.
type Option func(*config)

type config struct {
	shards    int
	batch     int
	backend   Backend
	readStale time.Duration
	tel       *telemetry.Sink
}

// Shards sets the shard count S (default 1). Increments spread across
// shards by handle affinity; reads cost one underlying read per shard.
func Shards(s int) Option { return func(c *config) { c.shards = s } }

// Batch sets the per-handle increment buffer B (default 1, i.e. no
// buffering). A handle flushes its buffer to the home shard every B
// increments, so at most (B-1) increments per handle are invisible to
// readers between flushes; Counter.Bounds accounts for them.
func Batch(b int) Option { return func(c *config) { c.batch = b } }

// WithBackend selects the per-shard counter implementation (default
// MultBackend).
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// ReadCache enables the read-combiner tier (default off): reads serve a
// pre-combined cell at most d old in O(1) instead of summing S shard
// reads, at the cost of the Stale term in Bounds. The counter's LAST
// slot is reserved for the background combiner goroutine (so n must be
// >= 2); stop it with Close.
func ReadCache(d time.Duration) Option { return func(c *config) { c.readStale = d } }

// Telemetry attaches an internal telemetry sink to the counter's runtime
// paths (flushes, buffer hits, read-cache traffic, combiner ticks, arena
// rows). The default, nil, disables instrumentation entirely: the hot
// paths see a single never-taken branch.
func Telemetry(s *telemetry.Sink) Option { return func(c *config) { c.tel = s } }

// Bounds is the documented read envelope of a sharded object: against a
// true value v, a Read may return any x with
//
//	(v - Buffer)/Mult - Add <= x <= Mult*v + Add.
//
// It is the universal envelope type of internal/object, aliased here
// because the sharded runtime is where all three terms (multiplicative
// factor, summed per-shard additive slack, handle-buffered mutations)
// first compose.
type Bounds = object.Bounds

// counterPolicy is the counter's row of the plane: reads sum the shards
// (so per-shard additive slack sums too), and handles batch increment
// counts (so the B-1 staleness scales with the handle count).
var counterPolicy = policy{
	combine:               "sum",
	buffer:                countBatching,
	addScalesWithShards:   true,
	bufferScalesWithProcs: true,
}

// Counter is the sharded counter: S independently accurate shards summed
// by readers. Create handles with Handle; the zero value is not usable.
type Counter struct {
	p *plane[object.Counter, object.CounterHandle, uint64]
}

// New creates a sharded counter for n process slots with accuracy
// parameter k, configured by opts. Each shard is built over its own
// n-slot prim.Factory, so any handle can read every shard; backend
// preconditions (e.g. k >= sqrt(n) for MultBackend) apply per shard.
func New(n int, k uint64, opts ...Option) (*Counter, error) {
	cfg := config{shards: 1, batch: 1, backend: MultBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	p, err := newPlane(n, k, cfg.shards, cfg.batch, cfg.readStale, cfg.tel, cfg.backend, counterPolicy,
		func(o object.Counter, pr *prim.Proc) object.CounterHandle { return o.CounterHandle(pr) },
		satmath.Add, nil, newScalarReadCache,
	)
	if err != nil {
		return nil, err
	}
	return &Counter{p: p}, nil
}

// N returns the number of process slots.
func (c *Counter) N() int { return c.p.N() }

// K returns the accuracy parameter passed to the backend.
func (c *Counter) K() uint64 { return c.p.K() }

// Shards returns the shard count S.
func (c *Counter) Shards() int { return c.p.Shards() }

// Batch returns the per-handle buffer size B (1 means unbuffered).
func (c *Counter) Batch() uint64 { return c.p.Batch() }

// Backend returns the configured backend.
func (c *Counter) Backend() Backend { return c.p.be }

// ReadCache returns the read-cache staleness window (0 when off).
func (c *Counter) ReadCache() time.Duration { return c.p.ReadCache() }

// Close stops the read cache's background combiner goroutine, if any.
// Idempotent; handles stay usable (cached reads refresh inline).
func (c *Counter) Close() { c.p.Close() }

// Bounds returns the combined read envelope for this configuration (see
// the package comment for the composition argument).
func (c *Counter) Bounds() Bounds { return c.p.Bounds() }

// BaseObjects returns the number of base objects allocated across all
// shards — the counter's space cost in the paper's model.
func (c *Counter) BaseObjects() uint64 { return c.p.BaseObjects() }

// Handle binds process slot i (0 <= i < n) to the counter. The handle
// increments shard i mod S and reads all shards through slot i of each
// shard's factory. Like every handle in this repository it must be used by
// a single goroutine.
func (c *Counter) Handle(i int) *Handle {
	h := &Handle{handleCore: c.p.newCore(i)}
	if bulk, ok := h.home.(object.BulkCounterHandle); ok {
		h.buf.flush = bulk.IncN
	} else {
		home := h.home
		h.buf.flush = func(d uint64) {
			for ; d > 0; d-- {
				home.Inc()
			}
		}
	}
	return h
}

// Handle is one process's view of the sharded counter. It satisfies the
// public CounterHandle interface (Inc, Read, Steps) and adds Flush for
// draining the batch buffer before quiescent reads; Read sums one read
// of every shard, saturating at MaxUint64.
type Handle struct {
	handleCore[object.CounterHandle, uint64]
}

var _ object.CounterHandle = (*Handle)(nil)

// Inc adds one. With Batch(B > 1) the increment is buffered locally and
// flushed to the home shard every B calls, so B-1 of every B Incs are a
// single local add.
func (h *Handle) Inc() { h.buf.add(1) }
