package shard_test

import (
	"strings"
	"testing"

	"approxobj/internal/core"
	"approxobj/internal/prim"
	"approxobj/internal/shard"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		k    uint64
		opts []shard.Option
		want string // substring of the error, "" for success
	}{
		{name: "ok-defaults", n: 4, k: 2},
		{name: "ok-sharded-batched", n: 8, k: 4, opts: []shard.Option{shard.Shards(4), shard.Batch(16)}},
		{name: "no-processes", n: 0, k: 2, want: "at least one process"},
		{name: "zero-shards", n: 4, k: 2, opts: []shard.Option{shard.Shards(0)}, want: "shard count"},
		{name: "zero-batch", n: 4, k: 2, opts: []shard.Option{shard.Batch(0)}, want: "batch size"},
		// The mult backend's k >= sqrt(n) precondition applies per shard
		// (every shard has n slots) and surfaces through New.
		{name: "k-too-small", n: 16, k: 2, want: "sqrt(n)"},
		{name: "aach-ignores-k", n: 16, k: 2, opts: []shard.Option{shard.WithBackend(shard.AACHBackend())}},
	} {
		_, err := shard.New(tc.n, tc.k, tc.opts...)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want one containing %q", tc.name, err, tc.want)
		}
	}
}

// TestExactShardingSequential drives the exact AACH backend sequentially:
// with Mult=1, Add=0, Buffer=0 the combined read must equal the true count
// after any prefix, across shard counts and handle placements.
func TestExactShardingSequential(t *testing.T) {
	for _, s := range []int{1, 2, 3, 5} {
		const n = 5
		c, err := shard.New(n, 0, shard.Shards(s), shard.WithBackend(shard.AACHBackend()))
		if err != nil {
			t.Fatal(err)
		}
		handles := make([]*shard.Handle, n)
		for i := range handles {
			handles[i] = c.Handle(i)
		}
		var v uint64
		for round := 0; round < 40; round++ {
			h := handles[round%n]
			for j := 0; j <= round%3; j++ {
				h.Inc()
				v++
			}
			if got := handles[(round+1)%n].Read(); got != v {
				t.Fatalf("S=%d: after %d incs read %d", s, v, got)
			}
		}
	}
}

// TestBatchBuffering checks the batch semantics directly on the exact
// backend: B-1 increments stay invisible, the B-th flushes all of them,
// and Flush drains a partial buffer.
func TestBatchBuffering(t *testing.T) {
	const b = 4
	c, err := shard.New(2, 0, shard.Shards(2), shard.Batch(b), shard.WithBackend(shard.AACHBackend()))
	if err != nil {
		t.Fatal(err)
	}
	w, r := c.Handle(0), c.Handle(1)
	for j := 1; j < b; j++ {
		w.Inc()
		if got := r.Read(); got != 0 {
			t.Fatalf("after %d buffered incs read %d, want 0", j, got)
		}
	}
	if got := w.Pending(); got != b-1 {
		t.Fatalf("pending = %d, want %d", got, b-1)
	}
	w.Inc() // B-th increment flushes the whole buffer
	if got := r.Read(); got != b {
		t.Fatalf("after flush-triggering inc read %d, want %d", got, b)
	}
	w.Inc()
	w.Flush()
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending after Flush = %d, want 0", got)
	}
	if got := r.Read(); got != b+1 {
		t.Fatalf("after explicit Flush read %d, want %d", got, b+1)
	}
}

func TestBounds(t *testing.T) {
	mult, err := shard.New(4, 4, shard.Shards(3), shard.Batch(8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mult.Bounds(), (shard.Bounds{Mult: 4, Add: 0, Buffer: 7 * 4}); got != want {
		t.Errorf("mult bounds = %+v, want %+v", got, want)
	}
	add, err := shard.New(4, 10, shard.Shards(3), shard.WithBackend(shard.AdditiveBackend()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := add.Bounds(), (shard.Bounds{Mult: 1, Add: 30, Buffer: 0}); got != want {
		t.Errorf("additive bounds = %+v, want %+v", got, want)
	}
	exact, err := shard.New(4, 0, shard.WithBackend(shard.AACHBackend()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := exact.Bounds(), (shard.Bounds{Mult: 1}); got != want {
		t.Errorf("exact bounds = %+v, want %+v", got, want)
	}
}

func TestBoundsContains(t *testing.T) {
	exact := shard.Bounds{Mult: 1}
	if !exact.Contains(7, 7) || exact.Contains(7, 6) || exact.Contains(7, 8) {
		t.Error("exact bounds must admit only x == v")
	}
	m := shard.Bounds{Mult: 2}
	for _, tc := range []struct {
		v, x uint64
		ok   bool
	}{
		{100, 50, true}, {100, 200, true}, {100, 49, false}, {100, 201, false},
		{0, 0, true}, {0, 1, false},
		{101, 51, true}, {101, 50, false}, // lower bound v/k over the reals, not integer division
	} {
		if got := m.Contains(tc.v, tc.x); got != tc.ok {
			t.Errorf("mult2.Contains(%d, %d) = %v, want %v", tc.v, tc.x, got, tc.ok)
		}
	}
	buf := shard.Bounds{Mult: 2, Buffer: 10}
	if !buf.Contains(100, 45) { // (100-10)/2 = 45 is reachable with a full buffer
		t.Error("buffered lower bound should admit (v-Buffer)/Mult")
	}
	if buf.Contains(100, 44) {
		t.Error("buffered lower bound should reject below (v-Buffer)/Mult")
	}
	if buf.Contains(100, 201) {
		t.Error("buffering must not raise the upper bound")
	}
	if !buf.ContainsRange(100, 110, 220) || buf.ContainsRange(100, 110, 221) {
		t.Error("ContainsRange must apply the upper bound at vmax")
	}
	if !buf.ContainsRange(100, 110, 45) || buf.ContainsRange(100, 110, 44) {
		t.Error("ContainsRange must apply the lower bound at vmin")
	}
}

// TestMultIncNEquivalence drives two identical MultCounters sequentially,
// one via Inc and one via IncN, and requires identical observable state:
// the batched flush path must be indistinguishable from the loop it
// replaces.
func TestMultIncNEquivalence(t *testing.T) {
	mk := func() (*core.MultCounter, *core.MultHandle) {
		f := prim.NewFactory(3)
		c, err := core.NewMultCounter(f, 2)
		if err != nil {
			t.Fatal(err)
		}
		return c, c.Handle(f.Proc(0))
	}
	c1, h1 := mk()
	c2, h2 := mk()
	var total uint64
	for _, d := range []uint64{1, 3, 7, 64, 100} {
		for i := uint64(0); i < d; i++ {
			h1.Inc()
		}
		h2.IncN(d)
		total += d
		r1, r2 := h1.Read(), h2.Read()
		if r1 != r2 {
			t.Fatalf("after %d incs: Inc-loop read %d, IncN read %d", total, r1, r2)
		}
		for i := uint64(0); i < 3*total; i++ {
			if c1.SwitchState(i) != c2.SwitchState(i) {
				t.Fatalf("after %d incs: switch %d differs", total, i)
			}
		}
	}
}

// TestShardedSteps sanity-checks the cost model the sharding exists for:
// with batching, the amortized shared steps per Inc drop by roughly the
// batch factor on backends with a real bulk path.
func TestShardedSteps(t *testing.T) {
	run := func(batch int) uint64 {
		c, err := shard.New(1, 0, shard.Batch(batch), shard.WithBackend(shard.AACHBackend()))
		if err != nil {
			t.Fatal(err)
		}
		h := c.Handle(0)
		for i := 0; i < 1024; i++ {
			h.Inc()
		}
		return h.Steps()
	}
	plain, batched := run(1), run(64)
	if batched*8 > plain {
		t.Errorf("batch=64 took %d steps vs %d unbatched; expected >= 8x reduction", batched, plain)
	}
}
