package shard

import (
	"fmt"

	"approxobj/internal/prim"
	"approxobj/internal/telemetry"
)

// runtime is the shard-allocation core of the backend plane: S
// independent instances of one underlying object ("shards"), each built
// over its own n-slot prim.Factory so that any process slot can reach
// every shard. Every kind (Counter, MaxReg, Snapshot) shares it through
// the generic plane in plane.go — what differs per kind is declared
// there as a policy row (a Combine for reads, a bufferPolicy for
// handle-local mutations) plus a backend set. To add object family N+1,
// register those in a new kind file next to snapshot.go; do not grow
// bespoke paths here.
type runtime[O any] struct {
	n      int
	shards []O
	facts  []*prim.Factory
}

// newRuntime builds S shards of n slots each via mk. kind names the
// backend in construction errors. tel (nil when uninstrumented) is
// attached to each shard's factory before the shard is built, so
// construction-time arena rows are counted.
func newRuntime[O any](kind string, n, shards int, tel *telemetry.Sink, mk func(f *prim.Factory) (O, error)) (*runtime[O], error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one process slot, got %d", n)
	}
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count must be >= 1, got %d", shards)
	}
	rt := &runtime[O]{
		n:      n,
		shards: make([]O, shards),
		facts:  make([]*prim.Factory, shards),
	}
	for s := range rt.shards {
		f := prim.NewFactory(n)
		f.Instrument(tel)
		o, err := mk(f)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d/%d (%s): %w", s, shards, kind, err)
		}
		rt.facts[s] = f
		rt.shards[s] = o
	}
	return rt, nil
}

// slotProcs binds process slot i to every shard's factory (panics on
// out-of-range i, like Factory.Proc). The proc at index s drives shard s.
func (rt *runtime[O]) slotProcs(i int) []*prim.Proc {
	procs := make([]*prim.Proc, len(rt.facts))
	for s, f := range rt.facts {
		procs[s] = f.Proc(i)
	}
	return procs
}

// home returns the home shard of slot i (handle affinity: a handle's
// mutations all land on shard i mod S, keeping its cache traffic within
// one shard's base objects).
func (rt *runtime[O]) home(i int) int { return i % len(rt.shards) }

// errBatch rejects non-positive per-handle buffer sizes (shared by both
// kinds' constructors).
func errBatch(b int) error {
	return fmt.Errorf("shard: batch size must be >= 1, got %d", b)
}

// stepsOf sums the shared-memory steps a slot has taken across all shards.
func stepsOf(procs []*prim.Proc) uint64 {
	var steps uint64
	for _, p := range procs {
		steps += p.Steps()
	}
	return steps
}
