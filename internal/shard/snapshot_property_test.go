package shard_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"approxobj/internal/planetest"
	"approxobj/internal/shard"
)

// runSnapshotEnvelopeCheck drives writers goroutines, each the single
// writer of its own component (op j writes planetest.SeqValue(j)),
// against a sharded snapshot while one dedicated reader checks EVERY
// concurrently scanned component against the documented per-component
// envelope, relative to the component's regularity window: between the
// updates completed before the scan started and those started before it
// returned (planetest.Window computes the value hull of that window —
// tight for the monotone sequence, conservative for the mixed one).
func runSnapshotEnvelopeCheck(t *testing.T, writers, perG int, mixed bool, opts ...shard.SnapshotOption) {
	t.Helper()
	n := writers + 1 // slot n-1 is the reader
	sn, err := shard.NewSnapshot(n, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	bounds := sn.Bounds()

	started := make([]atomic.Uint64, writers)   // updates started per component
	completed := make([]atomic.Uint64, writers) // updates completed per component
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(writers)
	handles := make([]*shard.SnapshotHandle, writers)
	for i := 0; i < writers; i++ {
		h := sn.Handle(i)
		handles[i] = h
		if h.Component() != i {
			t.Fatalf("handle %d reports component %d", i, h.Component())
		}
		i := i
		go func() {
			defer wg.Done()
			for j := 1; j <= perG; j++ {
				started[i].Store(uint64(j))
				h.Update(planetest.SeqValue(uint64(j), mixed))
				completed[i].Store(uint64(j))
			}
		}()
	}

	var checks uint64
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rh := sn.Handle(n - 1)
		check := func() {
			a := make([]uint64, writers)
			for i := range a {
				a[i] = completed[i].Load()
			}
			view := rh.Scan()
			for i := 0; i < writers; i++ {
				b := started[i].Load()
				// The component's true value during the scan is
				// SeqValue(t) for some op t in [a[i], b]: inside the
				// window's value hull.
				vmin, vmax := planetest.Window(a[i], b, mixed)
				checks++
				if !bounds.ContainsRange(vmin, vmax, view[i]) {
					t.Errorf("component %d read %d outside envelope %+v for any value in [%d, %d]", i, view[i], bounds, vmin, vmax)
				}
			}
		}
		for !done.Load() {
			check()
		}
		check() // one fully quiescent scan
	}()

	wg.Wait()
	done.Store(true)
	readerWG.Wait()
	if checks == 0 {
		t.Fatal("reader performed no checks")
	}

	// After flushing every writer handle the elision headroom disappears:
	// the exact backend's merged scan must equal each component's final
	// value exactly.
	for _, h := range handles {
		h.Flush()
	}
	view := sn.Handle(n - 1).Scan()
	for i := 0; i < writers; i++ {
		if want := planetest.SeqValue(uint64(perG), mixed); view[i] != want {
			t.Errorf("component %d flushed scan = %d, want exactly %d", i, view[i], want)
		}
	}
}

// TestShardedSnapshotEnvelopeSweep sweeps (writers, shards, batch) over
// monotone and mixed per-component sequences, checking every
// concurrently scanned component against the documented envelope. Note
// Bounds is identical for every shard count: the per-component merge
// widens nothing.
func TestShardedSnapshotEnvelopeSweep(t *testing.T) {
	perG := 2_000
	if testing.Short() {
		perG = 300
	}
	for _, writers := range []int{1, 3} {
		for _, s := range []int{1, 2, 5} {
			for _, b := range []int{1, 8} {
				for _, mixed := range []bool{false, true} {
					name := "mono"
					if mixed {
						name = "mixed"
					}
					t.Run(
						name+"-w"+itoa(writers)+"-s"+itoa(s)+"-b"+itoa(b),
						func(t *testing.T) {
							t.Parallel()
							runSnapshotEnvelopeCheck(t, writers, perG, mixed,
								shard.SnapshotShards(s), shard.SnapshotBatch(b))
						})
				}
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestSnapshotShardingInvariance pins the composition claim directly:
// the envelope must not depend on the shard count.
func TestSnapshotShardingInvariance(t *testing.T) {
	var want shard.Bounds
	for s := 1; s <= 4; s++ {
		sn, err := shard.NewSnapshot(4, 1, shard.SnapshotShards(s), shard.SnapshotBatch(5))
		if err != nil {
			t.Fatal(err)
		}
		if s == 1 {
			want = sn.Bounds()
			if want != (shard.Bounds{Mult: 1, Add: 0, Buffer: 4}) {
				t.Fatalf("unsharded snapshot Bounds = %+v, want {Mult:1 Add:0 Buffer:4}", want)
			}
			continue
		}
		if got := sn.Bounds(); got != want {
			t.Errorf("S=%d Bounds = %+v, want %+v (independent of S)", s, got, want)
		}
	}
}

// TestSnapshotElision pins the component-elision semantics directly on
// the handle: upward moves inside the window stay local (no shared
// steps, latest value pending), downward moves and moves past the window
// write through, Flush publishes the pending value.
func TestSnapshotElision(t *testing.T) {
	const b = 4 // elision window [flushed, flushed+3]
	sn, err := shard.NewSnapshot(2, 1, shard.SnapshotShards(2), shard.SnapshotBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	w := sn.Handle(0)
	r := sn.Handle(1)

	shared := func(f func()) uint64 {
		before := w.Steps()
		f()
		return w.Steps() - before
	}

	// 1 is inside the initial window [0, 3]: elided, invisible to scans.
	if s := shared(func() { w.Update(1) }); s != 0 {
		t.Errorf("Update(1) inside the window took %d shared steps, want 0", s)
	}
	if w.Pending() != 1 {
		t.Errorf("Pending = %d after eliding 1, want 1", w.Pending())
	}
	if v := r.Scan()[0]; v != 0 {
		t.Errorf("component 0 scans as %d after elided update, want 0", v)
	}

	// 5 leaves the window: written through, pending superseded.
	if s := shared(func() { w.Update(5) }); s == 0 {
		t.Error("Update(5) outside the window took no shared steps")
	}
	if v := r.Scan()[0]; v != 5 {
		t.Errorf("component 0 scans as %d after write-through of 5, want 5", v)
	}

	// 6..8 are inside [5, 8]: elided, the LATEST (not highest) pending.
	if s := shared(func() { w.Update(8); w.Update(6) }); s != 0 {
		t.Errorf("in-window updates took %d shared steps, want 0", s)
	}
	if w.Pending() != 6 {
		t.Errorf("Pending = %d, want the latest elided value 6", w.Pending())
	}

	// A downward move always writes through: scans must not overstate.
	if s := shared(func() { w.Update(2) }); s == 0 {
		t.Error("downward Update(2) took no shared steps")
	}
	if v := r.Scan()[0]; v != 2 {
		t.Errorf("component 0 scans as %d after downward move, want 2", v)
	}

	// Re-writing the flushed value supersedes any pending elision.
	w.Update(3)
	w.Update(2)
	if w.Pending() != 0 {
		t.Errorf("Pending = %d after returning to the flushed value, want 0", w.Pending())
	}

	// Flush publishes the pending elided value.
	w.Update(4)
	w.Flush()
	if v := r.Scan()[0]; v != 4 {
		t.Errorf("component 0 scans as %d after Flush, want 4", v)
	}
	if w.Pending() != 0 {
		t.Errorf("Pending = %d after Flush, want 0", w.Pending())
	}
}

// TestSnapshotHandleRecreation pins the elision-state recovery of a
// re-created handle: the envelope's "a scanned component never exceeds
// its true value" clause must survive abandoning a handle and building a
// new one for the same slot — a fresh handle's elision window must be
// anchored at the component's currently flushed value, not at zero, so a
// downward move still writes through.
func TestSnapshotHandleRecreation(t *testing.T) {
	sn, err := shard.NewSnapshot(2, 1, shard.SnapshotBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	r := sn.Handle(1)

	h1 := sn.Handle(0)
	h1.Update(100) // writes through (outside the initial window)
	if v := r.Scan()[0]; v != 100 {
		t.Fatalf("component 0 = %d after write-through, want 100", v)
	}

	// Abandon h1; a new handle for slot 0 must not elide the downward
	// move to 3 (3 is inside a zero-anchored window [0, 7]).
	h2 := sn.Handle(0)
	h2.Update(3)
	if v := r.Scan()[0]; v != 3 {
		t.Errorf("component 0 = %d after re-created handle's downward move, want 3 (scan overstates the component)", v)
	}

	// And in-window elision still works relative to the recovered value.
	h2.Update(5)
	if v := r.Scan()[0]; v != 3 {
		t.Errorf("component 0 = %d, want 3 (in-window update must still elide)", v)
	}
	h2.Flush()
	if v := r.Scan()[0]; v != 5 {
		t.Errorf("component 0 = %d after flush, want 5", v)
	}

	// The same invariant at batch=1 (no elision window): even the
	// value-unchanged fast path must not fire against a stale zero, so a
	// re-created handle's Update(0) writes through.
	un, err := shard.NewSnapshot(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ur := un.Handle(1)
	un.Handle(0).Update(5)
	un.Handle(0).Update(0) // fresh handle for slot 0
	if v := ur.Scan()[0]; v != 0 {
		t.Errorf("component 0 = %d after re-created unbuffered handle's Update(0), want 0", v)
	}
}

// TestSnapshotHandleConstructionCost pins the cost of recovering a
// handle's elision anchor: the AADGMS backend exposes a single-component
// read, so (re)creating a handle costs ONE register read on the home
// shard — not a full O(n^2) scan. (Steps are counted per process slot
// and survive across handle instances, so the construction cost is the
// delta around Handle.)
func TestSnapshotHandleConstructionCost(t *testing.T) {
	for _, s := range []int{1, 3} {
		sn, err := shard.NewSnapshot(8, 1, shard.SnapshotShards(s), shard.SnapshotBatch(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			sn.Handle(i).Update(uint64(100 + i))
		}
		probe := sn.Handle(0)
		before := probe.Steps()
		h := sn.Handle(0)
		if d := h.Steps() - before; d != 1 {
			t.Errorf("S=%d: re-creating a handle took %d shared steps, want 1 (one component read)", s, d)
		}
		// And the recovered anchor still protects the envelope: the
		// downward move writes through.
		h.Update(3)
		if v := sn.Handle(1).Scan()[0]; v != 3 {
			t.Errorf("S=%d: component 0 = %d after recovered handle's downward move, want 3", s, v)
		}
	}
}

// TestNewSnapshotValidation mirrors the other kinds' constructor checks.
func TestNewSnapshotValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		opts []shard.SnapshotOption
		want string // error substring; "" means valid
	}{
		{name: "ok", n: 4, opts: []shard.SnapshotOption{shard.SnapshotShards(3), shard.SnapshotBatch(16)}},
		{name: "zero-procs", n: 0, want: "process slot"},
		{name: "zero-shards", n: 4, opts: []shard.SnapshotOption{shard.SnapshotShards(0)}, want: "shard count"},
		{name: "zero-batch", n: 4, opts: []shard.SnapshotOption{shard.SnapshotBatch(0)}, want: "batch size"},
	} {
		_, err := shard.NewSnapshot(tc.n, 1, tc.opts...)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

// FuzzSnapshotAccuracy lets the fuzzer pick the configuration: any
// (writers, shards, batch, ops) combination must keep every concurrently
// scanned component inside the envelope, under both the monotone and the
// mixed per-component sequences of runSnapshotEnvelopeCheck. The seeds
// cover the corners (single shard, batch 1, wide elision window); 'go
// test' runs them on every CI pass and
// 'go test -fuzz=FuzzSnapshotAccuracy ./internal/shard' explores further.
func FuzzSnapshotAccuracy(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint16(200), false)
	f.Add(uint8(3), uint8(4), uint8(8), uint16(1000), true)
	f.Add(uint8(4), uint8(2), uint8(64), uint16(2000), true)
	f.Fuzz(func(t *testing.T, writersIn, sIn, bIn uint8, opsIn uint16, mixed bool) {
		writers := int(writersIn)%4 + 1
		s := int(sIn)%8 + 1
		b := int(bIn)%64 + 1
		perG := int(opsIn)%2_000 + 50
		runSnapshotEnvelopeCheck(t, writers, perG, mixed,
			shard.SnapshotShards(s), shard.SnapshotBatch(b))
	})
}
