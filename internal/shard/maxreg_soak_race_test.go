package shard_test

import (
	"sync"
	"testing"

	"approxobj/internal/shard"
)

// TestShardedMaxRegConcurrentSoak hammers sharded max registers from n
// real goroutines (nil-Gate procs: the production atomic path) across
// backends, shard counts and elision windows, then asserts the documented
// combined envelope on the final Read — first with elided writes still
// pending (full Bounds, including the Buffer headroom), then after
// flushing every handle (Buffer = 0: the pure shard-composition
// envelope, which for max registers is the per-shard envelope verbatim).
// Run with -race this is the data-race check for the max-register side of
// the unified runtime.
func TestShardedMaxRegConcurrentSoak(t *testing.T) {
	const bound = uint64(1) << 40
	for _, tc := range []struct {
		name string
		k    uint64
		n    int
		opts []shard.MaxRegOption
		perG int
	}{
		{name: "exact-1shard", k: 1, n: 8, perG: 10_000},
		{name: "exact-4shards", k: 1, n: 8,
			opts: []shard.MaxRegOption{shard.MaxRegShards(4)}, perG: 10_000},
		{name: "exact-4shards-batch16", k: 1, n: 8,
			opts: []shard.MaxRegOption{shard.MaxRegShards(4), shard.MaxRegBatch(16)}, perG: 10_000},
		{name: "exact-bounded-4shards-batch8", k: 1, n: 8,
			opts: []shard.MaxRegOption{shard.MaxRegShards(4), shard.MaxRegBatch(8), shard.WithMaxRegBackend(shard.ExactBoundedMaxBackend(bound))}, perG: 5_000},
		{name: "mult-4shards", k: 4, n: 8,
			opts: []shard.MaxRegOption{shard.MaxRegShards(4), shard.WithMaxRegBackend(shard.MultMaxBackend())}, perG: 10_000},
		{name: "mult-8shards-batch64", k: 8, n: 16,
			opts: []shard.MaxRegOption{shard.MaxRegShards(8), shard.MaxRegBatch(64), shard.WithMaxRegBackend(shard.MultMaxBackend())}, perG: 5_000},
		{name: "mult-bounded-4shards-batch16", k: 2, n: 8,
			opts: []shard.MaxRegOption{shard.MaxRegShards(4), shard.MaxRegBatch(16), shard.WithMaxRegBackend(shard.MultBoundedMaxBackend(bound))}, perG: 5_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, err := shard.NewMaxReg(tc.n, tc.k, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*shard.MaxRegHandle, tc.n)
			for i := range handles {
				handles[i] = m.Handle(i)
			}
			var wg sync.WaitGroup
			wg.Add(tc.n)
			for i := 0; i < tc.n; i++ {
				h := handles[i]
				id := uint64(i)
				go func() {
					defer wg.Done()
					for j := 1; j <= tc.perG; j++ {
						v := uint64(j)*uint64(tc.n) + id
						h.Write(v)
						if j%16 == 0 {
							h.Write(v / 3) // non-monotone: dominated, must be free
						}
						if j%1000 == 0 {
							h.Read()
						}
					}
				}()
			}
			wg.Wait()

			trueMax := uint64(tc.perG)*uint64(tc.n) + uint64(tc.n) - 1
			bounds := m.Bounds()
			if got := handles[0].Read(); !bounds.Contains(trueMax, got) {
				t.Errorf("pre-flush read %d outside envelope %+v of true max %d", got, bounds, trueMax)
			}
			for _, h := range handles {
				h.Flush()
			}
			bounds.Buffer = 0
			for i, h := range handles {
				if got := h.Read(); !bounds.Contains(trueMax, got) {
					t.Errorf("handle %d: flushed read %d outside envelope %+v of true max %d", i, got, bounds, trueMax)
				}
			}
		})
	}
}
