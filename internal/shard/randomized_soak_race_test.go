package shard_test

import (
	"sync"
	"testing"

	"approxobj/internal/shard"
)

// TestRandomizedConcurrentSoak hammers Morris-backed counters from n
// real goroutines across shard counts and batch sizes — the data-race
// check for the randomized backend under churn (run with -race). The
// per-handle RNG state is the point of interest: every goroutine flips
// its own SplitMix64 stream with no shared mutable state, so the only
// cross-goroutine traffic is the CAS on the shard's exponent register.
// delta is set tight (0.001) so the final envelope assertion itself is
// sound to run unconditionally: the per-read failure probability,
// union-bounded over shards, stays below 1e-2, and the Chebyshev
// parameter is conservative enough that a violation in practice means a
// broken estimator, not bad luck.
func TestRandomizedConcurrentSoak(t *testing.T) {
	const delta = 0.001
	for _, tc := range []struct {
		name string
		k    uint64
		n    int
		opts []shard.Option
		perG int
	}{
		{name: "morris-1shard", k: 4, n: 8, perG: 10_000},
		{name: "morris-4shards", k: 4, n: 8, opts: []shard.Option{shard.Shards(4)}, perG: 10_000},
		{name: "morris-4shards-batch16", k: 4, n: 8, opts: []shard.Option{shard.Shards(4), shard.Batch(16)}, perG: 10_000},
		{name: "morris-8shards-batch64", k: 8, n: 16, opts: []shard.Option{shard.Shards(8), shard.Batch(64)}, perG: 5_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]shard.Option{shard.WithBackend(shard.RandomizedBackend(delta, 0x5eed+int64(tc.n)))}, tc.opts...)
			c, err := shard.New(tc.n, tc.k, opts...)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*shard.Handle, tc.n)
			for i := range handles {
				handles[i] = c.Handle(i)
			}
			var wg sync.WaitGroup
			wg.Add(tc.n)
			for i := 0; i < tc.n; i++ {
				h := handles[i]
				go func() {
					defer wg.Done()
					for j := 0; j < tc.perG; j++ {
						h.Inc()
						if j%1000 == 0 {
							h.Read()
						}
					}
				}()
			}
			wg.Wait()

			bounds := c.Bounds()
			if bounds.Delta <= 0 {
				t.Fatalf("randomized plane reports Delta = %g, want > 0 (Bounds %+v)", bounds.Delta, bounds)
			}
			for _, h := range handles {
				h.Flush()
			}
			total := uint64(tc.n * tc.perG)
			for i, h := range handles {
				if got := h.Read(); !bounds.Contains(total, got) {
					t.Errorf("handle %d: flushed read %d outside envelope %+v of true count %d", i, got, bounds, total)
				}
			}
		})
	}
}
