package shard_test

import (
	"sync"
	"testing"

	"approxobj/internal/shard"
)

// TestShardedSnapshotConcurrentSoak hammers sharded snapshots from n
// real goroutines (nil-Gate procs: the production atomic path) across
// shard counts and elision windows — every writer updating its own
// component with a non-monotone sequence while also scanning — then
// asserts the exact per-component values after flushing every handle.
// Run with -race this is the data-race check for the snapshot side of
// the backend plane.
func TestShardedSnapshotConcurrentSoak(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		opts []shard.SnapshotOption
		perG int
	}{
		{name: "1shard", n: 4, perG: 2_000},
		{name: "4shards", n: 8, opts: []shard.SnapshotOption{shard.SnapshotShards(4)}, perG: 2_000},
		{name: "4shards-batch16", n: 8,
			opts: []shard.SnapshotOption{shard.SnapshotShards(4), shard.SnapshotBatch(16)}, perG: 2_000},
		{name: "3shards-batch64", n: 6,
			opts: []shard.SnapshotOption{shard.SnapshotShards(3), shard.SnapshotBatch(64)}, perG: 1_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sn, err := shard.NewSnapshot(tc.n, 1, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*shard.SnapshotHandle, tc.n)
			for i := range handles {
				handles[i] = sn.Handle(i)
			}
			var wg sync.WaitGroup
			wg.Add(tc.n)
			for i := 0; i < tc.n; i++ {
				h := handles[i]
				id := uint64(i)
				go func() {
					defer wg.Done()
					for j := 1; j <= tc.perG; j++ {
						v := uint64(j)*3 + id
						h.Update(v)
						if j%16 == 0 {
							h.Update(v / 2) // non-monotone: must write through
							h.Update(v)
						}
						if j%500 == 0 {
							h.Scan()
						}
					}
				}()
			}
			wg.Wait()

			for _, h := range handles {
				h.Flush()
			}
			view := handles[0].Scan()
			for i := 0; i < tc.n; i++ {
				if want := uint64(tc.perG)*3 + uint64(i); view[i] != want {
					t.Errorf("component %d = %d after flush, want exactly %d", i, view[i], want)
				}
			}
		})
	}
}
