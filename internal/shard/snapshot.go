package shard

import (
	"time"

	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/snapshot"
	"approxobj/internal/telemetry"
)

// SnapshotBackend constructs one shard's underlying single-writer atomic
// snapshot and declares its per-shard accuracy envelope. The one backend
// so far is the exact AADGMS construction; the plane makes an
// approximate one (e.g. rounded components per Matias/Vitter/Young) a
// registration away.
type SnapshotBackend = backend[object.Snapshot]

// ExactSnapshotBackend shards the wait-free single-writer atomic
// snapshot of Afek et al. (internal/snapshot): per-component merge over
// shards is exact, because every component lives in exactly one shard.
func ExactSnapshotBackend() SnapshotBackend {
	return SnapshotBackend{
		meta: meta{name: "exact-snapshot"},
		make: func(f *prim.Factory, _ uint64) (object.Snapshot, error) {
			return snapshot.New(f)
		},
	}
}

// SnapshotOption configures a sharded snapshot.
type SnapshotOption func(*snapshotConfig)

type snapshotConfig struct {
	shards    int
	batch     int
	backend   SnapshotBackend
	readStale time.Duration
	tel       *telemetry.Sink
}

// SnapshotShards sets the shard count S (default 1). Component updates
// spread across shards by handle affinity — slot i's component lives
// only in shard i mod S — so a scan merges a partition: reads cost one
// underlying scan per shard and the envelope does not widen with S.
func SnapshotShards(s int) SnapshotOption { return func(c *snapshotConfig) { c.shards = s } }

// SnapshotBatch sets the per-handle component-elision window B (default
// 1). A handle remembers the last component value it flushed to its home
// shard and elides updates in the window [flushed, flushed+B-1], keeping
// the LATEST elided value locally until a move outside the window (in
// particular any downward move) or Flush publishes it. A scanned
// component therefore trails its true value by at most B-1 and never
// exceeds it; Snapshot.Bounds reports that headroom as the Buffer term.
func SnapshotBatch(b int) SnapshotOption { return func(c *snapshotConfig) { c.batch = b } }

// WithSnapshotBackend selects the per-shard snapshot implementation
// (default ExactSnapshotBackend).
func WithSnapshotBackend(b SnapshotBackend) SnapshotOption {
	return func(c *snapshotConfig) { c.backend = b }
}

// SnapshotReadCache enables the read-combiner tier (default off): scans
// serve a pre-combined component vector at most d old in O(components)
// — independent of S — instead of merging S shard scans, at the cost of
// the Stale term in Bounds. The snapshot's LAST slot is reserved for
// the background combiner goroutine (so n must be >= 2; that slot's
// component stays zero); stop it with Close.
func SnapshotReadCache(d time.Duration) SnapshotOption {
	return func(c *snapshotConfig) { c.readStale = d }
}

// SnapshotTelemetry attaches an internal telemetry sink (see Telemetry).
func SnapshotTelemetry(s *telemetry.Sink) SnapshotOption {
	return func(c *snapshotConfig) { c.tel = s }
}

// snapshotPolicy is the snapshot's row of the plane: reads merge the
// shards per component (each component lives in one shard, so nothing
// widens), and handles elide component updates (staleness is per
// component, so the Buffer term does not scale with n).
var snapshotPolicy = policy{
	combine: "per-component",
	buffer:  componentElision,
}

// snapHandle adapts the object-layer snapshot handle (Update/Scan) to
// the plane's Reader: a Read is a Scan, a readInto a ScanInto.
type snapHandle struct{ object.SnapshotHandle }

func (h snapHandle) Read() []uint64 { return h.Scan() }

// scanInto is the plane's per-shard readInto for snapshots.
func scanInto(h snapHandle, dst []uint64) []uint64 { return h.ScanInto(dst) }

// mergeComponents merges two per-shard scans element-wise. Handle
// affinity means component i is only ever written in shard i mod S; in
// every other shard it stays 0, so the element-wise max recovers each
// component's home-shard value exactly.
func mergeComponents(acc, next []uint64) []uint64 {
	for i, v := range next {
		if v > acc[i] {
			acc[i] = v
		}
	}
	return acc
}

// Snapshot is the sharded single-writer atomic snapshot: S shards whose
// scans are merged per component. Component i is written only through
// handle i (single-writer); any handle scans all components. Create
// handles with Handle; the zero value is not usable.
type Snapshot struct {
	p *plane[object.Snapshot, snapHandle, []uint64]
}

// NewSnapshot creates a sharded snapshot for n process slots (= n
// components) with accuracy parameter k (ignored by the exact backend),
// configured by opts. Each shard is built over its own n-slot
// prim.Factory, so any handle can scan every shard.
func NewSnapshot(n int, k uint64, opts ...SnapshotOption) (*Snapshot, error) {
	cfg := snapshotConfig{shards: 1, batch: 1, backend: ExactSnapshotBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	p, err := newPlane(n, k, cfg.shards, cfg.batch, cfg.readStale, cfg.tel, cfg.backend, snapshotPolicy,
		func(o object.Snapshot, pr *prim.Proc) snapHandle { return snapHandle{o.SnapshotHandle(pr)} },
		mergeComponents, scanInto, newVecReadCache,
	)
	if err != nil {
		return nil, err
	}
	return &Snapshot{p: p}, nil
}

// N returns the number of process slots (= components).
func (s *Snapshot) N() int { return s.p.N() }

// K returns the accuracy parameter passed to the backend.
func (s *Snapshot) K() uint64 { return s.p.K() }

// Shards returns the shard count S.
func (s *Snapshot) Shards() int { return s.p.Shards() }

// Batch returns the per-handle component-elision window B (1 means every
// component change is flushed immediately).
func (s *Snapshot) Batch() uint64 { return s.p.Batch() }

// Backend returns the configured backend.
func (s *Snapshot) Backend() SnapshotBackend { return s.p.be }

// ReadCache returns the read-cache staleness window (0 when off).
func (s *Snapshot) ReadCache() time.Duration { return s.p.ReadCache() }

// Close stops the read cache's background combiner goroutine, if any.
// Idempotent; handles stay usable (cached scans refresh inline).
func (s *Snapshot) Close() { s.p.Close() }

// Bounds returns the per-component read envelope for this configuration:
// Mult is the backend's per-shard factor (sharding adds nothing — the
// merged scan is a scan of a partition), and Buffer is the
// component-elision headroom B-1, per component (components are disjoint
// across handles, so it does not scale with n or S). Each scanned
// component obeys the envelope against its own true value.
func (s *Snapshot) Bounds() Bounds { return s.p.Bounds() }

// BaseObjects returns the number of base objects allocated across all
// shards — the snapshot's space cost in the paper's model.
func (s *Snapshot) BaseObjects() uint64 { return s.p.BaseObjects() }

// Handle binds process slot i (0 <= i < n) to the snapshot. The handle
// owns component i: its updates land in shard i mod S, and its scans
// merge all shards through slot i of each shard's factory. Like every
// handle in this repository it must be used by a single goroutine.
func (s *Snapshot) Handle(i int) *SnapshotHandle {
	h := &SnapshotHandle{handleCore: s.p.newCore(i), slot: i}
	h.buf.flush = h.home.Update
	// A fresh handle must not elide relative to a stale zero: a
	// re-created handle for a slot that has written before would
	// otherwise treat a downward move as an in-window upward one (or, at
	// any batch, treat Update(0) as the value-unchanged no-op) and elide
	// it, leaving scans overstating the component. Recover the
	// component's currently flushed value from the home shard — one
	// register read when the backend's handle can read a single
	// component, a full scan otherwise (once per handle construction;
	// pooled handles are cached per slot).
	if cr, ok := h.home.SnapshotHandle.(object.ComponentReader); ok {
		h.buf.flushed = cr.ReadComponent(i)
	} else {
		h.buf.flushed = h.home.Read()[i]
	}
	return h
}

// SnapshotHandle is one process's view of the sharded snapshot: the
// single writer of its component (Update) and a scanner of all
// components (Scan). Flush publishes an elided component update before
// quiescent scans.
type SnapshotHandle struct {
	handleCore[snapHandle, []uint64]
	slot int
}

// Component returns the index of the component this handle writes.
func (h *SnapshotHandle) Component() int { return h.slot }

// Update sets this handle's component to v. With SnapshotBatch(B > 1),
// updates in the window [flushed, flushed+B-1] above the last flushed
// value are elided — kept locally as the pending component value — while
// any move outside the window (including every downward move) is written
// through immediately, so scans never overstate the component.
func (h *SnapshotHandle) Update(v uint64) { h.buf.add(v) }

// Scan merges one scan of every shard per component. Each returned
// component is inside the envelope Snapshot.Bounds describes against its
// own true value, relative to the regularity window of the package
// comment. The slice is fresh (owned by the caller).
func (h *SnapshotHandle) Scan() []uint64 { return h.Read() }

// ScanInto is Scan into a reused buffer: dst is grown (or allocated, if
// nil) as needed and filled with the merged view. Per-shard scans land
// in the handle's scratch buffers, so steady-state scans through one
// handle allocate nothing.
func (h *SnapshotHandle) ScanInto(dst []uint64) []uint64 { return h.ReadInto(dst) }
