package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the read-combiner tier of the backend plane: one
// pre-combined cell per plane instance, so a cached Read returns the
// cell's value in O(1) — independent of the shard count S and, for
// vector kinds, of how the combine folds — instead of paying one
// underlying read per shard. The price is freshness: the cell may be up
// to maxStale old, which plane.Bounds reports as the envelope's Stale
// term (the same accuracy-for-speed trade batching makes in the rank
// domain, moved to the time domain).
//
// The cell is refreshed two ways, whichever happens first:
//
//   - a background combiner goroutine, bound to the plane's reserved
//     combiner slot (the last slot), re-combines every maxStale/2, so
//     steady-state readers virtually always hit a fresh cell; and
//   - a read-triggered inline refresh: a reader finding the cell stale
//     (or never filled — a brand-new object) re-combines through its own
//     per-shard readers under the refresh lock and publishes the result.
//     This keeps the staleness bound unconditional — it holds even if
//     the combiner goroutine is descheduled — and makes the very first
//     read of an empty object return the empty value, never a sentinel.
//
// The cell is stamped with the time the refreshing combined read
// STARTED, so "fresh" means "the underlying combined read began at most
// maxStale ago": the value obeys the object's envelope against the
// regularity window of that underlying read, which opened at most
// maxStale before the cached read began.

// readCell is one published pre-combined value: the folded combined
// read and the time that read started.
type readCell[V any] struct {
	v  V
	at time.Time
}

// readCache is a plane's read-combiner state. Readers load the cell
// lock-free; refreshes (inline or background) serialize on mu so at
// most one combined read is in flight per plane.
type readCache[V any] struct {
	maxStale time.Duration
	// clone copies a cell value out (and in), so callers never share
	// mutable state with the cell; nil for scalar kinds, where
	// assignment is the copy.
	clone func(V) V

	mu   sync.Mutex // serializes refreshes
	cell atomic.Pointer[readCell[V]]

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func newReadCache[V any](maxStale time.Duration, clone func(V) V) *readCache[V] {
	return &readCache[V]{
		maxStale: maxStale,
		clone:    clone,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (rc *readCache[V]) cloneOf(v V) V {
	if rc.clone == nil {
		return v
	}
	return rc.clone(v)
}

// read serves a combined read through the cache: the cell if it is
// fresh, otherwise an inline refresh through combined (the caller's own
// per-shard combined read).
func (rc *readCache[V]) read(combined func() V) V {
	if cell := rc.cell.Load(); cell != nil && time.Since(cell.at) <= rc.maxStale {
		return rc.cloneOf(cell.v)
	}
	rc.mu.Lock()
	// Another reader (or the combiner) may have refreshed while we
	// waited for the lock.
	if cell := rc.cell.Load(); cell != nil && time.Since(cell.at) <= rc.maxStale {
		rc.mu.Unlock()
		return rc.cloneOf(cell.v)
	}
	v := rc.refreshLocked(combined)
	rc.mu.Unlock()
	return rc.cloneOf(v)
}

// refreshLocked re-combines and publishes the cell. Callers hold rc.mu.
// The stamp is taken before the combined read starts, so a cell that
// passes the freshness check is backed by a combined read that started
// within the staleness window.
func (rc *readCache[V]) refreshLocked(combined func() V) V {
	at := time.Now()
	v := combined()
	rc.cell.Store(&readCell[V]{v: v, at: at})
	return v
}

// run is the background combiner loop, driving refreshes through the
// reserved combiner slot's combined read at half the staleness window
// (so a reader racing the ticker still finds a fresh cell).
func (rc *readCache[V]) run(combined func() V) {
	defer close(rc.done)
	period := rc.maxStale / 2
	if period <= 0 {
		period = rc.maxStale
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-rc.stop:
			return
		case <-t.C:
			rc.mu.Lock()
			rc.refreshLocked(combined)
			rc.mu.Unlock()
		}
	}
}

// close stops the background combiner and waits for it to exit. It is
// idempotent. Reads remain valid after close: they fall back to inline
// refreshes.
func (rc *readCache[V]) close() {
	rc.once.Do(func() {
		close(rc.stop)
		<-rc.done
	})
}

// cloneU64s is the cell clone of the vector-valued kinds (snapshot
// scans, histogram bucket vectors): cells and callers must never share
// a slice, because combines mutate their accumulator and handle
// contracts promise freshly owned slices.
func cloneU64s(v []uint64) []uint64 { return append([]uint64(nil), v...) }
