package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"approxobj/internal/telemetry"
)

// This file is the read-combiner tier of the backend plane: one
// pre-combined cell per plane instance, so a cached Read returns the
// cell's value in O(1) — independent of the shard count S and, for
// vector kinds, of how the combine folds — instead of paying one
// underlying read per shard. The price is freshness: the cell may be up
// to maxStale old, which plane.Bounds reports as the envelope's Stale
// term (the same accuracy-for-speed trade batching makes in the rank
// domain, moved to the time domain).
//
// The cell is refreshed two ways, whichever happens first:
//
//   - a background combiner goroutine, bound to the plane's reserved
//     combiner slot (the last slot), re-combines every maxStale/2, so
//     steady-state readers virtually always hit a fresh cell; and
//   - a read-triggered inline refresh: a reader finding the cell stale
//     (or never filled — a brand-new object) re-combines through its own
//     per-shard readers under the refresh lock and publishes the result.
//     This keeps the staleness bound unconditional — it holds even if
//     the combiner goroutine is descheduled — and makes the very first
//     read of an empty object return the empty value, never a sentinel.
//
// The cell is stamped with the time the refreshing combined read
// STARTED, so "fresh" means "the underlying combined read began at most
// maxStale ago": the value obeys the object's envelope against the
// regularity window of that underlying read, which opened at most
// maxStale before the cached read began.
//
// Serving is zero-allocation in steady state. The scalar cache
// publishes the cell as a (value, stamp) atomic pair — no cell object,
// no clone — and the vector cache double-buffers two cells, recycling
// the retired one as the next refresh's write buffer (guarded by a
// reader refcount) and copying out into the caller's reused buffer.
// The refresh function itself reads into a reusable scratch
// (handleCore.combinedInto), so neither background nor inline refreshes
// allocate once the buffers exist.

// readCache is a plane's read-combiner tier: scalarReadCache for
// uint64-valued kinds, vecReadCache for []uint64-valued ones. refresh
// is always the reading handle's combinedInto — a combined read through
// that handle's own per-shard readers into a reused buffer (the
// argument; scalar kinds ignore it).
type readCache[V any] interface {
	// read returns the cached combined value, refreshing inline through
	// refresh when the cell is stale. The result is owned by the caller.
	read(refresh func(V) V) V
	// readInto is read with the result written into dst (grown as
	// needed); the scalar cache ignores dst.
	readInto(dst V, refresh func(V) V) V
	// run is the background combiner loop; one goroutine per plane,
	// stopped by close.
	run(refresh func(V) V)
	// close stops the background combiner and waits for it to exit.
	// Idempotent; reads remain valid after close (they fall back to
	// inline refreshes).
	close()
	// staleness returns the maxStale window.
	staleness() time.Duration
	// instrument attaches a telemetry sink (nil disables); called once
	// at plane construction, before the cache is shared.
	instrument(tel *telemetry.Sink)
}

// cacheLifecycle is the background-combiner lifecycle shared by both
// cache implementations.
type cacheLifecycle struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func newCacheLifecycle() cacheLifecycle {
	return cacheLifecycle{stop: make(chan struct{}), done: make(chan struct{})}
}

// runTicks drives tick every maxStale/2 (so a reader racing the ticker
// still finds a fresh cell) until close.
func (lc *cacheLifecycle) runTicks(maxStale time.Duration, tick func()) {
	defer close(lc.done)
	period := maxStale / 2
	if period <= 0 {
		period = maxStale
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-lc.stop:
			return
		case <-t.C:
			tick()
		}
	}
}

func (lc *cacheLifecycle) close() {
	lc.once.Do(func() {
		close(lc.stop)
		<-lc.done
	})
}

// scalarReadCache is the uint64 cache: the cell is a (value, stamp)
// atomic pair, so a fresh hit is two atomic loads and one monotonic
// clock read — no cell object, no allocation. stamp is nanoseconds
// since base at which the refreshing combined read started (0 = never
// filled). The refresher stores value THEN stamp; readers load stamp
// THEN value — so the value paired with a passing stamp is never older
// than the combined read that stamp describes (it may be newer, which
// only tightens the staleness bound).
type scalarReadCache struct {
	maxStale time.Duration
	base     time.Time
	val      atomic.Uint64
	stamp    atomic.Int64

	mu sync.Mutex // serializes refreshes
	lc cacheLifecycle

	tel *telemetry.Sink // nil when uninstrumented
}

func newScalarReadCache(maxStale time.Duration) readCache[uint64] {
	return &scalarReadCache{maxStale: maxStale, base: time.Now(), lc: newCacheLifecycle()}
}

func (rc *scalarReadCache) fresh() (uint64, bool) {
	s := rc.stamp.Load()
	if s == 0 || time.Since(rc.base)-time.Duration(s) > rc.maxStale {
		return 0, false
	}
	return rc.val.Load(), true
}

func (rc *scalarReadCache) read(refresh func(uint64) uint64) uint64 {
	if v, ok := rc.fresh(); ok {
		return v
	}
	rc.tel.Inc(telemetry.EvCacheMiss, 0)
	rc.mu.Lock()
	// Another reader (or the combiner) may have refreshed while we
	// waited for the lock.
	v, ok := rc.fresh()
	if !ok {
		rc.tel.Inc(telemetry.EvInlineRefresh, 0)
		v = rc.refreshLocked(refresh)
	}
	rc.mu.Unlock()
	return v
}

func (rc *scalarReadCache) readInto(_ uint64, refresh func(uint64) uint64) uint64 {
	return rc.read(refresh)
}

// refreshLocked re-combines and publishes the cell. Callers hold rc.mu.
// The stamp is taken before the combined read starts, so a cell that
// passes the freshness check is backed by a combined read that started
// within the staleness window.
func (rc *scalarReadCache) refreshLocked(refresh func(uint64) uint64) uint64 {
	at := time.Since(rc.base)
	if at <= 0 {
		at = 1
	}
	v := refresh(0)
	rc.val.Store(v)
	rc.stamp.Store(int64(at))
	if rc.tel != nil {
		rc.tel.ObserveRefresh(time.Since(rc.base) - at)
		rc.tel.Trace(telemetry.TraceRefresh, -1, v)
	}
	return v
}

func (rc *scalarReadCache) run(refresh func(uint64) uint64) {
	rc.lc.runTicks(rc.maxStale, func() {
		rc.tel.Inc(telemetry.EvCombinerTick, 0)
		rc.mu.Lock()
		rc.refreshLocked(refresh)
		rc.mu.Unlock()
	})
}

func (rc *scalarReadCache) close() { rc.lc.close() }

func (rc *scalarReadCache) staleness() time.Duration { return rc.maxStale }

func (rc *scalarReadCache) instrument(tel *telemetry.Sink) { rc.tel = tel }

// vecCell is one published pre-combined vector: the folded combined
// read, the time that read started, and the refcount of readers
// currently copying out of vals (so a retired cell is only reused as a
// refresh buffer once no straggler still reads it).
type vecCell struct {
	at      time.Time
	readers atomic.Int64
	vals    []uint64
}

// vecReadCache is the []uint64 cache: two cells double-buffered.
// Readers grab the current cell with a refcount handshake and copy its
// vals into their own reused buffer; the refresher fills the retired
// spare cell IN PLACE (when no straggler holds it) and swaps it in, so
// steady-state refreshes and reads allocate nothing.
//
// Reader protocol: load cur, increment its refcount, re-check that it
// is still cur. If the re-check fails the cell may already have been
// handed to a refresher, so release and retry; if it passes, the cell
// cannot be reused until the refcount drops (the refresher checks
// readers == 0 before reusing a retired cell, and a cell retired while
// held stays off-limits until released — a fresh cell is allocated
// instead, the only allocation the cache can make after warm-up).
// The staleness check reads c.at INSIDE that protected window too — a
// cell's fields may be rewritten by a refresher the moment it is
// retired, so nothing beyond the nil check touches the cell before the
// refcount handshake.
type vecReadCache struct {
	maxStale time.Duration
	cur      atomic.Pointer[vecCell]

	mu    sync.Mutex // serializes refreshes; guards spare
	spare *vecCell

	lc cacheLifecycle

	tel *telemetry.Sink // nil when uninstrumented
}

func newVecReadCache(maxStale time.Duration) readCache[[]uint64] {
	return &vecReadCache{maxStale: maxStale, lc: newCacheLifecycle()}
}

func (rc *vecReadCache) read(refresh func([]uint64) []uint64) []uint64 {
	return rc.readInto(nil, refresh)
}

func (rc *vecReadCache) readInto(dst []uint64, refresh func([]uint64) []uint64) []uint64 {
	for {
		c := rc.cur.Load()
		if c == nil {
			break
		}
		c.readers.Add(1)
		if rc.cur.Load() == c {
			if time.Since(c.at) <= rc.maxStale {
				dst = append(dst[:0], c.vals...)
				c.readers.Add(-1)
				return dst
			}
			// Current but expired: refresh under mu.
			c.readers.Add(-1)
			break
		}
		// The cell rotated under us; it may be a refresher's write buffer
		// by now. Release and retry (the new current cell is fresh).
		c.readers.Add(-1)
	}
	rc.tel.Inc(telemetry.EvCacheMiss, 0)
	rc.mu.Lock()
	// Another reader (or the combiner) may have refreshed while we
	// waited for the lock. Copying under mu is safe against reuse:
	// retiring and reusing cells happens only under mu.
	if c := rc.cur.Load(); c != nil && time.Since(c.at) <= rc.maxStale {
		dst = append(dst[:0], c.vals...)
		rc.mu.Unlock()
		return dst
	}
	rc.tel.Inc(telemetry.EvInlineRefresh, 0)
	c := rc.refreshLocked(refresh)
	dst = append(dst[:0], c.vals...)
	rc.mu.Unlock()
	return dst
}

// refreshLocked re-combines into the spare cell and publishes it,
// retiring the previous current cell as the next spare. Callers hold
// rc.mu. The stamp is taken before the combined read starts (see the
// scalar cache).
func (rc *vecReadCache) refreshLocked(refresh func([]uint64) []uint64) *vecCell {
	at := time.Now()
	cell := rc.spare
	if cell == nil || cell.readers.Load() != 0 {
		// First refresh, or a straggler still copies out of the retired
		// cell: leave it to the collector and write into a fresh one.
		cell = &vecCell{}
	}
	rc.spare = nil
	cell.vals = refresh(cell.vals)
	cell.at = at
	rc.spare = rc.cur.Swap(cell)
	if rc.tel != nil {
		rc.tel.ObserveRefresh(time.Since(at))
		rc.tel.Trace(telemetry.TraceRefresh, -1, uint64(len(cell.vals)))
	}
	return cell
}

func (rc *vecReadCache) run(refresh func([]uint64) []uint64) {
	rc.lc.runTicks(rc.maxStale, func() {
		rc.tel.Inc(telemetry.EvCombinerTick, 0)
		rc.mu.Lock()
		rc.refreshLocked(refresh)
		rc.mu.Unlock()
	})
}

func (rc *vecReadCache) close() { rc.lc.close() }

func (rc *vecReadCache) staleness() time.Duration { return rc.maxStale }

func (rc *vecReadCache) instrument(tel *telemetry.Sink) { rc.tel = tel }
