package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"approxobj/internal/satmath"
	"approxobj/internal/telemetry"
)

// This file is the windowed tier of the backend plane: an object becomes
// a small ring of plane instances ("epochs") rotated on a fixed period,
// so reads answer over the last d of mutations instead of
// since-creation. The construction reuses everything below it — each
// epoch is an ordinary kind object with its own shards, buffers, and
// (optionally) read-combiner tier — and everything above it: writers
// stamp into the current epoch through the kind's existing handle
// plumbing, and reads fold the live ring with the kind's existing
// Combine, so the per-epoch accuracy envelope carries over to the
// window with only the documented widenings (Add x epochs for
// sum-combines; a one-epoch truncation skew, the Window term of
// Bounds).
//
// # Rotation
//
// The ring holds `epochs` instances; a background rotator goroutine
// advances the sequence number every d/epochs. Rotation is
// install-then-publish: the fresh epoch is swapped into the ring slot
// the new sequence number maps to BEFORE the sequence number is
// published, so a writer that loads the new sequence number always
// finds the new epoch installed, and a writer holding the old one
// writes into the previous epoch — still live in the ring for
// epochs >= 2. Writes therefore land in the epoch current when the
// handle resolved the ring, or an adjacent newer one; never in an
// unreachable instance, and never lost from the live window. The
// evicted instance (from `epochs` rotations ago) is closed — its
// read-combiner goroutine, if any, stops — but stays readable for any
// reader that loaded its pointer just before the swap.
//
// # Handles
//
// A window handle caches one kind handle per ring slot, re-homing
// lazily: it rebinds a slot's handle when the installed epoch's
// sequence number changed, flushing the outgoing handle's buffered
// mutations into its own epoch first (they happened during that epoch's
// span, so that is where they belong — and for a live epoch they stay
// visible to windowed reads). The handle also flushes its previous
// write slot whenever the current ring slot moves, so at any moment at
// most ONE of its cached handles holds buffered mutations — which is
// why the Buffer term of the windowed envelope equals the per-epoch
// one, not epochs times it.
//
// # Reads
//
// A windowed read folds one combined read of every ring slot with the
// kind's Combine. Every live epoch holds a disjoint share of the
// window's mutations, so the same composition arguments as sharding
// apply: a sum of per-epoch k-multiplicative counts is
// k-multiplicative, per-epoch additive slack sums (Add x epochs), max
// and per-component merges widen nothing. The fold visits the ring
// racing rotation, so a read may miss the epoch being evicted and see
// the fresh one empty: at most one epoch (d/epochs) of truncation skew,
// reported as the Window term of Bounds.

// wepoch is one ring entry: a kind object and the rotation sequence
// number under which it was installed.
type wepoch[T any] struct {
	seq uint64
	obj T
}

// window is the generic epoch ring. T is the kind object (*Counter,
// *MaxReg, ...), H its handle type, V the combined-read value; the
// per-kind function fields adapt the ring to the kind, exactly like the
// plane's policy rows adapt the shard fold.
type window[T any, H any, V any] struct {
	dur    time.Duration
	epochs int

	mk     func() (T, error) // builds one fresh epoch instance
	bind   func(T, int) H    // binds a process slot to an epoch
	readOf func(H) V         // the epoch's combined read
	// readIntoOf is the epoch's combined read into a reused buffer, nil
	// for scalar kinds: windowed vector reads fold the ring through the
	// handle's scratch buffer instead of allocating per epoch.
	readIntoOf func(H, V) V
	flushOf    func(H)
	stepsOf    func(H) uint64
	closeOf    func(T)
	boundsOf   func(T) Bounds
	combine    Combine[V]
	// sumCombine: the kind's Combine sums values, so per-epoch additive
	// slack accumulates over the live ring (counters; false for max,
	// per-component, and per-bucket folds, which partition instead).
	sumCombine bool

	// tel is the telemetry sink extracted from the kind options (nil when
	// uninstrumented): rotations and handle re-homes are window-tier
	// events the per-epoch planes cannot see.
	tel *telemetry.Sink

	// seq is published AFTER the epoch for it is installed in the ring,
	// so ring[seq%epochs] always holds an instance at least as new as
	// seq.
	seq  atomic.Uint64
	ring []atomic.Pointer[wepoch[T]]

	mu     sync.Mutex // serializes rotate, reset, and close
	closed bool

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// newWindow builds the ring (all epochs pre-installed, so the very
// first read folds a full window of empty instances) and starts the
// rotator goroutine.
func newWindow[T any, H any, V any](d time.Duration, epochs int, w *window[T, H, V]) (*window[T, H, V], error) {
	if d <= 0 {
		return nil, fmt.Errorf("shard: window duration must be > 0, got %v", d)
	}
	if epochs < 2 {
		return nil, fmt.Errorf("shard: window needs at least 2 epochs (1 would truncate the whole window on every rotation), got %d", epochs)
	}
	w.dur, w.epochs = d, epochs
	w.ring = make([]atomic.Pointer[wepoch[T]], epochs)
	for j := 0; j < epochs; j++ {
		obj, err := w.mk()
		if err != nil {
			for i := 0; i < j; i++ {
				w.closeOf(w.ring[i].Load().obj)
			}
			return nil, err
		}
		w.ring[j].Store(&wepoch[T]{seq: uint64(j), obj: obj})
	}
	w.seq.Store(uint64(epochs - 1))
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.run()
	return w, nil
}

// run is the rotator loop: one rotation every d/epochs.
func (w *window[T, H, V]) run() {
	defer close(w.done)
	t := time.NewTicker(w.dur / time.Duration(w.epochs))
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.rotate()
		}
	}
}

// rotate installs a fresh epoch and evicts the oldest: install into the
// new sequence number's ring slot first, publish the sequence number
// second, close the evicted instance last. After Close it is a no-op
// (the window is frozen). A kind construction that cannot fail built
// the ring, so mk cannot fail here either; a failure is surfaced by
// keeping the current window (no rotation) rather than poisoning the
// ring.
func (w *window[T, H, V]) rotate() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	fresh, err := w.mk()
	if err != nil {
		return
	}
	s := w.seq.Load() + 1
	old := w.ring[s%uint64(w.epochs)].Swap(&wepoch[T]{seq: s, obj: fresh})
	w.seq.Store(s)
	w.closeOf(old.obj)
	w.tel.Inc(telemetry.EvRotation, 0)
	w.tel.Trace(telemetry.TraceRotation, -1, s)
}

// Rotate forces one rotation, for deterministic tests and manual epoch
// control: the windowed conformance sweeps drive epochs by hand instead
// of sleeping through wall-clock rotations.
func (w *window[T, H, V]) Rotate() { w.rotate() }

// Reset replaces every live epoch with a fresh instance — the
// go-metrics Snapshot(reset) idiom. It is NOT atomic with a preceding
// read: mutations racing the reset land in an epoch that is either
// kept (the tail of the replacement loop) or discarded with the window,
// exactly like mutations racing a rotation land on either side of it.
// After Close, Reset returns an error (the window is frozen).
func (w *window[T, H, V]) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("shard: Reset on a closed windowed object (the window is frozen)")
	}
	fresh := make([]T, w.epochs)
	for i := range fresh {
		obj, err := w.mk()
		if err != nil {
			for j := 0; j < i; j++ {
				w.closeOf(fresh[j])
			}
			return err
		}
		fresh[i] = obj
	}
	s := w.seq.Load()
	for i := 1; i <= w.epochs; i++ {
		ns := s + uint64(i)
		old := w.ring[ns%uint64(w.epochs)].Swap(&wepoch[T]{seq: ns, obj: fresh[i-1]})
		w.closeOf(old.obj)
	}
	w.seq.Store(s + uint64(w.epochs))
	return nil
}

// Close stops the rotator goroutine and every live epoch's background
// resources, freezing the window: no further aging, reads keep serving
// the frozen ring (they remain fully valid — per-epoch cached reads
// fall back to inline refreshes), writes keep landing in the frozen
// current epoch, and Reset returns an error. Idempotent.
func (w *window[T, H, V]) Close() {
	w.once.Do(func() {
		close(w.stop)
		<-w.done
	})
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	for j := range w.ring {
		w.closeOf(w.ring[j].Load().obj)
	}
}

// Window returns the window duration d.
func (w *window[T, H, V]) Window() time.Duration { return w.dur }

// Epochs returns the ring size.
func (w *window[T, H, V]) Epochs() int { return w.epochs }

// Bounds composes the windowed envelope from the per-epoch one: Add
// widens by the epoch count iff the kind's Combine sums (per-epoch
// slack accumulates over the fold, exactly like per-shard slack under a
// sum), Buffer is unchanged (a handle holds buffered mutations in at
// most one epoch at a time — see the handle comment), Stale is
// unchanged (each epoch's cache is its own), and Window carries the
// one-epoch truncation skew d/epochs. Delta widens by the epoch count
// regardless of the combine (union bound: the windowed read is in range
// when every one of the `epochs` per-epoch combined reads is, whatever
// the fold), clamped at 1.
func (w *window[T, H, V]) Bounds() Bounds {
	e := w.ring[w.seq.Load()%uint64(w.epochs)].Load()
	b := w.boundsOf(e.obj)
	if w.sumCombine {
		b.Add = satmath.Mul(b.Add, uint64(w.epochs))
	}
	if b.Delta > 0 {
		b.Delta = min(1, b.Delta*float64(w.epochs))
	}
	b.Window = w.dur / time.Duration(w.epochs)
	return b
}

// windowCore is one cached per-ring-slot kind handle.
type windowCore[H any] struct {
	seq uint64
	h   H
	ok  bool
}

// windowHandle is the per-slot handle over the ring: cached kind
// handles per ring slot, lazy re-homing, and steps accounting across
// rebinds. Like every handle in this repository it must be used by a
// single goroutine; rotation happens on another goroutine but
// communicates only through the ring's atomics.
type windowHandle[T any, H any, V any] struct {
	w     *window[T, H, V]
	slot  int
	cores []windowCore[H]
	// lastWrite is the ring slot of the most recent mutation, so moving
	// to a new current slot flushes the previous one's buffer first:
	// buffered mutations live in at most one cached handle at a time.
	lastWrite int
	// retired accumulates the steps of rebound (dropped) cores, keeping
	// Steps monotone across epochs.
	retired uint64
	// scratch is the fold buffer for the non-first epochs' reads (vector
	// kinds; see readWindowInto).
	scratch V
}

func newWindowHandle[T any, H any, V any](w *window[T, H, V], slot int) windowHandle[T, H, V] {
	return windowHandle[T, H, V]{w: w, slot: slot, cores: make([]windowCore[H], w.epochs), lastWrite: -1}
}

// core returns the cached kind handle for ring slot j's installed epoch
// e, rebinding (flush old, bind new) when the slot was rotated under
// it.
func (h *windowHandle[T, H, V]) core(j int, e *wepoch[T]) H {
	c := &h.cores[j]
	if !c.ok || c.seq != e.seq {
		if c.ok {
			h.w.flushOf(c.h)
			h.retired += h.w.stepsOf(c.h)
			h.w.tel.Inc(telemetry.EvRehome, h.slot)
		}
		c.h = h.w.bind(e.obj, h.slot)
		c.seq = e.seq
		c.ok = true
	}
	return c.h
}

// cur resolves the current epoch's handle for a mutation, flushing the
// previous write slot when the current ring slot moved. The epoch
// loaded may be newer than the sequence number read (a rotation
// in-flight); either is live, so the mutation is never lost.
func (h *windowHandle[T, H, V]) cur() H {
	j := int(h.w.seq.Load() % uint64(h.w.epochs))
	if h.lastWrite >= 0 && h.lastWrite != j && h.cores[h.lastWrite].ok {
		h.w.flushOf(h.cores[h.lastWrite].h)
	}
	h.lastWrite = j
	return h.core(j, h.w.ring[j].Load())
}

// readWindow folds one combined read of every ring slot with the
// kind's Combine. The accumulator is the first epoch's fresh read
// (handles return freshly owned values), so vector combines may mutate
// it, exactly as in the shard fold. For vector kinds the result is a
// fresh slice (owned by the caller); reuse a buffer with
// readWindowInto.
func (h *windowHandle[T, H, V]) readWindow() V {
	if h.w.readIntoOf != nil {
		var zero V
		return h.readWindowInto(zero)
	}
	e := h.w.ring[0].Load()
	acc := h.w.readOf(h.core(0, e))
	for j := 1; j < h.w.epochs; j++ {
		e := h.w.ring[j].Load()
		acc = h.w.combine(acc, h.w.readOf(h.core(j, e)))
	}
	return acc
}

// readWindowInto is readWindow into a reused buffer (vector kinds): the
// first epoch reads into dst, every later epoch into the handle's
// scratch buffer, so a steady-state windowed read through one handle
// allocates nothing.
func (h *windowHandle[T, H, V]) readWindowInto(dst V) V {
	e := h.w.ring[0].Load()
	dst = h.w.readIntoOf(h.core(0, e), dst)
	for j := 1; j < h.w.epochs; j++ {
		e := h.w.ring[j].Load()
		h.scratch = h.w.readIntoOf(h.core(j, e), h.scratch)
		dst = h.w.combine(dst, h.scratch)
	}
	return dst
}

// flushAll publishes every cached handle's buffered mutations.
func (h *windowHandle[T, H, V]) flushAll() {
	for j := range h.cores {
		if h.cores[j].ok {
			h.w.flushOf(h.cores[j].h)
		}
	}
}

// steps returns the handle's cumulative shared-memory steps: retired
// cores plus every live cached handle. Monotone across rebinds (fresh
// epoch handles start at zero and retired only grows).
func (h *windowHandle[T, H, V]) steps() uint64 {
	s := h.retired
	for j := range h.cores {
		if h.cores[j].ok {
			s += h.w.stepsOf(h.cores[j].h)
		}
	}
	return s
}

// WindowedCounter is a counter over a rotating epoch ring: Incs land in
// the current epoch, Reads sum the live ring. Each epoch is a full
// *Counter (shards, batching, optional read cache) built from the same
// configuration.
type WindowedCounter struct {
	w *window[*Counter, *Handle, uint64]
}

// NewWindowedCounter builds a windowed counter: a ring of `epochs`
// instances of New(n, k, opts...) rotated every d/epochs.
func NewWindowedCounter(n int, k uint64, d time.Duration, epochs int, opts ...Option) (*WindowedCounter, error) {
	w := &window[*Counter, *Handle, uint64]{
		mk:         func() (*Counter, error) { return New(n, k, opts...) },
		bind:       func(c *Counter, i int) *Handle { return c.Handle(i) },
		readOf:     func(h *Handle) uint64 { return h.Read() },
		flushOf:    func(h *Handle) { h.Flush() },
		stepsOf:    func(h *Handle) uint64 { return h.Steps() },
		closeOf:    func(c *Counter) { c.Close() },
		boundsOf:   func(c *Counter) Bounds { return c.Bounds() },
		combine:    satmath.Add,
		sumCombine: true,
	}
	// Rotation and re-home events belong to the window tier; recover the
	// sink the kind options carry so the ring can report them itself.
	cfg := config{shards: 1, batch: 1, backend: MultBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	w.tel = cfg.tel
	if _, err := newWindow(d, epochs, w); err != nil {
		return nil, err
	}
	return &WindowedCounter{w: w}, nil
}

// Handle binds process slot i to the windowed counter.
func (c *WindowedCounter) Handle(i int) *WCounterHandle {
	return &WCounterHandle{h: newWindowHandle(c.w, i)}
}

// Bounds returns the windowed read envelope (see window.Bounds).
func (c *WindowedCounter) Bounds() Bounds { return c.w.Bounds() }

// BaseObjects sums the base objects of every live epoch — the windowed
// counter's space cost in the paper's model at this instant (rotation
// replaces epochs, so the total is steady-state, not cumulative).
func (c *WindowedCounter) BaseObjects() uint64 {
	var total uint64
	for j := range c.w.ring {
		total += c.w.ring[j].Load().obj.BaseObjects()
	}
	return total
}

// Close freezes the window (see window.Close).
func (c *WindowedCounter) Close() { c.w.Close() }

// Reset replaces every live epoch with a fresh one (see window.Reset).
func (c *WindowedCounter) Reset() error { return c.w.Reset() }

// Rotate forces one epoch rotation (deterministic tests).
func (c *WindowedCounter) Rotate() { c.w.Rotate() }

// Window returns the window duration; Epochs the ring size.
func (c *WindowedCounter) Window() time.Duration { return c.w.Window() }
func (c *WindowedCounter) Epochs() int           { return c.w.Epochs() }

// WCounterHandle is one process's view of a windowed counter. It
// satisfies the same contract as *Handle (Inc, Read, Steps, Flush).
type WCounterHandle struct {
	h windowHandle[*Counter, *Handle, uint64]
}

// Inc adds one to the current epoch.
func (h *WCounterHandle) Inc() { h.h.cur().Inc() }

// Read sums one combined read of every live epoch (saturating).
func (h *WCounterHandle) Read() uint64 { return h.h.readWindow() }

// Flush publishes buffered increments in every cached epoch handle.
func (h *WCounterHandle) Flush() { h.h.flushAll() }

// Steps returns the cumulative shared-memory steps across epochs.
func (h *WCounterHandle) Steps() uint64 { return h.h.steps() }

// WindowedMaxReg is a max register over a rotating epoch ring: Writes
// land in the current epoch, Reads take the max over the live ring —
// the maximum over the last window, a running high-water mark that
// expires.
type WindowedMaxReg struct {
	w *window[*MaxReg, *MaxRegHandle, uint64]
}

// NewWindowedMaxReg builds a windowed max register: a ring of `epochs`
// instances of NewMaxReg(n, k, opts...) rotated every d/epochs.
func NewWindowedMaxReg(n int, k uint64, d time.Duration, epochs int, opts ...MaxRegOption) (*WindowedMaxReg, error) {
	w := &window[*MaxReg, *MaxRegHandle, uint64]{
		mk:       func() (*MaxReg, error) { return NewMaxReg(n, k, opts...) },
		bind:     func(m *MaxReg, i int) *MaxRegHandle { return m.Handle(i) },
		readOf:   func(h *MaxRegHandle) uint64 { return h.Read() },
		flushOf:  func(h *MaxRegHandle) { h.Flush() },
		stepsOf:  func(h *MaxRegHandle) uint64 { return h.Steps() },
		closeOf:  func(m *MaxReg) { m.Close() },
		boundsOf: func(m *MaxReg) Bounds { return m.Bounds() },
		combine:  maxOf,
	}
	cfg := maxRegConfig{shards: 1, batch: 1, backend: ExactMaxBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	w.tel = cfg.tel
	if _, err := newWindow(d, epochs, w); err != nil {
		return nil, err
	}
	return &WindowedMaxReg{w: w}, nil
}

// Handle binds process slot i to the windowed register.
func (m *WindowedMaxReg) Handle(i int) *WMaxRegHandle {
	return &WMaxRegHandle{h: newWindowHandle(m.w, i)}
}

// Bounds returns the windowed read envelope (see window.Bounds).
func (m *WindowedMaxReg) Bounds() Bounds { return m.w.Bounds() }

// BaseObjects sums the base objects of every live epoch (see
// WindowedCounter.BaseObjects).
func (m *WindowedMaxReg) BaseObjects() uint64 {
	var total uint64
	for j := range m.w.ring {
		total += m.w.ring[j].Load().obj.BaseObjects()
	}
	return total
}

// Close freezes the window (see window.Close).
func (m *WindowedMaxReg) Close() { m.w.Close() }

// Reset replaces every live epoch with a fresh one (see window.Reset).
func (m *WindowedMaxReg) Reset() error { return m.w.Reset() }

// Rotate forces one epoch rotation (deterministic tests).
func (m *WindowedMaxReg) Rotate() { m.w.Rotate() }

// Window returns the window duration; Epochs the ring size.
func (m *WindowedMaxReg) Window() time.Duration { return m.w.Window() }
func (m *WindowedMaxReg) Epochs() int           { return m.w.Epochs() }

// WMaxRegHandle is one process's view of a windowed max register. It
// satisfies the same contract as *MaxRegHandle (Write, Read, Steps,
// Flush).
type WMaxRegHandle struct {
	h windowHandle[*MaxReg, *MaxRegHandle, uint64]
}

// Write records v in the current epoch.
func (h *WMaxRegHandle) Write(v uint64) { h.h.cur().Write(v) }

// Read returns the maximum over one combined read of every live epoch.
func (h *WMaxRegHandle) Read() uint64 { return h.h.readWindow() }

// Flush publishes elided writes in every cached epoch handle.
func (h *WMaxRegHandle) Flush() { h.h.flushAll() }

// Steps returns the cumulative shared-memory steps across epochs.
func (h *WMaxRegHandle) Steps() uint64 { return h.h.steps() }

// WindowedSnapshot is a single-writer snapshot over a rotating epoch
// ring. Updates land in the current epoch; a windowed Scan merges the
// live ring per component with the snapshot's usual element-wise max,
// so each component reads as its high-water mark over the window (a
// component untouched for a full window reads zero).
type WindowedSnapshot struct {
	w *window[*Snapshot, *SnapshotHandle, []uint64]
}

// NewWindowedSnapshot builds a windowed snapshot: a ring of `epochs`
// instances of NewSnapshot(n, k, opts...) rotated every d/epochs.
func NewWindowedSnapshot(n int, k uint64, d time.Duration, epochs int, opts ...SnapshotOption) (*WindowedSnapshot, error) {
	w := &window[*Snapshot, *SnapshotHandle, []uint64]{
		mk:         func() (*Snapshot, error) { return NewSnapshot(n, k, opts...) },
		bind:       func(s *Snapshot, i int) *SnapshotHandle { return s.Handle(i) },
		readOf:     func(h *SnapshotHandle) []uint64 { return h.Scan() },
		readIntoOf: func(h *SnapshotHandle, dst []uint64) []uint64 { return h.ScanInto(dst) },
		flushOf:    func(h *SnapshotHandle) { h.Flush() },
		stepsOf:    func(h *SnapshotHandle) uint64 { return h.Steps() },
		closeOf:    func(s *Snapshot) { s.Close() },
		boundsOf:   func(s *Snapshot) Bounds { return s.Bounds() },
		combine:    mergeComponents,
	}
	cfg := snapshotConfig{shards: 1, batch: 1, backend: ExactSnapshotBackend()}
	for _, opt := range opts {
		opt(&cfg)
	}
	w.tel = cfg.tel
	if _, err := newWindow(d, epochs, w); err != nil {
		return nil, err
	}
	return &WindowedSnapshot{w: w}, nil
}

// Handle binds process slot i to the windowed snapshot: the single
// writer of component i.
func (s *WindowedSnapshot) Handle(i int) *WSnapshotHandle {
	return &WSnapshotHandle{h: newWindowHandle(s.w, i), slot: i}
}

// Bounds returns the windowed read envelope (see window.Bounds).
func (s *WindowedSnapshot) Bounds() Bounds { return s.w.Bounds() }

// BaseObjects sums the base objects of every live epoch (see
// WindowedCounter.BaseObjects).
func (s *WindowedSnapshot) BaseObjects() uint64 {
	var total uint64
	for j := range s.w.ring {
		total += s.w.ring[j].Load().obj.BaseObjects()
	}
	return total
}

// Close freezes the window (see window.Close).
func (s *WindowedSnapshot) Close() { s.w.Close() }

// Reset replaces every live epoch with a fresh one (see window.Reset).
func (s *WindowedSnapshot) Reset() error { return s.w.Reset() }

// Rotate forces one epoch rotation (deterministic tests).
func (s *WindowedSnapshot) Rotate() { s.w.Rotate() }

// Window returns the window duration; Epochs the ring size.
func (s *WindowedSnapshot) Window() time.Duration { return s.w.Window() }
func (s *WindowedSnapshot) Epochs() int           { return s.w.Epochs() }

// WSnapshotHandle is one process's view of a windowed snapshot. It
// satisfies the same contract as *SnapshotHandle (Update, Scan,
// Component, Steps, Flush).
type WSnapshotHandle struct {
	h    windowHandle[*Snapshot, *SnapshotHandle, []uint64]
	slot int
}

// Update sets this handle's component in the current epoch.
func (h *WSnapshotHandle) Update(v uint64) { h.h.cur().Update(v) }

// Scan merges one scan of every live epoch per component (element-wise
// max: the component's high-water mark over the window). The slice is
// fresh (owned by the caller).
func (h *WSnapshotHandle) Scan() []uint64 { return h.h.readWindow() }

// ScanInto is Scan into a reused buffer (grown as needed; a nil dst
// behaves like Scan).
func (h *WSnapshotHandle) ScanInto(dst []uint64) []uint64 { return h.h.readWindowInto(dst) }

// Component returns the index of the component this handle writes.
func (h *WSnapshotHandle) Component() int { return h.slot }

// Flush publishes elided component updates in every cached epoch
// handle.
func (h *WSnapshotHandle) Flush() { h.h.flushAll() }

// Steps returns the cumulative shared-memory steps across epochs.
func (h *WSnapshotHandle) Steps() uint64 { return h.h.steps() }

// WindowedHistogram is a histogram over a rotating epoch ring:
// observations land in the current epoch, bucket reads sum the live
// ring per bucket — so every query (Count, Quantile, Rank, CDF at the
// public layer) answers over the last window of observations.
type WindowedHistogram struct {
	w       *window[*Histogram, *HistHandle, []uint64]
	buckets int
}

// NewWindowedHistogram builds a windowed histogram: a ring of `epochs`
// instances of NewHistogram(n, k, buckets, opts...) rotated every
// d/epochs.
func NewWindowedHistogram(n int, k uint64, buckets int, d time.Duration, epochs int, opts ...HistOption) (*WindowedHistogram, error) {
	w := &window[*Histogram, *HistHandle, []uint64]{
		mk:         func() (*Histogram, error) { return NewHistogram(n, k, buckets, opts...) },
		bind:       func(hg *Histogram, i int) *HistHandle { return hg.Handle(i) },
		readOf:     func(h *HistHandle) []uint64 { return h.Buckets() },
		readIntoOf: func(h *HistHandle, dst []uint64) []uint64 { return h.BucketsInto(dst) },
		flushOf:    func(h *HistHandle) { h.Flush() },
		stepsOf:    func(h *HistHandle) uint64 { return h.Steps() },
		closeOf:    func(hg *Histogram) { hg.Close() },
		boundsOf:   func(hg *Histogram) Bounds { return hg.Bounds() },
		combine:    sumBuckets,
	}
	cfg := histConfig{shards: 1, batch: 1, backend: BucketHistBackend}
	for _, opt := range opts {
		opt(&cfg)
	}
	w.tel = cfg.tel
	if _, err := newWindow(d, epochs, w); err != nil {
		return nil, err
	}
	return &WindowedHistogram{w: w, buckets: buckets}, nil
}

// Handle binds process slot i to the windowed histogram.
func (hg *WindowedHistogram) Handle(i int) *WHistHandle {
	return &WHistHandle{h: newWindowHandle(hg.w, i)}
}

// Bounds returns the windowed read envelope (see window.Bounds).
func (hg *WindowedHistogram) Bounds() Bounds { return hg.w.Bounds() }

// Buckets returns the number of buckets.
func (hg *WindowedHistogram) Buckets() int { return hg.buckets }

// BaseObjects sums the base objects of every live epoch (see
// WindowedCounter.BaseObjects).
func (hg *WindowedHistogram) BaseObjects() uint64 {
	var total uint64
	for j := range hg.w.ring {
		total += hg.w.ring[j].Load().obj.BaseObjects()
	}
	return total
}

// Close freezes the window (see window.Close).
func (hg *WindowedHistogram) Close() { hg.w.Close() }

// Reset replaces every live epoch with a fresh one (see window.Reset).
func (hg *WindowedHistogram) Reset() error { return hg.w.Reset() }

// Rotate forces one epoch rotation (deterministic tests).
func (hg *WindowedHistogram) Rotate() { hg.w.Rotate() }

// Window returns the window duration; Epochs the ring size.
func (hg *WindowedHistogram) Window() time.Duration { return hg.w.Window() }
func (hg *WindowedHistogram) Epochs() int           { return hg.w.Epochs() }

// WHistHandle is one process's view of a windowed histogram. It
// satisfies the same contract as *HistHandle (Add, AddN, Buckets,
// Steps, Flush).
type WHistHandle struct {
	h windowHandle[*Histogram, *HistHandle, []uint64]
}

// Add adds one observation to bucket b of the current epoch.
func (h *WHistHandle) Add(b int) { h.AddN(b, 1) }

// AddN adds d observations to bucket b of the current epoch.
func (h *WHistHandle) AddN(b int, d uint64) { h.h.cur().AddN(b, d) }

// Buckets returns the per-bucket counts summed over the live ring. The
// slice is fresh (owned by the caller).
func (h *WHistHandle) Buckets() []uint64 { return h.h.readWindow() }

// BucketsInto is Buckets into a reused buffer (grown as needed; a nil
// dst behaves like Buckets).
func (h *WHistHandle) BucketsInto(dst []uint64) []uint64 { return h.h.readWindowInto(dst) }

// Flush publishes buffered observations in every cached epoch handle.
func (h *WHistHandle) Flush() { h.h.flushAll() }

// Steps returns the cumulative shared-memory steps across epochs.
func (h *WHistHandle) Steps() uint64 { return h.h.steps() }
