package shard_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"approxobj/internal/shard"
)

// atomicMax raises a to at least v.
func atomicMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// runMaxEnvelopeCheck is the max-register counterpart of
// runEnvelopeCheck: writers goroutines drive a mix of monotone
// (ascending) and non-monotone (stale, already-dominated) writes against
// a sharded max register while one dedicated reader checks that EVERY
// observed read is a valid response for some true maximum inside the
// regularity window — between the writes completed before the read
// started (vmin) and those started before it returned (vmax), per
// Bounds.ContainsRange. Returns the true maximum for follow-up checks.
func runMaxEnvelopeCheck(t *testing.T, writers int, k uint64, perG int, opts ...shard.MaxRegOption) {
	t.Helper()
	n := writers + 1 // slot n-1 is the reader
	m, err := shard.NewMaxReg(n, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	bounds := m.Bounds()

	var startedMax, completedMax atomic.Uint64
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(writers)
	handles := make([]*shard.MaxRegHandle, writers)
	for i := 0; i < writers; i++ {
		h := m.Handle(i)
		handles[i] = h
		id := uint64(i)
		go func() {
			defer wg.Done()
			for j := 1; j <= perG; j++ {
				// Writers interleave distinct ascending sequences so the
				// running maximum keeps moving...
				v := uint64(j)*uint64(writers) + id
				atomicMax(&startedMax, v)
				h.Write(v)
				atomicMax(&completedMax, v)
				if j%7 == 0 {
					// ...and every 7th op is a non-monotone write of an
					// already-dominated value, which must neither move the
					// maximum nor corrupt the elision state.
					h.Write(v / 2)
				}
			}
		}()
	}

	var checks uint64
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rh := m.Handle(n - 1)
		check := func() {
			vmin := completedMax.Load()
			x := rh.Read()
			vmax := startedMax.Load()
			checks++
			if !bounds.ContainsRange(vmin, vmax, x) {
				t.Errorf("read %d outside envelope %+v for any max in [%d, %d]", x, bounds, vmin, vmax)
			}
		}
		for !done.Load() {
			check()
		}
		check() // one fully quiescent read
	}()

	wg.Wait()
	done.Store(true)
	readerWG.Wait()
	if checks == 0 {
		t.Fatal("reader performed no checks")
	}
	// After flushing every writer handle the elision headroom disappears:
	// the combined read must obey the pure shard-composition envelope
	// (Buffer = 0) against the exact true maximum.
	for _, h := range handles {
		h.Flush()
	}
	trueMax := uint64(perG)*uint64(writers) + uint64(writers) - 1
	flushed := bounds
	flushed.Buffer = 0
	if x := m.Handle(n - 1).Read(); !flushed.Contains(trueMax, x) {
		t.Errorf("quiescent flushed read %d outside envelope %+v of true max %d", x, flushed, trueMax)
	}
}

// TestShardedMaxRegEnvelopeSweep sweeps (writers, shards, batch) across
// all four max-register backends, checking every concurrently observed
// read against the documented envelope. Note Bounds is identical for
// every shard count — sharding a max register widens nothing.
func TestShardedMaxRegEnvelopeSweep(t *testing.T) {
	perG := 4_000
	if testing.Short() {
		perG = 500
	}
	for _, writers := range []int{1, 3, 6} {
		for _, s := range []int{1, 2, 4} {
			for _, b := range []int{1, 7, 32} {
				// Bound above every written value (max perG*writers + writers - 1).
				bound := uint64(perG)*uint64(writers) + uint64(writers)
				common := []shard.MaxRegOption{shard.MaxRegShards(s), shard.MaxRegBatch(b)}
				runMaxEnvelopeCheck(t, writers, 1, perG,
					append(common, shard.WithMaxRegBackend(shard.ExactMaxBackend()))...)
				runMaxEnvelopeCheck(t, writers, 1, perG,
					append(common, shard.WithMaxRegBackend(shard.ExactBoundedMaxBackend(bound)))...)
				runMaxEnvelopeCheck(t, writers, 3, perG,
					append(common, shard.WithMaxRegBackend(shard.MultMaxBackend()))...)
				runMaxEnvelopeCheck(t, writers, 3, perG,
					append(common, shard.WithMaxRegBackend(shard.MultBoundedMaxBackend(bound)))...)
			}
		}
	}
}

// TestMaxRegShardingInvariance pins the composition claim directly:
// Bounds does not depend on the shard count, for any backend.
func TestMaxRegShardingInvariance(t *testing.T) {
	for _, be := range []shard.MaxRegBackend{
		shard.ExactMaxBackend(),
		shard.ExactBoundedMaxBackend(1 << 20),
		shard.MultMaxBackend(),
		shard.MultBoundedMaxBackend(1 << 20),
	} {
		var want shard.Bounds
		for i, s := range []int{1, 2, 8} {
			m, err := shard.NewMaxReg(4, 3, shard.MaxRegShards(s), shard.MaxRegBatch(5), shard.WithMaxRegBackend(be))
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = m.Bounds()
				continue
			}
			if got := m.Bounds(); got != want {
				t.Errorf("%s: Bounds changed with shard count %d: %+v != %+v", be.Name(), s, got, want)
			}
		}
	}
}

// TestMaxRegElision pins the write-elision semantics directly on the
// exact backend: writes within B-1 of the last flushed value stay local,
// a write B or more above flushes immediately, stale writes are free, and
// Flush publishes the pending maximum.
func TestMaxRegElision(t *testing.T) {
	const b = 8
	m, err := shard.NewMaxReg(2, 1, shard.MaxRegShards(2), shard.MaxRegBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	w, r := m.Handle(0), m.Handle(1)
	w.Write(100) // 100 - 0 >= B: writes through
	if got := r.Read(); got != 100 {
		t.Fatalf("read %d after write-through, want 100", got)
	}
	steps := w.Steps()
	w.Write(100 + b - 1) // within the window: elided
	w.Write(90)          // stale: free
	w.Write(100)         // at the flushed value: free
	if w.Steps() != steps {
		t.Fatalf("elided writes took %d shared steps", w.Steps()-steps)
	}
	if got := w.Pending(); got != 100+b-1 {
		t.Fatalf("pending = %d, want %d", got, 100+b-1)
	}
	if got := r.Read(); got != 100 {
		t.Fatalf("read %d while %d is elided, want 100", got, 100+b-1)
	}
	w.Write(100 + b) // B above the flushed value: writes through, subsumes pending
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending after write-through = %d, want 0", got)
	}
	if got := r.Read(); got != 100+b {
		t.Fatalf("read %d after write-through, want %d", got, 100+b)
	}
	w.Write(100 + b + 3) // elided again
	w.Flush()
	if got := r.Read(); got != 100+b+3 {
		t.Fatalf("read %d after Flush, want %d", got, 100+b+3)
	}
	if got := w.Pending(); got != 0 {
		t.Fatalf("pending after Flush = %d, want 0", got)
	}
}

// TestNewMaxRegValidation mirrors TestNewValidation for the max-register
// side of the runtime.
func TestNewMaxRegValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
		k    uint64
		opts []shard.MaxRegOption
		want string // substring of the error, "" for success
	}{
		{name: "ok-defaults", n: 4, k: 1},
		{name: "ok-sharded-batched", n: 8, k: 2,
			opts: []shard.MaxRegOption{shard.MaxRegShards(4), shard.MaxRegBatch(16), shard.WithMaxRegBackend(shard.MultMaxBackend())}},
		{name: "no-processes", n: 0, k: 1, want: "at least one process"},
		{name: "zero-shards", n: 4, k: 1, opts: []shard.MaxRegOption{shard.MaxRegShards(0)}, want: "shard count"},
		{name: "zero-batch", n: 4, k: 1, opts: []shard.MaxRegOption{shard.MaxRegBatch(0)}, want: "batch size"},
		{name: "batch-swallows-bound", n: 4, k: 1,
			opts: []shard.MaxRegOption{shard.MaxRegBatch(16), shard.WithMaxRegBackend(shard.ExactBoundedMaxBackend(16))}, want: "exceeds"},
		{name: "batch-at-bound-edge", n: 4, k: 1,
			opts: []shard.MaxRegOption{shard.MaxRegBatch(15), shard.WithMaxRegBackend(shard.ExactBoundedMaxBackend(16))}},
		// Backend preconditions surface through NewMaxReg.
		{name: "mult-k-too-small", n: 4, k: 1,
			opts: []shard.MaxRegOption{shard.WithMaxRegBackend(shard.MultMaxBackend())}, want: "k must be >= 2"},
	} {
		_, err := shard.NewMaxReg(tc.n, tc.k, tc.opts...)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want one containing %q", tc.name, err, tc.want)
		}
	}
}

// TestMaxRegOutOfRangePanics pins the fail-fast contract: on bounded
// backends an out-of-range write panics even when elision would otherwise
// have swallowed it.
func TestMaxRegOutOfRangePanics(t *testing.T) {
	m, err := shard.NewMaxReg(1, 1, shard.MaxRegBatch(8), shard.WithMaxRegBackend(shard.ExactBoundedMaxBackend(100)))
	if err != nil {
		t.Fatal(err)
	}
	h := m.Handle(0)
	h.Write(95) // flushes; 100..102 would be elided if not range-checked
	defer func() {
		if recover() == nil {
			t.Error("out-of-range write did not panic")
		}
	}()
	h.Write(100)
}

// FuzzShardedMaxRegAccuracy lets the fuzzer pick the configuration: any
// (writers, shards, batch, k, ops) combination must keep every concurrent
// read inside the envelope, under the monotone + non-monotone write mix
// of runMaxEnvelopeCheck. The seeds cover the corners (single shard,
// batch 1, wide elision window); 'go test' runs them on every CI pass and
// 'go test -fuzz=FuzzShardedMaxRegAccuracy ./internal/shard' explores
// further.
func FuzzShardedMaxRegAccuracy(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint16(200))
	f.Add(uint8(3), uint8(4), uint8(8), uint8(2), uint16(1000))
	f.Add(uint8(4), uint8(2), uint8(64), uint8(5), uint16(2000))
	f.Fuzz(func(t *testing.T, writersIn, sIn, bIn, kIn uint8, opsIn uint16) {
		writers := int(writersIn)%4 + 1
		s := int(sIn)%8 + 1
		b := int(bIn)%64 + 1
		k := uint64(kIn)%15 + 2
		perG := int(opsIn)%2_000 + 50
		runMaxEnvelopeCheck(t, writers, k, perG,
			shard.MaxRegShards(s), shard.MaxRegBatch(b), shard.WithMaxRegBackend(shard.MultMaxBackend()))
	})
}
