package telemetry

import (
	"sync"
	"testing"
	"time"
)

// The nil sink is the disabled state: every method must be callable on
// a nil receiver and observe/return nothing.
func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	s.Inc(EvFlush, 0)
	s.Count(EvFlush, 1, 10)
	var local uint64 = 3
	s.BumpLocal(EvCacheRead, 2, &local)
	if local != 3 {
		t.Errorf("nil BumpLocal touched the local accumulator: %d", local)
	}
	s.FlushLocal(EvCacheRead, 2, &local)
	s.ObserveRefresh(time.Second)
	s.AddLagUnits(4)
	s.RegisterResident(func() uint64 { return 1 })
	s.SetTrace(func(TraceEvent, int, uint64) { t.Error("nil sink fired trace") }, 0)
	s.Trace(TraceFlush, 0, 1)
	if s.Enabled() || s.Total(EvFlush) != 0 || s.LagBound() != 0 ||
		s.RefreshHighWaterNs() != 0 || s.ResidentBytes() != 0 {
		t.Error("nil sink reported nonzero state")
	}
}

// Totals fold across stripes regardless of the hints writers used.
func TestTotalFoldsStripes(t *testing.T) {
	s := New()
	for hint := 0; hint < 3*stripeCount; hint++ {
		s.Inc(EvFlush, hint)
		s.Count(EvElidedWrite, -hint, 2)
	}
	if got := s.Total(EvFlush); got != 3*stripeCount {
		t.Errorf("Total(EvFlush) = %d, want %d", got, 3*stripeCount)
	}
	if got := s.Total(EvElidedWrite); got != 6*stripeCount {
		t.Errorf("Total(EvElidedWrite) = %d, want %d", got, 6*stripeCount)
	}
	if got := s.Total(EvRotation); got != 0 {
		t.Errorf("Total(EvRotation) = %d, want 0", got)
	}
}

// BumpLocal publishes only on batch expiry; FlushLocal drains the
// residue; the unpublished residue is bounded by LagBound.
func TestBumpLocalBatching(t *testing.T) {
	s := New()
	s.AddLagUnits(1)
	var local uint64
	for i := 0; i < CounterBatch-1; i++ {
		s.BumpLocal(EvCacheRead, 0, &local)
	}
	if got := s.Total(EvCacheRead); got != 0 {
		t.Errorf("published %d events before the batch expired", got)
	}
	if local != CounterBatch-1 {
		t.Errorf("local = %d, want %d", local, CounterBatch-1)
	}
	if got, want := s.LagBound(), uint64(CounterBatch-1); got != want {
		t.Errorf("LagBound = %d, want %d", got, want)
	}
	s.BumpLocal(EvCacheRead, 0, &local) // batch expires
	if got := s.Total(EvCacheRead); got != CounterBatch {
		t.Errorf("Total after batch expiry = %d, want %d", got, CounterBatch)
	}
	if local != 0 {
		t.Errorf("local not reset after publish: %d", local)
	}
	for i := 0; i < 5; i++ {
		s.BumpLocal(EvCacheRead, 0, &local)
	}
	s.FlushLocal(EvCacheRead, 0, &local)
	if got := s.Total(EvCacheRead); got != CounterBatch+5 {
		t.Errorf("Total after FlushLocal = %d, want %d", got, CounterBatch+5)
	}
}

func TestObserveRefreshIsMax(t *testing.T) {
	s := New()
	s.ObserveRefresh(5 * time.Microsecond)
	s.ObserveRefresh(2 * time.Microsecond)
	if got := s.RefreshHighWaterNs(); got != 5000 {
		t.Errorf("high-water = %d ns, want 5000", got)
	}
	s.ObserveRefresh(0)
	s.ObserveRefresh(-time.Second)
	if got := s.RefreshHighWaterNs(); got != 5000 {
		t.Errorf("non-positive observation moved the mark: %d", got)
	}
}

func TestResidentBytesSumsGauges(t *testing.T) {
	s := New()
	s.RegisterResident(func() uint64 { return 100 })
	s.RegisterResident(func() uint64 { return 28 })
	s.RegisterResident(nil) // ignored
	if got := s.ResidentBytes(); got != 128 {
		t.Errorf("ResidentBytes = %d, want 128", got)
	}
}

// sampleShift 0 fires on every event; a large shift fires on almost
// none (bounded check, not exact — the sampler is pseudorandom).
func TestTraceSampling(t *testing.T) {
	s := New()
	var fired int
	var lastEv TraceEvent
	var lastSlot int
	var lastVal uint64
	s.SetTrace(func(ev TraceEvent, slot int, value uint64) {
		fired++
		lastEv, lastSlot, lastVal = ev, slot, value
	}, 0)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Trace(TraceRotation, 7, uint64(i))
	}
	if fired != n {
		t.Errorf("shift 0: fired %d of %d", fired, n)
	}
	if lastEv != TraceRotation || lastSlot != 7 || lastVal != n-1 {
		t.Errorf("trace payload = (%v, %d, %d)", lastEv, lastSlot, lastVal)
	}

	s2 := New()
	fired = 0
	s2.SetTrace(func(TraceEvent, int, uint64) { fired++ }, 10) // ~1/1024
	for i := 0; i < n; i++ {
		s2.Trace(TraceFlush, 0, 0)
	}
	if fired > n/10 {
		t.Errorf("shift 10: fired %d of %d, want a sparse sample", fired, n)
	}
}

// Concurrent counting loses nothing: the striped counters are exact;
// only BumpLocal batching (whose residue the meters' envelope carries)
// is approximate.
func TestConcurrentCounting(t *testing.T) {
	s := New()
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(hint int) {
			defer wg.Done()
			var local uint64
			for i := 0; i < per; i++ {
				s.Inc(EvFlush, hint)
				s.BumpLocal(EvCacheRead, hint, &local)
			}
			s.FlushLocal(EvCacheRead, hint, &local)
		}(w)
	}
	wg.Wait()
	if got := s.Total(EvFlush); got != workers*per {
		t.Errorf("Total(EvFlush) = %d, want %d", got, workers*per)
	}
	if got := s.Total(EvCacheRead); got != workers*per {
		t.Errorf("Total(EvCacheRead) = %d, want %d", got, workers*per)
	}
}
