// Package telemetry is the plane's self-instrumentation sink: a
// low-overhead event counter the runtime layers (prim, pool, shard)
// report into, read back out by the public SelfMetrics surface as
// ordinary approximate objects.
//
// The design applies the repository's own thesis to its instrumentation
// (the Matias–Vitter–Young argument: internal event counts do not need
// exactness): counts are striped across padded cells like a sharded
// counter, the hottest per-operation events are batched in plain
// handle-local integers and published every CounterBatch events, and the
// resulting inaccuracy is not hidden — it is the Buffer term of the
// meters' own Bounds envelope (see LagBound), rendered as _bound
// companion series by package expose like any user object's.
//
// The disabled state is a nil *Sink. Every method is nil-receiver-safe,
// so instrumented call sites in cold paths call unconditionally; hot
// paths guard with a single `if tel != nil` branch, mirroring the
// nil-gate fast path of internal/prim (PR 9), so disabled
// instrumentation costs one predicted-not-taken branch and zero
// allocations.
//
// The package imports only the standard library, so every layer —
// including internal/prim at the bottom of the dependency order — can
// report into it without an import cycle.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event enumerates the runtime events the sink counts. The set mirrors
// the plane's moving parts layer by layer: buffer-policy activity and
// flushes (internal/shard/plane.go), read-cache traffic and combiner
// refreshes (readcache.go), pool handle churn (internal/pool), window
// rotation (window.go), and arena residency (internal/prim/arena.go).
type Event uint8

const (
	// EvFlush: a handle buffer published its pending state to the shards
	// (any buffer policy; batch expiry, write-through, or explicit Flush).
	EvFlush Event = iota
	// EvBufferHit: a write was absorbed by a handle-local buffer instead
	// of reaching the shards (count batching and bucket batching).
	EvBufferHit
	// EvElidedWrite: a write was elided entirely by an elision policy
	// (max-register subsumption or window headroom, snapshot component
	// elision) — never published, by design.
	EvElidedWrite
	// EvCacheRead: a read was served from the read-combiner cache
	// (fresh cell hit on the O(1) path).
	EvCacheRead
	// EvCacheMiss: a read found the cached cell stale or unfilled and
	// fell through to the refresh lock.
	EvCacheMiss
	// EvInlineRefresh: a reader re-combined the cell itself (the
	// unconditional-staleness fallback), rather than finding it
	// refreshed by the time it held the lock.
	EvInlineRefresh
	// EvCombinerTick: the background combiner goroutine refreshed the
	// cell on its maxStale/2 tick.
	EvCombinerTick
	// EvPoolAcquire: a slot was leased from a handle pool (Acquire or a
	// successful TryAcquire).
	EvPoolAcquire
	// EvPoolTryFail: a TryAcquire found no free slot.
	EvPoolTryFail
	// EvRotation: a windowed object rotated an epoch out of the ring.
	EvRotation
	// EvRehome: a windowed handle re-bound its core to a fresh epoch
	// (first write after a rotation).
	EvRehome
	// EvArenaRow: a base-object arena row was allocated.
	EvArenaRow

	// NumEvents sizes per-event arrays; keep it last.
	NumEvents
)

// CounterBatch is the publication batch of BumpLocal: hot per-operation
// events accumulate in a plain handle-local integer and publish to the
// striped counters every CounterBatch events. Each handle-local
// accumulator can therefore lag the striped total by at most
// CounterBatch-1 events — the Buffer term LagBound reports.
const CounterBatch = 256

// stripeCount is the number of padded counter stripes events spread
// over. Writers pick a stripe by a caller-supplied hint (their slot),
// so concurrent handles on different slots touch different cache lines.
const stripeCount = 8

// stripe is one padded bank of per-event counters. NumEvents uint64
// cells are 96 bytes; the pad rounds the struct to 128 — the same
// false-sharing stride the base-object arenas use — so neighboring
// stripes never share a cache line.
type stripe struct {
	v [NumEvents]atomic.Uint64
	_ [128 - 8*NumEvents]byte
}

// TraceEvent enumerates the sampled trace hook's event kinds — the
// coarse structural events worth a callback, not the per-operation
// counts (those are meters).
type TraceEvent uint8

const (
	// TraceFlush: a handle buffer flushed; value is the flushed amount.
	TraceFlush TraceEvent = iota
	// TraceRefresh: a read-cache cell was re-combined; slot is -1 (the
	// cache is per-plane, not per-slot), value is the combined scalar
	// (or the vector length for vector kinds).
	TraceRefresh
	// TraceRotation: a windowed object rotated; value is the new epoch
	// sequence number.
	TraceRotation
	// TraceAcquire: a pool slot was leased; slot is the leased slot.
	TraceAcquire
)

// TraceFunc receives sampled trace events. It is called synchronously
// on the event's goroutine (sampled 1 in 2^k — see Sink.SetTrace), so
// implementations should be cheap and must not call back into the
// object being traced.
type TraceFunc func(ev TraceEvent, slot int, value uint64)

// Sink is the event sink one telemetry domain shares: striped
// approximate counters per event, a refresh-latency high-water mark,
// the lag accounting behind the meters' Buffer envelope, an optional
// sampled trace hook, and a set of pull gauges for resident bytes.
//
// The nil *Sink is the disabled sink: every method is a no-op (a
// single nil check), so call sites need no configuration branches.
// A non-nil Sink is safe for concurrent use by any number of
// goroutines; SetTrace and RegisterResident are configuration and must
// happen before the sink is shared.
type Sink struct {
	stripes [stripeCount]stripe

	// refreshNs is the high-water mark of read-cache refresh latency in
	// nanoseconds, maintained by a CAS-max loop (a max register, the
	// second of the paper's object families, in miniature).
	refreshNs atomic.Uint64

	// lagUnits counts the handle-local accumulators that may hold
	// unpublished BumpLocal events — one unit per process slot of each
	// instrumented object. LagBound derives the meters' Buffer term
	// from it.
	lagUnits atomic.Uint64

	// traceFn/traceMask implement the sampled trace hook: an event
	// fires the hook iff the next SplitMix64 output has all traceMask
	// bits clear — probability 1/2^k for mask 2^k-1. traceState is the
	// shared generator state, advanced atomically (the Weyl sequence
	// step IS the atomic add, so concurrent tracers draw distinct
	// outputs).
	traceFn    TraceFunc
	traceMask  uint64
	traceState atomic.Uint64

	mu       sync.Mutex
	resident []func() uint64
}

// New returns an enabled, empty sink.
func New() *Sink { return &Sink{} }

// Enabled reports whether the sink records anything (s != nil).
func (s *Sink) Enabled() bool { return s != nil }

// SetTrace installs the sampled trace hook: fn fires for roughly 1 in
// 2^sampleShift trace events (sampleShift 0 fires on every event).
// Configuration only — call before the sink is shared.
func (s *Sink) SetTrace(fn TraceFunc, sampleShift uint) {
	if s == nil {
		return
	}
	if sampleShift > 63 {
		sampleShift = 63
	}
	s.traceFn = fn
	s.traceMask = 1<<sampleShift - 1
}

// Inc counts one occurrence of e. hint selects the counter stripe —
// callers pass their slot so concurrent writers spread over stripes;
// any value is valid.
func (s *Sink) Inc(e Event, hint int) {
	if s == nil {
		return
	}
	s.stripes[uint(hint)%stripeCount].v[e].Add(1)
}

// Count counts n occurrences of e (see Inc).
func (s *Sink) Count(e Event, hint int, n uint64) {
	if s == nil || n == 0 {
		return
	}
	s.stripes[uint(hint)%stripeCount].v[e].Add(n)
}

// Total returns the published count of e, folded across stripes. It
// excludes events still parked in BumpLocal accumulators — at most
// LagBound() of them, which is exactly the meters' Buffer envelope.
func (s *Sink) Total(e Event) uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for i := range s.stripes {
		t += s.stripes[i].v[e].Load()
	}
	return t
}

// BumpLocal counts one occurrence of e into the caller's plain local
// accumulator, publishing (and resetting) it once it reaches
// CounterBatch. This is the hot-path counting primitive: the common
// case is one register increment and one compare, no atomics.
func (s *Sink) BumpLocal(e Event, hint int, local *uint64) {
	if s == nil {
		return
	}
	*local++
	if *local >= CounterBatch {
		s.stripes[uint(hint)%stripeCount].v[e].Add(*local)
		*local = 0
	}
}

// FlushLocal publishes a BumpLocal accumulator's residue, if any.
// Buffers call it whenever they flush their own pending state, so the
// meters' lag tracks the objects' lag.
func (s *Sink) FlushLocal(e Event, hint int, local *uint64) {
	if s == nil || *local == 0 {
		return
	}
	s.stripes[uint(hint)%stripeCount].v[e].Add(*local)
	*local = 0
}

// ObserveRefresh folds a read-cache refresh latency into the high-water
// mark (CAS-max).
func (s *Sink) ObserveRefresh(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	v := uint64(d)
	for {
		cur := s.refreshNs.Load()
		if v <= cur || s.refreshNs.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RefreshHighWaterNs returns the refresh-latency high-water mark in
// nanoseconds.
func (s *Sink) RefreshHighWaterNs() uint64 {
	if s == nil {
		return 0
	}
	return s.refreshNs.Load()
}

// AddLagUnits records n more handle-local accumulators feeding this
// sink (one per process slot of a newly instrumented object).
func (s *Sink) AddLagUnits(n int) {
	if s == nil || n <= 0 {
		return
	}
	s.lagUnits.Add(uint64(n))
}

// LagBound is the Buffer term of the lag-batched meters' envelope: at
// most CounterBatch-1 unpublished events per handle-local accumulator.
// Like a batched counter's (B-1)·n term, it is configured accounting,
// not a measurement.
func (s *Sink) LagBound() uint64 {
	if s == nil {
		return 0
	}
	return (CounterBatch - 1) * s.lagUnits.Load()
}

// RegisterResident adds a pull gauge contributing to ResidentBytes
// (one per instrumented object, reporting its base-object bytes).
func (s *Sink) RegisterResident(fn func() uint64) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.resident = append(s.resident, fn)
	s.mu.Unlock()
}

// ResidentBytes sums the registered residency gauges.
func (s *Sink) ResidentBytes() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var t uint64
	for _, fn := range s.resident {
		t += fn()
	}
	return t
}

// Trace offers a trace event to the sampled hook. With no hook
// installed it is two loads and a return; with one, it advances the
// shared SplitMix64 stream one step and fires the hook iff the output's
// low sampleShift bits are all zero — an unbiased 1/2^k sample that
// costs one atomic add per offered event.
func (s *Sink) Trace(ev TraceEvent, slot int, value uint64) {
	if s == nil || s.traceFn == nil {
		return
	}
	// SplitMix64: the golden-gamma Weyl step is the atomic add, so
	// concurrent callers draw distinct outputs from the shared stream.
	z := s.traceState.Add(0x9E3779B97F4A7C15)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	if z&s.traceMask != 0 {
		return
	}
	s.traceFn(ev, slot, value)
}
