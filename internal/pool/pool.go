// Package pool implements a free list of process slots. Every object in
// this repository binds goroutines to numbered process slots (the model's
// named processes); the pool makes the "one slot per goroutine" invariant
// structural: a goroutine that holds a slot acquired it from the pool, and
// nobody else can hold the same slot until it is released.
//
// The implementation is a buffered channel used as a lock-free free list:
// Acquire receives a slot, Release sends it back. Channel semantics give
// exactly the two properties the objects need — mutual exclusion per slot
// (a slot value exists in at most one place at a time) and a
// happens-before edge from each Release to the next Acquire of the same
// slot, so successive owners of a slot may reuse its handle state without
// further synchronization.
package pool

import "fmt"

// Pool is a fixed-capacity free list of slots 0..n-1. The zero value is
// not usable; create pools with New. All methods are safe for concurrent
// use.
type Pool struct {
	free chan int
}

// New creates a pool over slots 0..n-1, all initially free. n must be at
// least 1.
func New(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("pool: need at least one slot, got %d", n))
	}
	p := &Pool{free: make(chan int, n)}
	for i := 0; i < n; i++ {
		p.free <- i
	}
	return p
}

// Cap returns the number of slots the pool manages.
func (p *Pool) Cap() int { return cap(p.free) }

// Free returns the number of currently unheld slots (diagnostic; the value
// may be stale by the time it is observed).
func (p *Pool) Free() int { return len(p.free) }

// Acquire blocks until a slot is free and returns it. The caller owns the
// slot exclusively until it passes it back via Release.
func (p *Pool) Acquire() int { return <-p.free }

// TryAcquire returns a free slot without blocking, or ok=false if every
// slot is currently held.
func (p *Pool) TryAcquire() (slot int, ok bool) {
	select {
	case s := <-p.free:
		return s, true
	default:
		return 0, false
	}
}

// Release returns a slot to the pool. Releasing a slot that is not
// currently held (double release, or a slot never acquired) is a bug in
// the caller and panics rather than corrupting the free list.
func (p *Pool) Release(slot int) {
	if slot < 0 || slot >= cap(p.free) {
		panic(fmt.Sprintf("pool: release of out-of-range slot %d (capacity %d)", slot, cap(p.free)))
	}
	select {
	case p.free <- slot:
	default:
		panic(fmt.Sprintf("pool: release of slot %d into a full pool (double release?)", slot))
	}
}
