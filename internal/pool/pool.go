// Package pool implements a free list of process slots. Every object in
// this repository binds goroutines to numbered process slots (the model's
// named processes); the pool makes the "one slot per goroutine" invariant
// structural: a goroutine that holds a slot acquired it from the pool, and
// nobody else can hold the same slot until it is released.
//
// The implementation is a buffered channel used as a lock-free free list:
// Acquire receives a slot, Release sends it back. Channel semantics give
// exactly the two properties the objects need — mutual exclusion per slot
// (a slot value exists in at most one place at a time) and a
// happens-before edge from each Release to the next Acquire of the same
// slot, so successive owners of a slot may reuse its handle state without
// further synchronization.
//
// The channel alone cannot distinguish "slot s is held" from "slot s is
// free"; it only counts. A double release would therefore go unnoticed
// whenever some other slot happened to be held (the free list has room),
// silently duplicating the slot and handing it to two goroutines at once.
// An atomic held-slot bitset closes that hole: every Acquire marks its
// slot held, every Release atomically clears the mark, and a Release of a
// slot whose mark is already clear panics immediately — exclusivity is
// enforced per slot, not inferred from the free list's fill level.
package pool

import (
	"fmt"
	"sync/atomic"

	"approxobj/internal/telemetry"
)

// Pool is a fixed-capacity free list of slots 0..n-1. The zero value is
// not usable; create pools with New. All methods are safe for concurrent
// use.
type Pool struct {
	free chan int
	// held is a bitset over slots: bit (s % 64) of word (s / 64) is set
	// exactly while slot s is checked out. It is the source of truth for
	// Release's exclusivity check; the channel remains the source of the
	// happens-before edge between successive owners.
	held []atomic.Uint64

	// tel receives acquisition events when the owning object is
	// instrumented (nil otherwise; the sink's methods are
	// nil-receiver-safe, so the acquisition paths report
	// unconditionally).
	tel *telemetry.Sink
}

// New creates a pool over slots 0..n-1, all initially free. n must be at
// least 1.
func New(n int) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("pool: need at least one slot, got %d", n))
	}
	p := &Pool{
		free: make(chan int, n),
		held: make([]atomic.Uint64, (n+63)/64),
	}
	for i := 0; i < n; i++ {
		p.free <- i
	}
	return p
}

// Instrument attaches a telemetry sink to the pool's acquisition paths
// (telemetry.EvPoolAcquire per lease, telemetry.EvPoolTryFail per
// failed TryAcquire, and the sampled TraceAcquire hook). A nil sink
// disables instrumentation.
func (p *Pool) Instrument(s *telemetry.Sink) { p.tel = s }

// Cap returns the number of slots the pool manages.
func (p *Pool) Cap() int { return cap(p.free) }

// Free returns the number of currently unheld slots (diagnostic; the value
// may be stale by the time it is observed).
func (p *Pool) Free() int { return len(p.free) }

// Held reports whether slot is currently checked out (diagnostic; the
// answer may be stale by the time it is observed, except for the caller's
// own slot, which only the caller can release).
func (p *Pool) Held(slot int) bool {
	if slot < 0 || slot >= cap(p.free) {
		return false
	}
	return p.held[slot/64].Load()&(uint64(1)<<(slot%64)) != 0
}

// mark sets the held bit of slot; the slot came off the free list, so the
// bit must have been clear.
func (p *Pool) mark(slot int) {
	mask := uint64(1) << (slot % 64)
	if old := p.held[slot/64].Or(mask); old&mask != 0 {
		panic(fmt.Sprintf("pool: slot %d handed out while already held", slot))
	}
}

// Acquire blocks until a slot is free and returns it. The caller owns the
// slot exclusively until it passes it back via Release.
func (p *Pool) Acquire() int {
	s := <-p.free
	p.mark(s)
	if p.tel != nil {
		p.tel.Inc(telemetry.EvPoolAcquire, s)
		p.tel.Trace(telemetry.TraceAcquire, s, 0)
	}
	return s
}

// TryAcquire returns a free slot without blocking, or ok=false if every
// slot is currently held.
func (p *Pool) TryAcquire() (slot int, ok bool) {
	select {
	case s := <-p.free:
		p.mark(s)
		if p.tel != nil {
			p.tel.Inc(telemetry.EvPoolAcquire, s)
			p.tel.Trace(telemetry.TraceAcquire, s, 0)
		}
		return s, true
	default:
		p.tel.Inc(telemetry.EvPoolTryFail, 0)
		return 0, false
	}
}

// Release returns a slot to the pool. Releasing a slot that is not
// currently held (double release, or a slot never acquired) is a bug in
// the caller and panics immediately — the held bit is cleared atomically,
// so exactly one of two racing releases of the same slot wins and the
// other panics, whether or not the free list happens to have room.
func (p *Pool) Release(slot int) {
	if slot < 0 || slot >= cap(p.free) {
		panic(fmt.Sprintf("pool: release of out-of-range slot %d (capacity %d)", slot, cap(p.free)))
	}
	mask := uint64(1) << (slot % 64)
	if old := p.held[slot/64].And(^mask); old&mask == 0 {
		panic(fmt.Sprintf("pool: release of slot %d that is not held (double release?)", slot))
	}
	select {
	case p.free <- slot:
	default:
		// Unreachable while the bitset invariant holds: a slot's bit is set
		// iff it is absent from the channel, so there is always room for it.
		panic(fmt.Sprintf("pool: release of slot %d into a full pool (free-list corruption)", slot))
	}
}
