package pool_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"approxobj/internal/pool"
)

func TestPoolBasic(t *testing.T) {
	p := pool.New(3)
	if p.Cap() != 3 || p.Free() != 3 {
		t.Fatalf("Cap=%d Free=%d, want 3, 3", p.Cap(), p.Free())
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		s := p.Acquire()
		if s < 0 || s >= 3 || seen[s] {
			t.Fatalf("acquired invalid or duplicate slot %d (seen %v)", s, seen)
		}
		seen[s] = true
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	p.Release(1)
	s, ok := p.TryAcquire()
	if !ok || s != 1 {
		t.Fatalf("TryAcquire after Release(1) = %d, %v; want 1, true", s, ok)
	}
}

func TestPoolPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New(0)", func() { pool.New(0) })
	p := pool.New(2)
	mustPanic("Release(-1)", func() { p.Release(-1) })
	mustPanic("Release(2)", func() { p.Release(2) })
	mustPanic("double release", func() { p.Release(0) }) // pool is full: 0 was never acquired
}

// TestPoolSoak churns Acquire/Release from far more goroutines than slots
// and asserts mutual exclusion per slot: a per-slot atomic flag is CASed
// 0->1 on acquire and 1->0 on release, so any double ownership trips the
// CAS. Run with -race this also validates the happens-before edge between
// successive owners via a plain (non-atomic) per-slot scratch counter.
func TestPoolSoak(t *testing.T) {
	const slots = 4
	const goroutines = 4 * slots
	iters := 20_000
	if testing.Short() {
		iters = 2_000
	}
	p := pool.New(slots)
	held := make([]atomic.Uint32, slots)
	scratch := make([]uint64, slots) // plain memory: races are caught by -race
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := p.Acquire()
				if !held[s].CompareAndSwap(0, 1) {
					t.Errorf("slot %d acquired while already held", s)
				}
				scratch[s]++
				if !held[s].CompareAndSwap(1, 0) {
					t.Errorf("slot %d released while not held", s)
				}
				p.Release(s)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, v := range scratch {
		total += v
	}
	if total != uint64(goroutines*iters) {
		t.Fatalf("scratch total = %d, want %d", total, goroutines*iters)
	}
	if p.Free() != slots {
		t.Fatalf("Free = %d after quiescence, want %d", p.Free(), slots)
	}
}
