package pool_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"approxobj/internal/pool"
)

func TestPoolBasic(t *testing.T) {
	p := pool.New(3)
	if p.Cap() != 3 || p.Free() != 3 {
		t.Fatalf("Cap=%d Free=%d, want 3, 3", p.Cap(), p.Free())
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		s := p.Acquire()
		if s < 0 || s >= 3 || seen[s] {
			t.Fatalf("acquired invalid or duplicate slot %d (seen %v)", s, seen)
		}
		seen[s] = true
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	p.Release(1)
	s, ok := p.TryAcquire()
	if !ok || s != 1 {
		t.Fatalf("TryAcquire after Release(1) = %d, %v; want 1, true", s, ok)
	}
}

func TestPoolPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New(0)", func() { pool.New(0) })
	p := pool.New(2)
	mustPanic("Release(-1)", func() { p.Release(-1) })
	mustPanic("Release(2)", func() { p.Release(2) })
	mustPanic("double release", func() { p.Release(0) }) // pool is full: 0 was never acquired
}

// TestPoolDoubleReleaseWhileOtherHeld is the regression test for the
// exclusivity hole: releasing slot A twice while slot B is still held used
// to succeed silently (the free list had room for the duplicate), putting
// A in the hands of two goroutines at once. With the held-slot bitset the
// second release must panic immediately.
func TestPoolDoubleReleaseWhileOtherHeld(t *testing.T) {
	p := pool.New(2)
	a := p.Acquire()
	b := p.Acquire() // keeps the free list non-full across the double release
	p.Release(a)
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("double release of slot %d while slot %d is held did not panic", a, b)
			}
		}()
		p.Release(a)
	}()
	// The pool must still be consistent: exactly one copy of A free, B held.
	if p.Free() != 1 {
		t.Fatalf("Free = %d after double release attempt, want 1", p.Free())
	}
	got, ok := p.TryAcquire()
	if !ok || got != a {
		t.Fatalf("TryAcquire = %d, %v; want %d, true", got, ok, a)
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire found a third slot in a 2-slot pool")
	}
	p.Release(got)
	p.Release(b)
}

// TestPoolHeld pins the diagnostic view of the bitset.
func TestPoolHeld(t *testing.T) {
	p := pool.New(3)
	s := p.Acquire()
	if !p.Held(s) {
		t.Errorf("Held(%d) = false while checked out", s)
	}
	p.Release(s)
	if p.Held(s) {
		t.Errorf("Held(%d) = true after release", s)
	}
	if p.Held(-1) || p.Held(3) {
		t.Error("Held out of range must be false")
	}
}

// TestPoolSoak churns Acquire/Release from far more goroutines than slots
// and asserts mutual exclusion per slot: a per-slot atomic flag is CASed
// 0->1 on acquire and 1->0 on release, so any double ownership trips the
// CAS. Run with -race this also validates the happens-before edge between
// successive owners via a plain (non-atomic) per-slot scratch counter.
func TestPoolSoak(t *testing.T) {
	const slots = 4
	const goroutines = 4 * slots
	iters := 20_000
	if testing.Short() {
		iters = 2_000
	}
	p := pool.New(slots)
	held := make([]atomic.Uint32, slots)
	scratch := make([]uint64, slots) // plain memory: races are caught by -race
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := p.Acquire()
				if !held[s].CompareAndSwap(0, 1) {
					t.Errorf("slot %d acquired while already held", s)
				}
				scratch[s]++
				if !held[s].CompareAndSwap(1, 0) {
					t.Errorf("slot %d released while not held", s)
				}
				p.Release(s)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, v := range scratch {
		total += v
	}
	if total != uint64(goroutines*iters) {
		t.Fatalf("scratch total = %d, want %d", total, goroutines*iters)
	}
	if p.Free() != slots {
		t.Fatalf("Free = %d after quiescence, want %d", p.Free(), slots)
	}
}
