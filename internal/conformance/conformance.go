// Package conformance drives counter and max-register implementations
// through concurrent workloads and checks the resulting histories for
// linearizability within their accuracy envelopes.
//
// Two drivers are provided:
//
//   - Sim*: step-granular adversarial interleavings on the deterministic
//     machine of internal/sim. The driver stamps an operation's invocation
//     right before its first step and its response right after its last, so
//     recorded precedence is exactly the model's. Supports crash injection.
//   - HW*: real goroutines over sync/atomic primitives with logical-clock
//     history recording (the production path).
//
// Both feed internal/check. They are used by the test suites of every
// object in this repository and by the failure-injection tests.
package conformance

import (
	"fmt"
	"math/rand"

	"approxobj/internal/check"
	"approxobj/internal/history"
	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/sim"
)

// Workload describes a randomized mixed workload.
type Workload struct {
	Procs    int
	OpsPer   int     // operations per process
	ReadFrac float64 // fraction of reads (rest are updates)
	Seed     int64
	// MaxArg bounds write arguments for max registers (exclusive); ignored
	// for counters.
	MaxArg uint64
	// CrashProcs crash-stops this many processes at a random point
	// (simulated driver only).
	CrashProcs int
}

// opKind is a scheduled operation of a scripted workload.
type opKind struct {
	kind history.Kind
	arg  uint64
}

// script pre-generates each process's operation list so runs are
// reproducible from the seed alone.
func (w Workload) script(counter bool) [][]opKind {
	rng := rand.New(rand.NewSource(w.Seed))
	scripts := make([][]opKind, w.Procs)
	for i := range scripts {
		ops := make([]opKind, w.OpsPer)
		for j := range ops {
			if rng.Float64() < w.ReadFrac {
				if counter {
					ops[j] = opKind{kind: history.KindCounterRead}
				} else {
					ops[j] = opKind{kind: history.KindMaxRead}
				}
			} else {
				if counter {
					ops[j] = opKind{kind: history.KindInc}
				} else {
					arg := uint64(rng.Int63n(int64(w.MaxArg-1))) + 1
					ops[j] = opKind{kind: history.KindWrite, arg: arg}
				}
			}
		}
		scripts[i] = ops
	}
	return scripts
}

// simHistory runs the scripted workload on a fresh machine, returning the
// completed-operation history plus the updates that crashed mid-flight.
func simHistory(
	newSystem func(f *prim.Factory) ([]func(op opKind) uint64, error),
	w Workload,
	counter bool,
) ([]history.Op, []history.Op, error) {
	m := sim.NewMachine(w.Procs)
	apply, err := newSystem(m.Factory())
	if err != nil {
		return nil, nil, err
	}
	scripts := w.script(counter)

	rng := rand.New(rand.NewSource(w.Seed + 1))
	// Pre-pick crash points: (process, remaining steps before crash).
	nCrash := w.CrashProcs
	if nCrash > w.Procs {
		nCrash = w.Procs
	}
	crashAfter := make(map[int]int)
	for _, i := range rng.Perm(w.Procs)[:nCrash] {
		crashAfter[i] = rng.Intn(w.OpsPer * 4)
	}

	var (
		clock     uint64
		completed []history.Op
		pending   []history.Op
		current   = make([]*history.Op, w.Procs)
		nextOp    = make([]int, w.Procs)
		results   = make([]uint64, w.Procs)
		crashed   = make([]bool, w.Procs)
	)
	active := func() []int {
		var ids []int
		for i := 0; i < w.Procs; i++ {
			if crashed[i] {
				continue
			}
			if current[i] != nil || nextOp[i] < len(scripts[i]) {
				ids = append(ids, i)
			}
		}
		return ids
	}
	for {
		ids := active()
		if len(ids) == 0 {
			break
		}
		i := ids[rng.Intn(len(ids))]
		if steps, ok := crashAfter[i]; ok && steps <= 0 && current[i] != nil {
			// Crash mid-operation: the op stays pending forever.
			m.Crash(i)
			crashed[i] = true
			pending = append(pending, *current[i])
			current[i] = nil
			continue
		}
		if current[i] == nil {
			// Invoke the next scripted op.
			op := scripts[i][nextOp[i]]
			nextOp[i]++
			clock++
			current[i] = &history.Op{Proc: i, Kind: op.kind, Arg: op.arg, Inv: clock}
			proc := i
			opCopy := op
			m.Spawn(i, func(*prim.Proc) {
				results[proc] = apply[proc](opCopy)
			})
		}
		took := m.Step(i)
		if steps, ok := crashAfter[i]; ok && took {
			crashAfter[i] = steps - 1
		}
		if !m.Running(i) {
			clock++
			cur := current[i]
			cur.Ret = clock
			cur.Resp = results[i]
			completed = append(completed, *cur)
			current[i] = nil
		}
	}
	return completed, pending, nil
}

// SimCounter runs the workload against the counter built by mk on the
// simulated machine and checks linearizability within acc. It returns an
// error describing the violation, if any.
func SimCounter(mk func(f *prim.Factory) (object.Counter, error), w Workload, acc object.Accuracy) error {
	return SimCounterEnvelope(mk, w, check.MultEnvelope{K: acc.K})
}

// SimCounterEnvelope is SimCounter for an arbitrary accuracy envelope
// (e.g. check.AddEnvelope for k-additive counters).
func SimCounterEnvelope(mk func(f *prim.Factory) (object.Counter, error), w Workload, env check.Envelope) error {
	newSystem := func(f *prim.Factory) ([]func(opKind) uint64, error) {
		c, err := mk(f)
		if err != nil {
			return nil, err
		}
		apply := make([]func(opKind) uint64, w.Procs)
		for i := 0; i < w.Procs; i++ {
			h := c.CounterHandle(f.Proc(i))
			apply[i] = func(op opKind) uint64 {
				if op.kind == history.KindInc {
					h.Inc()
					return 0
				}
				return h.Read()
			}
		}
		return apply, nil
	}
	completed, pendingOps, err := simHistory(newSystem, w, true)
	if err != nil {
		return err
	}
	pendingIncs := 0
	for _, op := range pendingOps {
		if op.Kind == history.KindInc {
			pendingIncs++
		}
	}
	if res := check.CounterEnvelope(completed, env, pendingIncs); !res.OK {
		return fmt.Errorf("seed %d: %s", w.Seed, res.Reason)
	}
	return nil
}

// SimMaxRegister is SimCounter for max registers.
func SimMaxRegister(mk func(f *prim.Factory) (object.MaxReg, error), w Workload, acc object.Accuracy) error {
	newSystem := func(f *prim.Factory) ([]func(opKind) uint64, error) {
		r, err := mk(f)
		if err != nil {
			return nil, err
		}
		apply := make([]func(opKind) uint64, w.Procs)
		for i := 0; i < w.Procs; i++ {
			h := r.MaxRegHandle(f.Proc(i))
			apply[i] = func(op opKind) uint64 {
				if op.kind == history.KindWrite {
					h.Write(op.arg)
					return 0
				}
				return h.Read()
			}
		}
		return apply, nil
	}
	completed, pendingOps, err := simHistory(newSystem, w, false)
	if err != nil {
		return err
	}
	var pendingWrites []uint64
	for _, op := range pendingOps {
		if op.Kind == history.KindWrite {
			pendingWrites = append(pendingWrites, op.Arg)
		}
	}
	if res := check.MaxRegister(completed, acc, pendingWrites); !res.OK {
		return fmt.Errorf("seed %d: %s", w.Seed, res.Reason)
	}
	return nil
}

// HWCounter runs the workload with real goroutines (one per process) and
// checks the recorded history.
func HWCounter(mk func(f *prim.Factory) (object.Counter, error), w Workload, acc object.Accuracy) error {
	f := prim.NewFactory(w.Procs)
	c, err := mk(f)
	if err != nil {
		return err
	}
	rec := history.NewRecorder(w.Procs)
	scripts := w.script(true)
	errs := runProcs(w.Procs, func(i int) {
		h := c.CounterHandle(f.Proc(i))
		for _, op := range scripts[i] {
			if op.kind == history.KindInc {
				rec.Record(i, history.KindInc, 0, func() uint64 { h.Inc(); return 0 })
			} else {
				rec.Record(i, history.KindCounterRead, 0, h.Read)
			}
		}
	})
	if errs != nil {
		return errs
	}
	if res := check.Counter(rec.History(), acc, 0); !res.OK {
		return fmt.Errorf("seed %d: %s", w.Seed, res.Reason)
	}
	return nil
}

// HWMaxRegister is HWCounter for max registers.
func HWMaxRegister(mk func(f *prim.Factory) (object.MaxReg, error), w Workload, acc object.Accuracy) error {
	f := prim.NewFactory(w.Procs)
	r, err := mk(f)
	if err != nil {
		return err
	}
	rec := history.NewRecorder(w.Procs)
	scripts := w.script(false)
	errs := runProcs(w.Procs, func(i int) {
		h := r.MaxRegHandle(f.Proc(i))
		for _, op := range scripts[i] {
			if op.kind == history.KindWrite {
				arg := op.arg
				rec.Record(i, history.KindWrite, arg, func() uint64 { h.Write(arg); return 0 })
			} else {
				rec.Record(i, history.KindMaxRead, 0, h.Read)
			}
		}
	})
	if errs != nil {
		return errs
	}
	if res := check.MaxRegister(rec.History(), acc, nil); !res.OK {
		return fmt.Errorf("seed %d: %s", w.Seed, res.Reason)
	}
	return nil
}

// runProcs runs body(i) on n goroutines and waits for them.
func runProcs(n int, body func(i int)) error {
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("process %d panicked: %v", i, r)
					return
				}
				done <- nil
			}()
			body(i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-done; err != nil && first == nil {
			first = err
		}
	}
	return first
}
