package conformance

import (
	"testing"

	"approxobj/internal/check"

	"approxobj/internal/core"
	"approxobj/internal/counter"
	"approxobj/internal/maxreg"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// exactCounters enumerates the exact counter constructors.
func exactCounters() map[string]func(f *prim.Factory) (object.Counter, error) {
	return map[string]func(f *prim.Factory) (object.Counter, error){
		"collect":  func(f *prim.Factory) (object.Counter, error) { return counter.NewCollect(f) },
		"snapshot": func(f *prim.Factory) (object.Counter, error) { return counter.NewSnapshotCounter(f) },
		"aach":     func(f *prim.Factory) (object.Counter, error) { return counter.NewAACH(f) },
	}
}

func multCounter(k uint64, opts ...core.Option) func(f *prim.Factory) (object.Counter, error) {
	return func(f *prim.Factory) (object.Counter, error) {
		return core.NewMultCounter(f, k, opts...)
	}
}

func TestSimExactCountersLinearizable(t *testing.T) {
	for name, mk := range exactCounters() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				w := Workload{Procs: 3, OpsPer: 25, ReadFrac: 0.4, Seed: seed}
				if err := SimCounter(mk, w, object.Exact); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestSimMultCounterWithinEnvelope(t *testing.T) {
	for _, k := range []uint64{2, 3, 5} {
		for seed := int64(0); seed < 12; seed++ {
			w := Workload{Procs: 4, OpsPer: 30, ReadFrac: 0.35, Seed: seed}
			if err := SimCounter(multCounter(k), w, object.Accuracy{K: k}); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
	}
}

// TestSimVerbatimMultCounterViolates shows the conformance harness catching
// the paper's Claim III.6 boundary gap under adversarial schedules: with
// t1 = k (verbatim), n = 4 and k = 2, some interleavings return responses
// outside the 2-multiplicative envelope. The repaired default passes the
// identical workloads (previous test).
func TestSimVerbatimMultCounterViolates(t *testing.T) {
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		w := Workload{Procs: 4, OpsPer: 30, ReadFrac: 0.35, Seed: seed}
		if err := SimCounter(multCounter(2, core.Verbatim()), w, object.Accuracy{K: 2}); err != nil {
			found = true
			t.Logf("violation reproduced: %v", err)
		}
	}
	if !found {
		t.Fatal("no seed exposed the verbatim boundary violation (did the repair leak into Verbatim mode?)")
	}
}

func TestSimCountersWithCrashes(t *testing.T) {
	mks := exactCounters()
	mks["mult-k3"] = multCounter(3)
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			acc := object.Exact
			if name == "mult-k3" {
				acc = object.Accuracy{K: 3}
			}
			for seed := int64(0); seed < 10; seed++ {
				w := Workload{Procs: 4, OpsPer: 25, ReadFrac: 0.4, Seed: seed, CrashProcs: 2}
				if err := SimCounter(mk, w, acc); err != nil {
					t.Fatalf("%s with crashes: %v", name, err)
				}
			}
		})
	}
}

func TestHWCountersLinearizable(t *testing.T) {
	mks := exactCounters()
	for name, mk := range mks {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				w := Workload{Procs: 8, OpsPer: 150, ReadFrac: 0.3, Seed: seed}
				if err := HWCounter(mk, w, object.Exact); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestHWMultCounterWithinEnvelope(t *testing.T) {
	for _, k := range []uint64{3, 4} {
		for seed := int64(0); seed < 4; seed++ {
			w := Workload{Procs: 8, OpsPer: 300, ReadFrac: 0.3, Seed: seed}
			if err := HWCounter(multCounter(k), w, object.Accuracy{K: k}); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
	}
}

// Max registers.

func maxRegs(m uint64, k uint64) map[string]struct {
	mk  func(f *prim.Factory) (object.MaxReg, error)
	acc object.Accuracy
} {
	return map[string]struct {
		mk  func(f *prim.Factory) (object.MaxReg, error)
		acc object.Accuracy
	}{
		"bounded-exact": {
			mk:  func(f *prim.Factory) (object.MaxReg, error) { return maxreg.NewBounded(f, m) },
			acc: object.Exact,
		},
		"kmult-bounded": {
			mk:  func(f *prim.Factory) (object.MaxReg, error) { return core.NewKMultMaxReg(f, m, k) },
			acc: object.Accuracy{K: k},
		},
		"unbounded-exact": {
			mk:  func(f *prim.Factory) (object.MaxReg, error) { return maxreg.NewUnbounded(f, maxreg.ExactFactory) },
			acc: object.Exact,
		},
		"kmult-unbounded": {
			mk:  func(f *prim.Factory) (object.MaxReg, error) { return core.NewKMultUnboundedMaxReg(f, k) },
			acc: object.Accuracy{K: k},
		},
	}
}

func TestSimMaxRegistersLinearizable(t *testing.T) {
	for name, c := range maxRegs(1024, 2) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				w := Workload{Procs: 3, OpsPer: 25, ReadFrac: 0.5, Seed: seed, MaxArg: 1024}
				if err := SimMaxRegister(c.mk, w, c.acc); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestSimMaxRegistersWithCrashes(t *testing.T) {
	for name, c := range maxRegs(512, 4) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				w := Workload{Procs: 4, OpsPer: 20, ReadFrac: 0.5, Seed: seed, MaxArg: 512, CrashProcs: 2}
				if err := SimMaxRegister(c.mk, w, c.acc); err != nil {
					t.Fatalf("%s with crashes: %v", name, err)
				}
			}
		})
	}
}

func TestHWMaxRegistersLinearizable(t *testing.T) {
	for name, c := range maxRegs(1<<20, 3) {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				w := Workload{Procs: 8, OpsPer: 150, ReadFrac: 0.4, Seed: seed, MaxArg: 1 << 20}
				if err := HWMaxRegister(c.mk, w, c.acc); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestWorkloadScriptDeterministic(t *testing.T) {
	w := Workload{Procs: 3, OpsPer: 50, ReadFrac: 0.5, Seed: 9, MaxArg: 100}
	a, b := w.script(false), w.script(false)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("script not deterministic")
			}
		}
	}
}

func TestSimCASCounterLinearizable(t *testing.T) {
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCASCounter(f) }
	for seed := int64(0); seed < 12; seed++ {
		w := Workload{Procs: 3, OpsPer: 25, ReadFrac: 0.4, Seed: seed}
		if err := SimCounter(mk, w, object.Exact); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSimAdditiveCounterWithinEnvelope(t *testing.T) {
	for _, k := range []uint64{4, 16, 64} {
		mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewAdditive(f, k) }
		for seed := int64(0); seed < 8; seed++ {
			w := Workload{Procs: 4, OpsPer: 30, ReadFrac: 0.35, Seed: seed}
			if err := SimCounterEnvelope(mk, w, check.AddEnvelope{K: k}); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
		}
	}
}

func TestSimAdditiveTooTightEnvelopeRejected(t *testing.T) {
	// Sanity that the additive checker has teeth: a 64-additive counter
	// checked against a 0-additive (exact) envelope must fail on some
	// schedule.
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewAdditive(f, 64) }
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		w := Workload{Procs: 4, OpsPer: 40, ReadFrac: 0.3, Seed: seed}
		if err := SimCounterEnvelope(mk, w, check.AddEnvelope{K: 0}); err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no schedule exposed the additive slack against an exact envelope")
	}
}

func TestHWCASCounterLinearizable(t *testing.T) {
	mk := func(f *prim.Factory) (object.Counter, error) { return counter.NewCASCounter(f) }
	for seed := int64(0); seed < 3; seed++ {
		w := Workload{Procs: 8, OpsPer: 150, ReadFrac: 0.3, Seed: seed}
		if err := HWCounter(mk, w, object.Exact); err != nil {
			t.Fatal(err)
		}
	}
}
