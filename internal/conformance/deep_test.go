package conformance

import (
	"testing"

	"approxobj/internal/core"
	"approxobj/internal/object"
	"approxobj/internal/prim"
)

// TestDeepConformance sweeps many more seeds and larger workloads than the
// default suites; it is skipped under -short. It is the long-haul soak for
// the linearizability of the paper's two algorithms under adversarial
// schedules, with and without crashes.
func TestDeepConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("deep conformance sweep skipped in -short mode")
	}
	t.Run("mult-counter", func(t *testing.T) {
		for _, k := range []uint64{2, 3} {
			mk := func(f *prim.Factory) (object.Counter, error) {
				return core.NewMultCounter(f, k)
			}
			for seed := int64(0); seed < 60; seed++ {
				crash := 0
				if seed%3 == 0 {
					crash = 1
				}
				w := Workload{Procs: 5, OpsPer: 60, ReadFrac: 0.35, Seed: seed, CrashProcs: crash}
				if k*k < 5 {
					w.Procs = 4 // keep k >= sqrt(n)
				}
				if err := SimCounter(mk, w, object.Accuracy{K: k}); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
			}
		}
	})
	t.Run("kmult-maxreg", func(t *testing.T) {
		const m = uint64(1) << 24
		for _, k := range []uint64{2, 4} {
			mk := func(f *prim.Factory) (object.MaxReg, error) {
				return core.NewKMultMaxReg(f, m, k)
			}
			for seed := int64(0); seed < 60; seed++ {
				crash := 0
				if seed%4 == 0 {
					crash = 2
				}
				w := Workload{Procs: 5, OpsPer: 50, ReadFrac: 0.5, Seed: seed, MaxArg: m, CrashProcs: crash}
				if err := SimMaxRegister(mk, w, object.Accuracy{K: k}); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
			}
		}
	})
	t.Run("kmult-unbounded-maxreg", func(t *testing.T) {
		mk := func(f *prim.Factory) (object.MaxReg, error) {
			return core.NewKMultUnboundedMaxReg(f, 3)
		}
		for seed := int64(0); seed < 40; seed++ {
			w := Workload{Procs: 4, OpsPer: 50, ReadFrac: 0.5, Seed: seed, MaxArg: 1 << 40}
			if err := SimMaxRegister(mk, w, object.Accuracy{K: 3}); err != nil {
				t.Fatal(err)
			}
		}
	})
}
