// Package histogram implements the approximate histogram substrate of
// the repository: a deterministic rounded-bucket layout in the style of
// Matias, Vitter and Young's approximate data structures (values are
// rounded to bucket boundaries spaced by the multiplicative accuracy
// factor k, so every value is represented within a factor k), the exact
// per-shard bucket-count vector the sharded runtime builds on, and the
// query engine (count, sum, rank, quantile, CDF) that turns merged
// bucket counts into answers with documented deterministic error bounds.
//
// The split of responsibilities with internal/shard: this package knows
// which value lands in which bucket and how to answer queries over a
// bucket-count vector; internal/shard knows how to shard and buffer the
// vector. Neither widens the other's error: per-shard bucket counts are
// exact, so summing them over shards recovers the unsharded counts, and
// all approximation comes from (a) the bucket rounding (multiplicative
// in the value domain, factor k) and (b) handle-local buffering
// (additive in the rank domain, at most B-1 observations per handle).
package histogram

import (
	"fmt"

	"approxobj/internal/satmath"
)

// MaxExactBuckets caps the bucket-per-value table of exact (k = 1)
// layouts: each bucket costs one register per process slot per shard, so
// an unbounded exact table is not representable. Exported so the spec
// layer's defense-in-depth precondition stays equal to the layout's.
const MaxExactBuckets = 1 << 20

// Buckets is a rounded-bucket layout over the uint64 value domain:
// bucket 0 holds the value 0, and bucket j >= 1 holds the values in
// [k^(j-1), k^j - 1] — boundaries spaced by the accuracy factor k, so a
// value's bucket index is computable by a short log-k loop, not a search,
// and every value in a bucket is within a factor k of the bucket's lower
// boundary. The degenerate k = 1 layout is the exact bucket-per-value
// table over a bounded domain (Index(v) = v). The zero value is not
// usable; build layouts with NewBuckets.
type Buckets struct {
	k     uint64
	bound uint64 // observations must be < bound; 0 = full uint64 domain
	n     int
}

// NewBuckets builds the layout for accuracy factor k (k = 1 exact,
// k >= 2 rounded) over the domain [0, bound) — bound 0 means the full
// uint64 domain. Exact layouts need a finite domain of at most 2^20
// values.
func NewBuckets(k, bound uint64) (Buckets, error) {
	if k < 1 {
		return Buckets{}, fmt.Errorf("histogram: accuracy factor must be >= 1, got %d", k)
	}
	if k == 1 {
		if bound == 0 {
			return Buckets{}, fmt.Errorf("histogram: exact bucketing needs a finite value domain (a bound)")
		}
		if bound > MaxExactBuckets {
			return Buckets{}, fmt.Errorf("histogram: exact bucketing over %d values exceeds the %d-bucket table limit", bound, MaxExactBuckets)
		}
	}
	b := Buckets{k: k, bound: bound}
	b.n = b.Index(b.domainMax()) + 1
	return b, nil
}

// K returns the accuracy factor the boundaries are spaced by.
func (b Buckets) K() uint64 { return b.k }

// Bound returns the value domain bound (observations must be < Bound),
// or 0 for the full uint64 domain.
func (b Buckets) Bound() uint64 { return b.bound }

// N returns the number of buckets.
func (b Buckets) N() int { return b.n }

// domainMax is the largest observable value.
func (b Buckets) domainMax() uint64 {
	if b.bound > 0 {
		return b.bound - 1
	}
	return ^uint64(0)
}

// Contains reports whether v is inside the layout's value domain.
func (b Buckets) Contains(v uint64) bool { return b.bound == 0 || v < b.bound }

// Index returns the bucket of value v: 0 for 0, otherwise the unique j
// with k^(j-1) <= v <= k^j - 1. The loop multiplies the boundary up by k
// per iteration — at most log_k(v) iterations, no search over a boundary
// table.
func (b Buckets) Index(v uint64) int {
	if b.k == 1 {
		// Queries may probe past the bounded domain (only Observe
		// validates); they land in the top bucket. Without the clamp,
		// int(v) overflows for huge v and Rank/CDF would sum no buckets.
		if v >= b.bound {
			return int(b.bound) - 1
		}
		return int(v)
	}
	if v == 0 {
		return 0
	}
	j, lo := 1, uint64(1)
	for {
		if lo > ^uint64(0)/b.k {
			// Bucket j's upper boundary saturates the domain: v is here.
			return j
		}
		if v <= lo*b.k-1 {
			return j
		}
		j++
		lo *= b.k
	}
}

// Lo returns the smallest value of bucket j — the bucket's representative
// in query answers, so answers never overstate the value they stand for.
func (b Buckets) Lo(j int) uint64 {
	if b.k == 1 {
		return uint64(j)
	}
	if j == 0 {
		return 0
	}
	return satmath.Pow(b.k, uint64(j-1))
}

// Hi returns the largest value of bucket j (saturating at the top of the
// uint64 domain): every value the bucket stands for is in [Lo(j), Hi(j)],
// and Hi(j) <= k*Lo(j) - 1 — the factor-k rounding guarantee.
func (b Buckets) Hi(j int) uint64 {
	if b.k == 1 {
		return uint64(j)
	}
	if j == 0 {
		return 0
	}
	lo := b.Lo(j)
	if lo > ^uint64(0)/b.k {
		return ^uint64(0)
	}
	return lo*b.k - 1
}
