package histogram

import (
	"fmt"

	"approxobj/internal/object"
	"approxobj/internal/prim"
	"approxobj/internal/satmath"
)

// Vector is the exact shared bucket-count vector one histogram shard is
// made of: an n-process grid of single-writer registers, one row per
// process and one column per bucket. Process p's additions accumulate in
// row p (so AddN is one register write once the row value is known), and
// a read sums each column over all rows — the classic collect, regular
// like every combined read in this repository. All counts saturate at
// MaxUint64.
type Vector struct {
	buckets int
	rows    [][]*prim.Reg // [process][bucket]
}

var _ object.Hist = (*Vector)(nil)

// NewVector creates a bucket-count vector with the given number of
// buckets over f's processes, all counts zero.
func NewVector(f *prim.Factory, buckets int) (*Vector, error) {
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: need at least one bucket, got %d", buckets)
	}
	v := &Vector{buckets: buckets, rows: make([][]*prim.Reg, f.N())}
	for p := range v.rows {
		v.rows[p] = f.RegRowDense(buckets)
	}
	return v, nil
}

// Buckets returns the number of buckets.
func (v *Vector) Buckets() int { return v.buckets }

// HistHandle binds process p to the vector.
func (v *Vector) HistHandle(p *prim.Proc) object.HistHandle {
	return &VectorHandle{
		v:     v,
		p:     p,
		own:   make([]uint64, v.buckets),
		known: make([]bool, v.buckets),
	}
}

// VectorHandle is one process's view of the vector. It caches its own
// row's values (the row is single-writer, so the cache cannot go stale):
// the first addition to a bucket reads the register once — which also
// lets a re-created handle for a slot that has written before continue
// from the row's current counts — and every later addition is a single
// register write.
type VectorHandle struct {
	v     *Vector
	p     *prim.Proc
	own   []uint64
	known []bool
}

var _ object.HistHandle = (*VectorHandle)(nil)

// AddN adds d observations to bucket b. It panics if b is out of range,
// like indexing a slice out of bounds.
func (h *VectorHandle) AddN(b int, d uint64) {
	if d == 0 {
		return
	}
	r := h.v.rows[h.p.ID()][b]
	if !h.known[b] {
		h.own[b] = r.Read(h.p)
		h.known[b] = true
	}
	h.own[b] = satmath.Add(h.own[b], d)
	r.Write(h.p, h.own[b])
}

// Read returns the per-bucket totals, summing each column over all
// process rows (saturating). The slice is fresh (owned by the caller).
func (h *VectorHandle) Read() []uint64 { return h.ReadInto(nil) }

// ReadInto is Read into a reused buffer: dst is grown (or allocated, if
// nil) to the bucket count, zeroed, and filled with the totals. The
// step count is identical to Read's.
func (h *VectorHandle) ReadInto(dst []uint64) []uint64 {
	dst = zeroed(dst, h.v.buckets)
	for _, row := range h.v.rows {
		for b, r := range row {
			dst[b] = satmath.Add(dst[b], r.Read(h.p))
		}
	}
	return dst
}

// zeroed returns dst resized to n and zero-filled, reusing its backing
// array when it is large enough.
func zeroed(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}
